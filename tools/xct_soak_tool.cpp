// xct_soak — fleet-level soak harness (DESIGN.md §3h).
//
// Drives a seed-deterministic mixed-workload schedule (jobs drawn from
// the four evaluation datasets at varying N_g / N_r / N_c) through the
// soak harness: a 10k-rank-capable event tier layered on
// perfmodel::simulate_faulted with the real faults:: / integrity::
// machinery handling every planned corruption, plus a small live tier on
// real minimpi pipelines that bit-compares the recovered volume.  After
// the run the four fleet invariants are checked; any violation prints to
// stderr and exits nonzero, which is what CI's soak-smoke gate consumes.
//
//   xct_soak --ranks 10000 --epochs 3 --seed 7 --out BENCH_soak.json
//   xct_soak --ranks 64 --replay-check        # run twice, diff summaries

#include <cstdio>
#include <string>

#include "autotune/calibrate.hpp"
#include "cli.hpp"
#include "soak/soak.hpp"

int main(int argc, char** argv)
{
    using namespace xct;

    cli::Args args;
    args.option("ranks", "64", "simulated fleet width")
        .option("epochs", "1", "schedule epochs")
        .option("jobs-per-epoch", "0", "jobs per epoch (0: ranks/8, floor 4)")
        .option("seed", "1", "schedule + fault seed")
        .option("fault-rate", "0.6", "fraction of jobs carrying faults")
        .option("out", "", "write BENCH_soak.json here")
        .option("device-mib", "512", "per-rank device budget for --autotune feasibility [MiB]")
        .option("calibrate-out", "",
                "fit machine params from the live tier's measured rank stats; "
                "write the machine JSON here")
        .flag("append", "merge --out into an existing BENCH file")
        .flag("autotune", "plan each job's decomposition with the model-driven autotuner")
        .flag("event-only", "skip the live minimpi tier")
        .flag("replay-check", "run the schedule twice; fail unless the "
                              "deterministic summaries are identical")
        .flag("quiet", "suppress the per-run summary");
    args.parse(argc, argv, "fleet soak harness: mixed workload + fault plans + invariants");

    soak::SoakConfig cfg;
    cfg.schedule.fleet_ranks = args.get_int("ranks");
    cfg.schedule.epochs = args.get_int("epochs");
    cfg.schedule.jobs_per_epoch = args.get_int("jobs-per-epoch");
    cfg.schedule.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    cfg.schedule.fault_rate = args.get_double("fault-rate");
    cfg.live = !args.get_flag("event-only");
    cfg.autotune = args.get_flag("autotune");
    cfg.device_capacity = static_cast<std::size_t>(args.get_int("device-mib")) << 20;
    cfg.calibrate = args.is_set("calibrate-out");
    require(!cfg.calibrate || cfg.live,
            "xct_soak: --calibrate-out needs the live tier (drop --event-only)");

    const soak::SoakSummary s = soak::run(cfg);

    if (!args.get_flag("quiet")) {
        std::printf("soak: %lld jobs on %lld ranks x %lld epoch(s)  [%.2fs wall]\n",
                    static_cast<long long>(s.jobs), static_cast<long long>(s.fleet_ranks),
                    static_cast<long long>(s.epochs), s.harness_wall_s);
        std::printf("  jobs: %lld done, %lld degraded, %lld wedged  |  %.1f jobs/hour "
                    "(virtual makespan %.1fs)\n",
                    static_cast<long long>(s.jobs - s.degraded - s.wedged),
                    static_cast<long long>(s.degraded), static_cast<long long>(s.wedged),
                    s.jobs_per_hour, s.makespan_s);
        std::printf("  corruptions: %llu injected, %llu detected (%s)\n",
                    static_cast<unsigned long long>(s.injected),
                    static_cast<unsigned long long>(s.detected),
                    s.sites_match ? "all sites matched" : "SITE MISMATCH");
        std::printf("  stalls: %llu injected, %llu watchdog-detected\n",
                    static_cast<unsigned long long>(s.stall_injected),
                    static_cast<unsigned long long>(s.stall_detected));
        std::printf("  latency: p50 %.3fs  p95 %.3fs  p99 %.3fs  |  p99/bound %.3f\n",
                    s.latency_p50_s, s.latency_p95_s, s.latency_p99_s, s.p99_vs_predicted);
        if (s.live_jobs > 0)
            std::printf("  live tier: %lld job(s), recovered volume %s  [%.2fs wall]\n",
                        static_cast<long long>(s.live_jobs),
                        s.live_bitwise_identical ? "bitwise identical" : "DIFFERS", s.live_wall_s);
        if (s.autotuned) std::printf("  autotune: planner-chosen decompositions\n");
        if (s.calibrated)
            std::printf("  calibrated: bw_load %.2f GB/s  th_flt %.3f Ge/s  th_bp %.1f GUPS  "
                        "h2d %.1f GB/s  d2h %.1f GB/s\n",
                        s.calibrated_machine.bw_load_gbps, s.calibrated_machine.th_flt_geps,
                        s.calibrated_machine.th_bp_gups, s.calibrated_machine.bw_h2d_gbps,
                        s.calibrated_machine.bw_d2h_gbps);
    }

    if (args.is_set("calibrate-out") && s.calibrated) {
        autotune::write_machine_json(args.get("calibrate-out"), s.calibrated_machine);
        if (!args.get_flag("quiet"))
            std::printf("  wrote %s (live-tier-calibrated machine params)\n",
                        args.get("calibrate-out").c_str());
    }

    if (args.get_flag("replay-check")) {
        soak::SoakConfig again = cfg;
        again.live = false;  // the live tier re-runs real pipelines; the
                             // determinism contract is on the event tier
        soak::SoakConfig first = cfg;
        first.live = false;
        const std::string a = soak::deterministic_json(soak::run(first));
        const std::string b = soak::deterministic_json(soak::run(again));
        if (a != b) {
            std::fprintf(stderr, "replay-check: summaries differ for seed %llu\n  1st: %s\n"
                                 "  2nd: %s\n",
                         static_cast<unsigned long long>(cfg.schedule.seed), a.c_str(), b.c_str());
            return 1;
        }
        if (!args.get_flag("quiet")) std::printf("  replay-check: identical summaries\n");
    }

    if (args.is_set("out")) soak::write_bench_json(args.get("out"), s, !args.get_flag("append"));

    const auto violations = soak::check_invariants(s);
    for (const std::string& v : violations)
        std::fprintf(stderr, "soak invariant violated: %s\n", v.c_str());
    return violations.empty() ? 0 : 1;
}
