# Validates the --trace / --metrics / --report outputs of the
# tools_recon_trace run (cmake -DTRACE=... -DMETRICS=... -DREPORT=... -P
# check_trace.cmake): the Chrome trace must contain spans from several
# subsystems attributed to more than one rank, the metrics CSV must carry
# the expected counters, and the run report must join measured stage
# times against the perfmodel with per-rank efficiency rows.
foreach(var TRACE METRICS REPORT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_trace.cmake: -D${var}=<path> is required")
  endif()
endforeach()

file(READ ${TRACE} trace)
if(NOT trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "${TRACE}: not a Chrome trace-event file")
endif()
foreach(cat pipeline minimpi sim filter)
  if(NOT trace MATCHES "\"cat\":\"${cat}\"")
    message(FATAL_ERROR "${TRACE}: missing ${cat} spans")
  endif()
endforeach()
# The Ng=2 x Nr=2 run must attribute spans to all four ranks.
foreach(pid 0 1 2 3)
  if(NOT trace MATCHES "\"pid\":${pid}[,}]")
    message(FATAL_ERROR "${TRACE}: no spans attributed to rank ${pid}")
  endif()
endforeach()

file(READ ${METRICS} metrics)
if(NOT metrics MATCHES "^name,kind,value\n")
  message(FATAL_ERROR "${METRICS}: missing CSV header")
endif()
foreach(metric minimpi.reduce_sum.calls sim.h2d.bytes fft.transforms filter.rows_filtered)
  if(NOT metrics MATCHES "${metric},")
    message(FATAL_ERROR "${METRICS}: missing ${metric}")
  endif()
endforeach()

file(READ ${REPORT} report)
if(NOT report MATCHES "\"schema\": \"xct.report.v1\"")
  message(FATAL_ERROR "${REPORT}: missing report schema marker")
endif()
# Every pipeline stage appears as a measured-vs-predicted join.
foreach(stage load filter bp reduce store)
  if(NOT report MATCHES "{\"stage\": \"${stage}\", \"measured_s\": ")
    message(FATAL_ERROR "${REPORT}: missing stage row for ${stage}")
  endif()
endforeach()
foreach(key predicted_s binding_stage straggler_k)
  if(NOT report MATCHES "\"${key}\"")
    message(FATAL_ERROR "${REPORT}: missing ${key}")
  endif()
endforeach()
# All four ranks report efficiency, and the fleet percentiles are present.
foreach(rank 0 1 2 3)
  if(NOT report MATCHES "{\"rank\": ${rank}, ")
    message(FATAL_ERROR "${REPORT}: missing rank ${rank} row")
  endif()
endforeach()
if(NOT report MATCHES "\"p99_s\"")
  message(FATAL_ERROR "${REPORT}: missing fleet percentiles")
endif()
message(STATUS "trace, metrics and report outputs look well-formed")
