# Validates the --trace / --metrics outputs of the tools_recon_trace run
# (cmake -DTRACE=... -DMETRICS=... -P check_trace.cmake): the Chrome trace
# must contain spans from several subsystems attributed to more than one
# rank, and the metrics CSV must carry the expected counters.
foreach(var TRACE METRICS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_trace.cmake: -D${var}=<path> is required")
  endif()
endforeach()

file(READ ${TRACE} trace)
if(NOT trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "${TRACE}: not a Chrome trace-event file")
endif()
foreach(cat pipeline minimpi sim filter)
  if(NOT trace MATCHES "\"cat\":\"${cat}\"")
    message(FATAL_ERROR "${TRACE}: missing ${cat} spans")
  endif()
endforeach()
# The Ng=2 x Nr=2 run must attribute spans to all four ranks.
foreach(pid 0 1 2 3)
  if(NOT trace MATCHES "\"pid\":${pid}[,}]")
    message(FATAL_ERROR "${TRACE}: no spans attributed to rank ${pid}")
  endif()
endforeach()

file(READ ${METRICS} metrics)
if(NOT metrics MATCHES "^name,kind,value\n")
  message(FATAL_ERROR "${METRICS}: missing CSV header")
endif()
foreach(metric minimpi.reduce_sum.calls sim.h2d.bytes fft.transforms filter.rows_filtered)
  if(NOT metrics MATCHES "${metric},")
    message(FATAL_ERROR "${METRICS}: missing ${metric}")
  endif()
endforeach()
message(STATUS "trace and metrics outputs look well-formed")
