// xct_project — generate synthetic cone-beam projections.
//
// Takes a paper dataset descriptor (optionally scaled) or a custom
// geometry, forward-projects an analytic phantom, and writes the stack
// plus its `.geom` sidecar.  Optionally emits raw photon counts (inverse
// Beer law) so downstream reconstruction exercises the Eq.-1 path.
//
//   xct_project --dataset tomo_00030 --scale 8 --volume 64 --output proj.xstk
//   xct_project --phantom bean --counts --output bean.xstk ...

#include <cstdio>

#include "cli.hpp"
#include "io/datasets.hpp"
#include "io/geometry_io.hpp"
#include "io/raw_io.hpp"
#include "recon/source.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("dataset", "tomo_00030", "paper dataset name (coffee_bean, bumblebee, tomo_0002x)")
        .option("scale", "8", "resolution divisor applied to the dataset")
        .option("volume", "64", "cubic output volume size the geometry targets")
        .option("phantom", "shepp-logan", "phantom: shepp-logan | bean")
        .option("voids", "16", "pore count for the bean phantom")
        .option("seed", "2021", "seed for the bean phantom")
        .option("scan-degrees", "360", "angular range of the scan")
        .option("output", "projections.xstk", "output stack path (.geom sidecar added)")
        .flag("counts", "emit raw photon counts instead of line integrals");
    args.parse(argc, argv, "generate synthetic cone-beam projections");

    io::Dataset ds = io::dataset_by_name(args.get("dataset"));
    if (args.get_double("scale") > 1.0) ds = ds.scaled(args.get_double("scale"));
    ds = ds.with_volume(args.get_int("volume"));
    ds.geometry.scan_range = args.get_double("scan-degrees") * 3.14159265358979323846 / 180.0;
    const CbctGeometry& g = ds.geometry;
    g.validate();

    const double radius = g.dx * static_cast<double>(g.vol.x) / 2.4;
    std::vector<phantom::Ellipsoid> ph;
    if (args.get("phantom") == "shepp-logan")
        ph = phantom::shepp_logan_3d(radius);
    else if (args.get("phantom") == "bean")
        ph = phantom::porous_bean(radius, args.get_int("voids"),
                                  static_cast<std::uint64_t>(args.get_int("seed")));
    else {
        std::fprintf(stderr, "error: unknown phantom '%s'\n", args.get("phantom").c_str());
        return 2;
    }

    std::printf("projecting %s (%s): %lldx%lld detector, %lld views, scan %.0f deg\n",
                args.get("dataset").c_str(), args.get("phantom").c_str(),
                static_cast<long long>(g.nu), static_cast<long long>(g.nv),
                static_cast<long long>(g.num_proj), args.get_double("scan-degrees"));

    const bool counts = args.get_flag("counts");
    recon::PhantomSource src(ph, g, counts ? std::optional<BeerLawScalar>(ds.beer) : std::nullopt);
    const ProjectionStack stack = src.load(Range{0, g.num_proj}, Range{0, g.nv});

    const std::filesystem::path out = args.get("output");
    io::write_stack(out, stack);
    io::write_geometry(out.string() + ".geom", io::GeometryFile{g, ds.beer, counts});
    std::printf("wrote %s (%.1f MiB) + %s.geom\n", out.string().c_str(),
                static_cast<double>(stack.count()) * 4.0 / (1024.0 * 1024.0),
                out.string().c_str());
    return 0;
}
