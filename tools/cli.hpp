#pragma once
// Minimal self-contained command-line option parser shared by the xct
// tools: `--key value` options, `--flag` booleans, automatic --help.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace xct::cli {

class Args {
public:
    /// Declare an option with a default (shown in --help).
    Args& option(const std::string& name, const std::string& default_value,
                 const std::string& help)
    {
        order_.push_back(name);
        help_[name] = help;
        values_[name] = default_value;
        return *this;
    }

    /// Declare a boolean flag (off by default).
    Args& flag(const std::string& name, const std::string& help)
    {
        order_.push_back(name);
        help_[name] = help;
        flags_[name] = false;
        return *this;
    }

    /// Parse argv; prints usage and exits 0 on --help, exits 2 on errors.
    void parse(int argc, char** argv, const std::string& description)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                usage(argv[0], description);
                std::exit(0);
            }
            if (a.rfind("--", 0) != 0) fail(argv[0], description, "unexpected argument: " + a);
            const std::string name = a.substr(2);
            if (flags_.count(name) != 0) {
                flags_[name] = true;
                continue;
            }
            if (values_.count(name) == 0) fail(argv[0], description, "unknown option: " + a);
            if (i + 1 >= argc) fail(argv[0], description, "missing value for " + a);
            values_[name] = argv[++i];
        }
    }

    const std::string& get(const std::string& name) const { return values_.at(name); }
    double get_double(const std::string& name) const { return std::atof(get(name).c_str()); }
    index_t get_int(const std::string& name) const { return std::atoll(get(name).c_str()); }
    bool get_flag(const std::string& name) const { return flags_.at(name); }
    bool is_set(const std::string& name) const { return !values_.at(name).empty(); }

private:
    void usage(const char* prog, const std::string& description) const
    {
        std::printf("%s — %s\n\noptions:\n", prog, description.c_str());
        for (const auto& name : order_) {
            if (flags_.count(name) != 0)
                std::printf("  --%-18s %s\n", name.c_str(), help_.at(name).c_str());
            else
                std::printf("  --%-18s %s (default: %s)\n", name.c_str(), help_.at(name).c_str(),
                            values_.at(name).empty() ? "<none>" : values_.at(name).c_str());
        }
    }

    [[noreturn]] void fail(const char* prog, const std::string& description,
                           const std::string& msg) const
    {
        std::fprintf(stderr, "error: %s\n\n", msg.c_str());
        usage(prog, description);
        std::exit(2);
    }

    std::vector<std::string> order_;
    std::map<std::string, std::string> help_;
    std::map<std::string, std::string> values_;
    std::map<std::string, bool> flags_;
};

}  // namespace xct::cli
