// xct_serve — the crash-durable multi-tenant reconstruction daemon
// (DESIGN.md §3k) and its command-line client.
//
// Daemon: owns a spool directory (journal, per-job checkpoints, output
// volumes) and a local AF_UNIX socket carrying the typed JSON job API.
// Every submitted job is priced through the perfmodel-driven admission
// layer against the daemon-wide device budget and either queued or
// rejected with a stable reason; workers schedule by priority, tenant
// fair share and FIFO, propagate deadlines into the pipeline watchdog,
// and every state transition is journaled (fsync) before it takes
// effect.  kill -9 the daemon and restart it over the same spool: the
// journal replays, unfinished jobs resume from their last checkpoint
// slab, and the recovered volumes are bitwise-identical to an
// uninterrupted run.
//
//   xct_serve --spool /tmp/spool --workers 2 --device-budget-mib 256
//
// Client: one-shot requests against a running daemon's socket.
//
//   xct_serve --client --socket /tmp/spool/xct-serve.sock --op submit
//             --volume 32 --scale 12 --priority high --deadline 30
//   xct_serve --client --socket ... --op status --id 3
//   xct_serve --client --socket ... --op wait --id 3 --timeout 60
//   xct_serve --client --socket ... --op cancel --id 3
//   xct_serve --client --socket ... --op fetch-slice --id 3 --slice 16
//   xct_serve --client --socket ... --op list|metrics|ping|shutdown
//
// The client prints the daemon's JSON response on stdout and exits 0
// iff the response carries "ok": true — shell-scriptable (the CI
// serve-smoke job drives exactly this surface).
//
// Resilience knobs mirror xct_recon: `--faults` installs a deterministic
// fault plan (new sites: serve.accept, serve.journal.append) and
// `--integrity` arms digest verification on every bulk data movement.

#include <csignal>
#include <cstdio>
#include <sstream>

#include "cli.hpp"
#include "faults/fault.hpp"
#include "integrity/integrity.hpp"
#include "io/datasets.hpp"
#include "io/raw_io.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "telemetry/metrics.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

/// Lower-case hex of a byte span (the fetch_slice payload encoding:
/// bitwise-exact, newline-free, shell-friendly).
std::string hex_encode(std::span<const std::byte> bytes)
{
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const std::byte b : bytes) {
        out.push_back(digits[std::to_integer<unsigned>(b) >> 4]);
        out.push_back(digits[std::to_integer<unsigned>(b) & 0xF]);
    }
    return out;
}

std::string handle(xct::serve::Engine& engine, const std::string& line)
{
    using namespace xct;
    const serve::Request req = serve::decode_request(line);
    std::ostringstream ss;
    if (req.op == "ping") {
        ss << "{\"ok\":true,\"pong\":true}";
    } else if (req.op == "submit") {
        const serve::SubmitResult r = engine.submit(req.spec);
        ss << "{\"ok\":true,\"id\":" << r.id << ",\"accepted\":" << (r.accepted ? "true" : "false")
           << ",\"reason\":" << serve::json_quote(r.reason)
           << ",\"detail\":" << serve::json_quote(r.detail)
           << ",\"predicted_s\":" << serve::json_number(r.predicted_s)
           << ",\"tail_bound_s\":" << serve::json_number(engine.tail_bound_s(r.predicted_s))
           << "}";
    } else if (req.op == "status") {
        ss << "{\"ok\":true,\"job\":" << serve::encode_status(engine.status(req.id)) << "}";
    } else if (req.op == "wait") {
        ss << "{\"ok\":true,\"job\":" << serve::encode_status(engine.wait(req.id, req.timeout_s))
           << "}";
    } else if (req.op == "cancel") {
        const bool live = engine.cancel(req.id);
        ss << "{\"ok\":true,\"cancelled\":" << (live ? "true" : "false") << "}";
    } else if (req.op == "list") {
        ss << "{\"ok\":true,\"jobs\":[";
        bool first = true;
        for (const serve::JobStatus& st : engine.list()) {
            if (!first) ss << ",";
            first = false;
            ss << serve::encode_status(st);
        }
        ss << "]}";
    } else if (req.op == "fetch_slice") {
        const serve::JobStatus st = engine.status(req.id);
        if (st.state != serve::JobState::Done)
            throw std::runtime_error("fetch_slice: job " + std::to_string(req.id) + " is " +
                                     serve::to_string(st.state) + ", not done");
        const Volume v = io::read_volume(st.output);
        if (req.slice < 0 || req.slice >= v.size().z)
            throw std::out_of_range("fetch_slice: slice " + std::to_string(req.slice) +
                                    " outside [0, " + std::to_string(v.size().z) + ")");
        const std::span<const float> s = v.slice(req.slice);
        ss << "{\"ok\":true,\"id\":" << req.id << ",\"slice\":" << req.slice
           << ",\"nx\":" << v.size().x << ",\"ny\":" << v.size().y
           << ",\"data\":" << serve::json_quote(hex_encode(std::as_bytes(s))) << "}";
    } else if (req.op == "metrics") {
        const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
        ss << "{\"ok\":true,\"counters\":{";
        bool first = true;
        for (const auto& c : snap.counters) {
            if (!first) ss << ",";
            first = false;
            ss << serve::json_quote(c.name) << ":" << c.value;
        }
        ss << "},\"gauges\":{";
        first = true;
        for (const auto& g : snap.gauges) {
            if (!first) ss << ",";
            first = false;
            ss << serve::json_quote(g.name) << ":" << serve::json_number(g.value);
        }
        ss << "}}";
    } else if (req.op == "shutdown") {
        g_stop.store(true, std::memory_order_release);
        ss << "{\"ok\":true,\"stopping\":true}";
    } else {
        throw std::invalid_argument("unknown op \"" + req.op + "\"");
    }
    return ss.str();
}

int run_daemon(const xct::cli::Args& args)
{
    using namespace xct;
    serve::EngineConfig cfg;
    cfg.spool = args.get("spool");
    cfg.device_budget = static_cast<std::size_t>(args.get_int("device-budget-mib")) << 20;
    cfg.workers = args.get_int("workers");
    cfg.max_queued = args.get_int("max-queued");
    cfg.tail_slack = args.get_double("tail-slack");
    cfg.fsync_journal = !args.get_flag("no-fsync");

    serve::Engine engine(cfg);
    const std::filesystem::path socket_path =
        args.is_set("socket") ? std::filesystem::path(args.get("socket"))
                              : cfg.spool / "xct-serve.sock";
    serve::UnixServer server(socket_path);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    engine.start();
    std::printf("xct_serve: spool %s, socket %s, %lld workers, budget %lld MiB, "
                "queue %lld (%lld jobs recovered)\n",
                cfg.spool.string().c_str(), socket_path.string().c_str(),
                static_cast<long long>(cfg.workers),
                static_cast<long long>(cfg.device_budget >> 20),
                static_cast<long long>(cfg.max_queued),
                static_cast<long long>(engine.recovered_jobs()));
    std::fflush(stdout);

    server.run([&engine](const std::string& line) { return handle(engine, line); }, g_stop);

    // Graceful stop deliberately mirrors a crash: running jobs are
    // cancelled but stay non-terminal in the journal, so the next daemon
    // over this spool requeues them from their checkpoints.
    engine.stop();
    std::printf("xct_serve: stopped\n");
    return 0;
}

int run_client(const xct::cli::Args& args)
{
    using namespace xct;
    serve::Request req;
    std::string op = args.get("op");
    if (op == "fetch-slice") op = "fetch_slice";
    req.op = op;
    req.id = static_cast<serve::JobId>(args.get_int("id"));
    req.slice = args.get_int("slice");
    req.timeout_s = args.get_double("timeout");
    if (op == "submit") {
        if (args.is_set("spec-json")) {
            req.spec = serve::decode_spec(serve::Json::parse(args.get("spec-json")));
        } else {
            io::Dataset ds = io::dataset_by_name(args.get("dataset"));
            if (args.get_double("scale") > 1.0) ds = ds.scaled(args.get_double("scale"));
            ds = ds.with_volume(args.get_int("volume"));
            req.spec.geometry = ds.geometry;
            req.spec.phantom_seed = static_cast<std::uint64_t>(args.get_int("phantom-seed"));
            req.spec.batches = args.get_int("batches");
            req.spec.device_capacity = static_cast<std::size_t>(args.get_int("job-device-mib"))
                                       << 20;
            req.spec.priority = serve::priority_from(args.get("priority"));
            req.spec.tenant = args.get("tenant");
            req.spec.deadline_s = args.get_double("deadline");
            req.spec.output = args.get("output");
        }
    }
    const std::filesystem::path socket_path = args.get("socket");
    const std::string response =
        serve::unix_request(socket_path, serve::encode_request(req), args.get_double("timeout"));
    std::printf("%s\n", response.c_str());
    const serve::Json j = serve::Json::parse(response);
    const serve::Json* ok = j.find("ok");
    return (ok != nullptr && ok->type == serve::Json::Type::Bool && ok->boolean) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("spool", "serve_spool", "spool directory: journal, checkpoints, outputs")
        .option("socket", "", "AF_UNIX socket path (default: <spool>/xct-serve.sock)")
        .option("workers", "2", "concurrent reconstruction sessions")
        .option("device-budget-mib", "256", "daemon-wide device memory budget [MiB]")
        .option("max-queued", "16", "bounded admission queue depth")
        .option("tail-slack", "1.25", "perfmodel tail-bound slack factor")
        .option("faults", "", "fault plan: <site>[:k=v,...][;<site>...] (keys p,after,count)")
        .option("fault-seed", "1", "seed for probabilistic fault triggers")
        .option("op", "ping",
                "client op: ping|submit|status|list|cancel|wait|fetch-slice|metrics|shutdown")
        .option("id", "0", "job id (status/cancel/wait/fetch-slice)")
        .option("slice", "0", "z-slice index (fetch-slice)")
        .option("timeout", "60", "client request / wait timeout [s]")
        .option("spec-json", "", "submit: raw JobSpec JSON (overrides the options below)")
        .option("dataset", "tomo_00030", "submit: paper dataset the geometry derives from")
        .option("scale", "12", "submit: resolution divisor applied to the dataset")
        .option("volume", "32", "submit: cubic output volume size")
        .option("phantom-seed", "0", "submit: 0 = Shepp-Logan, else porous-bean seed")
        .option("batches", "8", "submit: batch count Nc of the rank pipeline")
        .option("job-device-mib", "64", "submit: this job's device ask [MiB]")
        .option("priority", "normal", "submit: low|normal|high")
        .option("tenant", "default", "submit: fair-share accounting key")
        .option("deadline", "0", "submit: seconds until the job must finish (0 = none)")
        .option("output", "", "submit: volume path (default: <spool>/out/job-<id>.vol)")
        .flag("client", "talk to a running daemon instead of being one")
        .flag("integrity", "verify xxh64 digests on every bulk data movement")
        .flag("no-fsync", "skip the per-record journal fsync (tests only)");
    args.parse(argc, argv, "crash-durable multi-tenant reconstruction daemon");

    if (args.is_set("faults"))
        faults::set_plan(faults::FaultPlan::parse(
            args.get("faults"), static_cast<std::uint64_t>(args.get_int("fault-seed"))));
    integrity::set_enabled(args.get_flag("integrity"));

    try {
        return args.get_flag("client") ? run_client(args) : run_daemon(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "xct_serve: error: %s\n", e.what());
        return 1;
    }
}
