// xct_compare — numerical comparison of two volumes (the paper's Sec. 6.1
// assessment, as a tool): RMSE, flat-region RMSE, max abs difference, and
// a pass/fail against a threshold.
//
//   xct_compare --a recon.xvol --b truth.xvol --threshold 1e-5

#include <cmath>
#include <cstdio>

#include "cli.hpp"
#include "io/raw_io.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("a", "", "first volume")
        .option("b", "", "second volume (reference for the flat mask)")
        .option("margin", "2", "border voxels excluded from the metrics")
        .option("threshold", "0", "fail (exit 1) when RMSE exceeds this; 0 disables");
    args.parse(argc, argv, "compare two reconstructed volumes");
    require(args.is_set("a") && args.is_set("b"), "xct_compare: --a and --b are required");

    const Volume a = io::read_volume(args.get("a"));
    const Volume b = io::read_volume(args.get("b"));
    require(a.size() == b.size(), "xct_compare: volume sizes differ");

    const index_t margin = args.get_int("margin");
    const double r = recon::rmse(a, b, margin);
    const double rf = recon::rmse_flat(a, b, std::max<index_t>(margin, 1));
    double max_abs = 0.0;
    for (index_t i = 0; i < a.count(); ++i)
        max_abs = std::max(max_abs, std::abs(static_cast<double>(
                                        a.span()[static_cast<std::size_t>(i)] -
                                        b.span()[static_cast<std::size_t>(i)])));

    std::printf("volumes        : %lld x %lld x %lld\n", static_cast<long long>(a.size().x),
                static_cast<long long>(a.size().y), static_cast<long long>(a.size().z));
    std::printf("rmse           : %.6e\n", r);
    std::printf("rmse (flat)    : %.6e\n", rf);
    std::printf("max abs diff   : %.6e\n", max_abs);

    const double thr = args.get_double("threshold");
    if (thr > 0.0 && r > thr) {
        std::printf("FAIL: rmse above threshold %.3e\n", thr);
        return 1;
    }
    if (thr > 0.0) std::printf("PASS (threshold %.3e)\n", thr);
    return 0;
}
