#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xct_lint {
namespace {

/// A string literal found in the source: content without quotes, byte
/// offset of the opening quote, 1-based line number.
struct Literal {
    std::string text;
    std::size_t offset = 0;
    int line = 0;
};

/// Result of the blanking pass: `code` is the input with comments and
/// string/char literals replaced by spaces (newlines preserved so byte
/// offsets and line numbers stay aligned), plus the extracted literals.
struct Blanked {
    std::string code;
    std::vector<Literal> literals;
};

bool ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const std::string& s, std::size_t pos)
{
    return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<long>(pos), '\n'));
}

/// Strip comments and literals.  Handles //, /* */, "..." with escapes,
/// '...' char literals, and R"delim(...)delim" raw strings.
Blanked blank(const std::string& src)
{
    Blanked out;
    out.code = src;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto space_out = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k)
            if (out.code[k] != '\n') out.code[k] = ' ';
    };
    while (i < n) {
        const char c = src[i];
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos) end = n;
            space_out(i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            end = end == std::string::npos ? n : end + 2;
            space_out(i, end);
            i = end;
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
            const std::size_t open = src.find('(', i + 2);
            if (open == std::string::npos) break;
            std::string closer(1, ')');
            closer.append(src, i + 2, open - (i + 2));
            closer.push_back('"');
            std::size_t end = src.find(closer, open + 1);
            end = end == std::string::npos ? n : end + closer.size();
            out.literals.push_back(
                Literal{src.substr(open + 1, end - closer.size() - (open + 1)), i, line_of(src, i)});
            space_out(i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            const std::size_t start = i;
            ++i;
            while (i < n && src[i] != c) {
                if (src[i] == '\\') ++i;
                if (src[i] == '\n') break;  // unterminated: stop at line end
                ++i;
            }
            const std::size_t end = i < n ? i + 1 : n;
            if (c == '"')
                out.literals.push_back(Literal{src.substr(start + 1, end - start - 2), start,
                                               line_of(src, start)});
            space_out(start, end);
            i = end;
        } else {
            ++i;
        }
    }
    return out;
}

bool path_starts_with(const std::string& rel, const std::string& prefix)
{
    return rel.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------- names ----

/// Call sites whose literal arguments must be registered names.  The
/// value lists which 1-based argument positions to check when they are
/// string literals (non-literal arguments — names:: constants, variables
/// — are accepted as-is: the registry check happened where the constant
/// was defined).
struct NamePattern {
    const char* callee;
    std::vector<int> args;
};

const std::vector<NamePattern>& name_patterns()
{
    static const std::vector<NamePattern> p = {
        {"counter", {1}},
        {"gauge", {1}},
        {"histogram", {1}},
        {"ScopedTrace", {1, 2}},          // (category, name, ...)
        {"record_interval_abs", {1, 2}},  // (name, category, ...)
        {"record", {1, 2}},               // flight::record(cat, name, ...) /
                                          // Tracer::record(name, cat, ...)
        {"intern", {1}},                  // flight::intern(name)
        {"fleet_observe", {1}},           // fleet_observe(stage, seconds)
        {"dump_postmortem", {1}},         // flight::dump_postmortem(reason)
        {"faults::check", {1}},
        {"should_fail", {1}},
        {"with_retry", {1}},
        {"InjectedFault", {1}},
        {"gate", {1}},
        {"guarded", {1}},
        {"corrupt", {1}},      // faults::corrupt(site, buf)
        {"stall_point", {1}},  // faults::stall_point(site)
        {"supervise", {1}},    // Watchdog::supervise(section, fn)
        {"verify", {1}},       // integrity::verify(site, bytes, digest)
        {"transfer", {1}},     // sim::Device::transfer(site, op)
    };
    return p;
}

/// Find the literal whose opening quote sits at `offset`, if any.
const Literal* literal_at(const std::vector<Literal>& lits, std::size_t offset)
{
    for (const auto& l : lits)
        if (l.offset == offset) return &l;
    return nullptr;
}

void rule_names(const std::string& rel, const std::string& src, const Blanked& b,
                const Registry& reg, std::vector<Violation>& out)
{
    for (const auto& pat : name_patterns()) {
        const std::string needle = pat.callee;
        std::size_t pos = 0;
        while ((pos = b.code.find(needle, pos)) != std::string::npos) {
            const std::size_t after = pos + needle.size();
            // Token boundary: not the tail of a longer identifier.
            if (pos > 0 && ident_char(b.code[pos - 1])) {
                pos = after;
                continue;
            }
            // Accept both the call/temporary form `Callee(...)` and the
            // declaration form `Callee var(...)` (ScopedTrace guards).
            std::size_t q = after;
            while (q < b.code.size() && std::isspace(static_cast<unsigned char>(b.code[q]))) ++q;
            if (q < b.code.size() && ident_char(b.code[q])) {
                while (q < b.code.size() && ident_char(b.code[q])) ++q;
                while (q < b.code.size() && std::isspace(static_cast<unsigned char>(b.code[q])))
                    ++q;
            }
            if (q >= b.code.size() || b.code[q] != '(') {
                pos = after;
                continue;
            }
            // Walk the argument list at depth 1, visiting each argument's
            // first non-whitespace byte.
            int depth = 1;
            int arg = 1;
            std::size_t k = q + 1;
            std::size_t arg_start = k;
            auto visit = [&](std::size_t begin, std::size_t end, int index) {
                if (std::find(pat.args.begin(), pat.args.end(), index) == pat.args.end()) return;
                // Whitespace-skip in the ORIGINAL text: in the blanked copy
                // the literal itself is spaces and would be walked over.
                std::size_t s = begin;
                while (s < end && std::isspace(static_cast<unsigned char>(src[s]))) ++s;
                if (s >= end || src[s] != '"') return;  // not a literal: fine
                const Literal* lit = literal_at(b.literals, s);
                if (lit != nullptr && !reg.allows(lit->text))
                    out.push_back(Violation{
                        rel, lit->line, "names",
                        "\"" + lit->text + "\" passed to " + pat.callee +
                            "() is not registered in src/core/names.hpp"});
            };
            for (; k < b.code.size() && depth > 0; ++k) {
                const char ch = b.code[k];
                if (ch == '(' || ch == '[' || ch == '{') ++depth;
                if (ch == ')' || ch == ']' || ch == '}') {
                    --depth;
                    if (depth == 0) visit(arg_start, k, arg);
                }
                if (ch == ',' && depth == 1) {
                    visit(arg_start, k, arg);
                    ++arg;
                    arg_start = k + 1;
                }
            }
            pos = after;
        }
    }
}

// --------------------------------------------------------------- rawmem ----

void rule_rawmem(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    // The serialization layer legitimately reinterprets POD buffers for
    // stream I/O; the lint's own sources mention the tokens in messages.
    if (rel == "src/io/raw_io.cpp" || path_starts_with(rel, "tools/xct_lint/")) return;
    static const std::vector<std::pair<std::string, std::string>> banned = {
        {"new", "raw `new` — own memory with containers / make_unique"},
        {"malloc", "`malloc` — own memory with containers"},
        {"reinterpret_cast", "`reinterpret_cast` — only src/io/raw_io.cpp may reinterpret"},
    };
    for (const auto& [tok, msg] : banned) {
        std::size_t pos = 0;
        while ((pos = b.code.find(tok, pos)) != std::string::npos) {
            const bool lb = pos == 0 || !ident_char(b.code[pos - 1]);
            const std::size_t after = pos + tok.size();
            const bool rb = after >= b.code.size() || !ident_char(b.code[after]);
            if (lb && rb) out.push_back(Violation{rel, line_of(b.code, pos), "rawmem", msg});
            pos = after;
        }
    }
}

// -------------------------------------------------------------- intloop ----

/// Extent [body_begin, body_end) of the statement controlled by the `for`
/// whose header opens at `paren` — braces matched, or up to the `;` of a
/// single-statement body.
std::pair<std::size_t, std::size_t> loop_body(const std::string& code, std::size_t paren)
{
    int depth = 0;
    std::size_t k = paren;
    for (; k < code.size(); ++k) {
        if (code[k] == '(') ++depth;
        if (code[k] == ')' && --depth == 0) break;
    }
    if (k >= code.size()) return {code.size(), code.size()};
    std::size_t s = k + 1;
    while (s < code.size() && std::isspace(static_cast<unsigned char>(code[s]))) ++s;
    if (s < code.size() && code[s] == '{') {
        int braces = 0;
        std::size_t e = s;
        for (; e < code.size(); ++e) {
            if (code[e] == '{') ++braces;
            if (code[e] == '}' && --braces == 0) break;
        }
        return {s + 1, std::min(e, code.size())};
    }
    std::size_t e = code.find(';', s);
    return {s, e == std::string::npos ? code.size() : e};
}

void rule_intloop(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    const std::string& code = b.code;
    std::size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
        const std::size_t after = pos + 3;
        if ((pos > 0 && ident_char(code[pos - 1])) ||
            (after < code.size() && ident_char(code[after]))) {
            pos = after;
            continue;
        }
        std::size_t q = after;
        while (q < code.size() && std::isspace(static_cast<unsigned char>(code[q]))) ++q;
        if (q >= code.size() || code[q] != '(') {
            pos = after;
            continue;
        }
        // `for ( int VAR` — only plain int induction variables are suspect.
        std::size_t t = q + 1;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        if (code.compare(t, 4, "int ") != 0) {
            pos = after;
            continue;
        }
        t += 4;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        std::size_t ve = t;
        while (ve < code.size() && ident_char(code[ve])) ++ve;
        const std::string var = code.substr(t, ve - t);
        if (var.empty()) {
            pos = after;
            continue;
        }
        const auto [bs, be] = loop_body(code, q);
        // Multiplication adjacency: `var [)]* *` or `* [(]* var`.  The
        // closing-paren skip catches `static_cast<...>(var) * stride`;
        // subscripts (`a[var] * x`) deliberately do NOT match — there the
        // product is of the element, not the index.
        const std::string body = code.substr(bs, be - bs);
        bool hit = false;
        std::size_t vp = 0;
        while (!hit && (vp = body.find(var, vp)) != std::string::npos) {
            const bool lb = vp == 0 || !ident_char(body[vp - 1]);
            std::size_t e = vp + var.size();
            if (lb && (e >= body.size() || !ident_char(body[e]))) {
                std::size_t f = e;
                while (f < body.size() &&
                       (std::isspace(static_cast<unsigned char>(body[f])) || body[f] == ')'))
                    ++f;
                if (f < body.size() && body[f] == '*' &&
                    (f + 1 >= body.size() || body[f + 1] != '='))
                    hit = true;
                std::size_t g = vp;
                while (g > 0 && (std::isspace(static_cast<unsigned char>(body[g - 1])) ||
                                 body[g - 1] == '('))
                    --g;
                if (g > 0 && body[g - 1] == '*' && (g < 2 || body[g - 2] != '*')) hit = true;
            }
            vp = e;
        }
        if (hit)
            out.push_back(Violation{
                rel, line_of(code, pos), "intloop",
                "`int " + var + "` feeds a multiplication — flat-index arithmetic must "
                "run in index_t (overflows past 2G voxels)"});
        pos = after;
    }
}

// ---------------------------------------------------------------- mutex ----

void rule_mutex(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    const std::string& code = b.code;
    // (a) raw standard synchronisation primitives outside the wrapper.
    if (rel != "src/core/mutex.hpp" && !path_starts_with(rel, "tools/xct_lint/")) {
        static const std::vector<std::string> raw = {
            "std::mutex",          "std::shared_mutex",       "std::timed_mutex",
            "std::recursive_mutex", "std::condition_variable", "std::lock_guard",
            "std::scoped_lock",    "std::unique_lock",        "std::shared_lock",
        };
        for (const auto& tok : raw) {
            std::size_t pos = 0;
            while ((pos = code.find(tok, pos)) != std::string::npos) {
                const std::size_t after = pos + tok.size();
                if ((pos == 0 || !ident_char(code[pos - 1])) &&
                    (after >= code.size() || !ident_char(code[after])))
                    out.push_back(Violation{
                        rel, line_of(code, pos), "mutex",
                        tok + " — use the annotated wrappers in core/mutex.hpp so "
                        "-Wthread-safety sees the lock"});
                pos = after;
            }
        }
    }
    // (b) every `Mutex name;` declaration must be referenced by an XCT_*
    // thread-safety annotation somewhere in the same file — an
    // unannotated mutex guards nothing the analysis can verify.
    std::size_t pos = 0;
    while ((pos = code.find("Mutex", pos)) != std::string::npos) {
        const std::size_t after = pos + 5;
        if ((pos > 0 && (ident_char(code[pos - 1]) || code[pos - 1] == ':')) ||
            (after < code.size() && ident_char(code[after]))) {
            pos = after;  // MutexLock, xct::Mutex qualifier tail, etc.
            continue;
        }
        std::size_t t = after;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t])) &&
               code[t] != '\n')
            ++t;
        std::size_t ve = t;
        while (ve < code.size() && ident_char(code[ve])) ++ve;
        const std::string var = code.substr(t, ve - t);
        std::size_t semi = ve;
        while (semi < code.size() && std::isspace(static_cast<unsigned char>(code[semi]))) ++semi;
        if (var.empty() || semi >= code.size() || code[semi] != ';') {
            pos = after;  // reference, parameter, return type — not a declaration
            continue;
        }
        // Look for XCT_<RULE>(... var ...) anywhere in the file.
        bool annotated = false;
        std::size_t ap = 0;
        while (!annotated && (ap = code.find("XCT_", ap)) != std::string::npos) {
            std::size_t open = ap + 4;
            while (open < code.size() &&
                   (std::isupper(static_cast<unsigned char>(code[open])) || code[open] == '_'))
                ++open;
            if (open < code.size() && code[open] == '(') {
                const std::size_t close = code.find(')', open);
                const std::string inside =
                    code.substr(open + 1, close == std::string::npos ? 0 : close - open - 1);
                std::size_t ip = 0;
                while ((ip = inside.find(var, ip)) != std::string::npos) {
                    const bool lb = ip == 0 || !ident_char(inside[ip - 1]);
                    const std::size_t ie = ip + var.size();
                    if (lb && (ie >= inside.size() || !ident_char(inside[ie]))) {
                        annotated = true;
                        break;
                    }
                    ip = ie;
                }
            }
            ap += 4;
        }
        if (!annotated)
            out.push_back(Violation{
                rel, line_of(code, pos), "mutex",
                "Mutex `" + var + "` has no XCT_* thread-safety annotation referencing it "
                "(add XCT_GUARDED_BY(" + var + ") to the fields it protects)"});
        pos = after;
    }
}

std::string read_file(const std::filesystem::path& p)
{
    std::ifstream f(p, std::ios::binary);
    if (!f) throw std::runtime_error("xct_lint: cannot read " + p.string());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

}  // namespace

bool Registry::allows(const std::string& name) const
{
    if (std::find(exact.begin(), exact.end(), name) != exact.end()) return true;
    for (const auto& p : prefixes)
        if (name.size() > p.size() && name.compare(0, p.size(), p) == 0) return true;
    return false;
}

Registry parse_registry(const std::string& names_hpp_source)
{
    Registry reg;
    const Blanked b = blank(names_hpp_source);
    // A literal registers when its line declares a `constexpr const char*`
    // constant; prose in comments was blanked before literal extraction,
    // so only real initialisers remain.
    std::istringstream lines(b.code);
    std::string line;
    std::vector<int> decl_lines;
    int ln = 0;
    while (std::getline(lines, line)) {
        ++ln;
        if (line.find("constexpr const char*") != std::string::npos) decl_lines.push_back(ln);
    }
    for (const auto& lit : b.literals) {
        if (std::find(decl_lines.begin(), decl_lines.end(), lit.line) == decl_lines.end())
            continue;
        if (lit.text.empty()) continue;
        reg.exact.push_back(lit.text);
        if (lit.text.back() == '.') reg.prefixes.push_back(lit.text);
    }
    return reg;
}

std::vector<Violation> lint_source(const std::string& rel, const std::string& source,
                                   const Registry& reg)
{
    std::vector<Violation> out;
    const Blanked b = blank(source);
    rule_names(rel, source, b, reg, out);
    rule_rawmem(rel, b, out);
    rule_intloop(rel, b, out);
    rule_mutex(rel, b, out);
    std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& c) {
        return a.line < c.line;
    });
    return out;
}

std::vector<Violation> lint_tree(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs)
{
    const Registry reg = parse_registry(read_file(root / "src" / "core" / "names.hpp"));
    std::vector<Violation> out;
    for (const auto& dir : dirs) {
        const auto base = root / dir;
        if (!std::filesystem::exists(base)) continue;
        std::vector<std::filesystem::path> files;
        for (const auto& e : std::filesystem::recursive_directory_iterator(base)) {
            if (!e.is_regular_file()) continue;
            const auto ext = e.path().extension();
            if (ext != ".hpp" && ext != ".cpp") continue;
            if (e.path().string().find("lint_fixtures") != std::string::npos) continue;
            files.push_back(e.path());
        }
        std::sort(files.begin(), files.end());
        for (const auto& p : files) {
            const std::string rel =
                std::filesystem::relative(p, root).generic_string();
            const auto vs = lint_source(rel, read_file(p), reg);
            out.insert(out.end(), vs.begin(), vs.end());
        }
    }
    return out;
}

std::string format(const std::vector<Violation>& violations)
{
    std::ostringstream out;
    for (const auto& v : violations)
        out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
    return out.str();
}

}  // namespace xct_lint
