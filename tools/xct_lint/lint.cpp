#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace xct_lint {
namespace {

/// A string literal found in the source: content without quotes, byte
/// offset of the opening quote, 1-based line number.
struct Literal {
    std::string text;
    std::size_t offset = 0;
    int line = 0;
};

/// Result of the blanking pass: `code` is the input with comments and
/// string/char literals replaced by spaces (newlines preserved so byte
/// offsets and line numbers stay aligned), plus the extracted literals.
struct Blanked {
    std::string code;
    std::vector<Literal> literals;
};

bool ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const std::string& s, std::size_t pos)
{
    return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<long>(pos), '\n'));
}

/// Strip comments and literals.  Handles //, /* */, "..." with escapes,
/// '...' char literals, and R"delim(...)delim" raw strings.
Blanked blank(const std::string& src)
{
    Blanked out;
    out.code = src;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto space_out = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k)
            if (out.code[k] != '\n') out.code[k] = ' ';
    };
    while (i < n) {
        const char c = src[i];
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos) end = n;
            space_out(i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            end = end == std::string::npos ? n : end + 2;
            space_out(i, end);
            i = end;
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
            const std::size_t open = src.find('(', i + 2);
            if (open == std::string::npos) break;
            std::string closer(1, ')');
            closer.append(src, i + 2, open - (i + 2));
            closer.push_back('"');
            std::size_t end = src.find(closer, open + 1);
            end = end == std::string::npos ? n : end + closer.size();
            out.literals.push_back(
                Literal{src.substr(open + 1, end - closer.size() - (open + 1)), i, line_of(src, i)});
            space_out(i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            const std::size_t start = i;
            ++i;
            while (i < n && src[i] != c) {
                if (src[i] == '\\') ++i;
                if (src[i] == '\n') break;  // unterminated: stop at line end
                ++i;
            }
            const std::size_t end = i < n ? i + 1 : n;
            if (c == '"')
                out.literals.push_back(Literal{src.substr(start + 1, end - start - 2), start,
                                               line_of(src, start)});
            space_out(start, end);
            i = end;
        } else {
            ++i;
        }
    }
    return out;
}

bool path_starts_with(const std::string& rel, const std::string& prefix)
{
    return rel.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------- names ----

/// Call sites whose literal arguments must be registered names.  The
/// value lists which 1-based argument positions to check when they are
/// string literals (non-literal arguments — names:: constants, variables
/// — are accepted as-is: the registry check happened where the constant
/// was defined).
struct NamePattern {
    const char* callee;
    std::vector<int> args;
};

const std::vector<NamePattern>& name_patterns()
{
    static const std::vector<NamePattern> p = {
        {"counter", {1}},
        {"gauge", {1}},
        {"histogram", {1}},
        {"ScopedTrace", {1, 2}},          // (category, name, ...)
        {"record_interval_abs", {1, 2}},  // (name, category, ...)
        {"record", {1, 2}},               // flight::record(cat, name, ...) /
                                          // Tracer::record(name, cat, ...)
        {"intern", {1}},                  // flight::intern(name)
        {"fleet_observe", {1}},           // fleet_observe(stage, seconds)
        {"dump_postmortem", {1}},         // flight::dump_postmortem(reason)
        {"faults::check", {1}},
        {"should_fail", {1}},
        {"with_retry", {1}},
        {"InjectedFault", {1}},
        {"gate", {1}},
        {"guarded", {1}},
        {"corrupt", {1}},      // faults::corrupt(site, buf)
        {"stall_point", {1}},  // faults::stall_point(site)
        {"supervise", {1}},    // Watchdog::supervise(section, fn)
        {"verify", {1}},       // integrity::verify(site, bytes, digest)
        {"transfer", {1}},     // sim::Device::transfer(site, op)
    };
    return p;
}

/// Find the literal whose opening quote sits at `offset`, if any.
const Literal* literal_at(const std::vector<Literal>& lits, std::size_t offset)
{
    for (const auto& l : lits)
        if (l.offset == offset) return &l;
    return nullptr;
}

void rule_names(const std::string& rel, const std::string& src, const Blanked& b,
                const Registry& reg, std::vector<Violation>& out)
{
    for (const auto& pat : name_patterns()) {
        const std::string needle = pat.callee;
        std::size_t pos = 0;
        while ((pos = b.code.find(needle, pos)) != std::string::npos) {
            const std::size_t after = pos + needle.size();
            // Token boundary: not the tail of a longer identifier.
            if (pos > 0 && ident_char(b.code[pos - 1])) {
                pos = after;
                continue;
            }
            // Accept both the call/temporary form `Callee(...)` and the
            // declaration form `Callee var(...)` (ScopedTrace guards).
            std::size_t q = after;
            while (q < b.code.size() && std::isspace(static_cast<unsigned char>(b.code[q]))) ++q;
            if (q < b.code.size() && ident_char(b.code[q])) {
                while (q < b.code.size() && ident_char(b.code[q])) ++q;
                while (q < b.code.size() && std::isspace(static_cast<unsigned char>(b.code[q])))
                    ++q;
            }
            if (q >= b.code.size() || b.code[q] != '(') {
                pos = after;
                continue;
            }
            // Walk the argument list at depth 1, visiting each argument's
            // first non-whitespace byte.
            int depth = 1;
            int arg = 1;
            std::size_t k = q + 1;
            std::size_t arg_start = k;
            auto visit = [&](std::size_t begin, std::size_t end, int index) {
                if (std::find(pat.args.begin(), pat.args.end(), index) == pat.args.end()) return;
                // Whitespace-skip in the ORIGINAL text: in the blanked copy
                // the literal itself is spaces and would be walked over.
                std::size_t s = begin;
                while (s < end && std::isspace(static_cast<unsigned char>(src[s]))) ++s;
                if (s >= end || src[s] != '"') return;  // not a literal: fine
                const Literal* lit = literal_at(b.literals, s);
                if (lit != nullptr && !reg.allows(lit->text))
                    out.push_back(Violation{
                        rel, lit->line, "names",
                        "\"" + lit->text + "\" passed to " + pat.callee +
                            "() is not registered in src/core/names.hpp"});
            };
            for (; k < b.code.size() && depth > 0; ++k) {
                const char ch = b.code[k];
                if (ch == '(' || ch == '[' || ch == '{') ++depth;
                if (ch == ')' || ch == ']' || ch == '}') {
                    --depth;
                    if (depth == 0) visit(arg_start, k, arg);
                }
                if (ch == ',' && depth == 1) {
                    visit(arg_start, k, arg);
                    ++arg;
                    arg_start = k + 1;
                }
            }
            pos = after;
        }
    }
}

// --------------------------------------------------------------- rawmem ----

void rule_rawmem(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    // The serialization layer legitimately reinterprets POD buffers for
    // stream I/O; the lint's own sources mention the tokens in messages.
    if (rel == "src/io/raw_io.cpp" || path_starts_with(rel, "tools/xct_lint/")) return;
    static const std::vector<std::pair<std::string, std::string>> banned = {
        {"new", "raw `new` — own memory with containers / make_unique"},
        {"malloc", "`malloc` — own memory with containers"},
        {"reinterpret_cast", "`reinterpret_cast` — only src/io/raw_io.cpp may reinterpret"},
    };
    for (const auto& [tok, msg] : banned) {
        std::size_t pos = 0;
        while ((pos = b.code.find(tok, pos)) != std::string::npos) {
            const bool lb = pos == 0 || !ident_char(b.code[pos - 1]);
            const std::size_t after = pos + tok.size();
            const bool rb = after >= b.code.size() || !ident_char(b.code[after]);
            if (lb && rb) out.push_back(Violation{rel, line_of(b.code, pos), "rawmem", msg});
            pos = after;
        }
    }
}

// -------------------------------------------------------------- intloop ----

/// Extent [body_begin, body_end) of the statement controlled by the `for`
/// whose header opens at `paren` — braces matched, or up to the `;` of a
/// single-statement body.
std::pair<std::size_t, std::size_t> loop_body(const std::string& code, std::size_t paren)
{
    int depth = 0;
    std::size_t k = paren;
    for (; k < code.size(); ++k) {
        if (code[k] == '(') ++depth;
        if (code[k] == ')' && --depth == 0) break;
    }
    if (k >= code.size()) return {code.size(), code.size()};
    std::size_t s = k + 1;
    while (s < code.size() && std::isspace(static_cast<unsigned char>(code[s]))) ++s;
    if (s < code.size() && code[s] == '{') {
        int braces = 0;
        std::size_t e = s;
        for (; e < code.size(); ++e) {
            if (code[e] == '{') ++braces;
            if (code[e] == '}' && --braces == 0) break;
        }
        return {s + 1, std::min(e, code.size())};
    }
    std::size_t e = code.find(';', s);
    return {s, e == std::string::npos ? code.size() : e};
}

void rule_intloop(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    const std::string& code = b.code;
    std::size_t pos = 0;
    while ((pos = code.find("for", pos)) != std::string::npos) {
        const std::size_t after = pos + 3;
        if ((pos > 0 && ident_char(code[pos - 1])) ||
            (after < code.size() && ident_char(code[after]))) {
            pos = after;
            continue;
        }
        std::size_t q = after;
        while (q < code.size() && std::isspace(static_cast<unsigned char>(code[q]))) ++q;
        if (q >= code.size() || code[q] != '(') {
            pos = after;
            continue;
        }
        // `for ( int VAR` — only plain int induction variables are suspect.
        std::size_t t = q + 1;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        if (code.compare(t, 4, "int ") != 0) {
            pos = after;
            continue;
        }
        t += 4;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        std::size_t ve = t;
        while (ve < code.size() && ident_char(code[ve])) ++ve;
        const std::string var = code.substr(t, ve - t);
        if (var.empty()) {
            pos = after;
            continue;
        }
        const auto [bs, be] = loop_body(code, q);
        // Multiplication adjacency: `var [)]* *` or `* [(]* var`.  The
        // closing-paren skip catches `static_cast<...>(var) * stride`;
        // subscripts (`a[var] * x`) deliberately do NOT match — there the
        // product is of the element, not the index.
        const std::string body = code.substr(bs, be - bs);
        bool hit = false;
        std::size_t vp = 0;
        while (!hit && (vp = body.find(var, vp)) != std::string::npos) {
            const bool lb = vp == 0 || !ident_char(body[vp - 1]);
            std::size_t e = vp + var.size();
            if (lb && (e >= body.size() || !ident_char(body[e]))) {
                std::size_t f = e;
                while (f < body.size() &&
                       (std::isspace(static_cast<unsigned char>(body[f])) || body[f] == ')'))
                    ++f;
                if (f < body.size() && body[f] == '*' &&
                    (f + 1 >= body.size() || body[f + 1] != '='))
                    hit = true;
                std::size_t g = vp;
                while (g > 0 && (std::isspace(static_cast<unsigned char>(body[g - 1])) ||
                                 body[g - 1] == '('))
                    --g;
                if (g > 0 && body[g - 1] == '*' && (g < 2 || body[g - 2] != '*')) hit = true;
            }
            vp = e;
        }
        if (hit)
            out.push_back(Violation{
                rel, line_of(code, pos), "intloop",
                "`int " + var + "` feeds a multiplication — flat-index arithmetic must "
                "run in index_t (overflows past 2G voxels)"});
        pos = after;
    }
}

// ---------------------------------------------------------------- mutex ----

void rule_mutex(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    const std::string& code = b.code;
    // (a) raw standard synchronisation primitives outside the wrapper.
    // core/lockorder.cpp is the runtime witness behind the wrappers: it
    // must synchronise its own edge set with a primitive the instrumented
    // Mutex does not call back into.
    if (rel != "src/core/mutex.hpp" && !path_starts_with(rel, "src/core/lockorder.") &&
        !path_starts_with(rel, "tools/xct_lint/")) {
        static const std::vector<std::string> raw = {
            "std::mutex",          "std::shared_mutex",       "std::timed_mutex",
            "std::recursive_mutex", "std::condition_variable", "std::lock_guard",
            "std::scoped_lock",    "std::unique_lock",        "std::shared_lock",
        };
        for (const auto& tok : raw) {
            std::size_t pos = 0;
            while ((pos = code.find(tok, pos)) != std::string::npos) {
                const std::size_t after = pos + tok.size();
                if ((pos == 0 || !ident_char(code[pos - 1])) &&
                    (after >= code.size() || !ident_char(code[after])))
                    out.push_back(Violation{
                        rel, line_of(code, pos), "mutex",
                        tok + " — use the annotated wrappers in core/mutex.hpp so "
                        "-Wthread-safety sees the lock"});
                pos = after;
            }
        }
    }
    // (b) every `Mutex name;` declaration must be referenced by an XCT_*
    // thread-safety annotation somewhere in the same file — an
    // unannotated mutex guards nothing the analysis can verify.
    std::size_t pos = 0;
    while ((pos = code.find("Mutex", pos)) != std::string::npos) {
        const std::size_t after = pos + 5;
        if ((pos > 0 && (ident_char(code[pos - 1]) || code[pos - 1] == ':')) ||
            (after < code.size() && ident_char(code[after]))) {
            pos = after;  // MutexLock, xct::Mutex qualifier tail, etc.
            continue;
        }
        std::size_t t = after;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t])) &&
               code[t] != '\n')
            ++t;
        std::size_t ve = t;
        while (ve < code.size() && ident_char(code[ve])) ++ve;
        const std::string var = code.substr(t, ve - t);
        std::size_t semi = ve;
        while (semi < code.size() && std::isspace(static_cast<unsigned char>(code[semi]))) ++semi;
        if (var.empty() || semi >= code.size() || code[semi] != ';') {
            pos = after;  // reference, parameter, return type — not a declaration
            continue;
        }
        // Look for XCT_<RULE>(... var ...) anywhere in the file.
        bool annotated = false;
        std::size_t ap = 0;
        while (!annotated && (ap = code.find("XCT_", ap)) != std::string::npos) {
            std::size_t open = ap + 4;
            while (open < code.size() &&
                   (std::isupper(static_cast<unsigned char>(code[open])) || code[open] == '_'))
                ++open;
            if (open < code.size() && code[open] == '(') {
                const std::size_t close = code.find(')', open);
                const std::string inside =
                    code.substr(open + 1, close == std::string::npos ? 0 : close - open - 1);
                std::size_t ip = 0;
                while ((ip = inside.find(var, ip)) != std::string::npos) {
                    const bool lb = ip == 0 || !ident_char(inside[ip - 1]);
                    const std::size_t ie = ip + var.size();
                    if (lb && (ie >= inside.size() || !ident_char(inside[ie]))) {
                        annotated = true;
                        break;
                    }
                    ip = ie;
                }
            }
            ap += 4;
        }
        if (!annotated)
            out.push_back(Violation{
                rel, line_of(code, pos), "mutex",
                "Mutex `" + var + "` has no XCT_* thread-safety annotation referencing it "
                "(add XCT_GUARDED_BY(" + var + ") to the fields it protects)"});
        pos = after;
    }
}

// ------------------------------------------------------------------ ids ----

void rule_ids(const std::string& rel, const Blanked& b, std::vector<Violation>& out)
{
    // core/ids.hpp defines the strong types; minimpi is the raw-rank
    // boundary (it speaks world ranks like MPI does); the lint's own
    // sources mention the tokens in messages.
    if (rel == "src/core/ids.hpp" || path_starts_with(rel, "src/minimpi/") ||
        path_starts_with(rel, "tools/xct_lint/"))
        return;
    static const std::vector<std::string> axes = {"rank", "group", "view", "slab", "job"};
    static const std::vector<std::string> types = {"index_t", "int"};
    const std::string& code = b.code;
    for (const auto& type : types) {
        std::size_t pos = 0;
        while ((pos = code.find(type, pos)) != std::string::npos) {
            const std::size_t after = pos + type.size();
            if ((pos > 0 && (ident_char(code[pos - 1]) || code[pos - 1] == ':')) ||
                (after < code.size() && ident_char(code[after]))) {
                pos = after;
                continue;
            }
            std::size_t t = after;
            while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
            std::size_t ve = t;
            while (ve < code.size() && ident_char(code[ve])) ++ve;
            std::string var = code.substr(t, ve - t);
            if (!var.empty() && var.back() == '_') var.pop_back();
            std::size_t sep = ve;
            while (sep < code.size() && std::isspace(static_cast<unsigned char>(code[sep])))
                ++sep;
            const bool declares = sep < code.size() && (code[sep] == ',' || code[sep] == ')' ||
                                                        code[sep] == ';' || code[sep] == '=' ||
                                                        code[sep] == '{');
            if (declares && std::find(axes.begin(), axes.end(), var) != axes.end())
                out.push_back(Violation{
                    rel, line_of(code, pos), "ids",
                    "raw `" + type + "` declaration named `" + code.substr(t, ve - t) +
                        "` — use the strong " +
                        std::string(1, static_cast<char>(std::toupper(
                                           static_cast<unsigned char>(var[0])))) +
                        var.substr(1) + "Id from core/ids.hpp (minimpi is the only raw-" +
                        "rank boundary)"});
            pos = after;
        }
    }
}

// ------------------------------------------------------------ lockorder ----

/// Normalise a guarded-mutex expression into a graph node: whitespace
/// stripped, `->` folded to `.`, leading `this.` / `&` dropped.  Keeping
/// the FULL access path (not just the final member) is what separates
/// `team.m` from `st.m` — collapsing both to `m` would invent a self-edge
/// where the code locks two different objects.
std::string normalize_lock_expr(const std::string& raw)
{
    std::string s;
    s.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        if (c == '-' && i + 1 < raw.size() && raw[i + 1] == '>') {
            s.push_back('.');
            ++i;
            continue;
        }
        s.push_back(c);
    }
    if (s.rfind("this.", 0) == 0) s.erase(0, 5);
    if (!s.empty() && s.front() == '&') s.erase(0, 1);
    while (!s.empty() && s.front() == '*') s.erase(0, 1);
    return s;
}

}  // namespace

std::vector<LockEdge> extract_lock_edges(const std::string& rel, const std::string& source)
{
    std::vector<LockEdge> edges;
    if (rel == "src/core/mutex.hpp" || path_starts_with(rel, "src/core/lockorder.") ||
        path_starts_with(rel, "tools/xct_lint/"))
        return edges;
    const Blanked b = blank(source);
    const std::string& code = b.code;

    struct Guard {
        int depth;
        std::string node;
    };
    std::vector<Guard> held;
    int depth = 0;
    std::size_t i = 0;
    while (i < code.size()) {
        const char c = code[i];
        if (c == '{') {
            ++depth;
            ++i;
            continue;
        }
        if (c == '}') {
            --depth;
            while (!held.empty() && held.back().depth > depth) held.pop_back();
            ++i;
            continue;
        }
        if (c != 'M' && c != 'U') {
            ++i;
            continue;
        }
        static const std::string kinds[2] = {"MutexLock", "UniqueLock"};
        const std::string* kind = nullptr;
        for (const auto& k : kinds)
            if (code.compare(i, k.size(), k) == 0) kind = &k;
        if (kind == nullptr || (i > 0 && (ident_char(code[i - 1]) || code[i - 1] == ':'))) {
            ++i;
            continue;
        }
        std::size_t t = i + kind->size();
        if (t < code.size() && ident_char(code[t])) {
            ++i;
            continue;
        }
        // Declaration form `MutexLock name(expr);` — skip the guard name.
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        while (t < code.size() && ident_char(code[t])) ++t;
        while (t < code.size() && std::isspace(static_cast<unsigned char>(code[t]))) ++t;
        if (t >= code.size() || (code[t] != '(' && code[t] != '{')) {
            ++i;
            continue;
        }
        const char open = code[t];
        const char close = open == '(' ? ')' : '}';
        int pdepth = 0;
        std::size_t e = t;
        for (; e < code.size(); ++e) {
            if (code[e] == open) ++pdepth;
            if (code[e] == close && --pdepth == 0) break;
        }
        if (e >= code.size()) break;
        const std::string node = normalize_lock_expr(code.substr(t + 1, e - t - 1));
        if (!node.empty()) {
            for (const auto& g : held)
                edges.push_back(LockEdge{g.node, node, rel, line_of(code, i)});
            held.push_back(Guard{depth, node});
        }
        i = e + 1;
    }
    return edges;
}

std::vector<Violation> check_lock_graph(const std::vector<LockEdge>& edges,
                                        const std::vector<std::string>& whitelist)
{
    // Parse whitelist lines "from -> to" (whitespace-tolerant, '#' comments).
    std::vector<std::pair<std::string, std::string>> allowed;
    for (const auto& raw : whitelist) {
        std::string line = raw.substr(0, raw.find('#'));
        const std::size_t arrow = line.find("->");
        if (arrow == std::string::npos) continue;
        auto trim = [](std::string s) {
            while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
                s.erase(0, 1);
            while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.pop_back();
            return s;
        };
        const std::string from = trim(line.substr(0, arrow));
        const std::string to = trim(line.substr(arrow + 2));
        if (!from.empty() && !to.empty()) allowed.emplace_back(from, to);
    }
    const auto is_allowed = [&](const std::string& f, const std::string& t) {
        for (const auto& [af, at] : allowed)
            if (af == f && at == t) return true;
        return false;
    };

    // Deduplicated adjacency, keeping one witness (file:line) per edge.
    std::vector<std::string> nodes;
    const auto node_id = [&](const std::string& n) {
        const auto it = std::find(nodes.begin(), nodes.end(), n);
        if (it != nodes.end()) return static_cast<std::size_t>(it - nodes.begin());
        nodes.push_back(n);
        return nodes.size() - 1;
    };
    struct Adj {
        std::size_t to;
        std::string file;
        int line;
    };
    std::vector<std::vector<Adj>> adj;
    for (const auto& e : edges) {
        const std::size_t f = node_id(e.from);
        const std::size_t t = node_id(e.to);
        adj.resize(nodes.size());
        bool dup = false;
        for (const auto& a : adj[f]) dup = dup || a.to == t;
        if (!dup) adj[f].push_back(Adj{t, e.file, e.line});
    }
    adj.resize(nodes.size());

    // DFS with colouring; a back edge closes a cycle.  Each cycle is
    // reported once, keyed by its sorted node set.
    std::vector<Violation> out;
    std::vector<std::string> seen_cycles;
    std::vector<int> color(nodes.size(), 0);  // 0 white, 1 on stack, 2 done
    std::vector<std::size_t> stack;
    const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
        color[u] = 1;
        stack.push_back(u);
        for (const auto& a : adj[u]) {
            if (color[a.to] == 1) {
                // Reconstruct u -> ... -> a.to from the stack.
                auto it = std::find(stack.begin(), stack.end(), a.to);
                std::vector<std::string> cyc;
                for (; it != stack.end(); ++it) cyc.push_back(nodes[*it]);
                // A cycle is accepted only when EVERY edge in it was
                // reviewed: a partial whitelist must not hide a cycle
                // that traverses unreviewed acquisitions.
                bool fully_allowed = true;
                for (std::size_t i = 0; i < cyc.size(); ++i)
                    fully_allowed =
                        fully_allowed && is_allowed(cyc[i], cyc[(i + 1) % cyc.size()]);
                if (fully_allowed) continue;
                std::vector<std::string> key = cyc;
                std::sort(key.begin(), key.end());
                std::string keystr;
                for (const auto& k : key) keystr += k + "|";
                if (std::find(seen_cycles.begin(), seen_cycles.end(), keystr) ==
                    seen_cycles.end()) {
                    seen_cycles.push_back(keystr);
                    std::string path;
                    for (const auto& n : cyc) path += n + " -> ";
                    path += nodes[a.to];
                    out.push_back(Violation{
                        a.file, a.line, "lockorder",
                        "lock-order cycle: " + path +
                            " — a thread holding the first mutex can deadlock against one "
                            "holding the last (whitelist reviewed edges in "
                            "tools/xct_lint/lockorder_allow.txt)"});
                }
            } else if (color[a.to] == 0) {
                dfs(a.to);
            }
        }
        stack.pop_back();
        color[u] = 2;
    };
    for (std::size_t u = 0; u < nodes.size(); ++u)
        if (color[u] == 0) dfs(u);
    return out;
}

namespace {

// ------------------------------------------------------------- deadname ----

/// Constants declared in names.hpp: identifier + 1-based declaration line.
struct NameDecl {
    std::string ident;
    int line = 0;
};

std::vector<NameDecl> parse_name_decls(const std::string& names_hpp_source)
{
    std::vector<NameDecl> decls;
    const Blanked b = blank(names_hpp_source);
    std::istringstream lines(b.code);
    std::string line;
    int ln = 0;
    while (std::getline(lines, line)) {
        ++ln;
        const std::size_t at = line.find("constexpr const char*");
        if (at == std::string::npos) continue;
        std::size_t t = at + std::string("constexpr const char*").size();
        while (t < line.size() && std::isspace(static_cast<unsigned char>(line[t]))) ++t;
        std::size_t e = t;
        while (e < line.size() && ident_char(line[e])) ++e;
        const std::string ident = line.substr(t, e - t);
        if (!ident.empty() && ident[0] == 'k') decls.push_back(NameDecl{ident, ln});
    }
    return decls;
}

/// Word-boundary search for `ident` in blanked code.
bool references_ident(const std::string& code, const std::string& ident)
{
    std::size_t pos = 0;
    while ((pos = code.find(ident, pos)) != std::string::npos) {
        const std::size_t after = pos + ident.size();
        if ((pos == 0 || !ident_char(code[pos - 1])) &&
            (after >= code.size() || !ident_char(code[after])))
            return true;
        pos = after;
    }
    return false;
}

void rule_deadname(const std::string& names_rel, const std::string& names_source,
                   const std::vector<std::string>& other_blanked_sources,
                   std::vector<Violation>& out)
{
    for (const auto& decl : parse_name_decls(names_source)) {
        bool used = false;
        for (const auto& code : other_blanked_sources)
            if (references_ident(code, decl.ident)) {
                used = true;
                break;
            }
        if (!used)
            out.push_back(Violation{
                names_rel, decl.line, "deadname",
                "`" + decl.ident + "` is registered in names.hpp but referenced nowhere — "
                "delete the registration or wire the emitter that was meant to use it"});
    }
}

std::string read_file(const std::filesystem::path& p)
{
    std::ifstream f(p, std::ios::binary);
    if (!f) throw std::runtime_error("xct_lint: cannot read " + p.string());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

}  // namespace

bool Registry::allows(const std::string& name) const
{
    if (std::find(exact.begin(), exact.end(), name) != exact.end()) return true;
    for (const auto& p : prefixes)
        if (name.size() > p.size() && name.compare(0, p.size(), p) == 0) return true;
    return false;
}

Registry parse_registry(const std::string& names_hpp_source)
{
    Registry reg;
    const Blanked b = blank(names_hpp_source);
    // A literal registers when its line declares a `constexpr const char*`
    // constant; prose in comments was blanked before literal extraction,
    // so only real initialisers remain.
    std::istringstream lines(b.code);
    std::string line;
    std::vector<int> decl_lines;
    int ln = 0;
    while (std::getline(lines, line)) {
        ++ln;
        if (line.find("constexpr const char*") != std::string::npos) decl_lines.push_back(ln);
    }
    for (const auto& lit : b.literals) {
        if (std::find(decl_lines.begin(), decl_lines.end(), lit.line) == decl_lines.end())
            continue;
        if (lit.text.empty()) continue;
        reg.exact.push_back(lit.text);
        if (lit.text.back() == '.') reg.prefixes.push_back(lit.text);
    }
    return reg;
}

std::vector<Violation> lint_source(const std::string& rel, const std::string& source,
                                   const Registry& reg)
{
    std::vector<Violation> out;
    const Blanked b = blank(source);
    rule_names(rel, source, b, reg, out);
    rule_rawmem(rel, b, out);
    rule_intloop(rel, b, out);
    rule_mutex(rel, b, out);
    rule_ids(rel, b, out);
    std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& c) {
        return a.line < c.line;
    });
    return out;
}

std::vector<Violation> lint_files(const std::filesystem::path& root, const FileSet& files)
{
    const Registry reg = parse_registry(read_file(root / "src" / "core" / "names.hpp"));

    std::vector<Violation> out;
    std::vector<LockEdge> edges;
    std::vector<std::string> blanked_codes;
    const std::string* names_source = nullptr;
    for (const auto& [rel, source] : files) {
        const auto vs = lint_source(rel, source, reg);
        out.insert(out.end(), vs.begin(), vs.end());
        const auto es = extract_lock_edges(rel, source);
        edges.insert(edges.end(), es.begin(), es.end());
        if (rel == "src/core/names.hpp")
            names_source = &source;
        else
            blanked_codes.push_back(blank(source).code);
    }

    std::vector<std::string> whitelist;
    {
        std::ifstream wl(root / "tools" / "xct_lint" / "lockorder_allow.txt");
        std::string line;
        while (std::getline(wl, line)) whitelist.push_back(line);
    }
    const auto lvs = check_lock_graph(edges, whitelist);
    out.insert(out.end(), lvs.begin(), lvs.end());

    // deadname needs the registry source in the scanned set: a partial
    // set (a lint fixture, a single TU) must not declare the whole
    // registry dead.
    if (names_source != nullptr)
        rule_deadname("src/core/names.hpp", *names_source, blanked_codes, out);

    std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& c) {
        return a.file != c.file ? a.file < c.file : a.line < c.line;
    });
    return out;
}

std::vector<Violation> lint_tree(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs)
{
    FileSet set;
    for (const auto& dir : dirs) {
        const auto base = root / dir;
        if (!std::filesystem::exists(base)) continue;
        std::vector<std::filesystem::path> files;
        for (const auto& e : std::filesystem::recursive_directory_iterator(base)) {
            if (!e.is_regular_file()) continue;
            const auto ext = e.path().extension();
            if (ext != ".hpp" && ext != ".cpp") continue;
            if (e.path().string().find("lint_fixtures") != std::string::npos) continue;
            files.push_back(e.path());
        }
        std::sort(files.begin(), files.end());
        for (const auto& p : files)
            set.emplace_back(std::filesystem::relative(p, root).generic_string(), read_file(p));
    }
    return lint_files(root, set);
}

namespace {

/// Minimal compile_commands.json reader: split top-level objects, pull
/// the "directory" and "file" string values out of each.  The format is
/// machine-written flat JSON (CMake emits it), so a full parser would be
/// dead weight.
struct DbEntry {
    std::string directory;
    std::string file;
};

std::string json_string_value(const std::string& obj, const std::string& key)
{
    const std::size_t k = obj.find("\"" + key + "\"");
    if (k == std::string::npos) return {};
    std::size_t q = obj.find('"', k + key.size() + 2);
    if (q == std::string::npos) return {};
    std::string out;
    for (std::size_t i = q + 1; i < obj.size(); ++i) {
        const char c = obj[i];
        if (c == '\\' && i + 1 < obj.size()) {
            out.push_back(obj[++i]);
            continue;
        }
        if (c == '"') break;
        out.push_back(c);
    }
    return out;
}

std::vector<DbEntry> parse_compile_db(const std::string& json)
{
    std::vector<DbEntry> entries;
    int depth = 0;
    std::size_t start = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        if (c == '{' && depth++ == 0) start = i;
        if (c == '}' && --depth == 0) {
            const std::string obj = json.substr(start, i - start + 1);
            DbEntry e{json_string_value(obj, "directory"), json_string_value(obj, "file")};
            if (!e.file.empty()) entries.push_back(e);
        }
    }
    return entries;
}

/// Repo-relative generic path for `p` if it lives under `root` and is a
/// lintable source; empty otherwise.
std::string lintable_rel(const std::filesystem::path& root, const std::filesystem::path& p,
                         const std::vector<std::string>& scopes)
{
    std::error_code ec;
    const auto canon = std::filesystem::weakly_canonical(p, ec);
    if (ec) return {};
    const auto rel = canon.lexically_relative(std::filesystem::weakly_canonical(root, ec));
    const std::string s = rel.generic_string();
    if (s.empty() || s == "." || s.rfind("..", 0) == 0) return {};
    if (s.find("_deps") != std::string::npos) return {};
    if (s.find("lint_fixtures") != std::string::npos) return {};
    bool in_scope = false;
    for (const auto& scope : scopes) in_scope = in_scope || s.rfind(scope + "/", 0) == 0;
    if (!in_scope) return {};
    const auto ext = canon.extension();
    if (ext != ".hpp" && ext != ".cpp") return {};
    return s;
}

/// Collect `file` plus every repo-local `#include "..."` it reaches,
/// depth-first, into `set` (deduplicated via `seen`).  Quoted includes
/// resolve the way the build does: relative to the including file, then
/// against root/src and root/tools/xct_lint (the repo's include roots).
void collect_tu(const std::filesystem::path& root, const std::filesystem::path& file,
                const std::vector<std::string>& scopes, std::vector<std::string>& seen,
                FileSet& set)
{
    const std::string rel = lintable_rel(root, file, scopes);
    if (rel.empty() || std::find(seen.begin(), seen.end(), rel) != seen.end()) return;
    seen.push_back(rel);
    const std::string source = read_file(root / rel);
    set.emplace_back(rel, source);

    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
        std::size_t h = line.find_first_not_of(" \t");
        if (h == std::string::npos || line[h] != '#') continue;
        const std::size_t inc = line.find("include", h);
        if (inc == std::string::npos) continue;
        const std::size_t open = line.find('"', inc);
        if (open == std::string::npos) continue;
        const std::size_t close = line.find('"', open + 1);
        if (close == std::string::npos) continue;
        const std::string target = line.substr(open + 1, close - open - 1);
        const std::filesystem::path candidates[] = {
            (root / rel).parent_path() / target,
            root / "src" / target,
            root / "tools" / "xct_lint" / target,
        };
        for (const auto& c : candidates)
            if (std::filesystem::exists(c)) {
                collect_tu(root, c, scopes, seen, set);
                break;
            }
    }
}

}  // namespace

std::vector<Violation> lint_compile_db(const std::filesystem::path& root,
                                       const std::filesystem::path& compile_db,
                                       const std::vector<std::string>& scopes)
{
    const auto entries = parse_compile_db(read_file(compile_db));
    std::vector<std::string> seen;
    FileSet set;
    for (const auto& e : entries) {
        std::filesystem::path p = e.file;
        if (p.is_relative()) p = std::filesystem::path(e.directory) / p;
        collect_tu(root, p, scopes, seen, set);
    }
    std::sort(set.begin(), set.end());
    return lint_files(root, set);
}

std::string format(const std::vector<Violation>& violations)
{
    std::ostringstream out;
    for (const auto& v : violations)
        out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
    return out.str();
}

}  // namespace xct_lint
