// xct_lint driver: `xct_lint --root <repo> <dir>...` scans the given
// directories (default: src tools bench) and exits non-zero when any rule
// fires.  Registered as the ctest `xct_lint`, so a plain `ctest` run
// re-proves the invariants on every build.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv)
{
    std::string root = ".";
    std::vector<std::string> dirs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: xct_lint [--root DIR] [subdir...]\n");
            return 0;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.empty()) dirs = {"src", "tools", "bench"};

    try {
        const auto violations = xct_lint::lint_tree(root, dirs);
        if (violations.empty()) {
            std::printf("xct_lint: clean\n");
            return 0;
        }
        std::fputs(xct_lint::format(violations).c_str(), stderr);
        std::fprintf(stderr, "xct_lint: %zu violation(s)\n", violations.size());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "xct_lint: %s\n", e.what());
        return 2;
    }
}
