// xct_lint driver: `xct_lint --root <repo> [--compile-commands <json>]
// <dir>...` scans the given directories (default: src tools bench) and,
// when a compile database is supplied, additionally lints exactly the TUs
// the build compiles plus every repo-local header they reach — so the
// lint set tracks the build, not a hand-maintained directory list.
// Registered as the ctest `xct_lint`, so a plain `ctest` run re-proves
// the invariants on every build.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv)
{
    std::string root = ".";
    std::string compile_db;
    std::vector<std::string> dirs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--compile-commands" && i + 1 < argc) {
            compile_db = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: xct_lint [--root DIR] [--compile-commands JSON] [subdir...]\n");
            return 0;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.empty()) dirs = {"src", "tools", "bench"};

    try {
        // The tree walk covers headers no TU includes yet; the compile-db
        // pass covers generated/out-of-tree wiring.  Union, deduplicated.
        auto violations = xct_lint::lint_tree(root, dirs);
        if (!compile_db.empty()) {
            for (auto& v : xct_lint::lint_compile_db(root, compile_db, dirs)) {
                bool dup = false;
                for (const auto& have : violations)
                    dup = dup || (have.file == v.file && have.line == v.line &&
                                  have.rule == v.rule);
                if (!dup) violations.push_back(std::move(v));
            }
        }
        if (violations.empty()) {
            std::printf("xct_lint: clean\n");
            return 0;
        }
        std::fputs(xct_lint::format(violations).c_str(), stderr);
        std::fprintf(stderr, "xct_lint: %zu violation(s)\n", violations.size());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "xct_lint: %s\n", e.what());
        return 2;
    }
}
