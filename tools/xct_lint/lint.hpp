#pragma once
// xct_lint: repo-specific static analysis (DESIGN.md §3d, §3i).
//
// Seven rules, each motivated by a bug class this codebase is prone to:
//
//  * names     — every string literal passed to a telemetry / fault-site
//                call (counter, gauge, ScopedTrace, faults::check, ...)
//                must be registered in src/core/names.hpp, either exactly
//                or under a registered prefix (entries ending in '.').
//                Unregistered names silently fork the metric namespace.
//  * rawmem    — no raw `new` / `malloc` / `reinterpret_cast` outside the
//                whitelisted serialization layer: everything else owns
//                memory through containers and views it through spans.
//  * intloop   — no `int` induction variable feeding a multiplication:
//                flat indices like (k*Ny + j)*Nx + i overflow 32-bit
//                arithmetic on >2G-voxel volumes; loops that multiply
//                must run in index_t (see core/types.hpp static_assert).
//  * mutex     — no raw std::mutex / std::condition_variable outside
//                core/mutex.hpp (use the capability-annotated wrappers),
//                and every declared `Mutex` member must be referenced by
//                at least one XCT_* thread-safety annotation in the same
//                file, so -Wthread-safety actually has edges to check.
//  * ids       — no raw `index_t` / `int` declaration named rank / group /
//                view / slab / job outside core/ids.hpp and the minimpi
//                boundary (which speaks raw world ranks, like MPI): those
//                quantities have strong types in core/ids.hpp, and a raw
//                declaration reopens the cross-axis confusion the types
//                exist to close (passing a world rank where a group index
//                was meant compiles fine with index_t everywhere).
//  * lockorder — nested MutexLock / UniqueLock acquisitions form a
//                directed lock graph; any cycle in the whole-program
//                graph is a potential deadlock and fails the lint.
//                Reviewed intentional edges live in
//                tools/xct_lint/lockorder_allow.txt.
//  * deadname  — every constant registered in src/core/names.hpp must be
//                referenced from code somewhere in the scanned set; an
//                unreferenced name is a stale registration that makes the
//                registry lie about what the system can emit.
//
// The checker is a token-level scanner, not a compiler: it strips
// comments and string/char literals first (so prose never trips rules),
// then applies per-rule pattern matching on the blanked source.  That
// keeps it dependency-free and fast enough to run as a ctest on every
// build.
//
// Two drivers feed the rules:
//   lint_tree        — recursive directory walk (the v1 driver);
//   lint_compile_db  — compile_commands.json-driven: lints exactly the
//                      TUs the build compiles plus every repo-local
//                      header they reach through quoted includes, so a
//                      file the build has abandoned stops being linted
//                      and a newly wired one is picked up with no lint
//                      configuration change.
// Whole-program rules (lockorder, deadname) run over the collected file
// set in both drivers.

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace xct_lint {

/// One rule violation at a specific source line.
struct Violation {
    std::string file;  ///< path relative to the scanned root
    int line = 0;      ///< 1-based
    std::string rule;  ///< "names" | "rawmem" | "intloop" | "mutex" |
                       ///< "ids" | "lockorder" | "deadname"
    std::string message;
};

/// The registered telemetry / fault-site name set from core/names.hpp.
struct Registry {
    std::vector<std::string> exact;     ///< complete names
    std::vector<std::string> prefixes;  ///< entries ending in '.' allow any suffix

    /// True when `name` is registered exactly or extends a registered prefix.
    bool allows(const std::string& name) const;
};

/// Extract the registry from names.hpp source text: every string literal
/// initialising a `constexpr const char* k...` constant is registered.
Registry parse_registry(const std::string& names_hpp_source);

/// One nested lock acquisition: a MutexLock/UniqueLock taken while the
/// guard on `from` was still live in an enclosing scope.  Nodes are the
/// guarded expressions, normalised (whitespace stripped, `->` folded to
/// `.`, leading `this.` dropped) so `st->m` and `st.m` are one node.
struct LockEdge {
    std::string from;  ///< outer (already held) mutex expression
    std::string to;    ///< inner (newly acquired) mutex expression
    std::string file;  ///< where the inner acquisition happens
    int line = 0;      ///< 1-based line of the inner acquisition
};

/// Scan one file for nested MutexLock / UniqueLock acquisitions.
/// core/mutex.hpp and core/lockorder.* (the wrappers themselves) and the
/// lint's own sources are skipped.
std::vector<LockEdge> extract_lock_edges(const std::string& rel, const std::string& source);

/// Cycle-check the whole-program lock graph.  `whitelist` holds reviewed
/// edges as "from -> to" lines ('#' starts a comment); a cycle made
/// entirely of whitelisted edges is accepted.  Returns one violation per
/// cycle, anchored at the acquisition that closes it.
std::vector<Violation> check_lock_graph(const std::vector<LockEdge>& edges,
                                        const std::vector<std::string>& whitelist);

/// Lint a single file's source text (per-file rules only).  `rel` is the
/// path reported in violations and matched against per-rule whitelists.
std::vector<Violation> lint_source(const std::string& rel, const std::string& source,
                                   const Registry& reg);

/// A scanned file: (path relative to the root, source text).
using FileSet = std::vector<std::pair<std::string, std::string>>;

/// Run every rule — per-file and whole-program — over an explicit file
/// set.  The registry is read from root/src/core/names.hpp and the lock
/// whitelist from root/tools/xct_lint/lockorder_allow.txt (when present).
/// The deadname rule runs only when the set contains names.hpp itself.
std::vector<Violation> lint_files(const std::filesystem::path& root, const FileSet& files);

/// Walk `root`/dir for each dir, linting every .hpp/.cpp found (skipping
/// any path containing "lint_fixtures").
std::vector<Violation> lint_tree(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs);

/// Lint the TUs listed in a compile_commands.json plus every repo-local
/// header reachable from them through `#include "..."` (deduplicated).
/// Files outside `root` (system headers, fetched deps) are ignored, as
/// is anything outside the `scopes` top-level directories — the compile
/// database also lists test TUs, which are not part of the lint contract.
std::vector<Violation> lint_compile_db(
    const std::filesystem::path& root, const std::filesystem::path& compile_db,
    const std::vector<std::string>& scopes = {"src", "tools", "bench"});

/// Render violations one per line: `file:line: [rule] message`.
std::string format(const std::vector<Violation>& violations);

}  // namespace xct_lint
