#pragma once
// xct_lint: repo-specific static analysis (DESIGN.md §3d).
//
// Four rules, each motivated by a bug class this codebase is prone to:
//
//  * names    — every string literal passed to a telemetry / fault-site
//               call (counter, gauge, ScopedTrace, faults::check, ...)
//               must be registered in src/core/names.hpp, either exactly
//               or under a registered prefix (entries ending in '.').
//               Unregistered names silently fork the metric namespace.
//  * rawmem   — no raw `new` / `malloc` / `reinterpret_cast` outside the
//               whitelisted serialization layer: everything else owns
//               memory through containers and views it through spans.
//  * intloop  — no `int` induction variable feeding a multiplication:
//               flat indices like (k*Ny + j)*Nx + i overflow 32-bit
//               arithmetic on >2G-voxel volumes; loops that multiply
//               must run in index_t (see core/types.hpp static_assert).
//  * mutex    — no raw std::mutex / std::condition_variable outside
//               core/mutex.hpp (use the capability-annotated wrappers),
//               and every declared `Mutex` member must be referenced by
//               at least one XCT_* thread-safety annotation in the same
//               file, so -Wthread-safety actually has edges to check.
//
// The checker is a token-level scanner, not a compiler: it strips
// comments and string/char literals first (so prose never trips rules),
// then applies per-rule pattern matching on the blanked source.  That
// keeps it dependency-free and fast enough to run as a ctest on every
// build.

#include <filesystem>
#include <string>
#include <vector>

namespace xct_lint {

/// One rule violation at a specific source line.
struct Violation {
    std::string file;  ///< path relative to the scanned root
    int line = 0;      ///< 1-based
    std::string rule;  ///< "names" | "rawmem" | "intloop" | "mutex"
    std::string message;
};

/// The registered telemetry / fault-site name set from core/names.hpp.
struct Registry {
    std::vector<std::string> exact;     ///< complete names
    std::vector<std::string> prefixes;  ///< entries ending in '.' allow any suffix

    /// True when `name` is registered exactly or extends a registered prefix.
    bool allows(const std::string& name) const;
};

/// Extract the registry from names.hpp source text: every string literal
/// initialising a `constexpr const char* k...` constant is registered.
Registry parse_registry(const std::string& names_hpp_source);

/// Lint a single file's source text.  `rel` is the path reported in
/// violations and matched against the per-rule whitelists.
std::vector<Violation> lint_source(const std::string& rel, const std::string& source,
                                   const Registry& reg);

/// Walk `root`/dir for each dir, linting every .hpp/.cpp found (skipping
/// any path containing "lint_fixtures").  Reads the registry from
/// root/src/core/names.hpp.
std::vector<Violation> lint_tree(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs);

/// Render violations one per line: `file:line: [rule] message`.
std::string format(const std::vector<Violation>& violations);

}  // namespace xct_lint
