// xct_recon — reconstruct a volume from a projection stack on disk.
//
// Reads `<input>` and its `<input>.geom` sidecar, runs the FDK pipeline
// (single rank or a distributed Ng x Nr layout with segmented reduction),
// and writes the volume plus an optional preview slice.
//
//   xct_recon --input proj.xstk --output vol.xvol
//   xct_recon --input proj.xstk --groups 2 --ranks 4 --window hann
//             --device-mib 64 --slice-pgm axial.pgm
//
// Observability: `--trace out.json` records every subsystem's spans
// (pipeline stages, device transfers, minimpi collectives, PFS I/O) into
// one Chrome trace-event file — open it at ui.perfetto.dev — and
// `--metrics out.csv` dumps the telemetry metrics registry.
// `--report out.json` emits the perfmodel-anchored run report (per-stage
// and per-batch measured vs Eq. 13-17 predictions, per-rank efficiency,
// straggler flags, fleet percentiles).  The flight recorder is always
// on: a watchdog trip, a detected integrity fault or a fatal signal
// writes a post-mortem Perfetto trace into `--flight-dir` (default:
// alongside --output), and `--flight-dump out.json` dumps the rings
// unconditionally at exit.
//
// Resilience: `--faults "<site>[:k=v,...][;...]"` installs a deterministic
// fault plan (sites: pfs.load, pfs.store, sim.h2d, sim.d2h, source.load,
// minimpi.<op>, rank.dropout, checkpoint.load, rank.stall; kinds
// throw|corrupt|stall), `--retry N` retries transient faults up to
// N attempts with exponential backoff, `--checkpoint-dir d` enables
// slab-granular checkpoint/restart, and `--degraded` lets the distributed
// run survive rank dropouts with an accuracy-identical degraded reduce.
//
// Integrity (DESIGN.md §3f): `--integrity` turns on end-to-end digest
// verification of every bulk data movement — detected corruption raises a
// transient IntegrityError the --retry machinery repairs — and
// `--watchdog-timeout S` arms a deadline over the load/reduce stages plus
// a startup health probe, converting stalls into recoverable faults.

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "autotune/calibrate.hpp"
#include "autotune/planner.hpp"
#include "cli.hpp"
#include "faults/fault.hpp"
#include "integrity/integrity.hpp"
#include "io/geometry_io.hpp"
#include "io/raw_io.hpp"
#include "perfmodel/model.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"
#include "telemetry/export.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/report.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("input", "projections.xstk", "input stack (expects <input>.geom sidecar)")
        .option("output", "volume.xvol", "output volume path")
        .option("window", "ram-lak", "filter window: ram-lak|shepp-logan|cosine|hamming|hann")
        .option("batches", "8", "batch count Nc (out-of-core granularity)")
        .option("device-mib", "512", "per-rank device memory budget [MiB]")
        .option("groups", "1", "Ng: number of rank groups (output split)")
        .option("ranks", "1", "Nr: ranks per group (view split)")
        .option("band-codec", "raw",
                "differential band wire format: raw (bitwise seed path) | q8")
        .option("queue-depth", "2", "inter-stage FIFO capacity of every rank's pipeline")
        .option("machine", "", "machine-params JSON for --autotune (default: measure locally)")
        .option("machine-out", "", "write the resolved machine params JSON here")
        .option("calibrate-bench", "",
                "seed the local machine params from this BENCH_*.json (micro-kernel rates)")
        .option("slices", "", "ROI: only reconstruct slices a:b (single rank only)")
        .option("slice-pgm", "", "optional PGM preview of the central slice")
        .option("trace", "", "write a Chrome/Perfetto trace-event JSON of the run")
        .option("metrics", "", "write a CSV dump of the telemetry metrics registry")
        .option("report", "", "write the perfmodel-anchored run report JSON")
        .option("flight-dir", "", "post-mortem flight-trace directory (default: output dir)")
        .option("flight-dump", "", "also dump the flight-recorder rings here at exit")
        .option("faults", "", "fault plan: <site>[:k=v,...][;<site>...] (keys p,after,count,rank)")
        .option("fault-seed", "1", "seed for probabilistic fault triggers")
        .option("retry", "0", "retry transient faults up to N attempts (0 = fail loudly)")
        .option("checkpoint-dir", "", "slab-granular checkpoint/restart directory")
        .option("watchdog-timeout", "0",
                "stage deadline in seconds (0 = off); overruns become transient faults")
        .flag("integrity", "verify xxh64 digests on every bulk data movement")
        .flag("degraded", "survive rank dropouts via the degraded-mode reduce")
        .flag("autotune",
              "replace --groups/--ranks/--batches/--queue-depth with the model-driven "
              "planner's pick (their product caps the rank budget; the CLI choice is "
              "always scored too)")
        .flag("prefetch", "double-buffer band staging: overlap band i+1's gather/decode "
                          "with slab i's back-projection")
        .flag("sequential", "disable the 5-thread pipeline (debugging)");
    args.parse(argc, argv, "FDK cone-beam reconstruction");

    if (args.is_set("faults"))
        faults::set_plan(faults::FaultPlan::parse(
            args.get("faults"), static_cast<std::uint64_t>(args.get_int("fault-seed"))));
    integrity::set_enabled(args.get_flag("integrity"));
    const double watchdog_timeout = args.get_double("watchdog-timeout");
    std::optional<faults::RetryPolicy> retry;
    if (args.get_int("retry") > 0) {
        retry.emplace();
        retry->max_attempts = args.get_int("retry");
    }

    // Decomposition knobs; --autotune below may overwrite them with the
    // planner's pick once the geometry is known.
    index_t ng = args.get_int("groups");
    index_t nr = args.get_int("ranks");
    index_t batches = args.get_int("batches");
    index_t queue_depth = args.get_int("queue-depth");
    const io::BandCodec codec = io::band_codec_from_name(args.get("band-codec"));
    const bool prefetch = args.get_flag("prefetch");
    const std::size_t device_capacity = static_cast<std::size_t>(args.get_int("device-mib"))
                                        << 20;

    // Arm the always-on flight recorder's post-mortem path before any
    // work: watchdog trips, integrity detections and fatal signals dump
    // the recent past of every thread into flight_<reason>_<n>.json.
    {
        std::filesystem::path flight_dir = args.is_set("flight-dir")
                                               ? std::filesystem::path(args.get("flight-dir"))
                                               : std::filesystem::path(args.get("output"))
                                                     .parent_path();
        if (flight_dir.empty()) flight_dir = ".";
        telemetry::flight::arm_postmortem(flight_dir);
        telemetry::flight::install_signal_handlers();
    }

    // Enable span capture before any work so every subsystem's telemetry
    // lands on one timebase; dump_telemetry() runs at every exit path.
    if (args.is_set("trace") || args.is_set("metrics")) telemetry::tracer().enable();
    const auto dump_telemetry = [&args] {
        if (args.is_set("trace")) {
            telemetry::write_chrome_trace(args.get("trace"), telemetry::tracer().events());
            std::printf("wrote %s (%zu spans; open in ui.perfetto.dev)\n",
                        args.get("trace").c_str(), telemetry::tracer().event_count());
        }
        if (args.is_set("metrics")) {
            telemetry::write_metrics_csv(args.get("metrics"),
                                         telemetry::registry().snapshot());
            std::printf("wrote %s\n", args.get("metrics").c_str());
        }
        if (args.is_set("flight-dump")) {
            telemetry::flight::dump(args.get("flight-dump"));
            std::printf("wrote %s (flight rings; open in ui.perfetto.dev)\n",
                        args.get("flight-dump").c_str());
        }
    };

    // Perfmodel-anchored run report: join the measured per-rank timings
    // with the Eq. 13-17 projection, calibrated on this machine.
    const auto write_report = [&](const CbctGeometry& geom, index_t groups, index_t ranks,
                                  const std::vector<telemetry::report::RankTimings>& ts) {
        perfmodel::RunConfig rcfg;
        rcfg.geometry = geom;
        rcfg.layout = GroupLayout{groups, ranks};
        rcfg.batches = batches;
        perfmodel::MachineParams base;
        base.bw_h2d_gbps = 12.0;  // the RankConfig PCIe model defaults
        base.bw_d2h_gbps = 12.0;
        const perfmodel::MachineParams m = perfmodel::measure_local(base);
        const telemetry::report::RunReport rep = telemetry::report::build(rcfg, m, ts);
        telemetry::report::write_json(std::filesystem::path(args.get("report")), rep);
        std::printf("wrote %s (model: %.3f s, binding stage %s; measured %.3f s, "
                    "efficiency %.2f)\n",
                    args.get("report").c_str(), rep.predicted_runtime_s,
                    rep.binding_stage.c_str(), rep.measured_wall_s, rep.efficiency);
    };
    const auto to_timings = [](const recon::RankStats& st, RankId rank, GroupId group) {
        telemetry::report::RankTimings t;
        t.rank = rank;
        t.group = group;
        t.load = st.t_load;
        t.filter = st.t_filter;
        t.bp = st.t_bp;
        t.reduce = st.t_reduce;
        t.store = st.t_store;
        t.wall = st.wall;
        t.spans.reserve(st.spans.size());
        for (const auto& sp : st.spans)
            t.spans.push_back({sp.stage, sp.item, sp.end - sp.begin});
        return t;
    };

    const std::filesystem::path in = args.get("input");
    const io::GeometryFile gf = io::read_geometry(in.string() + ".geom");
    const CbctGeometry& g = gf.geometry;
    const ProjectionStack stack = io::read_stack(in);
    require(stack.views() == g.num_proj && stack.cols() == g.nu,
            "xct_recon: stack does not match its geometry sidecar");

    if (args.get_flag("autotune") || args.is_set("machine-out")) {
        perfmodel::MachineParams machine;
        if (args.is_set("machine")) {
            machine = autotune::read_machine_json(args.get("machine"));
        } else {
            perfmodel::MachineParams base;
            base.bw_h2d_gbps = 12.0;  // the RankConfig PCIe model defaults
            base.bw_d2h_gbps = 12.0;
            machine = perfmodel::measure_local(base);
            if (args.is_set("calibrate-bench")) {
                autotune::Calibrator cal;
                cal.observe_bench_file(args.get("calibrate-bench"));
                machine = cal.fit(machine);
            }
        }
        if (args.is_set("machine-out")) {
            autotune::write_machine_json(args.get("machine-out"), machine);
            std::printf("wrote %s (machine params)\n", args.get("machine-out").c_str());
        }
        if (args.get_flag("autotune")) {
            autotune::JobShape shape;
            shape.geometry = g;
            shape.rank_budget = ng * nr;
            shape.device_capacity = device_capacity;
            shape.codec = codec;
            const autotune::Candidate fixed{GroupLayout{ng, nr}, batches, queue_depth};
            const autotune::Plan plan = autotune::plan_job(shape, machine, {fixed});
            std::printf("autotune: %s\n", autotune::plan_summary(plan).c_str());
            ng = plan.layout.num_groups;
            nr = plan.layout.ranks_per_group;
            batches = plan.batches;
            queue_depth = plan.queue_depth;
        }
    }

    std::printf("reconstructing %lld^3 from %lld views (%s window, Ng=%lld Nr=%lld)\n",
                static_cast<long long>(g.vol.x), static_cast<long long>(g.num_proj),
                args.get("window").c_str(), static_cast<long long>(ng),
                static_cast<long long>(nr));

    Volume volume(g.vol);
    if (args.is_set("slices")) {
        require(ng == 1 && nr == 1, "xct_recon: --slices is a single-rank feature");
        long long lo = 0, hi = 0;
        require(std::sscanf(args.get("slices").c_str(), "%lld:%lld", &lo, &hi) == 2,
                "xct_recon: --slices expects a:b");
        recon::MemorySource src(stack, gf.raw_counts);
        recon::RankConfig cfg;
        cfg.geometry = g;
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = batches;
        cfg.device_capacity = device_capacity;
        cfg.threaded = !args.get_flag("sequential");
        cfg.band_codec = codec;
        cfg.prefetch = prefetch;
        cfg.queue_depth = queue_depth;
        if (gf.raw_counts) cfg.beer = gf.beer;
        const recon::FdkResult r = recon::reconstruct_fdk_slices(cfg, src, Range{lo, hi});
        io::write_volume(args.get("output"), r.volume);
        std::printf("wrote %s (ROI slices [%lld, %lld))\n", args.get("output").c_str(), lo, hi);
        if (args.is_set("slice-pgm")) {
            io::write_pgm_slice(args.get("slice-pgm"), r.volume, r.volume.size().z / 2);
            std::printf("wrote %s\n", args.get("slice-pgm").c_str());
        }
        dump_telemetry();
        return 0;
    }
    if (ng == 1 && nr == 1) {
        recon::MemorySource src(stack, gf.raw_counts);
        recon::RankConfig cfg;
        cfg.geometry = g;
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = batches;
        cfg.device_capacity = device_capacity;
        cfg.threaded = !args.get_flag("sequential");
        cfg.band_codec = codec;
        cfg.prefetch = prefetch;
        cfg.queue_depth = queue_depth;
        if (gf.raw_counts) cfg.beer = gf.beer;
        cfg.retry = retry;
        cfg.watchdog_timeout_s = watchdog_timeout;
        if (args.is_set("checkpoint-dir"))
            cfg.checkpoint = recon::CheckpointConfig{args.get("checkpoint-dir"), -1};
        const recon::FdkResult r = recon::reconstruct_fdk(cfg, src);
        volume = r.volume;
        std::printf("stages: load %.3f filter %.3f bp %.3f store %.3f | wall %.3f s\n",
                    r.stats.t_load, r.stats.t_filter, r.stats.t_bp, r.stats.t_store,
                    r.stats.wall);
        if (args.is_set("report")) {
            const telemetry::report::RankTimings t = to_timings(r.stats, RankId{0}, GroupId{0});
            telemetry::report::observe_fleet(t);  // single-rank fleet of one
            write_report(g, 1, 1, {t});
        }
    } else {
        recon::DistributedConfig cfg;
        cfg.geometry = g;
        cfg.layout = GroupLayout{ng, nr};
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = batches;
        cfg.device_capacity = device_capacity;
        cfg.threaded = !args.get_flag("sequential");
        cfg.band_codec = codec;
        cfg.prefetch = prefetch;
        cfg.queue_depth = queue_depth;
        if (gf.raw_counts) cfg.beer = gf.beer;
        cfg.retry = retry;
        cfg.degraded_reduce = args.get_flag("degraded");
        cfg.watchdog_timeout_s = watchdog_timeout;
        if (args.is_set("checkpoint-dir")) cfg.checkpoint_dir = args.get("checkpoint-dir");
        const auto factory = [&](RankId) {
            return std::make_unique<recon::MemorySource>(stack, gf.raw_counts);
        };
        const recon::DistributedResult r = recon::reconstruct_distributed(cfg, factory);
        volume = r.volume;
        for (const RankId d : r.dead)
            std::printf("rank %lld dropped out; its view share was replayed by a survivor\n",
                        static_cast<long long>(d.value()));
        for (RankId rank{0}; rank.value() < ng * nr; ++rank) {
            const recon::RankStats& st = r.ranks[static_cast<std::size_t>(rank.value())];
            std::printf("rank %lld (group %lld): load %.3f filter %.3f bp %.3f reduce %.3f "
                        "store %.3f | wall %.3f s overlap %.2f\n",
                        static_cast<long long>(rank.value()),
                        static_cast<long long>(cfg.layout.group_of(rank).value()), st.t_load,
                        st.t_filter, st.t_bp, st.t_reduce, st.t_store, st.wall,
                        st.overlap_factor());
        }
        double busy = 0.0, worst_wall = 0.0;
        for (const auto& st : r.ranks) {
            busy += st.busy();
            worst_wall = std::max(worst_wall, st.wall);
        }
        std::printf("distributed wall %.3f s across %lld ranks | aggregate overlap %.2f\n",
                    r.wall_seconds, static_cast<long long>(ng * nr),
                    worst_wall > 0.0 ? busy / (static_cast<double>(ng * nr) * worst_wall) : 0.0);
        if (args.is_set("report")) {
            // The fleet histograms were filled by the distributed layer's
            // final minimpi gather; here we only join model vs measured.
            std::vector<telemetry::report::RankTimings> ts;
            ts.reserve(r.ranks.size());
            for (RankId rank{0}; rank.value() < ng * nr; ++rank)
                ts.push_back(to_timings(r.ranks[static_cast<std::size_t>(rank.value())], rank,
                                        cfg.layout.group_of(rank)));
            write_report(g, ng, nr, ts);
        }
    }

    io::write_volume(args.get("output"), volume);
    std::printf("wrote %s\n", args.get("output").c_str());
    if (args.is_set("slice-pgm")) {
        io::write_pgm_slice(args.get("slice-pgm"), volume, g.vol.z / 2);
        std::printf("wrote %s\n", args.get("slice-pgm").c_str());
    }
    dump_telemetry();
    return 0;
}
