// xct_recon — reconstruct a volume from a projection stack on disk.
//
// Reads `<input>` and its `<input>.geom` sidecar, runs the FDK pipeline
// (single rank or a distributed Ng x Nr layout with segmented reduction),
// and writes the volume plus an optional preview slice.
//
//   xct_recon --input proj.xstk --output vol.xvol
//   xct_recon --input proj.xstk --groups 2 --ranks 4 --window hann \
//             --device-mib 64 --slice-pgm axial.pgm

#include <cstdio>
#include <mutex>

#include "cli.hpp"
#include "io/geometry_io.hpp"
#include "io/raw_io.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("input", "projections.xstk", "input stack (expects <input>.geom sidecar)")
        .option("output", "volume.xvol", "output volume path")
        .option("window", "ram-lak", "filter window: ram-lak|shepp-logan|cosine|hamming|hann")
        .option("batches", "8", "batch count Nc (out-of-core granularity)")
        .option("device-mib", "512", "per-rank device memory budget [MiB]")
        .option("groups", "1", "Ng: number of rank groups (output split)")
        .option("ranks", "1", "Nr: ranks per group (view split)")
        .option("slices", "", "ROI: only reconstruct slices a:b (single rank only)")
        .option("slice-pgm", "", "optional PGM preview of the central slice")
        .flag("sequential", "disable the 5-thread pipeline (debugging)");
    args.parse(argc, argv, "FDK cone-beam reconstruction");

    const std::filesystem::path in = args.get("input");
    const io::GeometryFile gf = io::read_geometry(in.string() + ".geom");
    const CbctGeometry& g = gf.geometry;
    const ProjectionStack stack = io::read_stack(in);
    require(stack.views() == g.num_proj && stack.cols() == g.nu,
            "xct_recon: stack does not match its geometry sidecar");

    const index_t ng = args.get_int("groups");
    const index_t nr = args.get_int("ranks");
    std::printf("reconstructing %lld^3 from %lld views (%s window, Ng=%lld Nr=%lld)\n",
                static_cast<long long>(g.vol.x), static_cast<long long>(g.num_proj),
                args.get("window").c_str(), static_cast<long long>(ng),
                static_cast<long long>(nr));

    Volume volume(g.vol);
    if (args.is_set("slices")) {
        require(ng == 1 && nr == 1, "xct_recon: --slices is a single-rank feature");
        long long lo = 0, hi = 0;
        require(std::sscanf(args.get("slices").c_str(), "%lld:%lld", &lo, &hi) == 2,
                "xct_recon: --slices expects a:b");
        recon::MemorySource src(stack, gf.raw_counts);
        recon::RankConfig cfg;
        cfg.geometry = g;
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = args.get_int("batches");
        cfg.device_capacity = static_cast<std::size_t>(args.get_int("device-mib")) << 20;
        cfg.threaded = !args.get_flag("sequential");
        if (gf.raw_counts) cfg.beer = gf.beer;
        const recon::FdkResult r = recon::reconstruct_fdk_slices(cfg, src, Range{lo, hi});
        io::write_volume(args.get("output"), r.volume);
        std::printf("wrote %s (ROI slices [%lld, %lld))\n", args.get("output").c_str(), lo, hi);
        if (args.is_set("slice-pgm")) {
            io::write_pgm_slice(args.get("slice-pgm"), r.volume, r.volume.size().z / 2);
            std::printf("wrote %s\n", args.get("slice-pgm").c_str());
        }
        return 0;
    }
    if (ng == 1 && nr == 1) {
        recon::MemorySource src(stack, gf.raw_counts);
        recon::RankConfig cfg;
        cfg.geometry = g;
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = args.get_int("batches");
        cfg.device_capacity = static_cast<std::size_t>(args.get_int("device-mib")) << 20;
        cfg.threaded = !args.get_flag("sequential");
        if (gf.raw_counts) cfg.beer = gf.beer;
        const recon::FdkResult r = recon::reconstruct_fdk(cfg, src);
        volume = r.volume;
        std::printf("stages: load %.3f filter %.3f bp %.3f store %.3f | wall %.3f s\n",
                    r.stats.t_load, r.stats.t_filter, r.stats.t_bp, r.stats.t_store,
                    r.stats.wall);
    } else {
        recon::DistributedConfig cfg;
        cfg.geometry = g;
        cfg.layout = GroupLayout{ng, nr};
        cfg.window = filter::window_from_name(args.get("window"));
        cfg.batches = args.get_int("batches");
        cfg.device_capacity = static_cast<std::size_t>(args.get_int("device-mib")) << 20;
        cfg.threaded = !args.get_flag("sequential");
        if (gf.raw_counts) cfg.beer = gf.beer;
        const auto factory = [&](index_t) {
            return std::make_unique<recon::MemorySource>(stack, gf.raw_counts);
        };
        const recon::DistributedResult r = recon::reconstruct_distributed(cfg, factory);
        volume = r.volume;
        std::printf("distributed wall %.3f s across %lld ranks\n", r.wall_seconds,
                    static_cast<long long>(ng * nr));
    }

    io::write_volume(args.get("output"), volume);
    std::printf("wrote %s\n", args.get("output").c_str());
    if (args.is_set("slice-pgm")) {
        io::write_pgm_slice(args.get("slice-pgm"), volume, g.vol.z / 2);
        std::printf("wrote %s\n", args.get("slice-pgm").c_str());
    }
    return 0;
}
