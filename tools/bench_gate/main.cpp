// bench_gate: fail CI when a BENCH_*.json regresses against the
// committed baseline.
//
//   bench_gate --baseline bench/BENCH_baseline.json --current build/BENCH_pr4.json
//              [--tolerance-scale 1.0] [--sections soak,filter]
//
// --sections restricts the comparison to the named (comma-separated)
// sections of both documents — the soak-smoke CI job gates only the
// `soak` section of a fresh BENCH_soak.json against the baseline.
//
// Exit code 0 when every gated metric holds, 1 on any regression (or a
// metric vanishing from the current run), 2 on usage/parse errors.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "gate.hpp"

int main(int argc, char** argv)
{
    using namespace xct::bench_gate;
    std::string baseline_path;
    std::string current_path;
    std::vector<std::string> sections;
    double tolerance_scale = 1.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--baseline" && has_value) {
            baseline_path = argv[++i];
        } else if (arg == "--current" && has_value) {
            current_path = argv[++i];
        } else if (arg == "--tolerance-scale" && has_value) {
            tolerance_scale = std::strtod(argv[++i], nullptr);
        } else if (arg == "--sections" && has_value) {
            std::string list = argv[++i];
            std::size_t start = 0;
            while (start <= list.size()) {
                const std::size_t comma = list.find(',', start);
                const std::string name = list.substr(
                    start, comma == std::string::npos ? std::string::npos : comma - start);
                if (!name.empty()) sections.push_back(name);
                if (comma == std::string::npos) break;
                start = comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: bench_gate --baseline <json> --current <json> "
                         "[--tolerance-scale <x>] [--sections a,b]\n");
            return 2;
        }
    }
    if (baseline_path.empty() || current_path.empty() || tolerance_scale <= 0.0) {
        std::fprintf(stderr,
                     "usage: bench_gate --baseline <json> --current <json> "
                     "[--tolerance-scale <x>] [--sections a,b]\n");
        return 2;
    }
    try {
        Doc baseline = parse_file(baseline_path);
        Doc current = parse_file(current_path);
        if (!sections.empty()) {
            baseline = filter_sections(baseline, sections);
            current = filter_sections(current, sections);
        }
        const GateResult result = compare(baseline, current, default_rules(), tolerance_scale);
        std::fputs(format(result).c_str(), stdout);
        return result.pass ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_gate: %s\n", e.what());
        return 2;
    }
}
