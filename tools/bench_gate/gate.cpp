#include "gate.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xct::bench_gate {

namespace {

[[noreturn]] void malformed(const std::string& what)
{
    throw std::invalid_argument("bench_gate: malformed BENCH json: " + what);
}

// Minimal parser for the flat two-level documents bench_common.hpp
// writes: {"section": {"key": number-or-string, ...}, ...}.
struct Parser {
    const std::string& s;
    std::size_t pos = 0;

    void skip_ws()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\r' ||
                                  s[pos] == '\t' || s[pos] == ','))
            ++pos;
    }

    char peek()
    {
        skip_ws();
        if (pos >= s.size()) malformed("unexpected end of input");
        return s[pos];
    }

    void expect(char c)
    {
        if (peek() != c) malformed(std::string("expected '") + c + "'");
        ++pos;
    }

    std::string string_lit()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\' && pos + 1 < s.size()) ++pos;
            out.push_back(s[pos]);
            ++pos;
        }
        if (pos >= s.size()) malformed("unterminated string");
        ++pos;  // closing quote
        return out;
    }

    Value value()
    {
        Value v;
        const char c = peek();
        if (c == '"') {
            v.text = string_lit();
            return v;
        }
        if (c == '{') malformed("nesting deeper than two levels");
        std::size_t end = pos;
        while (end < s.size() && s[end] != ',' && s[end] != '}' && s[end] != '\n') ++end;
        const std::string tok = s.substr(pos, end - pos);
        char* stop = nullptr;
        v.number = std::strtod(tok.c_str(), &stop);
        if (stop == tok.c_str()) malformed("bad number '" + tok + "'");
        v.is_number = true;
        pos = end;
        return v;
    }
};

std::string describe(const Value& v)
{
    if (!v.is_number) return "\"" + v.text + "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.8g", v.number);
    return buf;
}

void add(GateResult& r, const std::string& metric, bool fail, std::string message)
{
    r.findings.push_back(Finding{metric, std::move(message), fail});
    if (fail) r.pass = false;
}

}  // namespace

Doc parse(const std::string& json)
{
    Doc doc;
    Parser p{json};
    p.expect('{');
    while (p.peek() != '}') {
        const std::string section = p.string_lit();
        p.expect(':');
        p.expect('{');
        while (p.peek() != '}') {
            const std::string key = p.string_lit();
            p.expect(':');
            doc[section][key] = p.value();
        }
        p.expect('}');
    }
    p.expect('}');
    return doc;
}

Doc parse_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw std::invalid_argument("bench_gate: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

bool glob_match(const std::string& pattern, const std::string& name)
{
    // Iterative '*' glob: on mismatch, backtrack to the last star and
    // retry one character further along the name.
    std::size_t pi = 0, ni = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (ni < name.size()) {
        if (pi < pattern.size() && pattern[pi] == '*') {
            star = pi++;
            mark = ni;
        } else if (pi < pattern.size() && pattern[pi] == name[ni]) {
            ++pi;
            ++ni;
        } else if (star != std::string::npos) {
            pi = star + 1;
            ni = ++mark;
        } else {
            return false;
        }
    }
    while (pi < pattern.size() && pattern[pi] == '*') ++pi;
    return pi == pattern.size();
}

std::vector<Rule> default_rules()
{
    // First match wins — specific caps and exact classes come before the
    // broad throughput/latency globs.
    return {
        // Absolute ceilings: observability must stay cheap regardless of
        // what the baseline machine measured.  The flight bound is derived
        // (span count x per-span cost) and stable; the integrity bound is
        // a differential timing of a ~30 ms run, where scheduler noise
        // alone spans several points — its cap catches digesting becoming
        // a first-order cost, not single-digit drift.
        Rule{"flight.overhead_percent", Class::Cap, 0.0, 2.0},
        Rule{"integrity.overhead_percent", Class::Cap, 0.0, 15.0},
        // Deterministic values: identical code => identical numbers.
        // (simd_backend is deliberately ungated: the dispatch is
        // machine-dependent, and a lost-vectorisation collapse already
        // fails the updates_per_s and speedup gates.)
        Rule{"*.warm_heap_events", Class::Exact, 0.0, 0.0},
        Rule{"*.simd_lanes", Class::Exact, 0.0, 0.0},
        Rule{"*.padded_len", Class::Exact, 0.0, 0.0},
        Rule{"fft.n", Class::Exact, 0.0, 0.0},
        // q8 band transport + autotune (DESIGN.md §3j).  These must sit
        // before the broad '*bytes*' Exact glob: the transport byte
        // counts gate lower-better (compression may only improve), the
        // compression ratio is capped at the acceptance bar (<= 1/3 of
        // raw), the quantisation quality holds an absolute PSNR floor,
        // and the planner may never pick worse than the fixed CLI shape
        // it scored alongside (ratio cap at 1).  The planner's picks and
        // candidate count are deterministic on the fixed bench machine.
        Rule{"transport.q8_bytes_over_raw", Class::Cap, 0.0, 1.0 / 3.0},
        Rule{"transport.q8_psnr_db", Class::Floor, 0.0, 0.0, 40.0},
        Rule{"transport.q8_max_err_vs_bound", Class::Cap, 0.0, 1.0},
        Rule{"transport.*bytes*", Class::LowerBetter, 0.0, 0.0},
        Rule{"autotune.planned_over_fixed_runtime", Class::Cap, 0.0, 1.0},
        Rule{"autotune.jobs_per_hour", Class::HigherBetter, 0.0, 0.0},
        Rule{"autotune.picked_*", Class::Exact, 0.0, 0.0},
        Rule{"autotune.candidates_scored", Class::Exact, 0.0, 0.0},
        Rule{"*bytes*", Class::Exact, 0.0, 0.0},
        Rule{"*.spans", Class::Exact, 0.0, 0.0},
        // Soak invariants (tools/xct_soak): detection ratio, wedged-job
        // count, per-site match and live bitwise identity are exact by
        // construction (the harness is deterministic in the seed); the
        // tail ratio is capped at the perfmodel bound itself; throughput
        // is virtual-time yet gated generously so schedule rebalances
        // do not trip CI while a scheduling collapse does.
        Rule{"soak.detection_ratio", Class::Exact, 0.0, 0.0},
        Rule{"soak.sites_match", Class::Exact, 0.0, 0.0},
        Rule{"soak.wedged_jobs", Class::Exact, 0.0, 0.0},
        Rule{"soak.live_bitwise_identical", Class::Exact, 0.0, 0.0},
        Rule{"soak.autotuned", Class::Exact, 0.0, 0.0},
        Rule{"soak.p99_vs_predicted", Class::Cap, 0.0, 1.0},
        Rule{"soak.jobs_per_hour", Class::HigherBetter, 0.60, 0.0},
        Rule{"soak.latency_*", Class::LowerBetter, 1.50, 0.0},
        // Machine-independent ratios: tighter than raw throughputs.
        Rule{"*speedup*", Class::HigherBetter, 0.35, 0.0},
        // Raw throughputs and latencies: CI hardware differs from the
        // baseline machine, so the tolerance is generous — the gate
        // catches collapses (vectorisation lost, plan cache broken), not
        // single-digit noise.  The us/ns latency globs must precede the
        // throughput glob: "ns_per_span" contains "per_s".
        Rule{"*.us_per_*", Class::LowerBetter, 1.50, 0.0},
        Rule{"*.ns_per_*", Class::LowerBetter, 1.50, 0.0},
        Rule{"*per_s*", Class::HigherBetter, 0.60, 0.0},
        Rule{"*seconds*", Class::LowerBetter, 1.50, 0.0},
    };
}

Doc filter_sections(const Doc& doc, const std::vector<std::string>& sections)
{
    Doc out;
    for (const std::string& s : sections) {
        const auto it = doc.find(s);
        if (it != doc.end()) out.insert(*it);
    }
    return out;
}

GateResult compare(const Doc& baseline, const Doc& current, const std::vector<Rule>& rules,
                   double tolerance_scale)
{
    GateResult r;
    for (const auto& [section, metrics] : baseline) {
        const auto cur_section = current.find(section);
        for (const auto& [key, base] : metrics) {
            const std::string metric = section + "." + key;
            const Rule* rule = nullptr;
            for (const Rule& candidate : rules) {
                if (glob_match(candidate.pattern, metric)) {
                    rule = &candidate;
                    break;
                }
            }
            const Value* cur = nullptr;
            if (cur_section != current.end()) {
                const auto it = cur_section->second.find(key);
                if (it != cur_section->second.end()) cur = &it->second;
            }
            if (cur == nullptr) {
                // A vanished measurement is a regression in coverage even
                // when no rule classes the metric.
                add(r, metric, true, "missing from current run (baseline " + describe(base) + ")");
                continue;
            }
            if (rule == nullptr) {
                add(r, metric, false, "unclassified, not gated (current " + describe(*cur) + ")");
                continue;
            }
            if (base.is_number != cur->is_number) {
                add(r, metric, true,
                    "type changed: baseline " + describe(base) + ", current " + describe(*cur));
                continue;
            }
            if (rule->cls == Class::Exact) {
                const bool same = base.is_number ? base.number == cur->number
                                                 : base.text == cur->text;
                add(r, metric, !same,
                    same ? "exact match (" + describe(*cur) + ")"
                         : "exact metric drifted: baseline " + describe(base) + ", current " +
                               describe(*cur));
                continue;
            }
            if (!cur->is_number) {
                add(r, metric, true, "non-numeric value " + describe(*cur) + " for numeric rule");
                continue;
            }
            char buf[160];
            if (rule->cls == Class::Cap) {
                const bool ok = cur->number <= rule->cap;
                std::snprintf(buf, sizeof(buf), "%.8g %s cap %.8g", cur->number,
                              ok ? "within" : "EXCEEDS", rule->cap);
                add(r, metric, !ok, buf);
                continue;
            }
            if (rule->cls == Class::Floor) {
                const bool ok = cur->number >= rule->floor;
                std::snprintf(buf, sizeof(buf), "%.8g %s floor %.8g", cur->number,
                              ok ? "above" : "BELOW", rule->floor);
                add(r, metric, !ok, buf);
                continue;
            }
            const double tol = rule->tolerance * tolerance_scale;
            const bool higher = rule->cls == Class::HigherBetter;
            const double limit =
                higher ? base.number * (1.0 - tol) : base.number * (1.0 + tol);
            const bool ok = higher ? cur->number >= limit : cur->number <= limit;
            std::snprintf(buf, sizeof(buf), "%.8g vs baseline %.8g (%s limit %.8g)%s",
                          cur->number, base.number, higher ? "min" : "max", limit,
                          ok ? "" : " REGRESSED");
            add(r, metric, !ok, buf);
        }
    }
    // Metrics only in the current run are fine (new coverage) but worth
    // surfacing so the baseline gets refreshed.
    for (const auto& [section, metrics] : current) {
        const auto base_section = baseline.find(section);
        for (const auto& [key, cur] : metrics) {
            if (base_section != baseline.end() &&
                base_section->second.find(key) != base_section->second.end())
                continue;
            add(r, section + "." + key, false,
                "new metric, not in baseline (current " + describe(cur) + ")");
        }
    }
    return r;
}

std::string format(const GateResult& r)
{
    std::string out;
    for (const Finding& f : r.findings)
        out += std::string(f.fail ? "FAIL " : "ok   ") + f.metric + ": " + f.message + "\n";
    out += r.pass ? "bench_gate: PASS\n" : "bench_gate: FAIL\n";
    return out;
}

}  // namespace xct::bench_gate
