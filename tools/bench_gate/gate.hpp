#pragma once
// BENCH trend gate: compare a freshly produced BENCH_*.json against the
// committed baseline and fail on regressions (DESIGN.md §3g).
//
// The benches emit flat two-level JSON ({"section": {"key": value}},
// bench/bench_common.hpp).  Metrics are classed by name pattern, first
// match wins:
//
//   * Exact        — deterministic values (byte counts, lane widths,
//                    warm_heap_events): any drift fails;
//   * HigherBetter — throughputs and speedups: fail when current <
//                    baseline * (1 - tolerance);
//   * LowerBetter  — latencies and runtimes: fail when current >
//                    baseline * (1 + tolerance);
//   * Cap          — absolute ceilings independent of the baseline
//                    (overhead percentages): fail when current > cap;
//   * Floor        — absolute floors independent of the baseline
//                    (quality bars like the q8 PSNR): fail when
//                    current < floor.
//
// Tolerances are deliberately generous for absolute throughputs (CI
// machines differ from the machine that produced the baseline) and
// tight for machine-independent ratios; `tolerance_scale` widens or
// narrows all relative tolerances at once (caps are never scaled).
// A metric present in the baseline but missing from the current run
// fails — silently dropping a measurement is itself a regression.

#include <map>
#include <string>
#include <vector>

namespace xct::bench_gate {

/// One parsed metric value: numeric when `is_number`, else the raw
/// string (quotes stripped).
struct Value {
    bool is_number = false;
    double number = 0.0;
    std::string text;
};

/// A parsed BENCH document: section -> key -> value.
using Doc = std::map<std::string, std::map<std::string, Value>>;

/// Parse the flat two-level BENCH JSON.  Throws std::invalid_argument
/// on malformed input or nesting deeper than two levels.
Doc parse(const std::string& json);
Doc parse_file(const std::string& path);

enum class Class {
    Exact,
    HigherBetter,
    LowerBetter,
    Cap,
    Floor,
};

/// One gate rule: a '*'-glob over the full "section.key" metric name.
struct Rule {
    std::string pattern;
    Class cls = Class::Exact;
    double tolerance = 0.0;  ///< fractional, for HigherBetter/LowerBetter
    double cap = 0.0;        ///< absolute ceiling, for Cap
    double floor = 0.0;      ///< absolute floor, for Floor
};

/// The repo's metric classes (documented above; first match wins).
std::vector<Rule> default_rules();

/// Restrict a document to the named sections (the soak-smoke gate checks
/// only the `soak` section of BENCH_soak.json against the baseline).
Doc filter_sections(const Doc& doc, const std::vector<std::string>& sections);

/// '*'-glob match (any character sequence, including '.').
bool glob_match(const std::string& pattern, const std::string& name);

/// One comparison outcome.
struct Finding {
    std::string metric;   ///< "section.key"
    std::string message;  ///< human-readable verdict
    bool fail = false;
};

struct GateResult {
    std::vector<Finding> findings;  ///< every compared metric, in order
    bool pass = true;               ///< no finding failed
};

/// Compare `current` against `baseline` under `rules`.  Relative
/// tolerances are multiplied by `tolerance_scale`; caps are not.
GateResult compare(const Doc& baseline, const Doc& current, const std::vector<Rule>& rules,
                   double tolerance_scale = 1.0);

/// Render findings one per line ("PASS metric: ..." / "FAIL metric: ...").
std::string format(const GateResult& r);

}  // namespace xct::bench_gate
