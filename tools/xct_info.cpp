// xct_info — inspect xct files: volume/stack extents, value statistics,
// and the decomposition plan a geometry implies (slab row bands, deltas,
// device footprint) — handy for sizing device budgets before a run.
//
//   xct_info --file vol.xvol
//   xct_info --geom proj.xstk.geom --batches 8

#include <algorithm>
#include <cstdio>

#include "cli.hpp"
#include "core/decompose.hpp"
#include "io/geometry_io.hpp"
#include "io/raw_io.hpp"

namespace {

void print_stats(std::span<const float> data)
{
    double sum = 0.0;
    float lo = data.empty() ? 0.0f : data[0];
    float hi = lo;
    for (float v : data) {
        sum += v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::printf("  values: min %.6g  max %.6g  mean %.6g\n", static_cast<double>(lo),
                static_cast<double>(hi), sum / static_cast<double>(data.size()));
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("file", "", "volume (.xvol) or stack (.xstk) to describe")
        .option("geom", "", "geometry sidecar to analyse")
        .option("batches", "8", "batch count Nc for the decomposition analysis");
    args.parse(argc, argv, "inspect xct files and decomposition plans");

    if (args.is_set("file")) {
        const std::filesystem::path p = args.get("file");
        if (p.extension() == ".xvol") {
            const Volume v = io::read_volume(p);
            std::printf("%s: volume %lld x %lld x %lld (%.1f MiB)\n", p.string().c_str(),
                        static_cast<long long>(v.size().x), static_cast<long long>(v.size().y),
                        static_cast<long long>(v.size().z),
                        static_cast<double>(v.count()) * 4.0 / (1024 * 1024));
            print_stats(v.span());
        } else {
            const ProjectionStack s = io::read_stack(p);
            std::printf("%s: stack %lld views x rows [%lld,%lld) x %lld cols (%.1f MiB)\n",
                        p.string().c_str(), static_cast<long long>(s.views()),
                        static_cast<long long>(s.row_begin()),
                        static_cast<long long>(s.row_begin() + s.rows()),
                        static_cast<long long>(s.cols()),
                        static_cast<double>(s.count()) * 4.0 / (1024 * 1024));
            print_stats(s.span());
        }
    }

    if (args.is_set("geom")) {
        const io::GeometryFile gf = io::read_geometry(args.get("geom"));
        const CbctGeometry& g = gf.geometry;
        std::printf("geometry: Dso %.3g  Dsd %.3g  mag %.2fx  detector %lldx%lld @ %g mm  "
                    "%lld views over %.0f deg\n",
                    g.dso, g.dsd, g.magnification(), static_cast<long long>(g.nu),
                    static_cast<long long>(g.nv), g.du, static_cast<long long>(g.num_proj),
                    g.scan_range * 180.0 / 3.14159265358979323846);
        std::printf("volume  : %lld^3 @ %g mm/voxel%s\n", static_cast<long long>(g.vol.x), g.dx,
                    gf.raw_counts ? "  (stack stores raw counts)" : "");

        const index_t nc = args.get_int("batches");
        const index_t nb = (g.vol.z + nc - 1) / nc;
        const auto plans = plan_slabs(g, Range{0, g.vol.z}, nb);
        index_t h = 0, moved = 0;
        for (const auto& pl : plans) {
            h = std::max(h, pl.rows.length());
            moved += pl.delta.length();
        }
        std::printf("decomposition (Nc=%lld, Nb=%lld):\n", static_cast<long long>(nc),
                    static_cast<long long>(nb));
        for (const auto& pl : plans)
            std::printf("  slab [%4lld,%4lld)  rows [%4lld,%4lld)  delta %4lld rows\n",
                        static_cast<long long>(pl.slab.lo), static_cast<long long>(pl.slab.hi),
                        static_cast<long long>(pl.rows.lo), static_cast<long long>(pl.rows.hi),
                        static_cast<long long>(pl.delta.length()));
        const double tex_mib = static_cast<double>(g.nu * g.num_proj * h) * 4.0 / (1024 * 1024);
        const double slab_mib = static_cast<double>(g.vol.x * g.vol.y * nb) * 4.0 / (1024 * 1024);
        std::printf("device footprint: texture %.1f MiB (H=%lld rows) + slab %.1f MiB\n", tex_mib,
                    static_cast<long long>(h), slab_mib);
        std::printf("total rows moved H2D once: %lld of %lld detector rows\n",
                    static_cast<long long>(moved), static_cast<long long>(g.nv));
    }
    return 0;
}
