// xct_stitch — assemble the slab files a distributed run stored into one
// volume file.
//
//   xct_stitch --dir /pfs/run42 --output full.xvol

#include <cstdio>

#include "cli.hpp"
#include "io/raw_io.hpp"
#include "io/stitch.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    cli::Args args;
    args.option("dir", ".", "directory containing slab_<lo>_<hi>.xvol files")
        .option("output", "volume.xvol", "stitched output volume");
    args.parse(argc, argv, "stitch distributed slab outputs into one volume");

    const auto slabs = io::discover_slabs(args.get("dir"));
    std::printf("found %zu slabs in %s\n", slabs.size(), args.get("dir").c_str());
    for (const auto& s : slabs)
        std::printf("  %s  slices [%lld, %lld)\n", s.path.filename().string().c_str(),
                    static_cast<long long>(s.slices.lo), static_cast<long long>(s.slices.hi));

    const Volume v = io::stitch_slabs(args.get("dir"));
    io::write_volume(args.get("output"), v);
    std::printf("wrote %s (%lld x %lld x %lld)\n", args.get("output").c_str(),
                static_cast<long long>(v.size().x), static_cast<long long>(v.size().y),
                static_cast<long long>(v.size().z));
    return 0;
}
