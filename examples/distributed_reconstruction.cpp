// Distributed reconstruction: Ng groups x Nr ranks (threads standing in
// for MPI ranks, one simulated GPU each), segmented per-group reduction,
// and the end-to-end pipeline of Fig. 9 on every rank — with the Fig. 10
// overlap timeline rendered for rank 0.
//
//   ./distributed_reconstruction [Ng] [Nr] [volume_size]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "io/raw_io.hpp"
#include "pipeline/timeline.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    const index_t ng = argc > 1 ? std::atoll(argv[1]) : 2;
    const index_t nr = argc > 2 ? std::atoll(argv[2]) : 2;
    const index_t n = argc > 3 ? std::atoll(argv[3]) : 48;

    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 2 * n;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = g.dv = 0.4;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, n) * 0.7;

    std::printf("distributed: Ng=%lld groups x Nr=%lld ranks = %lld \"GPUs\", %lld^3 volume\n",
                static_cast<long long>(ng), static_cast<long long>(nr),
                static_cast<long long>(ng * nr), static_cast<long long>(n));

    const auto head = phantom::shepp_logan_3d(g.dx * static_cast<double>(n) / 2.4);
    recon::DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{ng, nr};
    cfg.batches = 4;
    cfg.ranks_per_node = nr > 1 ? 2 : 0;  // hierarchical node-leader reduce

    const auto factory = [&](RankId) { return std::make_unique<recon::PhantomSource>(head, g); };

    // Stored slabs land in a bandwidth-accounted PFS directory.
    io::Pfs pfs(std::filesystem::temp_directory_path() / "xct_distributed_example",
                /*load_gbps=*/2.0, /*store_gbps=*/28.5);
    const recon::DistributedResult r = recon::reconstruct_distributed(cfg, factory, &pfs);

    const Volume truth = phantom::voxelize(head, g);
    std::printf("  flat-region RMSE vs phantom: %.4f\n", recon::rmse_flat(r.volume, truth, 4));
    std::printf("  wall %.3f s; PFS stored %.1f MiB (modelled %.4f s at 28.5 GB/s)\n",
                r.wall_seconds, static_cast<double>(pfs.store_stats().bytes) / (1024.0 * 1024.0),
                pfs.store_stats().seconds);

    std::printf("\n  per-rank stage busy seconds (group/rank = world layout):\n");
    std::printf("  %-6s %-8s %-8s %-8s %-8s %-8s\n", "rank", "load", "filter", "bp", "mpi",
                "store");
    for (std::size_t i = 0; i < r.ranks.size(); ++i) {
        const auto& s = r.ranks[i];
        std::printf("  %-6zu %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f\n", i, s.t_load, s.t_filter,
                    s.t_bp, s.t_reduce, s.t_store);
    }

    // Fig. 10-style overlap timeline of rank 0, rebuilt from its spans.
    pipeline::Timeline tl;
    for (const auto& span : r.ranks[0].spans) tl.record(span.stage, span.item, span.begin, span.end);
    std::printf("\n  rank 0 pipeline timeline ('#' = busy):\n%s", tl.render(64).c_str());
    std::printf("  overlap factor: %.2f (1.0 = fully serial; > 1 = stages overlapped)\n",
                tl.overlap_factor());

    io::write_pgm_slice("distributed_axial.pgm", r.volume, n / 2, -0.05f, 0.45f);
    std::printf("  wrote distributed_axial.pgm\n");
    return 0;
}
