// Quickstart: reconstruct a 3D Shepp-Logan head from synthetic cone-beam
// projections with the FDK pipeline, check the error against the analytic
// phantom, and export a PGM slice for inspection.
//
//   ./quickstart [volume_size] [num_projections]
//
// This is the minimal end-to-end use of the public API:
//   1. describe the scanner (CbctGeometry),
//   2. provide projections (here: a PhantomSource; real code would load
//      its own data and use a MemorySource or a custom ProjectionSource),
//   3. call reconstruct_fdk().

#include <cstdio>
#include <cstdlib>

#include "io/raw_io.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    const index_t n = argc > 1 ? std::atoll(argv[1]) : 64;
    const index_t np = argc > 2 ? std::atoll(argv[2]) : 2 * n;

    // 1. Scanner description: a micro-CT-like cone-beam setup with 2.5x
    //    magnification and a detector that oversamples the volume 2:1.
    CbctGeometry g;
    g.dso = 100.0;                  // source to rotation axis [mm]
    g.dsd = 250.0;                  // source to detector [mm]
    g.num_proj = np;                // full 360-degree scan
    g.nu = 2 * n;                   // detector pixels (width)
    g.nv = 2 * n;                   // detector pixels (height)
    g.du = g.dv = 0.4;              // pixel pitch [mm]
    g.vol = {n, n, n};              // output voxels
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, n) * 0.7;
    g.validate();

    std::printf("quickstart: %lld^3 volume from %lld projections of %lldx%lld\n",
                static_cast<long long>(n), static_cast<long long>(np),
                static_cast<long long>(g.nu), static_cast<long long>(g.nv));

    // 2. Synthetic data: the classical head phantom, projected analytically.
    const double radius = g.dx * static_cast<double>(n) / 2.4;
    const auto head = phantom::shepp_logan_3d(radius);

    // 3. Reconstruct.
    const recon::FdkResult r = recon::reconstruct_fdk(g, head);

    // Quality check against the analytic ground truth.
    const Volume truth = phantom::voxelize(head, g);
    std::printf("  flat-region RMSE vs phantom : %.4f (unit contrast)\n",
                recon::rmse_flat(r.volume, truth, 4));
    std::printf("  centre voxel                : %.4f (expected 0.200)\n",
                static_cast<double>(r.volume.at(n / 2, n / 2, n / 2)));

    // Pipeline statistics (the Fig. 9 stages).
    std::printf("  stage busy seconds: load %.3f | filter %.3f | bp %.3f | store %.3f\n",
                r.stats.t_load, r.stats.t_filter, r.stats.t_bp, r.stats.t_store);
    std::printf("  wall %.3f s, H2D %.1f MiB in %llu transfers\n", r.stats.wall,
                static_cast<double>(r.stats.h2d.bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(r.stats.h2d.transfers));

    io::write_pgm_slice("quickstart_slice.pgm", r.volume, n / 2, -0.05f, 0.45f);
    io::write_volume("quickstart_volume.xvol", r.volume);
    std::printf("  wrote quickstart_slice.pgm and quickstart_volume.xvol\n");
    return 0;
}
