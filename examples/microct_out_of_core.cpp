// Out-of-core micro-CT reconstruction: the coffee-bean scenario of the
// paper (Zeiss Versa geometry, 9.48x magnification, rotation-centre offset
// of Table 4) at laptop scale, on a simulated accelerator whose memory is
// deliberately too small to hold the projections and volume at once.
//
//   ./microct_out_of_core [scale_divisor]
//
// Demonstrates:
//   * dataset descriptors carrying the paper's real geometries,
//   * the Beer-law preprocessing path (the source emits photon counts),
//   * streaming reconstruction through the circular texture (Algorithm 3)
//     with a device budget ~4x below the in-core requirement,
//   * the per-stage statistics a Table-5 row is made of.

#include <cstdio>
#include <cstdlib>

#include "core/decompose.hpp"
#include "io/datasets.hpp"
#include "io/raw_io.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    const double scale = argc > 1 ? std::atof(argv[1]) : 64.0;

    // The paper's coffee-bean scan, shrunk: same magnification and cone
    // angle, fewer pixels.
    io::Dataset ds = io::dataset_by_name("coffee_bean").scaled(scale);
    ds = ds.with_volume(ds.geometry.nu / 2);
    const CbctGeometry& g = ds.geometry;
    std::printf("microct (coffee bean /%g): detector %lldx%lld, %lld views, volume %lld^3, "
                "magnification %.2f\n",
                scale, static_cast<long long>(g.nu), static_cast<long long>(g.nv),
                static_cast<long long>(g.num_proj), static_cast<long long>(g.vol.x),
                g.magnification());

    // A porous bean phantom, emitted as raw photon counts (Eq. 1 applies).
    const double radius = g.dx * static_cast<double>(g.vol.x) / 2.4;
    const auto bean = phantom::porous_bean(radius, 24, /*seed=*/2021);
    recon::PhantomSource source(bean, g, ds.beer);

    // Size the device budget just above the streaming minimum (largest
    // slab's row band + one slab buffer) — far below the in-core
    // requirement of projections + volume.
    const std::size_t in_core_bytes =
        static_cast<std::size_t>(g.num_proj * g.nv * g.nu + g.vol.count()) * sizeof(float);
    recon::RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    cfg.beer = ds.beer;
    const index_t nb = (g.vol.z + cfg.batches - 1) / cfg.batches;
    index_t h = 1;
    for (const auto& p : plan_slabs(g, Range{0, g.vol.z}, nb)) h = std::max(h, p.rows.length());
    const std::size_t streaming_bytes =
        static_cast<std::size_t>(g.num_proj * h * g.nu + g.vol.x * g.vol.y * nb) * sizeof(float);
    cfg.device_capacity = streaming_bytes + (streaming_bytes / 8);
    std::printf("  in-core footprint %.1f MiB, device budget %.1f MiB -> out-of-core\n",
                static_cast<double>(in_core_bytes) / (1024.0 * 1024.0),
                static_cast<double>(cfg.device_capacity) / (1024.0 * 1024.0));

    const recon::FdkResult r = recon::reconstruct_fdk(cfg, source);

    const Volume truth = phantom::voxelize(bean, g);
    std::printf("  flat-region RMSE vs phantom : %.4f\n", recon::rmse_flat(r.volume, truth, 4));
    std::printf("  T_load %.3f  T_flt %.3f  T_bp %.3f  T_store %.3f  wall %.3f s\n",
                r.stats.t_load, r.stats.t_filter, r.stats.t_bp, r.stats.t_store, r.stats.wall);
    std::printf("  H2D %.1f MiB (each projection row moved once), D2H %.1f MiB\n",
                static_cast<double>(r.stats.h2d.bytes) / (1024.0 * 1024.0),
                static_cast<double>(r.stats.d2h.bytes) / (1024.0 * 1024.0));

    io::write_pgm_slice("microct_axial.pgm", r.volume, g.vol.z / 2);
    io::write_pgm_slice("microct_axial_truth.pgm", truth, g.vol.z / 2);
    std::printf("  wrote microct_axial.pgm / microct_axial_truth.pgm\n");
    return 0;
}
