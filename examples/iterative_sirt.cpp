// FBP vs iterative reconstruction: run FDK, SIRT and MLEM on the same
// cone-beam data and compare error and cost — the trade-off behind the
// paper's Table 2 positioning (FBP is the production standard; IR
// converges iteratively at much higher compute cost).
//
//   ./iterative_sirt [volume_size] [iterations]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "iterative/mlem.hpp"
#include "iterative/sirt.hpp"
#include "io/raw_io.hpp"
#include "recon/fdk.hpp"

int main(int argc, char** argv)
{
    using namespace xct;
    using clock = std::chrono::steady_clock;
    const index_t n = argc > 1 ? std::atoll(argv[1]) : 24;
    const index_t iters = argc > 2 ? std::atoll(argv[2]) : 15;

    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 2 * n;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = g.dv = 0.8;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, n) * 0.7;

    const auto head = phantom::shepp_logan_3d(g.dx * static_cast<double>(n) / 2.4);
    const ProjectionStack data = phantom::forward_project(head, g);
    const Volume truth = phantom::voxelize(head, g);

    std::printf("FBP vs SIRT on a %lld^3 problem, %lld views\n", static_cast<long long>(n),
                static_cast<long long>(g.num_proj));

    // --- FDK (one filtered back-projection pass) ---------------------------
    auto t0 = clock::now();
    recon::MemorySource source(data);
    recon::RankConfig cfg;
    cfg.geometry = g;
    const recon::FdkResult fdk = recon::reconstruct_fdk(cfg, source);
    const double fdk_s = std::chrono::duration<double>(clock::now() - t0).count();
    std::printf("  FDK : %6.2f s, flat-region RMSE %.4f\n", fdk_s,
                recon::rmse_flat(fdk.volume, truth, 3));

    // --- SIRT ---------------------------------------------------------------
    t0 = clock::now();
    iterative::SirtConfig scfg;
    scfg.iterations = iters;
    scfg.on_iteration = [](index_t it, double res) {
        if (it % 5 == 0) std::printf("    sirt iter %3lld residual %.4e\n",
                                     static_cast<long long>(it), res);
    };
    const iterative::SirtResult sirt = iterative::reconstruct_sirt(g, data, scfg);
    const double sirt_s = std::chrono::duration<double>(clock::now() - t0).count();
    std::printf("  SIRT: %6.2f s (%lld iterations), flat-region RMSE %.4f\n", sirt_s,
                static_cast<long long>(iters), recon::rmse_flat(sirt.volume, truth, 3));
    std::printf("  cost ratio SIRT/FDK: %.1fx\n", sirt_s / fdk_s);

    // --- MLEM (multiplicative, non-negative) --------------------------------
    t0 = clock::now();
    iterative::MlemConfig mcfg;
    mcfg.iterations = iters;
    const iterative::MlemResult mlem = iterative::reconstruct_mlem(g, data, mcfg);
    const double mlem_s = std::chrono::duration<double>(clock::now() - t0).count();
    std::printf("  MLEM: %6.2f s (%lld iterations), flat-region RMSE %.4f\n", mlem_s,
                static_cast<long long>(iters), recon::rmse_flat(mlem.volume, truth, 3));

    io::write_pgm_slice("sirt_axial.pgm", sirt.volume, n / 2);
    io::write_pgm_slice("mlem_axial.pgm", mlem.volume, n / 2);
    io::write_pgm_slice("fdk_axial.pgm", fdk.volume, n / 2);
    std::printf("  wrote fdk_axial.pgm / sirt_axial.pgm / mlem_axial.pgm\n");
    return 0;
}
