// Unit tests for core value types: ranges, matrices, containers.
#include <gtest/gtest.h>

#include "core/types.hpp"
#include "core/volume.hpp"

namespace xct {
namespace {

TEST(Range, LengthAndEmptiness)
{
    EXPECT_EQ((Range{2, 7}.length()), 5);
    EXPECT_TRUE((Range{3, 3}.empty()));
    EXPECT_TRUE((Range{5, 2}.empty()));
    EXPECT_FALSE((Range{0, 1}.empty()));
}

TEST(Range, Contains)
{
    const Range r{2, 5};
    EXPECT_FALSE(r.contains(1));
    EXPECT_TRUE(r.contains(2));
    EXPECT_TRUE(r.contains(4));
    EXPECT_FALSE(r.contains(5));
}

TEST(Range, IntersectOverlapping)
{
    EXPECT_EQ(intersect({0, 10}, {5, 15}), (Range{5, 10}));
    EXPECT_EQ(intersect({5, 15}, {0, 10}), (Range{5, 10}));
}

TEST(Range, IntersectDisjointIsEmpty)
{
    EXPECT_TRUE(intersect({0, 3}, {5, 9}).empty());
}

TEST(Range, IntersectNested)
{
    EXPECT_EQ(intersect({0, 10}, {3, 4}), (Range{3, 4}));
}

TEST(Range, HullCoversBoth)
{
    EXPECT_EQ(hull({0, 3}, {5, 9}), (Range{0, 9}));
    EXPECT_EQ(hull({5, 9}, {0, 3}), (Range{0, 9}));
}

TEST(Range, HullIgnoresEmpty)
{
    EXPECT_EQ(hull({4, 4}, {5, 9}), (Range{5, 9}));
    EXPECT_EQ(hull({5, 9}, {4, 4}), (Range{5, 9}));
}

TEST(Mat34, MultiplyByIdentityIsNoop)
{
    Mat34 m;
    m[0] = {1, 2, 3, 4};
    m[1] = {5, 6, 7, 8};
    m[2] = {9, 10, 11, 12};
    const Mat34 r = multiply(m, Mat44::identity());
    for (int i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(r[i].x, m[i].x);
        EXPECT_DOUBLE_EQ(r[i].y, m[i].y);
        EXPECT_DOUBLE_EQ(r[i].z, m[i].z);
        EXPECT_DOUBLE_EQ(r[i].w, m[i].w);
    }
}

TEST(Mat44, MultiplyComposesTranslations)
{
    Mat44 a = Mat44::identity();
    a.m[0][3] = 2.0;
    Mat44 b = Mat44::identity();
    b.m[0][3] = 3.0;
    const Mat44 c = multiply(a, b);
    EXPECT_DOUBLE_EQ(c.m[0][3], 5.0);
}

TEST(Vec3, DotAndNorm)
{
    const Vec3 a{3.0, 4.0, 0.0};
    EXPECT_DOUBLE_EQ(a.norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.dot({1.0, 1.0, 1.0}), 7.0);
}

TEST(Volume, LayoutIsXFastest)
{
    Volume v(Dim3{3, 4, 5});
    v.at(1, 2, 3) = 42.0f;
    EXPECT_FLOAT_EQ(v.span()[static_cast<std::size_t>((3 * 4 + 2) * 3 + 1)], 42.0f);
}

TEST(Volume, SliceViewsAreContiguous)
{
    Volume v(Dim3{2, 3, 4});
    v.at(1, 2, 2) = 7.0f;
    const auto s = v.slice(2);
    EXPECT_EQ(s.size(), 6u);
    EXPECT_FLOAT_EQ(s[5], 7.0f);
}

TEST(Volume, RejectsEmptyExtents)
{
    EXPECT_THROW(Volume(Dim3{0, 1, 1}), std::invalid_argument);
}

TEST(ProjectionStack, FullDetectorLayout)
{
    ProjectionStack p(2, 3, 4);
    p.at(1, 2, 3) = 9.0f;
    EXPECT_FLOAT_EQ(p.span()[static_cast<std::size_t>((1 * 3 + 2) * 4 + 3)], 9.0f);
    EXPECT_EQ(p.row_begin(), 0);
}

TEST(ProjectionStack, BandRestrictedGlobalIndexing)
{
    ProjectionStack p(2, Range{10, 14}, 5);
    EXPECT_EQ(p.rows(), 4);
    EXPECT_EQ(p.row_begin(), 10);
    p.at(1, 12, 3) = 5.0f;
    EXPECT_FLOAT_EQ(p.row(1, 12)[3], 5.0f);
}

TEST(ProjectionStack, ViewSpanCoversBand)
{
    ProjectionStack p(3, Range{4, 7}, 2);
    EXPECT_EQ(p.view(1).size(), 6u);
}

TEST(Require, ThrowsWithMessage)
{
    EXPECT_THROW(require(false, "boom"), std::invalid_argument);
    EXPECT_NO_THROW(require(true, "ok"));
}

}  // namespace
}  // namespace xct
