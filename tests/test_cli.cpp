// Tests of the tools' command-line parser (success paths; --help and
// error paths terminate the process by design and are exercised by the
// tools_* integration tests).
#include <gtest/gtest.h>

#include "cli.hpp"

namespace xct::cli {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args)
{
    std::vector<char*> out;
    out.reserve(args.size());
    for (auto& a : args) out.push_back(a.data());
    return out;
}

TEST(Cli, DefaultsApplyWhenUnset)
{
    Args args;
    args.option("size", "42", "a size").flag("fast", "go fast");
    std::vector<std::string> v{"prog"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_EQ(args.get("size"), "42");
    EXPECT_EQ(args.get_int("size"), 42);
    EXPECT_FALSE(args.get_flag("fast"));
}

TEST(Cli, ParsesOptionsAndFlags)
{
    Args args;
    args.option("size", "1", "a size").option("name", "", "a name").flag("fast", "go fast");
    std::vector<std::string> v{"prog", "--size", "7", "--fast", "--name", "zeiss"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_EQ(args.get_int("size"), 7);
    EXPECT_TRUE(args.get_flag("fast"));
    EXPECT_EQ(args.get("name"), "zeiss");
    EXPECT_TRUE(args.is_set("name"));
}

TEST(Cli, DoubleParsing)
{
    Args args;
    args.option("scale", "1.5", "a scale");
    std::vector<std::string> v{"prog", "--scale", "2.25"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_DOUBLE_EQ(args.get_double("scale"), 2.25);
}

TEST(Cli, IsSetDistinguishesEmptyDefaults)
{
    Args args;
    args.option("out", "", "optional output");
    std::vector<std::string> v{"prog"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_FALSE(args.is_set("out"));
}

TEST(Cli, ReconToolObservabilityFlagsParse)
{
    // Smoke test of the xct_recon-style --trace / --metrics options: both
    // default off (empty), both capture a path when given.
    Args args;
    args.option("input", "projections.xstk", "input stack")
        .option("trace", "", "Chrome trace output")
        .option("metrics", "", "metrics CSV output");
    std::vector<std::string> v{"prog",    "--input",   "p.xstk",
                               "--trace", "out.json",  "--metrics",
                               "m.csv"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_TRUE(args.is_set("trace"));
    EXPECT_EQ(args.get("trace"), "out.json");
    EXPECT_TRUE(args.is_set("metrics"));
    EXPECT_EQ(args.get("metrics"), "m.csv");

    Args off;
    off.option("trace", "", "t").option("metrics", "", "m");
    std::vector<std::string> w{"prog"};
    auto b = argv_of(w);
    off.parse(static_cast<int>(b.size()), b.data(), "test");
    EXPECT_FALSE(off.is_set("trace"));
    EXPECT_FALSE(off.is_set("metrics"));
}

TEST(Cli, LaterValueWins)
{
    Args args;
    args.option("n", "1", "count");
    std::vector<std::string> v{"prog", "--n", "2", "--n", "3"};
    auto a = argv_of(v);
    args.parse(static_cast<int>(a.size()), a.data(), "test");
    EXPECT_EQ(args.get_int("n"), 3);
}

}  // namespace
}  // namespace xct::cli
