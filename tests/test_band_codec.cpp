// q8 band-codec tests (src/io/band_codec, DESIGN.md §3j): the round-trip
// error bound, bitwise agreement with the QuantizedTexture3 dequantiser,
// the wire-size win, digest verification at the band.decode fault gate
// with retry recovery, and the end-to-end pipeline contracts — raw runs
// are bitwise independent of the prefetch switch, q8 runs stay within the
// quantisation quality bar while moving ~4x fewer host->device bytes.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <random>

#include "core/names.hpp"
#include "faults/fault.hpp"
#include "faults/retry.hpp"
#include "integrity/integrity.hpp"
#include "io/band_codec.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"
#include "recon/quality.hpp"
#include "sim/device.hpp"
#include "telemetry/metrics.hpp"

namespace xct::io {
namespace {

ProjectionStack random_band(index_t views = 6, Range band = Range{5, 21}, index_t cols = 32,
                            std::uint32_t seed = 17)
{
    ProjectionStack s(views, band, cols);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(-1.5f, 2.5f);
    for (float& v : s.span()) v = dist(rng);
    return s;
}

// ---- round trip ---------------------------------------------------------

TEST(BandCodec, RoundTripStaysWithinTheDocumentedBound)
{
    const ProjectionStack band = random_band();
    const EncodedBand e = encode_band(band);
    EXPECT_EQ(e.views, band.views());
    EXPECT_EQ(e.cols, band.cols());
    EXPECT_EQ(e.band.lo, band.band().lo);
    EXPECT_EQ(e.band.hi, band.band().hi);
    EXPECT_EQ(e.payload.size(), static_cast<std::size_t>(band.count()));

    const ProjectionStack back = decode_band(e);
    ASSERT_EQ(back.count(), band.count());
    EXPECT_EQ(back.band().lo, band.band().lo);
    const float bound = q8_error_bound(e);
    EXPECT_GT(bound, 0.0f);
    float max_err = 0.0f;
    for (index_t i = 0; i < band.count(); ++i)
        max_err = std::max(max_err, std::abs(back.span()[static_cast<std::size_t>(i)] -
                                             band.span()[static_cast<std::size_t>(i)]));
    EXPECT_LE(max_err, bound);
}

TEST(BandCodec, ConstantBandDecodesExactly)
{
    // hi == lo: payload stays zero and every texel decodes to lo.
    const ProjectionStack band(3, Range{0, 4}, 8, 0.75f);
    const EncodedBand e = encode_band(band);
    EXPECT_EQ(e.lo, e.hi);
    EXPECT_EQ(q8_error_bound(e), 0.0f);
    const ProjectionStack back = decode_band(e);
    for (const float v : back.span()) EXPECT_EQ(v, 0.75f);
}

TEST(BandCodec, DequantisesBitIdenticallyToQuantizedTexture3)
{
    // The wire codec and the texture ablation share one quantisation
    // story; encode+decode must reproduce QuantizedTexture3's
    // copy_planes+fetch bit for bit (same mapping, same expression order).
    const ProjectionStack band = random_band(5, Range{2, 14}, 24, 99);
    const EncodedBand e = encode_band(band);
    const ProjectionStack back = decode_band(e);

    sim::Device dev(64u << 20);
    sim::QuantizedTexture3 tex(dev, band.cols(), band.rows(), band.views(), e.lo, e.hi);
    tex.copy_planes(band.span(), 0, band.views());
    for (index_t s = 0; s < band.views(); ++s)
        for (index_t v = band.band().lo; v < band.band().hi; ++v)
            for (index_t u = 0; u < band.cols(); ++u) {
                const float a = back.at(s, v, u);
                const float b = tex.fetch(u, v - band.band().lo, s);
                EXPECT_EQ(std::bit_cast<std::uint32_t>(a), std::bit_cast<std::uint32_t>(b))
                    << "at view " << s << " row " << v << " col " << u;
            }
}

TEST(BandCodec, WireIsAtLeastThreeTimesSmallerThanRaw)
{
    const ProjectionStack band = random_band(4, Range{3, 19}, 64);
    const EncodedBand e = encode_band(band);
    EXPECT_GE(static_cast<double>(e.raw_bytes()) / static_cast<double>(e.wire_bytes()), 3.0);
}

TEST(BandCodec, NamesRoundTripAndRejectUnknownCodecs)
{
    EXPECT_EQ(band_codec_from_name("raw"), BandCodec::Raw);
    EXPECT_EQ(band_codec_from_name("q8"), BandCodec::Q8);
    EXPECT_STREQ(band_codec_name(BandCodec::Raw), "raw");
    EXPECT_STREQ(band_codec_name(BandCodec::Q8), "q8");
    EXPECT_THROW(band_codec_from_name("q16"), std::invalid_argument);
}

TEST(BandCodec, RejectsMalformedBands)
{
    EXPECT_THROW(encode_band(ProjectionStack()), std::invalid_argument);
    EncodedBand e;
    EXPECT_THROW(decode_band(e), std::invalid_argument);  // empty payload
    e = encode_band(random_band());
    e.views += 1;  // payload no longer matches the claimed extents
    EXPECT_THROW(decode_band(e), std::invalid_argument);
}

// ---- the band.decode fault gate -----------------------------------------

TEST(BandCodec, DigestCatchesInjectedCorruptionAndRetryRecoversBitwise)
{
    integrity::ScopedEnable on;
    const ProjectionStack band = random_band();
    const EncodedBand e = encode_band(band);
    const ProjectionStack clean = decode_band(e);

    auto& reg = telemetry::registry();
    const auto injected_before =
        reg.counter(std::string(names::kMetricFaultsInjectedPrefix) + names::kSiteBandDecode)
            .value();
    const auto detected_before =
        reg.counter(std::string(names::kMetricIntegrityDetectedPrefix) + names::kSiteBandDecode)
            .value();

    faults::ScopedPlan install(
        faults::FaultPlan::parse("band.decode:kind=corrupt,flips=3,after=0,count=1"));
    // The corrupted transit copy must be detected, and because the source
    // EncodedBand stays intact, the retried decode recovers bitwise.
    faults::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_delay_s = 0.0;
    const ProjectionStack retried = faults::with_retry(names::kSiteBandDecode, policy,
                                                       [&] { return decode_band(e); });
    ASSERT_EQ(retried.count(), clean.count());
    EXPECT_EQ(std::memcmp(retried.span().data(), clean.span().data(),
                          static_cast<std::size_t>(clean.count()) * sizeof(float)),
              0);

    // Counter twins: exactly one injection, exactly one detection.
    EXPECT_EQ(reg.counter(std::string(names::kMetricFaultsInjectedPrefix) +
                          names::kSiteBandDecode)
                      .value() -
                  injected_before,
              1u);
    EXPECT_EQ(reg.counter(std::string(names::kMetricIntegrityDetectedPrefix) +
                          names::kSiteBandDecode)
                      .value() -
                  detected_before,
              1u);
}

TEST(BandCodec, ThrowClassFaultsFireBeforeTheTransitCopy)
{
    const EncodedBand e = encode_band(random_band());
    faults::ScopedPlan install(faults::FaultPlan::parse("band.decode:after=0,count=1"));
    EXPECT_THROW(decode_band(e), faults::TransientError);
    EXPECT_NO_THROW(decode_band(e));  // count=1 consumed
}

// ---- end-to-end pipeline contracts --------------------------------------

CbctGeometry geo(index_t n = 24, index_t np = 36)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

recon::DistributedConfig dist_config(const CbctGeometry& g)
{
    recon::DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    cfg.batches = 4;
    return cfg;
}

recon::SourceFactory phantom_factory(const std::vector<phantom::Ellipsoid>& ph,
                                     const CbctGeometry& g)
{
    return [&ph, g](RankId) { return std::make_unique<recon::PhantomSource>(ph, g); };
}

TEST(BandCodecPipeline, RawRunsAreBitwiseIndependentOfPrefetch)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);

    recon::DistributedConfig off = dist_config(g);
    const recon::DistributedResult a = reconstruct_distributed(off, phantom_factory(ph, g));

    recon::DistributedConfig on = dist_config(g);
    on.prefetch = true;
    on.queue_depth = 3;
    const recon::DistributedResult b = reconstruct_distributed(on, phantom_factory(ph, g));

    ASSERT_EQ(a.volume.count(), b.volume.count());
    EXPECT_EQ(std::memcmp(a.volume.span().data(), b.volume.span().data(),
                          static_cast<std::size_t>(a.volume.count()) * sizeof(float)),
              0);
    // The staging stage actually ran on the prefetch side.
    double t_prefetch = 0.0;
    for (const recon::RankStats& rs : b.ranks) t_prefetch += rs.t_prefetch;
    EXPECT_GT(t_prefetch, 0.0);
}

TEST(BandCodecPipeline, Q8CutsTransportBytesAndHoldsTheQualityBar)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
    auto& h2d = telemetry::registry().counter(names::kMetricSimH2dBytes);

    recon::DistributedConfig raw = dist_config(g);
    const auto h2d_before_raw = h2d.value();
    const recon::DistributedResult a = reconstruct_distributed(raw, phantom_factory(ph, g));
    const auto raw_bytes = h2d.value() - h2d_before_raw;

    recon::DistributedConfig q8 = dist_config(g);
    q8.band_codec = io::BandCodec::Q8;
    q8.prefetch = true;
    const auto h2d_before_q8 = h2d.value();
    const recon::DistributedResult b = reconstruct_distributed(q8, phantom_factory(ph, g));
    const auto q8_bytes = h2d.value() - h2d_before_q8;

    // The acceptance bar: at least 3x fewer pfs->device band bytes.
    EXPECT_GE(static_cast<double>(raw_bytes), 3.0 * static_cast<double>(q8_bytes));
    // Quantisation stays benign end to end (same floor the BENCH gate
    // holds; the measured value sits well above it).
    EXPECT_GE(recon::psnr(a.volume, b.volume), 40.0);
}

}  // namespace
}  // namespace xct::io
