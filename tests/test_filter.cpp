// Filtering-computation tests (Eq. 2): ramp kernel taps, apodisation
// windows, cosine weighting and the row-parallel engine.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "filter/ramp.hpp"

namespace xct::filter {
namespace {

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 64;
    g.nu = 64;
    g.nv = 32;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {32, 32, 32};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

TEST(RampKernel, CentreTap)
{
    const auto taps = ramp_kernel(8, 0.5);
    ASSERT_EQ(taps.size(), 17u);
    EXPECT_NEAR(taps[8], 1.0 / (4.0 * 0.5), 1e-7);
}

TEST(RampKernel, OddTapsFollowInverseSquare)
{
    const double du = 0.25;
    const auto taps = ramp_kernel(8, du);
    const double pi2 = std::numbers::pi * std::numbers::pi;
    for (int n = 1; n <= 8; n += 2) {
        EXPECT_NEAR(taps[static_cast<std::size_t>(8 + n)], -1.0 / (pi2 * n * n * du), 1e-7);
        EXPECT_NEAR(taps[static_cast<std::size_t>(8 - n)], -1.0 / (pi2 * n * n * du), 1e-7);
    }
}

TEST(RampKernel, EvenTapsAreZero)
{
    const auto taps = ramp_kernel(9, 1.0);
    for (int n = 2; n <= 9; n += 2) {
        EXPECT_FLOAT_EQ(taps[static_cast<std::size_t>(9 + n)], 0.0f);
        EXPECT_FLOAT_EQ(taps[static_cast<std::size_t>(9 - n)], 0.0f);
    }
}

TEST(RampKernel, SumApproachesZero)
{
    // The ideal ramp kernel integrates to zero (no DC response); the
    // truncated sum decays like 1/half_width.
    const auto taps = ramp_kernel(512, 1.0);
    double sum = 0.0;
    for (float t : taps) sum += t;
    EXPECT_NEAR(sum, 0.0, 1e-3);
}

TEST(WindowGain, ValuesAtDcAndNyquist)
{
    EXPECT_DOUBLE_EQ(window_gain(Window::RamLak, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(window_gain(Window::RamLak, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(window_gain(Window::Hann, 0.0), 1.0);
    EXPECT_NEAR(window_gain(Window::Hann, 1.0), 0.0, 1e-12);
    EXPECT_NEAR(window_gain(Window::Cosine, 1.0), 0.0, 1e-12);
    EXPECT_NEAR(window_gain(Window::Hamming, 1.0), 0.08, 1e-12);
    EXPECT_NEAR(window_gain(Window::SheppLogan, 1.0), 2.0 / std::numbers::pi, 1e-12);
    EXPECT_DOUBLE_EQ(window_gain(Window::SheppLogan, 0.0), 1.0);
}

TEST(WindowGain, MonotoneDecreasing)
{
    for (Window w : {Window::SheppLogan, Window::Cosine, Window::Hamming, Window::Hann}) {
        double prev = window_gain(w, 0.0);
        for (double x = 0.1; x <= 1.0; x += 0.1) {
            const double g = window_gain(w, x);
            EXPECT_LE(g, prev + 1e-12);
            prev = g;
        }
    }
}

TEST(WindowFromName, ParsesAllNames)
{
    EXPECT_EQ(window_from_name("ram-lak"), Window::RamLak);
    EXPECT_EQ(window_from_name("ramp"), Window::RamLak);
    EXPECT_EQ(window_from_name("shepp-logan"), Window::SheppLogan);
    EXPECT_EQ(window_from_name("cosine"), Window::Cosine);
    EXPECT_EQ(window_from_name("hamming"), Window::Hamming);
    EXPECT_EQ(window_from_name("hann"), Window::Hann);
    EXPECT_THROW(window_from_name("boxcar"), std::invalid_argument);
}

TEST(FilterEngine, ConstantRowFiltersToNearZero)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    std::vector<float> row(static_cast<std::size_t>(g.nu), 1.0f);
    eng.apply_row(row, g.nv / 2);
    // Ramp removes DC; interior values must be small relative to the input
    // scale times the FDK normalisation.
    const double scale = std::numbers::pi / static_cast<double>(g.num_proj) * g.magnification();
    for (index_t u = g.nu / 4; u < 3 * g.nu / 4; ++u)
        EXPECT_LT(std::abs(row[static_cast<std::size_t>(u)]), 0.05 * scale) << "u=" << u;
}

TEST(FilterEngine, DeltaResponseHasRampShape)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    const index_t c = g.nu / 2;
    std::vector<float> row(static_cast<std::size_t>(g.nu), 0.0f);
    row[static_cast<std::size_t>(c)] = 1.0f;
    eng.apply_row(row, g.nv / 2);
    // Centre / first-neighbour ratio of the band-limited ramp: -pi^2/4.
    const double ratio = row[static_cast<std::size_t>(c)] / row[static_cast<std::size_t>(c + 1)];
    EXPECT_NEAR(ratio, -std::numbers::pi * std::numbers::pi / 4.0, 0.05);
    // Symmetry around the impulse (centre pixel weight applies equally).
    EXPECT_NEAR(row[static_cast<std::size_t>(c - 1)], row[static_cast<std::size_t>(c + 1)], 1e-6f);
}

TEST(FilterEngine, CosineWeightReducesObliqueRays)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    // Same impulse at the detector centre vs at a corner-adjacent row: the
    // oblique one is attenuated by the Eq. 2 weight.
    std::vector<float> centre(static_cast<std::size_t>(g.nu), 0.0f);
    std::vector<float> edge(static_cast<std::size_t>(g.nu), 0.0f);
    centre[static_cast<std::size_t>(g.nu / 2)] = 1.0f;
    edge[static_cast<std::size_t>(g.nu / 2)] = 1.0f;
    eng.apply_row(centre, g.nv / 2);
    eng.apply_row(edge, 0);
    EXPECT_LT(std::abs(edge[static_cast<std::size_t>(g.nu / 2)]),
              std::abs(centre[static_cast<std::size_t>(g.nu / 2)]));
}

TEST(FilterEngine, StackApplyMatchesRowApply)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g, Window::Hann);
    ProjectionStack a(3, Range{4, 12}, g.nu);
    for (index_t s = 0; s < 3; ++s)
        for (index_t v = 4; v < 12; ++v)
            for (index_t u = 0; u < g.nu; ++u)
                a.at(s, v, u) = static_cast<float>((s + 1) * 100 + v * 10) * 0.01f +
                                static_cast<float>(u % 7) * 0.1f;
    ProjectionStack b = a;
    eng.apply(a);
    for (index_t s = 0; s < 3; ++s)
        for (index_t v = 4; v < 12; ++v) eng.apply_row(b.row(s, v), v);
    // apply() uses the packed-pair fp32 FFT while apply_row packs a single
    // real row, so agreement is to accumulated float rounding over the
    // padded transform (empirically < 1e-5 on this size; 5e-5 with margin),
    // not bitwise.
    for (index_t s = 0; s < 3; ++s)
        for (index_t v = 4; v < 12; ++v)
            for (index_t u = 0; u < g.nu; ++u)
                ASSERT_NEAR(a.at(s, v, u), b.at(s, v, u), 5e-5f) << s << "," << v << "," << u;
}

TEST(FilterEngine, PairPackedFftMatchesSeparateRows)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    std::vector<float> a(static_cast<std::size_t>(g.nu)), b(static_cast<std::size_t>(g.nu));
    for (index_t u = 0; u < g.nu; ++u) {
        a[static_cast<std::size_t>(u)] = std::sin(0.3 * static_cast<double>(u)) + 1.0f;
        b[static_cast<std::size_t>(u)] = std::cos(0.7 * static_cast<double>(u)) - 0.5f;
    }
    std::vector<float> a2 = a, b2 = b;
    eng.apply_row_pair(a, 5, b, 9);
    eng.apply_row(a2, 5);
    eng.apply_row(b2, 9);
    // Both sides run the fp32 transform; the pair packing only changes
    // which rounding errors accumulate, bounded by a few ulp of the row
    // scale over the padded length (1e-5 holds with ~10x margin here).
    for (index_t u = 0; u < g.nu; ++u) {
        ASSERT_NEAR(a[static_cast<std::size_t>(u)], a2[static_cast<std::size_t>(u)], 1e-5f);
        ASSERT_NEAR(b[static_cast<std::size_t>(u)], b2[static_cast<std::size_t>(u)], 1e-5f);
    }
}

TEST(FilterEngine, OddRowCountFiltersEveryRow)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    ProjectionStack stack(2, Range{0, 5}, g.nu, 1.0f);  // odd row count
    eng.apply(stack);
    // DC removed everywhere, including the unpaired last row.
    for (index_t s = 0; s < 2; ++s)
        for (index_t v = 0; v < 5; ++v)
            EXPECT_LT(std::abs(stack.at(s, v, g.nu / 2)), 0.05f) << s << "," << v;
}

TEST(FilterEngine, HannSuppressesNyquistMoreThanRamLak)
{
    const CbctGeometry g = geo();
    FilterEngine ramlak(g, Window::RamLak);
    FilterEngine hann(g, Window::Hann);
    std::vector<float> a(static_cast<std::size_t>(g.nu));
    for (index_t u = 0; u < g.nu; ++u) a[static_cast<std::size_t>(u)] = (u % 2 == 0) ? 1.0f : -1.0f;
    std::vector<float> b = a;
    ramlak.apply_row(a, g.nv / 2);
    hann.apply_row(b, g.nv / 2);
    double ea = 0.0, eb = 0.0;
    for (index_t u = g.nu / 4; u < 3 * g.nu / 4; ++u) {
        ea += a[static_cast<std::size_t>(u)] * a[static_cast<std::size_t>(u)];
        eb += b[static_cast<std::size_t>(u)] * b[static_cast<std::size_t>(u)];
    }
    EXPECT_LT(eb, 0.05 * ea);
}

TEST(FilterEngine, ExtraScaleIsLinear)
{
    const CbctGeometry g = geo();
    FilterEngine one(g, Window::RamLak, 1.0);
    FilterEngine two(g, Window::RamLak, 2.0);
    std::vector<float> a(static_cast<std::size_t>(g.nu), 0.0f);
    a[10] = 1.0f;
    std::vector<float> b = a;
    one.apply_row(a, 3);
    two.apply_row(b, 3);
    for (index_t u = 0; u < g.nu; ++u)
        ASSERT_NEAR(b[static_cast<std::size_t>(u)], 2.0f * a[static_cast<std::size_t>(u)], 1e-6f);
}

TEST(FilterEngine, RejectsWrongRowWidth)
{
    const CbctGeometry g = geo();
    FilterEngine eng(g);
    std::vector<float> row(static_cast<std::size_t>(g.nu + 1), 0.0f);
    EXPECT_THROW(eng.apply_row(row, 0), std::invalid_argument);
}

}  // namespace
}  // namespace xct::filter
