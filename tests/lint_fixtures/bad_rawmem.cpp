// Lint fixture: trips rule `rawmem` only — one hit per banned token.
#include <cstdlib>

namespace fixture {

inline float* leak_some_memory()
{
    float* a = new float[16];                       // LINT: rawmem
    void* b = std::malloc(64);                      // LINT: rawmem
    return reinterpret_cast<float*>(b) + (a != nullptr ? 0 : 1);  // LINT: rawmem
}

}  // namespace fixture
