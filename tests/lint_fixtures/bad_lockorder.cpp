// Lint fixture: trips rule `lockorder` only.  The two functions take the
// same pair of mutexes in opposite orders — a thread in forward() holding
// st.a can deadlock against a thread in backward() holding st.b.  The
// XCT_GUARDED_BY references keep the `mutex` rule quiet (the fixture is
// about ordering, not missing annotations).
#define XCT_GUARDED_BY(x)

namespace fixture {

struct Mutex {};
struct MutexLock {
    explicit MutexLock(Mutex&) {}
};

struct State {
    Mutex a;
    Mutex b;
    int ga XCT_GUARDED_BY(a) = 0;
    int gb XCT_GUARDED_BY(b) = 0;
};

inline void forward(State& st)
{
    MutexLock lk(st.a);
    MutexLock inner(st.b);
    ++st.gb;
}

inline void backward(State& st)
{
    MutexLock lk(st.b);
    MutexLock inner(st.a);  // LINT: lockorder
    ++st.ga;
}

}  // namespace fixture
