// Lint fixture: trips rule `mutex` only — once for the raw std::mutex
// (wrappers from core/mutex.hpp are mandatory) and once for the Mutex
// member that no XCT_* annotation references.
#include <mutex>

namespace fixture {

struct Mutex {
    void lock() {}
    void unlock() {}
};

struct State {
    std::mutex raw_;    // LINT: mutex  (raw standard primitive: use xct::Mutex)
    Mutex lone_;        // LINT: mutex  (nothing is XCT_GUARDED_BY(lone_) — this
                        // comment mention doesn't count: the scanner blanks
                        // comments before matching, so the rule still fires)
    int value_ = 0;
};

}  // namespace fixture
