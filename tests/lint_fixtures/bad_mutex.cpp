// Lint fixture: trips rule `mutex` only — once for the raw std::mutex
// (wrappers from core/mutex.hpp are mandatory) and once for the Mutex
// member that no XCT_* annotation references.
#include <mutex>

namespace fixture {

struct Mutex {
    void lock() {}
    void unlock() {}
};

struct State {
    std::mutex raw_;    // raw standard primitive: use xct::Mutex
    Mutex lone_;        // annotated type, but nothing is XCT_GUARDED_BY(lone_)... almost:
                        // the annotation only appears in this comment, which the
                        // scanner blanks before matching, so the rule still fires.
    int value_ = 0;
};

}  // namespace fixture
