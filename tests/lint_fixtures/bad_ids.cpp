// Lint fixture: trips rule `ids` only.  Raw index_t / int declarations
// named after the decomposition axes — outside core/ids.hpp and the
// minimpi boundary these must be the strong types from core/ids.hpp, or
// a world rank passed where a group index was meant compiles silently.
#include <cstdint>

namespace fixture {

using index_t = std::int64_t;

struct JobRecord {
    index_t job = 0;   // LINT: ids
    int group;         // LINT: ids
    index_t nranks = 0;  // a count, not an id: clean
};

inline index_t views_of(index_t rank, index_t np)  // LINT: ids
{
    return rank + np;
}

inline void touch(index_t view)  // LINT: ids
{
    (void)view;
}

}  // namespace fixture
