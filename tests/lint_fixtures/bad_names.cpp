// Lint fixture: trips rule `names` only.  Metric and span literals below
// are deliberately NOT registered in src/core/names.hpp.
#include <string>

namespace fixture {

struct Counter {
    void add(long) {}
};
struct Registry {
    Counter& counter(const std::string&) { return c_; }
    Counter& gauge(const std::string&) { return c_; }
    Counter c_;
};
struct ScopedTrace {
    ScopedTrace(const char*, const char*, long) {}
};
struct Watchdog {
    template <typename F>
    void supervise(const char*, F&&) {}
};

inline long corrupt(const char*, char*) { return 0; }
inline void record(const char*, const char*, double, double) {}

inline void record(Registry& reg)
{
    reg.counter("bogus.metric").add(1);             // LINT: names
    reg.gauge("made.up.gauge").add(2);              // LINT: names
    ScopedTrace trace("nocategory", "nospan", 0);   // LINT: names names
    corrupt("phantom.site", nullptr);               // LINT: names
    Watchdog wd;
    wd.supervise("no.such.section", [] {});         // LINT: names
    record("bogus.flightspan", nullptr, 0.0, 1.0);  // LINT: names
    reg.counter("soak.bogus.jobs").add(1);          // LINT: names
    corrupt("serve.unregistered.site", nullptr);    // LINT: names
    reg.counter("serve.bogus.rejections").add(1);   // LINT: names
}

}  // namespace fixture
