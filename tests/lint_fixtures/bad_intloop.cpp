// Lint fixture: trips rule `intloop` only.  The int induction variables
// feed flat-index multiplications — exactly the 32-bit overflow pattern
// the rule exists to catch (a 4096^3 volume has 2^36 voxels).
#include <cstddef>
#include <vector>

namespace fixture {

inline float sum_planes(const std::vector<float>& buf, int nx, int ny, int nz)
{
    float s = 0.0f;
    for (int k = 0; k < nz; ++k)                    // LINT: intloop
        s += buf[static_cast<std::size_t>(k) * static_cast<std::size_t>(nx * ny)];
    for (int j = 0; j < ny; ++j) {                  // LINT: intloop
        const int row = j * nx;
        s += buf[static_cast<std::size_t>(row)];
    }
    return s;
}

}  // namespace fixture
