// Lint fixture: violates nothing.  Exercises the allowed form of every
// construct the rules police: registered metric names (exact and via
// prefix), index_t flat-index loops, container-owned memory, and an
// annotated Mutex.
#include <cstdint>
#include <string>
#include <vector>

#define XCT_GUARDED_BY(x)

namespace fixture {

using index_t = std::int64_t;

struct Counter {
    void add(long) {}
};
struct Registry {
    Counter& counter(const std::string&) { return c_; }
    Counter c_;
};

struct Mutex {
    void lock() {}
    void unlock() {}
};

struct Accumulator {
    Mutex m_;
    long total_ XCT_GUARDED_BY(m_) = 0;
};

struct Watchdog {
    template <typename F>
    void supervise(const char*, F&&) {}
};

inline long corrupt(const char*, char*) { return 0; }

inline void integrity_sites()
{
    corrupt("checkpoint.load", nullptr);  // registered fault site
    Watchdog wd;
    wd.supervise("health_probe", [] {});  // registered watchdog section
}

inline void serve_sites(Registry& reg)
{
    corrupt("serve.journal.append", nullptr);  // registered serve fault site
    reg.counter("serve.shed").add(1);          // registered exactly
    reg.counter("serve.reject.deadline").add(1);  // registered via prefix
}

inline float sum_volume(Registry& reg, const std::vector<float>& buf, index_t nx, index_t ny,
                        index_t nz)
{
    reg.counter("fft.transforms").add(1);             // registered exactly
    reg.counter("pipeline.stage.filter.spans").add(1);  // registered via prefix
    float s = 0.0f;
    for (index_t k = 0; k < nz; ++k)
        for (index_t j = 0; j < ny; ++j)
            for (index_t i = 0; i < nx; ++i) s += buf[static_cast<std::size_t>((k * ny + j) * nx + i)];
    return s;
}

}  // namespace fixture
