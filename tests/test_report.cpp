// Run-report tests: the measured-vs-predicted join (stages, batches,
// roofline attribution), straggler flagging against the fleet median,
// fleet percentile aggregation through the log-bucketed histograms, and
// the typed JSON serialisation.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/report.hpp"

namespace xct::telemetry::report {
namespace {

CbctGeometry small_geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 32;
    g.nu = 64;
    g.nv = 64;
    g.du = g.dv = 0.4;
    g.vol = {32, 32, 32};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, 32) * 0.7;
    return g;
}

perfmodel::RunConfig small_cfg()
{
    perfmodel::RunConfig cfg;
    cfg.geometry = small_geo();
    cfg.layout = GroupLayout{1, 3};
    cfg.batches = 4;
    return cfg;
}

RankTimings plain_rank(index_t rank, double scale = 1.0)
{
    RankTimings t;
    t.rank = RankId{rank};
    t.load = 0.10 * scale;
    t.filter = 0.20 * scale;
    t.bp = 0.40 * scale;
    t.reduce = 0.05 * scale;
    t.store = 0.05 * scale;
    t.wall = 1.0 * scale;
    return t;
}

TEST(Report, BuildJoinsEveryStageAgainstTheModel)
{
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{},
                              {plain_rank(0), plain_rank(1), plain_rank(2)});
    ASSERT_EQ(r.stages.size(), 5u);
    const char* expected[] = {"load", "filter", "bp", "reduce", "store"};
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(r.stages[i].stage, expected[i]);
        EXPECT_GT(r.stages[i].measured_s, 0.0);
        EXPECT_GT(r.stages[i].predicted_s, 0.0);
        EXPECT_GT(r.stages[i].efficiency, 0.0);
    }
    EXPECT_GT(r.predicted_runtime_s, 0.0);
    EXPECT_GT(r.predicted_gups, 0.0);
    EXPECT_DOUBLE_EQ(r.measured_wall_s, 1.0);
    EXPECT_DOUBLE_EQ(r.efficiency, r.predicted_runtime_s / 1.0);
    // One of the four Eq. 17 aggregates binds the projection.
    EXPECT_TRUE(r.binding_stage == "cpu" || r.binding_stage == "gpu" ||
                r.binding_stage == "reduce" || r.binding_stage == "store");
    EXPECT_THROW(build(small_cfg(), perfmodel::MachineParams{}, {plain_rank(0)}, 1.0),
                 std::invalid_argument);
}

TEST(Report, StageMedianIsRobustToOneStraggler)
{
    // Median over {1x, 1x, 10x} is the healthy 1x — the straggler does
    // not drag the fleet baseline it is judged against.
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{},
                              {plain_rank(0), plain_rank(1), plain_rank(2, 10.0)});
    EXPECT_DOUBLE_EQ(r.stages[2].measured_s, 0.40);  // bp
}

TEST(Report, StragglerRanksAreFlaggedPerStage)
{
    std::vector<RankTimings> ranks = {plain_rank(0), plain_rank(1), plain_rank(2)};
    ranks[2].bp = 10.0 * ranks[0].bp;  // 10x the fleet median, > 1 ms
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{}, ranks, 1.5);
    ASSERT_EQ(r.ranks.size(), 3u);
    EXPECT_TRUE(r.ranks[0].flags.empty());
    EXPECT_TRUE(r.ranks[1].flags.empty());
    ASSERT_EQ(r.ranks[2].flags.size(), 1u);
    EXPECT_EQ(r.ranks[2].flags[0], "straggler:bp");
}

TEST(Report, TimerNoiseBelowTheFloorIsNotAStraggler)
{
    // All stages scaled to microseconds: 10x the median is still under
    // the 1 ms floor, so nothing is flagged.
    std::vector<RankTimings> ranks = {plain_rank(0, 1e-5), plain_rank(1, 1e-5),
                                      plain_rank(2, 1e-4)};
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{}, ranks, 1.5);
    for (const RankReport& k : r.ranks) EXPECT_TRUE(k.flags.empty());
}

TEST(Report, BatchRowsSumSpansAndAverageAcrossRanks)
{
    std::vector<RankTimings> ranks = {plain_rank(0), plain_rank(1)};
    // Two ranks, batch 0: bp spans of 0.4 and 0.2 -> mean 0.3; the
    // pipeline's "mpi" stage maps onto the model's reduce field.
    ranks[0].spans = {{"bp", 0, 0.4}, {"mpi", 0, 0.1}, {"restore", 0, 9.0}, {"load", -1, 9.0}};
    ranks[1].spans = {{"bp", 0, 0.2}, {"mpi", 0, 0.3}, {"bp", 1, 0.5}};
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{}, ranks);
    ASSERT_EQ(r.batches.size(), 2u);
    EXPECT_EQ(r.batches[0].batch, 0);
    EXPECT_DOUBLE_EQ(r.batches[0].measured.bp, 0.3);
    EXPECT_DOUBLE_EQ(r.batches[0].measured.reduce, 0.2);
    EXPECT_DOUBLE_EQ(r.batches[0].measured.load, 0.0);  // item -1 dropped
    EXPECT_EQ(r.batches[1].batch, 1);
    EXPECT_DOUBLE_EQ(r.batches[1].measured.bp, 0.25);  // 0.5 over 2 ranks
    // Predictions come from the matching Eq. 13-16 batch.
    EXPECT_GT(r.batches[0].predicted.bp, 0.0);
}

TEST(Report, FleetObserveFeedsPercentiles)
{
    // 20 healthy ranks and one straggler: the p99 must sit well above
    // the p50 for the stage the straggler is slow in.
    for (index_t i = 0; i < 20; ++i) observe_fleet(plain_rank(i));
    observe_fleet(plain_rank(20, 50.0));
    const auto fleet = fleet_percentiles(registry().snapshot());
    ASSERT_FALSE(fleet.empty());
    bool saw_bp = false;
    for (const FleetStage& f : fleet) {
        EXPECT_GE(f.ranks, 21u);
        EXPECT_LE(f.p50_s, f.p95_s);
        EXPECT_LE(f.p95_s, f.p99_s);
        if (f.stage == "bp") {
            saw_bp = true;
            EXPECT_GT(f.p99_s, 2.0 * f.p50_s);
        }
    }
    EXPECT_TRUE(saw_bp);
    EXPECT_GE(registry().counter("fleet.ranks").value(), 21u);
}

TEST(Report, WriteJsonEmitsTypedSchema)
{
    std::vector<RankTimings> ranks = {plain_rank(0), plain_rank(1), plain_rank(2, 10.0)};
    ranks[0].spans = {{"bp", 0, 0.4}};
    const RunReport r = build(small_cfg(), perfmodel::MachineParams{}, ranks);
    std::ostringstream os;
    write_json(os, r);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"schema\": \"xct.report.v1\""), std::string::npos);
    EXPECT_NE(j.find("\"binding_stage\""), std::string::npos);
    EXPECT_NE(j.find("\"stages\""), std::string::npos);
    EXPECT_NE(j.find("\"predicted_s\""), std::string::npos);
    EXPECT_NE(j.find("\"batches\""), std::string::npos);
    EXPECT_NE(j.find("\"ranks\""), std::string::npos);
    EXPECT_NE(j.find("\"fleet\""), std::string::npos);
    EXPECT_NE(j.find("straggler:"), std::string::npos);
    EXPECT_NE(j.find("\"ranks_per_group\": 3"), std::string::npos);
}

}  // namespace
}  // namespace xct::telemetry::report
