// Quality-metric tests: PSNR, region statistics, CNR, profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "recon/quality.hpp"

namespace xct::recon {
namespace {

TEST(Psnr, IdenticalVolumesAreInfinite)
{
    Volume a(Dim3{4, 4, 4});
    a.at(0, 0, 0) = 1.0f;  // non-constant reference
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownValue)
{
    // Reference in [0, 1]; uniform error 0.1 -> MSE 0.01 -> PSNR 20 dB.
    Volume ref(Dim3{2, 2, 2});
    ref.at(0, 0, 0) = 1.0f;  // range [0, 1]
    Volume noisy = ref;
    for (float& v : noisy.span()) v += 0.1f;
    EXPECT_NEAR(psnr(noisy, ref), 20.0, 1e-4);
}

TEST(Psnr, LowerErrorMeansHigherPsnr)
{
    Volume ref(Dim3{4, 4, 4});
    ref.at(1, 1, 1) = 2.0f;
    Volume small_err = ref, big_err = ref;
    for (float& v : small_err.span()) v += 0.01f;
    for (float& v : big_err.span()) v += 0.2f;
    EXPECT_GT(psnr(small_err, ref), psnr(big_err, ref));
}

TEST(Psnr, RejectsConstantReference)
{
    const Volume a(Dim3{2, 2, 2}, 1.0f);
    Volume b(Dim3{2, 2, 2}, 1.0f);
    b.at(0, 0, 0) = 2.0f;
    EXPECT_THROW(psnr(b, a), std::invalid_argument);
}

TEST(RegionStats, UniformSphere)
{
    Volume v(Dim3{9, 9, 9}, 3.0f);
    const RegionStats r = region_stats(v, 4, 4, 4, 2.5);
    EXPECT_DOUBLE_EQ(r.mean, 3.0);
    EXPECT_DOUBLE_EQ(r.stddev, 0.0);
    EXPECT_GT(r.count, 30);  // ~4/3 pi 2.5^3 ≈ 65 voxel centres
    EXPECT_LT(r.count, 100);
}

TEST(RegionStats, CountsOnlyInsideSphere)
{
    Volume v(Dim3{5, 5, 5});
    const RegionStats tiny = region_stats(v, 2, 2, 2, 0.5);
    EXPECT_EQ(tiny.count, 1);  // only the centre voxel
}

TEST(RegionStats, MixedValues)
{
    Volume v(Dim3{3, 1, 1});
    v.at(0, 0, 0) = 1.0f;
    v.at(1, 0, 0) = 3.0f;
    v.at(2, 0, 0) = 5.0f;
    const RegionStats r = region_stats(v, 1, 0, 0, 1.1);
    EXPECT_EQ(r.count, 3);
    EXPECT_DOUBLE_EQ(r.mean, 3.0);
    EXPECT_NEAR(r.stddev, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(RegionStats, ThrowsOnEmptyRegion)
{
    Volume v(Dim3{4, 4, 4});
    EXPECT_THROW(region_stats(v, 100, 100, 100, 1.0), std::invalid_argument);
}

TEST(Cnr, HigherContrastOrLowerNoiseRaisesCnr)
{
    const RegionStats f1{1.0, 0.1, 10};
    const RegionStats f2{2.0, 0.1, 10};
    const RegionStats bg{0.0, 0.1, 10};
    EXPECT_GT(cnr(f2, bg), cnr(f1, bg));
    const RegionStats noisy_bg{0.0, 0.5, 10};
    EXPECT_GT(cnr(f1, bg), cnr(f1, noisy_bg));
    EXPECT_NEAR(cnr(f1, bg), 10.0, 1e-12);  // 1.0 / 0.1
}

TEST(Cnr, RejectsZeroNoise)
{
    const RegionStats a{1.0, 0.0, 5};
    const RegionStats b{0.0, 0.0, 5};
    EXPECT_THROW(cnr(a, b), std::invalid_argument);
}

TEST(ProfileX, ExtractsLine)
{
    Volume v(Dim3{4, 3, 2});
    for (index_t i = 0; i < 4; ++i) v.at(i, 1, 1) = static_cast<float>(i * i);
    const auto p = profile_x(v, 1, 1);
    ASSERT_EQ(p.size(), 4u);
    EXPECT_FLOAT_EQ(p[3], 9.0f);
    EXPECT_THROW(profile_x(v, 3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace xct::recon
