// Extension-feature tests: ROI reconstruction, Poisson noise, slab
// stitching and the shared-Pfs source factory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "io/stitch.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

namespace xct::recon {
namespace {

CbctGeometry geo(index_t n = 32, index_t np = 48)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.4;
    g.dv = 0.4;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

TEST(Roi, SliceRangeMatchesFullReconstruction)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);

    PhantomSource full_src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult full = reconstruct_fdk(cfg, full_src);

    PhantomSource roi_src(ph, g);
    RankConfig cfg2;
    cfg2.geometry = g;
    cfg2.batches = 3;
    const Range roi{10, 22};
    const FdkResult part = reconstruct_fdk_slices(cfg2, roi_src, roi);
    ASSERT_EQ(part.volume.size().z, roi.length());
    for (index_t k = 0; k < roi.length(); ++k)
        for (index_t j = 0; j < g.vol.y; ++j)
            for (index_t i = 0; i < g.vol.x; ++i)
                ASSERT_NEAR(part.volume.at(i, j, k), full.volume.at(i, j, roi.lo + k), 1e-5f);
}

TEST(Roi, LoadsOnlyTheRoiBands)
{
    // The decomposition makes ROI cost proportional to the ROI: the H2D
    // traffic of a 4-slice ROI is far below the full reconstruction's.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);

    PhantomSource s1(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult full = reconstruct_fdk(cfg, s1);

    PhantomSource s2(ph, g);
    RankConfig cfg2;
    cfg2.geometry = g;
    cfg2.batches = 2;
    const FdkResult part = reconstruct_fdk_slices(cfg2, s2, Range{14, 18});
    EXPECT_LT(part.stats.h2d.bytes, full.stats.h2d.bytes / 2);
}

TEST(Roi, RejectsBadRanges)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    EXPECT_THROW(reconstruct_fdk_slices(cfg, src, Range{5, 5}), std::invalid_argument);
    EXPECT_THROW(reconstruct_fdk_slices(cfg, src, Range{0, g.vol.z + 1}), std::invalid_argument);
}

TEST(PoissonNoise, RequiresCountEmission)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    EXPECT_THROW(PhantomSource(ph, g, std::nullopt, PoissonNoise{1e4, 7}), std::invalid_argument);
}

TEST(PoissonNoise, RealisationIsBandSplitInvariant)
{
    // The same pixel must get the same noise no matter how the load is
    // split — otherwise distributed reconstructions would differ.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 13.0);
    const BeerLawScalar cal{0.0f, 65536.0f};
    PhantomSource a(ph, g, cal, PoissonNoise{1e4, 99});
    PhantomSource b(ph, g, cal, PoissonNoise{1e4, 99});

    const ProjectionStack whole = a.load(Range{0, 8}, Range{0, g.nv});
    const ProjectionStack upper = b.load(Range{0, 8}, Range{0, g.nv / 2});
    const ProjectionStack lower = b.load(Range{0, 8}, Range{g.nv / 2, g.nv});
    for (index_t s = 0; s < 8; ++s)
        for (index_t v = 0; v < g.nv; ++v)
            for (index_t u = 0; u < g.nu; ++u) {
                const float want = v < g.nv / 2 ? upper.at(s, v, u) : lower.at(s, v, u);
                ASSERT_FLOAT_EQ(whole.at(s, v, u), want);
            }
}

TEST(PoissonNoise, MorePhotonsMeansLessNoise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 13.0);
    const BeerLawScalar cal{0.0f, 65536.0f};
    PhantomSource clean(ph, g, cal);
    PhantomSource noisy_lo(ph, g, cal, PoissonNoise{1e3, 5});
    PhantomSource noisy_hi(ph, g, cal, PoissonNoise{1e6, 5});

    const ProjectionStack ref = clean.load(Range{0, 4}, Range{0, g.nv});
    const ProjectionStack lo = noisy_lo.load(Range{0, 4}, Range{0, g.nv});
    const ProjectionStack hi = noisy_hi.load(Range{0, 4}, Range{0, g.nv});
    auto dev = [&](const ProjectionStack& p) {
        double acc = 0.0;
        for (index_t i = 0; i < p.count(); ++i) {
            const double d = static_cast<double>(p.span()[static_cast<std::size_t>(i)]) -
                             static_cast<double>(ref.span()[static_cast<std::size_t>(i)]);
            acc += d * d;
        }
        return acc;
    };
    EXPECT_GT(dev(lo), 10.0 * dev(hi));
    EXPECT_GT(dev(hi), 0.0);
}

TEST(PoissonNoise, NoisyReconstructionStillRecovers)
{
    const CbctGeometry g = geo(32, 64);
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
    const BeerLawScalar cal{0.0f, 65536.0f};
    PhantomSource src(ph, g, cal, PoissonNoise{1e5, 3});
    RankConfig cfg;
    cfg.geometry = g;
    cfg.beer = cal;
    const FdkResult r = reconstruct_fdk(cfg, src);
    const Volume truth = phantom::voxelize(ph, g);
    EXPECT_LT(rmse_flat(r.volume, truth, 4), 0.08);  // noisy but recognisable
}

TEST(Stitch, RoundTripsDistributedSlabs)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
    const auto dir = std::filesystem::temp_directory_path() / "xct_stitch_test";
    std::filesystem::remove_all(dir);
    io::Pfs pfs(dir, 10.0, 10.0);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{3, 1};
    cfg.batches = 2;
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult r = reconstruct_distributed(cfg, factory, &pfs);

    const Volume stitched = io::stitch_slabs(dir);
    ASSERT_EQ(stitched.size(), r.volume.size());
    for (index_t i = 0; i < stitched.count(); ++i)
        ASSERT_FLOAT_EQ(stitched.span()[static_cast<std::size_t>(i)],
                        r.volume.span()[static_cast<std::size_t>(i)]);
    std::filesystem::remove_all(dir);
}

TEST(Stitch, DetectsGapsAndOverlaps)
{
    const auto dir = std::filesystem::temp_directory_path() / "xct_stitch_bad";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    Volume slab(Dim3{4, 4, 4});
    io::write_volume(dir / "slab_0_4.xvol", slab);
    io::write_volume(dir / "slab_8_12.xvol", slab);  // gap at [4, 8)
    EXPECT_THROW(io::stitch_slabs(dir), std::invalid_argument);
    io::write_volume(dir / "slab_2_6.xvol", slab);  // overlap with [0, 4)
    EXPECT_THROW(io::discover_slabs(dir), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(Stitch, IgnoresForeignFiles)
{
    const auto dir = std::filesystem::temp_directory_path() / "xct_stitch_mixed";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    Volume slab(Dim3{4, 4, 3}, 2.0f);
    io::write_volume(dir / "slab_0_3.xvol", slab);
    io::write_volume(dir / "other.xvol", slab);
    {
        std::ofstream junk(dir / "notes.txt");
        junk << "hi";
    }
    const auto slabs = io::discover_slabs(dir);
    ASSERT_EQ(slabs.size(), 1u);
    const Volume v = io::stitch_slabs(dir);
    EXPECT_EQ(v.size().z, 3);
    std::filesystem::remove_all(dir);
}

TEST(SharedPfsFactory, DistributedMatchesReference)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
    PhantomSource ref_src(ph, g);
    RankConfig one;
    one.geometry = g;
    const FdkResult ref = reconstruct_fdk(one, ref_src);

    const auto dir = std::filesystem::temp_directory_path() / "xct_shared_pfs";
    std::filesystem::remove_all(dir);
    io::Pfs pfs(dir, 2.0, 2.0);
    {
        PhantomSource gen(ph, g);
        pfs.store_stack("p.xstk", gen.load(Range{0, g.num_proj}, Range{0, g.nv}));
    }
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const DistributedResult r =
        reconstruct_distributed(cfg, make_shared_pfs_factory(pfs, "p.xstk"));
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 2e-5f);
    std::filesystem::remove_all(dir);
}

TEST(ViewDirSource, RoundTripsAndReconstructs)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
    const auto dir = std::filesystem::temp_directory_path() / "xct_viewdir_test";
    std::filesystem::remove_all(dir);
    {
        PhantomSource gen(ph, g);
        io::export_views(dir, gen.load(Range{0, g.num_proj}, Range{0, g.nv}));
    }
    EXPECT_EQ(io::count_views(dir), g.num_proj);

    // Partial loads agree with regeneration.
    PhantomSource gen2(ph, g);
    const ProjectionStack want = gen2.load(Range{3, 7}, Range{5, 20});
    ViewDirSource src(dir);
    const ProjectionStack got = src.load(Range{3, 7}, Range{5, 20});
    for (index_t s = 0; s < 4; ++s)
        for (index_t v = 5; v < 20; ++v)
            for (index_t u = 0; u < g.nu; ++u) ASSERT_FLOAT_EQ(got.at(s, v, u), want.at(s, v, u));

    // End-to-end reconstruction from the view directory.
    PhantomSource ref_src(ph, g);
    RankConfig one;
    one.geometry = g;
    const FdkResult ref = reconstruct_fdk(one, ref_src);
    ViewDirSource file_src(dir);
    RankConfig two;
    two.geometry = g;
    const FdkResult r = reconstruct_fdk(two, file_src);
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 1e-5f);
    std::filesystem::remove_all(dir);
}

TEST(ViewDirSource, RejectsEmptyDirectory)
{
    const auto dir = std::filesystem::temp_directory_path() / "xct_viewdir_empty";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    EXPECT_THROW(ViewDirSource{dir}, std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(SharedPfsFactory, RejectsMissingStack)
{
    const auto dir = std::filesystem::temp_directory_path() / "xct_shared_pfs_missing";
    std::filesystem::remove_all(dir);
    io::Pfs pfs(dir, 1.0, 1.0);
    EXPECT_THROW(make_shared_pfs_factory(pfs, "nope.xstk"), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xct::recon
