// Short-scan (Parker weighting) tests: the weight function's analytic
// identities, the weight table, and end-to-end short-scan FDK quality
// against the full-scan reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "backproj/reference.hpp"
#include "filter/parker.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

namespace xct::filter {
namespace {

constexpr double kPi = std::numbers::pi;

CbctGeometry geo(double over_scan_slack = 1.15)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 180;
    g.nu = 96;
    g.nv = 96;
    g.du = g.dv = 0.4;
    g.vol = {48, 48, 48};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    g.scan_range = (kPi + 2.0 * fan_half_angle(g)) * over_scan_slack;
    return g;
}

TEST(FanHalfAngle, CentredDetector)
{
    CbctGeometry g = geo();
    g.sigma_u = 0.0;
    const double expect = std::atan(((96.0 - 1.0) / 2.0) * 0.4 / 250.0);
    EXPECT_NEAR(fan_half_angle(g), expect, 1e-12);
}

TEST(FanHalfAngle, OffsetDetectorWidensTheFan)
{
    CbctGeometry g = geo();
    const double centred = fan_half_angle(g);
    g.sigma_u = 10.0;
    EXPECT_GT(fan_half_angle(g), centred);
}

TEST(ParkerWeight, BoundsAndPlateau)
{
    const double d = 0.2;
    for (double beta = 0.0; beta <= kPi + 2 * d; beta += 0.01)
        for (double gamma = -d; gamma <= d; gamma += 0.05) {
            const double w = parker_weight(beta, gamma, d);
            ASSERT_GE(w, 0.0);
            ASSERT_LE(w, 1.0);
        }
    // Middle of the scan, central ray: fully weighted.
    EXPECT_DOUBLE_EQ(parker_weight(kPi / 2, 0.0, d), 1.0);
}

TEST(ParkerWeight, ZeroOutsideScan)
{
    EXPECT_DOUBLE_EQ(parker_weight(-0.1, 0.0, 0.2), 0.0);
    EXPECT_DOUBLE_EQ(parker_weight(kPi + 0.5, 0.0, 0.2), 0.0);
}

TEST(ParkerWeight, ConjugatePairsSumToOne)
{
    // The defining identity: (beta, gamma) and (beta + pi + 2 gamma,
    // -gamma) are the same physical ray; their weights sum to 1.
    const double d = 0.25;
    for (double gamma = -0.2; gamma <= 0.2; gamma += 0.04)
        for (double beta = 0.0; beta < 2.0 * (d - gamma); beta += 0.01) {
            const double w1 = parker_weight(beta, gamma, d);
            const double w2 = parker_weight(beta + kPi + 2.0 * gamma, -gamma, d);
            ASSERT_NEAR(w1 + w2, 1.0, 1e-12) << "beta=" << beta << " gamma=" << gamma;
        }
}

TEST(ParkerWeight, RampUpIsSmoothFromZero)
{
    const double d = 0.3, gamma = 0.1;
    EXPECT_NEAR(parker_weight(0.0, gamma, d), 0.0, 1e-12);
    // Monotone increase through the ramp.
    double prev = -1.0;
    for (double beta = 0.0; beta <= 2.0 * (d - gamma); beta += 0.01) {
        const double w = parker_weight(beta, gamma, d);
        ASSERT_GE(w, prev);
        prev = w;
    }
    // Exactly at the plateau boundary the weight reaches 1.
    EXPECT_NEAR(parker_weight(2.0 * (d - gamma), gamma, d), 1.0, 1e-12);
}

TEST(ParkerWeights, TableMatchesPureFunction)
{
    const CbctGeometry g = geo();
    const ParkerWeights pw(g, Range{0, g.num_proj});
    const double delta_cap = (g.scan_range - kPi) / 2.0;
    const double cu = (static_cast<double>(g.nu) - 1.0) / 2.0;
    for (index_t s = 0; s < g.num_proj; s += 17)
        for (index_t u = 0; u < g.nu; u += 11) {
            const double gamma = std::atan((static_cast<double>(u) - cu) * g.du / g.dsd);
            ASSERT_NEAR(pw.at(s, u),
                        static_cast<float>(parker_weight(g.angle_of(s), gamma, delta_cap)), 1e-6f);
        }
}

TEST(ParkerWeights, RejectsFullScan)
{
    CbctGeometry g = geo();
    g.scan_range = 2.0 * kPi;
    EXPECT_THROW(ParkerWeights(g, Range{0, g.num_proj}), std::invalid_argument);
}

TEST(ParkerWeights, RejectsInsufficientArc)
{
    CbctGeometry g = geo();
    g.scan_range = kPi;  // less than pi + fan
    EXPECT_THROW(ParkerWeights(g, Range{0, g.num_proj}), std::invalid_argument);
}

TEST(ParkerWeights, ApplyIsRowIndependent)
{
    const CbctGeometry g = geo();
    const ParkerWeights pw(g, Range{3, 7});
    ProjectionStack stack(4, Range{10, 20}, g.nu, 1.0f);
    pw.apply(stack);
    for (index_t s = 0; s < 4; ++s)
        for (index_t u = 0; u < g.nu; ++u)
            for (index_t v = 10; v < 20; ++v)
                ASSERT_FLOAT_EQ(stack.at(s, v, u), stack.at(s, 10, u));
    // And equals the table value.
    ASSERT_FLOAT_EQ(stack.at(2, 10, 5), pw.at(5, 5));
}

TEST(ShortScanFdk, MatchesFullScanQuality)
{
    // End-to-end: a short-scan reconstruction must recover the phantom
    // about as well as the full scan (the redundancy weights are correct
    // if and only if this holds — wrong conjugacy produces gross shading).
    CbctGeometry full = geo();
    full.scan_range = 2.0 * kPi;
    CbctGeometry part = geo();  // pi + 2*fan, with 15% over-scan

    const auto head = phantom::shepp_logan_3d(full.dx * static_cast<double>(full.vol.x) / 2.4);
    const Volume truth = phantom::voxelize(head, full);

    const recon::FdkResult f = recon::reconstruct_fdk(full, head);
    const recon::FdkResult p = recon::reconstruct_fdk(part, head);

    const double full_err = recon::rmse_flat(f.volume, truth, 4);
    const double part_err = recon::rmse_flat(p.volume, truth, 4);
    EXPECT_LT(full_err, 0.05);
    EXPECT_LT(part_err, 0.07);  // short scan is slightly noisier, not broken
    // Absolute level preserved (no global shading from bad weights).
    EXPECT_NEAR(p.volume.at(24, 24, 24), 0.2f, 0.05f);
}

TEST(ShortScanFdk, DistributedMatchesSingleRank)
{
    const CbctGeometry g = geo();
    const auto head = phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);

    recon::PhantomSource src(head, g);
    recon::RankConfig one;
    one.geometry = g;
    const recon::FdkResult ref = recon::reconstruct_fdk(one, src);

    recon::DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<recon::PhantomSource>(head, g); };
    const recon::DistributedResult r = recon::reconstruct_distributed(cfg, factory);
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(ShortScanFdk, SkippingParkerOverweightsDoublyMeasuredRays)
{
    // Ablation: run the same short-scan filtering and back-projection but
    // skip the redundancy weighting.  Rays measured twice are then counted
    // twice, inflating the reconstruction — confirming the weights do real
    // work (and that the pipeline genuinely applies them).

    const CbctGeometry part = geo();
    const auto head = phantom::shepp_logan_3d(part.dx * static_cast<double>(part.vol.x) / 2.4);

    ProjectionStack with = phantom::forward_project(head, part);
    ProjectionStack without = with;
    const FilterEngine engine(part);
    const ParkerWeights pw(part, Range{0, part.num_proj});
    pw.apply(with);
    engine.apply(with);
    engine.apply(without);

    const auto mats = projection_matrices(part);
    Volume v_with(part.vol), v_without(part.vol);
    backproj::backproject_reference(with, mats, part, v_with);
    backproj::backproject_reference(without, mats, part, v_without);

    const float centre_with = v_with.at(24, 24, 24);
    const float centre_without = v_without.at(24, 24, 24);
    EXPECT_NEAR(centre_with, 0.2f, 0.05f);
    EXPECT_GT(centre_without, centre_with * 1.2f);  // overshoot without weights
}

}  // namespace
}  // namespace xct::filter
