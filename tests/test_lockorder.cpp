// Runtime lock-order witness (core/lockorder.hpp).  The graph logic is
// driven through the public on_acquire/on_release API so these tests run
// in every configuration — the witness TU always compiles; only the
// Mutex/UniqueLock hooks are gated on XCT_LOCK_ORDER.  The final test
// checks whichever side of that gate this binary was built on.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/lockorder.hpp"
#include "core/mutex.hpp"

namespace {

using xct::lockorder::cycles;
using xct::lockorder::edge_count;
using xct::lockorder::on_acquire;
using xct::lockorder::on_release;

/// Every test starts and ends with an empty edge set, so a deliberately
/// witnessed cycle can never leak into the process-exit report (which is
/// fatal under XCT_LOCK_ORDER_FATAL, i.e. in the lock-order CI leg).
struct WitnessReset {
    WitnessReset() { xct::lockorder::reset(); }
    ~WitnessReset() { xct::lockorder::reset(); }
};

TEST(LockOrderWitness, ConsistentOrderStaysAcyclic)
{
    WitnessReset guard;
    int a = 0, b = 0, c = 0;
    on_acquire(&a, "w.a");
    on_acquire(&b, "w.b");
    on_acquire(&c, "w.c");
    on_release(&c);
    on_release(&b);
    on_release(&a);
    // A second pass in a compatible order adds nothing new: edges are
    // deduplicated by (from, to) name pair.
    on_acquire(&a, "w.a");
    on_acquire(&c, "w.c");
    on_release(&c);
    on_release(&a);
    EXPECT_EQ(edge_count(), 3u);  // a->b, a->c, b->c
    EXPECT_TRUE(cycles().empty());
}

TEST(LockOrderWitness, InvertedOrderWitnessesCycle)
{
    WitnessReset guard;
    int a = 0, b = 0;
    on_acquire(&a, "inv.a");
    on_acquire(&b, "inv.b");
    on_release(&b);
    on_release(&a);
    EXPECT_TRUE(cycles().empty());
    on_acquire(&b, "inv.b");
    on_acquire(&a, "inv.a");
    on_release(&a);
    on_release(&b);
    const auto cyc = cycles();
    ASSERT_EQ(cyc.size(), 1u);
    EXPECT_NE(cyc[0].find("inv.a"), std::string::npos) << cyc[0];
    EXPECT_NE(cyc[0].find("inv.b"), std::string::npos) << cyc[0];
}

TEST(LockOrderWitness, OutOfOrderReleaseTracksWhatIsActuallyHeld)
{
    WitnessReset guard;
    int a = 0, b = 0, c = 0;
    on_acquire(&a, "o.a");
    on_acquire(&b, "o.b");
    on_release(&a);  // unlock order is not acquisition order
    on_acquire(&c, "o.c");
    on_release(&c);
    on_release(&b);
    // a was no longer held when c was acquired: b->c yes, a->c no.
    EXPECT_EQ(edge_count(), 2u);  // a->b, b->c
    EXPECT_TRUE(cycles().empty());
}

TEST(LockOrderWitness, SameNameNestingIsNotASelfCycle)
{
    WitnessReset guard;
    // Two instances from the same construction site (e.g. two pipeline
    // queues) nested in one thread: a name-level self edge would be pure
    // noise, so none is recorded.
    int first = 0, second = 0;
    on_acquire(&first, "pool.q");
    on_acquire(&second, "pool.q");
    on_release(&second);
    on_release(&first);
    EXPECT_EQ(edge_count(), 0u);
    EXPECT_TRUE(cycles().empty());
}

TEST(LockOrderWitness, ReportFiresOnlyWhenCyclesExist)
{
    WitnessReset guard;
    // Neutralise the CI kill switch for the duration of this test: it
    // deliberately produces a cycle and calls the reporter directly.
    const char* fatal = std::getenv("XCT_LOCK_ORDER_FATAL");
    const std::string saved = fatal != nullptr ? fatal : "";
    unsetenv("XCT_LOCK_ORDER_FATAL");

    EXPECT_FALSE(xct::lockorder::report_at_exit());
    int a = 0, b = 0;
    on_acquire(&a, "rep.a");
    on_acquire(&b, "rep.b");
    on_release(&b);
    on_release(&a);
    on_acquire(&b, "rep.b");
    on_acquire(&a, "rep.a");
    on_release(&a);
    on_release(&b);
    EXPECT_TRUE(xct::lockorder::report_at_exit());

    if (fatal != nullptr) setenv("XCT_LOCK_ORDER_FATAL", saved.c_str(), 1);
}

#if defined(XCT_LOCK_ORDER) && XCT_LOCK_ORDER

TEST(LockOrderWitness, MutexWrappersFeedTheGraph)
{
    WitnessReset guard;
    xct::Mutex ma{"e2e.a"};
    xct::Mutex mb{"e2e.b"};
    {
        xct::MutexLock la(ma);
        xct::UniqueLock lb(mb);  // UniqueLock bypasses Mutex::lock — hooks live in both
    }
    EXPECT_EQ(edge_count(), 1u);
    EXPECT_TRUE(cycles().empty());
    {
        xct::MutexLock lb(mb);
        xct::MutexLock la(ma);
    }
    EXPECT_EQ(edge_count(), 2u);
    EXPECT_FALSE(cycles().empty());
}

#else

TEST(LockOrderWitness, HooksCompileOutByDefault)
{
    WitnessReset guard;
    xct::Mutex ma{"off.a"};
    xct::Mutex mb{"off.b"};
    {
        xct::MutexLock la(ma);
        xct::UniqueLock lb(mb);
    }
    EXPECT_EQ(edge_count(), 0u);
    // Without the witness the name is not even stored.
    EXPECT_EQ(std::string(ma.order_name()), "mutex");
}

#endif

}  // namespace
