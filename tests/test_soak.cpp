// Soak-harness tests (src/soak, DESIGN.md §3h): schedule determinism,
// the faulted event simulation and its tail bound, fault-engine job
// scoping, the end-to-end event tier with its four invariants, and the
// BENCH_soak.json serialisation contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/names.hpp"
#include "faults/fault.hpp"
#include "io/datasets.hpp"
#include "soak/soak.hpp"
#include "telemetry/trace.hpp"

namespace xct::soak {
namespace {

ScheduleConfig small_schedule(std::uint64_t seed = 7)
{
    ScheduleConfig cfg;
    cfg.fleet_ranks = 64;
    cfg.epochs = 2;
    cfg.seed = seed;
    return cfg;
}

bool same_schedule(const std::vector<JobSpec>& a, const std::vector<JobSpec>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const JobSpec &x = a[i], &y = b[i];
        if (x.id != y.id || x.epoch != y.epoch || x.dataset != y.dataset ||
            x.scale != y.scale || x.layout.num_groups != y.layout.num_groups ||
            x.layout.ranks_per_group != y.layout.ranks_per_group || x.batches != y.batches ||
            x.seed != y.seed || x.dropout != y.dropout || x.dropout_rank != y.dropout_rank ||
            x.faults.size() != y.faults.size())
            return false;
        for (std::size_t f = 0; f < x.faults.size(); ++f) {
            if (x.faults[f].site != y.faults[f].site || x.faults[f].kind != y.faults[f].kind ||
                x.faults[f].rank != y.faults[f].rank || x.faults[f].batch != y.faults[f].batch ||
                x.faults[f].delay_s != y.faults[f].delay_s)
                return false;
        }
    }
    return true;
}

// ---- schedule generation ------------------------------------------------

TEST(SoakSchedule, IsDeterministicInTheSeedAndSensitiveToIt)
{
    const auto a = make_schedule(small_schedule(7));
    const auto b = make_schedule(small_schedule(7));
    EXPECT_TRUE(same_schedule(a, b));
    const auto c = make_schedule(small_schedule(8));
    EXPECT_FALSE(same_schedule(a, c));
}

TEST(SoakSchedule, JobsAreWellFormed)
{
    ScheduleConfig cfg = small_schedule();
    cfg.fleet_ranks = 256;
    cfg.epochs = 3;
    const auto jobs = make_schedule(cfg);
    ASSERT_EQ(jobs.size(), static_cast<std::size_t>(3 * (256 / 8)));
    bool any_faulted = false, any_dropout = false;
    for (const JobSpec& job : jobs) {
        // Shapes come from the evaluation-dataset pool and fit the fleet.
        EXPECT_NO_THROW(io::dataset_by_name(job.dataset));
        EXPECT_LE(job.nranks(), cfg.fleet_ranks / 2);
        EXPECT_GE(job.nranks(), 2);
        EXPECT_GT(job.batches, 0);
        // Fault sites are distinct within a job (a FaultPlan keys by
        // site), ranks/batches land inside the job.
        for (std::size_t i = 0; i < job.faults.size(); ++i) {
            const PlannedFault& f = job.faults[i];
            EXPECT_LT(f.rank.value(), job.nranks());
            EXPECT_LT(f.batch, job.batches);
            for (std::size_t j = i + 1; j < job.faults.size(); ++j)
                EXPECT_NE(f.site, job.faults[j].site);
            any_faulted = true;
        }
        if (job.dropout) {
            any_dropout = true;
            EXPECT_GE(job.dropout_rank.value(), 1);  // never the group-0 root
            EXPECT_GT(job.nranks(), 2);
            EXPECT_LT(job.dropout_rank.value(), job.nranks());
        }
    }
    EXPECT_TRUE(any_faulted);
    EXPECT_TRUE(any_dropout);
}

TEST(SoakSchedule, PlanMirrorsThePlannedFaults)
{
    const auto jobs = make_schedule(small_schedule());
    for (const JobSpec& job : jobs) {
        const faults::FaultPlan plan = job.plan();
        std::size_t expected = job.faults.size() + (job.dropout ? 1u : 0u);
        EXPECT_EQ(plan.specs().size(), expected);
        for (const PlannedFault& f : job.faults) {
            const auto it = plan.specs().find(f.site);
            ASSERT_NE(it, plan.specs().end());
            EXPECT_EQ(it->second.rank, f.rank);
            EXPECT_EQ(it->second.kind, f.kind);
            EXPECT_EQ(it->second.after, 0);
        }
    }
}

TEST(SoakSchedule, CorruptSitePoolCoversTheBandDecodeGate)
{
    // The q8 codec added a digested movement; the soak must be able to
    // attack it like every other gated site.
    const auto& sites = corrupt_sites();
    EXPECT_EQ(sites.size(), 7u);
    bool has_band = false;
    for (const char* s : sites) has_band |= std::string(s) == names::kSiteBandDecode;
    EXPECT_TRUE(has_band);
    // And the generator actually draws it.
    ScheduleConfig cfg = small_schedule();
    cfg.fleet_ranks = 256;
    cfg.epochs = 4;
    bool drawn = false;
    for (const JobSpec& job : make_schedule(cfg))
        for (const PlannedFault& f : job.faults) drawn |= f.site == names::kSiteBandDecode;
    EXPECT_TRUE(drawn);
}

TEST(SoakSchedule, RejectsInvalidConfigs)
{
    ScheduleConfig cfg = small_schedule();
    cfg.fleet_ranks = 2;
    EXPECT_THROW(make_schedule(cfg), std::invalid_argument);
    cfg = small_schedule();
    cfg.epochs = 0;
    EXPECT_THROW(make_schedule(cfg), std::invalid_argument);
    cfg = small_schedule();
    cfg.fault_rate = 1.5;
    EXPECT_THROW(make_schedule(cfg), std::invalid_argument);
}

// ---- faulted event simulation + tail bound ------------------------------

perfmodel::RunConfig run_config()
{
    perfmodel::RunConfig rc;
    rc.geometry = io::dataset_by_name("tomo_00027").scaled(64.0).geometry;
    rc.layout = GroupLayout{2, 4};
    rc.batches = 8;
    return rc;
}

TEST(SoakPerfmodel, NoFaultsMatchesTheCleanSimulation)
{
    const auto m = perfmodel::MachineParams::abci_v100();
    const auto rc = run_config();
    EXPECT_DOUBLE_EQ(perfmodel::simulate_faulted(rc, m, {}).runtime,
                     perfmodel::simulate(rc, m).runtime);
}

TEST(SoakPerfmodel, InjectedDelaysExtendTheRuntimeBoundedly)
{
    const auto m = perfmodel::MachineParams::abci_v100();
    const auto rc = run_config();
    const double clean = perfmodel::simulate(rc, m).runtime;
    const double delay = 0.25;
    // One stalled load batch: the pipeline absorbs some of it, but the
    // runtime can neither shrink nor grow by more than the delay.
    const double faulted =
        perfmodel::simulate_faulted(rc, m, {perfmodel::SimFault{0, 2, delay}}).runtime;
    EXPECT_GE(faulted, clean);
    EXPECT_LE(faulted, clean + delay + 1e-12);
    // Out-of-range batches clamp instead of throwing (schedules mix
    // batch counts; the last batch absorbs the tail).
    EXPECT_GE(perfmodel::simulate_faulted(rc, m, {perfmodel::SimFault{4, 999, delay}}).runtime,
              clean);
    EXPECT_THROW(perfmodel::simulate_faulted(rc, m, {perfmodel::SimFault{5, 0, delay}}),
                 std::invalid_argument);
    EXPECT_THROW(perfmodel::simulate_faulted(rc, m, {perfmodel::SimFault{0, 0, -1.0}}),
                 std::invalid_argument);
}

TEST(SoakPerfmodel, TailBoundDominatesTheFaultedSimulation)
{
    const auto m = perfmodel::MachineParams::abci_v100();
    const auto rc = run_config();
    const double delay = 0.1;
    const double faulted =
        perfmodel::simulate_faulted(rc, m, {perfmodel::SimFault{2, 1, delay}}).runtime;
    EXPECT_LE(faulted, perfmodel::tail_latency_bound(rc, m, delay, 1.25));
    EXPECT_GT(perfmodel::tail_latency_bound(rc, m, 1.0), perfmodel::tail_latency_bound(rc, m));
    EXPECT_THROW(perfmodel::tail_latency_bound(rc, m, 0.0, 0.5), std::invalid_argument);
}

// ---- fault-engine job scoping -------------------------------------------

TEST(SoakFaults, JobScopeResetsCallCountersBetweenJobs)
{
    faults::FaultPlan plan(3);
    faults::FaultSpec spec;
    spec.after = 0;
    spec.count = 1;
    spec.kind = faults::FaultKind::Corrupt;
    plan.add(names::kSiteSourceLoad, spec);
    faults::ScopedPlan install(std::move(plan));

    std::vector<float> buf(64, 1.0f);
    const auto bytes = std::as_writable_bytes(std::span<float>(buf));
    {
        faults::ScopedJob job1(101);
        EXPECT_GT(faults::corrupt(names::kSiteSourceLoad, bytes), 0);  // call 0 fires
        EXPECT_EQ(faults::corrupt(names::kSiteSourceLoad, bytes), 0);  // consumed
    }
    {
        // A fresh scope restarts the per-(site, rank) counters, so the
        // same plan fires again for the next job of the schedule.
        faults::ScopedJob job2(202);
        EXPECT_EQ(faults::job_scope(), 202u);
        EXPECT_GT(faults::corrupt(names::kSiteSourceLoad, bytes), 0);
    }
    EXPECT_EQ(faults::job_scope(), 0u);  // restored
}

// ---- the event tier end-to-end ------------------------------------------

SoakConfig event_config(std::uint64_t seed = 5)
{
    SoakConfig cfg;
    cfg.schedule = small_schedule(seed);
    cfg.live = false;  // the live tier is exercised by tools_soak_replay
    return cfg;
}

TEST(SoakRun, InvariantsHoldAndSummaryAddsUp)
{
    const SoakSummary s = run(event_config());
    EXPECT_TRUE(check_invariants(s).empty())
        << deterministic_json(s);
    EXPECT_EQ(s.jobs, static_cast<index_t>(s.job_results.size()));
    EXPECT_EQ(s.wedged, 0);
    EXPECT_GT(s.injected, 0u);
    EXPECT_EQ(s.injected, s.detected);
    EXPECT_TRUE(s.sites_match);
    EXPECT_LE(s.p99_vs_predicted, 1.0);
    EXPECT_GT(s.makespan_s, 0.0);
    for (const JobResult& jr : s.job_results) {
        EXPECT_NE(jr.state, JobState::Wedged);
        EXPECT_LE(jr.latency_s, jr.bound_s);
        EXPECT_EQ(jr.injected, jr.detected);
        EXPECT_GE(jr.finish_s, jr.start_s);
    }
}

TEST(SoakRun, ReplayIsBitIdentical)
{
    const std::string a = deterministic_json(run(event_config(11)));
    const std::string b = deterministic_json(run(event_config(11)));
    EXPECT_EQ(a, b);
    const std::string c = deterministic_json(run(event_config(12)));
    EXPECT_NE(a, c);
}

TEST(SoakRun, InvariantCheckerFlagsEachBreach)
{
    SoakSummary s = run(event_config());
    ASSERT_TRUE(check_invariants(s).empty());
    SoakSummary bad = s;
    bad.sites_match = false;
    bad.sites[0].injected += 1;
    EXPECT_FALSE(check_invariants(bad).empty());
    bad = s;
    bad.wedged = 2;
    EXPECT_FALSE(check_invariants(bad).empty());
    bad = s;
    bad.live_jobs = 1;
    bad.live_bitwise_identical = false;
    EXPECT_FALSE(check_invariants(bad).empty());
    bad = s;
    bad.p99_vs_predicted = 1.2;
    EXPECT_FALSE(check_invariants(bad).empty());
    bad = s;
    bad.injected = bad.detected = 0;  // a soak that injected nothing proves nothing
    EXPECT_FALSE(check_invariants(bad).empty());
}

TEST(SoakRun, AutotunedScheduleNeverLosesThroughputAndStaysDeterministic)
{
    // Planning on the fixed pricing machine with the job's own shape
    // must_scored guarantees planned latency <= fixed latency per job, so
    // the fleet's virtual throughput may only improve.
    const SoakSummary fixed = run(event_config(3));
    SoakConfig tuned_cfg = event_config(3);
    tuned_cfg.autotune = true;
    const SoakSummary tuned = run(tuned_cfg);
    EXPECT_GE(tuned.jobs_per_hour, fixed.jobs_per_hour);
    EXPECT_TRUE(check_invariants(tuned).empty()) << deterministic_json(tuned);
    // Replay determinism survives the planner, and the flag is part of
    // the replay-compared section so a soak cannot silently change mode.
    EXPECT_EQ(deterministic_json(tuned), deterministic_json(run(tuned_cfg)));
    EXPECT_NE(deterministic_json(tuned).find("\"autotuned\": 1"), std::string::npos);
    EXPECT_NE(deterministic_json(fixed).find("\"autotuned\": 0"), std::string::npos);
}

TEST(SoakRun, CalibrationNeedsTheLiveTier)
{
    // The event tier is virtual time — there is nothing to measure.  A
    // calibrate request without live jobs yields no calibrated machine.
    SoakConfig cfg = event_config();
    cfg.calibrate = true;
    const SoakSummary s = run(cfg);
    EXPECT_FALSE(s.calibrated);
}

TEST(SoakRun, LiveCalibrationFitsAMachineIntoTheWallSection)
{
    SoakConfig cfg = event_config(9);
    cfg.schedule.epochs = 1;
    cfg.live = true;
    cfg.calibrate = true;
    const SoakSummary s = run(cfg);
    ASSERT_TRUE(s.calibrated);
    EXPECT_GT(s.calibrated_machine.th_bp_gups, 0.0);
    EXPECT_GT(s.calibrated_machine.bw_h2d_gbps, 0.0);
    // Calibration is wall-clock-derived, so it lives in the soak_wall
    // section, never in the replay-compared one.
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "xct_soak_cal_test.json";
    write_bench_json(tmp.string(), s, /*fresh=*/true);
    std::stringstream out;
    out << std::ifstream(tmp).rdbuf();
    EXPECT_NE(out.str().find("\"soak_machine\": {"), std::string::npos);
    EXPECT_NE(out.str().find("\"th_bp_gups\""), std::string::npos);
    EXPECT_EQ(deterministic_json(s).find("soak_machine"), std::string::npos);
    std::filesystem::remove(tmp);
}

TEST(SoakRun, BenchJsonWritesFreshAndMergesOnAppend)
{
    const SoakSummary s = run(event_config());
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "xct_soak_bench_test.json";
    write_bench_json(tmp.string(), s, /*fresh=*/true);
    std::stringstream fresh;
    fresh << std::ifstream(tmp).rdbuf();
    EXPECT_NE(fresh.str().find("\"soak\": {"), std::string::npos);
    EXPECT_NE(fresh.str().find("\"soak_wall\": {"), std::string::npos);
    EXPECT_NE(fresh.str().find(deterministic_json(s)), std::string::npos);

    // Appending into an existing BENCH document keeps its sections.
    std::ofstream(tmp) << "{\n  \"filter\": {\"padded_len\": 512}\n}\n";
    write_bench_json(tmp.string(), s, /*fresh=*/false);
    std::stringstream merged;
    merged << std::ifstream(tmp).rdbuf();
    EXPECT_NE(merged.str().find("\"filter\""), std::string::npos);
    EXPECT_NE(merged.str().find("\"soak\": {"), std::string::npos);
    std::filesystem::remove(tmp);
}

}  // namespace
}  // namespace xct::soak
