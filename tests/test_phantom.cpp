// Phantom substrate tests: analytic densities, exact line integrals,
// voxelisation and the cone-beam forward projector.
#include <gtest/gtest.h>

#include <cmath>

#include "phantom/shepp_logan.hpp"

namespace xct::phantom {
namespace {

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 8;
    g.nu = 64;
    g.nv = 48;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {32, 32, 24};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

TEST(SheppLogan, HasTenEllipsoids)
{
    EXPECT_EQ(shepp_logan_3d(10.0).size(), 10u);
}

TEST(SheppLogan, CentreDensityIsSkullMinusBrain)
{
    const auto e = shepp_logan_3d(10.0);
    EXPECT_NEAR(density_at(e, 0.0, 0.0, 0.0), 0.2, 1e-12);
}

TEST(SheppLogan, OutsideSkullIsZero)
{
    const auto e = shepp_logan_3d(10.0);
    EXPECT_DOUBLE_EQ(density_at(e, 11.0, 0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(density_at(e, 0.0, 0.0, 15.0), 0.0);
}

TEST(SheppLogan, ScalesWithRadius)
{
    const auto small = shepp_logan_3d(5.0);
    const auto big = shepp_logan_3d(20.0);
    // Same normalised position must give the same density.
    EXPECT_DOUBLE_EQ(density_at(small, 1.0, 2.0, 0.5), density_at(big, 4.0, 8.0, 2.0));
}

TEST(LineIntegral, ChordThroughSphereCentre)
{
    const std::vector<Ellipsoid> e{{2.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0}};
    // Segment passing straight through: integral = density * diameter.
    const double li = line_integral(e, {-10.0, 0.0, 0.0}, {10.0, 0.0, 0.0});
    EXPECT_NEAR(li, 2.0 * 6.0, 1e-12);
}

TEST(LineIntegral, OffCentreChordLength)
{
    const std::vector<Ellipsoid> e{{1.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0}};
    // Chord at impact parameter 3 of a radius-5 sphere: 2*sqrt(25-9) = 8.
    const double li = line_integral(e, {-20.0, 3.0, 0.0}, {20.0, 3.0, 0.0});
    EXPECT_NEAR(li, 8.0, 1e-12);
}

TEST(LineIntegral, MissingRayIsZero)
{
    const std::vector<Ellipsoid> e{{1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0}};
    EXPECT_DOUBLE_EQ(line_integral(e, {-10.0, 5.0, 0.0}, {10.0, 5.0, 0.0}), 0.0);
}

TEST(LineIntegral, SegmentClipping)
{
    const std::vector<Ellipsoid> e{{1.0, 4.0, 4.0, 4.0, 0.0, 0.0, 0.0, 0.0}};
    // Segment ends at the centre: only half the diameter is traversed.
    EXPECT_NEAR(line_integral(e, {-10.0, 0.0, 0.0}, {0.0, 0.0, 0.0}), 4.0, 1e-12);
    // Segment fully inside.
    EXPECT_NEAR(line_integral(e, {-1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}), 2.0, 1e-12);
}

TEST(LineIntegral, RotatedEllipsoidMatchesAxisAligned)
{
    // A sphere is rotation invariant: phi must not change the integral.
    std::vector<Ellipsoid> a{{1.0, 2.0, 2.0, 2.0, 1.0, -1.0, 0.5, 0.0}};
    std::vector<Ellipsoid> b = a;
    b[0].phi = 1.234;
    const Vec3 s{-9.0, 2.0, 1.0};
    const Vec3 d{8.0, -3.0, 0.0};
    EXPECT_NEAR(line_integral(a, s, d), line_integral(b, s, d), 1e-12);
}

TEST(LineIntegral, AdditiveOverEllipsoids)
{
    std::vector<Ellipsoid> both{{1.0, 2.0, 2.0, 2.0, 0.0, 0.0, 0.0, 0.0},
                                {0.5, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0}};
    std::vector<Ellipsoid> first{both[0]};
    std::vector<Ellipsoid> second{both[1]};
    const Vec3 s{-10.0, 0.3, 0.1};
    const Vec3 d{10.0, -0.2, 0.0};
    EXPECT_NEAR(line_integral(both, s, d),
                line_integral(first, s, d) + line_integral(second, s, d), 1e-12);
}

TEST(Voxelize, MatchesPointDensities)
{
    const CbctGeometry g = geo();
    const auto e = shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.2);
    const Volume v = voxelize(e, g);
    const double ox = (static_cast<double>(g.vol.x) - 1.0) / 2.0;
    const double oy = (static_cast<double>(g.vol.y) - 1.0) / 2.0;
    const double oz = (static_cast<double>(g.vol.z) - 1.0) / 2.0;
    for (index_t k = 0; k < g.vol.z; k += 5)
        for (index_t j = 0; j < g.vol.y; j += 7)
            for (index_t i = 0; i < g.vol.x; i += 3) {
                const double want = density_at(e, (static_cast<double>(i) - ox) * g.dx,
                                               (static_cast<double>(j) - oy) * g.dy,
                                               (static_cast<double>(k) - oz) * g.dz);
                ASSERT_FLOAT_EQ(v.at(i, j, k), static_cast<float>(want));
            }
}

TEST(ForwardProject, CentralPixelSeesDiameterOfCentredSphere)
{
    CbctGeometry g = geo();
    const double r = 3.0;
    const std::vector<Ellipsoid> e{{1.0, r, r, r, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack p = forward_project(e, g);
    // The central detector pixel's ray passes through the sphere centre.
    const float got = p.at(0, g.nv / 2, g.nu / 2);
    // Centre is between pixels; allow tolerance of a half-pixel ray offset.
    EXPECT_NEAR(got, 2.0 * r, 0.15);
}

TEST(ForwardProject, RotationInvariantForCentredSphere)
{
    const CbctGeometry g = geo();
    const std::vector<Ellipsoid> e{{1.0, 2.0, 2.0, 2.0, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack p = forward_project(e, g);
    for (index_t s = 1; s < g.num_proj; ++s)
        for (index_t v = 0; v < g.nv; v += 7)
            for (index_t u = 0; u < g.nu; u += 5)
                ASSERT_NEAR(p.at(s, v, u), p.at(0, v, u), 1e-4f) << "s=" << s;
}

TEST(ForwardProject, OffCentreObjectRotatesThroughViews)
{
    const CbctGeometry g = geo();
    const std::vector<Ellipsoid> e{{1.0, 1.5, 1.5, 1.5, 4.0, 0.0, 0.0, 0.0}};
    const ProjectionStack p = forward_project(e, g);
    // Half a rotation later the blob appears mirrored in U.
    const index_t half = g.num_proj / 2;
    double m0 = 0.0, mh = 0.0;  // first moments in U of view 0 and half
    double w0 = 0.0, wh = 0.0;
    for (index_t u = 0; u < g.nu; ++u) {
        m0 += static_cast<double>(u) * p.at(0, g.nv / 2, u);
        w0 += p.at(0, g.nv / 2, u);
        mh += static_cast<double>(u) * p.at(half, g.nv / 2, u);
        wh += p.at(half, g.nv / 2, u);
    }
    const double cu = (static_cast<double>(g.nu) - 1.0) / 2.0;
    EXPECT_NEAR((m0 / w0 - cu), -(mh / wh - cu), 0.1);
}

TEST(ForwardProject, BandRestrictedMatchesFull)
{
    const CbctGeometry g = geo();
    const auto e = shepp_logan_3d(4.0);
    const ProjectionStack full = forward_project(e, g);
    const Range band{10, 30};
    const ProjectionStack part = forward_project(e, g, Range{2, 5}, band);
    ASSERT_EQ(part.views(), 3);
    for (index_t s = 0; s < 3; ++s)
        for (index_t v = band.lo; v < band.hi; ++v)
            for (index_t u = 0; u < g.nu; ++u)
                ASSERT_FLOAT_EQ(part.at(s, v, u), full.at(s + 2, v, u));
}

TEST(ForwardProject, MagnificationEnlargesShadow)
{
    // The cone magnifies: the same sphere covers ~mag times more detector
    // pixels than its physical size.
    CbctGeometry g = geo();
    const double r = 2.0;
    const std::vector<Ellipsoid> e{{1.0, r, r, r, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack p = forward_project(e, g);
    index_t hit = 0;
    for (index_t u = 0; u < g.nu; ++u)
        if (p.at(0, g.nv / 2, u) > 0.0f) ++hit;
    const double expected_px = 2.0 * r * g.magnification() / g.du;
    EXPECT_NEAR(static_cast<double>(hit), expected_px, 3.0);
}

TEST(PorousBean, DeterministicForSeed)
{
    const auto a = porous_bean(5.0, 12, 42);
    const auto b = porous_bean(5.0, 12, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].cx, b[i].cx);
        EXPECT_DOUBLE_EQ(a[i].a, b[i].a);
    }
    const auto c = porous_bean(5.0, 12, 43);
    EXPECT_NE(a[2].cx, c[2].cx);
}

TEST(PorousBean, BodyPlusPores)
{
    const auto e = porous_bean(5.0, 8, 1);
    EXPECT_EQ(e.size(), 10u);  // body + crease + 8 pores
    EXPECT_GT(density_at(e, 0.0, 3.5, 0.0), 0.0);  // body off the crease
}

TEST(ForwardProject, RejectsBadRanges)
{
    const CbctGeometry g = geo();
    const auto e = shepp_logan_3d(4.0);
    EXPECT_THROW(forward_project(e, g, Range{0, 0}, Range{0, g.nv}), std::invalid_argument);
    EXPECT_THROW(forward_project(e, g, Range{0, 1}, Range{0, g.nv + 1}), std::invalid_argument);
}

}  // namespace
}  // namespace xct::phantom
