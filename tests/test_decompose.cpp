// Decomposition tests: Algorithm 2 (compute_ab), slab planning with
// differential updates (Eqs. 3-7), even splits and the group layout of
// Sec. 4.4.1.  Property sweeps verify coverage and tightness invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/decompose.hpp"

namespace xct {
namespace {

CbctGeometry geo(index_t nz = 64, double mag = 2.5)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 100.0 * mag;
    g.num_proj = 120;
    g.nu = 96;
    g.nv = 96;
    g.du = 0.4;
    g.dv = 0.4;
    g.vol = {48, 48, nz};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

TEST(ComputeAB, FullVolumeNeedsWholeUsedDetector)
{
    const CbctGeometry g = geo();
    const Range band = compute_ab(g, Range{0, g.vol.z});
    EXPECT_GE(band.length(), g.nv / 2);  // tall volume -> most of the detector
    EXPECT_GE(band.lo, 0);
    EXPECT_LE(band.hi, g.nv);
}

TEST(ComputeAB, CentralSlabIsNarrow)
{
    const CbctGeometry g = geo();
    const index_t mid = g.vol.z / 2;
    const Range band = compute_ab(g, Range{mid - 2, mid + 2});
    // A 4-slice central slab needs only a thin band around the mid row.
    EXPECT_LT(band.length(), g.nv / 3);
    EXPECT_TRUE(band.contains(g.nv / 2));
}

TEST(ComputeAB, BandsMoveMonotonicallyWithSlabPosition)
{
    const CbctGeometry g = geo();
    Range prev = compute_ab(g, Range{0, 8});
    for (index_t k = 8; k + 8 <= g.vol.z; k += 8) {
        const Range cur = compute_ab(g, Range{k, k + 8});
        EXPECT_GE(cur.lo, prev.lo);
        EXPECT_GE(cur.hi, prev.hi);
        prev = cur;
    }
}

TEST(ComputeAB, CoversExhaustiveOracle)
{
    const CbctGeometry g = geo();
    for (index_t k = 0; k + 8 <= g.vol.z; k += 8) {
        const Range fast = compute_ab(g, Range{k, k + 8});
        const Range exact = compute_ab_exhaustive(g, Range{k, k + 8}, 720);
        // Algorithm 2 must never under-estimate the needed band...
        EXPECT_LE(fast.lo, exact.lo) << "slab at " << k;
        EXPECT_GE(fast.hi, exact.hi) << "slab at " << k;
        // ...and for a centred volume it is tight to within a couple of
        // rows (the corner-radius bound is attained).
        EXPECT_LE(exact.lo - fast.lo, 2) << "slab at " << k;
        EXPECT_LE(fast.hi - exact.hi, 2) << "slab at " << k;
    }
}

TEST(ComputeAB, RejectsBadSlab)
{
    const CbctGeometry g = geo();
    EXPECT_THROW(compute_ab(g, Range{5, 5}), std::invalid_argument);
    EXPECT_THROW(compute_ab(g, Range{0, g.vol.z + 1}), std::invalid_argument);
}

/// Property sweep over magnification and slab size: Algorithm 2 is a
/// conservative, near-tight cover of the brute-force requirement.
class ComputeAbSweep : public ::testing::TestWithParam<std::tuple<double, index_t>> {};

TEST_P(ComputeAbSweep, ConservativeAndTight)
{
    const auto [mag, nb] = GetParam();
    const CbctGeometry g = geo(60, mag);
    for (index_t k = 0; k + nb <= g.vol.z; k += nb) {
        const Range fast = compute_ab(g, Range{k, k + nb});
        const Range exact = compute_ab_exhaustive(g, Range{k, k + nb}, 360);
        ASSERT_LE(fast.lo, exact.lo);
        ASSERT_GE(fast.hi, exact.hi);
        ASSERT_LE(exact.lo - fast.lo, 3);
        ASSERT_LE(fast.hi - exact.hi, 3);
    }
}

INSTANTIATE_TEST_SUITE_P(MagnificationAndBatch, ComputeAbSweep,
                         ::testing::Combine(::testing::Values(1.5, 2.5, 5.0, 9.48, 16.9),
                                            ::testing::Values<index_t>(4, 10, 15, 30)));

TEST(PlanSlabs, SlabsPartitionTheSliceRange)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 10);
    ASSERT_EQ(plans.size(), 7u);  // ceil(64/10)
    index_t next = 0;
    for (const auto& p : plans) {
        EXPECT_EQ(p.slab.lo, next);
        next = p.slab.hi;
    }
    EXPECT_EQ(next, g.vol.z);
    EXPECT_EQ(plans.back().slab.length(), 4);  // remainder slab
}

TEST(PlanSlabs, FirstDeltaEqualsFullBand)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 16);
    EXPECT_EQ(plans.front().delta, plans.front().rows);
}

TEST(PlanSlabs, DeltasAreDisjointAndCoverTheHull)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 8);
    // Eq. 6: each delta is exactly the new rows; the total delta length
    // equals the number of distinct rows any slab needs (every required row
    // moves exactly once).
    std::vector<int> needed(static_cast<std::size_t>(g.nv), 0);
    index_t delta_total = 0;
    for (const auto& p : plans) {
        for (index_t v = p.rows.lo; v < p.rows.hi; ++v) needed[static_cast<std::size_t>(v)] = 1;
        delta_total += p.delta.length();
    }
    EXPECT_EQ(delta_total, std::accumulate(needed.begin(), needed.end(), index_t{0}));
    // Pairwise disjoint.
    for (std::size_t a = 0; a < plans.size(); ++a)
        for (std::size_t b = a + 1; b < plans.size(); ++b)
            EXPECT_TRUE(intersect(plans[a].delta, plans[b].delta).empty());
}

TEST(PlanSlabs, DeltaUnionEqualsBandUnion)
{
    const CbctGeometry g = geo(48, 6.0);
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 6);
    std::vector<int> covered_by_delta(static_cast<std::size_t>(g.nv), 0);
    std::vector<int> needed(static_cast<std::size_t>(g.nv), 0);
    for (const auto& p : plans) {
        for (index_t v = p.delta.lo; v < p.delta.hi; ++v) covered_by_delta[static_cast<std::size_t>(v)]++;
        for (index_t v = p.rows.lo; v < p.rows.hi; ++v) needed[static_cast<std::size_t>(v)] = 1;
    }
    for (index_t v = 0; v < g.nv; ++v) {
        EXPECT_EQ(covered_by_delta[static_cast<std::size_t>(v)], needed[static_cast<std::size_t>(v)])
            << "row " << v;
    }
}

TEST(PlanSlabs, SubRangePlansRespectGroupOwnership)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{16, 48}, 8);
    ASSERT_EQ(plans.size(), 4u);
    EXPECT_EQ(plans.front().slab.lo, 16);
    EXPECT_EQ(plans.back().slab.hi, 48);
}

TEST(SplitEven, DivisibleCase)
{
    EXPECT_EQ(split_even(12, 4, 0), (Range{0, 3}));
    EXPECT_EQ(split_even(12, 4, 3), (Range{9, 12}));
}

TEST(SplitEven, RemainderGoesToFirstChunks)
{
    // 10 into 4: 3,3,2,2
    EXPECT_EQ(split_even(10, 4, 0).length(), 3);
    EXPECT_EQ(split_even(10, 4, 1).length(), 3);
    EXPECT_EQ(split_even(10, 4, 2).length(), 2);
    EXPECT_EQ(split_even(10, 4, 3).length(), 2);
}

TEST(SplitEven, ChunksPartition)
{
    for (index_t n : {1, 7, 16, 99, 1000}) {
        for (index_t parts : {1, 2, 3, 8, 16}) {
            index_t next = 0;
            for (index_t p = 0; p < parts; ++p) {
                const Range r = split_even(n, parts, p);
                ASSERT_EQ(r.lo, next);
                next = r.hi;
            }
            ASSERT_EQ(next, n);
        }
    }
}

TEST(SplitEven, RejectsBadPart)
{
    EXPECT_THROW(split_even(10, 4, 4), std::invalid_argument);
    EXPECT_THROW(split_even(10, 0, 0), std::invalid_argument);
}

TEST(GroupLayout, RanksMapToGroupsRowMajor)
{
    const GroupLayout gl{.num_groups = 4, .ranks_per_group = 3};
    EXPECT_EQ(gl.nranks(), 12);
    EXPECT_EQ(gl.group_of(RankId{0}), GroupId{0});
    EXPECT_EQ(gl.group_of(RankId{5}), GroupId{1});
    EXPECT_EQ(gl.rank_in_group(RankId{5}), 2);
    EXPECT_EQ(gl.group_root(GroupId{2}), RankId{6});
}

TEST(GroupLayout, GroupsPartitionSlices)
{
    const GroupLayout gl{.num_groups = 3, .ranks_per_group = 2};
    index_t next = 0;
    for (index_t g = 0; g < gl.num_groups; ++g) {
        const Range r = gl.slices_of_group(GroupId{g}, 64);
        EXPECT_EQ(r.lo, next);
        next = r.hi;
    }
    EXPECT_EQ(next, 64);
}

TEST(GroupLayout, RanksInGroupPartitionViews)
{
    const GroupLayout gl{.num_groups = 2, .ranks_per_group = 4};
    // Ranks 4..7 are group 1; their view ranges partition [0, Np).
    index_t next = 0;
    for (index_t r = 4; r < 8; ++r) {
        const Range v = gl.views_of_rank(RankId{r}, 123);
        EXPECT_EQ(v.lo, next);
        next = v.hi;
    }
    EXPECT_EQ(next, 123);
}

TEST(Sizes, SizeAbMatchesEquation5)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 16);
    const SlabPlan& p = plans[1];
    EXPECT_EQ(size_ab(g, p, 4), g.nu * (g.num_proj / 4) * p.rows.length());
}

TEST(Sizes, SizeBbMatchesEquation7)
{
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 16);
    const SlabPlan& p = plans[2];
    EXPECT_EQ(size_bb(g, p, 2), g.nu * (g.num_proj / 2) * p.delta.length());
    EXPECT_LE(size_bb(g, p, 2), size_ab(g, p, 2));  // differential never larger
}

TEST(ComputeAB, WiderConeAngleWidensBands)
{
    // The cone-induced band overlap is the crux of why CBCT decomposition
    // is harder than parallel-beam (Sec. 3.1.2).  For a fixed object and
    // fixed magnification, moving the source closer (larger cone angle,
    // larger r/Dso) must widen the required band relative to the slab's
    // central projection.
    CbctGeometry wide = geo(64, 2.5);
    CbctGeometry narrow = wide;
    narrow.dso = wide.dso * 10.0;  // almost-parallel beam
    narrow.dsd = wide.dsd * 10.0;  // same magnification, same pixel mapping
    const Range slab{8, 24};       // off-centre slab (cone effect is off-axis)
    const index_t wide_len = compute_ab(wide, slab).length();
    const index_t narrow_len = compute_ab(narrow, slab).length();
    EXPECT_GT(wide_len, narrow_len);
}

}  // namespace
}  // namespace xct
