// Telemetry-core tests: concurrent instrument updates, snapshot
// determinism, merge semantics, tracer span capture with rank/lane
// attribution, Timeline forwarding, and the Chrome-trace / CSV exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "pipeline/timeline.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::telemetry {
namespace {

/// Re-enable-free guard: every tracer test leaves the global tracer
/// disabled so later tests (and other suites) see the default state.
struct TracerOff {
    ~TracerOff() { tracer().disable(); }
};

TEST(Counter, ConcurrentAddsAreExact)
{
    Counter& c = registry().counter("test.counter.concurrent");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i) c.add(1);
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, ConcurrentAddsAreExact)
{
    Gauge& g = registry().gauge("test.gauge.concurrent");
    constexpr int kThreads = 4;
    constexpr int kAdds = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i) g.add(0.5);  // exact in binary
        });
    for (auto& t : threads) t.join();
    EXPECT_DOUBLE_EQ(g.value(), 0.5 * kThreads * kAdds);
}

TEST(Histogram, BucketsObservationsByBound)
{
    Histogram& h = registry().histogram("test.hist.buckets", {1.0, 10.0, 100.0});
    h.observe(0.5);    // le_1
    h.observe(1.0);    // le_1 (bound is inclusive)
    h.observe(5.0);    // le_10
    h.observe(50.0);   // le_100
    h.observe(500.0);  // overflow
    EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 556.5);
}

TEST(Histogram, ConcurrentObservationsKeepTotalCount)
{
    Histogram& h = registry().histogram("test.hist.concurrent", {0.25, 0.75});
    constexpr int kThreads = 6;
    constexpr int kObs = 4000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kObs; ++i) h.observe(t % 2 == 0 ? 0.5 : 1.0);
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : h.counts()) bucket_total += b;
    EXPECT_EQ(bucket_total, h.count());
}

TEST(Registry, SameNameReturnsSameInstrument)
{
    Counter& a = registry().counter("test.registry.same");
    Counter& b = registry().counter("test.registry.same");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, HistogramBoundsMismatchThrows)
{
    registry().histogram("test.registry.bounds", {1.0, 2.0});
    EXPECT_NO_THROW(registry().histogram("test.registry.bounds", {1.0, 2.0}));
    EXPECT_THROW(registry().histogram("test.registry.bounds", {1.0, 3.0}), std::invalid_argument);
}

TEST(Registry, SnapshotIsDeterministicAndSorted)
{
    registry().counter("test.snap.zebra").add(1);
    registry().counter("test.snap.alpha").add(2);
    registry().gauge("test.snap.g").set(4.5);
    const MetricsSnapshot s1 = registry().snapshot();
    const MetricsSnapshot s2 = registry().snapshot();
    EXPECT_EQ(s1, s2);  // quiescent registry -> identical snapshots
    EXPECT_TRUE(std::is_sorted(s1.counters.begin(), s1.counters.end(),
                               [](const auto& a, const auto& b) { return a.name < b.name; }));
    EXPECT_TRUE(std::is_sorted(s1.gauges.begin(), s1.gauges.end(),
                               [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST(Registry, ResetZeroesButKeepsInstruments)
{
    Counter& c = registry().counter("test.reset.c");
    c.add(9);
    registry().reset();
    EXPECT_EQ(c.value(), 0u);                                // reference stays valid
    EXPECT_EQ(&c, &registry().counter("test.reset.c"));      // registration kept
}

TEST(Merge, SumsMatchingNamesAndInsertsNew)
{
    MetricsSnapshot a;
    a.counters.push_back({"shared", 5});
    a.gauges.push_back({"g", 1.5});
    MetricsSnapshot b;
    b.counters.push_back({"other", 2});
    b.counters.push_back({"shared", 7});
    b.gauges.push_back({"g", 2.0});
    merge(a, b);
    ASSERT_EQ(a.counters.size(), 2u);
    EXPECT_EQ(a.counters[0].name, "other");  // stays sorted
    EXPECT_EQ(a.counters[0].value, 2u);
    EXPECT_EQ(a.counters[1].value, 12u);
    EXPECT_DOUBLE_EQ(a.gauges[0].value, 3.5);
}

TEST(Merge, HistogramBucketsSumAndMismatchThrows)
{
    MetricsSnapshot a;
    a.histograms.push_back({"h", {1.0, 2.0}, {1, 2, 3}, 6, 4.0});
    MetricsSnapshot b;
    b.histograms.push_back({"h", {1.0, 2.0}, {10, 20, 30}, 60, 40.0});
    merge(a, b);
    EXPECT_EQ(a.histograms[0].counts, (std::vector<std::uint64_t>{11, 22, 33}));
    EXPECT_EQ(a.histograms[0].count, 66u);
    EXPECT_DOUBLE_EQ(a.histograms[0].sum, 44.0);

    MetricsSnapshot c;
    c.histograms.push_back({"h", {9.0}, {0, 0}, 0, 0.0});
    EXPECT_THROW(merge(a, c), std::invalid_argument);
}

TEST(Merge, MismatchErrorNamesTheHistogramAndBothBoundSets)
{
    // A fleet aggregation that dies on a mismatch must say which
    // histogram disagreed and what each side's bounds were.
    MetricsSnapshot a;
    a.histograms.push_back({"pipeline.stage.bp.seconds", {1.0, 2.0}, {0, 0, 0}, 0, 0.0});
    MetricsSnapshot c;
    c.histograms.push_back({"pipeline.stage.bp.seconds", {9.0}, {0, 0}, 0, 0.0});
    try {
        merge(a, c);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("pipeline.stage.bp.seconds"), std::string::npos) << msg;
        EXPECT_NE(msg.find("[1, 2]"), std::string::npos) << msg;
        EXPECT_NE(msg.find("[9]"), std::string::npos) << msg;
    }
}

TEST(ExpBounds, GeneratesGeometricSeriesAndValidates)
{
    const auto b = exp_bounds(1e-3, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 1e-3);
    EXPECT_DOUBLE_EQ(b[1], 2e-3);
    EXPECT_DOUBLE_EQ(b[2], 4e-3);
    EXPECT_DOUBLE_EQ(b[3], 8e-3);
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
    EXPECT_THROW(exp_bounds(0.0, 2.0, 4), std::invalid_argument);
    EXPECT_THROW(exp_bounds(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(exp_bounds(1.0, 2.0, 0), std::invalid_argument);
}

TEST(HistogramQuantile, InterpolatesWithinBucketsAndHandlesOverflow)
{
    // 10 observations spread as 4 / 4 / 2 over bounds {1, 2, 4}.
    HistogramSample h{"q", {1.0, 2.0, 4.0}, {4, 4, 2, 0}, 10, 0.0};
    EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 0.25);  // first observation
    EXPECT_GT(histogram_quantile(h, 0.5), 1.0);          // 5th obs: second bucket
    EXPECT_LE(histogram_quantile(h, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 4.0);   // last bucket's bound
    EXPECT_LE(histogram_quantile(h, 0.25), histogram_quantile(h, 0.75));

    // Observations in the overflow bucket clamp to the last bound.
    HistogramSample over{"q", {1.0}, {0, 3}, 3, 0.0};
    EXPECT_DOUBLE_EQ(histogram_quantile(over, 0.99), 1.0);

    HistogramSample empty{"q", {1.0}, {0, 0}, 0, 0.0};
    EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);
}

TEST(FleetObserve, FillsLogBucketedStageHistograms)
{
    fleet_observe("teststage", 0.5);
    fleet_observe("teststage", 0.002);
    const MetricsSnapshot snap = registry().snapshot();
    const auto it = std::find_if(snap.histograms.begin(), snap.histograms.end(),
                                 [](const HistogramSample& h) {
                                     return h.name == "fleet.stage.teststage.seconds";
                                 });
    ASSERT_NE(it, snap.histograms.end());
    EXPECT_EQ(it->count, 2u);
    EXPECT_EQ(it->bounds, exp_bounds(1e-3, 2.0, 24));
}

TEST(Tracer, DisabledRecordsNothing)
{
    TracerOff off;
    tracer().disable();
    tracer().clear();
    { ScopedTrace t("test", "noop"); }
    tracer().record("direct", "test", 0.0, 1.0);
    EXPECT_EQ(tracer().event_count(), 0u);
}

TEST(Tracer, EnableClearsAndCapturesSpans)
{
    TracerOff off;
    tracer().enable();
    { ScopedTrace t("sub", "work", /*item=*/7, /*bytes=*/128); }
    const auto events = tracer().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "work");
    EXPECT_EQ(events[0].cat, "sub");
    EXPECT_EQ(events[0].item, 7);
    EXPECT_EQ(events[0].bytes, 128u);
    EXPECT_GE(events[0].end, events[0].begin);

    tracer().enable();  // re-enable resets epoch and clears prior events
    EXPECT_EQ(tracer().event_count(), 0u);
}

TEST(Tracer, RankAndLaneAttribution)
{
    TracerOff off;
    tracer().enable();
    // Both threads stay alive until each has recorded, so their thread
    // ids — and therefore their lanes — are guaranteed distinct.
    std::atomic<int> recorded{0};
    auto worker = [&](index_t rank, const char* name) {
        set_current_rank(RankId{rank});
        { ScopedTrace t("test", name); }
        recorded.fetch_add(1);
        while (recorded.load() < 2) std::this_thread::yield();
    };
    std::thread a(worker, 3, "rank3-span");
    std::thread b(worker, 5, "rank5-span");
    a.join();
    b.join();
    auto events = tracer().events();
    ASSERT_EQ(events.size(), 2u);
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& x, const TraceEvent& y) { return x.rank < y.rank; });
    EXPECT_EQ(events[0].rank, RankId{3});
    EXPECT_EQ(events[1].rank, RankId{5});
    EXPECT_NE(events[0].lane, events[1].lane);  // distinct live threads, distinct lanes
}

TEST(Tracer, TimelineForwardsSpansOnOneTimebase)
{
    TracerOff off;
    tracer().enable();
    registry().reset();
    pipeline::Timeline tl;
    tl.record("bp", 2, 0.125, 0.5);  // epoch-relative to the Timeline
    const auto events = tracer().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "bp");
    EXPECT_EQ(events[0].cat, "pipeline");
    EXPECT_EQ(events[0].item, 2);
    // The tracer's epoch predates the Timeline's, so the absolute span
    // lands at >= the Timeline-relative begin, with the length preserved.
    EXPECT_GE(events[0].begin, 0.125);
    EXPECT_NEAR(events[0].end - events[0].begin, 0.375, 1e-9);
    EXPECT_DOUBLE_EQ(registry().gauge("pipeline.stage.bp.seconds").value(), 0.375);
    EXPECT_EQ(registry().counter("pipeline.stage.bp.spans").value(), 1u);
}

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, string state closed at EOF.
bool json_well_formed(const std::string& s)
{
    std::vector<char> stack;
    bool in_str = false, esc = false;
    for (const char c : s) {
        if (in_str) {
            if (esc)
                esc = false;
            else if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            stack.push_back(c);
        else if (c == '}') {
            if (stack.empty() || stack.back() != '{') return false;
            stack.pop_back();
        } else if (c == ']') {
            if (stack.empty() || stack.back() != '[') return false;
            stack.pop_back();
        }
    }
    return !in_str && stack.empty();
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(Export, ChromeTraceIsValidJsonWithOneCompleteEventPerSpan)
{
    TracerOff off;
    tracer().enable();
    { ScopedTrace t("minimpi", "reduce_sum", -1, 4096); }
    { ScopedTrace t("sim", "h2d", 3, 1024); }
    std::thread remote([] {
        set_current_rank(RankId{1});
        ScopedTrace t("io", "pfs.store");
    });
    remote.join();
    const auto events = tracer().events();
    ASSERT_EQ(events.size(), 3u);

    std::ostringstream os;
    write_chrome_trace(os, events);
    const std::string json = os.str();
    EXPECT_TRUE(json_well_formed(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One complete event per recorded span.
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), events.size());
    // process_name metadata for each rank that produced spans (0 and 1).
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 2u);
    EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
    // Byte payloads survive as args.
    EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(Export, ChromeTraceClampsPreEpochSpans)
{
    std::vector<TraceEvent> events;
    events.push_back({"early", "test", RankId{0}, 0, -1, 0, -0.5, 0.25});
    std::ostringstream os;
    write_chrome_trace(os, events);
    EXPECT_EQ(os.str().find("-"), std::string::npos);  // no negative ts/dur
}

TEST(Export, MetricsCsvListsEveryInstrument)
{
    MetricsSnapshot s;
    s.counters.push_back({"fft.transforms", 42});
    s.gauges.push_back({"pipeline.stage.bp.seconds", 1.25});
    s.histograms.push_back({"lat", {1.0, 2.0}, {3, 4, 5}, 12, 18.0});
    std::ostringstream os;
    write_metrics_csv(os, s);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("name,kind,value\n", 0), 0u);  // header first
    EXPECT_NE(csv.find("fft.transforms,counter,42\n"), std::string::npos);
    EXPECT_NE(csv.find("pipeline.stage.bp.seconds,gauge,1.250000\n"), std::string::npos);
    EXPECT_NE(csv.find("lat.le_1.000000,histogram,3\n"), std::string::npos);
    EXPECT_NE(csv.find("lat.le_inf,histogram,5\n"), std::string::npos);
    EXPECT_NE(csv.find("lat.count,histogram,12\n"), std::string::npos);
    EXPECT_NE(csv.find("lat.sum,histogram,18.000000\n"), std::string::npos);
}

TEST(Export, MetricsJsonIsWellFormed)
{
    MetricsSnapshot s;
    s.counters.push_back({"a.b", 1});
    s.gauges.push_back({"c.d", 2.5});
    s.histograms.push_back({"h", {0.5}, {1, 0}, 1, 0.25});
    std::ostringstream os;
    write_metrics_json(os, s);
    EXPECT_TRUE(json_well_formed(os.str()));
    EXPECT_NE(os.str().find("\"a.b\": 1"), std::string::npos);
}

}  // namespace
}  // namespace xct::telemetry
