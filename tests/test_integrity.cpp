// Integrity subsystem tests (DESIGN.md §3f): the XXH64 implementation is
// pinned to the official test vectors and cross-checked against the spec
// transcription on every buffer-length class; checksum/verify wire the
// telemetry counters the e2e detection tests assert against; the fault
// engine's corrupt/stall classes are deterministic and invisible to the
// throw-class entry points; the watchdog converts finite overruns into
// DeadlineExceeded.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <random>
#include <vector>

#include "faults/fault.hpp"
#include "integrity/hash.hpp"
#include "integrity/integrity.hpp"
#include "integrity/watchdog.hpp"
#include "telemetry/metrics.hpp"

namespace xct::integrity {
namespace {

std::uint64_t cval(const std::string& name)
{
    return telemetry::registry().counter(name).value();
}

std::span<const std::byte> bytes_of(const char* s)
{
    return std::as_bytes(std::span<const char>(s, std::strlen(s)));
}

// ---- XXH64 correctness ------------------------------------------------

TEST(Xxh64, MatchesOfficialTestVectors)
{
    // Vectors from the reference implementation (Cyan4973/xxHash).
    EXPECT_EQ(digest({}), 0xEF46DB3751D8E999ull);
    EXPECT_EQ(digest(bytes_of("abc")), 0x44BC2CF5AD770999ull);
    EXPECT_EQ(digest(bytes_of("xxhash")), 3665147885093898016ull);
    EXPECT_EQ(digest(bytes_of("xxhash"), 20141025), 13067679811253438005ull);
    EXPECT_EQ(digest(bytes_of("Nobody inspects the spammish repetition")),
              0xFBCEA83C8A378BF1ull);
}

TEST(Xxh64, ReferenceMatchesOfficialTestVectors)
{
    EXPECT_EQ(digest_reference({}), 0xEF46DB3751D8E999ull);
    EXPECT_EQ(digest_reference(bytes_of("abc")), 0x44BC2CF5AD770999ull);
    EXPECT_EQ(digest_reference(bytes_of("xxhash"), 20141025), 13067679811253438005ull);
}

TEST(Xxh64, FastPathMatchesReferenceOnEveryLengthClass)
{
    // Property check across the length classes the implementation
    // branches on: empty, tail-only (<4, <8, <32), stripe loop, and
    // stripe + every tail remainder.  Unaligned starts are covered by
    // hashing at an offset into the buffer.
    std::mt19937_64 rng(0x9E3779B9u);
    std::vector<std::size_t> sizes{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65};
    for (std::size_t s = 100; s < 2200; s += 397) sizes.push_back(s);
    for (const std::size_t n : sizes) {
        std::vector<std::byte> buf(n + 3);
        for (auto& b : buf) b = static_cast<std::byte>(rng());
        for (const std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
            const std::span<const std::byte> view(buf.data() + off, n);
            const std::uint64_t seed = rng();
            ASSERT_EQ(digest(view, seed), digest_reference(view, seed))
                << "n=" << n << " off=" << off;
        }
    }
}

TEST(Xxh64, TypedHelperHashesUnderlyingBytes)
{
    const std::vector<float> v{1.0f, -2.5f, 3.25f, 0.0f};
    EXPECT_EQ(digest_of<float>(v), digest(std::as_bytes(std::span<const float>(v))));
}

// ---- checksum / verify ------------------------------------------------

TEST(Integrity, ChecksumBumpsDigestCounters)
{
    const std::vector<float> v(257, 1.5f);
    const std::uint64_t d0 = cval("integrity.digests");
    const std::uint64_t b0 = cval("integrity.digest.bytes");
    checksum_of<float>(v);
    EXPECT_EQ(cval("integrity.digests"), d0 + 1);
    EXPECT_EQ(cval("integrity.digest.bytes"), b0 + v.size() * sizeof(float));
}

TEST(Integrity, VerifyPassesOnIntactDataAndCountsIt)
{
    ScopedEnable on;
    std::vector<float> v(64, 2.0f);
    const digest_t d = checksum_of<float>(v);
    const std::uint64_t ok0 = cval("integrity.verified");
    EXPECT_NO_THROW(verify_of<float>("pfs.load", v, d));
    EXPECT_EQ(cval("integrity.verified"), ok0 + 1);
}

TEST(Integrity, VerifyDetectsASingleFlippedBit)
{
    ScopedEnable on;
    std::vector<float> v(64, 2.0f);
    const digest_t d = checksum_of<float>(v);
    auto bytes = std::as_writable_bytes(std::span<float>(v));
    bytes[17] ^= std::byte{0x10};
    const std::uint64_t det0 = cval("integrity.detected");
    const std::uint64_t site0 = cval("integrity.detected.pfs.load");
    EXPECT_THROW(verify_of<float>("pfs.load", v, d), IntegrityError);
    EXPECT_EQ(cval("integrity.detected"), det0 + 1);
    EXPECT_EQ(cval("integrity.detected.pfs.load"), site0 + 1);
    // IntegrityError is transient: the retry layer must catch it.
    try {
        verify_of<float>("pfs.load", v, d);
        FAIL() << "expected IntegrityError";
    } catch (const faults::TransientError&) {
    }
}

TEST(Integrity, VerifyIsANoOpWhileDisabled)
{
    ScopedEnable off(false);
    std::vector<float> v(16, 1.0f);
    // Wrong digest on purpose: disabled verify must not even look.
    EXPECT_NO_THROW(verify_of<float>("pfs.load", v, 0xDEADBEEFull));
}

TEST(Integrity, ScopedEnableRestoresPreviousState)
{
    const bool before = enabled();
    {
        ScopedEnable on(true);
        EXPECT_TRUE(enabled());
        {
            ScopedEnable off(false);
            EXPECT_FALSE(enabled());
        }
        EXPECT_TRUE(enabled());
    }
    EXPECT_EQ(enabled(), before);
}

// ---- fault classes: corrupt & stall ----------------------------------

TEST(FaultClasses, ParseReadsKindFlipsAndDelay)
{
    const auto plan = faults::FaultPlan::parse(
        "pfs.load:kind=corrupt,flips=3,after=0;source.load:kind=stall,delay=0.25,after=1");
    const auto& c = plan.specs().at("pfs.load");
    EXPECT_EQ(c.kind, faults::FaultKind::Corrupt);
    EXPECT_EQ(c.flips, 3);
    const auto& s = plan.specs().at("source.load");
    EXPECT_EQ(s.kind, faults::FaultKind::Stall);
    EXPECT_DOUBLE_EQ(s.stall_s, 0.25);
    EXPECT_THROW(faults::FaultPlan::parse("x:kind=explode"), std::invalid_argument);
    EXPECT_THROW(faults::FaultPlan::parse("x:kind=corrupt,flips=0,after=0"),
                 std::invalid_argument);
}

TEST(FaultClasses, CorruptFlipsExactlyTheConfiguredDistinctBits)
{
    faults::ScopedPlan install(
        faults::FaultPlan::parse("pfs.load:kind=corrupt,flips=5,after=0,count=1"));
    std::vector<std::byte> buf(256, std::byte{0});
    const index_t flipped = faults::corrupt("pfs.load", buf);
    EXPECT_EQ(flipped, 5);
    index_t ones = 0;
    for (const std::byte b : buf)
        for (int i = 0; i < 8; ++i) ones += (std::to_integer<unsigned>(b) >> i) & 1u;
    // Distinct positions: no two flips may cancel.
    EXPECT_EQ(ones, 5);
    // count=1: the second call does not fire.
    EXPECT_EQ(faults::corrupt("pfs.load", buf), 0);
}

TEST(FaultClasses, CorruptIsDeterministicAcrossRuns)
{
    std::vector<std::byte> a(128, std::byte{0}), b(128, std::byte{0});
    {
        faults::ScopedPlan install(
            faults::FaultPlan::parse("sim.h2d:kind=corrupt,flips=4,after=0", 42));
        faults::corrupt("sim.h2d", a);
    }
    {
        faults::ScopedPlan install(
            faults::FaultPlan::parse("sim.h2d:kind=corrupt,flips=4,after=0", 42));
        faults::corrupt("sim.h2d", b);
    }
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(FaultClasses, EmptyBufferDoesNotConsumeACorruptCall)
{
    faults::ScopedPlan install(
        faults::FaultPlan::parse("pfs.load:kind=corrupt,after=0,count=1"));
    std::vector<std::byte> empty;
    EXPECT_EQ(faults::corrupt("pfs.load", empty), 0);  // no data to poison
    std::vector<std::byte> buf(8, std::byte{0});
    EXPECT_EQ(faults::corrupt("pfs.load", buf), 1);  // still fires on real data
}

TEST(FaultClasses, KindsAreInvisibleToOtherEntryPoints)
{
    // A corrupt spec never makes check() throw, and a throw spec never
    // flips bits — each entry point only sees its own kind.
    faults::ScopedPlan install(faults::FaultPlan::parse(
        "pfs.load:kind=corrupt,after=0,count=-1;sim.h2d:after=0,count=-1"));
    EXPECT_NO_THROW(faults::check("pfs.load"));
    EXPECT_FALSE(faults::should_fail("pfs.load"));
    std::vector<std::byte> buf(8, std::byte{0xFF});
    const std::vector<std::byte> orig = buf;
    EXPECT_EQ(faults::corrupt("sim.h2d", buf), 0);
    EXPECT_EQ(std::memcmp(buf.data(), orig.data(), buf.size()), 0);
    EXPECT_EQ(faults::stall_point("sim.h2d"), 0.0);
}

TEST(FaultClasses, StallPointSleepsForTheConfiguredDelay)
{
    faults::ScopedPlan install(
        faults::FaultPlan::parse("source.load:kind=stall,delay=0.02,after=0,count=1"));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_DOUBLE_EQ(faults::stall_point("source.load"), 0.02);
    const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                               .count();
    EXPECT_GE(elapsed, 0.02);
    EXPECT_EQ(faults::stall_point("source.load"), 0.0);  // count=1 consumed
}

// ---- watchdog ---------------------------------------------------------

TEST(WatchdogTest, DisabledSuperviseIsADirectCall)
{
    Watchdog wd(0.0);
    EXPECT_FALSE(wd.enabled());
    EXPECT_EQ(wd.supervise("source.load", [] { return 41 + 1; }), 42);
}

TEST(WatchdogTest, FastSectionPassesAndCountsSupervision)
{
    Watchdog wd(5.0);
    const std::uint64_t s0 = cval("watchdog.supervised");
    EXPECT_EQ(wd.supervise("source.load", [] { return 7; }), 7);
    int side = 0;
    wd.supervise("reduce", [&] { side = 3; });  // void form
    EXPECT_EQ(side, 3);
    EXPECT_EQ(cval("watchdog.supervised"), s0 + 2);
}

TEST(WatchdogTest, OverrunThrowsDeadlineExceededAndCountsIt)
{
    Watchdog wd(0.005);
    const std::uint64_t e0 = cval("watchdog.expired");
    const std::uint64_t es0 = cval("watchdog.expired.health_probe");
    try {
        wd.supervise("health_probe", [] {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        });
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded& e) {
        EXPECT_EQ(e.section(), "health_probe");
    }
    EXPECT_EQ(cval("watchdog.expired"), e0 + 1);
    EXPECT_EQ(cval("watchdog.expired.health_probe"), es0 + 1);
}

TEST(WatchdogTest, DeadlineExceededIsTransient)
{
    // The whole recovery story hinges on this inheritance: an overrun must
    // route through the same catch sites as an injected fault.
    Watchdog wd(0.001);
    EXPECT_THROW(wd.supervise("reduce",
                              [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); }),
                 faults::TransientError);
}

TEST(WatchdogTest, InjectedStallTripsTheDeadline)
{
    // The e2e composition: kind=stall fault inside a supervised section.
    faults::ScopedPlan install(
        faults::FaultPlan::parse("source.load:kind=stall,delay=0.03,after=0,count=1"));
    Watchdog wd(0.005);
    EXPECT_THROW(wd.supervise("source.load", [] { faults::stall_point("source.load"); }),
                 DeadlineExceeded);
    // The stall was consumed; a re-run (what a retry would do) passes.
    EXPECT_NO_THROW(wd.supervise("source.load", [] { faults::stall_point("source.load"); }));
}

}  // namespace
}  // namespace xct::integrity
