// Performance-layer tests (DESIGN.md §3e): the simd.hpp lane wrapper, the
// vectorised back-projection kernel vs the retained scalar Listing-1 loop,
// the fp32 filtering paths vs their double-precision references, the FFT
// plan cache, and the zero-allocation guarantee of the scratch pools on
// warm hot paths.
//
// Accuracy claims are property-style: randomized geometries (including the
// Table-4 calibration offsets sigma_u / sigma_v / sigma_cor), randomized
// sizes, with every bound stated relative to the field maximum and carrying
// margin over the empirically observed error.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <random>
#include <vector>

#include "backproj/kernel.hpp"
#include "backproj/reference.hpp"
#include "core/decompose.hpp"
#include "core/scratch.hpp"
#include "core/simd.hpp"
#include "fft/fft.hpp"
#include "filter/ramp.hpp"

namespace xct {
namespace {

float max_abs(std::span<const float> v)
{
    float m = 0.0f;
    for (float x : v) m = std::max(m, std::abs(x));
    return m;
}

// ---- lane wrapper ---------------------------------------------------------

TEST(SimdWrapper, BackendIsReported)
{
    EXPECT_GT(simd::kLanes, 0);
    const std::string name = simd::backend_name();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
}

TEST(SimdWrapper, LoadStoreRoundTrip)
{
    std::array<float, simd::kLanes> in{}, out{};
    for (int i = 0; i < simd::kLanes; ++i) in[static_cast<std::size_t>(i)] = 0.5f * i - 1.0f;
    simd::store(out.data(), simd::load(in.data()));
    EXPECT_EQ(in, out);
}

TEST(SimdWrapper, IotaSplatArithmetic)
{
    std::array<float, simd::kLanes> out{};
    // (iota * 2 + 3) - 1  ->  2i + 2
    const simd::VecF v = simd::iota() * simd::splat(2.0f) + simd::splat(3.0f) - simd::splat(1.0f);
    simd::store(out.data(), v);
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)], 2.0f * i + 2.0f) << i;
}

TEST(SimdWrapper, FmaddFloorMinMaxClamp)
{
    std::array<float, simd::kLanes> a{}, out{};
    for (int i = 0; i < simd::kLanes; ++i) a[static_cast<std::size_t>(i)] = 0.75f * i - 2.3f;
    const simd::VecF va = simd::load(a.data());

    simd::store(out.data(), simd::fmadd(va, simd::splat(2.0f), simd::splat(1.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_NEAR(out[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i)] * 2.0f + 1.0f,
                    1e-6f);

    simd::store(out.data(), simd::floor_(va));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                        std::floor(a[static_cast<std::size_t>(i)]));

    simd::store(out.data(), simd::clamp(va, simd::splat(-1.0f), simd::splat(1.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                        std::clamp(a[static_cast<std::size_t>(i)], -1.0f, 1.0f));

    simd::store(out.data(), simd::min_(va, simd::splat(0.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                        std::min(a[static_cast<std::size_t>(i)], 0.0f));

    simd::store(out.data(), simd::max_(va, simd::splat(0.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                        std::max(a[static_cast<std::size_t>(i)], 0.0f));
}

TEST(SimdWrapper, CompareBlendNone)
{
    std::array<float, simd::kLanes> out{};
    const simd::VecF v = simd::iota();  // 0..W-1
    const simd::Mask m = simd::cmp_ge(v, simd::splat(2.0f));
    simd::store(out.data(), simd::blend(m, simd::splat(1.0f), simd::splat(-1.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)], i >= 2 ? 1.0f : -1.0f) << i;

    EXPECT_FALSE(simd::none(m));
    EXPECT_TRUE(simd::none(simd::cmp_gt(v, simd::splat(1e9f))));
    // Mask conjunction.
    const simd::Mask both = simd::cmp_ge(v, simd::splat(1.0f)) & simd::cmp_le(v, simd::splat(1.0f));
    simd::store(out.data(), simd::blend(both, simd::splat(1.0f), simd::splat(0.0f)));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)], i == 1 ? 1.0f : 0.0f) << i;
}

TEST(SimdWrapper, ToIntTruncatesTowardZero)
{
    std::array<float, simd::kLanes> in{};
    std::array<std::int32_t, simd::kLanes> out{};
    for (int i = 0; i < simd::kLanes; ++i) in[static_cast<std::size_t>(i)] = 1.75f * i - 3.4f;
    simd::store_i(out.data(), simd::to_int(simd::load(in.data())));
    for (int i = 0; i < simd::kLanes; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)],
                  static_cast<std::int32_t>(in[static_cast<std::size_t>(i)]))
            << i;
}

TEST(SimdWrapper, GatherMatchesScalarIndexing)
{
    std::vector<float> table(64);
    std::vector<std::int32_t> itable(64);
    for (int i = 0; i < 64; ++i) {
        table[static_cast<std::size_t>(i)] = 3.0f * i + 0.25f;
        itable[static_cast<std::size_t>(i)] = 7 * i - 5;
    }
    std::array<std::int32_t, simd::kLanes> idx{};
    for (int i = 0; i < simd::kLanes; ++i) idx[static_cast<std::size_t>(i)] = (i * 13 + 7) % 64;
    const simd::VecI vidx = simd::load_i(idx.data());

    std::array<float, simd::kLanes> got{};
    simd::store(got.data(), simd::gather(table.data(), vidx));
    std::array<std::int32_t, simd::kLanes> goti{};
    simd::store_i(goti.data(), simd::gather_i(itable.data(), vidx));
    for (int i = 0; i < simd::kLanes; ++i) {
        EXPECT_FLOAT_EQ(got[static_cast<std::size_t>(i)],
                        table[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]);
        EXPECT_EQ(goti[static_cast<std::size_t>(i)],
                  itable[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]);
    }
}

// ---- SIMD vs scalar back-projection (randomized property test) ------------

CbctGeometry random_geometry(std::mt19937& rng)
{
    std::uniform_real_distribution<double> ud(0.0, 1.0);
    CbctGeometry g;
    g.dso = 80.0 + 40.0 * ud(rng);
    g.dsd = g.dso * (2.2 + 0.8 * ud(rng));
    g.num_proj = 12 + static_cast<index_t>(ud(rng) * 12.0);
    g.nu = 32 + 2 * static_cast<index_t>(ud(rng) * 12.0);
    g.nv = 24 + 2 * static_cast<index_t>(ud(rng) * 10.0);
    g.du = g.dv = 0.4 + 0.4 * ud(rng);
    const index_t n = 12 + 2 * static_cast<index_t>(ud(rng) * 8.0);
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz =
        CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, n) * (0.6 + 0.4 * ud(rng));
    // Table-4 calibration offsets (Fig. 7): detector shifts in +-1.5 px,
    // rotation-centre shift in +-2 mm.
    g.sigma_u = 3.0 * ud(rng) - 1.5;
    g.sigma_v = 3.0 * ud(rng) - 1.5;
    g.sigma_cor = 4.0 * ud(rng) - 2.0;
    return g;
}

ProjectionStack random_stack(const CbctGeometry& g, std::mt19937& rng)
{
    ProjectionStack p(g.num_proj, g.nv, g.nu);
    std::uniform_real_distribution<float> u(0.0f, 1.0f);
    for (float& v : p.span()) v = u(rng);
    return p;
}

sim::Texture3 make_texture(sim::Device& dev, const ProjectionStack& p, Range band)
{
    sim::Texture3 tex(dev, p.cols(), p.views(), band.length());
    std::vector<float> plane(static_cast<std::size_t>(p.cols() * p.views()));
    for (index_t v = band.lo; v < band.hi; ++v) {
        for (index_t s = 0; s < p.views(); ++s) {
            const auto row = p.row(s, v);
            std::copy(row.begin(), row.end(),
                      plane.begin() + static_cast<std::ptrdiff_t>(s * p.cols()));
        }
        tex.copy_planes(plane, v - band.lo, 1);
    }
    return tex;
}

TEST(SimdBackproj, MatchesScalarAcrossRandomGeometries)
{
    std::mt19937 rng(2024);
    for (int trial = 0; trial < 6; ++trial) {
        const CbctGeometry g = random_geometry(rng);
        const ProjectionStack p = random_stack(g, rng);
        const auto mats = projection_matrices(g);
        const backproj::MatrixPack pack{std::span<const Mat34>(mats)};

        sim::Device dev(256u << 20);
        const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
        Volume scalar(g.vol), vec(g.vol);
        backproj::backproject_streaming_scalar(tex, pack, scalar, backproj::StreamOffsets{0, 0},
                                               g.nu, g.nv);
        backproj::backproject_streaming(tex, pack, vec, backproj::StreamOffsets{0, 0}, g.nu,
                                        g.nv);

        const float tol = backproj::kSimdVsScalarRelBound * max_abs(scalar.span());
        ASSERT_GT(tol, 0.0f) << "degenerate trial " << trial;
        for (index_t i = 0; i < vec.count(); ++i)
            ASSERT_NEAR(vec.span()[static_cast<std::size_t>(i)],
                        scalar.span()[static_cast<std::size_t>(i)], tol)
                << "trial " << trial << " voxel " << i;
    }
}

TEST(SimdBackproj, MatchesScalarOnBandRestrictedSlabs)
{
    std::mt19937 rng(777);
    for (int trial = 0; trial < 3; ++trial) {
        const CbctGeometry g = random_geometry(rng);
        const ProjectionStack p = random_stack(g, rng);
        const auto mats = projection_matrices(g);
        const backproj::MatrixPack pack{std::span<const Mat34>(mats)};
        const Range slab{g.vol.z / 4, g.vol.z / 4 + g.vol.z / 2};
        const Range band = compute_ab(g, slab);

        sim::Device dev(256u << 20);
        const sim::Texture3 tex = make_texture(dev, p, band);
        const Dim3 sdim{g.vol.x, g.vol.y, slab.length()};
        Volume scalar(sdim), vec(sdim);
        const backproj::StreamOffsets off{slab.lo, band.lo};
        backproj::backproject_streaming_scalar(tex, pack, scalar, off, g.nu, g.nv);
        backproj::backproject_streaming(tex, pack, vec, off, g.nu, g.nv);

        const float tol = backproj::kSimdVsScalarRelBound * max_abs(scalar.span());
        for (index_t i = 0; i < vec.count(); ++i)
            ASSERT_NEAR(vec.span()[static_cast<std::size_t>(i)],
                        scalar.span()[static_cast<std::size_t>(i)], tol)
                << "trial " << trial << " voxel " << i;
    }
}

// ---- fp32 FFT vs double reference (randomized sizes) ----------------------

TEST(Fp32Fft, MatchesDoubleReferenceAcrossSizes)
{
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (index_t n : {8, 32, 128, 512, 2048}) {
        std::vector<std::complex<double>> d(static_cast<std::size_t>(n));
        std::vector<std::complex<float>> f(static_cast<std::size_t>(n));
        for (std::size_t i = 0; i < d.size(); ++i) {
            d[i] = {u(rng), u(rng)};
            f[i] = std::complex<float>(d[i]);
        }
        fft::transform_reference(d, false);
        fft::transform_f(f, false);
        double mag = 0.0;
        for (const auto& c : d) mag = std::max(mag, std::abs(c));
        // fp32 round-off grows ~ eps * log2(n); 1e-5 relative carries >10x
        // margin at n = 2048.
        const double tol = 1e-5 * mag;
        for (std::size_t i = 0; i < d.size(); ++i)
            ASSERT_NEAR(std::abs(std::complex<double>(f[i]) - d[i]), 0.0, tol)
                << "n=" << n << " bin " << i;
    }
}

TEST(Fp32Fft, InverseRoundTripRestoresSignal)
{
    std::mt19937 rng(123);
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    for (index_t n : {16, 256, 1024}) {
        std::vector<std::complex<float>> f(static_cast<std::size_t>(n));
        for (auto& c : f) c = {u(rng), u(rng)};
        const auto orig = f;
        fft::transform_f(f, false);
        fft::transform_f(f, true);
        for (std::size_t i = 0; i < f.size(); ++i)
            ASSERT_NEAR(std::abs(f[i] - orig[i]), 0.0f, 1e-5f) << "n=" << n << " bin " << i;
    }
}

TEST(PlanCache, ReturnsStableReferencePerSize)
{
    const fft::Plan& a = fft::plan_for(256);
    const fft::Plan& b = fft::plan_for(256);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.n, 256);
    EXPECT_EQ(a.bitrev.size(), 256u);
    EXPECT_EQ(a.twiddle_f.size(), 128u);
    EXPECT_EQ(a.twiddle_d.size(), 128u);
    // Stage-major layout: log2(n) stages, sum of len/2 roots = n - 1, and
    // each stage's table is the strided view of the root table laid dense.
    EXPECT_EQ(a.stage_offset.size(), 8u);
    EXPECT_EQ(a.stage_twiddle_f.size(), 255u);
    EXPECT_EQ(a.stage_twiddle_d.size(), 255u);
    for (std::size_t stage = 0, len = 2; len <= 256; len <<= 1, ++stage) {
        const std::size_t stride = 256 / len;
        for (std::size_t j = 0; j < len / 2; ++j) {
            ASSERT_EQ(a.stage_twiddle_d[a.stage_offset[stage] + j], a.twiddle_d[j * stride]);
            ASSERT_EQ(a.stage_twiddle_f[a.stage_offset[stage] + j], a.twiddle_f[j * stride]);
        }
    }
    const fft::Plan& c = fft::plan_for(64);
    EXPECT_NE(&a, &c);
}

TEST(PlanCache, PlannedDoubleMatchesReference)
{
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<std::complex<double>> a(512), b(512);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] = std::complex<double>{u(rng), u(rng)};
    fft::transform(a, false);
    fft::transform_reference(b, false);
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12) << i;
}

// ---- fp32 filtering vs double reference -----------------------------------

TEST(Fp32Filter, ApplyRowMatchesReferenceRow)
{
    std::mt19937 rng(31);
    std::uniform_real_distribution<float> u(0.0f, 2.0f);
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 48;
    g.nu = 96;
    g.nv = 40;
    g.du = g.dv = 0.5;
    g.vol = {48, 48, 48};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    const filter::FilterEngine eng(g, filter::Window::Hamming);

    for (int trial = 0; trial < 8; ++trial) {
        std::vector<float> row(static_cast<std::size_t>(g.nu));
        for (float& v : row) v = u(rng);
        std::vector<float> ref = row;
        const index_t vg = static_cast<index_t>(trial * 5) % g.nv;
        eng.apply_row(row, vg);
        eng.apply_row_reference(ref, vg);
        // fp32 transform vs double reference: bounded by a few ulp of the
        // padded-row scale; 1e-4 relative to the filtered maximum carries
        // ~20x margin on this size.
        const float tol = 1e-4f * std::max(1.0f, max_abs(ref));
        for (std::size_t i = 0; i < row.size(); ++i)
            ASSERT_NEAR(row[i], ref[i], tol) << "trial " << trial << " u " << i;
    }
}

TEST(Fp32Filter, RowConvolverBatchMatchesDoubleApply)
{
    std::mt19937 rng(41);
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    const index_t row_len = 72;
    const auto taps = filter::ramp_kernel(24, 0.5);
    const fft::RowConvolver conv(row_len, taps, static_cast<index_t>(taps.size() - 1) / 2);

    const index_t nrows = 5;  // odd: exercises the unpaired remainder row
    std::vector<float> rows(static_cast<std::size_t>(nrows * row_len));
    for (float& v : rows) v = u(rng);
    std::vector<float> ref = rows;

    conv.apply_batch(rows, nrows);
    for (index_t r = 0; r < nrows; ++r)
        conv.apply(std::span<float>(ref.data() + r * row_len, static_cast<std::size_t>(row_len)));

    const float tol = 1e-4f * std::max(1.0f, max_abs(ref));
    for (std::size_t i = 0; i < rows.size(); ++i) ASSERT_NEAR(rows[i], ref[i], tol) << i;
}

TEST(Fp32Filter, ReferencePathsAgreeBitwiseWithSeedAlgorithm)
{
    // apply_reference must remain the seed per-call path: double precision
    // throughout, so it agrees with convolve_same exactly.
    std::mt19937 rng(43);
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    const index_t row_len = 40;
    const auto taps = filter::ramp_kernel(12, 0.7);
    const fft::RowConvolver conv(row_len, taps, static_cast<index_t>(taps.size() - 1) / 2);
    std::vector<float> row(static_cast<std::size_t>(row_len));
    for (float& v : row) v = u(rng);
    const std::vector<float> direct =
        fft::convolve_same(row, taps, static_cast<index_t>(taps.size() - 1) / 2);
    conv.apply_reference(row);
    for (std::size_t i = 0; i < row.size(); ++i) ASSERT_FLOAT_EQ(row[i], direct[i]) << i;
}

// ---- zero-allocation guarantee on warm hot paths --------------------------

TEST(ScratchPool, RowConvolverApplyIsAllocationFreeWhenWarm)
{
    const auto taps = filter::ramp_kernel(16, 0.5);
    const fft::RowConvolver conv(64, taps, 16);
    std::vector<float> row(64, 1.0f);
    conv.apply(row);  // warm: populates the thread's free list
    const std::uint64_t before = scratch::heap_events();
    for (int i = 0; i < 10; ++i) conv.apply(row);
    EXPECT_EQ(scratch::heap_events() - before, 0u);
}

TEST(ScratchPool, KernelInnerLoopIsAllocationFreeWhenWarm)
{
    std::mt19937 rng(17);
    const CbctGeometry g = random_geometry(rng);
    const ProjectionStack p = random_stack(g, rng);
    const auto mats = projection_matrices(g);
    const backproj::MatrixPack pack{std::span<const Mat34>(mats)};
    sim::Device dev(256u << 20);
    const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
    Volume vol(g.vol);
    backproj::backproject_streaming(tex, pack, vol, backproj::StreamOffsets{0, 0}, g.nu, g.nv);
    const std::uint64_t before = scratch::heap_events();
    for (int i = 0; i < 3; ++i)
        backproj::backproject_streaming(tex, pack, vol, backproj::StreamOffsets{0, 0}, g.nu,
                                        g.nv);
    EXPECT_EQ(scratch::heap_events() - before, 0u);
}

TEST(ScratchPool, FilterEngineApplyIsAllocationFreeWhenWarm)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 32;
    g.nu = 64;
    g.nv = 16;
    g.du = g.dv = 0.5;
    g.vol = {32, 32, 32};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    const filter::FilterEngine eng(g);
    ProjectionStack stack(4, g.nv, g.nu, 1.0f);
    eng.apply(stack);  // warm every OpenMP worker's pool
    const std::uint64_t before = scratch::heap_events();
    for (int i = 0; i < 5; ++i) eng.apply(stack);
    EXPECT_EQ(scratch::heap_events() - before, 0u);
}

TEST(ScratchPool, BufferReusesReturnedCapacity)
{
    // Lease/return cycles of the same size must hit the free list.
    { scratch::Buffer<double> warm(333); }
    const std::uint64_t before = scratch::heap_events();
    for (int i = 0; i < 20; ++i) { scratch::Buffer<double> b(333); }
    EXPECT_EQ(scratch::heap_events() - before, 0u);
    // A larger request than anything pooled is a (counted) heap event.
    { scratch::Buffer<double> big(100000); }
    EXPECT_GE(scratch::heap_events() - before, 1u);
}

}  // namespace
}  // namespace xct
