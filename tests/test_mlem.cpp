// MLEM baseline tests: multiplicative updates, non-negativity, residual
// decrease, convergence, and the q8-texture precision ablation invariants.
#include <gtest/gtest.h>

#include "backproj/kernel.hpp"
#include "iterative/mlem.hpp"
#include "phantom/shepp_logan.hpp"

namespace xct::iterative {
namespace {

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 24;
    g.nu = 32;
    g.nv = 32;
    g.du = 1.2;
    g.dv = 1.2;
    g.vol = {16, 16, 16};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

TEST(Mlem, ResidualDecreases)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> ph{{1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack b = phantom::forward_project(ph, g);
    MlemConfig cfg;
    cfg.iterations = 10;
    const MlemResult r = reconstruct_mlem(g, b, cfg);
    ASSERT_EQ(r.residuals.size(), 10u);
    EXPECT_LT(r.residuals.back(), r.residuals.front() * 0.5);
}

TEST(Mlem, StaysNonNegative)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> ph{
        {1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0},
        {-0.7, 1.5, 1.5, 1.5, 0.0, 0.0, 0.0, 0.0},  // low-density core
    };
    const ProjectionStack b = phantom::forward_project(ph, g);
    MlemConfig cfg;
    cfg.iterations = 12;
    const MlemResult r = reconstruct_mlem(g, b, cfg);
    for (float v : r.volume.span()) ASSERT_GE(v, 0.0f);
}

TEST(Mlem, ConvergesTowardsPhantom)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> ph{{1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack b = phantom::forward_project(ph, g);
    MlemConfig cfg;
    cfg.iterations = 30;
    const MlemResult r = reconstruct_mlem(g, b, cfg);
    EXPECT_NEAR(r.volume.at(8, 8, 8), 1.0f, 0.25f);
    EXPECT_NEAR(r.volume.at(1, 1, 1), 0.0f, 0.1f);
}

TEST(Mlem, RejectsNegativeProjections)
{
    const CbctGeometry g = geo();
    ProjectionStack b(g.num_proj, g.nv, g.nu, -1.0f);
    EXPECT_THROW(reconstruct_mlem(g, b), std::invalid_argument);
}

TEST(Mlem, CallbackFires)
{
    const CbctGeometry g = geo();
    const ProjectionStack b(g.num_proj, g.nv, g.nu, 0.2f);
    MlemConfig cfg;
    cfg.iterations = 3;
    index_t n = 0;
    cfg.on_iteration = [&](index_t, double) { ++n; };
    reconstruct_mlem(g, b, cfg);
    EXPECT_EQ(n, 3);
}

// --- 8-bit texture precision (shared here to avoid another binary) ------

TEST(QuantizedTexture, DequantisesWithinOneStep)
{
    sim::Device dev(1 << 20);
    sim::QuantizedTexture3 tex(dev, 4, 1, 1, 0.0f, 10.0f);
    const std::vector<float> p{0.0f, 2.5f, 7.5f, 10.0f};
    tex.copy_planes(p, 0, 1);
    const float step = 10.0f / 255.0f;
    for (index_t i = 0; i < 4; ++i)
        EXPECT_NEAR(tex.fetch(i, 0, 0), p[static_cast<std::size_t>(i)], step);
}

TEST(QuantizedTexture, ClampsOutOfRangeValues)
{
    sim::Device dev(1 << 20);
    sim::QuantizedTexture3 tex(dev, 2, 1, 1, 0.0f, 1.0f);
    const std::vector<float> p{-5.0f, 5.0f};
    tex.copy_planes(p, 0, 1);
    EXPECT_FLOAT_EQ(tex.fetch(0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(tex.fetch(1, 0, 0), 1.0f);
}

TEST(QuantizedTexture, UsesOneBytePerTexel)
{
    sim::Device dev(1000);
    sim::QuantizedTexture3 tex(dev, 10, 10, 10, 0.0f, 1.0f);
    EXPECT_EQ(dev.used(), 1000u);  // vs 4000 for fp32
}

TEST(QuantizedTexture, Q8KernelApproximatesFp32Kernel)
{
    const CbctGeometry g = geo();
    const auto mats = projection_matrices(g);
    ProjectionStack p(g.num_proj, g.nv, g.nu);
    for (index_t i = 0; i < p.count(); ++i)
        p.span()[static_cast<std::size_t>(i)] =
            0.5f + 0.5f * std::sin(static_cast<float>(i) * 0.01f);

    auto fill = [&](auto& tex) {
        std::vector<float> buf(static_cast<std::size_t>(g.nu * g.num_proj));
        for (index_t v = 0; v < g.nv; ++v) {
            for (index_t s = 0; s < g.num_proj; ++s) {
                const auto row = p.row(s, v);
                std::copy(row.begin(), row.end(),
                          buf.begin() + static_cast<std::ptrdiff_t>(s * g.nu));
            }
            tex.copy_planes(buf, v, 1);
        }
    };

    sim::Device dev(64u << 20);
    sim::Texture3 tex32(dev, g.nu, g.num_proj, g.nv);
    fill(tex32);
    sim::QuantizedTexture3 tex8(dev, g.nu, g.num_proj, g.nv, 0.0f, 1.0f);
    fill(tex8);

    Volume v32(g.vol), v8(g.vol);
    backproj::backproject_streaming(tex32, mats, v32, backproj::StreamOffsets{0, 0}, g.nu, g.nv);
    backproj::backproject_streaming_q8(tex8, mats, v8, backproj::StreamOffsets{0, 0}, g.nu, g.nv);

    // Close (quantisation step ~0.004 over ~24 views) but NOT equal — the
    // 8-bit path must show measurable error, which is the paper's point.
    double max_err = 0.0;
    for (index_t i = 0; i < v32.count(); ++i)
        max_err = std::max(max_err, std::abs(static_cast<double>(
                                        v8.span()[static_cast<std::size_t>(i)] -
                                        v32.span()[static_cast<std::size_t>(i)])));
    EXPECT_LT(max_err, 0.1);
    EXPECT_GT(max_err, 1e-4);
}

}  // namespace
}  // namespace xct::iterative
