// Beer-law preprocessing tests (Eq. 1) and its synthetic inverse.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/preprocess.hpp"

namespace xct {
namespace {

TEST(BeerLaw, FullTransmissionGivesZeroAttenuation)
{
    std::vector<float> c{65536.0f};
    beer_law(c, BeerLawScalar{0.0f, 65536.0f});
    EXPECT_NEAR(c[0], 0.0f, 1e-6f);
}

TEST(BeerLaw, HalfTransmissionGivesLogTwo)
{
    std::vector<float> c{32768.0f};
    beer_law(c, BeerLawScalar{0.0f, 65536.0f});
    EXPECT_NEAR(c[0], std::log(2.0f), 1e-5f);
}

TEST(BeerLaw, DarkOffsetIsSubtracted)
{
    // (lambda - dark) / (blank - dark) = (300-100)/(500-100) = 0.5
    std::vector<float> c{300.0f};
    beer_law(c, BeerLawScalar{100.0f, 500.0f});
    EXPECT_NEAR(c[0], std::log(2.0f), 1e-5f);
}

TEST(BeerLaw, DeadPixelStaysFinite)
{
    std::vector<float> c{0.0f, -5.0f};
    beer_law(c, BeerLawScalar{100.0f, 500.0f});
    EXPECT_TRUE(std::isfinite(c[0]));
    EXPECT_TRUE(std::isfinite(c[1]));
    EXPECT_GT(c[0], 10.0f);  // large attenuation, not inf
}

TEST(BeerLaw, RejectsDegenerateCalibration)
{
    std::vector<float> c{1.0f};
    EXPECT_THROW(beer_law(c, BeerLawScalar{5.0f, 5.0f}), std::invalid_argument);
}

TEST(BeerLaw, PerPixelCalibration)
{
    std::vector<float> counts{50.0f, 200.0f, 50.0f, 200.0f};  // two 2-pixel projections
    std::vector<float> dark{0.0f, 100.0f};
    std::vector<float> blank{100.0f, 300.0f};
    beer_law(counts, dark, blank);
    EXPECT_NEAR(counts[0], std::log(2.0f), 1e-5f);
    EXPECT_NEAR(counts[1], std::log(2.0f), 1e-5f);
    EXPECT_NEAR(counts[2], counts[0], 1e-6f);  // same calibration per pixel position
}

TEST(BeerLaw, PerPixelRejectsMismatchedSizes)
{
    std::vector<float> counts{1.0f, 2.0f, 3.0f};
    std::vector<float> dark{0.0f, 0.0f};
    std::vector<float> blank{10.0f, 10.0f};
    EXPECT_THROW(beer_law(counts, dark, blank), std::invalid_argument);
}

TEST(BeerLaw, RoundTripWithInverse)
{
    const BeerLawScalar cal{200.0f, 60000.0f};
    std::vector<float> p{0.0f, 0.3f, 1.7f, 4.2f};
    std::vector<float> counts = p;
    inverse_beer_law(counts, cal);
    beer_law(counts, cal);
    for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(counts[i], p[i], 1e-3f);
}

TEST(BeerLaw, StackOverloadProcessesEveryPixel)
{
    ProjectionStack st(2, 3, 4, 32768.0f);
    beer_law(st, BeerLawScalar{0.0f, 65536.0f});
    for (index_t s = 0; s < 2; ++s)
        for (index_t v = 0; v < 3; ++v)
            for (index_t u = 0; u < 4; ++u) EXPECT_NEAR(st.at(s, v, u), std::log(2.0f), 1e-5f);
}

}  // namespace
}  // namespace xct
