// Prior-work baseline tests (Table 2): the iFDK-style and Lu-style
// drivers must be numerically correct AND exhibit the capability limits
// and redundant traffic the paper attributes to them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "backproj/kernel.hpp"
#include "backproj/reference.hpp"
#include "core/decompose.hpp"
#include "recon/baseline.hpp"

namespace xct::recon {
namespace {

float max_abs(std::span<const float> s)
{
    float m = 0.0f;
    for (float v : s) m = std::max(m, std::abs(v));
    return m;
}

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 24;
    g.nu = 40;
    g.nv = 36;
    g.du = 0.8;
    g.dv = 0.8;
    g.vol = {20, 20, 18};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

ProjectionStack random_stack(const CbctGeometry& g, unsigned seed)
{
    ProjectionStack p(g.num_proj, g.nv, g.nu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> u(0.0f, 1.0f);
    for (float& v : p.span()) v = u(rng);
    return p;
}

TEST(IfdkStyle, MatchesReference)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 1);
    const auto mats = projection_matrices(g);
    Volume ref(g.vol);
    backproj::backproject_reference(p, mats, g, ref);

    // The drivers run the production (possibly SIMD) streaming kernel, so
    // the bound is the documented SIMD-vs-scalar envelope, not exactness.
    const float tol = backproj::kSimdVsScalarRelBound * max_abs(ref.span());
    for (index_t nr : {1, 2, 4}) {
        Volume out(g.vol);
        backproject_ifdk_style(p, mats, g, out, nr, 256u << 20);
        for (index_t i = 0; i < out.count(); ++i)
            ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                        ref.span()[static_cast<std::size_t>(i)], tol)
                << "nr=" << nr;
    }
}

TEST(IfdkStyle, FailsWhenVolumeExceedsDevice)
{
    // Table 2: iFDK's per-GPU output is limited by device memory.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 2);
    const auto mats = projection_matrices(g);
    Volume out(g.vol);
    const std::size_t too_small = static_cast<std::size_t>(g.vol.count()) * sizeof(float) - 1;
    EXPECT_THROW(backproject_ifdk_style(p, mats, g, out, 2, too_small), sim::DeviceOutOfMemory);
}

TEST(IfdkStyle, CommTrafficGrowsLinearlyWithRanks)
{
    // The O(N) communication row of Table 2: combining results moves Nr
    // full volumes.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 3);
    const auto mats = projection_matrices(g);
    Volume out(g.vol);
    const auto s2 = backproject_ifdk_style(p, mats, g, out, 2, 256u << 20);
    const auto s4 = backproject_ifdk_style(p, mats, g, out, 4, 256u << 20);
    EXPECT_EQ(s4.comm_bytes, 2 * s2.comm_bytes);
}

TEST(LuStyle, MatchesReference)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 4);
    const auto mats = projection_matrices(g);
    Volume ref(g.vol);
    backproj::backproject_reference(p, mats, g, ref);

    Volume out(g.vol);
    backproject_lu_style(p, mats, g, out, /*chunk_slices=*/5, 256u << 20);
    const float tol = backproj::kSimdVsScalarRelBound * max_abs(ref.span());
    for (index_t i = 0; i < out.count(); ++i)
        ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], tol);
}

TEST(LuStyle, H2dTrafficGrowsWithChunkCount)
{
    // The redundancy the streaming decomposition eliminates: every chunk
    // re-uploads the whole projection set.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 5);
    const auto mats = projection_matrices(g);
    Volume out(g.vol);
    const auto whole = backproject_lu_style(p, mats, g, out, g.vol.z, 256u << 20);
    const auto chunked = backproject_lu_style(p, mats, g, out, 3, 256u << 20);
    EXPECT_EQ(whole.redundancy, 1);
    EXPECT_EQ(chunked.redundancy, 6);
    // Each of the 6 chunks re-uploads the complete projection set.
    EXPECT_EQ(chunked.h2d_bytes, 6 * whole.h2d_bytes);
}

TEST(LuStyle, StreamingSchemeMovesLessThanLu)
{
    // Ours-vs-Lu traffic comparison on the same problem: the union of row
    // bands (each moved once) is far below chunks x full frames.
    const CbctGeometry g = geo();
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 3);
    index_t delta_rows = 0;
    for (const auto& pl : plans) delta_rows += pl.delta.length();
    const std::uint64_t ours = static_cast<std::uint64_t>(delta_rows) *
                               static_cast<std::uint64_t>(g.num_proj * g.nu) * sizeof(float);

    const ProjectionStack p = random_stack(g, 6);
    const auto mats = projection_matrices(g);
    Volume out(g.vol);
    const auto lu = backproject_lu_style(p, mats, g, out, 3, 256u << 20);
    EXPECT_LT(ours, lu.h2d_bytes / 4);
}

}  // namespace
}  // namespace xct::recon
