// Autotuner tests (src/autotune, DESIGN.md §3j): planner determinism and
// its never-worse-than-must_score guarantee, device-budget feasibility,
// the q8 wire-byte model, and the calibrator — aggregate-ratio fitting,
// BENCH-file seeding, run-stat folding, and the machine-JSON artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "autotune/calibrate.hpp"
#include "autotune/planner.hpp"

namespace xct::autotune {
namespace {

CbctGeometry geo(index_t n = 64, index_t np = 256)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.4;
    g.dv = 0.4;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

JobShape job_shape()
{
    JobShape job;
    job.geometry = geo();
    job.rank_budget = 16;
    job.device_capacity = 64u << 20;
    return job;
}

// ---- planner -------------------------------------------------------------

TEST(Planner, IsDeterministicAndScoresTheWholeFeasibleLattice)
{
    const JobShape job = job_shape();
    const auto m = perfmodel::MachineParams::abci_v100();
    const Plan a = plan_job(job, m);
    const Plan b = plan_job(job, m);
    EXPECT_EQ(a.layout.num_groups, b.layout.num_groups);
    EXPECT_EQ(a.layout.ranks_per_group, b.layout.ranks_per_group);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.queue_depth, b.queue_depth);
    EXPECT_EQ(a.candidates_scored, b.candidates_scored);
    EXPECT_DOUBLE_EQ(a.predicted_runtime_s, b.predicted_runtime_s);
    EXPECT_GT(a.candidates_scored, 0);
    EXPECT_GT(a.predicted_runtime_s, 0.0);
    EXPECT_GT(a.predicted_gups, 0.0);
    EXPECT_LE(a.layout.nranks(), job.rank_budget);
    EXPECT_TRUE(feasible(job, Candidate{a.layout, a.batches, a.queue_depth}));
}

TEST(Planner, NeverPicksWorseThanAMustScoreCandidate)
{
    // The soak scheduler and xct_recon --autotune always must_score the
    // fixed CLI shape; the plan's predicted runtime may not exceed it.
    const JobShape job = job_shape();
    const auto m = perfmodel::MachineParams::abci_v100();
    const Candidate fixed{GroupLayout{2, 2}, 8, 2};
    ASSERT_TRUE(feasible(job, fixed));
    const Plan plan = plan_job(job, m, {fixed});
    EXPECT_LE(plan.predicted_runtime_s, predict_runtime(job, fixed, m) + 1e-15);
}

TEST(Planner, PredictRuntimeMatchesThePlansOwnScore)
{
    const JobShape job = job_shape();
    const auto m = perfmodel::MachineParams::abci_v100();
    const Plan plan = plan_job(job, m);
    const Candidate picked{plan.layout, plan.batches, plan.queue_depth};
    EXPECT_DOUBLE_EQ(predict_runtime(job, picked, m), plan.predicted_runtime_s);
}

TEST(Planner, ThrowsWhenNothingFitsTheDeviceBudget)
{
    JobShape job = job_shape();
    job.device_capacity = 1024;  // nothing fits 1 KiB
    EXPECT_FALSE(feasible(job, Candidate{GroupLayout{2, 2}, 8, 2}));
    EXPECT_THROW(plan_job(job, perfmodel::MachineParams::abci_v100()), std::invalid_argument);
}

TEST(Planner, FeasibilityRejectsMalformedShapes)
{
    const JobShape job = job_shape();
    EXPECT_FALSE(feasible(job, Candidate{GroupLayout{0, 2}, 8, 2}));
    EXPECT_FALSE(feasible(job, Candidate{GroupLayout{2, 2}, 0, 2}));
    EXPECT_FALSE(feasible(job, Candidate{GroupLayout{2, 2}, 8, 0}));
    // More groups than slices cannot be laid out.
    EXPECT_FALSE(feasible(job, Candidate{GroupLayout{job.geometry.vol.z * 2, 1}, 8, 2}));
}

TEST(Planner, Q8WireBytesAreAQuarterOfRaw)
{
    const CbctGeometry g = geo();
    const GroupLayout layout{2, 2};
    const std::uint64_t raw = h2d_wire_bytes(g, layout, 8, io::BandCodec::Raw);
    const std::uint64_t q8 = h2d_wire_bytes(g, layout, 8, io::BandCodec::Q8);
    EXPECT_GT(q8, 0u);
    EXPECT_EQ(raw, q8 * sizeof(float));  // one byte per texel vs fp32
}

TEST(Planner, PlanCarriesTheJobCodecIntoItsByteModel)
{
    JobShape job = job_shape();
    const auto m = perfmodel::MachineParams::abci_v100();
    const Plan raw = plan_job(job, m);
    job.codec = io::BandCodec::Q8;
    const Plan q8 = plan_job(job, m);
    EXPECT_EQ(raw.codec, io::BandCodec::Raw);
    EXPECT_EQ(q8.codec, io::BandCodec::Q8);
    EXPECT_EQ(h2d_wire_bytes(job.geometry, q8.layout, q8.batches, io::BandCodec::Q8),
              q8.predicted_h2d_bytes);
    // Same layout or not, compression may only shrink the modelled bytes.
    EXPECT_LT(q8.predicted_h2d_bytes, raw.predicted_h2d_bytes);
}

TEST(Planner, SummaryNamesThePick)
{
    const Plan plan = plan_job(job_shape(), perfmodel::MachineParams::abci_v100());
    const std::string s = plan_summary(plan);
    EXPECT_NE(s.find("ng="), std::string::npos);
    EXPECT_NE(s.find("codec=raw"), std::string::npos);
    EXPECT_NE(s.find("candidates"), std::string::npos);
}

// ---- calibrator ----------------------------------------------------------

TEST(Calibrate, FitIsTheAggregateRatioAndKeepsUnmeasuredRates)
{
    Calibrator cal;
    EXPECT_EQ(cal.samples(), 0u);
    // Two observations of the same rate aggregate time-weighted:
    // (3e9 + 1e9) work over (1 + 1) seconds = 2 giga-units/s.
    cal.observe(Param::ThBp, 3e9, 1.0);
    cal.observe(Param::ThBp, 1e9, 1.0);
    cal.observe(Param::BwH2d, 12e9, 2.0);
    EXPECT_EQ(cal.samples(), 3u);

    const auto base = perfmodel::MachineParams::abci_v100();
    const auto m = cal.fit(base);
    EXPECT_DOUBLE_EQ(m.th_bp_gups, 2.0);
    EXPECT_DOUBLE_EQ(m.bw_h2d_gbps, 6.0);
    // Everything unobserved stays at the base machine.
    EXPECT_DOUBLE_EQ(m.bw_load_gbps, base.bw_load_gbps);
    EXPECT_DOUBLE_EQ(m.th_flt_geps, base.th_flt_geps);
    EXPECT_DOUBLE_EQ(m.bw_d2h_gbps, base.bw_d2h_gbps);
}

TEST(Calibrate, IgnoresDegenerateObservations)
{
    Calibrator cal;
    cal.observe(Param::ThFlt, 0.0, 1.0);
    cal.observe(Param::ThFlt, 1e9, 0.0);
    cal.observe(Param::ThFlt, -1e9, 1.0);
    EXPECT_EQ(cal.samples(), 0u);
}

TEST(Calibrate, SeedsKernelRatesFromABenchFile)
{
    const auto tmp = std::filesystem::temp_directory_path() / "xct_cal_bench_test.json";
    std::ofstream(tmp) << "{\n"
                          "  \"backproj\": {\"updates_per_s_simd\": 2.5e9,\n"
                          "                 \"updates_per_s_scalar\": 1e9},\n"
                          "  \"filter\": {\"elems_per_s_fp32\": 5e8}\n"
                          "}\n";
    Calibrator cal;
    cal.observe_bench_file(tmp.string());
    const auto m = cal.fit(perfmodel::MachineParams::abci_v100());
    // simd wins over scalar when both are present.
    EXPECT_DOUBLE_EQ(m.th_bp_gups, 2.5);
    EXPECT_DOUBLE_EQ(m.th_flt_geps, 0.5);
    std::filesystem::remove(tmp);

    EXPECT_THROW(cal.observe_bench_file("/nonexistent/bench.json"), std::runtime_error);
}

TEST(Calibrate, FoldsRunStatsWithModelConsistentWorkTerms)
{
    perfmodel::RunConfig rc;
    rc.geometry = geo(32, 64);
    rc.layout = GroupLayout{2, 2};
    rc.batches = 4;

    MeasuredRank r;
    r.rank_index = 0;
    r.load_s = 0.5;
    r.filter_s = 0.25;
    r.bp_s = 1.0;
    r.h2d_bytes = 4'000'000'000ull;
    r.h2d_s = 2.0;
    r.d2h_bytes = 1'000'000'000ull;
    r.d2h_s = 1.0;
    Calibrator cal;
    cal.observe_run(rc, {r});
    EXPECT_EQ(cal.samples(), 5u);  // load, filter, bp, h2d, d2h

    const auto base = perfmodel::MachineParams::abci_v100();
    const auto m = cal.fit(base);
    // Link rates use the measured byte totals directly.
    EXPECT_DOUBLE_EQ(m.bw_h2d_gbps, 2.0);
    EXPECT_DOUBLE_EQ(m.bw_d2h_gbps, 1.0);
    // Stage rates come out positive and displace the base guess.
    EXPECT_GT(m.th_bp_gups, 0.0);
    EXPECT_GT(m.th_flt_geps, 0.0);
    EXPECT_GT(m.bw_load_gbps, 0.0);
    EXPECT_NE(m.th_bp_gups, base.th_bp_gups);
}

TEST(Calibrate, MachineJsonRoundTripsAndValidates)
{
    perfmodel::MachineParams m = perfmodel::MachineParams::abci_a100();
    m.bw_h2d_gbps = 11.75;
    const auto tmp = std::filesystem::temp_directory_path() / "xct_machine_test.json";
    write_machine_json(tmp.string(), m);
    EXPECT_NE(machine_json(m).find("xct.machine.v1"), std::string::npos);

    const perfmodel::MachineParams back = read_machine_json(tmp.string());
    EXPECT_DOUBLE_EQ(back.bw_load_gbps, m.bw_load_gbps);
    EXPECT_DOUBLE_EQ(back.bw_store_gbps, m.bw_store_gbps);
    EXPECT_DOUBLE_EQ(back.th_flt_geps, m.th_flt_geps);
    EXPECT_DOUBLE_EQ(back.th_bp_gups, m.th_bp_gups);
    EXPECT_DOUBLE_EQ(back.th_reduce_gbps, m.th_reduce_gbps);
    EXPECT_DOUBLE_EQ(back.bw_h2d_gbps, 11.75);
    EXPECT_DOUBLE_EQ(back.bw_d2h_gbps, m.bw_d2h_gbps);

    // Missing file, missing key, non-positive value: all loud failures.
    EXPECT_THROW(read_machine_json("/nonexistent/machine.json"), std::runtime_error);
    std::ofstream(tmp) << "{\"schema\": \"xct.machine.v1\", \"bw_load_gbps\": 1.0}\n";
    EXPECT_THROW(read_machine_json(tmp.string()), std::runtime_error);
    std::ofstream(tmp) << machine_json(m);
    {
        std::string text = machine_json(m);
        const auto at = text.find("\"th_bp_gups\": ");
        text.replace(at, text.find(',', at) - at, "\"th_bp_gups\": -1");
        std::ofstream(tmp) << text;
    }
    EXPECT_THROW(read_machine_json(tmp.string()), std::runtime_error);
    std::filesystem::remove(tmp);
}

// ---- calibrate -> plan loop ----------------------------------------------

TEST(Autotune, CalibratedMachineRescoresThePlanCoherently)
{
    // A machine with 4x the back-projection rate cannot predict a slower
    // runtime for the same candidate — the closed loop (measure, fit,
    // re-plan) must move predictions in the physical direction.
    const JobShape job = job_shape();
    const auto base = perfmodel::MachineParams::abci_v100();
    Calibrator cal;
    cal.observe(Param::ThBp, base.th_bp_gups * 4e9, 1.0);
    const auto fast = cal.fit(base);
    const Candidate c{GroupLayout{2, 2}, 8, 2};
    EXPECT_LE(predict_runtime(job, c, fast), predict_runtime(job, c, base));
    // And the planner still returns a feasible pick under the new machine.
    const Plan plan = plan_job(job, fast, {c});
    EXPECT_LE(plan.predicted_runtime_s, predict_runtime(job, c, fast) + 1e-15);
}

}  // namespace
}  // namespace xct::autotune
