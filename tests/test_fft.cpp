// FFT substrate tests: transform correctness against a naive DFT,
// round-trip identities, and convolution against direct summation.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

#include "fft/fft.hpp"

namespace xct::fft {
namespace {

std::vector<std::complex<double>> naive_dft(std::span<const std::complex<double>> x, bool inverse)
{
    const std::size_t n = x.size();
    std::vector<std::complex<double>> out(n);
    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> s{0.0, 0.0};
        for (std::size_t t = 0; t < n; ++t) {
            const double ang = sign * 2.0 * std::numbers::pi * static_cast<double>(k * t) /
                               static_cast<double>(n);
            s += x[t] * std::complex<double>(std::cos(ang), std::sin(ang));
        }
        out[k] = inverse ? s / static_cast<double>(n) : s;
    }
    return out;
}

TEST(NextPow2, Values)
{
    EXPECT_EQ(next_pow2(1), 1);
    EXPECT_EQ(next_pow2(2), 2);
    EXPECT_EQ(next_pow2(3), 4);
    EXPECT_EQ(next_pow2(1023), 1024);
    EXPECT_EQ(next_pow2(1024), 1024);
    EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(IsPow2, Values)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
}

TEST(Transform, RejectsNonPowerOfTwo)
{
    std::vector<std::complex<double>> x(6);
    EXPECT_THROW(transform(x, false), std::invalid_argument);
}

TEST(Transform, SizeOneIsIdentity)
{
    std::vector<std::complex<double>> x{{3.0, -1.0}};
    transform(x, false);
    EXPECT_DOUBLE_EQ(x[0].real(), 3.0);
    EXPECT_DOUBLE_EQ(x[0].imag(), -1.0);
}

TEST(Transform, ImpulseHasFlatSpectrum)
{
    std::vector<std::complex<double>> x(8, {0.0, 0.0});
    x[0] = {1.0, 0.0};
    transform(x, false);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Transform, DcSignalConcentratesInBinZero)
{
    std::vector<std::complex<double>> x(16, {2.0, 0.0});
    transform(x, false);
    EXPECT_NEAR(x[0].real(), 32.0, 1e-12);
    for (std::size_t k = 1; k < 16; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

class FftDftMatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftDftMatch, ForwardMatchesNaiveDft)
{
    const std::size_t n = GetParam();
    std::mt19937 rng(n);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<std::complex<double>> x(n);
    for (auto& v : x) v = {u(rng), u(rng)};
    const auto expect = naive_dft(x, false);
    transform(x, false);
    for (std::size_t k = 0; k < n; ++k) {
        ASSERT_NEAR(x[k].real(), expect[k].real(), 1e-9 * static_cast<double>(n));
        ASSERT_NEAR(x[k].imag(), expect[k].imag(), 1e-9 * static_cast<double>(n));
    }
}

TEST_P(FftDftMatch, RoundTripIsIdentity)
{
    const std::size_t n = GetParam();
    std::mt19937 rng(n + 1);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<std::complex<double>> x(n);
    for (auto& v : x) v = {u(rng), u(rng)};
    const auto orig = x;
    transform(x, false);
    transform(x, true);
    for (std::size_t k = 0; k < n; ++k) {
        ASSERT_NEAR(x[k].real(), orig[k].real(), 1e-10);
        ASSERT_NEAR(x[k].imag(), orig[k].imag(), 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftDftMatch, ::testing::Values(2u, 4u, 8u, 32u, 128u, 512u));

TEST(RealForward, PadsWithZeros)
{
    std::vector<float> sig{1.0f, 2.0f, 3.0f};
    const auto spec = real_forward(sig, 8);
    ASSERT_EQ(spec.size(), 8u);
    // DC bin = sum of samples.
    EXPECT_NEAR(spec[0].real(), 6.0, 1e-12);
    // Conjugate symmetry of a real signal.
    for (std::size_t k = 1; k < 4; ++k) {
        EXPECT_NEAR(spec[k].real(), spec[8 - k].real(), 1e-12);
        EXPECT_NEAR(spec[k].imag(), -spec[8 - k].imag(), 1e-12);
    }
}

std::vector<float> naive_convolve_same(std::span<const float> sig, std::span<const float> ker,
                                       index_t offset)
{
    std::vector<float> out(sig.size(), 0.0f);
    for (std::size_t i = 0; i < sig.size(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < ker.size(); ++j) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(i) +
                                       static_cast<std::ptrdiff_t>(offset) -
                                       static_cast<std::ptrdiff_t>(j);
            if (src >= 0 && src < static_cast<std::ptrdiff_t>(sig.size()))
                acc += static_cast<double>(sig[static_cast<std::size_t>(src)]) * ker[j];
        }
        out[i] = static_cast<float>(acc);
    }
    return out;
}

class ConvolveSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvolveSweep, MatchesDirectSummation)
{
    const auto [siglen, kerlen] = GetParam();
    std::mt19937 rng(static_cast<unsigned>(siglen * 131 + kerlen));
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    std::vector<float> sig(static_cast<std::size_t>(siglen));
    std::vector<float> ker(static_cast<std::size_t>(kerlen));
    for (auto& v : sig) v = u(rng);
    for (auto& v : ker) v = u(rng);
    const index_t offset = (kerlen - 1) / 2;

    const auto fftres = convolve_same(sig, ker, offset);
    const auto direct = naive_convolve_same(sig, ker, offset);
    ASSERT_EQ(fftres.size(), direct.size());
    for (std::size_t i = 0; i < fftres.size(); ++i) ASSERT_NEAR(fftres[i], direct[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvolveSweep,
                         ::testing::Combine(::testing::Values(8, 33, 100, 257),
                                            ::testing::Values(1, 3, 15, 65)));

TEST(RowConvolver, ReusableAcrossRows)
{
    std::vector<float> ker{0.25f, 0.5f, 0.25f};
    RowConvolver conv(16, ker, 1);
    std::vector<float> a(16, 1.0f);
    conv.apply(a);
    // Interior of a constant signal convolved with a unit-sum kernel stays 1.
    for (std::size_t i = 1; i < 15; ++i) EXPECT_NEAR(a[i], 1.0f, 1e-5f);
    // Edges lose the out-of-range tap.
    EXPECT_NEAR(a[0], 0.75f, 1e-5f);
    EXPECT_NEAR(a[15], 0.75f, 1e-5f);
}

TEST(RowConvolver, RejectsWrongRowLength)
{
    std::vector<float> ker{1.0f};
    RowConvolver conv(8, ker, 0);
    std::vector<float> row(9, 0.0f);
    EXPECT_THROW(conv.apply(row), std::invalid_argument);
}

TEST(MultiplySpectra, RejectsSizeMismatch)
{
    std::vector<std::complex<double>> a(4), b(8);
    EXPECT_THROW(multiply_spectra(a, b), std::invalid_argument);
}

TEST(Transform, ReferencePathMatchesNaiveDft)
{
    // transform_reference is the retained seed algorithm (per-call twiddle
    // recurrence); it must stay exact so the planned paths can be bounded
    // against it.
    std::mt19937 rng(61);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<std::complex<double>> x(64);
    for (auto& c : x) c = {u(rng), u(rng)};
    const auto want = naive_dft(x, false);
    transform_reference(x, false);
    for (std::size_t k = 0; k < x.size(); ++k) {
        ASSERT_NEAR(x[k].real(), want[k].real(), 1e-9) << k;
        ASSERT_NEAR(x[k].imag(), want[k].imag(), 1e-9) << k;
    }
}

TEST(Transform, SinglePrecisionMatchesNaiveDft)
{
    std::mt19937 rng(62);
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    std::vector<std::complex<float>> f(64);
    std::vector<std::complex<double>> d(64);
    for (std::size_t i = 0; i < f.size(); ++i) {
        f[i] = {u(rng), u(rng)};
        d[i] = std::complex<double>(f[i]);
    }
    const auto want = naive_dft(d, false);
    transform_f(f, false);
    for (std::size_t k = 0; k < f.size(); ++k)
        ASSERT_NEAR(std::abs(std::complex<double>(f[k]) - want[k]), 0.0, 1e-4) << k;
}

TEST(RealForward, SinglePrecisionIsPerBinRounding)
{
    // real_forward_f computes in double and rounds each bin once, so every
    // bin equals the float-cast of the double spectrum exactly.
    std::mt19937 rng(63);
    std::uniform_real_distribution<float> u(-2.0f, 2.0f);
    std::vector<float> sig(40);
    for (float& v : sig) v = u(rng);
    const auto d = real_forward(sig, 64);
    const auto f = real_forward_f(sig, 64);
    ASSERT_EQ(d.size(), f.size());
    for (std::size_t k = 0; k < d.size(); ++k) {
        ASSERT_EQ(f[k].real(), static_cast<float>(d[k].real())) << k;
        ASSERT_EQ(f[k].imag(), static_cast<float>(d[k].imag())) << k;
    }
}

}  // namespace
}  // namespace xct::fft
