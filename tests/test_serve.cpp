// Serving-layer tests (DESIGN.md §3k): the crash-durable journal, the
// perfmodel-priced admission control, and the multi-tenant engine's
// scheduling, cancellation, deadline and overload behaviour — including
// the tentpole guarantee that a killed-and-restarted daemon reconstructs
// volumes bitwise identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/cancel.hpp"
#include "faults/fault.hpp"
#include "recon/session.hpp"
#include "serve/admission.hpp"
#include "serve/engine.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace xct::serve {
namespace {

std::filesystem::path fresh_dir(const std::string& name)
{
    const auto dir = std::filesystem::temp_directory_path() / ("xct_serve_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

CbctGeometry geo(index_t n = 16, index_t np = 16)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

JobSpec small_spec()
{
    JobSpec s;
    s.geometry = geo();
    s.batches = 4;
    return s;
}

EngineConfig engine_config(const std::filesystem::path& spool)
{
    EngineConfig cfg;
    cfg.spool = spool;
    cfg.workers = 1;
    cfg.fsync_journal = false;  // durability is the journal's own test
    return cfg;
}

std::uint64_t counter_value(const char* name)
{
    return telemetry::registry().counter(name).value();
}

/// Poll until `pred` holds or `timeout_s` elapses; true when it held.
bool eventually(double timeout_s, const std::function<bool()>& pred)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

// ---- journal ------------------------------------------------------------

TEST(ServeJournal, RoundTripSurvivesReopen)
{
    const auto dir = fresh_dir("journal_roundtrip");
    const auto path = dir / "journal.xjl";
    {
        Journal j(path);
        EXPECT_TRUE(j.recovered().empty());
        j.append(RecordType::Submit, 1, "{\"spec\":true}");
        j.append(RecordType::Accept, 1, "priced");
        j.append(RecordType::Done, 1, "/out/vol");
    }
    Journal j2(path);
    ASSERT_EQ(j2.recovered().size(), 3u);
    EXPECT_EQ(j2.truncated_frames(), 0u);
    EXPECT_EQ(j2.recovered()[0].type, RecordType::Submit);
    EXPECT_EQ(j2.recovered()[0].job, 1u);
    EXPECT_EQ(j2.recovered()[0].payload, "{\"spec\":true}");
    EXPECT_EQ(j2.recovered()[2].type, RecordType::Done);
    EXPECT_EQ(j2.recovered()[2].payload, "/out/vol");
}

TEST(ServeJournal, TornTailIsTruncatedAndAppendableAgain)
{
    const auto dir = fresh_dir("journal_torn");
    const auto path = dir / "journal.xjl";
    {
        Journal j(path);
        j.append(RecordType::Submit, 1, "alpha");
        j.append(RecordType::Start, 1, "");
    }
    const auto intact = std::filesystem::file_size(path);
    {
        // A crash mid-write leaves a partial frame at the tail.
        std::ofstream f(path, std::ios::binary | std::ios::app);
        f.write("XJL1torn-half-frame", 19);
    }
    {
        Journal j(path);
        ASSERT_EQ(j.recovered().size(), 2u);
        EXPECT_EQ(j.truncated_frames(), 1u);
        EXPECT_EQ(std::filesystem::file_size(path), intact);  // tail gone
        j.append(RecordType::Done, 1, "recovered");
    }
    Journal j2(path);
    ASSERT_EQ(j2.recovered().size(), 3u);
    EXPECT_EQ(j2.recovered()[2].payload, "recovered");
}

TEST(ServeJournal, CorruptedFrameIsRejectedOnReplay)
{
    const auto dir = fresh_dir("journal_corrupt");
    const auto path = dir / "journal.xjl";
    {
        // Flip bits in the second append's frame on its way to disk.
        faults::ScopedPlan plan(faults::FaultPlan::parse(
            "serve.journal.append:kind=corrupt,after=1,count=1", 7));
        Journal j(path);
        j.append(RecordType::Submit, 1, "good");
        j.append(RecordType::Accept, 1, "mangled in transit");
        j.append(RecordType::Start, 1, "");
    }
    Journal j2(path);
    // The digest rejects the corrupt frame; everything after it is
    // unreachable, so recovery keeps exactly the intact prefix.
    ASSERT_EQ(j2.recovered().size(), 1u);
    EXPECT_EQ(j2.recovered()[0].payload, "good");
    EXPECT_EQ(j2.truncated_frames(), 1u);
}

// ---- admission ----------------------------------------------------------

TEST(ServeAdmission, AcceptsAFeasibleSpec)
{
    const Decision d = price(small_spec(), perfmodel::MachineParams{});
    EXPECT_TRUE(d.admitted);
    EXPECT_GT(d.device_bytes, 0u);
    EXPECT_GT(d.predicted_s, 0.0);
}

TEST(ServeAdmission, RejectsAlreadyExpiredDeadline)
{
    JobSpec s = small_spec();
    s.deadline_s = -1.0;
    const Decision d = price(s, perfmodel::MachineParams{});
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "deadline");
}

TEST(ServeAdmission, RejectsDeadlineTighterThanPrediction)
{
    JobSpec s = small_spec();
    s.deadline_s = 1e-9;
    const Decision d = price(s, perfmodel::MachineParams{});
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "deadline");
}

TEST(ServeAdmission, RejectsInfeasibleDeviceAsk)
{
    JobSpec s = small_spec();
    s.device_capacity = 1u << 10;  // 1 KiB holds no texture
    const Decision d = price(s, perfmodel::MachineParams{});
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "infeasible");
}

TEST(ServeAdmission, RejectsInvalidSpec)
{
    JobSpec s = small_spec();
    s.batches = 0;
    const Decision d = price(s, perfmodel::MachineParams{});
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, "invalid");
}

// ---- session ------------------------------------------------------------

TEST(ReconSessionTest, ReportsProgressAndIsSingleUse)
{
    recon::RankConfig rc;
    rc.geometry = geo();
    rc.batches = 4;
    auto src = std::make_unique<recon::PhantomSource>(
        phantom::shepp_logan_3d(0.45 * rc.geometry.dx * static_cast<double>(rc.geometry.vol.x)),
        rc.geometry);
    recon::ReconSession session(rc, std::move(src));
    EXPECT_EQ(session.state(), recon::SessionState::Ready);
    EXPECT_GT(session.total_slabs(), 0);
    EXPECT_DOUBLE_EQ(session.progress(), 0.0);
    const recon::FdkResult r = session.run();
    EXPECT_EQ(r.volume.size().x, rc.geometry.vol.x);
    EXPECT_EQ(session.state(), recon::SessionState::Done);
    EXPECT_EQ(session.completed_slabs(), session.total_slabs());
    EXPECT_DOUBLE_EQ(session.progress(), 1.0);
    EXPECT_THROW((void)session.run(), std::logic_error);  // single-use
}

TEST(ReconSessionTest, CancelUnwindsWithinOneStageBoundary)
{
    // Every batch load sleeps 0.3 s; cancelling mid-run must unwind at
    // the next stage boundary — not run the remaining slabs to the end.
    faults::ScopedPlan plan(faults::FaultPlan::parse(
        "source.load:kind=stall,delay=0.3,after=0,count=-1", 1));
    recon::RankConfig rc;
    rc.geometry = geo();
    rc.batches = 4;
    auto src = std::make_unique<recon::PhantomSource>(
        phantom::shepp_logan_3d(0.45 * rc.geometry.dx * static_cast<double>(rc.geometry.vol.x)),
        rc.geometry);
    recon::ReconSession session(rc, std::move(src));
    std::thread runner([&] { EXPECT_THROW((void)session.run(), core::Cancelled); });
    ASSERT_TRUE(eventually(10.0, [&] { return session.completed_slabs() >= 1; }));
    const auto t0 = std::chrono::steady_clock::now();
    session.cancel_token().request_cancel();
    runner.join();
    const double unwind_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    EXPECT_EQ(session.state(), recon::SessionState::Cancelled);
    EXPECT_LT(session.completed_slabs(), session.total_slabs());
    // One stage boundary: at most one in-flight 0.3 s load plus slack,
    // never the ~1.2 s the remaining batches would cost.
    EXPECT_LT(unwind_s, 1.0);
}

// ---- engine -------------------------------------------------------------

TEST(ServeEngine, RunsASubmittedJobToDone)
{
    const auto spool = fresh_dir("engine_done");
    Engine engine(engine_config(spool));
    engine.start();
    const SubmitResult r = engine.submit(small_spec());
    ASSERT_TRUE(r.accepted) << r.reason << ": " << r.detail;
    EXPECT_GT(engine.tail_bound_s(r.predicted_s), r.predicted_s);
    const JobStatus st = engine.wait(r.id, 60.0);
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_DOUBLE_EQ(st.progress, 1.0);
    EXPECT_TRUE(std::filesystem::exists(st.output));
    EXPECT_THROW((void)engine.status(999), std::out_of_range);
}

TEST(ServeEngine, CancelMidRunReleasesBudgetWithinOneStage)
{
    const auto spool = fresh_dir("engine_cancel");
    EngineConfig cfg = engine_config(spool);
    Engine engine(cfg);
    engine.start();
    JobId victim = 0;
    {
        faults::ScopedPlan plan(faults::FaultPlan::parse(
            "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
        const SubmitResult r = engine.submit(small_spec());
        ASSERT_TRUE(r.accepted);
        victim = r.id;
        ASSERT_TRUE(eventually(10.0, [&] {
            return engine.status(victim).state == JobState::Running;
        }));
        const auto t0 = std::chrono::steady_clock::now();
        EXPECT_TRUE(engine.cancel(victim));
        const JobStatus st = engine.wait(victim, 10.0);
        const double unwind_s = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
        EXPECT_EQ(st.state, JobState::Cancelled);
        EXPECT_LT(unwind_s, 2.0);  // one 0.4 s stage plus slack, not 4x
    }
    // The cancelled job's device bytes are back: a follow-up job is
    // schedulable and completes (with the stall plan gone, quickly).
    const SubmitResult r2 = engine.submit(small_spec());
    ASSERT_TRUE(r2.accepted);
    EXPECT_EQ(engine.wait(r2.id, 60.0).state, JobState::Done);
    EXPECT_FALSE(engine.cancel(r2.id));  // already terminal
}

TEST(ServeEngine, QueueFullRejectsWithStableReason)
{
    const auto spool = fresh_dir("engine_queue_full");
    EngineConfig cfg = engine_config(spool);
    cfg.max_queued = 1;
    Engine engine(cfg);
    engine.start();
    faults::ScopedPlan plan(faults::FaultPlan::parse(
        "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
    const SubmitResult blocker = engine.submit(small_spec());
    ASSERT_TRUE(blocker.accepted);
    ASSERT_TRUE(eventually(10.0, [&] {
        return engine.status(blocker.id).state == JobState::Running;
    }));
    const SubmitResult queued = engine.submit(small_spec());
    ASSERT_TRUE(queued.accepted);
    const std::uint64_t rejects = counter_value("serve.reject");
    const SubmitResult overflow = engine.submit(small_spec());
    EXPECT_FALSE(overflow.accepted);
    EXPECT_EQ(overflow.reason, "queue_full");
    EXPECT_EQ(counter_value("serve.reject"), rejects + 1);
    EXPECT_TRUE(engine.cancel(queued.id));
    EXPECT_TRUE(engine.cancel(blocker.id));
    engine.drain();
}

TEST(ServeEngine, ExpiredQueuedJobIsShedNotRun)
{
    const auto spool = fresh_dir("engine_shed");
    Engine engine(engine_config(spool));
    engine.start();
    const std::uint64_t shed_before = counter_value("serve.shed");
    JobId victim = 0;
    {
        faults::ScopedPlan plan(faults::FaultPlan::parse(
            "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
        const SubmitResult blocker = engine.submit(small_spec());
        ASSERT_TRUE(blocker.accepted);
        ASSERT_TRUE(eventually(10.0, [&] {
            return engine.status(blocker.id).state == JobState::Running;
        }));
        JobSpec doomed = small_spec();
        doomed.deadline_s = 0.2;  // expires long before the blocker ends
        const SubmitResult r = engine.submit(doomed);
        ASSERT_TRUE(r.accepted);
        victim = r.id;
        EXPECT_EQ(engine.wait(blocker.id, 60.0).state, JobState::Done);
    }
    const JobStatus st = engine.wait(victim, 10.0);
    EXPECT_EQ(st.state, JobState::Shed);
    EXPECT_GE(counter_value("serve.shed"), shed_before + 1);
}

TEST(ServeEngine, MidRunDeadlineTripsTheWatchdog)
{
    // Admission accepts (predicted runtime is milliseconds), but a 1.5 s
    // injected stall blows the 1 s deadline mid-run: the remaining budget
    // was propagated into the pipeline watchdog, which converts the stall
    // into DeadlineExceeded and fails the job — the degraded path, seeded
    // and bitwise-reproducible like every fault-plan scenario.
    const auto spool = fresh_dir("engine_deadline");
    Engine engine(engine_config(spool));
    engine.start();
    faults::ScopedPlan plan(faults::FaultPlan::parse(
        "source.load:kind=stall,delay=1.5,after=0,count=-1", 21));
    JobSpec s = small_spec();
    s.deadline_s = 1.0;
    const SubmitResult r = engine.submit(s);
    ASSERT_TRUE(r.accepted) << r.reason;
    const JobStatus st = engine.wait(r.id, 60.0);
    EXPECT_EQ(st.state, JobState::Failed);
    EXPECT_NE(st.reason.find("watchdog deadline exceeded"), std::string::npos) << st.reason;
}

TEST(ServeEngine, PriorityBeatsSubmissionOrder)
{
    const auto spool = fresh_dir("engine_priority");
    Engine engine(engine_config(spool));
    engine.start();
    faults::ScopedPlan plan(faults::FaultPlan::parse(
        "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
    const SubmitResult blocker = engine.submit(small_spec());
    ASSERT_TRUE(blocker.accepted);
    ASSERT_TRUE(eventually(10.0, [&] {
        return engine.status(blocker.id).state == JobState::Running;
    }));
    JobSpec low = small_spec();
    low.priority = Priority::Low;
    JobSpec high = small_spec();
    high.priority = Priority::High;
    const SubmitResult rl = engine.submit(low);   // submitted first...
    const SubmitResult rh = engine.submit(high);  // ...but outranked
    ASSERT_TRUE(rl.accepted);
    ASSERT_TRUE(rh.accepted);
    ASSERT_TRUE(eventually(30.0, [&] {
        return engine.status(rh.id).state != JobState::Queued;
    }));
    EXPECT_EQ(engine.status(rl.id).state, JobState::Queued);
    EXPECT_TRUE(engine.cancel(rl.id));
    EXPECT_TRUE(engine.cancel(rh.id));
    engine.drain();
}

TEST(ServeEngine, FairShareFavorsTheLeastServedTenant)
{
    const auto spool = fresh_dir("engine_fairshare");
    Engine engine(engine_config(spool));
    engine.start();
    faults::ScopedPlan plan(faults::FaultPlan::parse(
        "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
    JobSpec a = small_spec();
    a.tenant = "alice";
    const SubmitResult blocker = engine.submit(a);  // alice accrues service
    ASSERT_TRUE(blocker.accepted);
    ASSERT_TRUE(eventually(10.0, [&] {
        return engine.status(blocker.id).state == JobState::Running;
    }));
    const SubmitResult a2 = engine.submit(a);  // alice again, FIFO-first
    JobSpec b = small_spec();
    b.tenant = "bob";
    const SubmitResult b1 = engine.submit(b);  // bob, same priority, later
    ASSERT_TRUE(a2.accepted);
    ASSERT_TRUE(b1.accepted);
    ASSERT_TRUE(eventually(30.0, [&] {
        return engine.status(b1.id).state != JobState::Queued;
    }));
    EXPECT_EQ(engine.status(a2.id).state, JobState::Queued);
    EXPECT_TRUE(engine.cancel(a2.id));
    EXPECT_TRUE(engine.cancel(b1.id));
    engine.drain();
}

TEST(ServeEngine, CrashRecoveryResumesToABitwiseIdenticalVolume)
{
    // Reference: an uninterrupted run of the spec.
    JobSpec spec = small_spec();
    spec.phantom_seed = 5;
    const auto ref_spool = fresh_dir("engine_ref");
    Volume reference;
    {
        Engine engine(engine_config(ref_spool));
        engine.start();
        const SubmitResult r = engine.submit(spec);
        ASSERT_TRUE(r.accepted);
        const JobStatus st = engine.wait(r.id, 60.0);
        ASSERT_EQ(st.state, JobState::Done);
        reference = io::read_volume(st.output);
    }

    // Crash: stop the engine mid-job (stop() deliberately shares the
    // kill -9 recovery path — the job stays non-terminal in the journal).
    const auto spool = fresh_dir("engine_crash");
    JobId id = 0;
    {
        faults::ScopedPlan plan(faults::FaultPlan::parse(
            "source.load:kind=stall,delay=0.4,after=0,count=-1", 1));
        Engine engine(engine_config(spool));
        engine.start();
        const SubmitResult r = engine.submit(spec);
        ASSERT_TRUE(r.accepted);
        id = r.id;
        ASSERT_TRUE(eventually(20.0, [&] {
            return engine.status(id).completed_slabs >= 1;
        }));
        engine.stop();
        EXPECT_EQ(engine.status(id).state, JobState::Queued);  // requeued form
    }

    // Restart over the same spool: the journal replays, the job resumes
    // from its checkpointed slabs and the volume is bitwise identical.
    Engine engine(engine_config(spool));
    EXPECT_EQ(engine.recovered_jobs(), 1);
    engine.start();
    const JobStatus st = engine.wait(id, 60.0);
    ASSERT_EQ(st.state, JobState::Done);
    const Volume recovered = io::read_volume(st.output);
    ASSERT_EQ(recovered.count(), reference.count());
    const auto a = recovered.span();
    const auto b = reference.span();
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "voxel " << i << " differs after crash recovery";
    }
}

TEST(ServeEngine, RecoveryRepricesASubmitOnlyJournal)
{
    // A daemon that died between Submit and Accept left a spec with no
    // verdict: recovery re-prices it through the same admission arithmetic
    // and runs it to completion.
    const auto spool = fresh_dir("engine_reprice");
    std::filesystem::create_directories(spool);
    {
        Journal j(spool / "journal.xjl");
        j.append(RecordType::Submit, 7, encode_spec(small_spec()));
    }
    Engine engine(engine_config(spool));
    EXPECT_EQ(engine.recovered_jobs(), 1);
    engine.start();
    const JobStatus st = engine.wait(7, 60.0);
    EXPECT_EQ(st.state, JobState::Done);
    // The restored id keeps later submissions collision-free.
    EXPECT_GT(engine.submit(small_spec()).id, 7u);
}

TEST(ServeEngine, JournalFaultRejectionsAreSeedDeterministic)
{
    // A probabilistic throw plan on serve.journal.append makes some
    // submissions fail durably ("fault"); the same seed must produce the
    // same accept/reject pattern — chaos runs are replayable.
    const auto run = [](const std::filesystem::path& spool) {
        faults::ScopedPlan plan(faults::FaultPlan::parse(
            "serve.journal.append:kind=throw,p=0.4", 42));
        Engine engine(engine_config(spool));  // never started: admission only
        std::vector<std::string> verdicts;
        for (int i = 0; i < 8; ++i) {
            const SubmitResult r = engine.submit(small_spec());
            verdicts.push_back(r.accepted ? "ok" : r.reason);
        }
        return verdicts;
    };
    const auto first = run(fresh_dir("engine_seed_a"));
    const auto second = run(fresh_dir("engine_seed_b"));
    EXPECT_EQ(first, second);
    EXPECT_NE(std::count(first.begin(), first.end(), "fault"), 0)
        << "plan never fired; the test would be vacuous";
    EXPECT_NE(std::count(first.begin(), first.end(), "ok"), 0);
}

TEST(ServeEngine, SubmitAfterStopIsRejected)
{
    const auto spool = fresh_dir("engine_stopped");
    Engine engine(engine_config(spool));
    engine.start();
    engine.stop();
    const SubmitResult r = engine.submit(small_spec());
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(r.reason, "stopping");
}

}  // namespace
}  // namespace xct::serve
