// Numeric forward-projector tests: trilinear sampling and agreement with
// the analytic ellipsoid integrals.
#include <gtest/gtest.h>

#include "phantom/shepp_logan.hpp"
#include "projector/forward.hpp"

namespace xct::projector {
namespace {

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 6;
    g.nu = 48;
    g.nv = 40;
    g.du = 0.6;
    g.dv = 0.6;
    g.vol = {32, 32, 28};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

TEST(Trilinear, ExactAtVoxelCentres)
{
    Volume v(Dim3{3, 3, 3});
    v.at(1, 2, 0) = 4.0f;
    EXPECT_FLOAT_EQ(sample_trilinear(v, 1.0, 2.0, 0.0), 4.0f);
    EXPECT_FLOAT_EQ(sample_trilinear(v, 0.0, 0.0, 0.0), 0.0f);
}

TEST(Trilinear, InterpolatesBetweenCentres)
{
    Volume v(Dim3{2, 1, 1});
    v.at(0, 0, 0) = 1.0f;
    v.at(1, 0, 0) = 3.0f;
    EXPECT_FLOAT_EQ(sample_trilinear(v, 0.5, 0.0, 0.0), 2.0f);
    EXPECT_FLOAT_EQ(sample_trilinear(v, 0.25, 0.0, 0.0), 1.5f);
}

TEST(Trilinear, ZeroOutsideGrid)
{
    Volume v(Dim3{2, 2, 2}, 1.0f);
    EXPECT_FLOAT_EQ(sample_trilinear(v, -0.1, 0.0, 0.0), 0.0f);
    EXPECT_FLOAT_EQ(sample_trilinear(v, 0.0, 1.1, 0.0), 0.0f);
    EXPECT_FLOAT_EQ(sample_trilinear(v, 0.0, 0.0, 5.0), 0.0f);
}

TEST(Forward, AgreesWithAnalyticIntegralsForSmoothObject)
{
    const CbctGeometry g = geo();
    // One big centred sphere rasterised onto the grid.
    const std::vector<phantom::Ellipsoid> e{{1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0}};
    const Volume vol = phantom::voxelize(e, g);
    const ProjectionStack numeric = forward_project(vol, g);
    const ProjectionStack exact = phantom::forward_project(e, g);

    // Compare away from the shadow rim (rasterisation blurs one voxel).
    double err = 0.0, norm = 0.0;
    for (index_t s = 0; s < g.num_proj; ++s)
        for (index_t v = g.nv / 2 - 4; v <= g.nv / 2 + 4; ++v)
            for (index_t u = g.nu / 2 - 4; u <= g.nu / 2 + 4; ++u) {
                err += std::abs(numeric.at(s, v, u) - exact.at(s, v, u));
                norm += std::abs(exact.at(s, v, u));
            }
    EXPECT_LT(err / norm, 0.06);
}

TEST(Forward, EmptyVolumeProjectsToZero)
{
    const CbctGeometry g = geo();
    const Volume vol(g.vol);
    const ProjectionStack p = forward_project(vol, g, Range{0, 2}, Range{0, g.nv}, g.dx);
    for (float v : p.span()) ASSERT_EQ(v, 0.0f);
}

TEST(Forward, LinearInDensity)
{
    const CbctGeometry g = geo();
    Volume one(g.vol);
    one.at(16, 16, 14) = 1.0f;
    Volume three(g.vol);
    three.at(16, 16, 14) = 3.0f;
    const ProjectionStack p1 = forward_project(one, g, Range{0, 1}, Range{0, g.nv}, g.dx * 0.5);
    const ProjectionStack p3 = forward_project(three, g, Range{0, 1}, Range{0, g.nv}, g.dx * 0.5);
    for (index_t v = 0; v < g.nv; ++v)
        for (index_t u = 0; u < g.nu; ++u)
            ASSERT_NEAR(p3.at(0, v, u), 3.0f * p1.at(0, v, u), 1e-4f);
}

TEST(Forward, StepRefinementConverges)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> e{{1.0, 2.5, 2.5, 2.5, 0.0, 0.0, 0.0, 0.0}};
    const Volume vol = phantom::voxelize(e, g);
    const ProjectionStack coarse = forward_project(vol, g, Range{0, 1}, Range{0, g.nv}, g.dx * 2.0);
    const ProjectionStack fine = forward_project(vol, g, Range{0, 1}, Range{0, g.nv}, g.dx * 0.25);
    const ProjectionStack finest = forward_project(vol, g, Range{0, 1}, Range{0, g.nv}, g.dx * 0.125);
    // Finer steps move towards the finest answer.
    double dc = 0.0, df = 0.0;
    for (index_t u = 0; u < g.nu; ++u) {
        dc += std::abs(coarse.at(0, g.nv / 2, u) - finest.at(0, g.nv / 2, u));
        df += std::abs(fine.at(0, g.nv / 2, u) - finest.at(0, g.nv / 2, u));
    }
    EXPECT_LT(df, dc);
}

TEST(Forward, RejectsMismatchedVolume)
{
    const CbctGeometry g = geo();
    Volume wrong(Dim3{4, 4, 4});
    EXPECT_THROW(forward_project(wrong, g), std::invalid_argument);
}

}  // namespace
}  // namespace xct::projector
