// End-to-end FDK reconstruction tests (single node): quality against the
// analytic phantom, out-of-core == in-core, threaded == sequential, and
// the preprocessing (raw counts) path.
#include <gtest/gtest.h>

#include "io/datasets.hpp"
#include "recon/fdk.hpp"

namespace xct::recon {
namespace {

CbctGeometry geo(index_t n = 48, index_t np = 120)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;      // detector oversamples the volume laterally
    g.nv = 2 * n;
    g.du = 0.4;
    g.dv = 0.4;
    g.vol = {n, n, n};
    // Volume inscribed well inside the FOV so nothing clips.
    g.dx = g.dy = g.dz =
        CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

TEST(Fdk, ReconstructsSheppLoganCentralSlice)
{
    const CbctGeometry g = geo();
    const double radius = g.dx * static_cast<double>(g.vol.x) / 2.4;
    const auto phantom = phantom::shepp_logan_3d(radius);
    const FdkResult r = reconstruct_fdk(g, phantom);
    const Volume truth = phantom::voxelize(phantom, g);

    // FDK is exact in the mid-plane (continuum limit).  Away from density
    // discontinuities — where any band-limited reconstruction rings — the
    // error must be a few percent of the unit contrast; the raw RMSE
    // (ringing included) stays bounded too.
    const index_t mid = g.vol.z / 2;
    EXPECT_LT(rmse_flat(r.volume, truth, 4), 0.05) << "flat-region RMSE too high";
    double acc = 0.0;
    index_t cnt = 0;
    for (index_t j = 4; j < g.vol.y - 4; ++j)
        for (index_t i = 4; i < g.vol.x - 4; ++i) {
            const double e = static_cast<double>(r.volume.at(i, j, mid)) -
                             static_cast<double>(truth.at(i, j, mid));
            acc += e * e;
            ++cnt;
        }
    const double slice_rmse = std::sqrt(acc / static_cast<double>(cnt));
    EXPECT_LT(slice_rmse, 0.15) << "central-slice RMSE too high";

    // Absolute level: the skull interior (density 0.2) is recovered.
    EXPECT_NEAR(r.volume.at(g.vol.x / 2, g.vol.y / 2, mid), 0.2f, 0.05f);
}

TEST(Fdk, SequentialAndThreadedPipelinesAgreeBitwise)
{
    const CbctGeometry g = geo(32, 60);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 13.0);
    PhantomSource src_a(phantom, g);
    PhantomSource src_b(phantom, g);

    RankConfig a;
    a.geometry = g;
    a.threaded = false;
    RankConfig b;
    b.geometry = g;
    b.threaded = true;

    const FdkResult ra = reconstruct_fdk(a, src_a);
    const FdkResult rb = reconstruct_fdk(b, src_b);
    for (index_t i = 0; i < ra.volume.count(); ++i)
        ASSERT_EQ(ra.volume.span()[static_cast<std::size_t>(i)],
                  rb.volume.span()[static_cast<std::size_t>(i)]);
}

TEST(Fdk, OutOfCoreMatchesInCore)
{
    // The headline capability: a device too small for the projections+
    // volume still reconstructs, streaming rows through the circular
    // texture (Table 5's 40963-on-16GB row, scaled down).
    const CbctGeometry g = geo(32, 60);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 13.0);

    PhantomSource src_big(phantom, g);
    RankConfig big;
    big.geometry = g;
    big.device_capacity = 1u << 30;
    big.batches = 1;  // whole volume in one batch: everything resident
    const FdkResult in_core = reconstruct_fdk(big, src_big);

    PhantomSource src_small(phantom, g);
    RankConfig small;
    small.geometry = g;
    small.batches = 16;  // 2-slice slabs
    // Texture for the worst slab + slab buffer only; far below full size.
    const std::size_t full_bytes =
        static_cast<std::size_t>(g.num_proj * g.nv * g.nu + g.vol.count()) * sizeof(float);
    small.device_capacity = full_bytes / 3;
    const FdkResult out_of_core = reconstruct_fdk(small, src_small);

    for (index_t i = 0; i < in_core.volume.count(); ++i)
        ASSERT_NEAR(out_of_core.volume.span()[static_cast<std::size_t>(i)],
                    in_core.volume.span()[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(Fdk, DeviceTooSmallForOneSlabThrows)
{
    const CbctGeometry g = geo(32, 60);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 13.0);
    PhantomSource src(phantom, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.device_capacity = 1024;  // absurd: not even one texture row
    EXPECT_THROW(reconstruct_fdk(cfg, src), sim::DeviceOutOfMemory);
}

TEST(Fdk, RawCountPathMatchesLineIntegralPath)
{
    const CbctGeometry g = geo(24, 48);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 10.0);
    const BeerLawScalar cal{100.0f, 60000.0f};

    PhantomSource ideal(phantom, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult a = reconstruct_fdk(cfg, ideal);

    PhantomSource counts(phantom, g, cal);
    RankConfig cfg2;
    cfg2.geometry = g;
    cfg2.beer = cal;
    const FdkResult b = reconstruct_fdk(cfg2, counts);

    // Eq. 1 then its inverse is identity up to float math.
    EXPECT_LT(rmse(a.volume, b.volume), 2e-4);
}

TEST(Fdk, HannWindowSmoothsReconstruction)
{
    const CbctGeometry g = geo(32, 60);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 13.0);
    const FdkResult sharp = reconstruct_fdk(g, phantom, filter::Window::RamLak);
    const FdkResult smooth = reconstruct_fdk(g, phantom, filter::Window::Hann);

    // Total variation along X of the central slice drops with apodisation.
    auto tv = [&](const Volume& v) {
        double t = 0.0;
        const index_t mid = g.vol.z / 2;
        for (index_t j = 0; j < g.vol.y; ++j)
            for (index_t i = 0; i + 1 < g.vol.x; ++i)
                t += std::abs(v.at(i + 1, j, mid) - v.at(i, j, mid));
        return t;
    };
    EXPECT_LT(tv(smooth.volume), tv(sharp.volume));
}

TEST(Fdk, StatsReportEveryPipelineStage)
{
    const CbctGeometry g = geo(24, 32);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource src(phantom, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult r = reconstruct_fdk(cfg, src);
    EXPECT_GT(r.stats.t_load, 0.0);
    EXPECT_GT(r.stats.t_filter, 0.0);
    EXPECT_GT(r.stats.t_bp, 0.0);
    EXPECT_GT(r.stats.t_store, 0.0);
    EXPECT_GT(r.stats.wall, 0.0);
    EXPECT_GT(r.stats.h2d.bytes, 0u);
    EXPECT_GT(r.stats.d2h.bytes, 0u);
    EXPECT_FALSE(r.stats.spans.empty());
}

TEST(Fdk, ProjectionsMoveHostToDeviceExactlyOnce)
{
    // The differential-update guarantee (Sec. 3.1.3): total H2D projection
    // traffic equals the union of row bands, not Nc times it.
    const CbctGeometry g = geo(32, 40);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 13.0);
    PhantomSource src(phantom, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    const FdkResult r = reconstruct_fdk(cfg, src);

    const auto plans = plan_slabs(g, Range{0, g.vol.z}, (g.vol.z + 7) / 8);
    index_t delta_rows = 0;
    for (const auto& p : plans) delta_rows += p.delta.length();
    const std::uint64_t expect = static_cast<std::uint64_t>(delta_rows) *
                                 static_cast<std::uint64_t>(g.num_proj * g.nu) * sizeof(float);
    EXPECT_EQ(r.stats.h2d.bytes, expect);
}

TEST(Fdk, BatchCountDoesNotChangeResults)
{
    const CbctGeometry g = geo(24, 40);
    const auto phantom = phantom::shepp_logan_3d(g.dx * 10.0);
    Volume first;
    bool have_first = false;
    for (index_t nc : {1, 2, 3, 8, 24}) {
        PhantomSource src(phantom, g);
        RankConfig cfg;
        cfg.geometry = g;
        cfg.batches = nc;
        const FdkResult r = reconstruct_fdk(cfg, src);
        if (!have_first) {
            first = r.volume;
            have_first = true;
            continue;
        }
        for (index_t i = 0; i < first.count(); ++i)
            ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                        first.span()[static_cast<std::size_t>(i)], 1e-5f)
                << "Nc=" << nc;
    }
}

TEST(Fdk, RmseHelperBasics)
{
    Volume a(Dim3{4, 4, 4}, 1.0f);
    Volume b(Dim3{4, 4, 4}, 1.0f);
    EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
    b.at(0, 0, 0) = 2.0f;
    EXPECT_GT(rmse(a, b), 0.0);
    EXPECT_DOUBLE_EQ(rmse(a, b, 1), 0.0);  // margin excludes the corner
    Volume c(Dim3{2, 2, 2});
    EXPECT_THROW(rmse(a, c), std::invalid_argument);
    EXPECT_THROW(rmse(a, b, 2), std::invalid_argument);
}

TEST(Fdk, PaperDatasetGeometryReconstructs)
{
    // tomo_00030's real geometry (Table 4 offsets included) at 1/16
    // resolution: the pipeline must handle non-square detectors and the
    // sigma_u = -10 px offset without artefacts blowing up the RMSE.
    const io::Dataset d = io::dataset_by_name("tomo_00030").scaled(16.0).with_volume(32);
    const CbctGeometry& g = d.geometry;
    const double radius = g.dx * static_cast<double>(g.vol.x) / 2.6;
    const auto phantom = phantom::shepp_logan_3d(radius);
    const FdkResult r = reconstruct_fdk(g, phantom);
    const Volume truth = phantom::voxelize(phantom, g);
    EXPECT_LT(rmse_flat(r.volume, truth, 6), 0.08);
}

}  // namespace
}  // namespace xct::recon
