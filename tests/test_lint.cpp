// xct_lint behaviour: each bad_* fixture under tests/lint_fixtures/
// carries `// LINT: <rule>` annotations on its violating lines, and the
// suite checks the linter reports exactly the annotated (line, rule)
// set — no magic violation counts to keep in sync with fixture edits.
// The clean fixture and the real tree stay silent, the names registry
// parses with both exact and prefix entries, and the whole-program rules
// (lockorder, deadname) are exercised on synthetic file sets.
//
// XCT_LINT_REPO_ROOT is injected by tests/CMakeLists.txt so the suite
// works from any build directory.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using xct_lint::LockEdge;
using xct_lint::Registry;
using xct_lint::Violation;

std::string repo_root()
{
    return XCT_LINT_REPO_ROOT;
}

std::string slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

Registry real_registry()
{
    return xct_lint::parse_registry(slurp(repo_root() + "/src/core/names.hpp"));
}

/// (line, rule) — the comparable core of a Violation / an annotation.
using Mark = std::pair<int, std::string>;

/// Parse `// LINT: ruleA ruleB` annotations out of raw fixture source.
/// Each rule token contributes one expected violation on that line, so a
/// line with two hits of the same rule is annotated `// LINT: names names`.
std::vector<Mark> annotations(const std::string& source)
{
    std::vector<Mark> out;
    std::istringstream in(source);
    std::string text;
    for (int line = 1; std::getline(in, text); ++line) {
        const std::size_t at = text.find("// LINT:");
        if (at == std::string::npos) continue;
        std::istringstream rules(text.substr(at + 8));
        std::string rule;
        while (rules >> rule) {
            // Stop at the first token that is not a bare rule word — the
            // annotation may be followed by ordinary prose.
            if (!std::all_of(rule.begin(), rule.end(),
                             [](char c) { return c >= 'a' && c <= 'z'; }))
                break;
            out.emplace_back(line, rule);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Mark> marks(const std::vector<Violation>& vs)
{
    std::vector<Mark> out;
    for (const auto& v : vs) out.emplace_back(v.line, v.rule);
    std::sort(out.begin(), out.end());
    return out;
}

/// Run ALL rules (per-file + whole-program) over one fixture and check
/// the reported violations are exactly the fixture's annotations.
void expect_matches_annotations(const std::string& name)
{
    const std::string rel = "tests/lint_fixtures/" + name;
    const std::string source = slurp(repo_root() + "/" + rel);
    const auto vs = xct_lint::lint_files(repo_root(), {{rel, source}});
    EXPECT_EQ(marks(vs), annotations(source)) << xct_lint::format(vs);
}

TEST(LintRegistry, ParsesExactAndPrefixEntries)
{
    const Registry reg = real_registry();
    EXPECT_FALSE(reg.exact.empty());
    EXPECT_FALSE(reg.prefixes.empty());
    // Exact entries.
    EXPECT_TRUE(reg.allows("fft.transforms"));
    EXPECT_TRUE(reg.allows("faults.injected"));
    EXPECT_TRUE(reg.allows("rank.dropout"));
    // The serving layer's fault sites and metrics.
    EXPECT_TRUE(reg.allows("serve.journal.append"));
    EXPECT_TRUE(reg.allows("serve.accept"));
    EXPECT_TRUE(reg.allows("serve.shed"));
    EXPECT_TRUE(reg.allows("serve.reject.queue_full"));  // prefix entry
    // Prefix entries admit any non-empty suffix...
    EXPECT_TRUE(reg.allows("pipeline.stage.filter.seconds"));
    EXPECT_TRUE(reg.allows("minimpi.reduce_sum.calls"));
    // ...but not the bare prefix-with-nothing-after and not strangers.
    EXPECT_FALSE(reg.allows("bogus.metric"));
    EXPECT_FALSE(reg.allows("pipelinestage"));
}

TEST(LintFixtures, BadNamesMatchesAnnotations)
{
    expect_matches_annotations("bad_names.cpp");
}

TEST(LintFixtures, BadRawmemMatchesAnnotations)
{
    expect_matches_annotations("bad_rawmem.cpp");
}

TEST(LintFixtures, BadIntloopMatchesAnnotations)
{
    expect_matches_annotations("bad_intloop.cpp");
}

TEST(LintFixtures, BadMutexMatchesAnnotations)
{
    expect_matches_annotations("bad_mutex.cpp");
}

TEST(LintFixtures, BadIdsMatchesAnnotations)
{
    expect_matches_annotations("bad_ids.cpp");
}

TEST(LintFixtures, BadLockorderMatchesAnnotations)
{
    expect_matches_annotations("bad_lockorder.cpp");
}

TEST(LintFixtures, CleanFixtureIsSilent)
{
    expect_matches_annotations("clean.cpp");  // zero annotations == zero violations
}

TEST(LintTree, RealTreeIsClean)
{
    const auto vs = xct_lint::lint_tree(repo_root(), {"src", "tools", "bench"});
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintCompileDb, SyntheticDbOverRealTuIsClean)
{
    // A one-entry compile database pointing at a real TU: the driver must
    // parse it, resolve the TU's quoted includes, and come back clean.
    const std::filesystem::path db =
        std::filesystem::path(testing::TempDir()) / "xct_lint_compile_commands.json";
    {
        std::ofstream f(db);
        f << "[\n  {\n    \"directory\": \"" << repo_root() << "\",\n"
          << "    \"command\": \"c++ -c src/core/decompose.cpp\",\n"
          << "    \"file\": \"src/core/decompose.cpp\"\n  }\n]\n";
    }
    const auto vs = xct_lint::lint_compile_db(repo_root(), db);
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
    std::filesystem::remove(db);
}

TEST(LintRules, CommentsAndStringsDoNotTrip)
{
    const Registry reg = real_registry();
    const std::string src =
        "// new malloc reinterpret_cast std::mutex\n"
        "/* for (int q = 0; q < 4; ++q) s += a[q * n]; */\n"
        "const char* doc = \"counter(\\\"totally.fake\\\") uses new std::mutex\";\n";
    const auto vs = xct_lint::lint_source("x.cpp", src, reg);
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintRules, NamesConstantArgumentsAreAccepted)
{
    const Registry reg = real_registry();
    // Non-literal arguments (names:: constants, composed strings) are the
    // blessed pattern — the rule only judges raw literals.
    const std::string src =
        "void f(R& reg) {\n"
        "    reg.counter(names::kMetricFftTransforms).add(1);\n"
        "    reg.counter(names::kMetricPipelineStagePrefix + stage + \".seconds\").add(1);\n"
        "}\n";
    const auto vs = xct_lint::lint_source("x.cpp", src, reg);
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintRules, IdsRuleRespectsMinimpiBoundary)
{
    const Registry reg = real_registry();
    // minimpi speaks raw world ranks (like MPI itself) and is whitelisted;
    // the same declaration anywhere else must use the strong types.
    const std::string src = "void send(index_t rank, int tag);\n";
    EXPECT_TRUE(xct_lint::lint_source("src/minimpi/comm.cpp", src, reg).empty());
    const auto vs = xct_lint::lint_source("src/recon/distributed.cpp", src, reg);
    ASSERT_EQ(vs.size(), static_cast<std::size_t>(1)) << xct_lint::format(vs);
    EXPECT_EQ(vs[0].rule, "ids");
}

TEST(LintLockGraph, NormalisationUnifiesArrowAndDot)
{
    // st->m (callee) and st.m (caller) are the same mutex: the two edges
    // below close a cycle only because normalisation maps them to one node.
    const std::vector<LockEdge> edges = {
        {"st.a", "st->b", "f.cpp", 10},
        {"st->b", "st.a", "f.cpp", 20},
    };
    const auto vs = xct_lint::check_lock_graph(edges, {});
    ASSERT_EQ(vs.size(), static_cast<std::size_t>(1)) << xct_lint::format(vs);
    EXPECT_EQ(vs[0].rule, "lockorder");
}

TEST(LintLockGraph, AcyclicGraphAndWhitelistedCycleAreAccepted)
{
    const std::vector<LockEdge> chain = {
        {"a", "b", "f.cpp", 1},
        {"b", "c", "f.cpp", 2},
        {"a", "c", "f.cpp", 3},
    };
    EXPECT_TRUE(xct_lint::check_lock_graph(chain, {}).empty());

    const std::vector<LockEdge> cycle = {
        {"a", "b", "f.cpp", 1},
        {"b", "a", "f.cpp", 2},
    };
    EXPECT_FALSE(xct_lint::check_lock_graph(cycle, {}).empty());
    // A cycle made entirely of reviewed edges is accepted; comments and
    // blank lines in the whitelist are ignored.
    const std::vector<std::string> allow = {
        "# reviewed: handshake between a and b",
        "",
        "a -> b",
        "b -> a",
    };
    EXPECT_TRUE(xct_lint::check_lock_graph(cycle, allow).empty());
    // Whitelisting only one direction is not enough.
    EXPECT_FALSE(xct_lint::check_lock_graph(cycle, {"a -> b"}).empty());
}

TEST(LintDeadname, UnreferencedRegistrationIsReported)
{
    // Whole-program rule, so it needs lint_files with names.hpp in the
    // set: kStale is registered but never referenced by the other file.
    const xct_lint::FileSet set = {
        {"src/core/names.hpp",
         "namespace xct::names {\n"
         "inline constexpr const char* kUsed = \"fft.transforms\";\n"
         "inline constexpr const char* kStale = \"faults.injected\";\n"
         "}\n"},
        {"src/foo.cpp", "const char* f() { return xct::names::kUsed; }\n"},
    };
    const auto vs = xct_lint::lint_files(repo_root(), set);
    ASSERT_EQ(vs.size(), static_cast<std::size_t>(1)) << xct_lint::format(vs);
    EXPECT_EQ(vs[0].rule, "deadname");
    EXPECT_EQ(vs[0].file, "src/core/names.hpp");
    EXPECT_EQ(vs[0].line, 3);
}

}  // namespace
