// xct_lint behaviour: every rule fires on its fixture under
// tests/lint_fixtures/, the clean fixture and the real tree stay silent,
// and the names registry parses with both exact and prefix entries.
//
// XCT_LINT_REPO_ROOT is injected by tests/CMakeLists.txt so the suite
// works from any build directory.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using xct_lint::Registry;
using xct_lint::Violation;

std::string repo_root()
{
    return XCT_LINT_REPO_ROOT;
}

std::string slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

Registry real_registry()
{
    return xct_lint::parse_registry(slurp(repo_root() + "/src/core/names.hpp"));
}

std::vector<Violation> lint_fixture(const std::string& name)
{
    const std::string rel = "tests/lint_fixtures/" + name;
    return xct_lint::lint_source(rel, slurp(repo_root() + "/" + rel), real_registry());
}

long count_rule(const std::vector<Violation>& vs, const std::string& rule)
{
    return std::count_if(vs.begin(), vs.end(),
                         [&](const Violation& v) { return v.rule == rule; });
}

TEST(LintRegistry, ParsesExactAndPrefixEntries)
{
    const Registry reg = real_registry();
    EXPECT_FALSE(reg.exact.empty());
    EXPECT_FALSE(reg.prefixes.empty());
    // Exact entries.
    EXPECT_TRUE(reg.allows("fft.transforms"));
    EXPECT_TRUE(reg.allows("faults.injected"));
    EXPECT_TRUE(reg.allows("rank.dropout"));
    // Prefix entries admit any non-empty suffix...
    EXPECT_TRUE(reg.allows("pipeline.stage.filter.seconds"));
    EXPECT_TRUE(reg.allows("minimpi.reduce_sum.calls"));
    // ...but not the bare prefix-with-nothing-after and not strangers.
    EXPECT_FALSE(reg.allows("bogus.metric"));
    EXPECT_FALSE(reg.allows("pipelinestage"));
}

TEST(LintFixtures, BadNamesTripsNamesRuleOnly)
{
    const auto vs = lint_fixture("bad_names.cpp");
    // counter, gauge, cat, span, fault site, watchdog section, flight
    // span, soak metric
    EXPECT_EQ(count_rule(vs, "names"), 8) << xct_lint::format(vs);
    EXPECT_EQ(count_rule(vs, "rawmem"), 0) << xct_lint::format(vs);
    EXPECT_EQ(count_rule(vs, "intloop"), 0) << xct_lint::format(vs);
    EXPECT_EQ(count_rule(vs, "mutex"), 0) << xct_lint::format(vs);
}

TEST(LintFixtures, BadRawmemTripsEachBannedToken)
{
    const auto vs = lint_fixture("bad_rawmem.cpp");
    EXPECT_EQ(count_rule(vs, "rawmem"), 3) << xct_lint::format(vs);  // new, malloc, reinterpret
    EXPECT_EQ(vs.size(), static_cast<std::size_t>(3)) << xct_lint::format(vs);
}

TEST(LintFixtures, BadIntloopTripsMultiplyingIntLoops)
{
    const auto vs = lint_fixture("bad_intloop.cpp");
    EXPECT_EQ(count_rule(vs, "intloop"), 2) << xct_lint::format(vs);  // k * plane, j * nx
    EXPECT_EQ(vs.size(), static_cast<std::size_t>(2)) << xct_lint::format(vs);
}

TEST(LintFixtures, BadMutexTripsRawPrimitiveAndMissingAnnotation)
{
    const auto vs = lint_fixture("bad_mutex.cpp");
    EXPECT_EQ(count_rule(vs, "mutex"), 2) << xct_lint::format(vs);
    EXPECT_EQ(vs.size(), static_cast<std::size_t>(2)) << xct_lint::format(vs);
}

TEST(LintFixtures, CleanFixtureIsSilent)
{
    const auto vs = lint_fixture("clean.cpp");
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintTree, RealTreeIsClean)
{
    const auto vs = xct_lint::lint_tree(repo_root(), {"src", "tools", "bench"});
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintRules, CommentsAndStringsDoNotTrip)
{
    const Registry reg = real_registry();
    const std::string src =
        "// new malloc reinterpret_cast std::mutex\n"
        "/* for (int q = 0; q < 4; ++q) s += a[q * n]; */\n"
        "const char* doc = \"counter(\\\"totally.fake\\\") uses new std::mutex\";\n";
    const auto vs = xct_lint::lint_source("x.cpp", src, reg);
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

TEST(LintRules, NamesConstantArgumentsAreAccepted)
{
    const Registry reg = real_registry();
    // Non-literal arguments (names:: constants, composed strings) are the
    // blessed pattern — the rule only judges raw literals.
    const std::string src =
        "void f(R& reg) {\n"
        "    reg.counter(names::kMetricFftTransforms).add(1);\n"
        "    reg.counter(names::kMetricPipelineStagePrefix + stage + \".seconds\").add(1);\n"
        "}\n";
    const auto vs = xct_lint::lint_source("x.cpp", src, reg);
    EXPECT_TRUE(vs.empty()) << xct_lint::format(vs);
}

}  // namespace
