// Back-projection kernel tests.  The central claims under test:
//   * the streaming kernel (Listing 1), the Algorithm-1 reference and the
//     RTK-style baseline agree to the paper's 1e-5 threshold (Sec. 6.1);
//   * the circular texture addressing reproduces full-detector results
//     from band-restricted uploads;
//   * slab + offset reconstruction tiles to the full volume.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "backproj/kernel.hpp"
#include "backproj/reference.hpp"
#include "backproj/rtk_style.hpp"
#include "core/decompose.hpp"
#include "phantom/shepp_logan.hpp"

namespace xct::backproj {
namespace {

CbctGeometry geo(index_t nz = 24)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 300.0;
    g.num_proj = 36;
    g.nu = 48;
    g.nv = 40;
    g.du = 0.6;
    g.dv = 0.6;
    g.vol = {24, 24, nz};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

ProjectionStack random_stack(const CbctGeometry& g, unsigned seed)
{
    ProjectionStack p(g.num_proj, g.nv, g.nu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> u(0.0f, 1.0f);
    for (float& v : p.span()) v = u(rng);
    return p;
}

float max_abs(std::span<const float> v)
{
    float m = 0.0f;
    for (float x : v) m = std::max(m, std::abs(x));
    return m;
}

/// Upload full frames into a texture laid out as the streaming kernel
/// expects (x = u, y = view, z = detector row).
sim::Texture3 make_texture(sim::Device& dev, const ProjectionStack& p, Range band)
{
    sim::Texture3 tex(dev, p.cols(), p.views(), band.length());
    std::vector<float> plane(static_cast<std::size_t>(p.cols() * p.views()));
    for (index_t v = band.lo; v < band.hi; ++v) {
        for (index_t s = 0; s < p.views(); ++s) {
            const auto row = p.row(s, v);
            std::copy(row.begin(), row.end(),
                      plane.begin() + static_cast<std::ptrdiff_t>(s * p.cols()));
        }
        tex.copy_planes(plane, v - band.lo, 1);
    }
    return tex;
}

TEST(Reference, EmptyStackLeavesVolumeZero)
{
    const CbctGeometry g = geo();
    ProjectionStack p(g.num_proj, g.nv, g.nu, 0.0f);
    Volume vol(g.vol);
    backproject_reference(p, projection_matrices(g), g, vol);
    for (float v : vol.span()) ASSERT_EQ(v, 0.0f);
}

TEST(Reference, UniformStackGivesPositiveCentre)
{
    const CbctGeometry g = geo();
    ProjectionStack p(g.num_proj, g.nv, g.nu, 1.0f);
    Volume vol(g.vol);
    backproject_reference(p, projection_matrices(g), g, vol);
    // Every view contributes ~1/z^2 with z near 1 at the axis.
    const float centre = vol.at(g.vol.x / 2, g.vol.y / 2, g.vol.z / 2);
    EXPECT_NEAR(centre, static_cast<float>(g.num_proj), 0.25f * static_cast<float>(g.num_proj));
}

TEST(Reference, SingleViewDepositsAlongRay)
{
    const CbctGeometry g = geo();
    ProjectionStack p(1, g.nv, g.nu, 0.0f);
    // Light up the principal point only.
    p.at(0, g.nv / 2, g.nu / 2) = 1.0f;
    const auto mats = projection_matrices(g);
    Volume vol(g.vol);
    backproject_reference(p, std::span<const Mat34>(mats.data(), 1), vol, 0, g.nu, g.nv);
    // Central voxel is on the central ray (geometry is centred, even sizes
    // put the axis between voxels — check the 4 central voxels share it).
    float centre = 0.0f;
    for (index_t j : {g.vol.y / 2 - 1, g.vol.y / 2})
        for (index_t i : {g.vol.x / 2 - 1, g.vol.x / 2})
            centre = std::max(centre, vol.at(i, j, g.vol.z / 2));
    EXPECT_GT(centre, 0.1f);
    // A corner voxel far off the ray gets nothing.
    EXPECT_EQ(vol.at(0, 0, 0), 0.0f);
}

TEST(Reference, SubPixelInterpolatesBilinearly)
{
    ProjectionStack p(1, 2, 2, 0.0f);
    p.at(0, 0, 0) = 1.0f;
    p.at(0, 0, 1) = 2.0f;
    p.at(0, 1, 0) = 3.0f;
    p.at(0, 1, 1) = 4.0f;
    EXPECT_FLOAT_EQ(sub_pixel(p, 0, 0.0f, 0.0f), 1.0f);
    EXPECT_FLOAT_EQ(sub_pixel(p, 0, 1.0f, 1.0f), 4.0f);
    EXPECT_FLOAT_EQ(sub_pixel(p, 0, 0.5f, 0.0f), 1.5f);
    EXPECT_FLOAT_EQ(sub_pixel(p, 0, 0.0f, 0.5f), 2.0f);
    EXPECT_FLOAT_EQ(sub_pixel(p, 0, 0.5f, 0.5f), 2.5f);
}

TEST(Streaming, ScalarMatchesReferenceOnFullVolume)
{
    // The retained Listing-1 scalar loop keeps the paper's exact 1e-5
    // agreement with the Algorithm-1 reference (Sec. 6.1).
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 7);
    const auto mats = projection_matrices(g);

    Volume ref(g.vol);
    backproject_reference(p, mats, g, ref);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
    Volume out(g.vol);
    backproject_streaming_scalar(tex, mats, out, StreamOffsets{0, 0}, g.nu, g.nv);

    for (index_t i = 0; i < out.count(); ++i)
        ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(Streaming, DefaultMatchesReferenceWithinSimdBound)
{
    // The vectorised default reorders the per-voxel arithmetic (fma walks
    // from double row constants), so agreement with the reference is the
    // documented relative bound, not bitwise.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 7);
    const auto mats = projection_matrices(g);

    Volume ref(g.vol);
    backproject_reference(p, mats, g, ref);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
    Volume out(g.vol);
    backproject_streaming(tex, mats, out, StreamOffsets{0, 0}, g.nu, g.nv);

    const float tol = kSimdVsScalarRelBound * max_abs(ref.span());
    for (index_t i = 0; i < out.count(); ++i)
        ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], tol);
}

TEST(Streaming, SlabsWithOffsetsTileTheFullVolume)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 8);
    const auto mats = projection_matrices(g);

    Volume ref(g.vol);
    backproject_reference(p, mats, g, ref);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
    const float tol = kSimdVsScalarRelBound * max_abs(ref.span());
    const index_t nb = 7;  // deliberately not dividing Nz
    for (index_t k0 = 0; k0 < g.vol.z; k0 += nb) {
        const index_t len = std::min(nb, g.vol.z - k0);
        Volume slab(Dim3{g.vol.x, g.vol.y, len});
        backproject_streaming(tex, mats, slab, StreamOffsets{k0, 0}, g.nu, g.nv);
        for (index_t k = 0; k < len; ++k)
            for (index_t j = 0; j < g.vol.y; ++j)
                for (index_t i = 0; i < g.vol.x; ++i)
                    ASSERT_NEAR(slab.at(i, j, k), ref.at(i, j, k0 + k), tol)
                        << i << "," << j << "," << k0 + k;
    }
}

TEST(Streaming, BandRestrictedTextureMatchesFullForItsSlab)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 9);
    const auto mats = projection_matrices(g);
    const Range slab{4, 12};
    const Range band = compute_ab(g, slab);

    Volume ref(Dim3{g.vol.x, g.vol.y, slab.length()});
    backproject_reference(p, mats, ref, slab.lo, g.nu, g.nv);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, band);
    Volume out(Dim3{g.vol.x, g.vol.y, slab.length()});
    backproject_streaming(tex, mats, out, StreamOffsets{slab.lo, band.lo}, g.nu, g.nv);

    const float tol = kSimdVsScalarRelBound * max_abs(ref.span());
    for (index_t i = 0; i < out.count(); ++i)
        ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], tol);
}

TEST(Streaming, CircularDepthReusePreservesResults)
{
    // Simulate the Algorithm-3 streaming pattern: a texture of H rows where
    // consecutive slabs overwrite retired rows.  Results must match the
    // non-streamed reference slab by slab.
    const CbctGeometry g = geo(24);
    const ProjectionStack p = random_stack(g, 10);
    const auto mats = projection_matrices(g);
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 6);

    // H = max rows any slab needs; first band's origin anchors the wrap.
    index_t h = 0;
    for (const auto& pl : plans) h = std::max(h, pl.rows.length());
    const index_t origin = plans.front().rows.lo;

    sim::Device dev(64u << 20);
    sim::Texture3 tex(dev, g.nu, g.num_proj, h);
    std::vector<float> plane(static_cast<std::size_t>(g.nu * g.num_proj));

    for (const auto& pl : plans) {
        // Upload only the differential rows, at circular positions
        // (v - origin) % H — Algorithm 3's s % H bookkeeping.
        for (index_t v = pl.delta.lo; v < pl.delta.hi; ++v) {
            for (index_t s = 0; s < g.num_proj; ++s) {
                const auto row = p.row(s, v);
                std::copy(row.begin(), row.end(),
                          plane.begin() + static_cast<std::ptrdiff_t>(s * g.nu));
            }
            tex.copy_planes(plane, (v - origin) % h, 1);
        }

        Volume slab(Dim3{g.vol.x, g.vol.y, pl.slab.length()});
        backproject_streaming(tex, mats, slab, StreamOffsets{pl.slab.lo, origin}, g.nu, g.nv);

        Volume ref(Dim3{g.vol.x, g.vol.y, pl.slab.length()});
        backproject_reference(p, mats, ref, pl.slab.lo, g.nu, g.nv);
        const float tol = kSimdVsScalarRelBound * max_abs(ref.span());
        for (index_t i = 0; i < slab.count(); ++i)
            ASSERT_NEAR(slab.span()[static_cast<std::size_t>(i)],
                        ref.span()[static_cast<std::size_t>(i)], tol)
                << "slab at " << pl.slab.lo;
    }
}

TEST(StreamingIncremental, MatchesBaseKernelToRounding)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 21);
    const auto mats = projection_matrices(g);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, Range{0, g.nv});
    Volume base(g.vol), fast(g.vol);
    backproject_streaming(tex, mats, base, StreamOffsets{0, 0}, g.nu, g.nv);
    backproject_streaming_incremental(tex, mats, fast, StreamOffsets{0, 0}, g.nu, g.nv);

    float scale = 0.0f;
    for (float v : base.span()) scale = std::max(scale, std::abs(v));
    for (index_t i = 0; i < base.count(); ++i)
        ASSERT_NEAR(fast.span()[static_cast<std::size_t>(i)],
                    base.span()[static_cast<std::size_t>(i)], 2e-4f * scale);
}

TEST(StreamingIncremental, HandlesSlabOffsetsAndBands)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 22);
    const auto mats = projection_matrices(g);
    const Range slab{6, 14};
    const Range band = compute_ab(g, slab);

    sim::Device dev(64u << 20);
    const sim::Texture3 tex = make_texture(dev, p, band);
    Volume ref(Dim3{g.vol.x, g.vol.y, slab.length()});
    backproject_reference(p, mats, ref, slab.lo, g.nu, g.nv);
    Volume fast(Dim3{g.vol.x, g.vol.y, slab.length()});
    backproject_streaming_incremental(tex, mats, fast, StreamOffsets{slab.lo, band.lo}, g.nu,
                                      g.nv);

    float scale = 0.0f;
    for (float v : ref.span()) scale = std::max(scale, std::abs(v));
    for (index_t i = 0; i < ref.count(); ++i)
        ASSERT_NEAR(fast.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 2e-4f * scale);
}

TEST(RtkStyle, MatchesReference)
{
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 11);
    const auto mats = projection_matrices(g);

    Volume ref(g.vol);
    backproject_reference(p, mats, g, ref);

    sim::Device dev(256u << 20);
    Volume out(g.vol);
    backproject_rtk_style(dev, p, mats, g, out, /*batch_views=*/8);
    for (index_t i = 0; i < out.count(); ++i)
        ASSERT_NEAR(out.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(RtkStyle, FailsWhenVolumeExceedsDeviceCapacity)
{
    // The Table-5 "✗" cells: the classical kernel cannot reconstruct a
    // volume larger than device memory.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 12);
    const auto mats = projection_matrices(g);
    sim::Device dev(static_cast<std::size_t>(g.vol.count()) * sizeof(float) / 2);
    Volume out(g.vol);
    EXPECT_THROW(backproject_rtk_style(dev, p, mats, g, out, 8), sim::DeviceOutOfMemory);
}

TEST(RtkStyle, RedundantTrafficExceedsStreaming)
{
    // Table 2's point: the classical scheme moves full frames; the
    // decomposed scheme moves each needed row once.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 13);
    const auto mats = projection_matrices(g);

    sim::Device rtk_dev(256u << 20);
    Volume out(g.vol);
    backproject_rtk_style(rtk_dev, p, mats, g, out, 8);

    sim::Device str_dev(256u << 20);
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, 6);
    index_t streamed_rows = 0;
    for (const auto& pl : plans) streamed_rows += pl.delta.length();
    const std::uint64_t streaming_bytes = static_cast<std::uint64_t>(streamed_rows) *
                                          static_cast<std::uint64_t>(g.nu * g.num_proj) *
                                          sizeof(float);
    EXPECT_GE(rtk_dev.h2d_stats().bytes, streaming_bytes);
}

TEST(Streaming, ViewBatchesAccumulate)
{
    // Processing the view dimension in two halves (the Np split of a
    // 2-rank group, before reduction) must sum to the full result.
    const CbctGeometry g = geo();
    const ProjectionStack p = random_stack(g, 14);
    const auto mats = projection_matrices(g);

    Volume ref(g.vol);
    backproject_reference(p, mats, g, ref);

    sim::Device dev(128u << 20);
    Volume acc(g.vol);
    for (index_t part = 0; part < 2; ++part) {
        const Range views = split_even(g.num_proj, 2, part);
        ProjectionStack sub(views.length(), g.nv, g.nu);
        for (index_t s = views.lo; s < views.hi; ++s) {
            const auto src = p.view(s);
            const auto dst = sub.view(s - views.lo);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        const sim::Texture3 tex = make_texture(dev, sub, Range{0, g.nv});
        backproject_streaming(
            tex, std::span<const Mat34>(mats.data() + views.lo, static_cast<std::size_t>(views.length())),
            acc, StreamOffsets{0, 0}, g.nu, g.nv);
    }
    const float tol = kSimdVsScalarRelBound * max_abs(ref.span());
    for (index_t i = 0; i < acc.count(); ++i)
        ASSERT_NEAR(acc.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], tol);
}

TEST(Streaming, RejectsMismatchedMatrixCount)
{
    const CbctGeometry g = geo();
    sim::Device dev(64u << 20);
    sim::Texture3 tex(dev, g.nu, 4, 8);
    const auto mats = projection_matrices(g);  // 36 matrices vs height 4
    Volume vol(g.vol);
    EXPECT_THROW(backproject_streaming(tex, mats, vol, StreamOffsets{}, g.nu, g.nv),
                 std::invalid_argument);
}

}  // namespace
}  // namespace xct::backproj
