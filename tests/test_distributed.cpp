// Distributed-framework tests: any Ng x Nr layout must reproduce the
// single-rank reconstruction through the segmented reduction (the paper's
// correctness bar: <= 1e-5 against the reference).
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>

#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

namespace xct::recon {
namespace {

CbctGeometry geo(index_t n = 32, index_t np = 48)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.4;
    g.dv = 0.4;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

std::vector<phantom::Ellipsoid> make_phantom(const CbctGeometry& g)
{
    return phantom::shepp_logan_3d(g.dx * static_cast<double>(g.vol.x) / 2.4);
}

SourceFactory phantom_factory(const std::vector<phantom::Ellipsoid>& ph, const CbctGeometry& g)
{
    return [&ph, g](RankId) { return std::make_unique<PhantomSource>(ph, g); };
}

Volume single_rank_reference(const CbctGeometry& g, const std::vector<phantom::Ellipsoid>& ph)
{
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    return reconstruct_fdk(cfg, src).volume;
}

/// Layout sweep: every (Ng, Nr) combination must agree with one rank.
class LayoutSweep : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(LayoutSweep, MatchesSingleRank)
{
    const auto [ng, nr] = GetParam();
    const CbctGeometry g = geo();
    const auto ph = make_phantom(g);
    const Volume ref = single_rank_reference(g, ph);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{ng, nr};
    cfg.batches = 4;
    const DistributedResult r = reconstruct_distributed(cfg, phantom_factory(ph, g));

    ASSERT_EQ(r.volume.size(), ref.size());
    for (index_t i = 0; i < ref.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 2e-5f)
            << "Ng=" << ng << " Nr=" << nr << " at " << i;
}

using Layout = std::pair<index_t, index_t>;
INSTANTIATE_TEST_SUITE_P(Layouts, LayoutSweep,
                         ::testing::Values(Layout{1, 1}, Layout{1, 2}, Layout{2, 1}, Layout{2, 2},
                                           Layout{4, 1}, Layout{1, 4}, Layout{4, 2}, Layout{2, 4},
                                           Layout{8, 2}));

TEST(Distributed, HierarchicalReductionMatchesFlat)
{
    const CbctGeometry g = geo();
    const auto ph = make_phantom(g);

    DistributedConfig flat;
    flat.geometry = g;
    flat.layout = GroupLayout{2, 4};
    const DistributedResult a = reconstruct_distributed(flat, phantom_factory(ph, g));

    DistributedConfig hier = flat;
    hier.ranks_per_node = 2;
    const DistributedResult b = reconstruct_distributed(hier, phantom_factory(ph, g));

    for (index_t i = 0; i < a.volume.count(); ++i)
        ASSERT_NEAR(a.volume.span()[static_cast<std::size_t>(i)],
                    b.volume.span()[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(Distributed, SequentialPipelinesAlsoAgree)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = make_phantom(g);
    const Volume ref = single_rank_reference(g, ph);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    cfg.threaded = false;
    const DistributedResult r = reconstruct_distributed(cfg, phantom_factory(ph, g));
    for (index_t i = 0; i < ref.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(Distributed, StoresSlabsToPfs)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = make_phantom(g);
    const auto dir = std::filesystem::temp_directory_path() / "xct_dist_pfs_test";
    std::filesystem::remove_all(dir);
    io::Pfs pfs(dir, 10.0, 10.0);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    cfg.batches = 3;
    const DistributedResult r = reconstruct_distributed(cfg, phantom_factory(ph, g), &pfs);

    // Every stored slab round-trips to the assembled volume.
    EXPECT_GT(pfs.store_stats().bytes, 0u);
    index_t slices_seen = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".xvol") continue;  // skip digest sidecars
        const Volume slab = io::read_volume(entry.path());
        slices_seen += slab.size().z;
    }
    EXPECT_EQ(slices_seen, g.vol.z);
    std::filesystem::remove_all(dir);
    (void)r;
}

TEST(Distributed, PerRankStatsReported)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = make_phantom(g);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const DistributedResult r = reconstruct_distributed(cfg, phantom_factory(ph, g));
    ASSERT_EQ(r.ranks.size(), 4u);
    for (const auto& s : r.ranks) {
        EXPECT_GT(s.t_bp, 0.0);
        EXPECT_GT(s.t_reduce, 0.0);
        EXPECT_GT(s.h2d.bytes, 0u);
    }
    EXPECT_GT(r.wall_seconds, 0.0);
    // Only group roots store.
    index_t stores = 0;
    for (const auto& s : r.ranks)
        if (s.t_store > 0.0) ++stores;
    EXPECT_EQ(stores, 2);
}

TEST(Distributed, ViewShareShrinksPerRankH2dTraffic)
{
    // Doubling Nr halves each rank's projection upload (Eq. 5's Np/Nr).
    const CbctGeometry g = geo(24, 48);
    const auto ph = make_phantom(g);

    DistributedConfig one;
    one.geometry = g;
    one.layout = GroupLayout{1, 1};
    const DistributedResult a = reconstruct_distributed(one, phantom_factory(ph, g));

    DistributedConfig four;
    four.geometry = g;
    four.layout = GroupLayout{1, 4};
    const DistributedResult b = reconstruct_distributed(four, phantom_factory(ph, g));

    // Per-rank H2D bytes: projections dominate; slab D2H identical.  The
    // four-rank projection share is a quarter of the single rank's.
    EXPECT_NEAR(static_cast<double>(b.ranks[0].h2d.bytes),
                static_cast<double>(a.ranks[0].h2d.bytes) / 4.0,
                static_cast<double>(a.ranks[0].h2d.bytes) * 0.05);
}

TEST(Distributed, RejectsBadLayouts)
{
    const CbctGeometry g = geo(16, 16);
    const auto ph = make_phantom(g);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{32, 1};  // more groups than slices? 32 > 16
    EXPECT_THROW(reconstruct_distributed(cfg, phantom_factory(ph, g)), std::invalid_argument);
    cfg.layout = GroupLayout{1, 64};  // more ranks than views
    EXPECT_THROW(reconstruct_distributed(cfg, phantom_factory(ph, g)), std::invalid_argument);
}

TEST(Distributed, DiskBackedSourceMatchesInMemory)
{
    // End-to-end with real file I/O: projections staged to a Pfs, every
    // rank reading only its view share x row bands via partial reads.
    const CbctGeometry g = geo(24, 36);
    const auto ph = make_phantom(g);
    const Volume ref = single_rank_reference(g, ph);

    const auto dir = std::filesystem::temp_directory_path() / "xct_dist_src_test";
    std::filesystem::remove_all(dir);
    io::Pfs pfs(dir, 2.0, 2.0);
    {
        PhantomSource gen(ph, g);
        pfs.store_stack("proj.xstk", gen.load(Range{0, g.num_proj}, Range{0, g.nv}));
    }
    pfs.reset_stats();

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    std::mutex pfs_mutex;  // Pfs accounting is shared; serialise rank loads
    auto factory = [&](RankId) {
        struct LockedPfsSource final : ProjectionSource {
            LockedPfsSource(io::Pfs& p, std::mutex& m) : src(p, "proj.xstk"), mu(&m) {}
            ProjectionStack load(Range views, Range band) override
            {
                std::lock_guard lk(*mu);
                return src.load(views, band);
            }
            PfsSource src;
            std::mutex* mu;
        };
        return std::make_unique<LockedPfsSource>(pfs, pfs_mutex);
    };
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    for (index_t i = 0; i < ref.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 2e-5f);

    // Each view's needed band moved once per owning rank; far less than
    // ranks x full frames.
    const std::uint64_t full = static_cast<std::uint64_t>(g.num_proj * g.nv * g.nu) *
                               sizeof(float);
    EXPECT_LT(pfs.load_stats().bytes, full);
    std::filesystem::remove_all(dir);
}

TEST(Distributed, BeerLawPathMatchesIdealPath)
{
    const CbctGeometry g = geo(24, 36);
    const auto ph = make_phantom(g);
    const BeerLawScalar cal{0.0f, 65536.0f};

    DistributedConfig ideal;
    ideal.geometry = g;
    ideal.layout = GroupLayout{2, 2};
    const DistributedResult a = reconstruct_distributed(ideal, phantom_factory(ph, g));

    DistributedConfig counts = ideal;
    counts.beer = cal;
    auto counts_factory = [&ph, g, cal](RankId) {
        return std::make_unique<PhantomSource>(ph, g, cal);
    };
    const DistributedResult b = reconstruct_distributed(counts, counts_factory);

    EXPECT_LT(rmse(a.volume, b.volume), 2e-4);
}

}  // namespace
}  // namespace xct::recon
