// SIRT baseline tests: residual decrease, convergence towards the phantom,
// and operator sanity.
#include <gtest/gtest.h>

#include "iterative/sirt.hpp"
#include "phantom/shepp_logan.hpp"
#include "recon/fdk.hpp"

namespace xct::iterative {
namespace {

CbctGeometry geo()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 24;
    g.nu = 32;
    g.nv = 32;
    g.du = 1.2;
    g.dv = 1.2;
    g.vol = {16, 16, 16};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

TEST(Sirt, ResidualDecreasesMonotonically)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> ph{
        {1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0},
        {-0.5, 1.2, 1.2, 1.2, 1.0, 0.5, 0.0, 0.0},
    };
    const ProjectionStack b = phantom::forward_project(ph, g);
    SirtConfig cfg;
    cfg.iterations = 8;
    const SirtResult r = reconstruct_sirt(g, b, cfg);
    ASSERT_EQ(r.residuals.size(), 8u);
    for (std::size_t i = 1; i < r.residuals.size(); ++i)
        EXPECT_LT(r.residuals[i], r.residuals[i - 1]) << "iteration " << i;
}

TEST(Sirt, ConvergesTowardsPhantomValues)
{
    const CbctGeometry g = geo();
    const std::vector<phantom::Ellipsoid> ph{{1.0, 3.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0}};
    const ProjectionStack b = phantom::forward_project(ph, g);
    SirtConfig cfg;
    cfg.iterations = 25;
    const SirtResult r = reconstruct_sirt(g, b, cfg);
    // Centre voxel approaches density 1.
    EXPECT_NEAR(r.volume.at(8, 8, 8), 1.0f, 0.2f);
    // A far corner stays near 0.
    EXPECT_NEAR(r.volume.at(1, 1, 1), 0.0f, 0.15f);
}

TEST(Sirt, IterationCallbackFires)
{
    const CbctGeometry g = geo();
    const ProjectionStack b(g.num_proj, g.nv, g.nu, 0.1f);
    SirtConfig cfg;
    cfg.iterations = 3;
    index_t calls = 0;
    cfg.on_iteration = [&](index_t, double) { ++calls; };
    reconstruct_sirt(g, b, cfg);
    EXPECT_EQ(calls, 3);
}

TEST(Sirt, ZeroProjectionsGiveZeroVolume)
{
    const CbctGeometry g = geo();
    const ProjectionStack b(g.num_proj, g.nv, g.nu, 0.0f);
    SirtConfig cfg;
    cfg.iterations = 2;
    const SirtResult r = reconstruct_sirt(g, b, cfg);
    for (float v : r.volume.span()) ASSERT_NEAR(v, 0.0f, 1e-6f);
    EXPECT_NEAR(r.residuals.back(), 0.0, 1e-6);
}

TEST(Sirt, RejectsMismatchedStack)
{
    const CbctGeometry g = geo();
    const ProjectionStack wrong(4, g.nv, g.nu, 0.0f);
    EXPECT_THROW(reconstruct_sirt(g, wrong), std::invalid_argument);
}

TEST(BackprojectUnweighted, UniformStackGivesViewCountAtAxis)
{
    const CbctGeometry g = geo();
    const ProjectionStack p(g.num_proj, g.nv, g.nu, 1.0f);
    Volume v(g.vol);
    backproject_unweighted(p, g, v);
    // No 1/z^2 weighting: each view contributes exactly 1 at the axis.
    float centre = 0.0f;
    for (index_t j : {g.vol.y / 2 - 1, g.vol.y / 2})
        for (index_t i : {g.vol.x / 2 - 1, g.vol.x / 2})
            centre = std::max(centre, v.at(i, j, g.vol.z / 2));
    EXPECT_NEAR(centre, static_cast<float>(g.num_proj), 0.5f);
}

}  // namespace
}  // namespace xct::iterative
