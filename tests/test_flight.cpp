// Flight-recorder tests: ring wraparound, allocation-free warm recording,
// snapshot integrity under concurrent writers, name interning, ring reuse
// across thread lifetimes, and the post-mortem dump paths (manual,
// watchdog-tripped via an injected rank stall, and budget/armed gating).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/scratch.hpp"
#include "faults/fault.hpp"
#include "integrity/watchdog.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"

namespace xct::telemetry::flight {
namespace {

double span_begin()
{
    return wall_now() - 1e-6;
}

std::string slurp(const std::filesystem::path& p)
{
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::filesystem::path fresh_dir(const char* leaf)
{
    const auto dir = std::filesystem::temp_directory_path() / leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

/// Every test leaves post-mortems disarmed for the suites that follow.
struct Disarmed {
    ~Disarmed() { disarm_postmortem(); }
};

TEST(Flight, RecordedSpansAppearInSnapshot)
{
    static const char* kName = "flight.test.appear";
    record("test", kName, span_begin(), wall_now(), 7, 128);
    const auto events = snapshot();
    const auto it = std::find_if(events.begin(), events.end(),
                                 [](const FlightEvent& e) { return e.name == kName; });
    ASSERT_NE(it, events.end());
    EXPECT_EQ(it->item, 7);
    EXPECT_EQ(it->bytes, 128u);
    EXPECT_LE(it->begin, it->end);
}

TEST(Flight, RingWrapsKeepingTheMostRecentSpans)
{
    static const char* kName = "flight.test.wrap";
    const std::size_t total = kRingCapacity + 100;
    for (std::size_t i = 0; i < total; ++i)
        record("test", kName, span_begin(), wall_now(), static_cast<index_t>(i));
    const auto events = snapshot();
    std::vector<index_t> items;
    for (const FlightEvent& e : events)
        if (e.name == kName) items.push_back(e.item);
    ASSERT_FALSE(items.empty());
    EXPECT_LE(items.size(), kRingCapacity);
    // The newest span survived; everything overwritten was the oldest.
    EXPECT_EQ(*std::max_element(items.begin(), items.end()),
              static_cast<index_t>(total - 1));
    EXPECT_GE(*std::min_element(items.begin(), items.end()),
              static_cast<index_t>(total - kRingCapacity));
}

TEST(Flight, WarmRecordingAllocatesNothing)
{
    warm();  // ring exists from here on
    record("test", "flight.test.warmup", span_begin(), wall_now());
    const std::uint64_t e0 = scratch::heap_events();
    for (int i = 0; i < 10000; ++i)
        record("test", "flight.test.warm", span_begin(), wall_now(), i, 64);
    EXPECT_EQ(scratch::heap_events() - e0, 0u);
}

TEST(Flight, TotalRecordsIsMonotonic)
{
    const std::uint64_t r0 = total_records();
    for (int i = 0; i < 32; ++i) record("test", "flight.test.count", span_begin(), wall_now());
    EXPECT_GE(total_records(), r0 + 32);
}

TEST(Flight, InternReturnsStablePointers)
{
    // Well-known pipeline stage names resolve to the same pointer every
    // time (the lock-free path)...
    EXPECT_EQ(intern("load"), intern("load"));
    EXPECT_EQ(intern("bp"), intern("bp"));
    // ...and dynamic names intern once: second lookup allocates nothing.
    const char* first = intern("flight.test.dynamic-name");
    const std::uint64_t e0 = scratch::heap_events();
    EXPECT_EQ(intern("flight.test.dynamic-name"), first);
    EXPECT_EQ(scratch::heap_events() - e0, 0u);
    EXPECT_STREQ(first, "flight.test.dynamic-name");
}

TEST(Flight, ExitedThreadsRingIsReusedNotLeaked)
{
    const auto run_thread = [] {
        std::thread([] { record("test", "flight.test.thread", span_begin(), wall_now()); })
            .join();
    };
    run_thread();  // may create one new ring
    const std::size_t rings = ring_count();
    for (int i = 0; i < 8; ++i) run_thread();  // must all reuse the retired ring
    EXPECT_EQ(ring_count(), rings);
}

TEST(Flight, SnapshotIsCleanUnderConcurrentWriters)
{
    // Hammer the ring from writer threads while snapshotting: every
    // decoded span must be internally consistent (no torn reads).
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&stop, t] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                const double b = 1000.0 * t + static_cast<double>(i);
                record("test", "flight.test.torn", b, b + 0.5, static_cast<index_t>(t));
                ++i;
            }
        });
    for (int pass = 0; pass < 50; ++pass) {
        for (const FlightEvent& e : snapshot()) {
            if (std::string_view(e.name) != "flight.test.torn") continue;
            // begin/end written as a pair: a torn slot would pair a begin
            // from one write with the end of another.
            EXPECT_DOUBLE_EQ(e.end - e.begin, 0.5);
        }
    }
    stop.store(true);
    for (auto& w : writers) w.join();
}

TEST(Flight, DumpWritesChromeTraceRebasedToZero)
{
    static const char* kName = "flight.test.dump-span";
    record("test", kName, span_begin(), wall_now());
    const auto dir = fresh_dir("xct_flight_dump");
    const auto path = dir / "manual.json";
    dump(path);
    const std::string text = slurp(path);
    EXPECT_NE(text.find("traceEvents"), std::string::npos);
    EXPECT_NE(text.find(kName), std::string::npos);
    // Rebased timebase: no raw steady-clock microsecond stamps (which
    // would be ~1e12); the earliest event starts at ts 0.
    EXPECT_NE(text.find("\"ts\":0"), std::string::npos);
}

TEST(Flight, DumpPostmortemRespectsArming)
{
    Disarmed guard;
    disarm_postmortem();
    EXPECT_FALSE(postmortem_armed());
    EXPECT_TRUE(dump_postmortem("test").empty());

    const auto dir = fresh_dir("xct_flight_armed");
    arm_postmortem(dir);
    EXPECT_TRUE(postmortem_armed());
    record("test", "flight.test.armed", span_begin(), wall_now());
    const auto path = dump_postmortem("test");
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_NE(path.string().find("flight_test_"), std::string::npos);
    EXPECT_GE(registry().counter("flight.dumps.test").value(), 1u);
}

TEST(Flight, InjectedRankStallTripsWatchdogIntoPostmortem)
{
    // The e2e acceptance path: a kind=stall fault makes a supervised
    // section overrun its deadline; the watchdog's expiry handler dumps
    // the flight rings as a post-mortem trace.
    Disarmed guard;
    const auto dir = fresh_dir("xct_flight_stall");
    arm_postmortem(dir);
    record("test", "flight.test.before-stall", span_begin(), wall_now(), 3);

    faults::ScopedPlan install(
        faults::FaultPlan::parse("source.load:kind=stall,delay=0.05,after=0,count=1"));
    integrity::Watchdog wd(0.005);
    EXPECT_THROW(wd.supervise("source.load", [] { faults::stall_point("source.load"); }),
                 integrity::DeadlineExceeded);

    std::filesystem::path trace;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().filename().string().rfind("flight_watchdog_", 0) == 0)
            trace = entry.path();
    ASSERT_FALSE(trace.empty()) << "watchdog expiry did not write a post-mortem trace";
    const std::string text = slurp(trace);
    EXPECT_NE(text.find("traceEvents"), std::string::npos);
    // The recent past — spans recorded before the stall — is in the dump.
    EXPECT_NE(text.find("flight.test.before-stall"), std::string::npos);
}

}  // namespace
}  // namespace xct::telemetry::flight
