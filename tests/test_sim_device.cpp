// Simulated-accelerator tests: capacity accounting, transfer statistics,
// and the CUDA-like texture semantics (clamp + circular depth) that the
// streaming kernel depends on.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/device.hpp"

namespace xct::sim {
namespace {

TEST(Device, TracksAllocations)
{
    Device dev(1024);
    EXPECT_EQ(dev.capacity(), 1024u);
    EXPECT_EQ(dev.used(), 0u);
    dev.allocate(100);
    EXPECT_EQ(dev.used(), 100u);
    EXPECT_EQ(dev.available(), 924u);
    dev.release(100);
    EXPECT_EQ(dev.used(), 0u);
}

TEST(Device, ThrowsOnExhaustion)
{
    Device dev(256);
    dev.allocate(200);
    try {
        dev.allocate(100);
        FAIL() << "expected DeviceOutOfMemory";
    } catch (const DeviceOutOfMemory& e) {
        EXPECT_EQ(e.requested(), 100u);
        EXPECT_EQ(e.available(), 56u);
    }
}

TEST(Device, RejectsZeroCapacity)
{
    EXPECT_THROW(Device(0), std::invalid_argument);
}

TEST(DeviceBuffer, RaiiReleasesOnDestruction)
{
    Device dev(1024);
    {
        DeviceBuffer buf(dev, 64);  // 256 bytes
        EXPECT_EQ(dev.used(), 256u);
    }
    EXPECT_EQ(dev.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership)
{
    Device dev(1024);
    DeviceBuffer a(dev, 32);
    DeviceBuffer b(std::move(a));
    EXPECT_EQ(b.count(), 32);
    EXPECT_EQ(dev.used(), 128u);
}

TEST(DeviceBuffer, UploadDownloadRoundTripAndStats)
{
    Device dev(1 << 20, /*h2d_gbps=*/1.0, /*d2h_gbps=*/2.0);
    DeviceBuffer buf(dev, 16);
    std::vector<float> src(16);
    std::iota(src.begin(), src.end(), 0.0f);
    buf.upload(src);
    std::vector<float> dst(16, -1.0f);
    buf.download(dst);
    EXPECT_EQ(src, dst);

    EXPECT_EQ(dev.h2d_stats().bytes, 64u);
    EXPECT_EQ(dev.h2d_stats().transfers, 1u);
    EXPECT_EQ(dev.d2h_stats().bytes, 64u);
    // Modelled time: bytes / (GB/s); D2H link is twice as fast here.
    EXPECT_NEAR(dev.h2d_stats().seconds, 2.0 * dev.d2h_stats().seconds, 1e-15);
}

TEST(DeviceBuffer, PartialTransfersWithOffset)
{
    Device dev(1 << 20);
    DeviceBuffer buf(dev, 8);
    buf.fill(0.0f);
    const std::vector<float> src{1.0f, 2.0f};
    buf.upload(src, 3);
    std::vector<float> dst(2, 0.0f);
    buf.download(dst, 3);
    EXPECT_FLOAT_EQ(dst[0], 1.0f);
    EXPECT_FLOAT_EQ(dst[1], 2.0f);
    EXPECT_THROW(buf.upload(src, 7), std::invalid_argument);
}

TEST(DeviceBuffer, AllocationBeyondCapacityThrows)
{
    Device dev(100);
    EXPECT_THROW(DeviceBuffer(dev, 100), DeviceOutOfMemory);
}

TEST(Texture3, FetchLayoutIsDepthHeightWidth)
{
    Device dev(1 << 20);
    Texture3 tex(dev, 4, 3, 2);
    std::vector<float> planes(4 * 3 * 2);
    std::iota(planes.begin(), planes.end(), 0.0f);
    tex.copy_planes(planes, 0, 2);
    // Element (x=1, y=2, z=1): ((1*3 + 2)*4 + 1) = 21.
    EXPECT_FLOAT_EQ(tex.fetch(1, 2, 1), 21.0f);
}

TEST(Texture3, XClampReplicatesEdges)
{
    Device dev(1 << 20);
    Texture3 tex(dev, 3, 1, 1);
    const std::vector<float> p{10.0f, 20.0f, 30.0f};
    tex.copy_planes(p, 0, 1);
    EXPECT_FLOAT_EQ(tex.fetch(-5, 0, 0), 10.0f);
    EXPECT_FLOAT_EQ(tex.fetch(7, 0, 0), 30.0f);
}

TEST(Texture3, YClampReplicatesEdges)
{
    Device dev(1 << 20);
    Texture3 tex(dev, 1, 3, 1);
    const std::vector<float> p{1.0f, 2.0f, 3.0f};
    tex.copy_planes(p, 0, 1);
    EXPECT_FLOAT_EQ(tex.fetch(0, -1, 0), 1.0f);
    EXPECT_FLOAT_EQ(tex.fetch(0, 9, 0), 3.0f);
}

TEST(Texture3, DepthWrapsCircularly)
{
    // The devPixel z % dimZ addressing of Listing 1.
    Device dev(1 << 20);
    Texture3 tex(dev, 1, 1, 4);
    const std::vector<float> p{0.0f, 1.0f, 2.0f, 3.0f};
    tex.copy_planes(p, 0, 4);
    EXPECT_FLOAT_EQ(tex.fetch(0, 0, 5), 1.0f);
    EXPECT_FLOAT_EQ(tex.fetch(0, 0, 8), 0.0f);
    EXPECT_FLOAT_EQ(tex.fetch(0, 0, -1), 3.0f);  // defensive: negative wraps too
}

TEST(Texture3, CopyPlanesRejectsWrappedRange)
{
    Device dev(1 << 20);
    Texture3 tex(dev, 2, 2, 4);
    std::vector<float> p(2 * 2 * 2, 0.0f);
    EXPECT_THROW(tex.copy_planes(p, 3, 2), std::invalid_argument);
    EXPECT_THROW(tex.copy_planes(p, 0, 3), std::invalid_argument);  // size mismatch
}

TEST(Texture3, CopyPlanesAccountsH2dBytes)
{
    Device dev(1 << 20);
    Texture3 tex(dev, 8, 4, 4);
    std::vector<float> p(8 * 4 * 2, 1.0f);
    tex.copy_planes(p, 1, 2);
    EXPECT_EQ(dev.h2d_stats().bytes, p.size() * sizeof(float));
}

TEST(Texture3, CountsAgainstDeviceBudget)
{
    Device dev(16 * sizeof(float));
    Texture3 tex(dev, 2, 2, 4);  // exactly 16 floats
    EXPECT_EQ(dev.available(), 0u);
    EXPECT_THROW(Texture3(dev, 1, 1, 1), DeviceOutOfMemory);
}

TEST(Device, ResetStatsClearsCounters)
{
    Device dev(1 << 20);
    DeviceBuffer buf(dev, 4);
    std::vector<float> x(4, 0.0f);
    buf.upload(x);
    dev.reset_stats();
    EXPECT_EQ(dev.h2d_stats().bytes, 0u);
    EXPECT_EQ(dev.h2d_stats().transfers, 0u);
}

}  // namespace
}  // namespace xct::sim
