// Randomised end-to-end property sweep: for arbitrary geometries —
// anisotropic voxels, detector offsets, rotation-centre offsets, odd
// sizes, short scans — and arbitrary rank layouts, the distributed
// reconstruction must equal the single-rank one, and the decomposition
// invariants must hold.  This is the fuzz line of defence behind the
// hand-picked cases in the other suites.
#include <gtest/gtest.h>

#include <random>

#include "core/decompose.hpp"
#include "filter/parker.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

namespace xct::recon {
namespace {

struct RandomCase {
    CbctGeometry g;
    GroupLayout layout;
    index_t batches;
};

RandomCase make_case(unsigned seed)
{
    std::mt19937 rng(seed);
    auto pick = [&](index_t lo, index_t hi) {
        return std::uniform_int_distribution<index_t>(lo, hi)(rng);
    };
    auto pickd = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };

    RandomCase c;
    CbctGeometry& g = c.g;
    g.dso = pickd(40.0, 300.0);
    g.dsd = g.dso * pickd(1.3, 6.0);
    g.num_proj = pick(16, 60);
    g.nu = pick(30, 70);
    g.nv = pick(30, 70);
    g.du = pickd(0.2, 0.8);
    g.dv = pickd(0.2, 0.8);
    g.vol = {pick(10, 26), pick(10, 26), pick(10, 26)};
    // Keep the object inside the lateral FOV (off-FOV voxels are legal but
    // make the equality trivial).
    const double fov = g.du * (g.dso / g.dsd) * static_cast<double>(g.nu);
    g.dx = fov / static_cast<double>(g.vol.x) * pickd(0.4, 0.7);
    g.dy = fov / static_cast<double>(g.vol.y) * pickd(0.4, 0.7);
    g.dz = fov / static_cast<double>(g.vol.z) * pickd(0.4, 0.7);
    g.sigma_u = pickd(-3.0, 3.0);
    g.sigma_v = pickd(-3.0, 3.0);
    g.sigma_cor = pickd(-0.5, 0.5);
    if (seed % 3 == 0) {
        // Short scan with 5-40% over-scan.
        g.scan_range = (3.14159265358979 + 2.0 * filter::fan_half_angle(g)) * pickd(1.05, 1.4);
    }
    g.validate();

    c.layout = GroupLayout{pick(1, 3), pick(1, 3)};
    c.batches = pick(1, 6);
    return c;
}

std::vector<phantom::Ellipsoid> random_phantom(const CbctGeometry& g, unsigned seed)
{
    std::mt19937 rng(seed * 7919u + 13u);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    const double rx = g.dx * static_cast<double>(g.vol.x) / 2.0;
    const double ry = g.dy * static_cast<double>(g.vol.y) / 2.0;
    const double rz = g.dz * static_cast<double>(g.vol.z) / 2.0;
    std::vector<phantom::Ellipsoid> es;
    const int n = 2 + static_cast<int>(seed % 4);
    for (int i = 0; i < n; ++i) {
        phantom::Ellipsoid e;
        e.density = 0.2 + 0.5 * std::abs(u(rng));
        e.a = rx * (0.15 + 0.3 * std::abs(u(rng)));
        e.b = ry * (0.15 + 0.3 * std::abs(u(rng)));
        e.c = rz * (0.15 + 0.3 * std::abs(u(rng)));
        e.cx = 0.4 * rx * u(rng);
        e.cy = 0.4 * ry * u(rng);
        e.cz = 0.4 * rz * u(rng);
        e.phi = 3.14159 * u(rng);
        es.push_back(e);
    }
    return es;
}

class RandomE2E : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomE2E, DistributedEqualsSingleRank)
{
    const RandomCase c = make_case(GetParam());
    const auto ph = random_phantom(c.g, GetParam());

    PhantomSource single(ph, c.g);
    RankConfig one;
    one.geometry = c.g;
    one.batches = c.batches;
    const FdkResult ref = reconstruct_fdk(one, single);

    DistributedConfig cfg;
    cfg.geometry = c.g;
    cfg.layout = c.layout;
    cfg.batches = c.batches;
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, c.g); };
    const DistributedResult r = reconstruct_distributed(cfg, factory);

    float scale = 1e-3f;  // tolerance relative to the data magnitude
    for (float v : ref.volume.span()) scale = std::max(scale, std::abs(v));
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 3e-5f * scale)
            << "seed=" << GetParam() << " Ng=" << c.layout.num_groups
            << " Nr=" << c.layout.ranks_per_group << " Nc=" << c.batches;
}

TEST_P(RandomE2E, DecompositionInvariantsHold)
{
    const RandomCase c = make_case(GetParam());
    const CbctGeometry& g = c.g;

    // compute_ab is a conservative, near-tight cover of the brute-force
    // requirement for arbitrary slabs.
    std::mt19937 rng(GetParam() + 101u);
    for (int t = 0; t < 5; ++t) {
        const index_t lo = std::uniform_int_distribution<index_t>(0, g.vol.z - 1)(rng);
        const index_t hi = std::uniform_int_distribution<index_t>(lo + 1, g.vol.z)(rng);
        const Range fast = compute_ab(g, Range{lo, hi});
        const Range exact = compute_ab_exhaustive(g, Range{lo, hi}, 240);
        ASSERT_LE(fast.lo, exact.lo);
        ASSERT_GE(fast.hi, exact.hi);
    }

    // Slab plans: deltas disjoint, union equals union of bands.
    const index_t nb = std::max<index_t>(1, g.vol.z / c.batches);
    const auto plans = plan_slabs(g, Range{0, g.vol.z}, nb);
    std::vector<int> delta_cover(static_cast<std::size_t>(g.nv), 0);
    std::vector<int> needed(static_cast<std::size_t>(g.nv), 0);
    for (const auto& p : plans) {
        for (index_t v = p.delta.lo; v < p.delta.hi; ++v)
            delta_cover[static_cast<std::size_t>(v)]++;
        for (index_t v = p.rows.lo; v < p.rows.hi; ++v) needed[static_cast<std::size_t>(v)] = 1;
    }
    for (index_t v = 0; v < g.nv; ++v) {
        ASSERT_LE(delta_cover[static_cast<std::size_t>(v)], 1) << "row " << v << " moved twice";
        ASSERT_EQ(delta_cover[static_cast<std::size_t>(v)], needed[static_cast<std::size_t>(v)]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomE2E, ::testing::Range(1u, 21u));

}  // namespace
}  // namespace xct::recon
