// Geometry and projection-matrix tests: the matrix formulation of Sec. 4.1
// must agree with direct trigonometric projection for arbitrary geometries
// including the Table-4 calibration offsets.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "core/geometry.hpp"

namespace xct {
namespace {

CbctGeometry small_geometry()
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 90;
    g.nu = 64;
    g.nv = 48;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {32, 32, 24};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
    return g;
}

TEST(Geometry, ValidateAcceptsSaneParameters)
{
    EXPECT_NO_THROW(small_geometry().validate());
}

TEST(Geometry, ValidateRejectsDetectorBehindObject)
{
    CbctGeometry g = small_geometry();
    g.dsd = g.dso / 2;
    EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Geometry, ValidateRejectsNonPositivePitch)
{
    CbctGeometry g = small_geometry();
    g.du = 0.0;
    EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Geometry, MagnificationMatchesPaperCoffeeBean)
{
    CbctGeometry g = small_geometry();
    g.dsd = 151.7;
    g.dso = 16.0;
    EXPECT_NEAR(g.magnification(), 9.48, 0.01);  // Sec. 6.1
}

TEST(Geometry, AnglesSpanFullScan)
{
    const CbctGeometry g = small_geometry();
    EXPECT_DOUBLE_EQ(g.angle_of(0), 0.0);
    EXPECT_NEAR(g.angle_of(g.num_proj / 2), std::numbers::pi, 1e-12);
}

TEST(Geometry, CentreVoxelProjectsToPrincipalPoint)
{
    const CbctGeometry g = small_geometry();
    const Mat34 m = projection_matrix(g, 0.7);
    // The volume centre sits on the rotation axis: its projection is the
    // principal point at depth Dso regardless of angle.
    const Projected p = project(m, (static_cast<double>(g.vol.x) - 1.0) / 2.0,
                                (static_cast<double>(g.vol.y) - 1.0) / 2.0,
                                (static_cast<double>(g.vol.z) - 1.0) / 2.0);
    EXPECT_NEAR(p.x, (static_cast<double>(g.nu) - 1.0) / 2.0, 1e-9);
    EXPECT_NEAR(p.y, (static_cast<double>(g.nv) - 1.0) / 2.0, 1e-9);
    EXPECT_NEAR(p.z, 1.0, 1e-12);  // depth d/Dso = 1 at the axis
}

TEST(Geometry, DepthWeightIsInverseSquareDistanceRatio)
{
    CbctGeometry g = small_geometry();
    const Mat34 m = projection_matrix(g, 0.0);
    // Voxel on the +Y axis, one voxel pitch towards the detector.
    const double j = (static_cast<double>(g.vol.y) - 1.0) / 2.0 + 1.0;
    const Projected p = project(m, (static_cast<double>(g.vol.x) - 1.0) / 2.0, j,
                                (static_cast<double>(g.vol.z) - 1.0) / 2.0);
    EXPECT_NEAR(p.z, (g.dso + g.dy) / g.dso, 1e-12);
}

TEST(Geometry, MatrixMatchesDirectProjectionOnGrid)
{
    const CbctGeometry g = small_geometry();
    for (index_t s = 0; s < g.num_proj; s += 7) {
        const double phi = g.angle_of(s);
        const Mat34 m = projection_matrix(g, phi);
        for (index_t k = 0; k < g.vol.z; k += 5)
            for (index_t j = 0; j < g.vol.y; j += 5)
                for (index_t i = 0; i < g.vol.x; i += 5) {
                    const Projected a = project(m, static_cast<double>(i), static_cast<double>(j),
                                                static_cast<double>(k));
                    const Projected b = project_direct(g, phi, static_cast<double>(i),
                                                       static_cast<double>(j),
                                                       static_cast<double>(k));
                    ASSERT_NEAR(a.x, b.x, 1e-8);
                    ASSERT_NEAR(a.y, b.y, 1e-8);
                    ASSERT_NEAR(a.z, b.z, 1e-12);
                }
    }
}

/// Property sweep: matrix == direct projection under random geometries
/// including calibration offsets (Table 4 exercises sigma_u up to 27 px,
/// sigma_cor up to ~1 mm).
class RandomGeometryMatch : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomGeometryMatch, MatrixAgreesWithDirect)
{
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> udso(20.0, 400.0);
    std::uniform_real_distribution<double> umag(1.2, 12.0);
    std::uniform_real_distribution<double> upitch(0.02, 0.5);
    std::uniform_real_distribution<double> uoff(-30.0, 30.0);
    std::uniform_real_distribution<double> ucor(-2.0, 2.0);
    std::uniform_real_distribution<double> uang(0.0, 2.0 * std::numbers::pi);

    CbctGeometry g;
    g.dso = udso(rng);
    g.dsd = g.dso * umag(rng);
    g.num_proj = 180;
    g.nu = 100;
    g.nv = 80;
    g.du = upitch(rng);
    g.dv = upitch(rng);
    g.vol = {40, 36, 30};
    g.dx = upitch(rng) * 0.2;
    g.dy = upitch(rng) * 0.2;
    g.dz = upitch(rng) * 0.2;
    g.sigma_u = uoff(rng);
    g.sigma_v = uoff(rng);
    g.sigma_cor = ucor(rng);
    g.validate();

    std::uniform_real_distribution<double> uvox(0.0, 39.0);
    for (int n = 0; n < 50; ++n) {
        const double phi = uang(rng);
        const Mat34 m = projection_matrix(g, phi);
        const double i = uvox(rng), j = uvox(rng) * 0.9, k = uvox(rng) * 0.75;
        const Projected a = project(m, i, j, k);
        const Projected b = project_direct(g, phi, i, j, k);
        ASSERT_NEAR(a.x, b.x, 1e-6);
        ASSERT_NEAR(a.y, b.y, 1e-6);
        ASSERT_NEAR(a.z, b.z, 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeometryMatch, ::testing::Range(1u, 13u));

TEST(Geometry, SigmaCorShiftsLateralProjectionOnly)
{
    CbctGeometry g = small_geometry();
    const Projected base = project(projection_matrix(g, 0.3), 5, 6, 7);
    g.sigma_cor = 1.5;
    const Projected off = project(projection_matrix(g, 0.3), 5, 6, 7);
    EXPECT_GT(std::abs(off.x - base.x), 1e-3);   // U moves
    EXPECT_NEAR(off.y, base.y, 1e-12);           // V unchanged
    EXPECT_NEAR(off.z, base.z, 1e-12);           // depth unchanged
}

TEST(Geometry, SigmaUShiftsUByExactlySigma)
{
    CbctGeometry g = small_geometry();
    const Projected base = project(projection_matrix(g, 1.1), 4, 9, 2);
    g.sigma_u = 3.25;
    const Projected off = project(projection_matrix(g, 1.1), 4, 9, 2);
    EXPECT_NEAR(off.x - base.x, 3.25, 1e-9);
    EXPECT_NEAR(off.y, base.y, 1e-9);
}

TEST(Geometry, SigmaVShiftsVByExactlySigma)
{
    CbctGeometry g = small_geometry();
    const Projected base = project(projection_matrix(g, 2.2), 4, 9, 2);
    g.sigma_v = -1.75;
    const Projected off = project(projection_matrix(g, 2.2), 4, 9, 2);
    EXPECT_NEAR(off.y - base.y, -1.75, 1e-9);
    EXPECT_NEAR(off.x, base.x, 1e-9);
}

TEST(Geometry, ProjectionMatricesProducesOnePerView)
{
    const CbctGeometry g = small_geometry();
    const auto mats = projection_matrices(g);
    ASSERT_EQ(mats.size(), static_cast<std::size_t>(g.num_proj));
    // Matrix s equals projection_matrix at angle 2*pi*s/Np.
    const Projected a = project(mats[13], 1, 2, 3);
    const Projected b = project(projection_matrix(g, g.angle_of(13)), 1, 2, 3);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
}

TEST(Geometry, NaturalPitchInscribesFov)
{
    // With the natural pitch, the volume's X extent maps to the detector
    // width at the rotation axis.
    const double pitch = CbctGeometry::natural_pitch(0.5, 250.0, 100.0, 64, 32);
    EXPECT_DOUBLE_EQ(pitch * 32, 0.5 * (100.0 / 250.0) * 64);
}

}  // namespace
}  // namespace xct
