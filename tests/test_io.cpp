// I/O tests: raw round-trips, PGM export, the bandwidth-accounted Pfs and
// the paper dataset descriptors (Sec. 6.1 / Table 4).
#include <gtest/gtest.h>

#include <filesystem>
#include <cstring>
#include <fstream>
#include <functional>

#include "io/datasets.hpp"
#include "io/geometry_io.hpp"
#include "io/pfs.hpp"
#include "io/raw_io.hpp"

namespace xct::io {
namespace {

std::filesystem::path tmp_dir()
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("xct_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(RawIo, VolumeRoundTrip)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{5, 4, 3});
    for (index_t i = 0; i < v.count(); ++i)
        v.span()[static_cast<std::size_t>(i)] = static_cast<float>(i) * 0.25f;
    write_volume(dir / "v.xvol", v);
    const Volume r = read_volume(dir / "v.xvol");
    ASSERT_EQ(r.size(), v.size());
    for (index_t i = 0; i < v.count(); ++i)
        ASSERT_FLOAT_EQ(r.span()[static_cast<std::size_t>(i)], v.span()[static_cast<std::size_t>(i)]);
    std::filesystem::remove_all(dir);
}

TEST(RawIo, StackRoundTripPreservesBand)
{
    const auto dir = tmp_dir();
    ProjectionStack p(3, Range{7, 12}, 6);
    for (index_t i = 0; i < p.count(); ++i)
        p.span()[static_cast<std::size_t>(i)] = static_cast<float>(i % 13);
    write_stack(dir / "p.xstk", p);
    const ProjectionStack r = read_stack(dir / "p.xstk");
    EXPECT_EQ(r.views(), 3);
    EXPECT_EQ(r.row_begin(), 7);
    EXPECT_EQ(r.rows(), 5);
    EXPECT_FLOAT_EQ(r.at(2, 11, 5), p.at(2, 11, 5));
    std::filesystem::remove_all(dir);
}

TEST(RawIo, ReadRejectsWrongMagic)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{2, 2, 2});
    write_volume(dir / "v.xvol", v);
    EXPECT_THROW(read_stack(dir / "v.xvol"), std::invalid_argument);
    EXPECT_THROW(read_volume(dir / "missing.xvol"), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(RawIo, PgmSliceHasHeaderAndPayload)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{4, 3, 2});
    v.at(1, 1, 0) = 5.0f;
    write_pgm_slice(dir / "s.pgm", v, 0);
    std::ifstream f(dir / "s.pgm", std::ios::binary);
    std::string magic;
    f >> magic;
    int w = 0, h = 0, maxval = 0;
    f >> w >> h >> maxval;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 3);
    EXPECT_EQ(maxval, 255);
    f.get();  // single whitespace
    std::vector<char> payload(12);
    f.read(payload.data(), 12);
    EXPECT_TRUE(f.good());
    std::filesystem::remove_all(dir);
}

TEST(RawIo, PgmWindowClamps)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{2, 1, 1});
    v.at(0, 0, 0) = -10.0f;
    v.at(1, 0, 0) = 10.0f;
    write_pgm_slice(dir / "w.pgm", v, 0, 0.0f, 1.0f);
    std::ifstream f(dir / "w.pgm", std::ios::binary);
    std::string line;
    std::getline(f, line);  // P5
    std::getline(f, line);  // dims
    std::getline(f, line);  // maxval
    unsigned char a = 0, b = 0;
    f.read(reinterpret_cast<char*>(&a), 1);
    f.read(reinterpret_cast<char*>(&b), 1);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 255);
    std::filesystem::remove_all(dir);
}

TEST(Pfs, AccountsBytesAndModelledTime)
{
    const auto dir = tmp_dir();
    Pfs pfs(dir, /*load_gbps=*/1.0, /*store_gbps=*/2.0);
    Volume v(Dim3{8, 8, 8});
    pfs.store_volume("out/v.xvol", v);
    EXPECT_TRUE(pfs.exists("out/v.xvol"));
    const auto loaded = pfs.load_volume("out/v.xvol");
    EXPECT_EQ(loaded.size(), v.size());

    const std::uint64_t bytes = 8ull * 8 * 8 * sizeof(float);
    EXPECT_EQ(pfs.store_stats().bytes, bytes);
    EXPECT_EQ(pfs.load_stats().bytes, bytes);
    // store link is 2x faster -> half the modelled seconds.
    EXPECT_NEAR(pfs.load_stats().seconds, 2.0 * pfs.store_stats().seconds, 1e-15);
    std::filesystem::remove_all(dir);
}

TEST(Pfs, RejectsAbsolutePaths)
{
    const auto dir = tmp_dir();
    Pfs pfs(dir, 1.0, 1.0);
    Volume v(Dim3{2, 2, 2});
    EXPECT_THROW(pfs.store_volume("/etc/havoc", v), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(Datasets, AllSixPaperDatasetsPresent)
{
    const auto& all = paper_datasets();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_NO_THROW(dataset_by_name("coffee_bean"));
    EXPECT_NO_THROW(dataset_by_name("bumblebee"));
    EXPECT_NO_THROW(dataset_by_name("tomo_00027"));
    EXPECT_NO_THROW(dataset_by_name("tomo_00030"));
    EXPECT_THROW(dataset_by_name("nope"), std::invalid_argument);
}

TEST(Datasets, PaperGeometryParameters)
{
    const auto& cb = dataset_by_name("coffee_bean");
    EXPECT_NEAR(cb.geometry.magnification(), 9.48, 0.01);  // Sec. 6.1
    EXPECT_EQ(cb.geometry.nu, 3728);
    EXPECT_EQ(cb.geometry.num_proj, 6401);
    EXPECT_NEAR(cb.geometry.sigma_cor, -0.0021, 1e-9);  // Table 4

    const auto& bb = dataset_by_name("bumblebee");
    EXPECT_NEAR(bb.geometry.magnification(), 16.9, 0.01);
    EXPECT_NEAR(bb.geometry.sigma_cor, 1.03, 1e-9);

    const auto& t29 = dataset_by_name("tomo_00029");
    EXPECT_EQ(t29.geometry.nu, 2004);
    EXPECT_EQ(t29.geometry.nv, 1335);
    EXPECT_NEAR(t29.geometry.sigma_u, 27.0, 1e-9);
    EXPECT_NEAR(t29.geometry.sigma_v, 0.2, 1e-9);

    const auto& t30 = dataset_by_name("tomo_00030");
    EXPECT_EQ(t30.geometry.nu, 668);
    EXPECT_EQ(t30.geometry.num_proj, 720);
    EXPECT_NEAR(t30.geometry.sigma_u, -10.0, 1e-9);
}

TEST(Datasets, ScaledPreservesMagnificationAndPhysicalExtent)
{
    const auto& cb = dataset_by_name("coffee_bean");
    const auto s = cb.scaled(16.0);
    EXPECT_NEAR(s.geometry.magnification(), cb.geometry.magnification(), 1e-12);
    // Physical detector width is preserved: nu * du constant.
    EXPECT_NEAR(static_cast<double>(s.geometry.nu) * s.geometry.du,
                static_cast<double>(cb.geometry.nu) * cb.geometry.du, 1e-6);
    EXPECT_LT(s.geometry.nu, cb.geometry.nu);
    EXPECT_NO_THROW(s.geometry.validate());
}

TEST(Datasets, ScaledKeepsMinimumExtents)
{
    const auto& t30 = dataset_by_name("tomo_00030");
    const auto s = t30.scaled(1000.0);
    EXPECT_GE(s.geometry.nu, 8);
    EXPECT_GE(s.geometry.num_proj, 8);
}

TEST(RawIo, StackInfoWithoutPayload)
{
    const auto dir = tmp_dir();
    ProjectionStack p(5, Range{3, 11}, 7);
    write_stack(dir / "p.xstk", p);
    const StackInfo info = stack_info(dir / "p.xstk");
    EXPECT_EQ(info.views, 5);
    EXPECT_EQ(info.band, (Range{3, 11}));
    EXPECT_EQ(info.cols, 7);
    std::filesystem::remove_all(dir);
}

TEST(RawIo, PartialRowReadMatchesFullRead)
{
    const auto dir = tmp_dir();
    ProjectionStack p(6, 10, 8);
    for (index_t i = 0; i < p.count(); ++i)
        p.span()[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.5f;
    write_stack(dir / "p.xstk", p);

    const ProjectionStack part = read_stack_rows(dir / "p.xstk", Range{2, 5}, Range{3, 7});
    EXPECT_EQ(part.views(), 3);
    EXPECT_EQ(part.row_begin(), 3);
    EXPECT_EQ(part.rows(), 4);
    for (index_t s = 2; s < 5; ++s)
        for (index_t v = 3; v < 7; ++v)
            for (index_t u = 0; u < 8; ++u)
                ASSERT_FLOAT_EQ(part.at(s - 2, v, u), p.at(s, v, u));
    std::filesystem::remove_all(dir);
}

TEST(RawIo, PartialReadFromBandRestrictedFile)
{
    // A file that itself stores only a band: global coordinates compose.
    const auto dir = tmp_dir();
    ProjectionStack p(3, Range{20, 32}, 4, 0.0f);
    p.at(1, 25, 2) = 9.0f;
    write_stack(dir / "p.xstk", p);
    const ProjectionStack part = read_stack_rows(dir / "p.xstk", Range{1, 2}, Range{24, 27});
    EXPECT_FLOAT_EQ(part.at(0, 25, 2), 9.0f);
    EXPECT_THROW(read_stack_rows(dir / "p.xstk", Range{0, 1}, Range{10, 25}),
                 std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(Pfs, PartialLoadAccountsOnlyReadBytes)
{
    const auto dir = tmp_dir();
    Pfs pfs(dir, 1.0, 1.0);
    ProjectionStack p(10, 20, 16);
    pfs.store_stack("proj.xstk", p);
    pfs.reset_stats();
    const ProjectionStack part = pfs.load_stack_rows("proj.xstk", Range{0, 5}, Range{4, 8});
    EXPECT_EQ(pfs.load_stats().bytes, static_cast<std::uint64_t>(5 * 4 * 16) * sizeof(float));
    EXPECT_EQ(part.count(), 5 * 4 * 16);
    const StackInfo info = pfs.stack_info("proj.xstk");
    EXPECT_EQ(info.views, 10);
    std::filesystem::remove_all(dir);
}

TEST(Datasets, WithVolumeKeepsFovInscribed)
{
    const auto& t30 = dataset_by_name("tomo_00030");
    const auto d = t30.with_volume(64);
    EXPECT_EQ(d.geometry.vol, (Dim3{64, 64, 64}));
    // The volume's physical X extent equals the FOV at the axis.
    EXPECT_NEAR(d.geometry.dx * 64.0,
                d.geometry.du * (t30.geometry.dso / t30.geometry.dsd) * 668.0, 1e-9);
}

TEST(GeometryIo, RoundTripPreservesEveryField)
{
    const auto dir = tmp_dir();
    GeometryFile gf;
    gf.geometry = dataset_by_name("bumblebee").scaled(20.0).with_volume(40).geometry;
    gf.geometry.scan_range = 4.2;
    gf.beer = BeerLawScalar{123.0f, 45678.0f};
    gf.raw_counts = true;
    write_geometry(dir / "g.geom", gf);
    const GeometryFile r = read_geometry(dir / "g.geom");
    EXPECT_DOUBLE_EQ(r.geometry.dso, gf.geometry.dso);
    EXPECT_DOUBLE_EQ(r.geometry.dsd, gf.geometry.dsd);
    EXPECT_EQ(r.geometry.num_proj, gf.geometry.num_proj);
    EXPECT_EQ(r.geometry.nu, gf.geometry.nu);
    EXPECT_EQ(r.geometry.vol, gf.geometry.vol);
    EXPECT_DOUBLE_EQ(r.geometry.dx, gf.geometry.dx);
    EXPECT_DOUBLE_EQ(r.geometry.sigma_cor, gf.geometry.sigma_cor);
    EXPECT_DOUBLE_EQ(r.geometry.scan_range, 4.2);
    EXPECT_FLOAT_EQ(r.beer.dark, 123.0f);
    EXPECT_FLOAT_EQ(r.beer.blank, 45678.0f);
    EXPECT_TRUE(r.raw_counts);
    std::filesystem::remove_all(dir);
}

TEST(GeometryIo, RejectsUnknownKeys)
{
    const auto dir = tmp_dir();
    {
        std::ofstream f(dir / "bad.geom");
        f << "dso 100\nwat 7\n";
    }
    EXPECT_THROW(read_geometry(dir / "bad.geom"), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(GeometryIo, RejectsInvalidGeometry)
{
    const auto dir = tmp_dir();
    {
        std::ofstream f(dir / "bad.geom");
        f << "dso 100\ndsd 50\n";  // detector inside the object
    }
    EXPECT_THROW(read_geometry(dir / "bad.geom"), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(GeometryIo, MissingFileThrows)
{
    EXPECT_THROW(read_geometry("/nonexistent/x.geom"), std::invalid_argument);
}

// ---- structural validation: truncation, size mismatch, checkpoints -----
// (DESIGN.md §3f: readers reject damaged files with a file:line-bearing
// error instead of reading short.)

/// The exact error message, for asserting on its file:line prefix.
std::string thrown_message(const std::function<void()>& fn)
{
    try {
        fn();
    } catch (const std::exception& e) {
        return e.what();
    }
    return {};
}

TEST(RawIo, RejectsTruncatedVolumeWithFileLine)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{6, 5, 4});
    write_volume(dir / "v.xvol", v);
    const auto path = dir / "v.xvol";
    std::filesystem::resize_file(path, std::filesystem::file_size(path) - 7);
    EXPECT_THROW(read_volume(path), std::invalid_argument);
    const std::string msg = thrown_message([&] { read_volume(path); });
    EXPECT_NE(msg.find("raw_io.cpp:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("size mismatch"), std::string::npos) << msg;
    std::filesystem::remove_all(dir);
}

TEST(RawIo, RejectsOversizedVolume)
{
    // Longer-than-header files are just as suspect as truncated ones: the
    // header no longer describes the payload that follows.
    const auto dir = tmp_dir();
    write_volume(dir / "v.xvol", Volume(Dim3{3, 3, 3}));
    {
        std::ofstream f(dir / "v.xvol", std::ios::binary | std::ios::app);
        const float junk = 0.0f;
        f.write(reinterpret_cast<const char*>(&junk), sizeof junk);
    }
    EXPECT_THROW(read_volume(dir / "v.xvol"), std::invalid_argument);
    std::filesystem::remove_all(dir);
}

TEST(RawIo, RejectsTruncatedStackEvenForPartialReads)
{
    // read_stack_rows seeks into the payload, so without the up-front
    // whole-file size check a truncated tail would only surface for the
    // unlucky view that straddles the cut.
    const auto dir = tmp_dir();
    ProjectionStack p(4, Range{0, 8}, 6);
    write_stack(dir / "p.xstk", p);
    const auto path = dir / "p.xstk";
    std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
    EXPECT_THROW(read_stack(path), std::invalid_argument);
    EXPECT_THROW(stack_info(path), std::invalid_argument);
    const std::string msg =
        thrown_message([&] { read_stack_rows(path, Range{0, 1}, Range{0, 2}); });
    EXPECT_NE(msg.find("raw_io.cpp:"), std::string::npos) << msg;
    std::filesystem::remove_all(dir);
}

TEST(CheckpointIo, SlabRoundTripCarriesDigest)
{
    const auto dir = tmp_dir();
    Volume v(Dim3{5, 4, 3});
    for (index_t i = 0; i < v.count(); ++i)
        v.span()[static_cast<std::size_t>(i)] = static_cast<float>(i) - 17.5f;
    write_checkpoint_slab(dir / "s.xckp", v, 0xDEADBEEFCAFEF00Dull);
    const CheckpointSlab slab = read_checkpoint_slab(dir / "s.xckp");
    EXPECT_EQ(slab.digest, 0xDEADBEEFCAFEF00Dull);
    ASSERT_EQ(slab.volume.size(), v.size());
    EXPECT_EQ(std::memcmp(slab.volume.span().data(), v.span().data(),
                          static_cast<std::size_t>(v.count()) * sizeof(float)),
              0);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointIo, RejectsForeignMagicAndTruncation)
{
    const auto dir = tmp_dir();
    // A volume file is not a checkpoint slab (versioned magic differs)...
    write_volume(dir / "v.xvol", Volume(Dim3{2, 2, 2}));
    EXPECT_THROW(read_checkpoint_slab(dir / "v.xvol"), std::invalid_argument);
    // ...and a half-written slab is rejected structurally, before any
    // digest comparison could even run.
    write_checkpoint_slab(dir / "s.xckp", Volume(Dim3{4, 4, 4}), 1);
    std::filesystem::resize_file(dir / "s.xckp",
                                 std::filesystem::file_size(dir / "s.xckp") - 9);
    const std::string msg = thrown_message([&] { read_checkpoint_slab(dir / "s.xckp"); });
    EXPECT_NE(msg.find("raw_io.cpp:"), std::string::npos) << msg;
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xct::io
