// minimpi collective-semantics tests: barriers, split, rooted segmented
// reduction, hierarchical reduction, broadcast, gather.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/scratch.hpp"
#include "minimpi/comm.hpp"

namespace xct::minimpi {
namespace {

TEST(Run, ExecutesEveryRankOnce)
{
    std::atomic<int> count{0};
    run(6, [&](Communicator& c) {
        EXPECT_EQ(c.size(), 6);
        EXPECT_GE(c.rank(), 0);
        EXPECT_LT(c.rank(), 6);
        count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), 6);
}

TEST(Run, RethrowsRankException)
{
    EXPECT_THROW(run(3,
                     [&](Communicator& c) {
                         if (c.rank() == 1) throw std::runtime_error("rank 1 boom");
                     }),
                 std::runtime_error);
}

TEST(Run, AbortWakesRanksBlockedInCollectives)
{
    // Rank 1 throws while the others sit in a barrier; they must not hang.
    EXPECT_THROW(run(4,
                     [&](Communicator& c) {
                         if (c.rank() == 1) throw std::runtime_error("boom");
                         c.barrier();
                     }),
                 std::runtime_error);
}

TEST(Barrier, OrdersPhases)
{
    std::atomic<int> before{0};
    std::atomic<bool> ok{true};
    run(5, [&](Communicator& c) {
        before.fetch_add(1);
        c.barrier();
        if (before.load() != 5) ok.store(false);
    });
    EXPECT_TRUE(ok.load());
}

TEST(ReduceSum, SumsToRoot)
{
    run(4, [&](Communicator& c) {
        std::vector<float> send(8, static_cast<float>(c.rank() + 1));
        std::vector<float> recv(c.rank() == 2 ? 8 : 0);
        c.reduce_sum(send, recv, /*root=*/2);
        if (c.rank() == 2)
            for (float v : recv) EXPECT_FLOAT_EQ(v, 10.0f);  // 1+2+3+4
    });
}

TEST(ReduceSum, DistinctElementsSurvive)
{
    run(3, [&](Communicator& c) {
        std::vector<float> send(4);
        for (int i = 0; i < 4; ++i)
            send[static_cast<std::size_t>(i)] = static_cast<float>(c.rank() * 10 + i);
        std::vector<float> recv(c.rank() == 0 ? 4 : 0);
        c.reduce_sum(send, recv, 0);
        if (c.rank() == 0)
            for (int i = 0; i < 4; ++i)
                EXPECT_FLOAT_EQ(recv[static_cast<std::size_t>(i)], static_cast<float>(30 + 3 * i));
    });
}

TEST(ReduceSum, ManySequentialReductionsStayConsistent)
{
    run(4, [&](Communicator& c) {
        for (int round = 0; round < 20; ++round) {
            std::vector<float> send(3, static_cast<float>(round));
            std::vector<float> recv(c.rank() == 0 ? 3 : 0);
            c.reduce_sum(send, recv, 0);
            if (c.rank() == 0)
                for (float v : recv) ASSERT_FLOAT_EQ(v, 4.0f * static_cast<float>(round));
        }
    });
}

TEST(AllreduceSum, EveryRankGetsTheSum)
{
    run(4, [&](Communicator& c) {
        std::vector<float> send(2, static_cast<float>(c.rank()));
        std::vector<float> recv(2);
        c.allreduce_sum(send, recv);
        EXPECT_FLOAT_EQ(recv[0], 6.0f);  // 0+1+2+3
        EXPECT_FLOAT_EQ(recv[1], 6.0f);
    });
}

TEST(AllreduceMax, ReturnsGlobalMax)
{
    run(5, [&](Communicator& c) {
        const double m = c.allreduce_max(static_cast<double>((c.rank() * 7) % 5));
        EXPECT_DOUBLE_EQ(m, 4.0);
    });
}

TEST(Split, GroupsByColor)
{
    // 6 ranks -> 2 groups of 3 (the paper's Ng x Nr grouping).
    run(6, [&](Communicator& world) {
        const index_t color = world.rank() / 3;
        Communicator g = world.split(color, world.rank());
        EXPECT_EQ(g.size(), 3);
        EXPECT_EQ(g.rank(), world.rank() % 3);
    });
}

TEST(Split, KeyControlsOrdering)
{
    run(4, [&](Communicator& world) {
        // Reverse the ordering with descending keys.
        Communicator g = world.split(0, -world.rank());
        EXPECT_EQ(g.size(), 4);
        EXPECT_EQ(g.rank(), 3 - world.rank());
    });
}

TEST(Split, SegmentedReductionsAreIndependent)
{
    // The crux of the paper's communication scheme: each group reduces its
    // own data concurrently with the others (Fig. 8).
    run(8, [&](Communicator& world) {
        const index_t group = world.rank() / 4;
        Communicator g = world.split(group, world.rank());
        std::vector<float> send(4, static_cast<float>(world.rank()));
        std::vector<float> recv(g.rank() == 0 ? 4 : 0);
        g.reduce_sum(send, recv, 0);
        if (g.rank() == 0) {
            const float expect = group == 0 ? 6.0f : 22.0f;  // 0+1+2+3 / 4+5+6+7
            for (float v : recv) EXPECT_FLOAT_EQ(v, expect);
        }
    });
}

TEST(Split, NestedSplits)
{
    run(8, [&](Communicator& world) {
        Communicator half = world.split(world.rank() / 4, world.rank());
        Communicator quarter = half.split(half.rank() / 2, half.rank());
        EXPECT_EQ(quarter.size(), 2);
    });
}

TEST(ReduceHierarchical, MatchesFlatSum)
{
    run(8, [&](Communicator& c) {
        std::vector<float> send(5);
        for (int i = 0; i < 5; ++i)
            send[static_cast<std::size_t>(i)] = static_cast<float>(c.rank()) * 0.5f +
                                                static_cast<float>(i);
        std::vector<float> flat(c.rank() == 0 ? 5 : 0);
        std::vector<float> hier(c.rank() == 0 ? 5 : 0);
        c.reduce_sum(send, flat, 0);
        c.reduce_sum_hierarchical(send, hier, 0, /*ranks_per_node=*/4);
        if (c.rank() == 0)
            for (int i = 0; i < 5; ++i)
                EXPECT_NEAR(hier[static_cast<std::size_t>(i)], flat[static_cast<std::size_t>(i)],
                            1e-4f);
    });
}

TEST(ReduceHierarchical, WorksWithRaggedLastNode)
{
    run(5, [&](Communicator& c) {  // nodes of 2: {0,1} {2,3} {4}
        std::vector<float> send(1, 1.0f);
        std::vector<float> recv(c.rank() == 0 ? 1 : 0);
        c.reduce_sum_hierarchical(send, recv, 0, 2);
        if (c.rank() == 0) EXPECT_FLOAT_EQ(recv[0], 5.0f);
    });
}

TEST(Bcast, RootDataReachesAll)
{
    run(4, [&](Communicator& c) {
        std::vector<float> data(3);
        if (c.rank() == 1) data = {7.0f, 8.0f, 9.0f};
        c.bcast(data, 1);
        EXPECT_FLOAT_EQ(data[0], 7.0f);
        EXPECT_FLOAT_EQ(data[2], 9.0f);
    });
}

TEST(Gather, RootCollectsInRankOrder)
{
    run(3, [&](Communicator& c) {
        std::vector<float> send(2, static_cast<float>(c.rank()));
        std::vector<float> recv(c.rank() == 0 ? 6 : 0);
        c.gather(send, recv, 0);
        if (c.rank() == 0) {
            const std::vector<float> expect{0, 0, 1, 1, 2, 2};
            EXPECT_EQ(recv, expect);
        }
    });
}

TEST(CollectiveStats, SegmentedReduceMovesLogNotLinearVolume)
{
    // The Fig. 8 claim in bytes: the binomial-tree reduction moves
    // ceil(log2 N) x payload over the root link, while the prior work's
    // gather moves (N - 1) x payload.
    constexpr index_t kRanks = 8;
    constexpr std::size_t kElems = 64;
    CollectiveStats stats;
    run(kRanks, [&](Communicator& c) {
        std::vector<float> send(kElems, 1.0f);
        std::vector<float> recv(c.rank() == 0 ? kElems : 0);
        c.reduce_sum(send, recv, 0);
        std::vector<float> gathered(c.rank() == 0 ? kElems * kRanks : 0);
        c.gather(send, gathered, 0);
        if (c.rank() == 0) stats = c.collective_stats();
    });
    const std::uint64_t payload = kElems * sizeof(float);
    EXPECT_EQ(stats.reduce_calls, 1u);
    EXPECT_EQ(stats.reduce_root_bytes, 3u * payload);  // ceil(log2 8) = 3 levels
    EXPECT_EQ(stats.gather_calls, 1u);
    EXPECT_EQ(stats.gather_root_bytes, (kRanks - 1) * payload);
    EXPECT_LT(stats.reduce_root_bytes, stats.gather_root_bytes);
}

TEST(CollectiveStats, HierarchicalReduceCountsLeaderLevelsOnly)
{
    // With 8 ranks at 4 per node there are 2 node leaders, so the
    // inter-node phase is ceil(log2 2) = 1 level of payload.
    constexpr std::size_t kElems = 32;
    CollectiveStats stats;
    run(8, [&](Communicator& c) {
        std::vector<float> send(kElems, 1.0f);
        std::vector<float> recv(c.rank() == 0 ? kElems : 0);
        c.reduce_sum_hierarchical(send, recv, 0, /*ranks_per_node=*/4);
        if (c.rank() == 0) stats = c.collective_stats();
    });
    EXPECT_EQ(stats.hierarchical_calls, 1u);
    EXPECT_EQ(stats.hierarchical_root_bytes, kElems * sizeof(float));
}

TEST(CollectiveStats, SplitCommunicatorsAccountIndependently)
{
    run(4, [&](Communicator& world) {
        Communicator g = world.split(world.rank() / 2, world.rank());
        std::vector<float> send(16, 1.0f);
        std::vector<float> recv(g.rank() == 0 ? 16 : 0);
        g.reduce_sum(send, recv, 0);
        if (g.rank() == 0) {
            const CollectiveStats gs = g.collective_stats();
            EXPECT_EQ(gs.reduce_calls, 1u);
            // 2-rank group: ceil(log2 2) = 1 level.
            EXPECT_EQ(gs.reduce_root_bytes, 16u * sizeof(float));
        }
        // No collective ever ran on the world communicator itself.
        EXPECT_EQ(world.collective_stats().reduce_calls, 0u);
    });
}

TEST(ReduceSum, SingleRankIsIdentity)
{
    run(1, [&](Communicator& c) {
        std::vector<float> send{1.5f, -2.0f};
        std::vector<float> recv(2);
        c.reduce_sum(send, recv, 0);
        EXPECT_FLOAT_EQ(recv[0], 1.5f);
        EXPECT_FLOAT_EQ(recv[1], -2.0f);
    });
}

TEST(Run, RejectsZeroRanks)
{
    EXPECT_THROW(run(0, [](Communicator&) {}), std::invalid_argument);
}

TEST(ReduceSum, RepeatedHierarchicalReducesReuseScratchStaging)
{
    // Node leaders lease their intra-node sum buffer from the per-thread
    // scratch pool, so within one communicator session a second reduce of
    // the same shape allocates nothing (the final sync of each collective
    // orders every rank's first-call lease before the second call starts).
    std::uint64_t second = 0;
    run(4, [&](Communicator& c) {
        std::vector<float> send(1024, 1.0f);
        std::vector<float> recv(c.rank() == 0 ? 1024 : 0);
        c.reduce_sum_hierarchical(send, recv, 0, /*ranks_per_node=*/2);
        const std::uint64_t e1 = scratch::heap_events();
        c.reduce_sum_hierarchical(send, recv, 0, /*ranks_per_node=*/2);
        const std::uint64_t e2 = scratch::heap_events();
        if (c.rank() == 0) {
            second = e2 - e1;
            EXPECT_FLOAT_EQ(recv[0], 4.0f);
        }
    });
    EXPECT_EQ(second, 0u);
}

class ScalingRanks : public ::testing::TestWithParam<index_t> {};

TEST_P(ScalingRanks, ReduceCorrectAtAnySize)
{
    const index_t n = GetParam();
    run(n, [&](Communicator& c) {
        std::vector<float> send(2, 1.0f);
        std::vector<float> recv(c.rank() == 0 ? 2 : 0);
        c.reduce_sum(send, recv, 0);
        if (c.rank() == 0) EXPECT_FLOAT_EQ(recv[0], static_cast<float>(n));
    });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScalingRanks, ::testing::Values<index_t>(1, 2, 3, 4, 7, 16, 32));

}  // namespace
}  // namespace xct::minimpi
