// Failure-injection and edge-case tests: the pipeline and the distributed
// framework must fail loudly and cleanly (no deadlocks, no partial
// results presented as complete) when a component misbehaves.
#include <gtest/gtest.h>

#include <atomic>

#include "recon/distributed.hpp"
#include "recon/fdk.hpp"

namespace xct::recon {
namespace {

CbctGeometry geo(index_t n = 24, index_t np = 24)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

/// Source that throws on the Nth load call.
class FailingSource final : public ProjectionSource {
public:
    FailingSource(const CbctGeometry& g, index_t fail_at) : g_(g), fail_at_(fail_at) {}

    ProjectionStack load(Range views, Range band) override
    {
        if (calls_++ == fail_at_) throw std::runtime_error("injected source failure");
        return ProjectionStack(views.length(), band, g_.nu, 0.0f);
    }

private:
    CbctGeometry g_;
    index_t fail_at_;
    index_t calls_ = 0;
};

TEST(Faults, SourceFailureOnFirstBatchPropagates)
{
    const CbctGeometry g = geo();
    FailingSource src(g, 0);
    RankConfig cfg;
    cfg.geometry = g;
    EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error);
}

TEST(Faults, SourceFailureMidPipelinePropagatesWithoutDeadlock)
{
    // The load thread dies while filter/bp are busy; the pipeline must
    // shut down all queues and rethrow, not hang.
    const CbctGeometry g = geo();
    for (index_t fail_at : {1, 2, 4}) {
        FailingSource src(g, fail_at);
        RankConfig cfg;
        cfg.geometry = g;
        cfg.batches = 8;
        cfg.threaded = true;
        EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error) << "fail_at=" << fail_at;
    }
}

TEST(Faults, SequentialPipelineAlsoPropagates)
{
    const CbctGeometry g = geo();
    FailingSource src(g, 2);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    cfg.threaded = false;
    EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error);
}

TEST(Faults, ReducerFailurePropagates)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.views = Range{0, g.num_proj};
    cfg.slices = Range{0, g.vol.z};
    auto bad_reduce = [](Volume&, const SlabPlan&) -> bool {
        throw std::runtime_error("injected reducer failure");
    };
    EXPECT_THROW(run_rank(cfg, src, bad_reduce, [](const Volume&, const SlabPlan&) {}),
                 std::runtime_error);
}

TEST(Faults, StoreFailurePropagates)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.views = Range{0, g.num_proj};
    cfg.slices = Range{0, g.vol.z};
    auto bad_store = [](const Volume&, const SlabPlan&) {
        throw std::runtime_error("injected store failure");
    };
    EXPECT_THROW(run_rank(cfg, src, identity_reducer, bad_store), std::runtime_error);
}

TEST(Faults, OneFailingRankAbortsTheWholeTeam)
{
    // A rank whose source dies must not leave its peers blocked in the
    // segmented reduction — minimpi's abort path wakes them.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 4};
    std::atomic<int> built{0};
    auto factory = [&](index_t rank) -> std::unique_ptr<ProjectionSource> {
        built.fetch_add(1);
        if (rank == 2) return std::make_unique<FailingSource>(g, 1);
        return std::make_unique<PhantomSource>(ph, g);
    };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::runtime_error);
    EXPECT_EQ(built.load(), 4);
}

TEST(Faults, NullSourceFactoryIsRejected)
{
    const CbctGeometry g = geo();
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 2};
    auto factory = [](index_t) -> std::unique_ptr<ProjectionSource> { return nullptr; };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::invalid_argument);
}

// ---- boundary configurations ------------------------------------------

TEST(EdgeCases, SingleSliceVolume)
{
    CbctGeometry g = geo();
    g.vol.z = 1;
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    const FdkResult r = reconstruct_fdk(g, ph);
    EXPECT_EQ(r.volume.size().z, 1);
    EXPECT_GT(r.volume.at(g.vol.x / 2, g.vol.y / 2, 0), 0.05f);
}

TEST(EdgeCases, SingleViewScan)
{
    CbctGeometry g = geo();
    g.num_proj = 1;
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    EXPECT_NO_THROW(reconstruct_fdk(cfg, src));
}

TEST(EdgeCases, MoreBatchesThanSlices)
{
    const CbctGeometry g = geo(8, 16);  // 8 slices
    const auto ph = phantom::shepp_logan_3d(g.dx * 3.0);
    PhantomSource a(ph, g);
    PhantomSource b(ph, g);
    RankConfig few;
    few.geometry = g;
    few.batches = 2;
    RankConfig many;
    many.geometry = g;
    many.batches = 64;  // Nb clamps to 1 slice per slab
    const FdkResult ra = reconstruct_fdk(few, a);
    const FdkResult rb = reconstruct_fdk(many, b);
    for (index_t i = 0; i < ra.volume.count(); ++i)
        ASSERT_NEAR(ra.volume.span()[static_cast<std::size_t>(i)],
                    rb.volume.span()[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(EdgeCases, NonCubicAnisotropicVolume)
{
    CbctGeometry g = geo();
    g.vol = {20, 28, 12};
    g.dx = 0.31;
    g.dy = 0.17;
    g.dz = 0.43;
    const auto ph = phantom::shepp_logan_3d(2.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult r = reconstruct_fdk(cfg, src);
    EXPECT_EQ(r.volume.size(), (Dim3{20, 28, 12}));
    for (float v : r.volume.span()) ASSERT_TRUE(std::isfinite(v));
}

TEST(EdgeCases, OddSizesAndPrimeCounts)
{
    // Nothing in the decomposition may assume divisibility.
    CbctGeometry g = geo();
    g.vol = {17, 19, 23};
    g.num_proj = 31;
    g.nu = 53;
    g.nv = 47;
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.6;
    const auto ph = phantom::shepp_logan_3d(g.dx * 7.0);

    PhantomSource single(ph, g);
    RankConfig one;
    one.geometry = g;
    one.batches = 5;
    const FdkResult ref = reconstruct_fdk(one, single);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{3, 2};  // 23 slices over 3 groups, 31 views over 2 ranks
    cfg.batches = 3;
    const auto factory = [&](index_t) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(EdgeCases, VolumeTallerThanDetectorFov)
{
    // Outer slabs project entirely off-detector (empty bands); they must
    // come back zero, not crash (the paper's 4096^3 outputs do exceed the
    // vertical FOV of the tomobank detectors).
    CbctGeometry g = geo();
    g.vol.z = g.vol.z * 4;  // much taller than the FOV
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 12;
    const FdkResult r = reconstruct_fdk(cfg, src);
    // Top and bottom slices: no detector coverage -> exactly zero.
    for (index_t j = 0; j < g.vol.y; ++j)
        for (index_t i = 0; i < g.vol.x; ++i) {
            ASSERT_EQ(r.volume.at(i, j, 0), 0.0f);
            ASSERT_EQ(r.volume.at(i, j, g.vol.z - 1), 0.0f);
        }
    // Centre still reconstructs.
    EXPECT_GT(r.volume.at(g.vol.x / 2, g.vol.y / 2, g.vol.z / 2), 0.05f);
}

}  // namespace
}  // namespace xct::recon
