// Failure-injection and edge-case tests: the pipeline and the distributed
// framework must fail loudly and cleanly (no deadlocks, no partial
// results presented as complete) when a component misbehaves — and, with
// the resilience layer engaged (fault plans + retry + checkpoint/restart
// + degraded reduce), recover to a volume *bitwise identical* to an
// unfaulted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <thread>

#include <fstream>

#include "core/simd.hpp"
#include "faults/checkpoint.hpp"
#include "faults/retry.hpp"
#include "integrity/integrity.hpp"
#include "integrity/watchdog.hpp"
#include "io/pfs.hpp"
#include "recon/distributed.hpp"
#include "recon/fdk.hpp"
#include "sim/device.hpp"
#include "telemetry/metrics.hpp"

namespace xct::recon {
namespace {

CbctGeometry geo(index_t n = 24, index_t np = 24)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = np;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = 0.5;
    g.dv = 0.5;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

/// Source that throws on the Nth load call.
class FailingSource final : public ProjectionSource {
public:
    FailingSource(const CbctGeometry& g, index_t fail_at) : g_(g), fail_at_(fail_at) {}

    ProjectionStack load(Range views, Range band) override
    {
        if (calls_++ == fail_at_) throw std::runtime_error("injected source failure");
        return ProjectionStack(views.length(), band, g_.nu, 0.0f);
    }

private:
    CbctGeometry g_;
    index_t fail_at_;
    index_t calls_ = 0;
};

TEST(Faults, SourceFailureOnFirstBatchPropagates)
{
    const CbctGeometry g = geo();
    FailingSource src(g, 0);
    RankConfig cfg;
    cfg.geometry = g;
    EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error);
}

TEST(Faults, SourceFailureMidPipelinePropagatesWithoutDeadlock)
{
    // The load thread dies while filter/bp are busy; the pipeline must
    // shut down all queues and rethrow, not hang.
    const CbctGeometry g = geo();
    for (index_t fail_at : {1, 2, 4}) {
        FailingSource src(g, fail_at);
        RankConfig cfg;
        cfg.geometry = g;
        cfg.batches = 8;
        cfg.threaded = true;
        EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error) << "fail_at=" << fail_at;
    }
}

TEST(Faults, SequentialPipelineAlsoPropagates)
{
    const CbctGeometry g = geo();
    FailingSource src(g, 2);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    cfg.threaded = false;
    EXPECT_THROW(reconstruct_fdk(cfg, src), std::runtime_error);
}

TEST(Faults, ReducerFailurePropagates)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.views = Range{0, g.num_proj};
    cfg.slices = Range{0, g.vol.z};
    auto bad_reduce = [](Volume&, const SlabPlan&) -> bool {
        throw std::runtime_error("injected reducer failure");
    };
    EXPECT_THROW(run_rank(cfg, src, bad_reduce, [](const Volume&, const SlabPlan&) {}),
                 std::runtime_error);
}

TEST(Faults, StoreFailurePropagates)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.views = Range{0, g.num_proj};
    cfg.slices = Range{0, g.vol.z};
    auto bad_store = [](const Volume&, const SlabPlan&) {
        throw std::runtime_error("injected store failure");
    };
    EXPECT_THROW(run_rank(cfg, src, identity_reducer, bad_store), std::runtime_error);
}

TEST(Faults, OneFailingRankAbortsTheWholeTeam)
{
    // A rank whose source dies must not leave its peers blocked in the
    // segmented reduction — minimpi's abort path wakes them.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(4.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 4};
    std::atomic<int> built{0};
    auto factory = [&](RankId rank) -> std::unique_ptr<ProjectionSource> {
        built.fetch_add(1);
        if (rank == RankId{2}) return std::make_unique<FailingSource>(g, 1);
        return std::make_unique<PhantomSource>(ph, g);
    };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::runtime_error);
    EXPECT_EQ(built.load(), 4);
}

TEST(Faults, NullSourceFactoryIsRejected)
{
    const CbctGeometry g = geo();
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 2};
    auto factory = [](RankId) -> std::unique_ptr<ProjectionSource> { return nullptr; };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::invalid_argument);
}

// ---- boundary configurations ------------------------------------------

TEST(EdgeCases, SingleSliceVolume)
{
    CbctGeometry g = geo();
    g.vol.z = 1;
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    const FdkResult r = reconstruct_fdk(g, ph);
    EXPECT_EQ(r.volume.size().z, 1);
    EXPECT_GT(r.volume.at(g.vol.x / 2, g.vol.y / 2, 0), 0.05f);
}

TEST(EdgeCases, SingleViewScan)
{
    CbctGeometry g = geo();
    g.num_proj = 1;
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    EXPECT_NO_THROW(reconstruct_fdk(cfg, src));
}

TEST(EdgeCases, MoreBatchesThanSlices)
{
    const CbctGeometry g = geo(8, 16);  // 8 slices
    const auto ph = phantom::shepp_logan_3d(g.dx * 3.0);
    PhantomSource a(ph, g);
    PhantomSource b(ph, g);
    RankConfig few;
    few.geometry = g;
    few.batches = 2;
    RankConfig many;
    many.geometry = g;
    many.batches = 64;  // Nb clamps to 1 slice per slab
    const FdkResult ra = reconstruct_fdk(few, a);
    const FdkResult rb = reconstruct_fdk(many, b);
    for (index_t i = 0; i < ra.volume.count(); ++i)
        ASSERT_NEAR(ra.volume.span()[static_cast<std::size_t>(i)],
                    rb.volume.span()[static_cast<std::size_t>(i)], 1e-5f);
}

TEST(EdgeCases, NonCubicAnisotropicVolume)
{
    CbctGeometry g = geo();
    g.vol = {20, 28, 12};
    g.dx = 0.31;
    g.dy = 0.17;
    g.dz = 0.43;
    const auto ph = phantom::shepp_logan_3d(2.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult r = reconstruct_fdk(cfg, src);
    EXPECT_EQ(r.volume.size(), (Dim3{20, 28, 12}));
    for (float v : r.volume.span()) ASSERT_TRUE(std::isfinite(v));
}

TEST(EdgeCases, OddSizesAndPrimeCounts)
{
    // Nothing in the decomposition may assume divisibility.
    CbctGeometry g = geo();
    g.vol = {17, 19, 23};
    g.num_proj = 31;
    g.nu = 53;
    g.nv = 47;
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.6;
    const auto ph = phantom::shepp_logan_3d(g.dx * 7.0);

    PhantomSource single(ph, g);
    RankConfig one;
    one.geometry = g;
    one.batches = 5;
    const FdkResult ref = reconstruct_fdk(one, single);

    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{3, 2};  // 23 slices over 3 groups, 31 views over 2 ranks
    cfg.batches = 3;
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    for (index_t i = 0; i < ref.volume.count(); ++i)
        ASSERT_NEAR(r.volume.span()[static_cast<std::size_t>(i)],
                    ref.volume.span()[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(EdgeCases, VolumeTallerThanDetectorFov)
{
    // Outer slabs project entirely off-detector (empty bands); they must
    // come back zero, not crash (the paper's 4096^3 outputs do exceed the
    // vertical FOV of the tomobank detectors).
    CbctGeometry g = geo();
    g.vol.z = g.vol.z * 4;  // much taller than the FOV
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 12;
    const FdkResult r = reconstruct_fdk(cfg, src);
    // Top and bottom slices: no detector coverage -> exactly zero.
    for (index_t j = 0; j < g.vol.y; ++j)
        for (index_t i = 0; i < g.vol.x; ++i) {
            ASSERT_EQ(r.volume.at(i, j, 0), 0.0f);
            ASSERT_EQ(r.volume.at(i, j, g.vol.z - 1), 0.0f);
        }
    // Centre still reconstructs.
    EXPECT_GT(r.volume.at(g.vol.x / 2, g.vol.y / 2, g.vol.z / 2), 0.05f);
}

// ---- resilience: fault plans, retry, checkpoint, degraded reduce ------

/// Fresh scratch directory under the system temp root.
std::filesystem::path scratch(const std::string& name)
{
    const auto dir = std::filesystem::temp_directory_path() / ("xct_faults_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::uint64_t cval(const std::string& name)
{
    return telemetry::registry().counter(name).value();
}

::testing::AssertionResult bitwise_equal(const Volume& a, const Volume& b)
{
    if (a.size() != b.size()) return ::testing::AssertionFailure() << "volume sizes differ";
    if (std::memcmp(a.span().data(), b.span().data(),
                    static_cast<std::size_t>(a.count()) * sizeof(float)) != 0)
        return ::testing::AssertionFailure() << "volumes differ bitwise";
    return ::testing::AssertionSuccess();
}

/// Fast retry policy so faulted tests do not sleep for real.
faults::RetryPolicy quick_retry(index_t attempts = 4)
{
    faults::RetryPolicy p;
    p.max_attempts = attempts;
    p.base_delay_s = 1e-6;
    p.max_delay_s = 1e-5;
    return p;
}

TEST(FaultPlanSpec, BareSiteFailsExactlyTheFirstCall)
{
    const faults::FaultPlan plan = faults::FaultPlan::parse("pfs.load");
    const auto& spec = plan.specs().at("pfs.load");
    EXPECT_EQ(spec.after, 0);
    EXPECT_EQ(spec.count, 1);
    faults::ScopedPlan install(plan);
    EXPECT_TRUE(faults::should_fail("pfs.load"));
    EXPECT_FALSE(faults::should_fail("pfs.load"));
    EXPECT_FALSE(faults::should_fail("pfs.store"));  // unconfigured site
}

TEST(FaultPlanSpec, ParseReadsAllKeysAndMultipleSites)
{
    const auto plan =
        faults::FaultPlan::parse("source.load:after=2,count=3,rank=1;sim.h2d:p=0.25", 7);
    EXPECT_EQ(plan.seed(), 7u);
    ASSERT_EQ(plan.specs().size(), 2u);
    const auto& sl = plan.specs().at("source.load");
    EXPECT_EQ(sl.after, 2);
    EXPECT_EQ(sl.count, 3);
    EXPECT_EQ(sl.rank, RankId{1});
    const auto& h2d = plan.specs().at("sim.h2d");
    EXPECT_DOUBLE_EQ(h2d.probability, 0.25);
    EXPECT_EQ(h2d.after, -1);
}

TEST(FaultPlanSpec, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(faults::FaultPlan::parse("site:frequency=2"), std::invalid_argument);
    EXPECT_THROW(faults::FaultPlan::parse("site:p"), std::invalid_argument);
    EXPECT_THROW(faults::FaultPlan::parse("site:p=maybe"), std::invalid_argument);
    EXPECT_THROW(faults::FaultPlan::parse("site:p=2.0"), std::invalid_argument);
    EXPECT_THROW(faults::FaultPlan{}.add("site", faults::FaultSpec{}), std::invalid_argument);
}

TEST(FaultPlanSpec, AfterCountWindowIsHalfOpen)
{
    faults::FaultPlan plan;
    faults::FaultSpec spec;
    spec.after = 2;
    spec.count = 2;
    plan.add("op", spec);
    faults::ScopedPlan install(plan);
    EXPECT_FALSE(faults::should_fail("op"));  // call 0
    EXPECT_FALSE(faults::should_fail("op"));  // call 1
    EXPECT_TRUE(faults::should_fail("op"));   // call 2
    EXPECT_TRUE(faults::should_fail("op"));   // call 3
    EXPECT_FALSE(faults::should_fail("op"));  // call 4 — window closed
}

TEST(FaultPlanSpec, NegativeCountNeverStopsFiring)
{
    faults::FaultPlan plan;
    faults::FaultSpec spec;
    spec.after = 1;
    spec.count = -1;
    plan.add("op", spec);
    faults::ScopedPlan install(plan);
    EXPECT_FALSE(faults::should_fail("op"));
    for (int i = 0; i < 16; ++i) EXPECT_TRUE(faults::should_fail("op"));
}

TEST(FaultPlanSpec, RankFilterSuppressesOtherRanks)
{
    // The main thread is telemetry rank 0; a spec pinned to rank 7 must
    // never fire here.
    faults::FaultPlan plan;
    faults::FaultSpec spec;
    spec.after = 0;
    spec.count = -1;
    spec.rank = RankId{7};
    plan.add("op", spec);
    faults::ScopedPlan install(plan);
    for (int i = 0; i < 8; ++i) EXPECT_FALSE(faults::should_fail("op"));
}

TEST(FaultPlanSpec, ProbabilisticTriggersAreSeedDeterministic)
{
    const auto decisions = [](std::uint64_t seed) {
        faults::FaultPlan plan(seed);
        faults::FaultSpec spec;
        spec.probability = 0.5;
        plan.add("op", spec);
        faults::ScopedPlan install(plan);  // reinstall resets call counters
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) fired.push_back(faults::should_fail("op"));
        return fired;
    };
    const auto a = decisions(42);
    EXPECT_EQ(a, decisions(42));  // same seed -> identical firing pattern
    EXPECT_NE(a, decisions(43));
    // p=0.5 over 64 calls: both outcomes must occur (deterministic check).
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST(FaultPlanSpec, CheckThrowsTransientErrorAndCounts)
{
    const std::uint64_t before = cval("faults.injected");
    const std::uint64_t before_site = cval("faults.injected.op");
    faults::ScopedPlan install(faults::FaultPlan::parse("op"));
    EXPECT_THROW(faults::check("op"), faults::TransientError);  // retryable by contract
    EXPECT_NO_THROW(faults::check("op"));
    EXPECT_EQ(cval("faults.injected"), before + 1);
    EXPECT_EQ(cval("faults.injected.op"), before_site + 1);
}

TEST(Retry, BackoffDelayIsDeterministicAndBounded)
{
    const faults::RetryPolicy p;
    for (index_t attempt = 0; attempt < 12; ++attempt) {
        const double d = faults::backoff_delay(p, "op", attempt);
        EXPECT_EQ(d, faults::backoff_delay(p, "op", attempt));
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, p.max_delay_s * (1.0 + p.jitter));
    }
    // Jitter depends on the site, so distinct sites see distinct delays.
    EXPECT_NE(faults::backoff_delay(p, "a", 0), faults::backoff_delay(p, "b", 0));
}

TEST(Retry, RecoversWithinBudget)
{
    faults::ScopedPlan install(faults::FaultPlan::parse("op:after=0,count=2"));
    const std::uint64_t before = cval("faults.retry.attempts");
    const int v = faults::with_retry("op", quick_retry(4), [] {
        faults::check("op");
        return 42;
    });
    EXPECT_EQ(v, 42);
    EXPECT_EQ(cval("faults.retry.attempts"), before + 2);
}

TEST(Retry, ExhaustedBudgetRethrowsTheFault)
{
    faults::ScopedPlan install(faults::FaultPlan::parse("op:after=0,count=-1"));
    const std::uint64_t before = cval("faults.retry.exhausted");
    EXPECT_THROW(faults::with_retry("op", quick_retry(2), [] { faults::check("op"); }),
                 faults::InjectedFault);
    EXPECT_EQ(cval("faults.retry.exhausted"), before + 1);
}

TEST(Retry, NonTransientErrorsPropagateImmediately)
{
    int calls = 0;
    EXPECT_THROW(faults::with_retry("op", quick_retry(4),
                                    [&]() -> int {
                                        ++calls;
                                        throw std::runtime_error("logic error");
                                    }),
                 std::runtime_error);
    EXPECT_EQ(calls, 1);  // plain runtime_error is not retryable
}

TEST(PfsResilience, StoreRetriesAndAccountsOnlySuccess)
{
    io::Pfs pfs(scratch("pfs_retry"), 10.0, 10.0);
    pfs.set_retry(quick_retry(4));
    Volume v(Dim3{4, 4, 2});
    std::iota(v.span().begin(), v.span().end(), 0.0f);
    faults::ScopedPlan install(faults::FaultPlan::parse("pfs.store:after=0,count=2"));
    pfs.store_volume("v.xvol", v);
    EXPECT_TRUE(pfs.exists("v.xvol"));
    EXPECT_EQ(pfs.store_stats().operations, 1u);  // failed attempts not accounted
    EXPECT_TRUE(bitwise_equal(pfs.load_volume("v.xvol"), v));
}

TEST(PfsResilience, FailsLoudlyWithoutRetryPolicy)
{
    io::Pfs pfs(scratch("pfs_loud"), 10.0, 10.0);
    pfs.store_volume("v.xvol", Volume(Dim3{2, 2, 2}));
    faults::ScopedPlan install(faults::FaultPlan::parse("pfs.load"));
    EXPECT_THROW(pfs.load_volume("v.xvol"), faults::InjectedFault);
}

TEST(PfsResilience, StatsAccumulateAtomicallyAcrossThreads)
{
    io::Pfs pfs(scratch("pfs_threads"), 10.0, 10.0);
    const Volume v(Dim3{8, 8, 4});
    pfs.store_volume("probe.xvol", v);
    const std::uint64_t bytes_per_op = pfs.store_stats().bytes;
    pfs.reset_stats();

    constexpr int kThreads = 4, kOps = 8;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            for (int i = 0; i < kOps; ++i) {
                char name[32];
                std::snprintf(name, sizeof name, "t%d_%d.xvol", t, i);
                pfs.store_volume(name, v);
            }
        });
    for (auto& w : workers) w.join();
    EXPECT_EQ(pfs.store_stats().operations, static_cast<std::uint64_t>(kThreads * kOps));
    EXPECT_EQ(pfs.store_stats().bytes, bytes_per_op * kThreads * kOps);
    EXPECT_GT(pfs.store_stats().seconds, 0.0);
}

TEST(DeviceResilience, TransferRetryRecoversBothDirections)
{
    sim::Device dev(1u << 20);
    dev.set_retry(quick_retry(4));
    sim::DeviceBuffer buf(dev, 256);
    std::vector<float> src(256);
    std::iota(src.begin(), src.end(), 1.0f);
    faults::ScopedPlan install(
        faults::FaultPlan::parse("sim.h2d:after=0,count=1;sim.d2h:after=0,count=1"));
    buf.upload(src);
    std::vector<float> dst(256, 0.0f);
    buf.download(dst);
    EXPECT_EQ(src, dst);
}

TEST(DeviceResilience, TransferFailsLoudlyWithoutRetry)
{
    sim::Device dev(1u << 20);
    sim::DeviceBuffer buf(dev, 16);
    const std::vector<float> src(16, 1.0f);
    faults::ScopedPlan install(faults::FaultPlan::parse("sim.h2d"));
    EXPECT_THROW(buf.upload(src), faults::InjectedFault);
}

TEST(Resilience, RetriedSourceFaultsYieldBitwiseIdenticalVolume)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource clean_src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    faults::ScopedPlan install(faults::FaultPlan::parse("source.load:after=1,count=2"));
    const std::uint64_t before = cval("faults.retry.attempts");
    PhantomSource faulted_src(ph, g);
    RankConfig rcfg = cfg;
    rcfg.retry = quick_retry(4);
    const FdkResult r = reconstruct_fdk(rcfg, faulted_src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GE(cval("faults.retry.attempts") - before, 2u);
}

TEST(Resilience, CheckpointStoreRoundtrip)
{
    faults::CheckpointStore store(scratch("ckpt_unit"));
    EXPECT_EQ(store.cursor(), 0);
    store.advance(3);
    EXPECT_EQ(store.cursor(), 3);
    EXPECT_FALSE(store.has_slab(SlabId{1}));
    Volume v(Dim3{5, 4, 3});
    std::iota(v.span().begin(), v.span().end(), -7.0f);
    store.save_slab(SlabId{1}, v);
    EXPECT_TRUE(store.has_slab(SlabId{1}));
    EXPECT_TRUE(bitwise_equal(store.load_slab(SlabId{1}), v));
    // A second store on the same directory sees the persisted state.
    EXPECT_EQ(faults::CheckpointStore(store.dir()).cursor(), 3);
}

TEST(Resilience, CheckpointRestartMidRunIsBitwiseIdentical)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    PhantomSource clean_src(ph, g);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    // Run B dies at the 4th slab load (no retry) with checkpointing on;
    // sequential execution makes "slabs 0..2 completed" deterministic.
    const auto dir = scratch("ckpt_restart");
    RankConfig bcfg = cfg;
    bcfg.threaded = false;
    bcfg.checkpoint = CheckpointConfig{dir, -1};
    {
        faults::ScopedPlan install(faults::FaultPlan::parse("source.load:after=3,count=-1"));
        PhantomSource src(ph, g);
        EXPECT_THROW(reconstruct_fdk(bcfg, src), faults::InjectedFault);
    }
    EXPECT_EQ(faults::CheckpointStore(dir).cursor(), 3);

    // Run C restarts from the same directory: saved slabs replay through
    // the store stage, live computation resumes at the cursor.
    const std::uint64_t before = cval("faults.checkpoint.restored");
    RankConfig ccfg = cfg;
    ccfg.checkpoint = CheckpointConfig{dir, -1};
    PhantomSource src(ph, g);
    const FdkResult r = reconstruct_fdk(ccfg, src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(r.stats.slabs_restored, 3);
    EXPECT_EQ(cval("faults.checkpoint.restored") - before, 3u);
}

TEST(Resilience, SimdKernelKeepsFaultPathsBitwiseReproducible)
{
    // Every bitwise_equal assertion in this suite now executes with the
    // vectorised default kernel (backend recorded below).  What makes
    // checkpoint replay and degraded re-execution bitwise safe is that the
    // kernel is deterministic run-to-run — fixed lane order, sequential
    // view accumulation — so assert that determinism directly.
    RecordProperty("simd_backend", simd::backend_name());
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    PhantomSource s1(ph, g);
    const FdkResult a = reconstruct_fdk(cfg, s1);
    PhantomSource s2(ph, g);
    const FdkResult b = reconstruct_fdk(cfg, s2);
    EXPECT_TRUE(bitwise_equal(a.volume, b.volume));
}

TEST(Resilience, DegradedReduceSurvivesDropoutBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);
    EXPECT_TRUE(ref.dead.empty());

    faults::ScopedPlan install(faults::FaultPlan::parse("rank.dropout:rank=3"));
    const std::uint64_t slabs_before = cval("faults.degraded.slabs");
    DistributedConfig dcfg = cfg;
    dcfg.degraded_reduce = true;
    const DistributedResult r = reconstruct_distributed(dcfg, factory);
    ASSERT_EQ(r.dead, (std::vector<RankId>{RankId{3}}));
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GT(cval("faults.degraded.slabs"), slabs_before);  // survivor replayed rank 3's share
}

TEST(Resilience, DegradedReduceSurvivesGroupRootDropoutBitwise)
{
    // The group root holds the reduced result; when it dies the takeover
    // must land on a survivor and the part-ordered reduce must still add
    // in original rank order.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 3};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    faults::ScopedPlan install(faults::FaultPlan::parse("rank.dropout:rank=0"));
    DistributedConfig dcfg = cfg;
    dcfg.degraded_reduce = true;
    const DistributedResult r = reconstruct_distributed(dcfg, factory);
    ASSERT_EQ(r.dead, (std::vector<RankId>{RankId{0}}));
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
}

TEST(Resilience, DropoutWithoutDegradedModeAbortsTheTeam)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    faults::ScopedPlan install(faults::FaultPlan::parse("rank.dropout:rank=1"));
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::runtime_error);
}

TEST(Resilience, InjectedCollectiveFaultAbortsTheTeam)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 2};
    faults::ScopedPlan install(faults::FaultPlan::parse("minimpi.reduce_sum:rank=1"));
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    EXPECT_THROW(reconstruct_distributed(cfg, factory), std::runtime_error);
}

TEST(Resilience, DistributedCheckpointRestartIsBitwiseIdentical)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    const auto dir = scratch("ckpt_dist");
    DistributedConfig ccfg = cfg;
    ccfg.checkpoint_dir = dir;
    {
        // Rank 2's source dies permanently part-way through; the abort
        // leaves each rank's checkpoint at whatever it had completed.
        // Sequential execution pins "whatever" to exactly 4 slabs — with
        // the threaded pipeline the load thread can outrun the first
        // reduce and abort the team before anything was checkpointed.
        faults::ScopedPlan install(
            faults::FaultPlan::parse("source.load:after=4,count=-1,rank=2"));
        DistributedConfig fcfg = ccfg;
        fcfg.threaded = false;
        EXPECT_THROW(reconstruct_distributed(fcfg, factory), std::runtime_error);
    }
    const DistributedResult r = reconstruct_distributed(ccfg, factory);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    index_t restored = 0;
    for (const auto& st : r.ranks) restored += st.slabs_restored;
    EXPECT_GT(restored, 0);
}

// ---- integrity: corruption detection and recovery (DESIGN.md §3f) -----
//
// Every kind=corrupt plan below uses a bounded after=N,count=M window:
// the corruption point re-fires on each retry attempt, so an unbounded
// count=-1 spec would poison every re-read and exhaust the budget.

TEST(IntegrityE2E, PfsLoadCorruptionIsDetectedAndRetriedBitwise)
{
    integrity::ScopedEnable on;
    io::Pfs pfs(scratch("pfs_corrupt"), 10.0, 10.0);
    pfs.set_retry(quick_retry(4));
    Volume v(Dim3{6, 5, 4});
    std::iota(v.span().begin(), v.span().end(), 0.0f);
    pfs.store_volume("v.xvol", v);

    faults::ScopedPlan install(faults::FaultPlan::parse("pfs.load:kind=corrupt,after=0,count=1"));
    const std::uint64_t inj = cval("faults.injected.pfs.load");
    const std::uint64_t det = cval("integrity.detected.pfs.load");
    const Volume loaded = pfs.load_volume("v.xvol");
    EXPECT_TRUE(bitwise_equal(loaded, v));
    EXPECT_EQ(cval("faults.injected.pfs.load") - inj, 1u);
    EXPECT_EQ(cval("integrity.detected.pfs.load") - det, 1u);
}

TEST(IntegrityE2E, CorruptionPropagatesSilentlyWithVerificationOff)
{
    // The control experiment: with verification off the same flip lands in
    // the consumer's data and nothing throws — exactly the silent-data-
    // corruption failure mode the --integrity flag exists to close.
    integrity::ScopedEnable off(false);
    io::Pfs pfs(scratch("pfs_silent"), 10.0, 10.0);
    Volume v(Dim3{4, 4, 4});
    std::iota(v.span().begin(), v.span().end(), 1.0f);
    pfs.store_volume("v.xvol", v);

    faults::ScopedPlan install(faults::FaultPlan::parse("pfs.load:kind=corrupt,after=0,count=1"));
    const std::uint64_t det = cval("integrity.detected");
    const Volume loaded = pfs.load_volume("v.xvol");
    EXPECT_FALSE(bitwise_equal(loaded, v));  // the flip went through
    EXPECT_EQ(cval("integrity.detected"), det);
}

TEST(IntegrityE2E, SourceLoadCorruptionRecoversBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    PhantomSource clean_src(ph, g);
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(
        faults::FaultPlan::parse("source.load:kind=corrupt,after=1,count=2,flips=3"));
    const std::uint64_t inj = cval("faults.injected.source.load");
    const std::uint64_t det = cval("integrity.detected.source.load");
    RankConfig rcfg = cfg;
    rcfg.retry = quick_retry(4);
    PhantomSource src(ph, g);
    const FdkResult r = reconstruct_fdk(rcfg, src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(cval("faults.injected.source.load") - inj, 2u);
    EXPECT_EQ(cval("integrity.detected.source.load") - det, 2u);
}

TEST(IntegrityE2E, DeviceTransferCorruptionRecoversBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    PhantomSource clean_src(ph, g);
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(
        faults::FaultPlan::parse("sim.h2d:kind=corrupt,after=2,count=1"));
    const std::uint64_t inj = cval("faults.injected.sim.h2d");
    const std::uint64_t det = cval("integrity.detected.sim.h2d");
    RankConfig rcfg = cfg;
    rcfg.retry = quick_retry(4);  // SlabBackprojector forwards to the device
    PhantomSource src(ph, g);
    const FdkResult r = reconstruct_fdk(rcfg, src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(cval("faults.injected.sim.h2d") - inj, 1u);
    EXPECT_EQ(cval("integrity.detected.sim.h2d") - det, 1u);
}

TEST(IntegrityE2E, CheckpointRestoreCorruptionIsReReadBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    PhantomSource clean_src(ph, g);
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    // Run B dies at the 4th slab with checkpointing on (cursor = 3).
    const auto dir = scratch("ckpt_corrupt");
    RankConfig bcfg = cfg;
    bcfg.threaded = false;
    bcfg.checkpoint = CheckpointConfig{dir, -1};
    {
        faults::ScopedPlan install(faults::FaultPlan::parse("source.load:after=3,count=-1"));
        PhantomSource src(ph, g);
        EXPECT_THROW(reconstruct_fdk(bcfg, src), faults::InjectedFault);
    }

    // Run C restores under a bit-flip on one restore read: detection plus
    // a retry re-read of the (intact) file keeps the replay bitwise.
    integrity::ScopedEnable on;
    faults::ScopedPlan install(
        faults::FaultPlan::parse("checkpoint.load:kind=corrupt,after=1,count=1"));
    const std::uint64_t inj = cval("faults.injected.checkpoint.load");
    const std::uint64_t det = cval("integrity.detected.checkpoint.load");
    RankConfig ccfg = cfg;
    ccfg.checkpoint = CheckpointConfig{dir, -1};
    ccfg.retry = quick_retry(4);
    PhantomSource src(ph, g);
    const FdkResult r = reconstruct_fdk(ccfg, src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(r.stats.slabs_restored, 3);
    EXPECT_EQ(cval("faults.injected.checkpoint.load") - inj, 1u);
    EXPECT_EQ(cval("integrity.detected.checkpoint.load") - det, 1u);
}

TEST(IntegrityE2E, ReduceCorruptionIsReCopiedBitwise)
{
    // Corruption in a reduce contribution is repaired *inside* the
    // collective: the root re-copies from the sender's still-intact slot,
    // no rank-level retry involved.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(
        faults::FaultPlan::parse("minimpi.reduce_sum:kind=corrupt,after=0,count=1"));
    const std::uint64_t inj = cval("faults.injected.minimpi.reduce_sum");
    const std::uint64_t det = cval("integrity.detected.minimpi.reduce_sum");
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GT(cval("faults.injected.minimpi.reduce_sum"), inj);
    EXPECT_EQ(cval("faults.injected.minimpi.reduce_sum") - inj,
              cval("integrity.detected.minimpi.reduce_sum") - det);
}

TEST(IntegrityE2E, DegradedReduceCorruptionIsReCopiedBitwise)
{
    // Dropout and corruption together: rank 3 dies, a survivor takes over
    // its share, and the keyed reduce catches a flip in one contribution.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(faults::FaultPlan::parse(
        "rank.dropout:rank=3;minimpi.reduce_sum_parts:kind=corrupt,after=0,count=1"));
    const std::uint64_t inj = cval("faults.injected.minimpi.reduce_sum_parts");
    const std::uint64_t det = cval("integrity.detected.minimpi.reduce_sum_parts");
    DistributedConfig dcfg = cfg;
    dcfg.degraded_reduce = true;
    const DistributedResult r = reconstruct_distributed(dcfg, factory);
    ASSERT_EQ(r.dead, (std::vector<RankId>{RankId{3}}));
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GT(cval("faults.injected.minimpi.reduce_sum_parts"), inj);
    EXPECT_EQ(cval("faults.injected.minimpi.reduce_sum_parts") - inj,
              cval("integrity.detected.minimpi.reduce_sum_parts") - det);
}

TEST(IntegrityE2E, HierarchicalReduceCorruptionIsReCopiedBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{1, 4};
    cfg.ranks_per_node = 2;
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(faults::FaultPlan::parse(
        "minimpi.reduce_sum_hierarchical:kind=corrupt,after=0,count=1"));
    const std::uint64_t inj = cval("faults.injected.minimpi.reduce_sum_hierarchical");
    const std::uint64_t det = cval("integrity.detected.minimpi.reduce_sum_hierarchical");
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GT(cval("faults.injected.minimpi.reduce_sum_hierarchical"), inj);
    EXPECT_EQ(cval("faults.injected.minimpi.reduce_sum_hierarchical") - inj,
              cval("integrity.detected.minimpi.reduce_sum_hierarchical") - det);
}

TEST(IntegrityE2E, CleanRunWithVerificationOnDetectsNothingAndMatchesBitwise)
{
    // Zero-false-positive guarantee: an unfaulted run with verification on
    // detects nothing and produces the same bits as one with it off.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    integrity::ScopedEnable on;
    const std::uint64_t det = cval("integrity.detected");
    const std::uint64_t ver = cval("integrity.verified");
    const DistributedResult r = reconstruct_distributed(cfg, factory);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(cval("integrity.detected"), det);     // no false positives
    EXPECT_GT(cval("integrity.verified"), ver);     // ...while actually checking
}

TEST(IntegrityE2E, AggressiveMultiSiteBitFlipRunDetectsEverything)
{
    // The headline experiment: corruption injected at the source reads,
    // the device uploads and the reduce of a distributed run — every flip
    // detected (injected == detected per site) and the final volume
    // bitwise-identical to the unfaulted reference.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    integrity::ScopedEnable on;
    faults::ScopedPlan install(faults::FaultPlan::parse(
        "source.load:kind=corrupt,after=2,count=2,flips=3;"
        "sim.h2d:kind=corrupt,after=2,count=1;"
        "minimpi.reduce_sum:kind=corrupt,after=1,count=1"));
    const char* sites[] = {"source.load", "sim.h2d", "minimpi.reduce_sum"};
    std::uint64_t inj[3], det[3];
    for (int i = 0; i < 3; ++i) {
        inj[i] = cval(std::string("faults.injected.") + sites[i]);
        det[i] = cval(std::string("integrity.detected.") + sites[i]);
    }
    DistributedConfig fcfg = cfg;
    fcfg.retry = quick_retry(6);
    const DistributedResult r = reconstruct_distributed(fcfg, factory);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t injected = cval(std::string("faults.injected.") + sites[i]) - inj[i];
        const std::uint64_t detected = cval(std::string("integrity.detected.") + sites[i]) - det[i];
        EXPECT_GT(injected, 0u) << sites[i];
        EXPECT_EQ(injected, detected) << sites[i];
    }
}

// ---- checkpoint damage: truncation and bit rot -------------------------

TEST(Resilience, TruncatedCheckpointSlabIsRecomputedBitwise)
{
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    RankConfig cfg;
    cfg.geometry = g;
    cfg.batches = 8;
    PhantomSource clean_src(ph, g);
    const FdkResult ref = reconstruct_fdk(cfg, clean_src);

    const auto dir = scratch("ckpt_trunc");
    RankConfig bcfg = cfg;
    bcfg.threaded = false;
    bcfg.checkpoint = CheckpointConfig{dir, -1};
    {
        faults::ScopedPlan install(faults::FaultPlan::parse("source.load:after=3,count=-1"));
        PhantomSource src(ph, g);
        EXPECT_THROW(reconstruct_fdk(bcfg, src), faults::InjectedFault);
    }
    faults::CheckpointStore store(dir);
    ASSERT_EQ(store.cursor(), 3);

    // A crash mid-write (simulated by truncating slab 1) must cap the
    // resume point at the damage even though the raw cursor still says 3.
    const auto slab1 = dir / "slab_1.xckp";
    ASSERT_TRUE(std::filesystem::exists(slab1));
    std::filesystem::resize_file(slab1, std::filesystem::file_size(slab1) / 2);
    EXPECT_EQ(store.cursor(), 3);
    EXPECT_EQ(store.validated_cursor(), 1);

    const std::uint64_t restored_before = cval("faults.checkpoint.restored");
    RankConfig ccfg = cfg;
    ccfg.checkpoint = CheckpointConfig{dir, -1};
    PhantomSource src(ph, g);
    const FdkResult r = reconstruct_fdk(ccfg, src);
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_EQ(r.stats.slabs_restored, 1);  // slab 0 replayed; 1+ recomputed
    EXPECT_EQ(cval("faults.checkpoint.restored") - restored_before, 1u);
}

TEST(Resilience, BitFlippedCheckpointSlabLowersValidatedCursor)
{
    faults::CheckpointStore store(scratch("ckpt_flip"));
    Volume v(Dim3{5, 4, 3});
    std::iota(v.span().begin(), v.span().end(), -7.0f);
    store.save_slab(SlabId{0}, v);
    store.save_slab(SlabId{1}, v);
    store.advance(2);
    EXPECT_EQ(store.validated_cursor(), 2);

    // Flip one payload bit of slab 0 on disk: structurally the file still
    // parses, only the digest can tell.
    const auto path = store.dir() / "slab_0.xckp";
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(-1, std::ios::end);
    char c = 0;
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x10));
    f.close();

    EXPECT_EQ(store.cursor(), 2);
    EXPECT_EQ(store.validated_cursor(), 0);
}

// ---- stalls: watchdog-supervised recovery ------------------------------

TEST(Resilience, StallPastWatchdogDeadlineIsTakenOverBitwise)
{
    // Rank 3 wedges at startup (kind=stall, 1 s).  The watchdog's health
    // probe converts the overrun into a transient fault, the rank is
    // declared dead, and degraded reduce takes over its view share — the
    // same recovery as a fail-stop dropout, now reachable from a stall.
    const CbctGeometry g = geo();
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    DistributedConfig cfg;
    cfg.geometry = g;
    cfg.layout = GroupLayout{2, 2};
    const auto factory = [&](RankId) { return std::make_unique<PhantomSource>(ph, g); };
    const DistributedResult ref = reconstruct_distributed(cfg, factory);

    faults::ScopedPlan install(
        faults::FaultPlan::parse("rank.stall:kind=stall,delay=1.0,rank=3"));
    const std::uint64_t expired = cval("watchdog.expired.health_probe");
    DistributedConfig dcfg = cfg;
    dcfg.degraded_reduce = true;
    dcfg.watchdog_timeout_s = 0.25;
    const DistributedResult r = reconstruct_distributed(dcfg, factory);
    ASSERT_EQ(r.dead, (std::vector<RankId>{RankId{3}}));
    EXPECT_TRUE(bitwise_equal(r.volume, ref.volume));
    EXPECT_GE(cval("watchdog.expired.health_probe") - expired, 1u);
}

}  // namespace
}  // namespace xct::recon
