// Bench-gate tests: BENCH JSON parsing, glob classification, the five
// metric classes (exact / higher-better / lower-better / cap / floor),
// missing and novel metrics, tolerance scaling, and the default rule
// table against realistic section names.
#include <gtest/gtest.h>

#include "gate.hpp"

namespace xct::bench_gate {
namespace {

Doc doc(std::string json)
{
    return parse(json);
}

const char* kBaseline = R"({
  "backproj": {
    "simd_backend": "avx2",
    "simd_lanes": 8,
    "updates_per_s_simd": 2.0e9,
    "speedup": 4.0,
    "warm_heap_events": 0
  },
  "filter": {
    "us_per_transform": 12.5
  },
  "flight": {
    "overhead_percent": 0.4
  },
  "transport": {
    "h2d_bytes": 1048576
  }
})";

TEST(BenchGateParse, RoundTripsSectionsKeysAndValueTypes)
{
    const Doc d = doc(kBaseline);
    ASSERT_EQ(d.size(), 4u);
    EXPECT_FALSE(d.at("backproj").at("simd_backend").is_number);
    EXPECT_EQ(d.at("backproj").at("simd_backend").text, "avx2");
    EXPECT_TRUE(d.at("backproj").at("updates_per_s_simd").is_number);
    EXPECT_DOUBLE_EQ(d.at("backproj").at("updates_per_s_simd").number, 2.0e9);
    EXPECT_DOUBLE_EQ(d.at("transport").at("h2d_bytes").number, 1048576.0);
}

TEST(BenchGateParse, RejectsMalformedAndOverNestedInput)
{
    EXPECT_THROW(doc("not json"), std::invalid_argument);
    EXPECT_THROW(doc(R"({"a": {"b": {"c": 1}}})"), std::invalid_argument);
    EXPECT_THROW(doc(R"({"a": {"b": )"), std::invalid_argument);
    EXPECT_THROW(parse_file("/nonexistent/BENCH.json"), std::invalid_argument);
}

TEST(BenchGateGlob, MatchesLiteralPrefixSuffixAndInfixStars)
{
    EXPECT_TRUE(glob_match("flight.overhead_percent", "flight.overhead_percent"));
    EXPECT_TRUE(glob_match("*.warm_heap_events", "backproj.warm_heap_events"));
    EXPECT_TRUE(glob_match("*per_s*", "backproj.updates_per_s_simd"));
    EXPECT_TRUE(glob_match("*bytes*", "transport.h2d_bytes"));
    EXPECT_FALSE(glob_match("*.warm_heap_events", "warm_heap_events"));
    EXPECT_FALSE(glob_match("fft.n", "fft.nn"));
    EXPECT_TRUE(glob_match("*", "anything.at.all"));
}

TEST(BenchGate, IdenticalDocumentsPass)
{
    const GateResult r = compare(doc(kBaseline), doc(kBaseline), default_rules());
    EXPECT_TRUE(r.pass);
    for (const Finding& f : r.findings) EXPECT_FALSE(f.fail) << f.metric << ": " << f.message;
}

TEST(BenchGate, ThroughputCollapseFailsButNoiseDoesNot)
{
    Doc cur = doc(kBaseline);
    cur["backproj"]["updates_per_s_simd"].number = 1.9e9;  // -5%: within tolerance
    EXPECT_TRUE(compare(doc(kBaseline), cur, default_rules()).pass);
    cur["backproj"]["updates_per_s_simd"].number = 0.5e9;  // -75%: collapse
    const GateResult r = compare(doc(kBaseline), cur, default_rules());
    EXPECT_FALSE(r.pass);
    bool flagged = false;
    for (const Finding& f : r.findings)
        if (f.metric == "backproj.updates_per_s_simd") flagged = f.fail;
    EXPECT_TRUE(flagged);
}

TEST(BenchGate, LatencyRegressionFails)
{
    Doc cur = doc(kBaseline);
    cur["filter"]["us_per_transform"].number = 12.5 * 4.0;  // 4x slower
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);
}

TEST(BenchGate, ExactMetricsPinDeterministicValues)
{
    Doc cur = doc(kBaseline);
    cur["backproj"]["warm_heap_events"].number = 3.0;  // allocation crept in
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);

    cur = doc(kBaseline);
    cur["transport"]["h2d_bytes"].number = 1048580.0;  // pipeline moves different data
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);

    cur = doc(kBaseline);
    cur["backproj"]["simd_lanes"].number = 4.0;  // compiled width changed
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);

    // The simd backend string is machine-dependent and deliberately
    // ungated — changing it alone is a note, not a failure.
    cur = doc(kBaseline);
    cur["backproj"]["simd_backend"].text = "scalar";
    EXPECT_TRUE(compare(doc(kBaseline), cur, default_rules()).pass);
}

TEST(BenchGate, CapIsAbsoluteNotRelative)
{
    // Baseline overhead 0.4%; tripling it stays under the 2% cap...
    Doc cur = doc(kBaseline);
    cur["flight"]["overhead_percent"].number = 1.2;
    EXPECT_TRUE(compare(doc(kBaseline), cur, default_rules()).pass);
    // ...but crossing the cap fails even if the baseline had been high.
    cur["flight"]["overhead_percent"].number = 2.5;
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);
}

TEST(BenchGate, FloorIsAbsoluteNotRelative)
{
    // The q8 PSNR holds an absolute quality floor: sitting anywhere above
    // it passes regardless of the baseline value...
    const char* base = R"({"transport": {"q8_psnr_db": 57.0}})";
    Doc cur = doc(base);
    cur["transport"]["q8_psnr_db"].number = 41.0;
    EXPECT_TRUE(compare(doc(base), cur, default_rules()).pass);
    // ...and dropping below fails even when the baseline was lower still.
    cur["transport"]["q8_psnr_db"].number = 39.5;
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);
    // Floors, like caps, ignore the tolerance scale.
    EXPECT_FALSE(compare(doc(base), cur, default_rules(), 10.0).pass);
}

TEST(BenchGate, TransportAndAutotuneRulesOutrankTheByteGlobs)
{
    // The q8 ratio metrics must hit their Cap/Floor rules, not the broad
    // '*bytes*' Exact glob; the byte counts themselves gate lower-better
    // (compression may only improve).
    const char* base = R"({
      "transport": {
        "h2d_bytes": 1048576,
        "h2d_bytes_q8": 262144,
        "q8_bytes_over_raw": 0.25,
        "q8_psnr_db": 57.0,
        "q8_max_err_vs_bound": 0.9
      },
      "autotune": {
        "picked_ng": 2,
        "candidates_scored": 301,
        "planned_over_fixed_runtime": 0.24,
        "jobs_per_hour": 4.0e6
      }
    })";
    EXPECT_TRUE(compare(doc(base), doc(base), default_rules()).pass);

    Doc cur = doc(base);
    cur["transport"]["h2d_bytes_q8"].number = 200000.0;  // fewer bytes is fine
    EXPECT_TRUE(compare(doc(base), cur, default_rules()).pass);
    cur["transport"]["h2d_bytes_q8"].number = 400000.0;  // compression regressed
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);

    cur = doc(base);
    cur["transport"]["q8_bytes_over_raw"].number = 0.4;  // above the 1/3 bar
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);

    cur = doc(base);
    cur["transport"]["q8_max_err_vs_bound"].number = 1.04;  // bound violated
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);

    cur = doc(base);
    cur["autotune"]["planned_over_fixed_runtime"].number = 1.1;  // worse than fixed
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);

    cur = doc(base);
    cur["autotune"]["picked_ng"].number = 4.0;  // deterministic pick drifted
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);

    cur = doc(base);
    cur["autotune"]["jobs_per_hour"].number = 1.0e6;  // throughput collapse
    EXPECT_FALSE(compare(doc(base), cur, default_rules()).pass);
}

TEST(BenchGate, MissingMetricFailsAndNewMetricIsANote)
{
    Doc cur = doc(kBaseline);
    cur["filter"].erase("us_per_transform");
    const GateResult dropped = compare(doc(kBaseline), cur, default_rules());
    EXPECT_FALSE(dropped.pass);

    cur = doc(kBaseline);
    cur["filter"]["rows_per_s_new"] = Value{true, 1e6, ""};
    const GateResult grown = compare(doc(kBaseline), cur, default_rules());
    EXPECT_TRUE(grown.pass);
    bool noted = false;
    for (const Finding& f : grown.findings)
        if (f.metric == "filter.rows_per_s_new")
            noted = f.message.find("new metric") != std::string::npos && !f.fail;
    EXPECT_TRUE(noted);
}

TEST(BenchGate, ToleranceScaleWidensRelativeRulesOnly)
{
    Doc cur = doc(kBaseline);
    cur["backproj"]["speedup"].number = 4.0 * 0.5;  // -50%: outside 35%
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules()).pass);
    EXPECT_TRUE(compare(doc(kBaseline), cur, default_rules(), 2.0).pass);
    // Caps are not scaled: 2.5% overhead fails even at scale 10.
    cur = doc(kBaseline);
    cur["flight"]["overhead_percent"].number = 2.5;
    EXPECT_FALSE(compare(doc(kBaseline), cur, default_rules(), 10.0).pass);
}

const char* kSoakBaseline = R"({
  "soak": {
    "detection_ratio": 1,
    "sites_match": 1,
    "wedged_jobs": 0,
    "live_bitwise_identical": 1,
    "p99_vs_predicted": 0.97,
    "jobs_per_hour": 1000.0,
    "latency_p99_s": 0.05
  },
  "filter": {
    "us_per_transform": 12.5
  }
})";

TEST(BenchGateSoak, InvariantMetricsAreExact)
{
    // A missed detection, a wedged job or a live-tier mismatch must fail
    // even when the drift is "small" — these are invariants, not trends.
    for (const char* key : {"detection_ratio", "sites_match", "live_bitwise_identical"}) {
        Doc cur = doc(kSoakBaseline);
        cur["soak"][key].number = 0.999;
        EXPECT_FALSE(compare(doc(kSoakBaseline), cur, default_rules(), 10.0).pass) << key;
    }
    Doc cur = doc(kSoakBaseline);
    cur["soak"]["wedged_jobs"].number = 1.0;
    EXPECT_FALSE(compare(doc(kSoakBaseline), cur, default_rules(), 10.0).pass);
}

TEST(BenchGateSoak, TailRatioIsCappedAtTheBoundAndThroughputIsRelative)
{
    // The p99/bound ratio has an absolute ceiling of 1.0: the bound IS
    // the budget, regardless of what the baseline machine recorded.
    Doc cur = doc(kSoakBaseline);
    cur["soak"]["p99_vs_predicted"].number = 1.01;
    EXPECT_FALSE(compare(doc(kSoakBaseline), cur, default_rules(), 10.0).pass);
    cur["soak"]["p99_vs_predicted"].number = 0.999;
    EXPECT_TRUE(compare(doc(kSoakBaseline), cur, default_rules()).pass);
    // Throughput: a 20% dip passes (schedule rebalance), a collapse fails.
    cur = doc(kSoakBaseline);
    cur["soak"]["jobs_per_hour"].number = 800.0;
    EXPECT_TRUE(compare(doc(kSoakBaseline), cur, default_rules()).pass);
    cur["soak"]["jobs_per_hour"].number = 100.0;
    EXPECT_FALSE(compare(doc(kSoakBaseline), cur, default_rules()).pass);
    // Latency percentiles ride the generous lower-better class.
    cur = doc(kSoakBaseline);
    cur["soak"]["latency_p99_s"].number = 0.05 * 4.0;
    EXPECT_FALSE(compare(doc(kSoakBaseline), cur, default_rules()).pass);
}

TEST(BenchGateSoak, FilterSectionsRestrictsBothDocuments)
{
    // The soak-smoke gate checks only the `soak` section: a regression in
    // another section is invisible, a soak regression still fails.
    Doc base = doc(kSoakBaseline);
    Doc cur = doc(kSoakBaseline);
    cur["filter"]["us_per_transform"].number = 1e6;
    EXPECT_FALSE(compare(base, cur, default_rules()).pass);
    EXPECT_TRUE(compare(filter_sections(base, {"soak"}), filter_sections(cur, {"soak"}),
                        default_rules())
                    .pass);
    cur["soak"]["wedged_jobs"].number = 2.0;
    EXPECT_FALSE(compare(filter_sections(base, {"soak"}), filter_sections(cur, {"soak"}),
                         default_rules())
                     .pass);
    // Unknown section names simply produce an empty document.
    EXPECT_TRUE(filter_sections(base, {"no_such_section"}).empty());
}

TEST(BenchGate, FormatListsEveryFindingAndTheVerdict)
{
    Doc cur = doc(kBaseline);
    cur["backproj"]["warm_heap_events"].number = 1.0;
    const GateResult r = compare(doc(kBaseline), cur, default_rules());
    const std::string text = format(r);
    EXPECT_NE(text.find("FAIL backproj.warm_heap_events"), std::string::npos);
    EXPECT_NE(text.find("bench_gate: FAIL"), std::string::npos);
    EXPECT_NE(format(compare(doc(kBaseline), doc(kBaseline), default_rules()))
                  .find("bench_gate: PASS"),
              std::string::npos);
}

}  // namespace
}  // namespace xct::bench_gate
