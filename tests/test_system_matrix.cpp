// System-matrix tests: the explicit CSR operator must reproduce the
// matrix-free Algorithm-1 kernel, satisfy the adjoint identity, and show
// the O(N^5)-class nonzero growth the paper cites.
#include <gtest/gtest.h>

#include <random>

#include "backproj/reference.hpp"
#include "projector/system_matrix.hpp"

namespace xct::projector {
namespace {

CbctGeometry geo(index_t n = 12)
{
    CbctGeometry g;
    g.dso = 100.0;
    g.dsd = 250.0;
    g.num_proj = 16;
    g.nu = 2 * n;
    g.nv = 2 * n;
    g.du = g.dv = 1.0;
    g.vol = {n, n, n};
    g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x) * 0.7;
    return g;
}

TEST(SparseOp, BasicSpmv)
{
    SparseOp op(2, 3);
    const index_t c0[] = {0, 2};
    const float v0[] = {1.0f, 2.0f};
    op.append_row(c0, v0);
    const index_t c1[] = {1};
    const float v1[] = {3.0f};
    op.append_row(c1, v1);

    const std::vector<float> x{1.0f, 10.0f, 100.0f};
    const auto y = op.apply(x);
    EXPECT_FLOAT_EQ(y[0], 201.0f);
    EXPECT_FLOAT_EQ(y[1], 30.0f);

    const std::vector<float> z{1.0f, 1.0f};
    const auto t = op.apply_transpose(z);
    EXPECT_FLOAT_EQ(t[0], 1.0f);
    EXPECT_FLOAT_EQ(t[1], 3.0f);
    EXPECT_FLOAT_EQ(t[2], 2.0f);
}

TEST(SparseOp, RejectsBadInput)
{
    SparseOp op(1, 2);
    const index_t bad_col[] = {5};
    const float v[] = {1.0f};
    EXPECT_THROW(op.append_row(bad_col, v), std::invalid_argument);
    const std::vector<float> wrong(3, 0.0f);
    EXPECT_THROW(op.apply(wrong), std::invalid_argument);
}

TEST(SystemMatrix, MatchesReferenceBackprojection)
{
    const CbctGeometry g = geo();
    const SparseOp b = build_backprojection_matrix(g);
    ASSERT_EQ(b.rows(), g.vol.count());
    ASSERT_EQ(b.cols(), g.num_proj * g.nv * g.nu);

    ProjectionStack p(g.num_proj, g.nv, g.nu);
    std::mt19937 rng(3);
    std::uniform_real_distribution<float> u(0.0f, 1.0f);
    for (float& v : p.span()) v = u(rng);

    Volume ref(g.vol);
    backproj::backproject_reference(p, projection_matrices(g), g, ref);

    const auto via_matrix = b.apply(p.span());
    for (index_t i = 0; i < g.vol.count(); ++i)
        ASSERT_NEAR(via_matrix[static_cast<std::size_t>(i)],
                    ref.span()[static_cast<std::size_t>(i)], 2e-5f)
            << "voxel " << i;
}

TEST(SystemMatrix, AdjointIdentityHolds)
{
    // <B p, x> == <p, B^T x> — the defining adjoint property, exact up to
    // float summation order.
    const CbctGeometry g = geo(8);
    const SparseOp b = build_backprojection_matrix(g);

    std::mt19937 rng(4);
    std::uniform_real_distribution<float> u(-1.0f, 1.0f);
    std::vector<float> p(static_cast<std::size_t>(b.cols()));
    std::vector<float> x(static_cast<std::size_t>(b.rows()));
    for (float& v : p) v = u(rng);
    for (float& v : x) v = u(rng);

    const auto bp = b.apply(p);
    const auto btx = b.apply_transpose(x);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < bp.size(); ++i) lhs += static_cast<double>(bp[i]) * x[i];
    for (std::size_t i = 0; i < btx.size(); ++i) rhs += static_cast<double>(btx[i]) * p[i];
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-6);
}

TEST(SystemMatrix, NonzerosPerVoxelViewAtMostFour)
{
    const CbctGeometry g = geo(8);
    const SparseOp b = build_backprojection_matrix(g);
    EXPECT_LE(b.nnz(), 4 * g.vol.count() * g.num_proj);
    EXPECT_GT(b.nnz(), g.vol.count() * g.num_proj);  // most voxels see most views
}

TEST(SystemMatrix, NnzGrowsAsVolumeTimesViews)
{
    // The O(N^5) scaling (nnz ~ 4 N^3 Np with Np ~ N) that makes explicit
    // matrices infeasible at production sizes — the paper's Sec. 4.3.1
    // argument for matrix-free kernels.
    const SparseOp small = build_backprojection_matrix(geo(6));
    const SparseOp big = build_backprojection_matrix(geo(12));
    const double ratio = static_cast<double>(big.nnz()) / static_cast<double>(small.nnz());
    EXPECT_NEAR(ratio, 8.0, 1.2);  // 2x linear size -> 8x voxels, same Np
}

TEST(SystemMatrix, RefusesProductionSizes)
{
    CbctGeometry g = geo();
    g.vol = {512, 512, 512};
    g.num_proj = 720;
    EXPECT_THROW(build_backprojection_matrix(g), std::invalid_argument);
}

}  // namespace
}  // namespace xct::projector
