// Pipeline plumbing tests: bounded queues and the Fig. 10 timeline
// recorder.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "pipeline/queue.hpp"
#include "pipeline/timeline.hpp"

namespace xct::pipeline {
namespace {

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd)
{
    BoundedQueue<int> q(4);
    q.push(7);
    q.close();
    EXPECT_EQ(q.pop().value(), 7);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pop().has_value());  // stays closed
}

TEST(BoundedQueue, PushAfterCloseThrows)
{
    BoundedQueue<int> q(2);
    q.close();
    EXPECT_THROW(q.push(1), std::invalid_argument);
}

TEST(BoundedQueue, BlocksProducerWhenFull)
{
    BoundedQueue<int> q(1);
    q.push(1);
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2);
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());  // producer blocked by capacity
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, ProducerConsumerStress)
{
    BoundedQueue<int> q(3);
    constexpr int kN = 500;
    long long sum = 0;
    std::thread consumer([&] {
        while (auto v = q.pop()) sum += *v;
    });
    for (int i = 1; i <= kN; ++i) q.push(i);
    q.close();
    consumer.join();
    EXPECT_EQ(sum, static_cast<long long>(kN) * (kN + 1) / 2);
}

TEST(BoundedQueue, PushAfterCloseThrowsTypedQueueClosed)
{
    BoundedQueue<int> q(2);
    q.close();
    EXPECT_THROW(q.push(1), QueueClosed);
}

TEST(BoundedQueue, TryPushReturnsFalseAfterClose)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    q.close();
    EXPECT_FALSE(q.try_push(2));
    EXPECT_EQ(q.pop().value(), 1);  // the rejected item was not enqueued
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseIsIdempotent)
{
    BoundedQueue<int> q(2);
    q.push(5);
    q.close();
    EXPECT_TRUE(q.closed());
    q.close();  // second close: no effect, no spurious wakeup storm
    q.close();
    EXPECT_EQ(q.pop().value(), 5);
    EXPECT_FALSE(q.pop().has_value());
}

// The daemon shutdown case (ISSUE 10 satellite): N consumers parked on an
// empty queue and N producers parked on a full one must ALL wake from one
// close() — consumers with nullopt, producers with QueueClosed (or false
// from try_push) — with no thread left blocked and no item lost.
TEST(BoundedQueue, CloseWakesAllParkedConsumers)
{
    constexpr int kThreads = 8;
    BoundedQueue<int> q(2);
    std::atomic<int> woke{0};
    std::vector<std::thread> consumers;
    for (int t = 0; t < kThreads; ++t)
        consumers.emplace_back([&] {
            EXPECT_FALSE(q.pop().has_value());
            woke.fetch_add(1);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let them park
    EXPECT_EQ(woke.load(), 0);
    q.close();
    for (auto& t : consumers) t.join();
    EXPECT_EQ(woke.load(), kThreads);
}

TEST(BoundedQueue, CloseWakesAllParkedProducers)
{
    constexpr int kThreads = 8;
    BoundedQueue<int> q(1);
    q.push(0);  // full: every producer below parks on cv_space_
    std::atomic<int> threw{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&, t] {
            try {
                q.push(t + 1);
            } catch (const QueueClosed&) {
                threw.fetch_add(1);
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(threw.load(), 0);
    q.close();
    for (auto& t : producers) t.join();
    EXPECT_EQ(threw.load(), kThreads);  // all woke, none enqueued
    EXPECT_EQ(q.pop().value(), 0);      // pre-close item still drains
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseMidStreamStressBothSides)
{
    // Producers and consumers racing a mid-stream close from a third
    // thread: every pushed item is either popped or provably rejected,
    // and every thread terminates.
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 200;
    BoundedQueue<int> q(3);
    std::atomic<long long> pushed_sum{0}, popped_sum{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int v = p * kPerProducer + i + 1;
                if (!q.try_push(v)) return;  // closed under us: stop cleanly
                pushed_sum.fetch_add(v);
            }
        });
    for (int c = 0; c < kConsumers; ++c)
        threads.emplace_back([&] {
            while (auto v = q.pop()) popped_sum.fetch_add(*v);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    for (auto& t : threads) t.join();
    // try_push serialises the "counted" decision with close(): an item is
    // in pushed_sum iff it was enqueued, and close() lets consumers drain
    // the backlog, so the sums must match exactly.
    EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

TEST(BoundedQueue, MoveOnlyItems)
{
    BoundedQueue<std::unique_ptr<int>> q(2);
    q.push(std::make_unique<int>(42));
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 42);
}

TEST(Timeline, RecordsAndAggregates)
{
    Timeline tl;
    tl.record("load", 0, 0.0, 1.0);
    tl.record("load", 1, 2.0, 2.5);
    tl.record("bp", 0, 1.0, 3.0);
    EXPECT_DOUBLE_EQ(tl.stage_busy("load"), 1.5);
    EXPECT_DOUBLE_EQ(tl.stage_busy("bp"), 2.0);
    EXPECT_DOUBLE_EQ(tl.stage_busy("absent"), 0.0);
    EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
}

TEST(Timeline, OverlapFactorMeasuresConcurrency)
{
    Timeline tl;
    // Two stages fully overlapped: busy 2.0 over makespan 1.0.
    tl.record("a", 0, 0.0, 1.0);
    tl.record("b", 0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(tl.overlap_factor(), 2.0);
}

TEST(Timeline, RenderShowsEveryStageRow)
{
    Timeline tl;
    tl.record("load", 0, 0.0, 0.5);
    tl.record("store", 0, 0.5, 1.0);
    const std::string chart = tl.render(40);
    EXPECT_NE(chart.find("load"), std::string::npos);
    EXPECT_NE(chart.find("store"), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos);
}

/// The busy row between the two '|' bars for a named stage, or "" when
/// the stage row is missing.
std::string render_row(const std::string& chart, const std::string& stage)
{
    std::istringstream in(chart);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(stage, 0) != 0) continue;
        const auto l = line.find('|');
        const auto r = line.rfind('|');
        if (l == std::string::npos || r <= l) return "";
        return line.substr(l + 1, r - l - 1);
    }
    return "";
}

TEST(Timeline, RenderNeverDropsShortSpans)
{
    // Quantisation regression: spans far narrower than one column — or
    // fully degenerate — must still mark at least one '#'.
    Timeline tl;
    tl.record("bp", 0, 0.0, 10.0);
    tl.record("store", 0, 5.0, 5.0000001);  // ~1/4000000 of a column
    tl.record("load", 0, 10.0, 10.0);       // zero-length at the right edge
    const std::string chart = tl.render(40);
    for (const char* stage : {"bp", "store", "load"}) {
        const std::string row = render_row(chart, stage);
        ASSERT_EQ(row.size(), 40u) << stage;
        EXPECT_NE(row.find('#'), std::string::npos) << stage;
    }
}

TEST(Timeline, RenderDoesNotBleedPastSpanEnd)
{
    // Half-open mapping: back-to-back spans split the chart exactly, the
    // first one not spilling into the column where the second begins.
    Timeline tl;
    tl.record("a", 0, 0.0, 0.5);
    tl.record("b", 0, 0.5, 1.0);
    const std::string chart = tl.render(40);
    EXPECT_EQ(render_row(chart, "a"), std::string(20, '#') + std::string(20, '.'));
    EXPECT_EQ(render_row(chart, "b"), std::string(20, '.') + std::string(20, '#'));
}

TEST(Timeline, EmptyRenders)
{
    Timeline tl;
    EXPECT_EQ(tl.render(), "(empty timeline)\n");
    EXPECT_DOUBLE_EQ(tl.overlap_factor(), 0.0);
}

TEST(ScopedSpan, RecordsEnclosedInterval)
{
    Timeline tl;
    {
        ScopedSpan s(tl, "work", 3);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto spans = tl.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].stage, "work");
    EXPECT_EQ(spans[0].item, 3);
    EXPECT_GE(spans[0].end - spans[0].begin, 0.004);
}

TEST(Timeline, ThreadSafeRecording)
{
    Timeline tl;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < 100; ++i)
                tl.record("s" + std::to_string(t), i, static_cast<double>(i),
                          static_cast<double>(i) + 0.5);
        });
    for (auto& t : threads) t.join();
    EXPECT_EQ(tl.spans().size(), 400u);
}

}  // namespace
}  // namespace xct::pipeline
