// Performance-model tests (Sec. 5): Eq. 13-17 identities, the scaling
// insights the paper derives (T ~ 1/N_gpus, store-bound weak scaling), and
// simulate() vs project() consistency.
#include <gtest/gtest.h>

#include "io/datasets.hpp"
#include "perfmodel/model.hpp"

namespace xct::perfmodel {
namespace {

RunConfig cfg_for(const std::string& dataset, index_t vol, index_t ng, index_t nr, index_t nc = 8)
{
    RunConfig c;
    c.geometry = io::dataset_by_name(dataset).with_volume(vol).geometry;
    c.layout = GroupLayout{ng, nr};
    c.batches = nc;
    return c;
}

TEST(BatchTimes, LoadFollowsEquation13Exactly)
{
    const RunConfig c = cfg_for("tomo_00030", 512, 1, 1);
    const MachineParams m = MachineParams::abci_v100();
    const auto bt = batch_times(c, m);
    ASSERT_EQ(bt.size(), 8u);
    // Eq. 13: batch 0 loads its whole band, later batches only the delta.
    // (Outer slabs of a volume taller than the detector FOV have empty
    // bands — the formula must honour that too.)
    const auto plans = plan_slabs(c.geometry, Range{0, 512}, 64);
    for (std::size_t i = 0; i < bt.size(); ++i) {
        const index_t rows = i == 0 ? plans[i].rows.length() : plans[i].delta.length();
        const double expect = 4.0 * static_cast<double>(c.geometry.nu) *
                              static_cast<double>(c.geometry.num_proj) *
                              static_cast<double>(rows) / (m.bw_load_gbps * 1e9);
        ASSERT_NEAR(bt[i].load, expect, 1e-12) << "batch " << i;
    }
}

TEST(BatchTimes, BpTimeFollowsEquation14)
{
    const RunConfig c = cfg_for("tomo_00030", 512, 1, 1);
    const MachineParams m = MachineParams::abci_v100();
    const auto bt = batch_times(c, m);
    // Eq. 14: Nx*Ny*Nb*Np / (Nr * TH_bp) with Nb = 512/8 = 64.
    const double expect = 512.0 * 512.0 * 64.0 * 720.0 / (m.th_bp_gups * 1e9);
    EXPECT_NEAR(bt[3].bp, expect, expect * 1e-12);
}

TEST(BatchTimes, ReduceIsZeroForSingleRankGroups)
{
    const auto bt1 = batch_times(cfg_for("tomo_00030", 256, 4, 1), MachineParams::abci_v100());
    for (const auto& t : bt1) EXPECT_DOUBLE_EQ(t.reduce, 0.0);
    const auto bt4 = batch_times(cfg_for("tomo_00030", 256, 4, 4), MachineParams::abci_v100());
    for (const auto& t : bt4) EXPECT_GT(t.reduce, 0.0);
}

TEST(BatchTimes, ReduceGrowsLogarithmicallyWithNr)
{
    const MachineParams m = MachineParams::abci_v100();
    const auto t2 = batch_times(cfg_for("tomo_00030", 256, 1, 2), m)[1].reduce;
    const auto t4 = batch_times(cfg_for("tomo_00030", 256, 1, 4), m)[1].reduce;
    const auto t16 = batch_times(cfg_for("tomo_00030", 256, 1, 16), m)[1].reduce;
    EXPECT_NEAR(t4 / t2, 2.0, 1e-9);   // log2(4)/log2(2)
    EXPECT_NEAR(t16 / t2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(Project, RuntimeShrinksWithMoreGpus)
{
    // The paper's central scaling insight: T_runtime ~ 1/N_gpus until the
    // shared store bandwidth floors it (Fig. 13).
    const MachineParams m = MachineParams::abci_v100();
    double prev = 1e30;
    for (index_t ng : {1, 2, 4, 8, 16, 32}) {
        const double t = project(cfg_for("tomo_00029", 1024, ng, 4), m).runtime;
        EXPECT_LT(t, prev) << "Ng=" << ng;
        prev = t;
    }
}

TEST(Project, StrongScalingFlattensAtScale)
{
    // Fig. 13: near-linear early, flat beyond ~256 GPUs where I/O and
    // reduction dominate.
    const MachineParams m = MachineParams::abci_v100();
    const double t16 = project(cfg_for("tomo_00029", 2048, 4, 4), m).runtime;
    const double t64 = project(cfg_for("tomo_00029", 2048, 16, 4), m).runtime;
    const double t1024 = project(cfg_for("tomo_00029", 2048, 256, 4), m).runtime;
    const double t512 = project(cfg_for("tomo_00029", 2048, 128, 4), m).runtime;
    const double early_speedup = t16 / t64;        // 4x resources
    const double late_speedup = t512 / t1024;      // 2x resources
    EXPECT_GT(early_speedup, 2.5);                 // near-linear early
    EXPECT_LT(late_speedup, 1.5);                  // flattened late
}

TEST(Project, WeakScalingIsStoreBound)
{
    // Fig. 14: generating a fixed 4096^3 output, runtime converges to the
    // shared-store floor (~9 s at 28.5 GB/s for 256 GiB).
    const MachineParams m = MachineParams::abci_v100();
    RunConfig c = cfg_for("coffee_bean", 4096, 64, 16);
    const double t = project(c, m).runtime;
    const double store_floor = 4096.0 * 4096.0 * 4096.0 * 4.0 / (m.bw_store_gbps * 1e9);
    EXPECT_GT(t, store_floor);
    EXPECT_LT(t, store_floor * 2.5);
    EXPECT_NEAR(store_floor, 9.6, 0.5);  // the paper's ~9 s
}

TEST(Project, MatchesTable5SingleGpuShape)
{
    // Table 5, tomo_00029 -> 2048^3 on one V100: T_bp dominates at
    // ~124 s; total ~138 s.  The model must land in that regime.
    const MachineParams m = MachineParams::abci_v100();
    const Projection p = project(cfg_for("tomo_00029", 2048, 1, 1), m);
    EXPECT_GT(p.t_bp, 100.0);
    EXPECT_LT(p.t_bp, 160.0);
    EXPECT_GT(p.runtime, p.t_bp);          // pipeline cannot beat its bottleneck
    EXPECT_LT(p.runtime, p.t_bp * 1.35);   // ...but overlaps everything else
}

TEST(Project, GupsMatchesPaperScale)
{
    // Fig. 15: aggregate GUPS reaches tens of thousands at 1024 GPUs.
    const MachineParams m = MachineParams::abci_v100();
    const Projection one = project(cfg_for("tomo_00029", 2048, 1, 1), m);
    EXPECT_GT(one.gups, 50.0);
    EXPECT_LT(one.gups, 130.0);
    const Projection big = project(cfg_for("coffee_bean", 4096, 256, 4), m);
    EXPECT_GT(big.gups, 5000.0);
}

TEST(Simulate, BoundedByBottleneckAndSerialSum)
{
    // True bounds: the makespan can never beat the busiest stream (every
    // batch passes through each stage in order) and never exceeds full
    // serialisation.  Eq. 17's projection — which serialises batch 0 but
    // assumes perfect overlap afterwards — must land in the same regime
    // as the event simulation (within 2x either way).
    const MachineParams m = MachineParams::abci_v100();
    for (index_t ng : {1, 4, 16}) {
        const RunConfig c = cfg_for("tomo_00029", 1024, ng, 4);
        const Projection s = simulate(c, m);
        const Projection p = project(c, m);
        const double bottleneck =
            std::max({s.t_load, s.t_filter, s.t_h2d + s.t_bp + s.t_d2h, s.t_reduce, s.t_store});
        const double serial = s.t_load + s.t_filter + s.t_h2d + s.t_bp + s.t_d2h + s.t_reduce +
                              s.t_store;
        EXPECT_GE(s.runtime, bottleneck - 1e-12) << "Ng=" << ng;
        EXPECT_LE(s.runtime, serial + 1e-12) << "Ng=" << ng;
        EXPECT_GT(s.runtime, p.runtime * 0.5) << "Ng=" << ng;
        EXPECT_LT(s.runtime, p.runtime * 2.0) << "Ng=" << ng;
    }
}

TEST(Simulate, SumOfStagesUpperBoundsSimulation)
{
    const MachineParams m = MachineParams::abci_v100();
    const RunConfig c = cfg_for("tomo_00030", 512, 1, 1);
    const Projection s = simulate(c, m);
    const double serial = s.t_load + s.t_filter + s.t_h2d + s.t_bp + s.t_d2h + s.t_reduce +
                          s.t_store;
    EXPECT_LE(s.runtime, serial + 1e-12);
}

TEST(SimulateSpans, StagesOfOneItemAreOrdered)
{
    const MachineParams m = MachineParams::abci_v100();
    const auto spans = simulate_spans(cfg_for("tomo_00030", 256, 1, 1), m);
    ASSERT_EQ(spans.size(), 8u * 5u);
    for (std::size_t i = 0; i + 4 < spans.size(); i += 5) {
        for (int s = 0; s < 4; ++s)
            EXPECT_LE(spans[i + static_cast<std::size_t>(s)].end,
                      spans[i + static_cast<std::size_t>(s) + 1].begin + 1e-12);
    }
}

TEST(SimulateSpans, ConsecutiveBatchesOverlapAcrossStages)
{
    // The Fig. 10 visual: while batch i is in back-projection, batch i+1
    // is already loading/filtering.
    const MachineParams m = MachineParams::abci_v100();
    const auto spans = simulate_spans(cfg_for("tomo_00029", 1024, 1, 1), m);
    double bp1_begin = 0.0, load2_begin = 0.0, bp1_end = 0.0;
    for (const auto& s : spans) {
        if (s.stage == "bp" && s.batch == 1) {
            bp1_begin = s.begin;
            bp1_end = s.end;
        }
        if (s.stage == "load" && s.batch == 2) load2_begin = s.begin;
    }
    EXPECT_LT(load2_begin, bp1_end);  // overlap exists
    EXPECT_GE(load2_begin, 0.0);
    (void)bp1_begin;
}

TEST(MeasureLocal, ProducesPositiveCalibratedThroughputs)
{
    const MachineParams m = measure_local();
    EXPECT_GT(m.th_bp_gups, 0.0);
    EXPECT_GT(m.th_flt_geps, 0.0);
    // Other parameters inherited from the base.
    EXPECT_DOUBLE_EQ(m.bw_store_gbps, MachineParams{}.bw_store_gbps);
}

TEST(Project, AggregatesSumBatches)
{
    const MachineParams m = MachineParams::abci_v100();
    const RunConfig c = cfg_for("tomo_00030", 256, 1, 1, 4);
    const Projection p = project(c, m);
    double load = 0.0;
    for (const auto& b : p.batches) load += b.load;
    EXPECT_DOUBLE_EQ(p.t_load, load);
    ASSERT_EQ(p.batches.size(), 4u);
}

TEST(Project, A100OutpacesV100)
{
    const RunConfig c = cfg_for("tomo_00029", 1024, 1, 1);
    EXPECT_LT(project(c, MachineParams::abci_a100()).runtime,
              project(c, MachineParams::abci_v100()).runtime);
}

}  // namespace
}  // namespace xct::perfmodel
