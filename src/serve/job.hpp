#pragma once
// Job model of the reconstruction daemon (DESIGN.md §3k).
//
// A job is one whole-volume FDK reconstruction of a deterministic
// synthetic source: the spec pins the geometry, the phantom, the batch
// count and the per-job device budget, so an identical spec reconstructs
// an identical volume on any run — the property the crash-recovery proof
// (journal replay -> bitwise-identical outputs) rests on.

#include <cstdint>
#include <string>

#include "core/geometry.hpp"

namespace xct::serve {

/// Monotonic per-daemon job identifier (journal-durable).
using JobId = std::uint64_t;

/// Scheduling class.  Higher runs first; the shedder only ever drops
/// expired work, lowest class first.
enum class Priority { Low = 0, Normal = 1, High = 2 };

const char* to_string(Priority p);
/// Parses "low"/"normal"/"high"; throws std::invalid_argument otherwise.
Priority priority_from(const std::string& s);

/// Job lifecycle.  Queued/Running are live; everything else is terminal.
///
///   Queued ----> Running ----> Done
///     |  \          \-------> Cancelled / Failed
///     |   \-------> Cancelled / Shed
///     \----[admission]------> Rejected
enum class JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Rejected,
    Shed,
    Failed,
};

const char* to_string(JobState s);
bool is_terminal(JobState s);

/// What a client submits.
struct JobSpec {
    CbctGeometry geometry;
    /// 0: the 3D Shepp-Logan phantom; otherwise porous_bean(seed) — both
    /// analytic, so the source is bitwise-deterministic in the spec.
    std::uint64_t phantom_seed = 0;
    index_t batches = 8;                      ///< Nc of the rank pipeline
    std::size_t device_capacity = 64u << 20;  ///< this job's device ask [bytes]
    Priority priority = Priority::Normal;
    std::string tenant = "default";           ///< fair-share accounting key
    /// Submit-to-finish budget in seconds; 0 means no deadline, negative
    /// is rejected at admission as already expired.  The remaining budget
    /// at start time propagates into the pipeline watchdog; a deadline
    /// that expires while the job is still queued sheds it instead of
    /// running it.
    double deadline_s = 0.0;
    /// Final .vol path; empty uses <spool>/out/job-<id>.vol.  Written
    /// atomically (io::write_volume's temp+rename) on success only.
    std::string output;
};

/// One job's externally visible status (the `status` API response).
struct JobStatus {
    JobId id = 0;
    JobState state = JobState::Queued;
    std::string tenant;
    Priority priority = Priority::Normal;
    std::string reason;            ///< reject / shed / fail detail ("" otherwise)
    double progress = 0.0;         ///< completed_slabs / total_slabs in [0, 1]
    index_t total_slabs = 0;
    index_t completed_slabs = 0;
    double predicted_s = 0.0;      ///< admission's perfmodel runtime estimate
    std::uint64_t device_bytes = 0;  ///< admission's priced device requirement
    std::string output;            ///< final volume path (Done jobs)
};

}  // namespace xct::serve
