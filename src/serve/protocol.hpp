#pragma once
// Typed JSON job API of the daemon (DESIGN.md §3k).
//
// One request per connection, newline-delimited: the client writes a
// single-line JSON object, the daemon answers with a single-line JSON
// object carrying "ok" plus op-specific fields.  The parser is a small
// self-contained recursive-descent JSON reader (objects, arrays, strings
// with basic escapes, numbers, booleans, null) — the tree bans external
// dependencies, and the grammar the API needs is tiny.
//
// Doubles are printed at max_digits10 so a spec survives the
// encode->decode round trip bit-exactly; the journal stores specs in this
// same encoding, which is why replayed jobs reconstruct identical volumes.

#include <string>
#include <vector>

#include "serve/job.hpp"

namespace xct::serve {

/// Parsed JSON value (tree-owned, no sharing).
class Json {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Json> array;
    std::vector<std::pair<std::string, Json>> object;  // insertion order

    /// Parse one JSON document; throws std::invalid_argument with a byte
    /// offset on malformed input.
    static Json parse(const std::string& text);

    /// Object member lookup; nullptr when absent or not an object.
    const Json* find(const std::string& key) const;

    /// Typed accessors; throw std::invalid_argument (naming `what`) on a
    /// type mismatch so API errors carry the offending field.
    double as_number(const std::string& what) const;
    const std::string& as_string(const std::string& what) const;
    bool as_bool(const std::string& what) const;
};

/// Escape `s` into a JSON string literal (quotes included).
std::string json_quote(const std::string& s);
/// Print a double at round-trip precision.
std::string json_number(double v);

// ---- JobSpec / JobStatus wire forms ------------------------------------

std::string encode_spec(const JobSpec& spec);
/// Throws std::invalid_argument on missing/ill-typed fields.
JobSpec decode_spec(const Json& j);

std::string encode_status(const JobStatus& st);
JobStatus decode_status(const Json& j);

// ---- request envelope ---------------------------------------------------

/// A decoded client request.  `op` is one of: submit, status, list,
/// cancel, wait, fetch_slice, metrics, ping, shutdown.
struct Request {
    std::string op;
    JobSpec spec;          ///< submit
    JobId id = 0;          ///< status / cancel / wait / fetch_slice
    index_t slice = 0;     ///< fetch_slice
    double timeout_s = 60.0;  ///< wait
};

std::string encode_request(const Request& r);
Request decode_request(const std::string& line);

/// {"ok":false,"error":...} — the uniform failure envelope.
std::string encode_error(const std::string& message);

}  // namespace xct::serve
