#pragma once
// Crash-durable job journal (DESIGN.md §3k).
//
// An append-only file of XXH64-framed records: every job state transition
// the engine must be able to reconstruct after kill -9 is appended (and
// fsynced) *before* the transition takes effect.  The frame digest reuses
// src/integrity's checksum (so journal bytes are counted with every other
// integrity-checked movement), covering type, job id and payload — a torn
// tail or a flipped bit makes the digest mismatch and recovery truncates
// the file back to its last whole frame instead of trusting it.
//
// Record grammar (engine-level, see engine.cpp):
//   Submit  payload = JSON JobSpec          (the durable copy of the job)
//   Accept  payload = JSON admission price  (device bytes, prediction,
//                                            absolute deadline)
//   Reject/Shed/Fail payload = reason text
//   Start/Done/Cancel payload = ""
//
// Fault site serve.journal.append gates every append: a kind=throw plan
// makes the append fail before reaching disk (the engine surfaces it as a
// submit/transition error), a kind=corrupt plan flips bits in the frame
// on its way to disk so recovery exercises the truncate-on-mismatch path.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/mutex.hpp"
#include "serve/job.hpp"

namespace xct::serve {

enum class RecordType : std::uint32_t {
    Submit = 1,
    Accept = 2,
    Reject = 3,
    Start = 4,
    Done = 5,
    Cancel = 6,
    Shed = 7,
    Fail = 8,
};

const char* to_string(RecordType t);

struct Record {
    RecordType type = RecordType::Submit;
    JobId job = 0;
    std::string payload;
};

class Journal {
public:
    /// Opens (creating if absent) the journal at `path`, replays every
    /// valid frame into recovered(), and truncates the file back to the
    /// end of the last valid frame — so appends after a crash never land
    /// unreachable beyond a torn record.  `fsync_each` trades durability
    /// for speed in tests.
    explicit Journal(std::filesystem::path path, bool fsync_each = true);
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Records replayed at open, in append order.
    const std::vector<Record>& recovered() const { return recovered_; }

    /// Frames dropped at open (0 on a clean file; > 0 means the tail was
    /// torn or corrupt and recovery truncated it).
    std::size_t truncated_frames() const { return truncated_; }

    /// Append one record durably.  Serialised internally (any engine
    /// thread may append); throws faults::InjectedFault when a
    /// serve.journal.append kind=throw plan fires (nothing is written),
    /// std::runtime_error on a real I/O failure.
    void append(RecordType type, JobId job, std::string_view payload);

    const std::filesystem::path& path() const { return path_; }

    /// Replay `path` without opening it for append (tests, inspection).
    /// Tolerant: stops at the first invalid frame.
    static std::vector<Record> replay(const std::filesystem::path& path);

private:
    std::filesystem::path path_;
    bool fsync_each_;
    int fd_ = -1;
    Mutex m_{"serve.journal"};
    std::vector<Record> recovered_;
    std::size_t truncated_ = 0;
};

}  // namespace xct::serve
