#pragma once
// The serving engine (DESIGN.md §3k): a long-lived multi-tenant scheduler
// over recon::ReconSession.
//
// Life of a job: submit() journals the spec, prices it through admission
// (reject-with-reason — the caller never wedges), journals the verdict
// and queues it.  Worker threads pick runnable work by (priority desc,
// tenant least-service, FIFO), charge the priced device bytes against the
// daemon-wide budget, propagate the job's remaining deadline into the
// pipeline watchdog, and run the session with a per-job checkpoint
// directory.  cancel() pokes the session's CancelToken — the pipeline
// polls it at every stage boundary, so budget and the worker slot come
// back within one stage.  Overload policy: the queue is bounded
// (admission reason "queue_full"), and queued jobs whose deadline expires
// are shed lowest-priority-first (serve.shed) before anything else runs.
//
// Crash durability: every transition is journaled (fsync) before it takes
// effect, Done strictly after the output volume's atomic rename.  After
// kill -9, the constructor replays the journal: terminal jobs keep their
// status, accepted-but-unfinished jobs are requeued (serve.recovered) and
// resume from their checkpoint directory's last completed slab — the
// rerun is bitwise-identical to an uninterrupted run, so recovered
// volumes equal uncrashed ones byte for byte.
//
// Lock order (lockorder witness): serve.engine -> serve.journal ->
// telemetry.metrics.  Sessions run strictly outside the engine mutex.

#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.hpp"
#include "perfmodel/model.hpp"
#include "recon/session.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"

namespace xct::serve {

struct EngineConfig {
    std::filesystem::path spool;           ///< journal, checkpoints, outputs
    std::size_t device_budget = 256u << 20;  ///< sum of running jobs' priced bytes
    index_t workers = 2;                   ///< concurrent sessions
    index_t max_queued = 16;               ///< bounded admission queue depth
    perfmodel::MachineParams machine{};    ///< admission's runtime pricing model
    double tail_slack = 1.25;              ///< perfmodel tail-bound slack factor
    bool fsync_journal = true;             ///< tests may trade durability for speed
};

struct SubmitResult {
    JobId id = 0;
    bool accepted = false;
    std::string reason;       ///< stable reject key ("" when accepted)
    std::string detail;
    double predicted_s = 0.0;
};

class Engine {
public:
    /// Opens (or recovers) the spool: replays the journal, restores
    /// terminal job statuses, requeues unfinished accepted jobs.  Call
    /// start() to launch the workers.
    explicit Engine(EngineConfig cfg);
    ~Engine();
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    void start();
    /// Stop accepting and picking work and join the workers.  Running
    /// sessions are cancelled cooperatively but deliberately NOT journaled
    /// as cancelled: an interrupted job stays non-terminal in the journal,
    /// so the next Engine over this spool requeues it — graceful shutdown
    /// and kill -9 converge on the same recovery path.
    void stop();

    SubmitResult submit(const JobSpec& spec);
    /// Throws std::out_of_range for an unknown id.
    JobStatus status(JobId id) const;
    std::vector<JobStatus> list() const;
    /// Request cancellation; true when the job was live (queued jobs
    /// terminalise immediately, running ones within one stage boundary).
    bool cancel(JobId id);
    /// Block until `id` is terminal or `timeout_s` elapses; returns the
    /// final (or current, on timeout) status.
    JobStatus wait(JobId id, double timeout_s);
    /// Block until no job is queued or running (tests, drain-then-stop).
    void drain();

    /// Jobs requeued from the journal by this engine's recovery.
    index_t recovered_jobs() const { return recovered_; }
    /// Perfmodel tail bound for one accepted job's latency (the overload
    /// proof's p99 ceiling): slack * predicted runtime.
    double tail_bound_s(double predicted_s) const { return cfg_.tail_slack * predicted_s; }

    const EngineConfig& config() const { return cfg_; }

private:
    struct Job {
        JobSpec spec;
        JobState state = JobState::Queued;
        std::string reason;
        std::uint64_t device_bytes = 0;
        double predicted_s = 0.0;
        /// Absolute unix-epoch deadline (0: none).  Survives restarts so
        /// elapsed downtime counts against the budget.
        double deadline_unix = 0.0;
        double submitted_unix = 0.0;
        bool user_cancel = false;  ///< distinguishes client cancel from stop()
        std::shared_ptr<recon::ReconSession> session;  ///< only while Running
        index_t total_slabs = 0, completed_slabs = 0;  ///< last observed
        std::string output;
    };

    // --- all guarded by m_ ---
    mutable Mutex m_{"serve.engine"};
    CondVar work_cv_;   ///< workers wait for runnable jobs
    CondVar state_cv_;  ///< wait()/drain() wait for transitions
    std::map<JobId, Job> jobs_ XCT_GUARDED_BY(m_);
    std::deque<JobId> queue_ XCT_GUARDED_BY(m_);
    std::size_t device_used_ XCT_GUARDED_BY(m_) = 0;
    std::map<std::string, double> tenant_service_ XCT_GUARDED_BY(m_);
    JobId next_id_ XCT_GUARDED_BY(m_) = 1;
    bool stopping_ XCT_GUARDED_BY(m_) = false;
    index_t running_ XCT_GUARDED_BY(m_) = 0;

    EngineConfig cfg_;
    std::unique_ptr<Journal> journal_;
    std::vector<std::thread> workers_;
    index_t recovered_ = 0;

    void recover();
    void worker_loop();
    /// Drop queued jobs whose deadline has passed, lowest priority first.
    void shed_expired_locked() XCT_REQUIRES(m_);
    /// Pick the next runnable queued job (priority desc, tenant
    /// least-service, FIFO) that fits the device budget; -1 if none.
    JobId pick_locked() const XCT_REQUIRES(m_);
    void run_job(JobId id);
    void finish(JobId id, JobState state, const std::string& reason);
    JobStatus status_locked(const Job& j, JobId id) const XCT_REQUIRES(m_);
    std::filesystem::path out_path(JobId id, const JobSpec& spec) const;
    std::filesystem::path ckpt_dir(JobId id) const;
};

}  // namespace xct::serve
