#include "serve/admission.hpp"

#include <stdexcept>

#include "autotune/planner.hpp"
#include "core/names.hpp"
#include "faults/fault.hpp"

namespace xct::serve {

Decision price(const JobSpec& spec, const perfmodel::MachineParams& machine)
{
    Decision d;
    try {
        faults::check(names::kSiteServeAccept);
    } catch (const faults::InjectedFault& e) {
        d.reason = "fault";
        d.detail = e.what();
        return d;
    }
    try {
        spec.geometry.validate();
        if (spec.batches <= 0) throw std::invalid_argument("batches must be positive");
        if (spec.tenant.empty()) throw std::invalid_argument("tenant must be non-empty");
    } catch (const std::invalid_argument& e) {
        d.reason = "invalid";
        d.detail = e.what();
        return d;
    }

    // Jobs run as one rank over the full problem: the session's
    // decomposition is GroupLayout{1,1} at the spec's batch count.
    autotune::JobShape shape;
    shape.geometry = spec.geometry;
    shape.rank_budget = 1;
    shape.device_capacity = spec.device_capacity;
    const autotune::Candidate c{GroupLayout{1, 1}, spec.batches, 2};

    d.device_bytes = autotune::required_device_bytes(shape, c);
    if (d.device_bytes == 0 || d.device_bytes > spec.device_capacity) {
        d.reason = "infeasible";
        d.detail = "requires " + std::to_string(d.device_bytes) + " device bytes, capacity " +
                   std::to_string(spec.device_capacity);
        return d;
    }

    d.predicted_s = autotune::predict_runtime(shape, c, machine);
    // deadline_s == 0 means no deadline; negative means it had already
    // expired when the client submitted (the relative budget is gone) —
    // reject at admission rather than shed later.
    if (spec.deadline_s < 0.0) {
        d.reason = "deadline";
        d.detail = "deadline already expired at submit";
        return d;
    }
    if (spec.deadline_s > 0.0 && d.predicted_s > spec.deadline_s) {
        d.reason = "deadline";
        d.detail = "predicted " + std::to_string(d.predicted_s) + "s exceeds deadline " +
                   std::to_string(spec.deadline_s) + "s";
        return d;
    }

    d.admitted = true;
    return d;
}

}  // namespace xct::serve
