#pragma once
// Admission control (DESIGN.md §3k): price a submitted job against the
// sim::Device capacity model *before* it holds any resource, and reject
// with a reason instead of wedging.
//
// The price is the autotune planner's own device sizing
// (autotune::required_device_bytes — circular texture + slab sub-volume
// for the job's single-rank decomposition) and the runtime estimate is
// the Eq. 13-17 event simulation (autotune::predict_runtime), so the
// daemon admits exactly what the capacity model says fits and promises
// only what the perfmodel says is achievable.  Rejection reasons are the
// serve.reject.<reason> metric keys.

#include <string>

#include "perfmodel/model.hpp"
#include "serve/job.hpp"

namespace xct::serve {

/// Admission verdict for one submission.
struct Decision {
    bool admitted = false;
    /// "" when admitted; otherwise one of the stable reason keys:
    /// "invalid" (geometry/spec rejected), "infeasible" (does not fit the
    /// job's device capacity), "deadline" (already expired, or the
    /// perfmodel says it cannot finish in time), "queue_full" (bounded
    /// queue at depth), "fault" (serve.accept chaos plan fired).
    std::string reason;
    std::string detail;             ///< human-readable elaboration
    std::uint64_t device_bytes = 0; ///< priced device requirement
    double predicted_s = 0.0;       ///< event-sim runtime estimate
};

/// Price `spec` against its own device capacity and deadline.  Pure — no
/// engine state; the engine layers the queue-depth and budget checks on
/// top.  Consumes one serve.accept fault-site call (a fired kind=throw
/// plan returns reason "fault").
Decision price(const JobSpec& spec, const perfmodel::MachineParams& machine);

}  // namespace xct::serve
