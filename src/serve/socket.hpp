#pragma once
// Local-socket transport of the job API (DESIGN.md §3k).
//
// AF_UNIX stream sockets, newline-delimited, one request per connection:
// the client connects, writes one JSON line, reads one JSON line back,
// and the connection closes.  Deliberately minimal — the daemon's unit of
// concurrency is the engine worker, not the connection, and one-shot
// connections keep the accept loop free of per-client framing state, so
// a SIGKILLed client can never wedge the daemon (fault containment, not
// throughput, is what the transport owes the tentpole).
//
// Raw-memory discipline: this file talks POSIX (socket/bind/accept and fd
// read/write) with C aggregate types only — no reinterpret_cast, no
// owning raw pointers — so it stays inside the tree-wide `rawmem` lint
// rule without an exemption.

#include <atomic>
#include <filesystem>
#include <functional>
#include <string>

namespace xct::serve {

/// Handle one request line, return one response line (without the '\n').
using Handler = std::function<std::string(const std::string&)>;

class UnixServer {
public:
    /// Binds and listens on `path` (an existing stale socket file is
    /// unlinked first — the journal, not the socket, is the source of
    /// truth across restarts).  Throws std::runtime_error on failure.
    explicit UnixServer(std::filesystem::path path);
    ~UnixServer();
    UnixServer(const UnixServer&) = delete;
    UnixServer& operator=(const UnixServer&) = delete;

    /// Accept-and-serve loop; returns when `stop` becomes true (checked
    /// between connections at a poll cadence of ~100 ms).  Handler
    /// exceptions are mapped to {"ok":false,...} responses, never out of
    /// the loop.
    void run(const Handler& handler, const std::atomic<bool>& stop);

    const std::filesystem::path& path() const { return path_; }

private:
    std::filesystem::path path_;
    int fd_ = -1;
};

/// One-shot client: connect to `path`, send `line`, return the response
/// line.  Throws std::runtime_error on connect/IO failure (daemon down).
std::string unix_request(const std::filesystem::path& path, const std::string& line,
                         double timeout_s = 30.0);

}  // namespace xct::serve
