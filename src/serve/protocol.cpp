#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace xct::serve {

namespace {

[[noreturn]] void bad(const std::string& what, std::size_t at)
{
    throw std::invalid_argument("json: " + what + " at byte " + std::to_string(at));
}

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    Json parse_document()
    {
        Json v = parse_value();
        skip_ws();
        if (i_ != s_.size()) bad("trailing data", i_);
        return v;
    }

private:
    const std::string& s_;
    std::size_t i_ = 0;

    void skip_ws()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r'))
            ++i_;
    }

    char peek()
    {
        if (i_ >= s_.size()) bad("unexpected end", i_);
        return s_[i_];
    }

    void expect(char c)
    {
        if (peek() != c) bad(std::string("expected '") + c + "'", i_);
        ++i_;
    }

    bool consume_literal(const char* lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0') ++n;
        if (s_.compare(i_, n, lit) != 0) return false;
        i_ += n;
        return true;
    }

    Json parse_value()
    {
        skip_ws();
        const char c = peek();
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') {
            Json v;
            v.type = Json::Type::String;
            v.string = parse_string();
            return v;
        }
        if (c == 't' || c == 'f') {
            Json v;
            v.type = Json::Type::Bool;
            if (consume_literal("true"))
                v.boolean = true;
            else if (consume_literal("false"))
                v.boolean = false;
            else
                bad("bad literal", i_);
            return v;
        }
        if (c == 'n') {
            if (!consume_literal("null")) bad("bad literal", i_);
            return Json{};
        }
        return parse_number();
    }

    Json parse_object()
    {
        expect('{');
        Json v;
        v.type = Json::Type::Object;
        skip_ws();
        if (peek() == '}') {
            ++i_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json parse_array()
    {
        expect('[');
        Json v;
        v.type = Json::Type::Array;
        skip_ws();
        if (peek() == ']') {
            ++i_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (i_ >= s_.size()) bad("unterminated string", i_);
            const char c = s_[i_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (i_ >= s_.size()) bad("unterminated escape", i_);
            const char e = s_[i_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                default: bad("unsupported escape", i_ - 1);
            }
        }
    }

    Json parse_number()
    {
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '-' ||
                s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E'))
            ++i_;
        if (i_ == start) bad("expected value", i_);
        Json v;
        v.type = Json::Type::Number;
        std::size_t used = 0;
        try {
            v.number = std::stod(s_.substr(start, i_ - start), &used);
        } catch (const std::exception&) {
            bad("bad number", start);
        }
        if (used != i_ - start) bad("bad number", start);
        return v;
    }
};

const Json& member(const Json& j, const std::string& key)
{
    const Json* m = j.find(key);
    if (m == nullptr) throw std::invalid_argument("json: missing field \"" + key + "\"");
    return *m;
}

double num_or(const Json& j, const std::string& key, double fallback)
{
    const Json* m = j.find(key);
    return m != nullptr ? m->as_number(key) : fallback;
}

std::string str_or(const Json& j, const std::string& key, const std::string& fallback)
{
    const Json* m = j.find(key);
    return m != nullptr ? m->as_string(key) : fallback;
}

index_t idx(double v, const std::string& what)
{
    if (!std::isfinite(v) || v != std::floor(v))
        throw std::invalid_argument("json: " + what + " must be an integer");
    return static_cast<index_t>(v);
}

}  // namespace

Json Json::parse(const std::string& text)
{
    return Parser(text).parse_document();
}

const Json* Json::find(const std::string& key) const
{
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object)
        if (k == key) return &v;
    return nullptr;
}

double Json::as_number(const std::string& what) const
{
    if (type != Type::Number) throw std::invalid_argument("json: " + what + " must be a number");
    return number;
}

const std::string& Json::as_string(const std::string& what) const
{
    if (type != Type::String) throw std::invalid_argument("json: " + what + " must be a string");
    return string;
}

bool Json::as_bool(const std::string& what) const
{
    if (type != Type::Bool) throw std::invalid_argument("json: " + what + " must be a boolean");
    return boolean;
}

std::string json_quote(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string json_number(double v)
{
    std::ostringstream ss;
    ss << std::setprecision(17) << v;
    return ss.str();
}

std::string encode_spec(const JobSpec& spec)
{
    const CbctGeometry& g = spec.geometry;
    std::ostringstream ss;
    ss << "{\"geometry\":{"
       << "\"dso\":" << json_number(g.dso) << ",\"dsd\":" << json_number(g.dsd)
       << ",\"num_proj\":" << g.num_proj << ",\"nu\":" << g.nu << ",\"nv\":" << g.nv
       << ",\"du\":" << json_number(g.du) << ",\"dv\":" << json_number(g.dv) << ",\"vol\":["
       << g.vol.x << "," << g.vol.y << "," << g.vol.z << "],\"dx\":" << json_number(g.dx)
       << ",\"dy\":" << json_number(g.dy) << ",\"dz\":" << json_number(g.dz)
       << ",\"scan_range\":" << json_number(g.scan_range) << "}"
       << ",\"phantom_seed\":" << spec.phantom_seed << ",\"batches\":" << spec.batches
       << ",\"device_capacity\":" << spec.device_capacity
       << ",\"priority\":" << json_quote(to_string(spec.priority))
       << ",\"tenant\":" << json_quote(spec.tenant)
       << ",\"deadline_s\":" << json_number(spec.deadline_s)
       << ",\"output\":" << json_quote(spec.output) << "}";
    return ss.str();
}

JobSpec decode_spec(const Json& j)
{
    JobSpec spec;
    const Json& g = member(j, "geometry");
    spec.geometry.dso = member(g, "dso").as_number("dso");
    spec.geometry.dsd = member(g, "dsd").as_number("dsd");
    spec.geometry.num_proj = idx(member(g, "num_proj").as_number("num_proj"), "num_proj");
    spec.geometry.nu = idx(member(g, "nu").as_number("nu"), "nu");
    spec.geometry.nv = idx(member(g, "nv").as_number("nv"), "nv");
    spec.geometry.du = num_or(g, "du", 1.0);
    spec.geometry.dv = num_or(g, "dv", 1.0);
    const Json& vol = member(g, "vol");
    if (vol.type != Json::Type::Array || vol.array.size() != 3)
        throw std::invalid_argument("json: vol must be [nx, ny, nz]");
    spec.geometry.vol = Dim3{idx(vol.array[0].as_number("vol"), "vol"),
                             idx(vol.array[1].as_number("vol"), "vol"),
                             idx(vol.array[2].as_number("vol"), "vol")};
    spec.geometry.dx = num_or(g, "dx", 1.0);
    spec.geometry.dy = num_or(g, "dy", 1.0);
    spec.geometry.dz = num_or(g, "dz", 1.0);
    spec.geometry.scan_range = num_or(g, "scan_range", spec.geometry.scan_range);
    spec.phantom_seed = static_cast<std::uint64_t>(num_or(j, "phantom_seed", 0.0));
    spec.batches = idx(num_or(j, "batches", 8.0), "batches");
    spec.device_capacity =
        static_cast<std::size_t>(num_or(j, "device_capacity", 64.0 * (1 << 20)));
    spec.priority = priority_from(str_or(j, "priority", "normal"));
    spec.tenant = str_or(j, "tenant", "default");
    spec.deadline_s = num_or(j, "deadline_s", 0.0);
    spec.output = str_or(j, "output", "");
    return spec;
}

std::string encode_status(const JobStatus& st)
{
    std::ostringstream ss;
    ss << "{\"id\":" << st.id << ",\"state\":" << json_quote(to_string(st.state))
       << ",\"tenant\":" << json_quote(st.tenant)
       << ",\"priority\":" << json_quote(to_string(st.priority))
       << ",\"reason\":" << json_quote(st.reason)
       << ",\"progress\":" << json_number(st.progress)
       << ",\"total_slabs\":" << st.total_slabs
       << ",\"completed_slabs\":" << st.completed_slabs
       << ",\"predicted_s\":" << json_number(st.predicted_s)
       << ",\"device_bytes\":" << st.device_bytes
       << ",\"output\":" << json_quote(st.output) << "}";
    return ss.str();
}

JobStatus decode_status(const Json& j)
{
    JobStatus st;
    st.id = static_cast<JobId>(member(j, "id").as_number("id"));
    const std::string& state = member(j, "state").as_string("state");
    const JobState states[] = {JobState::Queued,   JobState::Running, JobState::Done,
                               JobState::Cancelled, JobState::Rejected, JobState::Shed,
                               JobState::Failed};
    bool found = false;
    for (const JobState s : states)
        if (state == to_string(s)) {
            st.state = s;
            found = true;
        }
    if (!found) throw std::invalid_argument("json: unknown state \"" + state + "\"");
    st.tenant = str_or(j, "tenant", "");
    st.priority = priority_from(str_or(j, "priority", "normal"));
    st.reason = str_or(j, "reason", "");
    st.progress = num_or(j, "progress", 0.0);
    st.total_slabs = idx(num_or(j, "total_slabs", 0.0), "total_slabs");
    st.completed_slabs = idx(num_or(j, "completed_slabs", 0.0), "completed_slabs");
    st.predicted_s = num_or(j, "predicted_s", 0.0);
    st.device_bytes = static_cast<std::uint64_t>(num_or(j, "device_bytes", 0.0));
    st.output = str_or(j, "output", "");
    return st;
}

std::string encode_request(const Request& r)
{
    std::ostringstream ss;
    ss << "{\"op\":" << json_quote(r.op);
    if (r.op == "submit") ss << ",\"spec\":" << encode_spec(r.spec);
    if (r.op == "status" || r.op == "cancel" || r.op == "wait" || r.op == "fetch_slice")
        ss << ",\"id\":" << r.id;
    if (r.op == "fetch_slice") ss << ",\"slice\":" << r.slice;
    if (r.op == "wait") ss << ",\"timeout_s\":" << json_number(r.timeout_s);
    ss << "}";
    return ss.str();
}

Request decode_request(const std::string& line)
{
    const Json j = Json::parse(line);
    Request r;
    r.op = member(j, "op").as_string("op");
    if (r.op == "submit") r.spec = decode_spec(member(j, "spec"));
    if (r.op == "status" || r.op == "cancel" || r.op == "wait" || r.op == "fetch_slice")
        r.id = static_cast<JobId>(member(j, "id").as_number("id"));
    if (r.op == "fetch_slice") r.slice = idx(member(j, "slice").as_number("slice"), "slice");
    if (r.op == "wait") r.timeout_s = num_or(j, "timeout_s", 60.0);
    return r;
}

std::string encode_error(const std::string& message)
{
    return "{\"ok\":false,\"error\":" + json_quote(message) + "}";
}

const char* to_string(Priority p)
{
    switch (p) {
        case Priority::Low: return "low";
        case Priority::Normal: return "normal";
        case Priority::High: return "high";
    }
    return "unknown";
}

Priority priority_from(const std::string& s)
{
    if (s == "low") return Priority::Low;
    if (s == "normal") return Priority::Normal;
    if (s == "high") return Priority::High;
    throw std::invalid_argument("priority must be low|normal|high, got \"" + s + "\"");
}

const char* to_string(JobState s)
{
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Done: return "done";
        case JobState::Cancelled: return "cancelled";
        case JobState::Rejected: return "rejected";
        case JobState::Shed: return "shed";
        case JobState::Failed: return "failed";
    }
    return "unknown";
}

bool is_terminal(JobState s)
{
    return s != JobState::Queued && s != JobState::Running;
}

}  // namespace xct::serve
