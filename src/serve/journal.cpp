#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>

#include "core/names.hpp"
#include "faults/fault.hpp"
#include "integrity/integrity.hpp"

namespace xct::serve {

namespace {

// Frame: [magic u32][type u32][job u64][len u32][reserved u32][digest u64]
// then `len` payload bytes.  The digest covers the first 24 header bytes
// plus the payload (native endianness: the journal is a single-host
// artifact, recovered by the same machine that wrote it).
constexpr std::uint32_t kMagic = 0x314c4a58u;  // "XJL1"
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kDigestOff = 24;
constexpr std::uint32_t kMaxPayload = 16u << 20;

void append_raw(std::string& s, const void* src, std::size_t n)
{
    s.append(static_cast<const char*>(src), n);
}

std::string frame(RecordType type, JobId job, std::string_view payload)
{
    const std::uint32_t t = static_cast<std::uint32_t>(type);
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t reserved = 0;
    // The digest covers header fields [4, 24) ++ payload — everything but
    // the magic and the digest slot itself.
    std::string hashed;
    hashed.reserve(20 + payload.size());
    append_raw(hashed, &t, 4);
    append_raw(hashed, &job, 8);
    append_raw(hashed, &len, 4);
    append_raw(hashed, &reserved, 4);
    hashed.append(payload);
    const integrity::digest_t d = integrity::checksum(
        std::as_bytes(std::span<const char>(hashed.data(), hashed.size())));
    std::string buf;
    buf.reserve(kHeaderBytes + payload.size());
    append_raw(buf, &kMagic, 4);
    buf.append(hashed, 0, 20);
    append_raw(buf, &d, 8);
    buf.append(payload);
    return buf;
}

/// Parse one frame at `off`; returns false (without touching `out`) when
/// the bytes from `off` do not form a whole, digest-valid frame.
bool parse_frame(const std::vector<char>& bytes, std::size_t off, Record& out,
                 std::size_t& frame_len)
{
    if (bytes.size() - off < kHeaderBytes) return false;
    std::uint32_t magic = 0, type = 0, len = 0;
    std::uint64_t job = 0, stored = 0;
    std::memcpy(&magic, bytes.data() + off, 4);
    std::memcpy(&type, bytes.data() + off + 4, 4);
    std::memcpy(&job, bytes.data() + off + 8, 8);
    std::memcpy(&len, bytes.data() + off + 16, 4);
    std::memcpy(&stored, bytes.data() + off + kDigestOff, 8);
    if (magic != kMagic || len > kMaxPayload) return false;
    if (type < static_cast<std::uint32_t>(RecordType::Submit) ||
        type > static_cast<std::uint32_t>(RecordType::Fail))
        return false;
    if (bytes.size() - off - kHeaderBytes < len) return false;
    std::string hashed;
    hashed.reserve(20 + len);
    hashed.append(bytes.data() + off + 4, 20);
    hashed.append(bytes.data() + off + kHeaderBytes, len);
    const integrity::digest_t d = integrity::digest(
        std::as_bytes(std::span<const char>(hashed.data(), hashed.size())));
    if (d != stored) return false;
    out.type = static_cast<RecordType>(type);
    out.job = job;
    out.payload.assign(bytes.data() + off + kHeaderBytes, len);
    frame_len = kHeaderBytes + len;
    return true;
}

std::vector<char> read_all(const std::filesystem::path& path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f.good()) return {};
    const std::streamsize n = f.tellg();
    f.seekg(0);
    std::vector<char> bytes(static_cast<std::size_t>(n));
    if (n > 0) f.read(bytes.data(), n);
    if (!f.good()) return {};
    return bytes;
}

/// Replay plus the byte length of the valid prefix and a torn-tail flag.
std::vector<Record> scan(const std::filesystem::path& path, std::size_t& valid_bytes,
                         std::size_t& dropped)
{
    std::vector<Record> records;
    valid_bytes = 0;
    dropped = 0;
    const std::vector<char> bytes = read_all(path);
    std::size_t off = 0;
    while (off < bytes.size()) {
        Record r;
        std::size_t len = 0;
        if (!parse_frame(bytes, off, r, len)) {
            dropped = 1;  // everything past here is unreachable
            break;
        }
        records.push_back(std::move(r));
        off += len;
    }
    valid_bytes = off;
    return records;
}

}  // namespace

const char* to_string(RecordType t)
{
    switch (t) {
        case RecordType::Submit: return "submit";
        case RecordType::Accept: return "accept";
        case RecordType::Reject: return "reject";
        case RecordType::Start: return "start";
        case RecordType::Done: return "done";
        case RecordType::Cancel: return "cancel";
        case RecordType::Shed: return "shed";
        case RecordType::Fail: return "fail";
    }
    return "unknown";
}

Journal::Journal(std::filesystem::path path, bool fsync_each)
    : path_(std::move(path)), fsync_each_(fsync_each)
{
    if (path_.has_parent_path()) std::filesystem::create_directories(path_.parent_path());
    std::size_t valid = 0;
    recovered_ = scan(path_, valid, truncated_);
    if (std::filesystem::exists(path_) &&
        static_cast<std::uint64_t>(std::filesystem::file_size(path_)) > valid)
        std::filesystem::resize_file(path_, valid);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    require(fd_ >= 0, "journal: cannot open for append: " + path_.string());
}

Journal::~Journal()
{
    if (fd_ >= 0) ::close(fd_);
}

void Journal::append(RecordType type, JobId job, std::string_view payload)
{
    faults::check(names::kSiteServeJournalAppend);
    std::string buf = frame(type, job, payload);
    // Chaos hook: a kind=corrupt plan flips bits in the frame on its way
    // to disk; the next recovery must reject (truncate) this record.
    faults::corrupt(names::kSiteServeJournalAppend,
                    std::as_writable_bytes(std::span<char>(buf.data(), buf.size())));
    MutexLock lk(m_);
    std::size_t done = 0;
    while (done < buf.size()) {
        const ssize_t n = ::write(fd_, buf.data() + done, buf.size() - done);
        require(n > 0, "journal: append write failed: " + path_.string());
        done += static_cast<std::size_t>(n);
    }
    if (fsync_each_) require(::fsync(fd_) == 0, "journal: fsync failed: " + path_.string());
}

std::vector<Record> Journal::replay(const std::filesystem::path& path)
{
    std::size_t valid = 0, dropped = 0;
    return scan(path, valid, dropped);
}

}  // namespace xct::serve
