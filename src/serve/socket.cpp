#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"

namespace xct::serve {

namespace {

[[noreturn]] void fail(const std::string& what)
{
    throw std::runtime_error("serve socket: " + what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::filesystem::path& path)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    const std::string s = path.string();
    if (s.size() + 1 > sizeof(addr.sun_path))
        throw std::runtime_error("serve socket: path too long: " + s);
    std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
    return addr;
}

/// Read until '\n' or EOF (the line terminator is stripped).  Bounded at
/// 16 MB so a rogue client cannot balloon the daemon.
bool read_line(int fd, std::string& out)
{
    out.clear();
    char c = 0;
    while (out.size() < (16u << 20)) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n == 0) return !out.empty();
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (c == '\n') return true;
        out.push_back(c);
    }
    return false;
}

bool write_all(int fd, const std::string& line)
{
    std::size_t done = 0;
    while (done < line.size()) {
        const ssize_t n = ::write(fd, line.data() + done, line.size() - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

UnixServer::UnixServer(std::filesystem::path path) : path_(std::move(path))
{
    if (path_.has_parent_path()) std::filesystem::create_directories(path_.parent_path());
    std::filesystem::remove(path_);  // stale socket from a killed daemon
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket");
    sockaddr_un addr = make_addr(path_);
    if (::bind(fd_, (const sockaddr*)&addr, sizeof(addr)) != 0) fail("bind " + path_.string());
    if (::listen(fd_, 64) != 0) fail("listen");
}

UnixServer::~UnixServer()
{
    if (fd_ >= 0) ::close(fd_);
    std::error_code ec;
    std::filesystem::remove(path_, ec);
}

void UnixServer::run(const Handler& handler, const std::atomic<bool>& stop)
{
    while (!stop.load(std::memory_order_acquire)) {
        pollfd p{};
        p.fd = fd_;
        p.events = POLLIN;
        const int r = ::poll(&p, 1, 100);
        if (r < 0) {
            if (errno == EINTR) continue;
            fail("poll");
        }
        if (r == 0 || (p.revents & POLLIN) == 0) continue;
        const int cfd = ::accept(fd_, nullptr, nullptr);
        if (cfd < 0) continue;  // client gone between poll and accept
        std::string line;
        if (read_line(cfd, line)) {
            std::string response;
            try {
                response = handler(line);
            } catch (const std::exception& e) {
                response = encode_error(e.what());
            }
            response.push_back('\n');
            write_all(cfd, response);
        }
        ::close(cfd);
    }
}

std::string unix_request(const std::filesystem::path& path, const std::string& line,
                         double timeout_s)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket");
    timeval tv{};
    tv.tv_sec = static_cast<long>(timeout_s);
    tv.tv_usec = static_cast<long>((timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_un addr = make_addr(path);
    if (::connect(fd, (const sockaddr*)&addr, sizeof(addr)) != 0) {
        ::close(fd);
        fail("connect " + path.string());
    }
    std::string out = line;
    out.push_back('\n');
    std::string response;
    const bool ok = write_all(fd, out) && read_line(fd, response);
    ::close(fd);
    if (!ok) throw std::runtime_error("serve socket: request failed on " + path.string());
    return response;
}

}  // namespace xct::serve
