#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/names.hpp"
#include "faults/fault.hpp"
#include "io/raw_io.hpp"
#include "phantom/shepp_logan.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace xct::serve {

namespace {

double unix_now()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

telemetry::Histogram& latency_histogram()
{
    return telemetry::registry().histogram(names::kMetricServeLatencySeconds,
                                           telemetry::exp_bounds(1e-3, 2.0, 24));
}

/// The spec's deterministic analytic source.  Radius inscribes the volume
/// so every geometry sees a phantom that fills its field of view.
std::unique_ptr<recon::ProjectionSource> make_source(const JobSpec& spec)
{
    const CbctGeometry& g = spec.geometry;
    const double radius_mm = 0.45 * static_cast<double>(g.vol.x) * g.dx;
    auto ellipsoids = spec.phantom_seed == 0
                          ? phantom::shepp_logan_3d(radius_mm)
                          : phantom::porous_bean(radius_mm, 8, spec.phantom_seed);
    return std::make_unique<recon::PhantomSource>(std::move(ellipsoids), g);
}

std::string accept_payload(std::uint64_t device_bytes, double predicted_s, double deadline_unix,
                           double submitted_unix)
{
    return "{\"device_bytes\":" + std::to_string(device_bytes) +
           ",\"predicted_s\":" + json_number(predicted_s) +
           ",\"deadline_unix\":" + json_number(deadline_unix) +
           ",\"submitted_unix\":" + json_number(submitted_unix) + "}";
}

}  // namespace

Engine::Engine(EngineConfig cfg) : cfg_(std::move(cfg))
{
    require(!cfg_.spool.empty(), "Engine: spool directory must be set");
    require(cfg_.workers > 0, "Engine: workers must be positive");
    require(cfg_.max_queued > 0, "Engine: max_queued must be positive");
    std::filesystem::create_directories(cfg_.spool / "out");
    std::filesystem::create_directories(cfg_.spool / "ckpt");
    journal_ = std::make_unique<Journal>(cfg_.spool / "journal.xjl", cfg_.fsync_journal);
    recover();
}

Engine::~Engine()
{
    stop();
}

void Engine::recover()
{
    auto& reg = telemetry::registry();
    MutexLock lk(m_);
    for (const Record& r : journal_->recovered()) {
        switch (r.type) {
            case RecordType::Submit: {
                Job j;
                try {
                    j.spec = decode_spec(Json::parse(r.payload));
                } catch (const std::invalid_argument&) {
                    break;  // unreadable spec: drop (journal predates format)
                }
                j.state = JobState::Queued;
                jobs_[r.job] = std::move(j);
                next_id_ = std::max(next_id_, r.job + 1);
                break;
            }
            case RecordType::Accept: {
                auto it = jobs_.find(r.job);
                if (it == jobs_.end()) break;
                try {
                    const Json p = Json::parse(r.payload);
                    it->second.device_bytes = static_cast<std::uint64_t>(
                        p.find("device_bytes") ? p.find("device_bytes")->number : 0.0);
                    it->second.predicted_s =
                        p.find("predicted_s") ? p.find("predicted_s")->number : 0.0;
                    it->second.deadline_unix =
                        p.find("deadline_unix") ? p.find("deadline_unix")->number : 0.0;
                    it->second.submitted_unix =
                        p.find("submitted_unix") ? p.find("submitted_unix")->number : 0.0;
                } catch (const std::invalid_argument&) {
                }
                break;
            }
            case RecordType::Reject:
            case RecordType::Shed:
            case RecordType::Fail: {
                auto it = jobs_.find(r.job);
                if (it == jobs_.end()) break;
                it->second.state = r.type == RecordType::Reject  ? JobState::Rejected
                                   : r.type == RecordType::Shed ? JobState::Shed
                                                                : JobState::Failed;
                it->second.reason = r.payload;
                break;
            }
            case RecordType::Start: {
                auto it = jobs_.find(r.job);
                if (it != jobs_.end()) it->second.state = JobState::Queued;  // requeue below
                break;
            }
            case RecordType::Done: {
                auto it = jobs_.find(r.job);
                if (it == jobs_.end()) break;
                it->second.state = JobState::Done;
                it->second.output = r.payload;
                break;
            }
            case RecordType::Cancel: {
                auto it = jobs_.find(r.job);
                if (it != jobs_.end()) it->second.state = JobState::Cancelled;
                break;
            }
        }
    }
    // Requeue everything the journal left non-terminal.  Jobs that died
    // between Submit and a verdict are re-priced through admission with
    // the same deterministic arithmetic the original submit used.
    for (auto& [id, j] : jobs_) {
        if (is_terminal(j.state)) continue;
        if (j.device_bytes == 0) {
            const Decision d = price(j.spec, cfg_.machine);
            if (!d.admitted) {
                j.state = JobState::Rejected;
                j.reason = d.reason;
                try {
                    journal_->append(RecordType::Reject, id, d.reason);
                } catch (const faults::TransientError&) {
                }
                continue;
            }
            j.device_bytes = d.device_bytes;
            j.predicted_s = d.predicted_s;
            if (j.spec.deadline_s > 0.0 && j.deadline_unix == 0.0)
                j.deadline_unix = unix_now() + j.spec.deadline_s;
        }
        j.state = JobState::Queued;
        queue_.push_back(id);
        ++recovered_;
    }
    if (recovered_ > 0)
        reg.counter(names::kMetricServeRecovered).add(static_cast<std::uint64_t>(recovered_));
}

void Engine::start()
{
    MutexLock lk(m_);
    require(workers_.empty(), "Engine: already started");
    stopping_ = false;
    for (index_t w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back([this] { worker_loop(); });
}

void Engine::stop()
{
    {
        MutexLock lk(m_);
        if (stopping_ && workers_.empty()) return;
        stopping_ = true;
        for (auto& [id, j] : jobs_)
            if (j.state == JobState::Running && j.session) j.session->cancel_token().request_cancel();
        work_cv_.notify_all();
        state_cv_.notify_all();
    }
    for (auto& t : workers_) t.join();
    workers_.clear();
}

SubmitResult Engine::submit(const JobSpec& spec)
{
    auto& reg = telemetry::registry();
    SubmitResult res;
    MutexLock lk(m_);
    reg.counter(names::kMetricServeSubmitted).add(1);
    res.id = next_id_++;
    if (stopping_) {
        res.reason = "stopping";
        res.detail = "engine is shutting down";
        reg.counter(names::kMetricServeRejected).add(1);
        reg.counter(std::string(names::kMetricServeRejectedPrefix) + res.reason).add(1);
        return res;
    }

    Job j;
    j.spec = spec;
    j.submitted_unix = unix_now();

    // Durable Submit first: a job the client saw accepted must exist in
    // the journal before any verdict does.
    try {
        journal_->append(RecordType::Submit, res.id, encode_spec(spec));
    } catch (const faults::TransientError& e) {
        res.reason = "fault";
        res.detail = e.what();
        j.state = JobState::Rejected;
        j.reason = res.reason;
        jobs_[res.id] = std::move(j);
        reg.counter(names::kMetricServeRejected).add(1);
        reg.counter(std::string(names::kMetricServeRejectedPrefix) + res.reason).add(1);
        return res;
    }

    Decision d = price(spec, cfg_.machine);
    if (d.admitted && queue_.size() >= static_cast<std::size_t>(cfg_.max_queued)) {
        // Bounded queue: try to make room by shedding expired work, then
        // reject rather than grow without bound.
        shed_expired_locked();
        if (queue_.size() >= static_cast<std::size_t>(cfg_.max_queued)) {
            d.admitted = false;
            d.reason = "queue_full";
            d.detail = "queue depth " + std::to_string(queue_.size()) + " at limit";
        }
    }
    if (d.admitted && d.device_bytes > cfg_.device_budget) {
        d.admitted = false;
        d.reason = "infeasible";
        d.detail = "requires " + std::to_string(d.device_bytes) +
                   " device bytes, daemon budget " + std::to_string(cfg_.device_budget);
    }

    res.reason = d.reason;
    res.detail = d.detail;
    res.predicted_s = d.predicted_s;
    j.device_bytes = d.device_bytes;
    j.predicted_s = d.predicted_s;
    j.reason = d.reason;

    if (!d.admitted) {
        j.state = JobState::Rejected;
        try {
            journal_->append(RecordType::Reject, res.id, d.reason);
        } catch (const faults::TransientError&) {
        }
        jobs_[res.id] = std::move(j);
        reg.counter(names::kMetricServeRejected).add(1);
        reg.counter(std::string(names::kMetricServeRejectedPrefix) + d.reason).add(1);
        state_cv_.notify_all();
        return res;
    }

    if (spec.deadline_s > 0.0) j.deadline_unix = j.submitted_unix + spec.deadline_s;
    try {
        journal_->append(RecordType::Accept, res.id,
                         accept_payload(d.device_bytes, d.predicted_s, j.deadline_unix,
                                        j.submitted_unix));
    } catch (const faults::TransientError& e) {
        res.reason = "fault";
        res.detail = e.what();
        j.state = JobState::Rejected;
        j.reason = res.reason;
        jobs_[res.id] = std::move(j);
        reg.counter(names::kMetricServeRejected).add(1);
        reg.counter(std::string(names::kMetricServeRejectedPrefix) + res.reason).add(1);
        return res;
    }

    res.accepted = true;
    j.state = JobState::Queued;
    jobs_[res.id] = std::move(j);
    queue_.push_back(res.id);
    reg.counter(names::kMetricServeAccepted).add(1);
    work_cv_.notify_one();
    state_cv_.notify_all();
    return res;
}

void Engine::shed_expired_locked()
{
    const double now = unix_now();
    std::vector<JobId> expired;
    for (const JobId id : queue_) {
        const Job& j = jobs_.at(id);
        if (j.deadline_unix > 0.0 && now > j.deadline_unix) expired.push_back(id);
    }
    if (expired.empty()) return;
    // Lowest priority first — the overload policy drops the cheapest
    // broken promises first (they are all broken; order is about which
    // tenant feels it first when only part of the backlog must go).
    std::stable_sort(expired.begin(), expired.end(), [&](JobId a, JobId b) {
        return jobs_.at(a).spec.priority < jobs_.at(b).spec.priority;
    });
    auto& reg = telemetry::registry();
    for (const JobId id : expired) {
        Job& j = jobs_.at(id);
        j.state = JobState::Shed;
        j.reason = "deadline expired in queue";
        queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
        try {
            journal_->append(RecordType::Shed, id, j.reason);
        } catch (const faults::TransientError&) {
        }
        reg.counter(names::kMetricServeShed).add(1);
    }
    state_cv_.notify_all();
}

JobId Engine::pick_locked() const
{
    JobId best = 0;
    std::size_t best_pos = 0;
    for (std::size_t pos = 0; pos < queue_.size(); ++pos) {
        const JobId id = queue_[pos];
        const Job& j = jobs_.at(id);
        if (j.device_bytes > cfg_.device_budget - device_used_) continue;
        if (best == 0) {
            best = id;
            best_pos = pos;
            continue;
        }
        const Job& b = jobs_.at(best);
        const double js = tenant_service_.count(j.spec.tenant)
                              ? tenant_service_.at(j.spec.tenant)
                              : 0.0;
        const double bs = tenant_service_.count(b.spec.tenant)
                              ? tenant_service_.at(b.spec.tenant)
                              : 0.0;
        // priority desc, then least-served tenant, then FIFO.
        const bool wins = j.spec.priority > b.spec.priority ||
                          (j.spec.priority == b.spec.priority &&
                           (js < bs || (js == bs && pos < best_pos)));
        if (wins) {
            best = id;
            best_pos = pos;
        }
    }
    return best;
}

void Engine::worker_loop()
{
    for (;;) {
        JobId id = 0;
        {
            UniqueLock lk(m_);
            for (;;) {
                m_.assert_held();
                if (stopping_) return;
                shed_expired_locked();
                id = pick_locked();
                if (id != 0) break;
                // Timed wait so queued deadlines are shed promptly even
                // with no submit/finish traffic to ring the condvar.
                work_cv_.wait_for(lk, std::chrono::milliseconds(50), [&] {
                    m_.assert_held();
                    return stopping_ || !queue_.empty();
                });
            }
            Job& j = jobs_.at(id);
            queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
            j.state = JobState::Running;
            device_used_ += j.device_bytes;
            ++running_;
            tenant_service_[j.spec.tenant] += j.predicted_s;

            recon::RankConfig rc;
            rc.geometry = j.spec.geometry;
            rc.batches = j.spec.batches;
            rc.device_capacity = j.spec.device_capacity;
            rc.threaded = true;
            rc.checkpoint = recon::CheckpointConfig{ckpt_dir(id)};
            if (j.deadline_unix > 0.0)
                rc.watchdog_timeout_s = std::max(j.deadline_unix - unix_now(), 1e-3);
            bool started = false;
            try {
                j.session = std::make_shared<recon::ReconSession>(rc, make_source(j.spec));
                j.total_slabs = j.session->total_slabs();
                started = true;
            } catch (const std::exception& e) {
                // Session setup failed after admission (should not happen
                // for a priced spec) — fail the job, give the budget back.
                device_used_ -= j.device_bytes;
                --running_;
                j.state = JobState::Failed;
                j.reason = e.what();
                try {
                    journal_->append(RecordType::Fail, id, j.reason);
                } catch (const faults::TransientError&) {
                }
                telemetry::registry().counter(names::kMetricServeFailed).add(1);
            }
            if (started) {
                if (j.user_cancel || stopping_) j.session->cancel_token().request_cancel();
                try {
                    journal_->append(RecordType::Start, id, "");
                } catch (const faults::TransientError&) {
                }
            }
            state_cv_.notify_all();
            if (!started) continue;
        }
        run_job(id);
    }
}

void Engine::run_job(JobId id)
{
    std::shared_ptr<recon::ReconSession> session;
    std::filesystem::path out;
    double submitted = 0.0;
    {
        MutexLock lk(m_);
        Job& j = jobs_.at(id);
        session = j.session;
        out = out_path(id, j.spec);
        submitted = j.submitted_unix;
    }
    try {
        recon::FdkResult result = session->run();
        io::write_volume(out, result.volume);  // atomic: temp + rename
        std::error_code ec;
        std::filesystem::remove_all(ckpt_dir(id), ec);
        try {
            journal_->append(RecordType::Done, id, out.string());
        } catch (const faults::TransientError&) {
            // Not durable: restart reruns the job; deterministic specs
            // regenerate the identical volume, so convergence is safe.
        }
        {
            MutexLock lk(m_);
            Job& j = jobs_.at(id);
            j.output = out.string();
        }
        finish(id, JobState::Done, "");
        telemetry::registry().counter(names::kMetricServeCompleted).add(1);
        latency_histogram().observe(unix_now() - submitted);
    } catch (const core::Cancelled& e) {
        bool user = false;
        {
            MutexLock lk(m_);
            user = jobs_.at(id).user_cancel;
        }
        if (user) {
            try {
                journal_->append(RecordType::Cancel, id, "");
            } catch (const faults::TransientError&) {
            }
            finish(id, JobState::Cancelled, e.what());
            telemetry::registry().counter(names::kMetricServeCancelled).add(1);
        } else {
            // Engine shutdown: leave the job non-terminal (journal holds
            // Start but no verdict) so the next engine over this spool
            // requeues it from its checkpoints — same path as kill -9.
            finish(id, JobState::Queued, "interrupted by shutdown");
        }
    } catch (const std::exception& e) {
        try {
            journal_->append(RecordType::Fail, id, e.what());
        } catch (const faults::TransientError&) {
        }
        finish(id, JobState::Failed, e.what());
        telemetry::registry().counter(names::kMetricServeFailed).add(1);
        latency_histogram().observe(unix_now() - submitted);
    }
}

void Engine::finish(JobId id, JobState state, const std::string& reason)
{
    MutexLock lk(m_);
    Job& j = jobs_.at(id);
    device_used_ -= j.device_bytes;
    --running_;
    j.state = state;
    j.reason = reason;
    if (j.session) {
        j.completed_slabs = j.session->completed_slabs();
        j.total_slabs = j.session->total_slabs();
    }
    j.session.reset();
    work_cv_.notify_all();
    state_cv_.notify_all();
}

JobStatus Engine::status_locked(const Job& j, JobId id) const
{
    JobStatus st;
    st.id = id;
    st.state = j.state;
    st.tenant = j.spec.tenant;
    st.priority = j.spec.priority;
    st.reason = j.reason;
    st.predicted_s = j.predicted_s;
    st.device_bytes = j.device_bytes;
    st.output = j.output;
    st.total_slabs = j.total_slabs;
    st.completed_slabs = j.completed_slabs;
    if (j.session) {
        st.total_slabs = j.session->total_slabs();
        st.completed_slabs = j.session->completed_slabs();
        st.progress = j.session->progress();
    } else if (j.state == JobState::Done) {
        st.progress = 1.0;
        st.completed_slabs = st.total_slabs;
    } else if (st.total_slabs > 0) {
        st.progress = static_cast<double>(st.completed_slabs) /
                      static_cast<double>(st.total_slabs);
    }
    return st;
}

JobStatus Engine::status(JobId id) const
{
    MutexLock lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw std::out_of_range("serve: unknown job id " + std::to_string(id));
    return status_locked(it->second, id);
}

std::vector<JobStatus> Engine::list() const
{
    MutexLock lk(m_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto& [id, j] : jobs_) out.push_back(status_locked(j, id));
    return out;
}

bool Engine::cancel(JobId id)
{
    auto& reg = telemetry::registry();
    MutexLock lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw std::out_of_range("serve: unknown job id " + std::to_string(id));
    Job& j = it->second;
    if (is_terminal(j.state)) return false;
    j.user_cancel = true;
    if (j.state == JobState::Queued) {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
        j.state = JobState::Cancelled;
        j.reason = "cancelled while queued";
        try {
            journal_->append(RecordType::Cancel, id, "");
        } catch (const faults::TransientError&) {
        }
        reg.counter(names::kMetricServeCancelled).add(1);
        state_cv_.notify_all();
        return true;
    }
    // Running: poke the token; the pipeline polls it at every stage
    // boundary, so the worker unwinds (and releases the device budget)
    // within one stage.
    if (j.session) j.session->cancel_token().request_cancel();
    return true;
}

JobStatus Engine::wait(JobId id, double timeout_s)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(std::max(timeout_s, 0.0)));
    UniqueLock lk(m_);
    for (;;) {
        m_.assert_held();
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            throw std::out_of_range("serve: unknown job id " + std::to_string(id));
        if (is_terminal(it->second.state)) return status_locked(it->second, id);
        if (std::chrono::steady_clock::now() >= deadline) return status_locked(it->second, id);
        state_cv_.wait_for(lk, std::chrono::milliseconds(20), [&] {
            m_.assert_held();
            auto i2 = jobs_.find(id);
            return i2 == jobs_.end() || is_terminal(i2->second.state);
        });
    }
}

void Engine::drain()
{
    UniqueLock lk(m_);
    for (;;) {
        m_.assert_held();
        if ((queue_.empty() && running_ == 0) || stopping_) return;
        state_cv_.wait_for(lk, std::chrono::milliseconds(20), [&] {
            m_.assert_held();
            return stopping_ || (queue_.empty() && running_ == 0);
        });
    }
}

std::filesystem::path Engine::out_path(JobId id, const JobSpec& spec) const
{
    if (!spec.output.empty()) return spec.output;
    return cfg_.spool / "out" / ("job-" + std::to_string(id) + ".vol");
}

std::filesystem::path Engine::ckpt_dir(JobId id) const
{
    return cfg_.spool / "ckpt" / ("job-" + std::to_string(id));
}

}  // namespace xct::serve
