#include "backproj/kernel.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/check.hpp"
#include "core/scratch.hpp"
#include "core/simd.hpp"

namespace xct::backproj {

MatrixPack::MatrixPack(std::span<const Mat34> mats)
    : fm_(mats.size()), dm_(mats.begin(), mats.end())
{
    for (std::size_t s = 0; s < mats.size(); ++s) {
        const Mat34& m = mats[s];
        fm_[s] = {static_cast<float>(m[0].x), static_cast<float>(m[0].y),
                  static_cast<float>(m[0].z), static_cast<float>(m[0].w),
                  static_cast<float>(m[1].x), static_cast<float>(m[1].y),
                  static_cast<float>(m[1].z), static_cast<float>(m[1].w),
                  static_cast<float>(m[2].x), static_cast<float>(m[2].y),
                  static_cast<float>(m[2].z), static_cast<float>(m[2].w)};
    }
}

namespace {

/// Listing 1 devSubPixel: manual single-precision bilinear interpolation
/// over four integer texture fetches.  `x` is the detector column, `yrel`
/// the detector row relative to the streaming origin (texture wraps it),
/// `s` the view.  Templated over the texture type so the scalar fp32 and
/// the 8-bit-quantised paths share one implementation.
template <typename Tex>
inline float dev_sub_pixel(const Tex& tex, float x, float yrel, index_t s)
{
    const float fx = std::floor(x);
    const float fy = std::floor(yrel);
    const float du = x - fx;
    const float dv = yrel - fy;
    const index_t iu = static_cast<index_t>(fx);
    const index_t iv = static_cast<index_t>(fy);
    const float v0 = tex.fetch(iu, s, iv);
    const float v1 = tex.fetch(iu + 1, s, iv);
    const float v2 = tex.fetch(iu, s, iv + 1);
    const float v3 = tex.fetch(iu + 1, s, iv + 1);
    return (v0 * (1.0f - du) + v1 * du) * (1.0f - dv) + (v2 * (1.0f - du) + v3 * du) * dv;
}

/// The original Listing-1 loop: voxel-major, full 4-term dot products per
/// (voxel, view), checked fetches.  Retained as the in-build reference for
/// the vectorised kernel and as the q8 ablation path.
template <typename Tex>
void bp_scalar_impl(const Tex& tex, const MatrixPack& pack, Volume& vol, const StreamOffsets& off,
                    index_t nu, index_t nv)
{
    require(pack.views() == tex.height(),
            "backproject_streaming: texture height must equal the view count");
    require(tex.width() == nu, "backproject_streaming: texture width must equal Nu");
    const Dim3 d = vol.size();
    const index_t views = pack.views();
    const float proj_y0 = static_cast<float>(off.proj_y);

#pragma omp parallel for collapse(2) schedule(static)
    for (index_t k = 0; k < d.z; ++k) {
        for (index_t j = 0; j < d.y; ++j) {
            const float kk = static_cast<float>(k + off.volume_z);  // offset K (Listing 1 line 9)
            const float jj = static_cast<float>(j);
            for (index_t i = 0; i < d.x; ++i) {
                const float ii = static_cast<float>(i);
                float sum = 0.0f;
                for (index_t s = 0; s < views; ++s) {
                    const auto& m = pack.fmat(s);
                    // Eq. 8 (Listing 1 lines 12-14).
                    const float z = m[8] * ii + m[9] * jj + m[10] * kk + m[11];
                    if (z <= 0.0f) continue;
                    const float x = (m[0] * ii + m[1] * jj + m[2] * kk + m[3]) / z;
                    const float y = (m[4] * ii + m[5] * jj + m[6] * kk + m[7]) / z;
                    if (x < 0.0f || x > static_cast<float>(nu - 1) || y < 0.0f ||
                        y > static_cast<float>(nv - 1))
                        continue;
                    const float yrel = y - proj_y0;  // offset Y (Listing 1 line 15)
                    sum += 1.0f / (z * z) * dev_sub_pixel(tex, x, yrel, s);
                }
                vol.at(i, j, k) += sum;  // one volume write per voxel (line 19)
            }
        }
    }
}

/// The vectorised incremental-walk kernel (the production path).
///
/// Loop structure: view-major over each voxel row; x/y/z are affine in i,
/// so each lane evaluates fma(i, step, row_constant) — the row constants
/// are hoisted per (view, row) and computed in double so the walk starts
/// exact (matching the seed incremental variant).  The inner loop runs
/// simd::kLanes voxels at a time:
///
///   * lane masks: zn > 0 and the detector bounds test combine into one
///     blend mask; zn is sanitised to 1 on masked lanes so the divisions
///     never produce inf/NaN that could leak through the blend;
///   * fused bilinear gather: coordinates are clamped (CUDA "clamp"
///     address mode on u), floor/fraction split, and the four texel reads
///     become gathers off a flat base = zrow[t] + s*width + iu, where
///     zrow[] pre-resolves the circular depth wrap for every global
///     detector row t = floor(y) (and t+1) — replacing two mod operations
///     per sample with one int gather;
///   * the row accumulator comes from the per-thread scratch pool and is
///     flushed to the volume once per row (checked writes).
///
/// Indices fit int32 by the texture-size require below; gathers are always
/// in-range because the clamps run before index arithmetic, independent of
/// the validity mask.
void bp_vectorised(const sim::Texture3& tex, const MatrixPack& pack, Volume& vol,
                   const StreamOffsets& off, index_t nu, index_t nv)
{
    require(pack.views() == tex.height(),
            "backproject_streaming: texture height must equal the view count");
    require(tex.width() == nu, "backproject_streaming: texture width must equal Nu");
    const Dim3 d = vol.size();
    const index_t views = pack.views();
    const index_t width = tex.width();
    const index_t height = tex.height();
    const index_t depth = tex.depth();
    require(depth * height * width <
                static_cast<index_t>(std::numeric_limits<std::int32_t>::max()),
            "backproject_streaming: texture too large for int32 gather indices");
    const float* texel = tex.device_span().data();
    const float x_hi = static_cast<float>(nu - 1);
    const float y_hi = static_cast<float>(nv - 1);
    constexpr index_t W = simd::kLanes;

    // Circular-row offset table: global detector row t -> flat offset of
    // its texture plane, zrow[t] = ((t - proj_y) mod depth)*height*width.
    // After clamping y to [0, y_hi], t = floor(y) is in [0, nv-1] and the
    // bilinear partner row t+1 is in [1, nv] — table size nv + 1.
    scratch::Buffer<std::int32_t> zrow_lease(static_cast<std::size_t>(nv + 1));
    std::int32_t* zrow = zrow_lease.data();
    for (index_t t = 0; t <= nv; ++t) {
        index_t zz = (t - off.proj_y) % depth;
        if (zz < 0) zz += depth;
        zrow[t] = static_cast<std::int32_t>(zz * height * width);
    }

    const simd::VecF viota = simd::iota();
    const simd::VecF vzero = simd::splat(0.0f);
    const simd::VecF vone = simd::splat(1.0f);
    const simd::VecF vxhi = simd::splat(x_hi);
    const simd::VecF vyhi = simd::splat(y_hi);
    const simd::VecI vone_i = simd::splat_i(1);

#pragma omp parallel for collapse(2) schedule(static)
    for (index_t k = 0; k < d.z; ++k) {
        for (index_t j = 0; j < d.y; ++j) {
            const double kk = static_cast<double>(k + off.volume_z);
            const double jj = static_cast<double>(j);
            scratch::Buffer<float> acc_lease(static_cast<std::size_t>(d.x));
            float* acc = acc_lease.data();
            for (index_t i = 0; i < d.x; ++i) acc[i] = 0.0f;
            for (index_t s = 0; s < views; ++s) {
                const Mat34& m = pack.dmat(s);
                const auto& f = pack.fmat(s);
                // Row constants at i = 0 (double precision so the affine
                // walk starts exact — same contract as the seed
                // incremental variant).
                const float xn0 = static_cast<float>(m[0].y * jj + m[0].z * kk + m[0].w);
                const float yn0 = static_cast<float>(m[1].y * jj + m[1].z * kk + m[1].w);
                const float zn0 = static_cast<float>(m[2].y * jj + m[2].z * kk + m[2].w);
                const float dxn = f[0];
                const float dyn = f[4];
                const float dzn = f[8];

                const simd::VecF vxn0 = simd::splat(xn0);
                const simd::VecF vyn0 = simd::splat(yn0);
                const simd::VecF vzn0 = simd::splat(zn0);
                const simd::VecF vdxn = simd::splat(dxn);
                const simd::VecF vdyn = simd::splat(dyn);
                const simd::VecF vdzn = simd::splat(dzn);
                const simd::VecI vsrow = simd::splat_i(static_cast<std::int32_t>(s * width));

                index_t i = 0;
                for (; i + W <= d.x; i += W) {
                    const simd::VecF ii = simd::splat(static_cast<float>(i)) + viota;
                    const simd::VecF zn = simd::fmadd(ii, vdzn, vzn0);
                    const simd::Mask zpos = simd::cmp_gt(zn, vzero);
                    const simd::VecF zn_safe = simd::blend(zpos, zn, vone);
                    const simd::VecF x = simd::fmadd(ii, vdxn, vxn0) / zn_safe;
                    const simd::VecF y = simd::fmadd(ii, vdyn, vyn0) / zn_safe;
                    const simd::Mask ok = zpos & simd::cmp_ge(x, vzero) & simd::cmp_le(x, vxhi) &
                                          simd::cmp_ge(y, vzero) & simd::cmp_le(y, vyhi);
                    if (simd::none(ok)) continue;
                    const simd::VecF xc = simd::clamp(x, vzero, vxhi);
                    const simd::VecF yc = simd::clamp(y, vzero, vyhi);
                    const simd::VecF fx = simd::floor_(xc);
                    const simd::VecF fy = simd::floor_(yc);
                    const simd::VecF du = xc - fx;
                    const simd::VecF dv = yc - fy;
                    const simd::VecI iu0 = simd::to_int(fx);
                    const simd::VecI iu1 = simd::to_int(simd::min_(fx + vone, vxhi));
                    const simd::VecI t0 = simd::to_int(fy);
                    const simd::VecI t1 = t0 + vone_i;
                    const simd::VecI z0 = simd::gather_i(zrow, t0) + vsrow;
                    const simd::VecI z1 = simd::gather_i(zrow, t1) + vsrow;
                    const simd::VecF f00 = simd::gather(texel, z0 + iu0);
                    const simd::VecF f01 = simd::gather(texel, z0 + iu1);
                    const simd::VecF f10 = simd::gather(texel, z1 + iu0);
                    const simd::VecF f11 = simd::gather(texel, z1 + iu1);
                    const simd::VecF one_du = vone - du;
                    const simd::VecF one_dv = vone - dv;
                    const simd::VecF bil = (f00 * one_du + f01 * du) * one_dv +
                                           (f10 * one_du + f11 * du) * dv;
                    const simd::VecF wgt = vone / (zn_safe * zn_safe);
                    const simd::VecF contrib = simd::blend(ok, wgt * bil, vzero);
                    simd::store(acc + i, simd::load(acc + i) + contrib);
                }
                // Scalar tail (d.x % kLanes voxels), same affine walk.
                for (; i < d.x; ++i) {
                    const float fi = static_cast<float>(i);
                    const float zn = fi * dzn + zn0;
                    if (zn <= 0.0f) continue;
                    const float x = (fi * dxn + xn0) / zn;
                    const float y = (fi * dyn + yn0) / zn;
                    if (x < 0.0f || x > x_hi || y < 0.0f || y > y_hi) continue;
                    acc[i] += 1.0f / (zn * zn) *
                              dev_sub_pixel(tex, x, y - static_cast<float>(off.proj_y), s);
                }
            }
            for (index_t i = 0; i < d.x; ++i) vol.at(i, j, k) += acc[i];
        }
    }
}

}  // namespace

void backproject_streaming(const sim::Texture3& tex, const MatrixPack& pack, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_vectorised(tex, pack, vol, off, nu, nv);
}

void backproject_streaming(const sim::Texture3& tex, std::span<const Mat34> mats, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv)
{
    backproject_streaming(tex, MatrixPack(mats), vol, off, nu, nv);
}

void backproject_streaming_scalar(const sim::Texture3& tex, const MatrixPack& pack, Volume& vol,
                                  const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_scalar_impl(tex, pack, vol, off, nu, nv);
}

void backproject_streaming_scalar(const sim::Texture3& tex, std::span<const Mat34> mats,
                                  Volume& vol, const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_scalar_impl(tex, MatrixPack(mats), vol, off, nu, nv);
}

void backproject_streaming_q8(const sim::QuantizedTexture3& tex, const MatrixPack& pack,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_scalar_impl(tex, pack, vol, off, nu, nv);
}

void backproject_streaming_q8(const sim::QuantizedTexture3& tex, std::span<const Mat34> mats,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_scalar_impl(tex, MatrixPack(mats), vol, off, nu, nv);
}

void backproject_streaming_incremental(const sim::Texture3& tex, std::span<const Mat34> mats,
                                       Volume& vol, const StreamOffsets& off, index_t nu,
                                       index_t nv)
{
    backproject_streaming(tex, mats, vol, off, nu, nv);
}

}  // namespace xct::backproj
