#include "backproj/kernel.hpp"

#include <cmath>

#include "core/check.hpp"

namespace xct::backproj {

namespace {

/// Listing 1 devSubPixel: manual single-precision bilinear interpolation
/// over four integer texture fetches.  `x` is the detector column, `yrel`
/// the detector row relative to the streaming origin (texture wraps it),
/// `s` the view.  Templated over the texture type so the fp32 and the
/// 8-bit-quantised paths share one implementation.
template <typename Tex>
inline float dev_sub_pixel(const Tex& tex, float x, float yrel, index_t s)
{
    const float fx = std::floor(x);
    const float fy = std::floor(yrel);
    const float du = x - fx;
    const float dv = yrel - fy;
    const index_t iu = static_cast<index_t>(fx);
    const index_t iv = static_cast<index_t>(fy);
    const float v0 = tex.fetch(iu, s, iv);
    const float v1 = tex.fetch(iu + 1, s, iv);
    const float v2 = tex.fetch(iu, s, iv + 1);
    const float v3 = tex.fetch(iu + 1, s, iv + 1);
    return (v0 * (1.0f - du) + v1 * du) * (1.0f - dv) + (v2 * (1.0f - du) + v3 * du) * dv;
}

template <typename Tex>
void bp_impl(const Tex& tex, std::span<const Mat34> mats, Volume& vol, const StreamOffsets& off,
             index_t nu, index_t nv)
{
    require(static_cast<index_t>(mats.size()) == tex.height(),
            "backproject_streaming: texture height must equal the view count");
    require(tex.width() == nu, "backproject_streaming: texture width must equal Nu");
    const Dim3 d = vol.size();
    const index_t views = static_cast<index_t>(mats.size());

    // Pre-convert the matrices to float once (the CUDA kernel reads float4
    // rows via __ldg).
    std::vector<std::array<float, 12>> fm(static_cast<std::size_t>(views));
    for (index_t s = 0; s < views; ++s) {
        const Mat34& m = mats[static_cast<std::size_t>(s)];
        fm[static_cast<std::size_t>(s)] = {
            static_cast<float>(m[0].x), static_cast<float>(m[0].y), static_cast<float>(m[0].z),
            static_cast<float>(m[0].w), static_cast<float>(m[1].x), static_cast<float>(m[1].y),
            static_cast<float>(m[1].z), static_cast<float>(m[1].w), static_cast<float>(m[2].x),
            static_cast<float>(m[2].y), static_cast<float>(m[2].z), static_cast<float>(m[2].w)};
    }

    const float proj_y0 = static_cast<float>(off.proj_y);

#pragma omp parallel for collapse(2) schedule(static)
    for (index_t k = 0; k < d.z; ++k) {
        for (index_t j = 0; j < d.y; ++j) {
            const float kk = static_cast<float>(k + off.volume_z);  // offset K (Listing 1 line 9)
            const float jj = static_cast<float>(j);
            for (index_t i = 0; i < d.x; ++i) {
                const float ii = static_cast<float>(i);
                float sum = 0.0f;
                for (index_t s = 0; s < views; ++s) {
                    const auto& m = fm[static_cast<std::size_t>(s)];
                    // Eq. 8 (Listing 1 lines 12-14).
                    const float z = m[8] * ii + m[9] * jj + m[10] * kk + m[11];
                    if (z <= 0.0f) continue;
                    const float x = (m[0] * ii + m[1] * jj + m[2] * kk + m[3]) / z;
                    const float y = (m[4] * ii + m[5] * jj + m[6] * kk + m[7]) / z;
                    if (x < 0.0f || x > static_cast<float>(nu - 1) || y < 0.0f ||
                        y > static_cast<float>(nv - 1))
                        continue;
                    const float yrel = y - proj_y0;  // offset Y (Listing 1 line 15)
                    sum += 1.0f / (z * z) * dev_sub_pixel(tex, x, yrel, s);
                }
                vol.at(i, j, k) += sum;  // one volume write per voxel (line 19)
            }
        }
    }
}

}  // namespace

void backproject_streaming(const sim::Texture3& tex, std::span<const Mat34> mats, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_impl(tex, mats, vol, off, nu, nv);
}

void backproject_streaming_q8(const sim::QuantizedTexture3& tex, std::span<const Mat34> mats,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv)
{
    bp_impl(tex, mats, vol, off, nu, nv);
}

void backproject_streaming_incremental(const sim::Texture3& tex, std::span<const Mat34> mats,
                                       Volume& vol, const StreamOffsets& off, index_t nu,
                                       index_t nv)
{
    require(static_cast<index_t>(mats.size()) == tex.height(),
            "backproject_streaming_incremental: texture height must equal the view count");
    require(tex.width() == nu, "backproject_streaming_incremental: texture width must equal Nu");
    const Dim3 d = vol.size();
    const index_t views = static_cast<index_t>(mats.size());
    const float proj_y0 = static_cast<float>(off.proj_y);
    const float x_hi = static_cast<float>(nu - 1);
    const float y_hi = static_cast<float>(nv - 1);

#pragma omp parallel for collapse(2) schedule(static)
    for (index_t k = 0; k < d.z; ++k) {
        for (index_t j = 0; j < d.y; ++j) {
            const double kk = static_cast<double>(k + off.volume_z);
            const double jj = static_cast<double>(j);
            // Row accumulator behind CheckedSpan: the incremental walk
            // derives i from pointer bumps, so an off-by-one would write a
            // neighbouring row silently — under XCT_BOUNDS_CHECK it aborts.
            std::vector<float> acc_store(static_cast<std::size_t>(d.x), 0.0f);
            const CheckedSpan<float> acc(acc_store.data(), d.x);
            for (index_t s = 0; s < views; ++s) {
                const Mat34& m = mats[static_cast<std::size_t>(s)];
                // Row constants at i = 0 (double precision so the
                // incremental walk starts exact).
                float xn = static_cast<float>(m[0].y * jj + m[0].z * kk + m[0].w);
                float yn = static_cast<float>(m[1].y * jj + m[1].z * kk + m[1].w);
                float zn = static_cast<float>(m[2].y * jj + m[2].z * kk + m[2].w);
                const float dxn = static_cast<float>(m[0].x);
                const float dyn = static_cast<float>(m[1].x);
                const float dzn = static_cast<float>(m[2].x);
                for (index_t i = 0; i < d.x; ++i, xn += dxn, yn += dyn, zn += dzn) {
                    if (zn <= 0.0f) continue;
                    const float x = xn / zn;
                    const float y = yn / zn;
                    if (x < 0.0f || x > x_hi || y < 0.0f || y > y_hi) continue;
                    acc[i] += 1.0f / (zn * zn) * dev_sub_pixel(tex, x, y - proj_y0, s);
                }
            }
            for (index_t i = 0; i < d.x; ++i) vol.at(i, j, k) += acc[i];
        }
    }
}

}  // namespace xct::backproj
