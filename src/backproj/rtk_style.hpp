#pragma once
// Classical (RTK/iFDK-style) back-projector used as the performance and
// capability baseline (Table 5, Fig. 12).
//
// It follows the conventional cone-beam recipe the paper contrasts with
// (Sec. 4.3 "Conventional approaches"):
//   * the *entire* output volume must be resident on the device — a
//     DeviceOutOfMemory escape reproduces the "✗" cells of Table 5 (RTK
//     cannot generate volumes beyond ~8 GB on a 16 GB V100);
//   * projections are uploaded in view batches of full detector frames
//     (no Nv split — the Table 2 "input lower bound O(Nu x Nv)" row);
//   * each batch updates every voxel (2D-layered-texture style).

#include <span>

#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "sim/device.hpp"

namespace xct::backproj {

/// Back-project the full stack into `vol` through device `dev`, keeping the
/// whole volume device-resident and streaming projections in batches of
/// `batch_views` full frames.  Throws sim::DeviceOutOfMemory when the
/// volume (plus one batch) does not fit — the baseline's capability limit.
void backproject_rtk_style(sim::Device& dev, const ProjectionStack& p, std::span<const Mat34> mats,
                           const CbctGeometry& g, Volume& vol, index_t batch_views);

}  // namespace xct::backproj
