#pragma once
// Verbatim port of Algorithm 1 (the RTK-derived 3D back-projection loop
// with the SubPixel bilinear interpolation function).  This is the
// numerical ground truth every optimised kernel is validated against
// (the paper's own 1e-5 acceptance threshold, Sec. 6.1).

#include <span>

#include "core/geometry.hpp"
#include "core/volume.hpp"

namespace xct::backproj {

/// Bilinear sample of one projection row-pair (the SubPixel function of
/// Algorithm 1), with row indices clamped to the stack's resident band and
/// column indices clamped to [0, cols).  `x`/`y` are detector coordinates
/// at sub-pixel precision, `y` global.
float sub_pixel(const ProjectionStack& p, index_t s, float x, float y);

/// Algorithm 1: accumulate the back-projection of every view of `p`
/// (matrices `mats`, one per view) into `vol`.
///
/// `vol` may be a slab of the full reconstruction: `vol_z_offset` is the
/// global z index of its first slice (matrices are always built for the
/// full volume, so voxel coordinates must be global).  `nu`/`nv` are the
/// full detector dimensions used for the off-detector bounds test; voxels
/// projecting outside [0, Nu-1] x [0, Nv-1] receive no contribution.
void backproject_reference(const ProjectionStack& p, std::span<const Mat34> mats, Volume& vol,
                           index_t vol_z_offset, index_t nu, index_t nv);

/// Convenience overload for full-volume, full-detector reconstruction.
void backproject_reference(const ProjectionStack& p, std::span<const Mat34> mats,
                           const CbctGeometry& g, Volume& vol);

}  // namespace xct::backproj
