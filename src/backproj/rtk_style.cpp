#include "backproj/rtk_style.hpp"

#include <algorithm>
#include <cmath>

namespace xct::backproj {

namespace {

inline float tex_bilinear(const sim::Texture3& tex, float x, float y, index_t s)
{
    const float fx = std::floor(x);
    const float fy = std::floor(y);
    const float du = x - fx;
    const float dv = y - fy;
    const index_t iu = static_cast<index_t>(fx);
    const index_t iv = static_cast<index_t>(fy);
    // Layout here: x = column, y = view, z = detector row (full detector, no
    // circular reuse — depth equals Nv so the mod is the identity).
    const float v0 = tex.fetch(iu, s, iv);
    const float v1 = tex.fetch(iu + 1, s, iv);
    const float v2 = tex.fetch(iu, s, iv + 1);
    const float v3 = tex.fetch(iu + 1, s, iv + 1);
    return (v0 * (1.0f - du) + v1 * du) * (1.0f - dv) + (v2 * (1.0f - du) + v3 * du) * dv;
}

}  // namespace

void backproject_rtk_style(sim::Device& dev, const ProjectionStack& p, std::span<const Mat34> mats,
                           const CbctGeometry& g, Volume& vol, index_t batch_views)
{
    require(static_cast<index_t>(mats.size()) == p.views(),
            "backproject_rtk_style: one matrix per view required");
    require(p.row_begin() == 0 && p.rows() == g.nv,
            "backproject_rtk_style: baseline needs full detector frames");
    require(batch_views > 0, "backproject_rtk_style: batch_views must be positive");
    require(vol.size() == g.vol, "backproject_rtk_style: volume size mismatch");

    // Whole volume resident on the device — the baseline's defining
    // constraint.  Throws DeviceOutOfMemory if it does not fit.
    sim::DeviceBuffer dvol(dev, vol.count());
    dvol.fill(0.0f);

    const Dim3 d = vol.size();
    for (index_t s0 = 0; s0 < p.views(); s0 += batch_views) {
        const index_t nb = std::min(batch_views, p.views() - s0);
        // One batch of full frames, uploaded as a (depth = Nv) texture.
        sim::Texture3 tex(dev, g.nu, nb, g.nv);
        std::vector<float> plane(static_cast<std::size_t>(g.nu * nb));
        for (index_t v = 0; v < g.nv; ++v) {
            for (index_t b = 0; b < nb; ++b) {
                const auto row = p.row(s0 + b, v);
                std::copy(row.begin(), row.end(),
                          plane.begin() + static_cast<std::ptrdiff_t>(b * g.nu));
            }
            tex.copy_planes(plane, v, 1);
        }

        std::span<float> acc = dvol.device_span();
#pragma omp parallel for collapse(2) schedule(static)
        for (index_t k = 0; k < d.z; ++k) {
            for (index_t j = 0; j < d.y; ++j) {
                const float kk = static_cast<float>(k);
                const float jj = static_cast<float>(j);
                for (index_t i = 0; i < d.x; ++i) {
                    const float ii = static_cast<float>(i);
                    float sum = 0.0f;
                    for (index_t b = 0; b < nb; ++b) {
                        const Mat34& m = mats[static_cast<std::size_t>(s0 + b)];
                        const float z = static_cast<float>(m[2].x) * ii +
                                        static_cast<float>(m[2].y) * jj +
                                        static_cast<float>(m[2].z) * kk + static_cast<float>(m[2].w);
                        if (z <= 0.0f) continue;
                        const float x = (static_cast<float>(m[0].x) * ii +
                                         static_cast<float>(m[0].y) * jj +
                                         static_cast<float>(m[0].z) * kk +
                                         static_cast<float>(m[0].w)) /
                                        z;
                        const float y = (static_cast<float>(m[1].x) * ii +
                                         static_cast<float>(m[1].y) * jj +
                                         static_cast<float>(m[1].z) * kk +
                                         static_cast<float>(m[1].w)) /
                                        z;
                        if (x < 0.0f || x > static_cast<float>(g.nu - 1) || y < 0.0f ||
                            y > static_cast<float>(g.nv - 1))
                            continue;
                        sum += 1.0f / (z * z) * tex_bilinear(tex, x, y, b);
                    }
                    acc[static_cast<std::size_t>((k * d.y + j) * d.x + i)] += sum;
                }
            }
        }
    }

    dvol.download(vol.span());
}

}  // namespace xct::backproj
