#pragma once
// The paper's streaming back-projection kernel (Listing 1), ported from
// CUDA onto the simulated device.
//
// Differences from the classical kernel that enable decomposition +
// out-of-core operation (Sec. 4.3):
//   * the volume is addressed with a global slice offset (offset_volume_z);
//   * projections live in a 3D texture whose *depth* axis is the detector
//     row dimension, addressed circularly (row - offset_proj_y, then
//     mod depth inside the texture) so row bands stream through a fixed
//     device allocation and the overlap between consecutive slabs is
//     reused without re-upload;
//   * every view updates a register accumulator and the volume is written
//     once per voxel, minimising device-memory traffic.
//
// Texture axis mapping (matches Listing 1's devPixel call):
//   x = detector column u, y = view index s, z = detector row v relative to
//   offset_proj_y.

#include <span>

#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "sim/device.hpp"

namespace xct::backproj {

/// Arguments of the streaming kernel that vary per slab (the gray-shaded
/// offsets of Listing 1).
struct StreamOffsets {
    index_t volume_z = 0;  ///< global z index of the slab's first slice
    index_t proj_y = 0;    ///< global detector row mapped to texture depth 0
};

/// Accumulate the back-projection of all `mats.size()` views held in `tex`
/// into the slab `vol`.  `nu`/`nv` are the full detector dimensions for the
/// off-detector bounds test.  The slab must be zero-initialised (or hold a
/// partial accumulation from a previous view batch).
void backproject_streaming(const sim::Texture3& tex, std::span<const Mat34> mats, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv);

/// The same kernel over an 8-bit quantised texture — CUDA's *hardware*
/// texture-interpolation precision, which the paper rejects (Sec. 4.3.1)
/// in favour of fp32 manual interpolation.  Exists for the precision
/// ablation (bench/ablation_interpolation_precision).
void backproject_streaming_q8(const sim::QuantizedTexture3& tex, std::span<const Mat34> mats,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv);

/// Optimised variant: view-major over each voxel row with incremental
/// update of the three dot products (x, y, z are affine in i, so stepping
/// i adds a constant — 3 FMAs replace 9 multiply-adds per update).
/// Results agree with backproject_streaming to float rounding; see the
/// micro_kernels bench for the measured speed difference and test_backproj
/// for the equivalence bound.
void backproject_streaming_incremental(const sim::Texture3& tex, std::span<const Mat34> mats,
                                       Volume& vol, const StreamOffsets& off, index_t nu,
                                       index_t nv);

/// Approximate floating-point operations per (voxel, view) update of the
/// kernel inner loop — used by the roofline analysis (Fig. 12).
inline constexpr double kFlopsPerUpdate = 38.0;

}  // namespace xct::backproj
