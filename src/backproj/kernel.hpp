#pragma once
// The paper's streaming back-projection kernel (Listing 1), ported from
// CUDA onto the simulated device.
//
// Differences from the classical kernel that enable decomposition +
// out-of-core operation (Sec. 4.3):
//   * the volume is addressed with a global slice offset (offset_volume_z);
//   * projections live in a 3D texture whose *depth* axis is the detector
//     row dimension, addressed circularly (row - offset_proj_y, then
//     mod depth inside the texture) so row bands stream through a fixed
//     device allocation and the overlap between consecutive slabs is
//     reused without re-upload;
//   * every view updates a register accumulator and the volume is written
//     once per voxel, minimising device-memory traffic.
//
// Texture axis mapping (matches Listing 1's devPixel call):
//   x = detector column u, y = view index s, z = detector row v relative to
//   offset_proj_y.
//
// Performance layer (DESIGN.md §3e): the default backproject_streaming is
// the incremental-walk variant with an explicit-SIMD inner loop over i
// (core/simd.hpp; AVX2/NEON when XCT_SIMD is ON, scalar lanes otherwise):
// lane-wise zn<=0 / detector-bounds masks, fused bilinear gathers off a
// precomputed circular-row offset table, hoisted per-view row constants,
// pooled row accumulators.  The original Listing-1 loop is retained as
// backproject_streaming_scalar and the agreement bound is documented below
// (kSimdVsScalarRelBound, asserted in test_simd/test_backproj).

#include <array>
#include <span>
#include <vector>

#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "sim/device.hpp"

namespace xct::backproj {

/// Arguments of the streaming kernel that vary per slab (the gray-shaded
/// offsets of Listing 1).
struct StreamOffsets {
    index_t volume_z = 0;  ///< global z index of the slab's first slice
    index_t proj_y = 0;    ///< global detector row mapped to texture depth 0
};

/// Per-view projection matrices pre-converted for the kernel: the float
/// rows the CUDA kernel would read via __ldg, plus the original doubles
/// from which the incremental walk derives exact row constants.  Build
/// once per view share / slab schedule (SlabBackprojector caches one) —
/// previously every kernel call re-converted the full set.  Shared by the
/// fp32 and q8 paths.
class MatrixPack {
public:
    MatrixPack() = default;
    explicit MatrixPack(std::span<const Mat34> mats);

    index_t views() const { return static_cast<index_t>(dm_.size()); }
    bool empty() const { return dm_.empty(); }

    /// Row-major float 3x4 matrix of view s (rows x, y, z; columns i,j,k,1).
    const std::array<float, 12>& fmat(index_t s) const
    {
        return fm_[static_cast<std::size_t>(s)];
    }
    /// The original double-precision matrix of view s.
    const Mat34& dmat(index_t s) const { return dm_[static_cast<std::size_t>(s)]; }

private:
    std::vector<std::array<float, 12>> fm_;
    std::vector<Mat34> dm_;
};

/// Accumulate the back-projection of all `pack.views()` views held in
/// `tex` into the slab `vol`.  `nu`/`nv` are the full detector dimensions
/// for the off-detector bounds test.  The slab must be zero-initialised
/// (or hold a partial accumulation from a previous view batch).  This is
/// the vectorised incremental-walk kernel (see file header).
void backproject_streaming(const sim::Texture3& tex, const MatrixPack& pack, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv);

/// Convenience overload converting the matrices ad hoc (one-shot callers;
/// hot callers should cache a MatrixPack).
void backproject_streaming(const sim::Texture3& tex, std::span<const Mat34> mats, Volume& vol,
                           const StreamOffsets& off, index_t nu, index_t nv);

/// The original scalar Listing-1 loop (voxel-major, full dot products per
/// view), retained as the in-build reference the vectorised kernel is
/// bounded against.
void backproject_streaming_scalar(const sim::Texture3& tex, const MatrixPack& pack, Volume& vol,
                                  const StreamOffsets& off, index_t nu, index_t nv);
void backproject_streaming_scalar(const sim::Texture3& tex, std::span<const Mat34> mats,
                                  Volume& vol, const StreamOffsets& off, index_t nu, index_t nv);

/// The same kernel over an 8-bit quantised texture — CUDA's *hardware*
/// texture-interpolation precision, which the paper rejects (Sec. 4.3.1)
/// in favour of fp32 manual interpolation.  Exists for the precision
/// ablation (bench/ablation_interpolation_precision); stays scalar but
/// shares the MatrixPack with the fp32 path.
void backproject_streaming_q8(const sim::QuantizedTexture3& tex, const MatrixPack& pack,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv);
void backproject_streaming_q8(const sim::QuantizedTexture3& tex, std::span<const Mat34> mats,
                              Volume& vol, const StreamOffsets& off, index_t nu, index_t nv);

/// Back-compat name for the incremental-walk variant: since the
/// vectorisation PR it IS the default kernel; this forwards to
/// backproject_streaming.
void backproject_streaming_incremental(const sim::Texture3& tex, std::span<const Mat34> mats,
                                       Volume& vol, const StreamOffsets& off, index_t nu,
                                       index_t nv);

/// Documented agreement bound between the vectorised default kernel and
/// the scalar Listing-1 loop:
///
///   max_voxel |simd - scalar|  <=  kSimdVsScalarRelBound * max_voxel |scalar|
///
/// Sources of divergence, all O(1 ulp) per sample: the incremental walk
/// evaluates x/y/z as fma(i, step, row_constant) instead of the full
/// 4-term dot product (different association), divides once by a
/// sanitised zn, and the bilinear weights come from clamped coordinates.
/// Accumulated over views the error stays well under 1e-4 of the field
/// maximum; the bound below carries ~10x margin (measured in test_simd
/// across randomized geometries including Table-4 calibration offsets).
inline constexpr float kSimdVsScalarRelBound = 2e-4f;

/// Approximate floating-point operations per (voxel, view) update of the
/// kernel inner loop — used by the roofline analysis (Fig. 12).
inline constexpr double kFlopsPerUpdate = 38.0;

}  // namespace xct::backproj
