#include "backproj/reference.hpp"

#include <cmath>

namespace xct::backproj {

namespace {

/// Single clamped pixel fetch (v global, clamped to the resident band;
/// u clamped to the detector width) — mirrors the texture clamp mode.
inline float fetch(const ProjectionStack& p, index_t s, index_t u, index_t v)
{
    const index_t lo = p.row_begin();
    const index_t hi = lo + p.rows() - 1;
    v = v < lo ? lo : (v > hi ? hi : v);
    u = u < 0 ? 0 : (u >= p.cols() ? p.cols() - 1 : u);
    return p.at(s, v, u);
}

}  // namespace

float sub_pixel(const ProjectionStack& p, index_t s, float x, float y)
{
    // Algorithm 1, SubPixel: bilinear interpolation at (x, y).
    const index_t iu = static_cast<index_t>(std::floor(x));
    const index_t iv = static_cast<index_t>(std::floor(y));
    const float eu = x - static_cast<float>(iu);
    const float ev = y - static_cast<float>(iv);
    const float t1 = fetch(p, s, iu, iv) * (1.0f - eu) + fetch(p, s, iu + 1, iv) * eu;
    const float t2 = fetch(p, s, iu, iv + 1) * (1.0f - eu) + fetch(p, s, iu + 1, iv + 1) * eu;
    return t1 * (1.0f - ev) + t2 * ev;
}

void backproject_reference(const ProjectionStack& p, std::span<const Mat34> mats, Volume& vol,
                           index_t vol_z_offset, index_t nu, index_t nv)
{
    require(static_cast<index_t>(mats.size()) == p.views(),
            "backproject_reference: one matrix per view required");
    const Dim3 d = vol.size();

    for (index_t s = 0; s < p.views(); ++s) {
        // Single-precision copy of the matrix rows (the data path is float
        // end-to-end, matching the CUDA kernel).
        const Mat34& m = mats[static_cast<std::size_t>(s)];
#pragma omp parallel for schedule(static)
        for (index_t k = 0; k < d.z; ++k) {
            const float kk = static_cast<float>(k + vol_z_offset);
            for (index_t j = 0; j < d.y; ++j) {
                const float jj = static_cast<float>(j);
                for (index_t i = 0; i < d.x; ++i) {
                    const float ii = static_cast<float>(i);
                    // Eq. 8 (Algorithm 1 lines 6-8).
                    const float z = static_cast<float>(m[2].x) * ii + static_cast<float>(m[2].y) * jj +
                                    static_cast<float>(m[2].z) * kk + static_cast<float>(m[2].w);
                    if (z <= 0.0f) continue;  // behind the source
                    const float x = (static_cast<float>(m[0].x) * ii + static_cast<float>(m[0].y) * jj +
                                     static_cast<float>(m[0].z) * kk + static_cast<float>(m[0].w)) /
                                    z;
                    const float y = (static_cast<float>(m[1].x) * ii + static_cast<float>(m[1].y) * jj +
                                     static_cast<float>(m[1].z) * kk + static_cast<float>(m[1].w)) /
                                    z;
                    if (x < 0.0f || x > static_cast<float>(nu - 1) || y < 0.0f ||
                        y > static_cast<float>(nv - 1))
                        continue;  // projects off the detector
                    vol.at(i, j, k) += 1.0f / (z * z) * sub_pixel(p, s, x, y);
                }
            }
        }
    }
}

void backproject_reference(const ProjectionStack& p, std::span<const Mat34> mats,
                           const CbctGeometry& g, Volume& vol)
{
    require(vol.size() == g.vol, "backproject_reference: volume size mismatch");
    backproject_reference(p, mats, vol, 0, g.nu, g.nv);
}

}  // namespace xct::backproj
