#pragma once
// Perfmodel-anchored run report (DESIGN.md §3g): what the run measured,
// next to what Eqs. 13-17 predicted for the same configuration.
//
// The paper's performance model projects per-batch stage times from
// micro-benchmarked machine parameters; a real run produces the same
// quantities from its pipeline timelines.  This module joins the two
// into one typed report:
//
//   * per-stage measured vs predicted seconds and the efficiency ratio
//     (predicted / measured — 1.0 means the run hit the model);
//   * roofline attribution: which Eq. 17 aggregate (CPU, GPU, reduce,
//     store) binds the projected runtime;
//   * per-batch measured stage times (from the recorded stage spans)
//     against the model's per-batch BatchTimes;
//   * per-rank wall/busy/overlap/efficiency with straggler flags — a
//     stage more than `straggler_k` times the fleet median is flagged;
//   * fleet percentiles (p50/p95/p99) read back from the log-bucketed
//     `fleet.stage.<stage>.seconds` histograms that the distributed
//     layer fills through its final minimpi gather.
//
// Everything here consumes plain timing PODs (RankTimings), not recon
// types: the report library sits above telemetry and perfmodel only, so
// any driver — CLI, tests, future autotuners — can feed it.

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "perfmodel/model.hpp"
#include "telemetry/metrics.hpp"

namespace xct::telemetry::report {

/// One recorded stage span, reduced to what the report needs.
struct SpanTiming {
    std::string stage;  ///< "load", "filter", "bp", "mpi"/"reduce", "store"
    index_t item = -1;  ///< batch index, -1 = not batch-attributed
    double seconds = 0.0;
};

/// One rank's measured timings (bridge POD for recon::RankStats).
struct RankTimings {
    RankId rank{};
    GroupId group{};
    double load = 0.0;
    double filter = 0.0;
    double bp = 0.0;
    double reduce = 0.0;
    double store = 0.0;
    double wall = 0.0;
    std::vector<SpanTiming> spans;  ///< optional: enables per-batch rows

    double busy() const { return load + filter + bp + reduce + store; }
    double overlap() const { return wall > 0.0 ? busy() / wall : 0.0; }
};

/// Measured-vs-predicted join for one pipeline stage.
struct StageReport {
    std::string stage;
    double measured_s = 0.0;   ///< fleet median of per-rank busy seconds
    double predicted_s = 0.0;  ///< Eqs. 13-16 aggregate for one rank
    double efficiency = 0.0;   ///< predicted / measured (0 when unmeasured)
};

/// Measured-vs-predicted join for one batch (stage seconds each).
struct BatchReport {
    index_t batch = 0;
    perfmodel::BatchTimes measured;   ///< summed spans of that batch
    perfmodel::BatchTimes predicted;  ///< Eqs. 13-16
};

/// One rank's summary with anomaly flags.
struct RankReport {
    RankId rank{};
    GroupId group{};
    double wall_s = 0.0;
    double busy_s = 0.0;
    double overlap = 0.0;
    double efficiency = 0.0;  ///< projected runtime / measured wall
    std::vector<std::string> flags;  ///< e.g. "straggler:bp"
};

/// Fleet percentiles of one stage's per-rank busy seconds.
struct FleetStage {
    std::string stage;
    std::uint64_t ranks = 0;  ///< observations aggregated
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
};

/// The complete report `xct_recon --report` serialises.
struct RunReport {
    perfmodel::RunConfig config;
    std::string binding_stage;     ///< "cpu" | "gpu" | "reduce" | "store"
    double predicted_runtime_s = 0.0;
    double predicted_gups = 0.0;
    double measured_wall_s = 0.0;  ///< max over ranks
    double efficiency = 0.0;       ///< predicted runtime / measured wall
    double straggler_k = 0.0;      ///< flag threshold used
    std::vector<StageReport> stages;
    std::vector<BatchReport> batches;
    std::vector<RankReport> ranks;
    std::vector<FleetStage> fleet;
};

/// Feed one rank's stage seconds into the process-wide fleet histograms
/// (`fleet.stage.<stage>.seconds`) — the single-rank counterpart of the
/// distributed layer's minimpi gather.
void observe_fleet(const RankTimings& t);

/// Read the fleet percentiles back out of a metrics snapshot.  Returns
/// one entry per `fleet.stage.<stage>.seconds` histogram present.
std::vector<FleetStage> fleet_percentiles(const MetricsSnapshot& snap);

/// Join measured rank timings with the Eq. 13-17 projection for `cfg`
/// under machine parameters `m`.  A rank stage above `straggler_k` times
/// the fleet median (and above 1 ms, to ignore timer noise) is flagged.
/// Fleet percentiles come from the process registry snapshot.
RunReport build(const perfmodel::RunConfig& cfg, const perfmodel::MachineParams& m,
                const std::vector<RankTimings>& ranks, double straggler_k = 1.5);

/// Serialise as a typed JSON document (schema "xct.report.v1").
void write_json(std::ostream& os, const RunReport& r);
void write_json(const std::filesystem::path& path, const RunReport& r);

}  // namespace xct::telemetry::report
