#pragma once
// Always-on flight recorder: the last N spans of every thread, for free.
//
// The tracer (telemetry/trace.hpp) records everything but only when
// enabled — a run that crashes without --trace leaves no evidence.  The
// flight recorder is the complement (DESIGN.md §3g "Performance
// observatory"): every thread continuously writes its spans into a
// private fixed-size ring, overwriting the oldest, so the *recent past*
// of all threads is always available.  When the integrity Watchdog
// trips, a fault is detected, or a fatal signal fires, the rings are
// dumped as a Chrome/Perfetto trace — a post-mortem of what every stage
// was doing in the seconds before the failure.
//
// Cost model (the bench integrity/overhead section asserts < 2%):
//   * recording is lock-free and allocation-free when warm — one ring
//     slot store (relaxed atomics, single writer) per span; the only
//     cold paths are first-record-on-a-thread (ring acquisition) and
//     interning a previously unseen dynamic name;
//   * rings are recycled through a free list when threads exit, so a
//     pipeline that spawns stage threads per batch group reuses the same
//     ~5 rings instead of growing without bound, and a dead thread's
//     last spans survive until a new thread claims its ring;
//   * readers (snapshot/dump) never block writers: slot fields are
//     individually atomic, and a slot overwritten mid-read is detected
//     via its sequence stamp and dropped.
//
// Name lifetime: rings store `const char*`.  Callers pass string
// literals (ScopedTrace) or intern() dynamic names first; interned
// pointers live for the process.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/types.hpp"

namespace xct::telemetry::flight {

/// Spans retained per thread.  Power of two; at pipeline-span rates
/// (batches x stages) this holds minutes of recent history per thread.
inline constexpr std::size_t kRingCapacity = 4096;

/// Maximum post-mortem dumps per process: a crash loop or a watchdog
/// firing on every batch must not flood the filesystem.
inline constexpr std::uint64_t kMaxPostmortems = 16;

/// One decoded span from a ring (snapshot form).  Times are absolute
/// steady-clock seconds (same clock as pipeline::now_seconds).
struct FlightEvent {
    const char* cat = nullptr;
    const char* name = nullptr;
    RankId rank{};
    index_t lane = 0;  ///< ring id (stable per ring, reused across threads)
    index_t item = -1;
    std::uint64_t bytes = 0;
    double begin = 0.0;
    double end = 0.0;
};

/// Absolute steady-clock seconds — the flight timebase.
double wall_now();

/// Record a completed span into the calling thread's ring.  `cat` and
/// `name` must outlive the process (string literals, names:: constants,
/// or intern() results).  Lock-free and allocation-free when warm.
void record(const char* cat, const char* name, double abs_begin, double abs_end,
            index_t item = -1, std::uint64_t bytes = 0);

/// Ensure the calling thread's ring exists (the one cold path of
/// record()).  ScopedTrace calls this at span *begin* so that a
/// thread's first-ever acquisition is ordered before any rendezvous the
/// span body performs — heap-event deltas read after a collective then
/// cannot observe a peer's late first acquisition.
void warm();

/// Return a process-lifetime pointer for `s`.  Well-known stage names
/// ("load", "filter", "bp", "mpi", "store", "restore") resolve without
/// locking or allocation; other strings are interned under a mutex once
/// and cached for the process.
const char* intern(const std::string& s);

/// Decode every ring (live and retired), oldest-first within a ring.
/// Slots overwritten while being read are dropped, not torn.
std::vector<FlightEvent> snapshot();

/// Number of rings ever created (live + retired).  Test hook: a warm
/// thread pool must not grow this.
std::size_t ring_count();

/// Total spans ever recorded across all rings (monotonic, unlike
/// snapshot() which is bounded by ring capacity).  Bench hook: the delta
/// across a run times the per-span cost bounds the flight overhead.
std::uint64_t total_records();

/// Arm automatic post-mortem dumps: watchdog expiry, integrity
/// detection and fatal signals will write `flight_<reason>_<n>.json`
/// into `dir` (created if missing).  Armed state is process-wide.
void arm_postmortem(const std::filesystem::path& dir);
void disarm_postmortem();
bool postmortem_armed();

/// If armed, dump all rings as a Perfetto trace named after `reason`
/// (e.g. "watchdog", "integrity", "signal") and bump `flight.dumps` /
/// `flight.dumps.<reason>`.  Returns the path written, or an empty path
/// when disarmed or the kMaxPostmortems budget is spent.  Safe to call
/// from any thread; concurrent recording continues.
std::filesystem::path dump_postmortem(const char* reason);

/// Unconditionally write the current rings to `path` as Chrome
/// trace-event JSON (timebase rebased so the earliest span is t=0).
void dump(const std::filesystem::path& path);

/// Install handlers for fatal signals (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
/// SIGILL) that attempt a post-mortem dump before re-raising with the
/// default disposition.  Best-effort: the dump path is not strictly
/// async-signal-safe, which is acceptable for a crashing process.
void install_signal_handlers();

}  // namespace xct::telemetry::flight
