#pragma once
// Exporters for the telemetry layer:
//
//   * write_chrome_trace — Chrome trace-event JSON (the "JSON Array
//     Format" with a traceEvents wrapper): one complete event (ph "X",
//     microsecond ts/dur) per recorded span, pid = rank, tid = lane,
//     plus process_name metadata per rank.  Loadable in Perfetto
//     (ui.perfetto.dev) and chrome://tracing.
//   * write_metrics_csv / write_metrics_json — flat dumps of a
//     MetricsSnapshot (histograms expanded into .le_<bound> rows).

#include <filesystem>
#include <ostream>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::telemetry {

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events);
void write_chrome_trace(const std::filesystem::path& path, const std::vector<TraceEvent>& events);

/// CSV with header `name,kind,value`; counters and gauges one row each,
/// histograms as `<name>.le_<bound>`, `<name>.le_inf`, `<name>.count`
/// and `<name>.sum` rows.
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& s);
void write_metrics_csv(const std::filesystem::path& path, const MetricsSnapshot& s);

void write_metrics_json(std::ostream& os, const MetricsSnapshot& s);
void write_metrics_json(const std::filesystem::path& path, const MetricsSnapshot& s);

}  // namespace xct::telemetry
