#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>

namespace xct::telemetry {

namespace {

std::string json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string fmt_double(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

std::ofstream open_out(const std::filesystem::path& path)
{
    std::ofstream os(path);
    require(os.good(), "telemetry: cannot open " + path.string() + " for writing");
    return os;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceEvent>& events)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first) os << ",";
        first = false;
        os << "\n";
    };

    // Name each pid lane so Perfetto shows "rank N" process headers.
    std::set<RankId> ranks;
    for (const auto& e : events) ranks.insert(e.rank);
    for (const RankId r : ranks) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << r
           << ",\"tid\":0,\"args\":{\"name\":\"rank " << r << "\"}}";
    }

    for (const auto& e : events) {
        // Clamp to the epoch: spans that began before enable() would get
        // negative timestamps, which the viewers mishandle.
        const double begin = std::max(0.0, e.begin);
        const double dur = std::max(0.0, e.end - begin);
        sep();
        os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << json_escape(e.cat)
           << "\",\"ph\":\"X\",\"ts\":" << fmt_double(begin * 1e6)
           << ",\"dur\":" << fmt_double(dur * 1e6) << ",\"pid\":" << e.rank
           << ",\"tid\":" << e.lane;
        if (e.item >= 0 || e.bytes > 0) {
            os << ",\"args\":{";
            if (e.item >= 0) os << "\"item\":" << e.item;
            if (e.bytes > 0) {
                if (e.item >= 0) os << ",";
                os << "\"bytes\":" << e.bytes;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void write_chrome_trace(const std::filesystem::path& path, const std::vector<TraceEvent>& events)
{
    auto os = open_out(path);
    write_chrome_trace(os, events);
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& s)
{
    os << "name,kind,value\n";
    for (const auto& c : s.counters) os << c.name << ",counter," << c.value << "\n";
    for (const auto& g : s.gauges) os << g.name << ",gauge," << fmt_double(g.value) << "\n";
    for (const auto& h : s.histograms) {
        for (std::size_t i = 0; i < h.bounds.size(); ++i)
            os << h.name << ".le_" << fmt_double(h.bounds[i]) << ",histogram," << h.counts[i]
               << "\n";
        os << h.name << ".le_inf,histogram," << h.counts.back() << "\n";
        os << h.name << ".count,histogram," << h.count << "\n";
        os << h.name << ".sum,histogram," << fmt_double(h.sum) << "\n";
    }
}

void write_metrics_csv(const std::filesystem::path& path, const MetricsSnapshot& s)
{
    auto os = open_out(path);
    write_metrics_csv(os, s);
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& s)
{
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < s.counters.size(); ++i)
        os << (i ? "," : "") << "\n    \"" << json_escape(s.counters[i].name)
           << "\": " << s.counters[i].value;
    os << "\n  },\n  \"gauges\": {";
    for (std::size_t i = 0; i < s.gauges.size(); ++i)
        os << (i ? "," : "") << "\n    \"" << json_escape(s.gauges[i].name)
           << "\": " << fmt_double(s.gauges[i].value);
    os << "\n  },\n  \"histograms\": {";
    for (std::size_t i = 0; i < s.histograms.size(); ++i) {
        const auto& h = s.histograms[i];
        os << (i ? "," : "") << "\n    \"" << json_escape(h.name) << "\": {\"bounds\": [";
        for (std::size_t b = 0; b < h.bounds.size(); ++b)
            os << (b ? "," : "") << fmt_double(h.bounds[b]);
        os << "], \"counts\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b) os << (b ? "," : "") << h.counts[b];
        os << "], \"count\": " << h.count << ", \"sum\": " << fmt_double(h.sum) << "}";
    }
    os << "\n  }\n}\n";
}

void write_metrics_json(const std::filesystem::path& path, const MetricsSnapshot& s)
{
    auto os = open_out(path);
    write_metrics_json(os, s);
}

}  // namespace xct::telemetry
