#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "core/names.hpp"

namespace xct::telemetry {

namespace {

std::string format_bounds(const std::vector<double>& bounds)
{
    std::string out = "[";
    char buf[32];
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%g", bounds[i]);
        if (i) out += ", ";
        out += buf;
    }
    out += "]";
    return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds))
{
    require(std::is_sorted(bounds_.begin(), bounds_.end()),
            "Histogram: bucket bounds must be ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t> Histogram::counts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

void merge(MetricsSnapshot& into, const MetricsSnapshot& other)
{
    auto find_or_insert = [](auto& vec, const std::string& name) {
        auto it = std::lower_bound(vec.begin(), vec.end(), name,
                                   [](const auto& s, const std::string& n) { return s.name < n; });
        if (it == vec.end() || it->name != name) {
            // NB: insert(it, {}) would pick the initializer_list overload
            // and insert nothing — spell out the value type.
            typename std::remove_reference_t<decltype(vec)>::value_type sample{};
            sample.name = name;
            it = vec.insert(it, std::move(sample));
        }
        return it;
    };
    for (const auto& c : other.counters) find_or_insert(into.counters, c.name)->value += c.value;
    for (const auto& g : other.gauges) find_or_insert(into.gauges, g.name)->value += g.value;
    for (const auto& h : other.histograms) {
        auto it = find_or_insert(into.histograms, h.name);
        if (it->counts.empty()) {
            it->bounds = h.bounds;
            it->counts.assign(h.counts.size(), 0);
        }
        require(it->bounds == h.bounds, "merge: histogram bounds mismatch for '" + h.name +
                                            "': into has " + format_bounds(it->bounds) +
                                            ", other has " + format_bounds(h.bounds));
        for (std::size_t i = 0; i < h.counts.size(); ++i) it->counts[i] += h.counts[i];
        it->count += h.count;
        it->sum += h.sum;
    }
}

std::vector<double> exp_bounds(double start, double factor, int count)
{
    require(start > 0.0 && factor > 1.0 && count >= 1,
            "exp_bounds: requires start > 0, factor > 1, count >= 1");
    std::vector<double> bounds(static_cast<std::size_t>(count));
    double b = start;
    for (auto& bound : bounds) {
        bound = b;
        b *= factor;
    }
    return bounds;
}

double histogram_quantile(const HistogramSample& h, double q)
{
    require(q >= 0.0 && q <= 1.0, "histogram_quantile: q must be in [0, 1]");
    if (h.count == 0 || h.counts.empty()) return 0.0;
    // The q-th observation by rank (1-based, clamped into range).
    const double target = std::max(1.0, q * static_cast<double>(h.count));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        const std::uint64_t in_bucket = h.counts[i];
        if (in_bucket == 0) continue;
        if (static_cast<double>(cum + in_bucket) >= target) {
            // Overflow bucket has no upper bound — report the last finite one.
            if (i >= h.bounds.size()) return h.bounds.empty() ? 0.0 : h.bounds.back();
            const double hi = h.bounds[i];
            const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
            const double frac = (target - static_cast<double>(cum)) /
                                static_cast<double>(in_bucket);
            return lo + (hi - lo) * std::min(1.0, frac);
        }
        cum += in_bucket;
    }
    return h.bounds.empty() ? 0.0 : h.bounds.back();
}

void fleet_observe(const std::string& stage, double seconds)
{
    registry()
        .histogram(names::kMetricFleetStagePrefix + stage + ".seconds",
                   exp_bounds(1e-3, 2.0, 24))
        .observe(seconds);
}

Counter& Registry::counter(const std::string& name)
{
    MutexLock lk(m_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& Registry::gauge(const std::string& name)
{
    MutexLock lk(m_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds)
{
    MutexLock lk(m_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    else
        require(slot->bounds() == bounds,
                "Registry::histogram: re-registration with different bounds for '" + name +
                    "': registered " + format_bounds(slot->bounds()) + ", requested " +
                    format_bounds(bounds));
    return *slot;
}

MetricsSnapshot Registry::snapshot() const
{
    MutexLock lk(m_);
    MetricsSnapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) s.counters.push_back({name, c->value()});
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        s.histograms.push_back({name, h->bounds(), h->counts(), h->count(), h->sum()});
    return s;
}

void Registry::reset()
{
    MutexLock lk(m_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry()
{
    static Registry r;
    return r;
}

}  // namespace xct::telemetry
