#include "telemetry/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "core/names.hpp"

namespace xct::telemetry::report {

namespace {

// The five pipeline stages in report order, with the per-rank measured
// accessor and the matching Eqs. 13-16 aggregate of a Projection.
struct StageMap {
    const char* stage;
    double RankTimings::* measured;
    double perfmodel::Projection::* predicted;
};

constexpr StageMap kStageMap[] = {
    {"load", &RankTimings::load, &perfmodel::Projection::t_load},
    {"filter", &RankTimings::filter, &perfmodel::Projection::t_filter},
    {"bp", &RankTimings::bp, &perfmodel::Projection::t_bp},
    {"reduce", &RankTimings::reduce, &perfmodel::Projection::t_reduce},
    {"store", &RankTimings::store, &perfmodel::Projection::t_store},
};

/// Ignore stage times below this when flagging stragglers: at micro
/// scales the fleet median is timer noise, not a baseline.
constexpr double kStragglerFloorSeconds = 1e-3;

double median(std::vector<double> v)
{
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
    return v[mid];
}

double ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

/// Map a recorded span's stage name onto a BatchTimes field (the
/// pipeline calls its reduce stage "mpi"; "restore" replays are not a
/// model stage and return nullptr).
double perfmodel::BatchTimes::* batch_field(const std::string& stage)
{
    if (stage == "load") return &perfmodel::BatchTimes::load;
    if (stage == "filter") return &perfmodel::BatchTimes::filter;
    if (stage == "bp") return &perfmodel::BatchTimes::bp;
    if (stage == "mpi" || stage == "reduce") return &perfmodel::BatchTimes::reduce;
    if (stage == "store") return &perfmodel::BatchTimes::store;
    return nullptr;
}

// ---- JSON helpers (self-contained; the report schema is typed here) -----

std::string esc(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

std::string num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string num(index_t v)
{
    return std::to_string(static_cast<long long>(v));
}

std::string batch_times_json(const perfmodel::BatchTimes& t)
{
    return "{\"load\": " + num(t.load) + ", \"filter\": " + num(t.filter) +
           ", \"h2d\": " + num(t.h2d) + ", \"bp\": " + num(t.bp) + ", \"d2h\": " + num(t.d2h) +
           ", \"reduce\": " + num(t.reduce) + ", \"store\": " + num(t.store) + "}";
}

}  // namespace

void observe_fleet(const RankTimings& t)
{
    for (const StageMap& s : kStageMap) fleet_observe(s.stage, t.*(s.measured));
    fleet_observe(names::kStageWall, t.wall);
    registry().counter(names::kMetricFleetRanks).add(1);
}

std::vector<FleetStage> fleet_percentiles(const MetricsSnapshot& snap)
{
    const std::string prefix = names::kMetricFleetStagePrefix;
    const std::string suffix = ".seconds";
    std::vector<FleetStage> out;
    for (const HistogramSample& h : snap.histograms) {
        if (h.name.size() <= prefix.size() + suffix.size()) continue;
        if (h.name.compare(0, prefix.size(), prefix) != 0) continue;
        if (h.name.compare(h.name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
        FleetStage f;
        f.stage = h.name.substr(prefix.size(), h.name.size() - prefix.size() - suffix.size());
        f.ranks = h.count;
        f.p50_s = histogram_quantile(h, 0.50);
        f.p95_s = histogram_quantile(h, 0.95);
        f.p99_s = histogram_quantile(h, 0.99);
        out.push_back(std::move(f));
    }
    return out;
}

RunReport build(const perfmodel::RunConfig& cfg, const perfmodel::MachineParams& m,
                const std::vector<RankTimings>& ranks, double straggler_k)
{
    require(straggler_k > 1.0, "report::build: straggler_k must exceed 1");
    const perfmodel::Projection proj = perfmodel::project(cfg, m);

    RunReport r;
    r.config = cfg;
    r.predicted_runtime_s = proj.runtime;
    r.predicted_gups = proj.gups;
    r.straggler_k = straggler_k;

    // Roofline attribution: the Eq. 17 aggregate that binds the
    // steady-state (perfect-overlap) runtime.
    const double agg_cpu = proj.t_load + proj.t_filter;
    const double agg_gpu = proj.t_h2d + proj.t_bp + proj.t_d2h;
    r.binding_stage = "cpu";
    double binding = agg_cpu;
    for (const auto& [name, value] :
         {std::pair<const char*, double>{"gpu", agg_gpu}, {"reduce", proj.t_reduce},
          {"store", proj.t_store}}) {
        if (value > binding) {
            binding = value;
            r.binding_stage = name;
        }
    }

    // Per-stage join: fleet median of the per-rank busy seconds against
    // the model's one-rank aggregate.
    std::map<std::string, double> stage_median;
    for (const StageMap& s : kStageMap) {
        std::vector<double> values;
        values.reserve(ranks.size());
        for (const RankTimings& t : ranks) values.push_back(t.*(s.measured));
        StageReport sr;
        sr.stage = s.stage;
        sr.measured_s = median(std::move(values));
        sr.predicted_s = proj.*(s.predicted);
        sr.efficiency = ratio(sr.predicted_s, sr.measured_s);
        stage_median[sr.stage] = sr.measured_s;
        r.stages.push_back(std::move(sr));
    }

    // Per-batch join: mean over ranks of the summed span seconds of each
    // batch, against Eqs. 13-16's per-batch prediction.
    std::map<index_t, perfmodel::BatchTimes> batch_measured;
    std::size_t ranks_with_spans = 0;
    for (const RankTimings& t : ranks) {
        if (t.spans.empty()) continue;
        ++ranks_with_spans;
        for (const SpanTiming& sp : t.spans) {
            if (sp.item < 0) continue;
            double perfmodel::BatchTimes::* field = batch_field(sp.stage);
            if (field == nullptr) continue;
            batch_measured[sp.item].*field += sp.seconds;
        }
    }
    for (auto& [batch, measured] : batch_measured) {
        if (ranks_with_spans > 1) {
            const double inv = 1.0 / static_cast<double>(ranks_with_spans);
            measured.load *= inv;
            measured.filter *= inv;
            measured.bp *= inv;
            measured.reduce *= inv;
            measured.store *= inv;
        }
        BatchReport br;
        br.batch = batch;
        br.measured = measured;
        if (batch >= 0 && static_cast<std::size_t>(batch) < proj.batches.size())
            br.predicted = proj.batches[static_cast<std::size_t>(batch)];
        r.batches.push_back(std::move(br));
    }

    // Per-rank summaries with straggler flags.
    for (const RankTimings& t : ranks) {
        RankReport rr;
        rr.rank = t.rank;
        rr.group = t.group;
        rr.wall_s = t.wall;
        rr.busy_s = t.busy();
        rr.overlap = t.overlap();
        rr.efficiency = ratio(proj.runtime, t.wall);
        for (const StageMap& s : kStageMap) {
            const double mine = t.*(s.measured);
            const double med = stage_median[s.stage];
            if (mine > kStragglerFloorSeconds && med > 0.0 && mine > straggler_k * med)
                rr.flags.push_back(std::string("straggler:") + s.stage);
        }
        r.ranks.push_back(std::move(rr));
        r.measured_wall_s = std::max(r.measured_wall_s, t.wall);
    }
    r.efficiency = ratio(proj.runtime, r.measured_wall_s);

    r.fleet = fleet_percentiles(registry().snapshot());
    return r;
}

void write_json(std::ostream& os, const RunReport& r)
{
    os << "{\n  \"schema\": \"xct.report.v1\",\n";
    os << "  \"config\": {\"volume\": [" << num(r.config.geometry.vol.x) << ", "
       << num(r.config.geometry.vol.y) << ", " << num(r.config.geometry.vol.z)
       << "], \"detector\": [" << num(r.config.geometry.nu) << ", "
       << num(r.config.geometry.nv) << "], \"views\": " << num(r.config.geometry.num_proj)
       << ", \"groups\": " << num(r.config.layout.num_groups)
       << ", \"ranks_per_group\": " << num(r.config.layout.ranks_per_group)
       << ", \"batches\": " << num(r.config.batches) << "},\n";
    os << "  \"model\": {\"runtime_s\": " << num(r.predicted_runtime_s)
       << ", \"gups\": " << num(r.predicted_gups) << ", \"binding_stage\": \""
       << esc(r.binding_stage) << "\"},\n";
    os << "  \"measured\": {\"wall_s\": " << num(r.measured_wall_s)
       << ", \"efficiency\": " << num(r.efficiency)
       << ", \"straggler_k\": " << num(r.straggler_k) << "},\n";

    os << "  \"stages\": [";
    for (std::size_t i = 0; i < r.stages.size(); ++i) {
        const StageReport& s = r.stages[i];
        os << (i ? ",\n    " : "\n    ") << "{\"stage\": \"" << esc(s.stage)
           << "\", \"measured_s\": " << num(s.measured_s)
           << ", \"predicted_s\": " << num(s.predicted_s)
           << ", \"efficiency\": " << num(s.efficiency) << "}";
    }
    os << "\n  ],\n";

    os << "  \"batches\": [";
    for (std::size_t i = 0; i < r.batches.size(); ++i) {
        const BatchReport& b = r.batches[i];
        os << (i ? ",\n    " : "\n    ") << "{\"batch\": " << num(b.batch)
           << ", \"measured\": " << batch_times_json(b.measured)
           << ", \"predicted\": " << batch_times_json(b.predicted) << "}";
    }
    os << "\n  ],\n";

    os << "  \"ranks\": [";
    for (std::size_t i = 0; i < r.ranks.size(); ++i) {
        const RankReport& k = r.ranks[i];
        os << (i ? ",\n    " : "\n    ") << "{\"rank\": " << num(k.rank.value())
           << ", \"group\": " << num(k.group.value()) << ", \"wall_s\": " << num(k.wall_s)
           << ", \"busy_s\": " << num(k.busy_s) << ", \"overlap\": " << num(k.overlap)
           << ", \"efficiency\": " << num(k.efficiency) << ", \"flags\": [";
        for (std::size_t f = 0; f < k.flags.size(); ++f)
            os << (f ? ", " : "") << "\"" << esc(k.flags[f]) << "\"";
        os << "]}";
    }
    os << "\n  ],\n";

    os << "  \"fleet\": [";
    for (std::size_t i = 0; i < r.fleet.size(); ++i) {
        const FleetStage& f = r.fleet[i];
        os << (i ? ",\n    " : "\n    ") << "{\"stage\": \"" << esc(f.stage)
           << "\", \"ranks\": " << num(f.ranks) << ", \"p50_s\": " << num(f.p50_s)
           << ", \"p95_s\": " << num(f.p95_s) << ", \"p99_s\": " << num(f.p99_s) << "}";
    }
    os << "\n  ]\n}\n";
}

void write_json(const std::filesystem::path& path, const RunReport& r)
{
    std::ofstream os(path, std::ios::binary);
    require(os.is_open(), "report: cannot open " + path.string());
    write_json(os, r);
}

}  // namespace xct::telemetry::report
