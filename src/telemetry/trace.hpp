#pragma once
// Trace-span capture across every subsystem of one process.
//
// The tracer generalises pipeline::Timeline: named spans carry a
// *category* (the subsystem: "pipeline", "minimpi", "sim", "io",
// "filter"), a *rank* (the minimpi world rank, see set_current_rank) and
// a *lane* (a small per-thread id), all against ONE process-wide epoch —
// so a distributed run's trace shows all ranks of all groups on a single
// timebase.  Spans are exported as Chrome trace-event JSON
// (telemetry/export.hpp) and open directly in Perfetto / chrome://tracing
// with pid = rank and tid = lane.
//
// Cost model: tracing is disabled by default; the disabled path is one
// relaxed atomic load per potential span (no clock reads, no allocation),
// so instrumented kernels do not regress.  When enabled, recording takes
// a mutex — acceptable at span granularity (batches, collectives,
// transfers), which is why the instrumentation sits at those boundaries
// and not inside per-voxel loops.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/mutex.hpp"
#include "core/types.hpp"
#include "telemetry/flight.hpp"

namespace xct::telemetry {

/// One recorded span.  Times are seconds since the tracer's epoch.
struct TraceEvent {
    std::string name;          ///< e.g. "bp", "reduce_sum", "h2d"
    std::string cat;           ///< subsystem: "pipeline", "minimpi", ...
    RankId rank{};             ///< minimpi world rank (Chrome trace pid)
    index_t lane = 0;          ///< per-thread id (Chrome trace tid)
    index_t item = -1;         ///< batch index, -1 = not applicable
    std::uint64_t bytes = 0;   ///< payload size, 0 = not applicable
    double begin = 0.0;
    double end = 0.0;
};

/// The per-thread rank attribution: minimpi::run() tags each rank thread
/// with its world rank, and recon::run_rank() propagates the tag to its
/// stage threads, so low-level modules (sim::Device, io::Pfs, fft) can
/// attribute work without threading a rank id through every call.
RankId current_rank();
void set_current_rank(RankId rank);

/// Span recorder.  enable() (re)sets the epoch and clears prior events.
class Tracer {
public:
    void enable();
    void disable() { enabled_.store(false, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Seconds since the epoch (meaningless while disabled).
    double now() const;

    /// Record a span given epoch-relative times.  rank defaults to
    /// current_rank(); the lane is derived from the calling thread.
    void record(std::string name, std::string cat, double begin, double end, index_t item = -1,
                std::uint64_t bytes = 0);

    /// Record a span given *absolute* pipeline::now_seconds() times —
    /// used by recorders with their own epoch (pipeline::Timeline).
    void record_interval_abs(std::string name, std::string cat, double abs_begin, double abs_end,
                             index_t item = -1, std::uint64_t bytes = 0);

    std::vector<TraceEvent> events() const;
    std::size_t event_count() const;
    void clear();

private:
    std::atomic<bool> enabled_{false};
    // Written by enable() under m_, read lock-free by now(): callers only
    // consume now() while enabled, and enable() happens-before via the
    // enabled_ store/load pair.
    double epoch_ = 0.0;  ///< absolute seconds (pipeline::now_seconds base)
    mutable Mutex m_{"telemetry.trace"};
    std::vector<TraceEvent> events_ XCT_GUARDED_BY(m_);
    std::unordered_map<std::thread::id, index_t> lanes_ XCT_GUARDED_BY(m_);

    index_t lane_locked() XCT_REQUIRES(m_);
};

/// The process-wide tracer every subsystem feeds.
Tracer& tracer();

/// RAII span against the global tracer AND the always-on flight
/// recorder (telemetry/flight.hpp).  With tracing disabled the cost is
/// one clock read plus a lock-free ring-slot store per end of the span
/// (< 2% on the pipeline clean path, asserted by the bench overhead
/// section); when enabled, the tracer additionally records the span on
/// its own timebase.  `cat` and `name` must be process-lifetime strings
/// (literals / names:: constants) — the flight ring stores the pointers.
class ScopedTrace {
public:
    ScopedTrace(const char* cat, const char* name, index_t item = -1, std::uint64_t bytes = 0)
        : cat_(cat), name_(name), item_(item), bytes_(bytes), traced_(tracer().enabled()),
          begin_abs_(flight::wall_now())
    {
        flight::warm();  // first span on a thread acquires its ring HERE
    }
    ~ScopedTrace()
    {
        const double end_abs = flight::wall_now();
        flight::record(cat_, name_, begin_abs_, end_abs, item_, bytes_);
        if (traced_ && tracer().enabled())
            tracer().record_interval_abs(name_, cat_, begin_abs_, end_abs, item_, bytes_);
    }
    ScopedTrace(const ScopedTrace&) = delete;
    ScopedTrace& operator=(const ScopedTrace&) = delete;

private:
    const char* cat_;
    const char* name_;
    index_t item_;
    std::uint64_t bytes_;
    bool traced_;  ///< tracer was enabled at span begin (skip straddlers)
    double begin_abs_;
};

}  // namespace xct::telemetry
