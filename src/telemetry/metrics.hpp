#pragma once
// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms feeding the flat CSV/JSON metrics dump (--metrics of the
// tools) and the bench summaries.
//
// Design goals (DESIGN.md "Observability"):
//   * lock-cheap updates — instruments are looked up once (the registry
//     mutex is taken only at registration) and then updated with relaxed
//     atomics, so hot paths like fft::transform can count unconditionally;
//   * stable references — instruments are never deallocated while the
//     registry lives, so cached `Counter&` references stay valid;
//   * deterministic snapshots — snapshot() returns every instrument
//     sorted by name, so two snapshots of a quiescent registry are equal.
//
// Naming scheme: dot-separated `<subsystem>.<object>.<unit>` — e.g.
// `minimpi.reduce_sum.root_bytes`, `sim.h2d.bytes`,
// `pipeline.stage.bp.seconds` (see README.md "Observability").

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mutex.hpp"
#include "core/types.hpp"

namespace xct::telemetry {

/// Monotonically increasing integer metric.
class Counter {
public:
    void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-value / accumulating double metric (stage seconds, ratios).
class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double d)
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: counts of observations <= each bound plus an
/// overflow bucket, with total count and sum.  Bounds are set at
/// registration and immutable afterwards.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts; size bounds().size() + 1 (last = overflow).
    std::vector<std::uint64_t> counts() const;
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    void reset();

private:
    std::vector<double> bounds_;  ///< ascending upper bounds
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// One instrument's state at snapshot time.
struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterSample&) const = default;
};
struct GaugeSample {
    std::string name;
    double value = 0.0;
    bool operator==(const GaugeSample&) const = default;
};
struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    bool operator==(const HistogramSample&) const = default;
};

/// Deterministic point-in-time view of a registry (each vector sorted by
/// instrument name).
struct MetricsSnapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    bool operator==(const MetricsSnapshot&) const = default;
};

/// Merge `other` into `into`: counters/gauges/histogram buckets with the
/// same name are summed, unknown names are inserted (used to aggregate
/// per-rank snapshots of a distributed run).  Histograms with mismatched
/// bounds throw std::invalid_argument naming the offending histogram and
/// listing both bound vectors.
void merge(MetricsSnapshot& into, const MetricsSnapshot& other);

/// Log-bucketed histogram bounds: `count` ascending upper bounds starting
/// at `start`, each `factor` times the previous — the standard shape for
/// latency/seconds histograms whose values span orders of magnitude.
/// Example: exp_bounds(1e-4, 2.0, 20) covers 100 us .. ~52 s.
/// Requires start > 0, factor > 1 and count >= 1.
std::vector<double> exp_bounds(double start, double factor, int count);

/// Quantile estimate (q in [0, 1]) from a histogram sample's cumulative
/// bucket counts: returns the upper bound of the bucket containing the
/// q-th observation (bounds.back() for the overflow bucket), linearly
/// interpolated within the bucket.  Returns 0 for an empty histogram.
double histogram_quantile(const HistogramSample& h, double q);

/// Fleet aggregation sink: observe one rank's busy seconds for `stage`
/// into the log-bucketed `fleet.stage.<stage>.seconds` histogram of the
/// process registry (exp_bounds(1e-3, 2.0, 24): 1 ms .. ~4.6 h).  The
/// distributed layer feeds this on rank 0 after its final minimpi
/// gather; report.cpp reads the percentiles back out.
void fleet_observe(const std::string& stage, double seconds);

/// Name-addressed instrument store.  registration is mutex-protected;
/// returned references stay valid for the registry's lifetime.
class Registry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// Registers the histogram on first call; later calls with different
    /// bounds throw std::invalid_argument.
    Histogram& histogram(const std::string& name, std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    /// Zero every instrument (registrations are kept, references stay
    /// valid) — used by tests and the benches between sweeps.
    void reset();

private:
    mutable Mutex m_{"telemetry.metrics"};
    std::map<std::string, std::unique_ptr<Counter>> counters_ XCT_GUARDED_BY(m_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_ XCT_GUARDED_BY(m_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_ XCT_GUARDED_BY(m_);
};

/// The process-wide registry every subsystem feeds.
Registry& registry();

}  // namespace xct::telemetry
