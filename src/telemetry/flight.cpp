#include "telemetry/flight.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>

#include "core/mutex.hpp"
#include "core/names.hpp"
#include "core/scratch.hpp"
#include "telemetry/export.hpp"

namespace xct::telemetry::flight {

namespace {

// One ring slot.  Every field is individually atomic so a dumper may
// read a slot the owning thread is concurrently overwriting without a
// data race; the `seq` stamp (0 while a write is in flight, else
// 1 + the monotonic write index) lets readers detect and drop slots
// caught mid-overwrite instead of emitting torn spans.
struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> cat{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<index_t> rank{0};
    std::atomic<index_t> item{-1};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<double> begin{0.0};
    std::atomic<double> end{0.0};
};

// Single-writer ring: only the owning thread stores, anyone may load.
struct Ring {
    std::array<Slot, kRingCapacity> slots;
    std::atomic<std::uint64_t> head{0};  ///< monotonic next-write index
    index_t lane = 0;  ///< assigned once before publication, then read-only
};

struct State {
    mutable Mutex m{"telemetry.flight"};
    std::vector<std::shared_ptr<Ring>> rings XCT_GUARDED_BY(m);
    std::vector<std::size_t> free_rings XCT_GUARDED_BY(m);  ///< retired, reusable
    std::set<std::string> interned XCT_GUARDED_BY(m);
    std::filesystem::path dump_dir XCT_GUARDED_BY(m);
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> postmortems{0};
};

State& state()
{
    static State s;
    return s;
}

std::shared_ptr<Ring> acquire_ring()
{
    State& st = state();
    MutexLock lk(st.m);
    if (!st.free_rings.empty()) {
        const std::size_t idx = st.free_rings.back();
        st.free_rings.pop_back();
        return st.rings[idx];
    }
    // Cold path: a genuinely new thread.  Visible to the warm-path
    // zero-allocation assertion through the scratch heap-event counter.
    scratch::note_heap_event();
    auto ring = std::make_shared<Ring>();
    ring->lane = static_cast<index_t>(st.rings.size());
    st.rings.push_back(ring);
    registry().gauge(names::kMetricFlightThreads).set(static_cast<double>(st.rings.size()));
    return ring;
}

// Thread-local ring lease: acquired on the thread's first record(),
// retired to the free list when the thread exits.  The retired ring's
// events stay readable until a new thread claims and overwrites it.
struct LocalRing {
    std::shared_ptr<Ring> ring;
    ~LocalRing()
    {
        if (!ring) return;
        State& st = state();
        MutexLock lk(st.m);
        st.free_rings.push_back(static_cast<std::size_t>(ring->lane));
    }
};

Ring& local_ring()
{
    thread_local LocalRing lease;
    if (!lease.ring) lease.ring = acquire_ring();
    return *lease.ring;
}

std::vector<std::shared_ptr<Ring>> all_rings()
{
    State& st = state();
    MutexLock lk(st.m);
    return st.rings;
}

std::atomic<bool> g_in_fatal_signal{false};

void fatal_signal_handler(int sig)
{
    // Best-effort: dump once, then die with the default disposition so
    // exit codes / core dumps behave as without the handler.
    if (!g_in_fatal_signal.exchange(true)) dump_postmortem(names::kFlightReasonSignal);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

}  // namespace

double wall_now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void warm()
{
    local_ring();
}

void record(const char* cat, const char* name, double abs_begin, double abs_end, index_t item,
            std::uint64_t bytes)
{
    Ring& r = local_ring();
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    Slot& s = r.slots[h & (kRingCapacity - 1)];
    s.seq.store(0, std::memory_order_relaxed);  // invalidate while writing
    s.cat.store(cat, std::memory_order_relaxed);
    s.name.store(name, std::memory_order_relaxed);
    s.rank.store(current_rank().value(), std::memory_order_relaxed);
    s.item.store(item, std::memory_order_relaxed);
    s.bytes.store(bytes, std::memory_order_relaxed);
    s.begin.store(abs_begin, std::memory_order_relaxed);
    s.end.store(abs_end, std::memory_order_relaxed);
    s.seq.store(h + 1, std::memory_order_release);
    r.head.store(h + 1, std::memory_order_release);
}

const char* intern(const std::string& s)
{
    // The pipeline's stage names — the only dynamic names on the warm
    // path — resolve without the lock.
    static constexpr std::array<const char*, 7> kWellKnown = {
        "load", "filter", "bp", "mpi", "store", "restore", "reduce"};
    for (const char* w : kWellKnown)
        if (s == w) return w;
    State& st = state();
    MutexLock lk(st.m);
    const auto [it, inserted] = st.interned.insert(s);
    if (inserted) scratch::note_heap_event();
    return it->c_str();
}

std::vector<FlightEvent> snapshot()
{
    std::vector<FlightEvent> out;
    for (const auto& ring : all_rings()) {
        const std::uint64_t head = ring->head.load(std::memory_order_acquire);
        const std::uint64_t start = head > kRingCapacity ? head - kRingCapacity : 0;
        for (std::uint64_t i = start; i < head; ++i) {
            const Slot& s = ring->slots[i & (kRingCapacity - 1)];
            if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
            FlightEvent e;
            e.cat = s.cat.load(std::memory_order_relaxed);
            e.name = s.name.load(std::memory_order_relaxed);
            e.rank = RankId{s.rank.load(std::memory_order_relaxed)};
            e.lane = ring->lane;
            e.item = s.item.load(std::memory_order_relaxed);
            e.bytes = s.bytes.load(std::memory_order_relaxed);
            e.begin = s.begin.load(std::memory_order_relaxed);
            e.end = s.end.load(std::memory_order_relaxed);
            // Re-check: the owner may have started overwriting the slot
            // while we read it — drop the torn copy.
            if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
            if (e.cat == nullptr || e.name == nullptr) continue;
            out.push_back(e);
        }
    }
    return out;
}

std::size_t ring_count()
{
    State& st = state();
    MutexLock lk(st.m);
    return st.rings.size();
}

std::uint64_t total_records()
{
    std::uint64_t n = 0;
    for (const auto& ring : all_rings()) n += ring->head.load(std::memory_order_relaxed);
    return n;
}

void arm_postmortem(const std::filesystem::path& dir)
{
    std::filesystem::create_directories(dir);
    State& st = state();
    {
        MutexLock lk(st.m);
        st.dump_dir = dir;
    }
    st.armed.store(true, std::memory_order_release);
}

void disarm_postmortem()
{
    state().armed.store(false, std::memory_order_release);
}

bool postmortem_armed()
{
    return state().armed.load(std::memory_order_acquire);
}

std::filesystem::path dump_postmortem(const char* reason)
{
    State& st = state();
    if (!st.armed.load(std::memory_order_acquire)) return {};
    const std::uint64_t n = st.postmortems.fetch_add(1, std::memory_order_relaxed);
    if (n >= kMaxPostmortems) return {};
    auto& reg = registry();
    reg.counter(names::kMetricFlightDumps).add(1);
    reg.counter(std::string(names::kMetricFlightDumpsPrefix) + reason).add(1);
    std::filesystem::path path;
    {
        MutexLock lk(st.m);
        path = st.dump_dir /
               ("flight_" + std::string(reason) + "_" + std::to_string(n) + ".json");
    }
    const double t0 = wall_now();
    dump(path);
    // The dump itself becomes a span, so a later dump shows this one.
    record(names::kCatFlight, names::kSpanFlightDump, t0, wall_now());
    std::fprintf(stderr, "flight: wrote post-mortem trace %s (reason: %s)\n",
                 path.string().c_str(), reason);
    return path;
}

void dump(const std::filesystem::path& path)
{
    const std::vector<FlightEvent> events = snapshot();
    // Rebase onto the earliest span so the trace opens at t = 0 (the
    // raw timebase is steady-clock seconds since boot).
    double t0 = 0.0;
    bool first = true;
    for (const FlightEvent& e : events) {
        if (first || e.begin < t0) t0 = e.begin;
        first = false;
    }
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (const FlightEvent& e : events)
        out.push_back(TraceEvent{e.name, e.cat, e.rank, e.lane, e.item, e.bytes, e.begin - t0,
                                 e.end - t0});
    std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.begin < b.begin;
    });
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
    write_chrome_trace(path, out);
}

void install_signal_handlers()
{
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        std::signal(sig, fatal_signal_handler);
}

}  // namespace xct::telemetry::flight
