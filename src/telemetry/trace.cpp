#include "telemetry/trace.hpp"

#include <chrono>

namespace xct::telemetry {

namespace {

/// Same clock as pipeline::now_seconds (steady_clock in seconds), so
/// Timeline epochs translate directly onto the tracer's timebase.
double wall_now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

thread_local RankId t_current_rank{};

}  // namespace

RankId current_rank()
{
    return t_current_rank;
}

void set_current_rank(RankId rank)
{
    t_current_rank = rank;
}

void Tracer::enable()
{
    MutexLock lk(m_);
    events_.clear();
    lanes_.clear();
    epoch_ = wall_now();
    enabled_.store(true, std::memory_order_relaxed);
}

double Tracer::now() const
{
    return wall_now() - epoch_;
}

index_t Tracer::lane_locked()
{
    const auto id = std::this_thread::get_id();
    const auto it = lanes_.find(id);
    if (it != lanes_.end()) return it->second;
    const index_t lane = static_cast<index_t>(lanes_.size());
    lanes_.emplace(id, lane);
    return lane;
}

void Tracer::record(std::string name, std::string cat, double begin, double end, index_t item,
                    std::uint64_t bytes)
{
    if (!enabled()) return;
    MutexLock lk(m_);
    events_.push_back(TraceEvent{std::move(name), std::move(cat), current_rank(), lane_locked(),
                                 item, bytes, begin, end});
}

void Tracer::record_interval_abs(std::string name, std::string cat, double abs_begin,
                                 double abs_end, index_t item, std::uint64_t bytes)
{
    if (!enabled()) return;
    MutexLock lk(m_);
    events_.push_back(TraceEvent{std::move(name), std::move(cat), current_rank(), lane_locked(),
                                 item, bytes, abs_begin - epoch_, abs_end - epoch_});
}

std::vector<TraceEvent> Tracer::events() const
{
    MutexLock lk(m_);
    return events_;
}

std::size_t Tracer::event_count() const
{
    MutexLock lk(m_);
    return events_.size();
}

void Tracer::clear()
{
    MutexLock lk(m_);
    events_.clear();
    lanes_.clear();
}

Tracer& tracer()
{
    static Tracer t;
    return t;
}

}  // namespace xct::telemetry
