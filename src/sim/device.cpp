#include "sim/device.hpp"

#include <algorithm>
#include <cassert>

#include "core/names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::sim {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Mirror a transfer into the process telemetry: always-on byte/transfer
/// counters, plus (when tracing) a span whose duration is the *modelled*
/// link time, placed at the wall-clock instant of the call — the trace
/// shows T_H2D/T_D2H where they occur in the pipeline.
void telemetry_transfer(const char* dir, std::size_t bytes, double seconds)
{
    auto& reg = telemetry::registry();
    reg.counter(std::string(names::kMetricSimPrefix) + dir + ".bytes").add(bytes);
    reg.counter(std::string(names::kMetricSimPrefix) + dir + ".transfers").add(1);
    auto& tr = telemetry::tracer();
    if (tr.enabled()) {
        const double now = tr.now();
        tr.record(dir, names::kCatSim, now, now + seconds, -1, bytes);
    }
}
}

Device::Device(std::size_t capacity_bytes, double h2d_gbps, double d2h_gbps)
    : capacity_(capacity_bytes), h2d_gbps_(h2d_gbps), d2h_gbps_(d2h_gbps)
{
    require(capacity_bytes > 0, "Device: capacity must be positive");
    require(h2d_gbps > 0.0 && d2h_gbps > 0.0, "Device: bandwidths must be positive");
}

void Device::reset_stats()
{
    h2d_ = LinkStats{};
    d2h_ = LinkStats{};
}

void Device::allocate(std::size_t bytes)
{
    if (bytes > available()) throw DeviceOutOfMemory(bytes, available());
    used_ += bytes;
}

void Device::release(std::size_t bytes) noexcept
{
    assert(bytes <= used_);
    used_ -= std::min(bytes, used_);
}

void Device::account_h2d(std::size_t bytes)
{
    const double seconds = static_cast<double>(bytes) / (h2d_gbps_ * kGiB);
    h2d_.bytes += bytes;
    h2d_.transfers += 1;
    h2d_.seconds += seconds;
    telemetry_transfer("h2d", bytes, seconds);
}

void Device::account_d2h(std::size_t bytes)
{
    const double seconds = static_cast<double>(bytes) / (d2h_gbps_ * kGiB);
    d2h_.bytes += bytes;
    d2h_.transfers += 1;
    d2h_.seconds += seconds;
    telemetry_transfer("d2h", bytes, seconds);
}

DeviceBuffer::DeviceBuffer(Device& dev, index_t count) : dev_(&dev)
{
    require(count > 0, "DeviceBuffer: count must be positive");
    dev_->allocate(static_cast<std::size_t>(count) * sizeof(float));
    data_.resize(static_cast<std::size_t>(count), 0.0f);
}

DeviceBuffer::~DeviceBuffer()
{
    if (dev_ != nullptr) dev_->release(data_.size() * sizeof(float));
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& o) noexcept : dev_(o.dev_), data_(std::move(o.data_))
{
    o.dev_ = nullptr;
}

void DeviceBuffer::upload(std::span<const float> src, index_t offset)
{
    require(offset >= 0 && offset + static_cast<index_t>(src.size()) <= count(),
            "DeviceBuffer::upload: range out of bounds");
    // Producer-side digest of the host payload, once — retries re-copy
    // from the same (intact) source, so the expectation is stable.
    const integrity::digest_t src_digest =
        integrity::enabled() ? integrity::checksum_of<float>(src) : 0;
    dev_->transfer(names::kSiteSimH2d, [&] {
        std::copy(src.begin(), src.end(), data_.begin() + offset);
        const auto dst = std::span<float>(data_).subspan(static_cast<std::size_t>(offset),
                                                         src.size());
        faults::corrupt(names::kSiteSimH2d, std::as_writable_bytes(dst));
        integrity::verify_of<float>(names::kSiteSimH2d, dst, src_digest);
    });
    dev_->account_h2d(src.size() * sizeof(float));
}

void DeviceBuffer::download(std::span<float> dst, index_t offset) const
{
    require(offset >= 0 && offset + static_cast<index_t>(dst.size()) <= count(),
            "DeviceBuffer::download: range out of bounds");
    const auto src = std::span<const float>(data_).subspan(static_cast<std::size_t>(offset),
                                                           dst.size());
    const integrity::digest_t src_digest =
        integrity::enabled() ? integrity::checksum_of<float>(src) : 0;
    dev_->transfer(names::kSiteSimD2h, [&] {
        std::copy(src.begin(), src.end(), dst.begin());
        faults::corrupt(names::kSiteSimD2h, std::as_writable_bytes(dst));
        integrity::verify_of<float>(names::kSiteSimD2h, std::span<const float>(dst), src_digest);
    });
    dev_->account_d2h(dst.size() * sizeof(float));
}

void DeviceBuffer::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Texture3::Texture3(Device& dev, index_t width, index_t height, index_t depth)
    : dev_(&dev), width_(width), height_(height), depth_(depth)
{
    require(width > 0 && height > 0 && depth > 0, "Texture3: extents must be positive");
    dev_->allocate(static_cast<std::size_t>(width * height * depth) * sizeof(float));
    data_.resize(static_cast<std::size_t>(width * height * depth), 0.0f);
}

Texture3::~Texture3()
{
    if (dev_ != nullptr) dev_->release(data_.size() * sizeof(float));
}

Texture3::Texture3(Texture3&& o) noexcept
    : dev_(o.dev_), width_(o.width_), height_(o.height_), depth_(o.depth_), data_(std::move(o.data_))
{
    o.dev_ = nullptr;
}

void Texture3::copy_planes(std::span<const float> src, index_t depth_begin, index_t nplanes)
{
    copy_planes_wire(src, depth_begin, nplanes, src.size() * sizeof(float));
}

void Texture3::copy_planes_wire(std::span<const float> src, index_t depth_begin, index_t nplanes,
                                std::size_t wire_bytes)
{
    const index_t plane = width_ * height_;
    require(nplanes > 0 && depth_begin >= 0 && depth_begin + nplanes <= depth_,
            "Texture3::copy_planes: depth range out of bounds (wrapped copies must be split)");
    require(static_cast<index_t>(src.size()) == nplanes * plane,
            "Texture3::copy_planes: source size mismatch");
    const integrity::digest_t src_digest =
        integrity::enabled() ? integrity::checksum_of<float>(src) : 0;
    dev_->transfer(names::kSiteSimH2d, [&] {
        std::copy(src.begin(), src.end(), data_.begin() + depth_begin * plane);
        const auto dst = std::span<float>(data_).subspan(
            static_cast<std::size_t>(depth_begin * plane), src.size());
        faults::corrupt(names::kSiteSimH2d, std::as_writable_bytes(dst));
        integrity::verify_of<float>(names::kSiteSimH2d, dst, src_digest);
    });
    dev_->account_h2d(wire_bytes);
}

QuantizedTexture3::QuantizedTexture3(Device& dev, index_t width, index_t height, index_t depth,
                                     float lo, float hi)
    : dev_(&dev), width_(width), height_(height), depth_(depth), lo_(lo), hi_(hi)
{
    require(width > 0 && height > 0 && depth > 0, "QuantizedTexture3: extents must be positive");
    require(hi > lo, "QuantizedTexture3: empty quantisation range");
    dev_->allocate(static_cast<std::size_t>(width * height * depth));  // 1 byte per texel
    data_.resize(static_cast<std::size_t>(width * height * depth), 0);
}

QuantizedTexture3::~QuantizedTexture3()
{
    if (dev_ != nullptr) dev_->release(data_.size());
}

void QuantizedTexture3::copy_planes(std::span<const float> src, index_t depth_begin,
                                    index_t nplanes)
{
    const index_t plane = width_ * height_;
    require(nplanes > 0 && depth_begin >= 0 && depth_begin + nplanes <= depth_,
            "QuantizedTexture3::copy_planes: depth range out of bounds");
    require(static_cast<index_t>(src.size()) == nplanes * plane,
            "QuantizedTexture3::copy_planes: source size mismatch");
    dev_->transfer(names::kSiteSimH2d, [&] {
        const float scale = 255.0f / (hi_ - lo_);
        for (std::size_t i = 0; i < src.size(); ++i) {
            float t = (src[i] - lo_) * scale;
            t = t < 0.0f ? 0.0f : (t > 255.0f ? 255.0f : t);
            data_[static_cast<std::size_t>(depth_begin * plane) + i] =
                static_cast<unsigned char>(t + 0.5f);
        }
        // The stored payload is quantised, so the host fp32 digest cannot
        // apply; digest the texels as written, then run the corruption
        // point — transit-only coverage, like partial PFS reads.
        const auto dst = std::span<unsigned char>(data_).subspan(
            static_cast<std::size_t>(depth_begin * plane), src.size());
        const integrity::digest_t texel_digest =
            integrity::enabled() ? integrity::checksum_of<unsigned char>(dst) : 0;
        faults::corrupt(names::kSiteSimH2d, std::as_writable_bytes(dst));
        integrity::verify_of<unsigned char>(names::kSiteSimH2d, dst, texel_digest);
    });
    dev_->account_h2d(src.size() * sizeof(float));  // host payload is still fp32
}

}  // namespace xct::sim
