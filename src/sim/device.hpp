#pragma once
// Simulated accelerator.
//
// The paper's kernel runs on V100/A100 GPUs whose *capacity limits* (16/40
// GB) are what force the streaming, out-of-core design.  This module models
// exactly the properties the algorithm depends on:
//
//   * a hard device-memory budget — allocations beyond it throw
//     DeviceOutOfMemory (this is how the RTK-style baseline reproduces the
//     "✗" cells of Table 5);
//   * explicit host<->device transfers with byte/transfer/time accounting
//     (feeding T_H2D / T_D2H of the performance model, Sec. 5);
//   * a 3D texture with CUDA border semantics (clamped integer fetches)
//     and the circular depth addressing (`z % dimZ`, Listing 1 line 34)
//     that enables projection-row reuse across slabs.
//
// Computation itself executes on the CPU; numerics are identical to the
// CUDA path because the kernel only uses single-precision FMA arithmetic
// and manual bilinear interpolation (the paper deliberately avoids the
// 8-bit hardware texture interpolation, Sec. 4.3.1).
//
// Resilience: every host<->device transfer passes a fault-injection gate
// (sites "sim.h2d" / "sim.d2h"); when a RetryPolicy is attached via
// set_retry(), transient transfer faults are retried with bounded backoff
// — the ECC-retry / link-replay behaviour real GPUs provide in hardware.
// With --integrity on, each transfer also digests its source payload and
// verifies the device-side copy against it (DESIGN.md §3f): a bit flipped
// on the link (fault site kind=corrupt, or a real DMA error) raises
// IntegrityError inside the retried section, so the copy simply re-runs
// from the still-intact host buffer.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "faults/retry.hpp"
#include "integrity/integrity.hpp"

namespace xct::sim {

/// Thrown when an allocation would exceed the device's memory budget.
class DeviceOutOfMemory : public std::runtime_error {
public:
    DeviceOutOfMemory(std::size_t requested, std::size_t available)
        : std::runtime_error("device out of memory: requested " + std::to_string(requested) +
                             " bytes, available " + std::to_string(available)),
          requested_(requested), available_(available)
    {
    }
    std::size_t requested() const { return requested_; }
    std::size_t available() const { return available_; }

private:
    std::size_t requested_;
    std::size_t available_;
};

/// Accumulated statistics of one transfer direction.
struct LinkStats {
    std::uint64_t bytes = 0;
    std::uint64_t transfers = 0;
    double seconds = 0.0;  ///< modelled time at the link's bandwidth
};

/// One simulated accelerator.  Not thread-safe by design: each pipeline
/// rank owns its own device, mirroring one-GPU-per-rank (Eq. 11).
class Device {
public:
    /// `capacity_bytes` is the device-memory budget; bandwidths in GB/s
    /// model a PCIe 3.0 x16 link by default (Sec. 5 micro-benchmarks).
    explicit Device(std::size_t capacity_bytes, double h2d_gbps = 12.0, double d2h_gbps = 12.0);

    std::size_t capacity() const { return capacity_; }
    std::size_t used() const { return used_; }
    std::size_t available() const { return capacity_ - used_; }

    const LinkStats& h2d_stats() const { return h2d_; }
    const LinkStats& d2h_stats() const { return d2h_; }
    void reset_stats();

    /// Retry transient transfer faults under `policy` (nullopt — the
    /// default — fails loudly on the first fault).
    void set_retry(std::optional<faults::RetryPolicy> policy) { retry_ = std::move(policy); }

    // -- internal bookkeeping used by DeviceBuffer / Texture3 ---------------
    void allocate(std::size_t bytes);
    void release(std::size_t bytes) noexcept;
    void account_h2d(std::size_t bytes);
    void account_d2h(std::size_t bytes);

    /// Run one transfer `op` (the copy + corruption point + verify) under
    /// the fault gate: throw-class faults fire before the copy, and when a
    /// RetryPolicy is attached any TransientError — including an
    /// IntegrityError raised by op's own verify — re-runs the whole copy.
    template <typename F>
    void transfer(const char* site, F&& op)
    {
        auto attempt = [&] {
            faults::check(site);
            op();
        };
        if (retry_) {
            faults::with_retry(site, *retry_, attempt);
        } else {
            attempt();
        }
    }

private:
    std::size_t capacity_;
    std::size_t used_ = 0;
    double h2d_gbps_;
    double d2h_gbps_;
    LinkStats h2d_{};
    LinkStats d2h_{};
    std::optional<faults::RetryPolicy> retry_;
};

/// RAII linear device allocation of floats with explicit upload/download.
class DeviceBuffer {
public:
    DeviceBuffer(Device& dev, index_t count);
    ~DeviceBuffer();
    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;
    DeviceBuffer(DeviceBuffer&&) noexcept;
    DeviceBuffer& operator=(DeviceBuffer&&) = delete;

    index_t count() const { return static_cast<index_t>(data_.size()); }

    /// Host -> device copy into [offset, offset + src.size()); accounted.
    void upload(std::span<const float> src, index_t offset = 0);
    /// Device -> host copy from [offset, offset + dst.size()); accounted.
    void download(std::span<float> dst, index_t offset = 0) const;
    void fill(float v);

    /// Device-side view for kernels ("device pointer").  Does not account
    /// transfer traffic — kernels run "on the device".
    std::span<float> device_span() { return data_; }
    std::span<const float> device_span() const { return data_; }

private:
    Device* dev_;
    std::vector<float> data_;
};

/// 3D texture over float data with CUDA-like semantics:
///
///   * layout [depth][height][width], width fastest;
///   * fetch(x, y, z) clamps x to [0, width) and y to [0, height) (CUDA
///     "clamp" address mode) and wraps z circularly: z % depth
///     (the devPixel offset of Listing 1);
///   * planes are written with copy_planes(), the simulated cudaMemcpy3D.
///
/// In the reconstruction the axes are: x = detector column (u),
/// y = view index (s), z = detector row (v) relative to the streaming
/// origin — the depth dimension is the one the slab decomposition streams.
class Texture3 {
public:
    Texture3(Device& dev, index_t width, index_t height, index_t depth);
    ~Texture3();
    Texture3(const Texture3&) = delete;
    Texture3& operator=(const Texture3&) = delete;
    Texture3(Texture3&&) noexcept;
    Texture3& operator=(Texture3&&) = delete;

    index_t width() const { return width_; }
    index_t height() const { return height_; }
    index_t depth() const { return depth_; }

    /// Upload `nplanes` consecutive height*width planes starting at depth
    /// `depth_begin` (no wrapping here — Algorithm 3 splits wrapped copies
    /// into two calls).  `src` holds the planes contiguously.
    void copy_planes(std::span<const float> src, index_t depth_begin, index_t nplanes);

    /// copy_planes with explicit link accounting: the q8 band transport
    /// ships `wire_bytes` over the host->device hop for these planes (one
    /// byte per texel plus a header share), not the fp32 texel bytes the
    /// default path bills.  Fault gate / digest / verify structure is
    /// identical to copy_planes — only account_h2d's argument differs.
    void copy_planes_wire(std::span<const float> src, index_t depth_begin, index_t nplanes,
                          std::size_t wire_bytes);

    /// Integer fetch with clamp on x/y and circular z (see class comment).
    float fetch(index_t x, index_t y, index_t z) const
    {
        x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
        y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
        index_t zz = z % depth_;
        if (zz < 0) zz += depth_;
        const index_t flat = (zz * height_ + y) * width_ + x;
        XCT_CHECK_BOUNDS(flat >= 0 && flat < static_cast<index_t>(data_.size()),
                         "Texture3::fetch");
        return data_[static_cast<std::size_t>(flat)];
    }

    /// Raw device-side view for the vectorised kernel's gathers (flat
    /// layout [depth][height][width], width fastest).  Callers own the
    /// clamp/wrap arithmetic fetch() normally provides — the kernel masks
    /// and clamps indices before gathering (see backproj/kernel.cpp).
    std::span<const float> device_span() const { return data_; }

private:
    Device* dev_;
    index_t width_, height_, depth_;
    std::vector<float> data_;
};

/// 8-bit quantised 3D texture modelling CUDA's *hardware* texture path:
/// storage as uint8 against a fixed [lo, hi] range, dequantised on fetch.
/// The paper rejects this mode — hardware bilinear interpolation works at
/// 8-bit precision, which is insufficient for high-resolution volumes
/// (Sec. 4.3.1) — and the ablation bench quantifies why.  Same geometry
/// semantics as Texture3 (clamp x/y, circular z).
class QuantizedTexture3 {
public:
    /// `lo`/`hi` set the quantisation range (values clamp to it).
    QuantizedTexture3(Device& dev, index_t width, index_t height, index_t depth, float lo,
                      float hi);
    ~QuantizedTexture3();
    QuantizedTexture3(const QuantizedTexture3&) = delete;
    QuantizedTexture3& operator=(const QuantizedTexture3&) = delete;

    index_t width() const { return width_; }
    index_t height() const { return height_; }
    index_t depth() const { return depth_; }

    /// Quantise and upload planes (same contract as Texture3::copy_planes).
    void copy_planes(std::span<const float> src, index_t depth_begin, index_t nplanes);

    /// Dequantised fetch with Texture3's addressing semantics.
    float fetch(index_t x, index_t y, index_t z) const
    {
        x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
        y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
        index_t zz = z % depth_;
        if (zz < 0) zz += depth_;
        const index_t flat = (zz * height_ + y) * width_ + x;
        XCT_CHECK_BOUNDS(flat >= 0 && flat < static_cast<index_t>(data_.size()),
                         "QuantizedTexture3::fetch");
        const unsigned char q = data_[static_cast<std::size_t>(flat)];
        return lo_ + static_cast<float>(q) * (hi_ - lo_) / 255.0f;
    }

private:
    Device* dev_;
    index_t width_, height_, depth_;
    float lo_, hi_;
    std::vector<unsigned char> data_;
};

}  // namespace xct::sim
