#pragma once
// Seed-deterministic mixed-workload soak schedule (DESIGN.md §3h).
//
// A soak run drives a simulated fleet of ranks through many concurrent
// reconstruction jobs whose shapes are drawn from the paper's evaluation
// datasets (Sec. 6.1) at varying N_g / N_r / N_c, with corrupt / stall /
// dropout faults active on a seed-derived subset of jobs.  Everything
// here is a pure function of (seed, epoch, job index): two runs with the
// same seed produce byte-identical schedules, so the soak invariants can
// be replay-tested in ctest (tests/test_soak.cpp) and regressions bisect
// to one seed.
//
// Fault sites are chosen *distinct per job* because a FaultPlan keys
// specs by site; the concrete PlannedFault list and the FaultPlan built
// from it coincide by construction, which is what lets the event tier
// replay every planned injection through the real faults:: engine and
// assert injected == detected per site against the real telemetry
// counters rather than against its own bookkeeping.

#include <cstdint>
#include <string>
#include <vector>

#include "core/decompose.hpp"
#include "faults/fault.hpp"

namespace xct::soak {

/// The four tomobank evaluation datasets job shapes are drawn from
/// (tomo_00027..tomo_00030 — the Sec. 6.1 sets with Table-4 calibration
/// offsets; the two micro-CT sets are shape outliers kept for benches).
const std::vector<std::string>& evaluation_datasets();

/// The corrupt-able fault sites with an integrity.detected.<site> twin —
/// the set the injected == detected invariant quantifies over.
const std::vector<const char*>& corrupt_sites();

/// One concrete injection the event tier replays through the fault
/// engine (corrupt) or models analytically (stall, dropout).
struct PlannedFault {
    std::string site;  ///< names::kSite* constant
    faults::FaultKind kind = faults::FaultKind::Corrupt;
    RankId rank{};         ///< job-local rank the spec is pinned to
    index_t batch = 0;     ///< batch whose stage absorbs the recovery delay
    double delay_s = 0.0;  ///< stall length / modelled takeover cost
};

/// One job of the soak schedule.
struct JobSpec {
    JobId id{};         ///< global job index (stable across epochs)
    index_t epoch = 0;  ///< epoch this job belongs to
    std::string dataset;
    double scale = 64.0;  ///< resolution divisor fed to Dataset::scaled
    GroupLayout layout;   ///< N_g groups x N_r ranks
    index_t batches = 8;  ///< N_c
    std::uint64_t seed = 1;  ///< fault-engine job scope + plan seed
    std::vector<PlannedFault> faults;
    bool dropout = false;    ///< one rank drops out (degraded-done path)
    RankId dropout_rank{};   ///< job-local rank that dies

    index_t nranks() const { return layout.nranks(); }
    /// Concrete FaultPlan: one spec per planned fault's (distinct) site,
    /// pinned to its rank, firing on the first call.
    faults::FaultPlan plan() const;
};

/// Schedule generation knobs (the xct_soak CLI surface).
struct ScheduleConfig {
    index_t fleet_ranks = 64;    ///< simulated fleet width
    index_t epochs = 1;          ///< schedule repetitions with fresh seeds
    index_t jobs_per_epoch = 0;  ///< 0: fleet_ranks / 8, floor 4
    std::uint64_t seed = 1;
    double fault_rate = 0.6;      ///< fraction of jobs carrying faults
    double stall_delay_s = 0.05;  ///< modelled stall length (event tier)
};

/// The full deterministic schedule, epoch-major and FIFO-ordered.
std::vector<JobSpec> make_schedule(const ScheduleConfig& cfg);

}  // namespace xct::soak
