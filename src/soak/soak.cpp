#include "soak/soak.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>

#include "autotune/calibrate.hpp"
#include "autotune/planner.hpp"
#include "core/names.hpp"
#include "integrity/integrity.hpp"
#include "io/datasets.hpp"
#include "phantom/shepp_logan.hpp"
#include "recon/distributed.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::soak {
namespace {

using clock_t_ = std::chrono::steady_clock;

/// Pipeline stage (perfmodel::SimFault numbering) a fault site's recovery
/// delay lands on.
index_t stage_of(const std::string& site)
{
    if (site == names::kSiteSourceLoad || site == names::kSitePfsLoad ||
        site == names::kSiteRankStall)
        return 0;  // load
    if (site == names::kSiteSimH2d || site == names::kSiteSimD2h ||
        site == names::kSiteBandDecode)
        return 2;  // bp owns transfers and band decode
    if (site == names::kSiteMinimpiReduceSum) return 3;                      // reduce
    if (site == names::kSitePfsStore) return 4;                              // store
    return 0;
}

/// Service time of `stage` at batch `b` — the cost of re-executing it
/// once after a detected corruption.
double stage_service(const std::vector<perfmodel::BatchTimes>& bt, index_t stage, index_t batch)
{
    const auto& t = bt[static_cast<std::size_t>(
        std::clamp<index_t>(batch, 0, static_cast<index_t>(bt.size()) - 1))];
    switch (stage) {
        case 0: return t.load;
        case 1: return t.filter;
        case 2: return t.h2d + t.bp + t.d2h;
        case 3: return t.reduce;
        default: return t.store;
    }
}

/// Deterministic sentinel payload for the event-tier corruption replay.
void fill_sentinel(std::vector<float>& buf, JobId job_id, std::size_t salt)
{
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<float>(
                     (static_cast<std::size_t>(job_id.value()) * 131u + salt * 17u + i) % 1021u) *
                 0.5f;
}

std::uint64_t counter_value(const std::string& name)
{
    return telemetry::registry().counter(name).value();
}

/// Replay one job's planned corruptions through the real fault engine and
/// digest verification: install the plan under the job's scope, fire each
/// spec on a sentinel buffer, catch the IntegrityError, re-fetch, verify
/// clean.  Returns false when any step deviates (the job is then wedged).
bool replay_corruptions(const JobSpec& job, index_t* injected, index_t* detected)
{
    faults::ScopedJob scope(job.seed);
    faults::ScopedPlan install(job.plan());
    integrity::ScopedEnable verify_on(true);
    bool ok = true;
    std::vector<float> buf(256);
    for (std::size_t fi = 0; fi < job.faults.size(); ++fi) {
        const PlannedFault& f = job.faults[fi];
        if (f.kind != faults::FaultKind::Corrupt) continue;
        telemetry::set_current_rank(f.rank);
        fill_sentinel(buf, job.id, fi);
        const auto bytes = std::as_writable_bytes(std::span<float>(buf));
        const integrity::digest_t digest =
            integrity::checksum(std::span<const std::byte>(bytes.data(), bytes.size()));
        const index_t flips = faults::corrupt(f.site.c_str(), bytes);
        if (flips <= 0) {
            ok = false;  // the plan did not fire where the schedule said
            continue;
        }
        ++*injected;
        bool caught = false;
        try {
            integrity::verify(f.site.c_str(), std::span<const std::byte>(bytes.data(),
                                                                         bytes.size()),
                              digest);
        } catch (const integrity::IntegrityError&) {
            caught = true;
        }
        if (!caught) {
            ok = false;  // silent corruption escaped the digest check
            continue;
        }
        ++*detected;
        // Recovery: re-fetch the clean payload and verify it passes.
        fill_sentinel(buf, job.id, fi);
        try {
            integrity::verify(f.site.c_str(), std::span<const std::byte>(bytes.data(),
                                                                         bytes.size()),
                              digest);
        } catch (const integrity::IntegrityError&) {
            ok = false;  // retry did not converge: the job is wedged
        }
    }
    telemetry::set_current_rank(RankId{0});
    return ok;
}

bool bitwise_equal(const Volume& a, const Volume& b)
{
    const auto sa = a.span();
    const auto sb = b.span();
    return sa.size() == sb.size() &&
           std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(float)) == 0;
}

/// The live tier: one clean and one chaos-faulted reconstruct_distributed
/// run of a small evaluation-dataset job on real minimpi pipelines;
/// returns bitwise equality of the recovered volume.  When `cal` is
/// non-null, the clean run's measured per-rank stage times are fed back
/// into the calibrator — the substrate-drift loop of DESIGN.md §3j.
bool run_live_job(const SoakConfig& cfg, std::uint64_t seed, double* wall_s,
                  autotune::Calibrator* cal)
{
    const io::Dataset ds =
        io::dataset_by_name(
              evaluation_datasets()[static_cast<std::size_t>(seed % evaluation_datasets().size())])
            .scaled(64.0)
            .with_volume(28);
    const CbctGeometry& g = ds.geometry;
    const auto ph = phantom::shepp_logan_3d(g.dx * 10.0);
    recon::DistributedConfig dcfg;
    dcfg.geometry = g;
    dcfg.layout = GroupLayout{2, 2};
    dcfg.batches = 4;
    dcfg.device_capacity = 256u << 20;
    const auto factory = [&](RankId) { return std::make_unique<recon::PhantomSource>(ph, g); };

    const auto t0 = clock_t_::now();
    const recon::DistributedResult clean = recon::reconstruct_distributed(dcfg, factory);

    if (cal) {
        perfmodel::RunConfig rc;
        rc.geometry = g;
        rc.layout = dcfg.layout;
        rc.batches = dcfg.batches;
        std::vector<autotune::MeasuredRank> measured;
        measured.reserve(clean.ranks.size());
        for (std::size_t i = 0; i < clean.ranks.size(); ++i) {
            const recon::RankStats& rs = clean.ranks[i];
            autotune::MeasuredRank mr;
            mr.rank_index = static_cast<index_t>(i);
            mr.load_s = rs.t_load;
            mr.filter_s = rs.t_filter;
            mr.bp_s = rs.t_bp;
            mr.h2d_bytes = rs.h2d.bytes;
            mr.h2d_s = rs.h2d.seconds;
            mr.d2h_bytes = rs.d2h.bytes;
            mr.d2h_s = rs.d2h.seconds;
            measured.push_back(mr);
        }
        cal->observe_run(rc, measured);
    }

    // The chaos twin: one corruption on each of the three bulk-movement
    // classes (pinned to live ranks 0..2 so the stalled rank 3, declared
    // dead by the health probe, cannot swallow a planned injection), plus
    // a stall past the watchdog deadline that the degraded reduce absorbs.
    faults::ScopedJob scope(seed | 1ull);
    faults::FaultPlan plan(seed | 1ull);
    faults::FaultSpec corrupt0;
    corrupt0.after = 2;
    corrupt0.count = 1;
    corrupt0.rank = RankId{0};
    corrupt0.kind = faults::FaultKind::Corrupt;
    plan.add(names::kSiteSourceLoad, corrupt0);
    faults::FaultSpec corrupt1 = corrupt0;
    corrupt1.after = 3;
    corrupt1.rank = RankId{1};
    plan.add(names::kSiteSimH2d, corrupt1);
    faults::FaultSpec corrupt2 = corrupt0;
    corrupt2.after = 0;
    corrupt2.rank = RankId{2};
    plan.add(names::kSiteMinimpiReduceSum, corrupt2);
    faults::FaultSpec stall;
    stall.after = 0;
    stall.count = 1;
    stall.rank = RankId{3};
    stall.kind = faults::FaultKind::Stall;
    stall.stall_s = cfg.live_stall_delay_s;
    plan.add(names::kSiteRankStall, stall);

    faults::ScopedPlan install(std::move(plan));
    integrity::ScopedEnable verify_on(true);
    recon::DistributedConfig chaos = dcfg;
    chaos.retry.emplace();
    chaos.retry->max_attempts = 6;
    chaos.degraded_reduce = true;
    chaos.watchdog_timeout_s = cfg.live_watchdog_timeout_s;
    const recon::DistributedResult faulted = recon::reconstruct_distributed(chaos, factory);
    *wall_s += std::chrono::duration<double>(clock_t_::now() - t0).count();
    return bitwise_equal(clean.volume, faulted.volume);
}

/// Nearest-rank-with-interpolation quantile of a sorted vector.
double sorted_quantile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

SoakSummary run(const SoakConfig& cfg)
{
    const auto harness_t0 = clock_t_::now();
    SoakSummary s;
    s.fleet_ranks = cfg.schedule.fleet_ranks;
    s.epochs = cfg.schedule.epochs;

    // Per-site twin counters are measured as registry deltas so both the
    // event replay and the live tier land in the same books.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> before;
    for (const char* site : corrupt_sites())
        before.emplace_back(
            counter_value(std::string(names::kMetricFaultsInjectedPrefix) + site),
            counter_value(std::string(names::kMetricIntegrityDetectedPrefix) + site));

    const std::vector<JobSpec> schedule = make_schedule(cfg.schedule);
    auto& reg = telemetry::registry();
    auto& latency_hist = reg.histogram(names::kMetricSoakLatencySeconds,
                                       telemetry::exp_bounds(1e-6, 2.0, 48));

    // Greedy fleet placement: each FIFO job takes the nranks
    // earliest-free ranks; virtual time, fully deterministic.
    std::vector<double> free_at(static_cast<std::size_t>(cfg.schedule.fleet_ranks), 0.0);
    std::vector<std::size_t> order(free_at.size());
    std::vector<double> latencies, ratios;
    latencies.reserve(schedule.size());
    ratios.reserve(schedule.size());

    for (const JobSpec& job : schedule) {
        JobResult jr;
        jr.id = job.id;

        const io::Dataset ds = io::dataset_by_name(job.dataset).scaled(job.scale);
        perfmodel::RunConfig rc;
        rc.geometry = ds.geometry;
        rc.layout = job.layout;
        rc.batches = job.batches;
        index_t ranks_used = job.nranks();
        index_t queue_depth = cfg.queue_capacity;
        if (cfg.autotune) {
            // Plan on the *fixed* event-tier machine so the schedule stays
            // seed-deterministic; the job's own shape rides along as
            // must_score, so the pick is never slower than it.
            autotune::JobShape shape;
            shape.geometry = ds.geometry;
            shape.rank_budget = job.nranks();
            shape.device_capacity = cfg.device_capacity;
            const autotune::Candidate fixed{job.layout, job.batches, cfg.queue_capacity};
            try {
                const autotune::Plan plan = autotune::plan_job(shape, cfg.machine, {fixed});
                rc.layout = plan.layout;
                rc.batches = plan.batches;
                ranks_used = plan.layout.nranks();
                queue_depth = plan.queue_depth;
            } catch (const std::invalid_argument&) {
                // Nothing fits the device budget — keep the fixed shape,
                // exactly as a non-autotuned fleet would.
            }
        }
        const auto bt = perfmodel::batch_times(rc, cfg.machine);

        // Fold every planned fault into event-sim perturbations.
        std::vector<perfmodel::SimFault> events;
        double fault_delay = 0.0;
        for (const PlannedFault& f : job.faults) {
            const index_t stage = stage_of(f.site);
            double delay = 0.0;
            if (f.kind == faults::FaultKind::Corrupt) {
                delay = stage_service(bt, stage, f.batch);  // one re-execution
            } else if (f.kind == faults::FaultKind::Stall) {
                delay = f.delay_s;
                ++s.stall_injected;
                reg.counter(names::kMetricSoakStallInjected).add(1);
                if (f.delay_s > cfg.watchdog_timeout_s) {
                    ++s.stall_detected;
                    reg.counter(names::kMetricSoakStallDetected).add(1);
                }
            }
            if (delay > 0.0) {
                events.push_back(perfmodel::SimFault{stage, f.batch, delay});
                fault_delay += delay;
            }
        }
        if (job.dropout) {
            // Takeover: one survivor replays the dead rank's whole GPU
            // share on top of its own (the PR 2 degraded reduce).
            for (std::size_t b = 0; b < bt.size(); ++b) {
                const double delay = stage_service(bt, 2, static_cast<index_t>(b));
                events.push_back(perfmodel::SimFault{2, static_cast<index_t>(b), delay});
                fault_delay += delay;
            }
            jr.state = JobState::DegradedDone;
        }

        // The injection / detection / recovery machinery runs for real.
        if (!replay_corruptions(job, &jr.injected, &jr.detected)) jr.state = JobState::Wedged;

        jr.latency_s = perfmodel::simulate_faulted(rc, cfg.machine, events, queue_depth)
                           .runtime;
        jr.bound_s = perfmodel::tail_latency_bound(rc, cfg.machine, fault_delay, cfg.p99_slack,
                                                   queue_depth);

        // Place the job on the earliest-free ranks of the fleet (the
        // planner may have shrunk the job below its scheduled rank ask).
        const std::size_t k = static_cast<std::size_t>(ranks_used);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                         [&](std::size_t a, std::size_t b) { return free_at[a] < free_at[b]; });
        jr.start_s = free_at[order[k - 1]];
        jr.finish_s = jr.start_s + jr.latency_s;
        for (std::size_t i = 0; i < k; ++i) free_at[order[i]] = jr.finish_s;
        s.makespan_s = std::max(s.makespan_s, jr.finish_s);

        latency_hist.observe(jr.latency_s);
        latencies.push_back(jr.latency_s);
        ratios.push_back(jr.bound_s > 0.0 ? jr.latency_s / jr.bound_s : 0.0);
        reg.counter(names::kMetricSoakJobs).add(1);
        if (jr.state == JobState::DegradedDone)
            reg.counter(names::kMetricSoakJobsDegraded).add(1);
        if (jr.state == JobState::Wedged) reg.counter(names::kMetricSoakJobsWedged).add(1);
        s.degraded += jr.state == JobState::DegradedDone ? 1 : 0;
        s.wedged += jr.state == JobState::Wedged ? 1 : 0;
        s.job_results.push_back(std::move(jr));
    }
    s.jobs = static_cast<index_t>(schedule.size());
    s.jobs_per_hour =
        s.makespan_s > 0.0 ? static_cast<double>(s.jobs) / (s.makespan_s / 3600.0) : 0.0;

    std::sort(latencies.begin(), latencies.end());
    std::sort(ratios.begin(), ratios.end());
    s.latency_p50_s = sorted_quantile(latencies, 0.50);
    s.latency_p95_s = sorted_quantile(latencies, 0.95);
    s.latency_p99_s = sorted_quantile(latencies, 0.99);
    s.p99_vs_predicted = sorted_quantile(ratios, 0.99);

    s.autotuned = cfg.autotune;

    // Live tier: the anchor that the modelled recovery above corresponds
    // to real pipelines surviving the same fault classes.
    autotune::Calibrator cal;
    if (cfg.live) {
        s.live_jobs = 1;
        s.live_bitwise_identical = run_live_job(cfg, cfg.schedule.seed, &s.live_wall_s,
                                                cfg.calibrate ? &cal : nullptr);
    } else {
        s.live_bitwise_identical = true;  // vacuous: nothing to compare
    }
    if (cfg.calibrate && cal.samples() > 0) {
        s.calibrated = true;
        s.calibrated_machine = cal.fit(cfg.machine);
    }

    // Settle the per-site twin counters.
    s.sites.reserve(corrupt_sites().size());
    s.sites_match = true;
    for (std::size_t i = 0; i < corrupt_sites().size(); ++i) {
        SiteCounts sc;
        sc.site = corrupt_sites()[i];
        sc.injected =
            counter_value(std::string(names::kMetricFaultsInjectedPrefix) + sc.site) -
            before[i].first;
        sc.detected =
            counter_value(std::string(names::kMetricIntegrityDetectedPrefix) + sc.site) -
            before[i].second;
        s.injected += sc.injected;
        s.detected += sc.detected;
        if (sc.injected != sc.detected) s.sites_match = false;
        s.sites.push_back(std::move(sc));
    }

    s.harness_wall_s = std::chrono::duration<double>(clock_t_::now() - harness_t0).count();
    return s;
}

std::vector<std::string> check_invariants(const SoakSummary& s)
{
    std::vector<std::string> violations;
    if (!s.sites_match) {
        for (const SiteCounts& sc : s.sites)
            if (sc.injected != sc.detected)
                violations.push_back("detection: site " + sc.site + " injected " +
                                     std::to_string(sc.injected) + " != detected " +
                                     std::to_string(sc.detected));
    }
    if (s.injected == 0)
        violations.push_back("detection: schedule injected no corruptions (vacuous soak)");
    if (s.wedged != 0)
        violations.push_back("liveness: " + std::to_string(s.wedged) +
                             " job(s) wedged (did not reach done/degraded-done)");
    if (s.live_jobs > 0 && !s.live_bitwise_identical)
        violations.push_back("fidelity: live-tier recovered volume differs from the clean run");
    if (s.p99_vs_predicted > 1.0)
        violations.push_back("tail: p99 latency-vs-bound ratio " + num(s.p99_vs_predicted) +
                             " exceeds 1.0 (perfmodel bound)");
    return violations;
}

std::string deterministic_json(const SoakSummary& s)
{
    std::ostringstream os;
    os << "\"soak\": {";
    os << "\"fleet_ranks\": " << s.fleet_ranks;
    os << ", \"epochs\": " << s.epochs;
    os << ", \"jobs\": " << s.jobs;
    os << ", \"degraded_jobs\": " << s.degraded;
    os << ", \"wedged_jobs\": " << s.wedged;
    os << ", \"injected\": " << s.injected;
    os << ", \"detected\": " << s.detected;
    os << ", \"detection_ratio\": "
       << (s.injected > 0 ? num(static_cast<double>(s.detected) /
                                static_cast<double>(s.injected))
                          : "0");
    os << ", \"sites_match\": " << (s.sites_match ? 1 : 0);
    os << ", \"stall_injected\": " << s.stall_injected;
    os << ", \"stall_detected\": " << s.stall_detected;
    os << ", \"makespan_hours\": " << num(s.makespan_s / 3600.0);
    os << ", \"jobs_per_hour\": " << num(s.jobs_per_hour);
    os << ", \"latency_p50_s\": " << num(s.latency_p50_s);
    os << ", \"latency_p95_s\": " << num(s.latency_p95_s);
    os << ", \"latency_p99_s\": " << num(s.latency_p99_s);
    os << ", \"p99_vs_predicted\": " << num(s.p99_vs_predicted);
    os << ", \"live_jobs\": " << s.live_jobs;
    os << ", \"live_bitwise_identical\": " << (s.live_bitwise_identical ? 1 : 0);
    os << ", \"autotuned\": " << (s.autotuned ? 1 : 0);
    os << "}";
    return os.str();
}

void write_bench_json(const std::string& path, const SoakSummary& s, bool fresh)
{
    // Same merge discipline as bench/bench_common.hpp write_json_section
    // (soak sits in src/ and cannot include the bench tree).
    std::string wall = "\"soak_wall\": {\"harness_seconds\": " + num(s.harness_wall_s) +
                       ", \"live_seconds\": " + num(s.live_wall_s) + "}";
    if (s.calibrated) {
        // Live-tier-fitted machine params are host readings, so they sit
        // with the wall-clock books, outside the replay compare.
        const perfmodel::MachineParams& m = s.calibrated_machine;
        wall += ",\n  \"soak_machine\": {\"bw_load_gbps\": " + num(m.bw_load_gbps) +
                ", \"bw_store_gbps\": " + num(m.bw_store_gbps) +
                ", \"th_flt_geps\": " + num(m.th_flt_geps) +
                ", \"th_bp_gups\": " + num(m.th_bp_gups) +
                ", \"th_reduce_gbps\": " + num(m.th_reduce_gbps) +
                ", \"bw_h2d_gbps\": " + num(m.bw_h2d_gbps) +
                ", \"bw_d2h_gbps\": " + num(m.bw_d2h_gbps) + "}";
    }
    const std::string body = deterministic_json(s) + ",\n  " + wall;

    std::string content;
    if (!fresh) {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        content = ss.str();
    }
    const std::size_t first = content.find_first_not_of(" \t\r\n");
    const std::size_t last = content.find_last_not_of(" \t\r\n");
    if (first == std::string::npos || content[first] != '{' || content[last] != '}') {
        content = "{\n  " + body + "\n}\n";
    } else {
        const bool has_keys = content.find_first_not_of(" \t\r\n", first + 1) != last;
        content.insert(last, std::string(has_keys ? ",\n  " : "\n  ") + body + "\n");
    }
    std::ofstream out(path, std::ios::trunc);
    out << content;
}

}  // namespace xct::soak
