#pragma once
// Fleet soak harness (DESIGN.md §3h): thousands of simulated ranks under
// a mixed reconstruction workload with corrupt / stall / dropout fault
// plans active, asserting the fleet invariants as machine-checkable
// outcomes after every run:
//
//   1. detection  — faults.injected.<site> == integrity.detected.<site>
//      for every corrupt-class site the schedule touched (real telemetry
//      counters, real fault engine, real digest verification);
//   2. liveness   — zero wedged jobs: every started job reaches done or
//      degraded-done;
//   3. fidelity   — the live tier's faulted reconstruction is bitwise
//      identical to its unfaulted twin;
//   4. tail       — per-job event-sim latency stays within the
//      perfmodel-derived bound (tail_latency_bound: slack x clean sim
//      runtime + injected recovery delay), summarised as the
//      p99-of-ratios metric `soak.p99_vs_predicted` <= 1.
//
// Two tiers share one schedule (schedule.hpp):
//
//   * the *event tier* scales to 10k ranks by layering each job's faults
//     onto perfmodel::simulate_faulted — injection decisions and
//     detection run through the real faults:: / integrity:: machinery on
//     sentinel buffers, only the data volume is virtual;
//   * the *live tier* runs a small faulted reconstruct_distributed job on
//     real minimpi pipelines (retry + watchdog + degraded reduce) and
//     bit-compares the recovered volume, anchoring the event tier's
//     modelling in real recovery code.
//
// Everything is deterministic in the seed: two runs produce identical
// schedules, identical per-site counters and an identical `soak` section
// in BENCH_soak.json (wall-clock readings live in a separate `soak_wall`
// section so replay comparison can ignore them).

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/model.hpp"
#include "soak/schedule.hpp"

namespace xct::soak {

struct SoakConfig {
    ScheduleConfig schedule;
    index_t queue_capacity = 2;  ///< event-sim inter-stage FIFO depth
    double p99_slack = 1.5;      ///< tail bound: slack x clean sim runtime
    /// Event-tier watchdog model: a stall longer than this is detected
    /// (its latency still counts either way).
    double watchdog_timeout_s = 0.02;
    bool live = true;  ///< run the live minimpi tier
    /// The real watchdog deadline of the live job — loose enough that a
    /// busy CI host cannot trip it on clean stages, tight against the
    /// injected stall below.
    double live_watchdog_timeout_s = 0.2;
    double live_stall_delay_s = 0.6;  ///< stall injected into the live job
    /// Machine parameters for the event tier.  Fixed (never measured) so
    /// the virtual-time summary is reproducible across hosts.
    perfmodel::MachineParams machine = perfmodel::MachineParams::abci_v100();
    /// Plan each job's decomposition with autotune::plan_job instead of
    /// taking the schedule's fixed layout/batches.  The fixed choice is
    /// always scored too (must_score), so the planned fleet throughput is
    /// never worse.  Deterministic: planning prices candidates on
    /// `machine` above, never on measurements.
    bool autotune = false;
    /// Per-rank device budget the planner's feasibility check uses.
    std::size_t device_capacity = 512u << 20;
    /// Fit MachineParams from the live tier's measured per-rank stage
    /// times (autotune::Calibrator) and report them in the wall-clock
    /// section — never in the replay-compared `soak` section.
    bool calibrate = false;
};

/// Terminal state of one job; the harness guarantees there is no fourth
/// "still running" outcome — that is invariant 2.
enum class JobState { Done, DegradedDone, Wedged };

struct JobResult {
    JobId id{};
    JobState state = JobState::Done;
    double start_s = 0.0;    ///< virtual fleet time the job's ranks freed up
    double finish_s = 0.0;   ///< start + latency
    double latency_s = 0.0;  ///< event-sim service latency (faults included)
    double bound_s = 0.0;    ///< perfmodel tail bound for this job
    index_t injected = 0;    ///< corruptions replayed through the engine
    index_t detected = 0;    ///< of those, caught by integrity::verify
};

/// Per-site injected-vs-detected twin counters (registry deltas).
struct SiteCounts {
    std::string site;
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
};

struct SoakSummary {
    // Deterministic (seed-reproducible) fields — the `soak` JSON section.
    index_t fleet_ranks = 0;
    index_t epochs = 0;
    index_t jobs = 0;
    index_t degraded = 0;
    index_t wedged = 0;
    std::uint64_t injected = 0;  ///< corrupt-site total (both tiers)
    std::uint64_t detected = 0;
    std::uint64_t stall_injected = 0;
    std::uint64_t stall_detected = 0;
    bool sites_match = false;  ///< injected == detected per site
    std::vector<SiteCounts> sites;
    double makespan_s = 0.0;      ///< virtual fleet time to drain the schedule
    double jobs_per_hour = 0.0;   ///< jobs / virtual makespan
    double latency_p50_s = 0.0;   ///< event-sim job latency percentiles
    double latency_p95_s = 0.0;
    double latency_p99_s = 0.0;
    double p99_vs_predicted = 0.0;  ///< p99 of latency/bound ratios (<= 1)
    index_t live_jobs = 0;
    bool live_bitwise_identical = false;  ///< true when live tier off
    bool autotuned = false;               ///< jobs ran on planner-chosen shapes
    std::vector<JobResult> job_results;

    // Wall-clock fields — the `soak_wall` JSON section, excluded from
    // replay comparison.
    double harness_wall_s = 0.0;
    double live_wall_s = 0.0;
    /// Machine parameters fitted from the live tier's measured rank stats
    /// (SoakConfig::calibrate); host-dependent, so they live in the
    /// wall-clock books (`soak_machine` section).
    bool calibrated = false;
    perfmodel::MachineParams calibrated_machine{};
};

/// Drive the schedule through both tiers and aggregate the summary.
SoakSummary run(const SoakConfig& cfg);

/// The four fleet invariants; one human-readable violation per breach
/// (empty = all green).
std::vector<std::string> check_invariants(const SoakSummary& s);

/// Serialise the summary as a BENCH-style flat JSON document: the
/// deterministic `soak` section plus the wall-clock `soak_wall` section.
/// `fresh` truncates the file; otherwise the sections merge into an
/// existing BENCH document (bench-trend appends to BENCH_pr4.json).
void write_bench_json(const std::string& path, const SoakSummary& s, bool fresh = true);

/// The deterministic `soak` section body alone (replay tests compare it).
std::string deterministic_json(const SoakSummary& s);

}  // namespace xct::soak
