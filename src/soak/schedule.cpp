#include "soak/schedule.hpp"

#include <algorithm>

#include "core/names.hpp"

namespace xct::soak {
namespace {

/// splitmix64 — the same mixer the fault engine's Bernoulli triggers use,
/// so schedule decisions inherit its avalanche properties.
std::uint64_t splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Deterministic decision stream: draw `salt`-th value of job (seed,
/// epoch, job).  Every schedule choice gets its own salt so adding a new
/// decision never perturbs the existing ones.
std::uint64_t draw(std::uint64_t seed, index_t epoch, JobId job, std::uint64_t salt)
{
    return splitmix64(splitmix64(seed) ^ splitmix64(static_cast<std::uint64_t>(epoch) + 1) ^
                      splitmix64(static_cast<std::uint64_t>(job.value()) *
                                 0x9e3779b97f4a7c15ull) ^
                      splitmix64(salt + 0x517cc1b727220a95ull));
}

double uniform(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const std::vector<std::string>& evaluation_datasets()
{
    static const std::vector<std::string> four = {"tomo_00027", "tomo_00028", "tomo_00029",
                                                  "tomo_00030"};
    return four;
}

const std::vector<const char*>& corrupt_sites()
{
    static const std::vector<const char*> sites = {
        names::kSiteSourceLoad, names::kSitePfsLoad,  names::kSitePfsStore,
        names::kSiteSimH2d,     names::kSiteSimD2h,   names::kSiteMinimpiReduceSum,
        names::kSiteBandDecode,
    };
    return sites;
}

faults::FaultPlan JobSpec::plan() const
{
    faults::FaultPlan p(seed);
    for (const PlannedFault& f : faults) {
        faults::FaultSpec spec;
        spec.after = 0;
        spec.count = 1;
        spec.rank = f.rank;
        spec.kind = f.kind;
        if (f.kind == faults::FaultKind::Stall) spec.stall_s = f.delay_s;
        p.add(f.site, spec);
    }
    if (dropout) {
        faults::FaultSpec spec;
        spec.after = 0;
        spec.count = 1;
        spec.rank = dropout_rank;
        p.add(names::kSiteRankDropout, spec);
    }
    return p;
}

std::vector<JobSpec> make_schedule(const ScheduleConfig& cfg)
{
    require(cfg.fleet_ranks >= 4, "make_schedule: fleet must have >= 4 ranks");
    require(cfg.epochs > 0, "make_schedule: epochs must be positive");
    require(cfg.fault_rate >= 0.0 && cfg.fault_rate <= 1.0,
            "make_schedule: fault_rate must be in [0, 1]");
    require(cfg.stall_delay_s >= 0.0, "make_schedule: stall delay must be non-negative");
    const index_t per_epoch =
        cfg.jobs_per_epoch > 0 ? cfg.jobs_per_epoch : std::max<index_t>(4, cfg.fleet_ranks / 8);

    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(per_epoch * cfg.epochs));
    JobId id{0};
    for (index_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (index_t j = 0; j < per_epoch; ++j, ++id) {
            JobSpec job;
            job.id = id;
            job.epoch = epoch;
            // Job scope seeds must be unique per job or the fault engine
            // would fire identically for two jobs sharing a plan shape.
            job.seed = draw(cfg.seed, epoch, id, 0) | 1ull;

            const auto& sets = evaluation_datasets();
            job.dataset = sets[static_cast<std::size_t>(draw(cfg.seed, epoch, id, 1) %
                                                        sets.size())];

            // Rank arrangement: N_r in {2,4,8,...}, N_g in {1,2,4}, capped
            // so one job never exceeds half the fleet (the scheduler needs
            // room to overlap jobs, like the paper's shared-cluster runs).
            const index_t cap = std::max<index_t>(4, std::min<index_t>(cfg.fleet_ranks / 2, 512));
            index_t nr = index_t{2} << (draw(cfg.seed, epoch, id, 2) % 4);  // 2..16
            index_t ng = index_t{1} << (draw(cfg.seed, epoch, id, 3) % 3);  // 1..4
            while (ng * nr > cap) (ng > 1 ? ng : nr) /= 2;
            job.layout = GroupLayout{ng, nr};

            // Problem size: deeper scales = smaller problems; mixed so the
            // fleet sees short and long jobs concurrently (tail realism).
            static const double scales[] = {32.0, 48.0, 64.0, 96.0};
            job.scale = scales[draw(cfg.seed, epoch, id, 4) % 4];
            static const index_t batch_choices[] = {4, 8, 16};
            job.batches = batch_choices[draw(cfg.seed, epoch, id, 5) % 3];

            if (uniform(draw(cfg.seed, epoch, id, 6)) < cfg.fault_rate) {
                // 1..3 corruptions at distinct sites, each pinned to a
                // seed-derived (rank, batch).
                const auto& sites = corrupt_sites();
                const std::size_t nfaults =
                    1 + static_cast<std::size_t>(draw(cfg.seed, epoch, id, 7) % 3);
                std::vector<std::size_t> picked;
                std::uint64_t salt = 8;
                while (picked.size() < nfaults) {
                    const std::size_t s =
                        static_cast<std::size_t>(draw(cfg.seed, epoch, id, salt++) % sites.size());
                    if (std::find(picked.begin(), picked.end(), s) != picked.end()) continue;
                    picked.push_back(s);
                    PlannedFault f;
                    f.site = sites[s];
                    f.kind = faults::FaultKind::Corrupt;
                    f.rank = RankId{static_cast<index_t>(
                        draw(cfg.seed, epoch, id, salt++) %
                        static_cast<std::uint64_t>(job.nranks()))};
                    f.batch = static_cast<index_t>(draw(cfg.seed, epoch, id, salt++) %
                                                   static_cast<std::uint64_t>(job.batches));
                    job.faults.push_back(std::move(f));
                }
                // ~1/3 of faulted jobs also stall one rank past the
                // watchdog deadline (detected, latency-costed).
                if (cfg.stall_delay_s > 0.0 && draw(cfg.seed, epoch, id, 30) % 3 == 0) {
                    PlannedFault f;
                    f.site = names::kSiteRankStall;
                    f.kind = faults::FaultKind::Stall;
                    f.rank = RankId{static_cast<index_t>(
                        draw(cfg.seed, epoch, id, 31) %
                        static_cast<std::uint64_t>(job.nranks()))};
                    f.batch = 0;  // the stall lands on the load stage
                    f.delay_s = cfg.stall_delay_s;
                    job.faults.push_back(std::move(f));
                }
                // ~1/4 of faulted jobs lose a rank outright and finish
                // degraded; never the group root of group 0 to keep the
                // takeover shape simple (any survivor takes the share).
                if (draw(cfg.seed, epoch, id, 32) % 4 == 0 && job.nranks() > 2) {
                    job.dropout = true;
                    job.dropout_rank = RankId{
                        1 + static_cast<index_t>(draw(cfg.seed, epoch, id, 33) %
                                                 static_cast<std::uint64_t>(job.nranks() - 1))};
                }
            }
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

}  // namespace xct::soak
