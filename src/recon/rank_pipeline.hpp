#pragma once
// One rank's end-to-end reconstruction pipeline (Fig. 9):
//
//   load -> filter -> back-projection -> reduce -> store
//
// Five std::threads connected by four bounded FIFO queues; the MPI/reduce
// and store stages are injected as callables so the same pipeline serves
// the single-node out-of-core reconstructor (identity reducer) and the
// distributed framework (segmented minimpi reduction, PFS store).
//
// The back-projection stage owns the simulated device and implements
// Algorithm 3: a circular texture of H detector rows; each batch uploads
// only its *differential* rows (Eq. 6), splitting copies that wrap.
//
// Resilience (see DESIGN.md "Resilience"): source loads pass the
// "source.load" fault gate and are retried under cfg.retry; with
// cfg.checkpoint set, completed slabs are recorded in a CheckpointStore
// (group roots also save the reduced slab) and a restarted run replays
// saved slabs through the store callable before resuming live computation
// at the first incomplete slab — the restart is bitwise-identical to an
// uninterrupted run because every per-row operation (noise realisation,
// filtering, Parker weighting) is independent of the band split.

#include <atomic>
#include <filesystem>
#include <functional>
#include <optional>

#include "core/cancel.hpp"
#include "core/decompose.hpp"
#include "core/geometry.hpp"
#include "core/preprocess.hpp"
#include "core/volume.hpp"
#include "faults/retry.hpp"
#include "filter/ramp.hpp"
#include "io/band_codec.hpp"
#include "pipeline/timeline.hpp"
#include "recon/source.hpp"
#include "sim/device.hpp"

namespace xct::recon {

/// Slab-granular checkpoint/restart configuration of one rank.
struct CheckpointConfig {
    std::filesystem::path dir;  ///< this rank's private checkpoint directory
    /// Resume at most this many slabs from the checkpoint (-1: all the
    /// cursor covers).  The distributed layer reconciles this to the
    /// group-wide minimum so every rank re-enters the per-slab reduce
    /// collective at the same slab index.
    index_t resume_limit = -1;
};

/// Configuration of one rank's pipeline.
struct RankConfig {
    CbctGeometry geometry;                       ///< full problem geometry
    Range views{};                               ///< this rank's view share (Np split)
    Range slices{};                              ///< this rank's group slice range
    index_t batches = 8;                         ///< Nc (the paper fixes 8, Sec. 4.4.1)
    filter::Window window = filter::Window::RamLak;
    std::size_t device_capacity = 512u << 20;    ///< per-rank device budget [bytes]
    double h2d_gbps = 12.0;                      ///< PCIe model for T_H2D
    double d2h_gbps = 12.0;                      ///< PCIe model for T_D2H
    bool threaded = true;                        ///< 5-thread pipeline vs in-order execution
    std::optional<BeerLawScalar> beer;           ///< Eq. 1 calibration when source emits counts
    /// Retry transient source-load and device-transfer faults (nullopt —
    /// the default — fails loudly on the first fault).
    std::optional<faults::RetryPolicy> retry;
    /// Slab-granular checkpoint/restart (nullopt: disabled).
    std::optional<CheckpointConfig> checkpoint;
    /// Watchdog deadline over the load and reduce stages (seconds; <= 0
    /// disables).  A supervised stage that finishes past the deadline —
    /// a stalled read, a collective stuck behind a dead peer, a
    /// kind=stall fault — throws integrity::DeadlineExceeded, which the
    /// retry layer treats like any other transient fault.
    double watchdog_timeout_s = 0.0;
    /// Differential band wire format (DESIGN.md §3j).  Raw is
    /// bitwise-identical to the seed pipeline; Q8 quantises each band
    /// per-range after filtering, cutting the host->device byte volume
    /// ~4x at the QuantizedTexture3 ablation's established precision.
    io::BandCodec band_codec = io::BandCodec::Raw;
    /// Stage band i+1 (gather + q8 decode, the host half of Algorithm 3)
    /// on a dedicated thread while slab i back-projects; the device copy
    /// stays on the bp thread.  Raw results are bitwise-independent of
    /// this switch.  Only meaningful with threaded = true (the sequential
    /// path stages and commits back-to-back).
    bool prefetch = false;
    /// Inter-stage FIFO capacity (the Fig. 9 queue depth; the perfmodel's
    /// queue_capacity).  The seed pipeline hard-coded 2.
    index_t queue_depth = 2;
};

/// Measured per-rank statistics (stage busy times follow Table 5's
/// columns; transfer stats come from the simulated device).
struct RankStats {
    double t_load = 0.0;
    double t_filter = 0.0;
    double t_prefetch = 0.0;  ///< band staging (gather + decode) overlap stage
    double t_bp = 0.0;      ///< kernel time only (T_bp)
    double t_reduce = 0.0;  ///< reducer callable time (T_reduce)
    double t_store = 0.0;
    double wall = 0.0;      ///< pipeline makespan
    index_t slabs_restored = 0;  ///< slabs replayed from the checkpoint
    sim::LinkStats h2d{};
    sim::LinkStats d2h{};
    std::vector<pipeline::StageSpan> spans;  ///< full Fig. 10 timeline

    /// Total stage busy time (the numerator of the overlap factor).
    double busy() const { return t_load + t_filter + t_prefetch + t_bp + t_reduce + t_store; }
    /// Overlap efficiency: busy() / wall; > 1 means stages genuinely
    /// overlapped (same definition as pipeline::Timeline::overlap_factor).
    double overlap_factor() const { return wall > 0.0 ? busy() / wall : 0.0; }
};

/// External control surface of one running rank pipeline (the handle the
/// serve engine holds; DESIGN.md §3k).  All members are optional: a null
/// field simply disables that control.  The token is *polled* at every
/// stage boundary of every slab (load, filter, prefetch hand-off, bp,
/// reduce, store), so a cancel unwinds the pipeline — and releases the
/// simulated device budget with it — within one stage boundary;
/// `slabs_done` counts slabs that reached their terminal stage (reduce
/// for non-roots, store for roots, restore for checkpoint replays) and is
/// safe to read from any thread while run_rank is executing.
struct RankControl {
    core::CancelToken* cancel = nullptr;
    std::atomic<index_t>* slabs_done = nullptr;
};

/// Reducer invoked once per slab, in slab order, on the back-projected
/// partial sub-volume.  Returns true when this rank ends up holding the
/// reduced result (group root) — only then is the store stage invoked.
using Reducer = std::function<bool(Volume& slab, const SlabPlan& plan)>;

/// Store callable (group roots only): persist the reduced slab.
using Storer = std::function<void(const Volume& slab, const SlabPlan& plan)>;

/// Run one rank's reconstruction.  Throws sim::DeviceOutOfMemory when the
/// configured texture does not fit the device budget, std::invalid_argument
/// on inconsistent configuration, core::Cancelled when `ctl` carries a
/// token whose cancellation was requested (checked at stage boundaries).
RankStats run_rank(const RankConfig& cfg, ProjectionSource& source, const Reducer& reduce,
                   const Storer& store, const RankControl& ctl = {});

/// Identity reducer for single-rank use.
inline bool identity_reducer(Volume&, const SlabPlan&)
{
    return true;
}

}  // namespace xct::recon
