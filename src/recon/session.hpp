#pragma once
// Re-entrant reconstruction session (DESIGN.md §3k) — the setup /
// run-to-completion split of the single-rank FDK path that the serve
// engine schedules.
//
// reconstruct_fdk() couples three things the daemon needs apart: config
// validation (cheap, fail-fast, safe to do at admission time), the
// long-running pipeline execution, and observation of that execution.
// ReconSession splits them: the constructor validates and plans (so a
// bad job is rejected before it ever holds a worker thread), run()
// executes the rank pipeline exactly once, and progress()/cancel() are
// safe from any thread while run() is executing on another.  Sessions
// hold no global state — any number may run concurrently, each with its
// own simulated device budget, which is what makes the multi-tenant
// engine possible.

#include <atomic>
#include <memory>

#include "core/cancel.hpp"
#include "recon/fdk.hpp"
#include "recon/rank_pipeline.hpp"
#include "recon/source.hpp"

namespace xct::recon {

/// Lifecycle of a session.  Ready -> Running -> one terminal state.
enum class SessionState { Ready, Running, Done, Cancelled, Failed };

const char* to_string(SessionState s);

class ReconSession {
public:
    /// Validates the geometry, forces full view/slice ranges (sessions
    /// reconstruct whole volumes; ROI jobs slice at fetch time), and
    /// plans the slab schedule.  Throws std::invalid_argument on a bad
    /// configuration — nothing is allocated and no thread is consumed.
    ReconSession(RankConfig cfg, std::unique_ptr<ProjectionSource> source);

    ReconSession(const ReconSession&) = delete;
    ReconSession& operator=(const ReconSession&) = delete;

    /// Run the pipeline to completion.  Single-use: a second call throws
    /// std::logic_error.  Propagates core::Cancelled (state -> Cancelled),
    /// sim::DeviceOutOfMemory / fault-path errors (state -> Failed), or
    /// returns the reconstructed volume (state -> Done).  With
    /// cfg.checkpoint set, a rerun of an equivalent session resumes from
    /// the last completed slab and is bitwise-identical to an
    /// uninterrupted run — the serve journal's recovery contract.
    FdkResult run();

    /// --- observation, safe from any thread ---
    SessionState state() const { return state_.load(std::memory_order_acquire); }
    index_t total_slabs() const { return total_slabs_; }
    index_t completed_slabs() const { return slabs_done_.load(std::memory_order_acquire); }
    /// Fraction of slabs at their terminal stage, in [0, 1].
    double progress() const
    {
        return total_slabs_ > 0
                   ? static_cast<double>(completed_slabs()) / static_cast<double>(total_slabs_)
                   : 0.0;
    }
    core::CancelToken& cancel_token() { return cancel_; }
    const RankConfig& config() const { return cfg_; }

private:
    RankConfig cfg_;
    std::unique_ptr<ProjectionSource> source_;
    index_t total_slabs_ = 0;
    std::atomic<index_t> slabs_done_{0};
    std::atomic<SessionState> state_{SessionState::Ready};
    core::CancelToken cancel_;
};

}  // namespace xct::recon
