#pragma once
// Prior-work decomposition baselines (Table 2), implemented honestly so
// their capability limits and redundant traffic can be *measured* rather
// than asserted:
//
//   * iFDK-style [Chen et al. '19]: the Np dimension only is decomposed;
//     every rank back-projects the FULL volume for its view share, so the
//     whole volume must fit each device (output-size wall), and combining
//     results moves Nr full volumes (O(N) communication);
//   * Lu-style [Lu et al. '16]: single-device out-of-core by volume
//     chunks, but every chunk re-uploads the complete projection set —
//     host-to-device traffic grows linearly with the number of chunks.
//
// Both produce numerically verifiable volumes (same kernels, same
// geometry) — the tests check them against the reference back-projection.

#include <span>

#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "sim/device.hpp"

namespace xct::recon {

struct BaselineStats {
    std::uint64_t h2d_bytes = 0;      ///< total host->device traffic
    std::uint64_t comm_bytes = 0;     ///< inter-rank volume traffic (iFDK)
    std::uint64_t device_peak = 0;    ///< peak device memory used [bytes]
    index_t redundancy = 1;           ///< how many times a projection moved H2D
};

/// iFDK-style run with `nr` ranks (simulated sequentially, one device
/// each of `device_capacity` bytes).  Returns the combined volume in
/// `out`.  Throws sim::DeviceOutOfMemory when the full volume does not
/// fit one device — the baseline's defining limit.
BaselineStats backproject_ifdk_style(const ProjectionStack& filtered, std::span<const Mat34> mats,
                                     const CbctGeometry& g, Volume& out, index_t nr,
                                     std::size_t device_capacity);

/// Lu-style out-of-core run on one device: the volume is processed in
/// chunks of `chunk_slices`; each chunk re-uploads every projection, in
/// view batches of `batch_views` full frames (the 2D-layered-texture
/// batching of the original).
BaselineStats backproject_lu_style(const ProjectionStack& filtered, std::span<const Mat34> mats,
                                   const CbctGeometry& g, Volume& out, index_t chunk_slices,
                                   std::size_t device_capacity, index_t batch_views = 0);

}  // namespace xct::recon
