#pragma once
// Projection sources feeding the pipeline's load stage.  A source returns
// the sub-projection a rank needs: a view range (the Np split) times a
// detector-row band (the Nv split) — the paper's defining access pattern
// (Fig. 3a): nobody ever loads a full frame.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/geometry.hpp"
#include "core/ids.hpp"
#include "core/preprocess.hpp"
#include "core/volume.hpp"
#include "phantom/shepp_logan.hpp"

namespace xct::recon {

class ProjectionSource {
public:
    virtual ~ProjectionSource() = default;

    /// Load the row band `band` of views `views` (global coordinates).
    /// Values are photon *counts* when raw_counts() is true (the pipeline
    /// then applies Eq. 1), line integrals otherwise.
    virtual ProjectionStack load(Range views, Range band) = 0;

    virtual bool raw_counts() const { return false; }
};

/// Photon (shot) noise model for synthetic raw counts: the detector
/// registers Poisson(photons_blank * exp(-P)) photons per pixel.  Noise is
/// seeded per (view, row) so the same pixel receives the same noise no
/// matter which rank loads it or how the band is split — reconstructions
/// stay decomposition-invariant even with noise on.
struct PoissonNoise {
    double photons_blank = 1e5;  ///< expected photons through air
    std::uint64_t seed = 1;
};

/// Analytic phantom source: generates exact line integrals on demand; with
/// a calibration attached it emits synthetic photon counts instead
/// (inverse Beer law), optionally with Poisson shot noise, exercising the
/// full preprocessing path.
class PhantomSource final : public ProjectionSource {
public:
    PhantomSource(std::vector<phantom::Ellipsoid> ellipsoids, const CbctGeometry& g,
                  std::optional<BeerLawScalar> emit_counts = std::nullopt,
                  std::optional<PoissonNoise> noise = std::nullopt);

    ProjectionStack load(Range views, Range band) override;
    bool raw_counts() const override { return emit_counts_.has_value(); }

private:
    std::vector<phantom::Ellipsoid> ellipsoids_;
    CbctGeometry geometry_;
    std::optional<BeerLawScalar> emit_counts_;
    std::optional<PoissonNoise> noise_;
};

/// Serves sub-projections out of a resident full stack (tests, benches).
class MemorySource final : public ProjectionSource {
public:
    /// `full` must cover all views and rows that will be requested and
    /// outlive the source.
    explicit MemorySource(const ProjectionStack& full, bool counts = false);

    ProjectionStack load(Range views, Range band) override;
    bool raw_counts() const override { return counts_; }

private:
    const ProjectionStack* full_;
    bool counts_;
};

/// Per-rank source factory (each pipeline rank owns its source instance,
/// as each MPI rank owns its NVMe file handles in the paper).
using SourceFactory = std::function<std::unique_ptr<ProjectionSource>(RankId rank)>;

}  // namespace xct::recon

// PfsSource lives behind the io layer; declared here so reconstruction
// drivers can be wired to real on-disk data without extra includes.
#include "io/pfs.hpp"

namespace xct::recon {

/// Serves sub-projections from a stack file on a bandwidth-accounted Pfs
/// using *partial row reads* — only the requested band's bytes move, the
/// paper's O(Nu) input lower bound realised through real file I/O.
/// `counts` marks raw-photon-count files (Eq. 1 applies downstream).
class PfsSource final : public ProjectionSource {
public:
    PfsSource(io::Pfs& pfs, std::string rel, bool counts = false);

    ProjectionStack load(Range views, Range band) override;
    bool raw_counts() const override { return counts_; }

private:
    io::Pfs* pfs_;
    std::string rel_;
    bool counts_;
};

/// Factory producing per-rank sources that all read one Pfs-resident
/// stack concurrently (Pfs is internally thread-safe), mirroring ranks
/// sharing a node's NVMe.
SourceFactory make_shared_pfs_factory(io::Pfs& pfs, std::string rel, bool counts = false);

}  // namespace xct::recon

#include "io/view_store.hpp"

namespace xct::recon {

/// Serves sub-projections from a scanner-style per-view directory
/// (io::export_views layout): each rank opens only its own view files and
/// reads only its row band from each.
class ViewDirSource final : public ProjectionSource {
public:
    ViewDirSource(std::filesystem::path dir, bool counts = false);

    ProjectionStack load(Range views, Range band) override;
    bool raw_counts() const override { return counts_; }

private:
    std::filesystem::path dir_;
    bool counts_;
};

}  // namespace xct::recon
