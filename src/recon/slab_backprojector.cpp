#include "recon/slab_backprojector.hpp"

#include <algorithm>

#include "core/names.hpp"

namespace xct::recon {

namespace {
backproj::MatrixPack share_pack(const CbctGeometry& g, Range views)
{
    const std::vector<Mat34> all = projection_matrices(g);
    return backproj::MatrixPack(
        std::span<const Mat34>(all.data() + views.lo, static_cast<std::size_t>(views.length())));
}
}

SlabBackprojector::SlabBackprojector(const Config& cfg, index_t h, index_t origin,
                                     index_t max_slab)
    : cfg_(cfg), origin_(origin),
      device_(cfg.device_capacity, cfg.h2d_gbps, cfg.d2h_gbps),
      tex_(device_, cfg.geometry.nu, cfg.views.length(), h),
      slab_dev_(device_, cfg.geometry.vol.x * cfg.geometry.vol.y * max_slab),
      pack_(share_pack(cfg.geometry, cfg.views))
{
    device_.set_retry(cfg.retry);
}

namespace {
index_t max_rows(const std::vector<SlabPlan>& plans)
{
    index_t h = 1;
    for (const auto& p : plans) h = std::max(h, p.rows.length());
    return h;
}
index_t max_slab(const std::vector<SlabPlan>& plans)
{
    index_t m = 1;
    for (const auto& p : plans) m = std::max(m, p.slab.length());
    return m;
}
}

SlabBackprojector::SlabBackprojector(const Config& cfg, const std::vector<SlabPlan>& plans)
    : SlabBackprojector(cfg, max_rows(plans), plans.front().rows.lo, max_slab(plans))
{
}

SlabBackprojector::StagedBand SlabBackprojector::stage_band(const ProjectionStack& band,
                                                            std::vector<float> storage) const
{
    const index_t views = band.views();
    const index_t nu = band.cols();
    const index_t h = tex_.depth();
    StagedBand staged;
    staged.planes = std::move(storage);
    staged.planes.resize(static_cast<std::size_t>(band.rows() * views * nu));
    index_t v = band.row_begin();
    const index_t v_end = v + band.rows();
    std::size_t off = 0;
    while (v < v_end) {
        index_t depth = (v - origin_) % h;
        if (depth < 0) depth += h;
        const index_t run = std::min(v_end - v, h - depth);
        for (index_t r = 0; r < run; ++r)
            for (index_t s = 0; s < views; ++s) {
                const auto row = band.row(s, v + r);
                std::copy(row.begin(), row.end(),
                          staged.planes.begin() +
                              static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(
                                                                    (r * views + s) * nu)));
            }
        staged.segments.push_back(StagedBand::Segment{depth, run});
        off += static_cast<std::size_t>(run * views * nu);
        v += run;
    }
    return staged;
}

SlabBackprojector::StagedBand SlabBackprojector::stage_band(const io::EncodedBand& e,
                                                            std::vector<float> storage) const
{
    // A transit bit-flip surfaces as IntegrityError (a TransientError);
    // the source EncodedBand is intact, so a retried decode recovers.
    auto attempt = [&] { return io::decode_band(e); };
    const ProjectionStack band =
        cfg_.retry ? faults::with_retry(names::kSiteBandDecode, *cfg_.retry, attempt)
                   : attempt();
    StagedBand staged = stage_band(band, std::move(storage));
    staged.wire_bytes = e.wire_bytes();
    return staged;
}

void SlabBackprojector::commit_band(const StagedBand& staged)
{
    const index_t plane = tex_.width() * tex_.height();
    const std::size_t total = staged.planes.size();
    std::size_t off = 0;
    for (const StagedBand::Segment& seg : staged.segments) {
        const std::size_t n = static_cast<std::size_t>(seg.nplanes * plane);
        const auto src = std::span<const float>(staged.planes.data() + off, n);
        if (staged.wire_bytes == 0) {
            tex_.copy_planes(src, seg.depth, seg.nplanes);
        } else {
            // Bill each segment its proportional share of the wire bytes;
            // prefix differencing makes the shares sum exactly.
            const std::size_t w0 = staged.wire_bytes * off / total;
            const std::size_t w1 = staged.wire_bytes * (off + n) / total;
            tex_.copy_planes_wire(src, seg.depth, seg.nplanes, w1 - w0);
        }
        off += n;
    }
}

void SlabBackprojector::upload_band(const ProjectionStack& band)
{
    commit_band(stage_band(band));
}

void SlabBackprojector::upload_band(const io::EncodedBand& e)
{
    commit_band(stage_band(e));
}

Volume SlabBackprojector::backproject(const SlabPlan& plan)
{
    Volume slab(Dim3{cfg_.geometry.vol.x, cfg_.geometry.vol.y, plan.slab.length()});
    backproj::backproject_streaming(tex_, pack_, slab,
                                    backproj::StreamOffsets{plan.slab.lo, origin_},
                                    cfg_.geometry.nu, cfg_.geometry.nv);
    // Model the sub-volume device->host move (the kernel conceptually
    // filled slab_dev_; Table 5's T_D2H).
    device_.account_d2h(static_cast<std::size_t>(slab.count()) * sizeof(float));
    return slab;
}

}  // namespace xct::recon
