#include "recon/distributed.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/names.hpp"
#include "faults/checkpoint.hpp"
#include "faults/fault.hpp"
#include "filter/parker.hpp"
#include "integrity/integrity.hpp"
#include "integrity/watchdog.hpp"
#include "pipeline/timeline.hpp"
#include "recon/slab_backprojector.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::recon {
namespace {

/// Replay state for one dead rank's view share, owned by the survivor the
/// takeover was assigned to.  bp holds internal pointers (device/texture),
/// so Takeover lives behind unique_ptr and is constructed in place.
struct Takeover {
    Takeover(index_t k, Range v, std::unique_ptr<ProjectionSource> src,
             std::optional<filter::ParkerWeights> pw, const SlabBackprojector::Config& bc,
             const std::vector<SlabPlan>& plans)
        : key(k), views(v), source(std::move(src)), parker(std::move(pw)), bp(bc, plans)
    {
    }

    index_t key;    ///< the dead rank's rank_in_group (reduction position)
    Range views;    ///< the dead rank's view share
    std::unique_ptr<ProjectionSource> source;
    std::optional<filter::ParkerWeights> parker;
    SlabBackprojector bp;
    bool primed = false;  ///< texture holds the previous slab's rows
};

}  // namespace

DistributedResult reconstruct_distributed(const DistributedConfig& cfg,
                                          const SourceFactory& make_source, io::Pfs* pfs)
{
    cfg.geometry.validate();
    require(cfg.layout.num_groups > 0 && cfg.layout.ranks_per_group > 0,
            "reconstruct_distributed: layout must be positive");
    require(cfg.layout.num_groups <= cfg.geometry.vol.z,
            "reconstruct_distributed: more groups than output slices");
    require(cfg.layout.ranks_per_group <= cfg.geometry.num_proj,
            "reconstruct_distributed: more ranks per group than views");

    const index_t nranks = cfg.layout.nranks();
    DistributedResult result{Volume(cfg.geometry.vol), std::vector<RankStats>(
                                                           static_cast<std::size_t>(nranks)),
                             0.0,
                             {}};

    const double t0 = pipeline::now_seconds();
    minimpi::run(nranks, [&](minimpi::Communicator& world) {
        const RankId rank{world.rank()};
        const GroupId group = cfg.layout.group_of(rank);

        // Fleet aggregation (DESIGN.md §3g): every rank — dead ones
        // included, with zeros — contributes its stage busy seconds to a
        // final world gather, and rank 0 folds the fleet into the
        // log-bucketed `fleet.stage.<stage>.seconds` histograms the run
        // report reads percentiles from.  All ranks must pass through
        // here or the collective deadlocks, which is why dead ranks call
        // it on their early-return path.
        const auto fleet_gather = [&](const RankStats& st) {
            static constexpr const char* kStages[6] = {"load",   "filter", "bp",
                                                       "reduce", "store",  "wall"};
            const std::vector<float> mine = {
                static_cast<float>(st.t_load),  static_cast<float>(st.t_filter),
                static_cast<float>(st.t_bp),    static_cast<float>(st.t_reduce),
                static_cast<float>(st.t_store), static_cast<float>(st.wall)};
            std::vector<float> all(static_cast<std::size_t>(nranks) * mine.size());
            world.gather(mine, all, 0);
            if (rank != RankId{0}) return;
            std::uint64_t contributing = 0;
            for (index_t r = 0; r < nranks; ++r) {
                const std::size_t base = static_cast<std::size_t>(r) * mine.size();
                if (all[base + 5] <= 0.0f) continue;  // dead rank: zeros
                ++contributing;
                for (std::size_t s = 0; s < mine.size(); ++s)
                    telemetry::fleet_observe(kStages[s], static_cast<double>(all[base + s]));
            }
            telemetry::registry().counter(names::kMetricFleetRanks).add(contributing);
        };

        // Dropout: a rank scheduled to die (site "rank.dropout") finds out
        // here.  Without degraded mode this is fail-loudly — the exception
        // aborts the whole team, MPI's default error handler.
        bool i_died = faults::should_fail(names::kSiteRankDropout);

        // Stall: a rank wedged at startup (site "rank.stall", kind=stall)
        // is indistinguishable from a dead one to its peers.  The watchdog
        // supervises a health probe through the stall point; blowing the
        // deadline converts the hang into a TransientError, and the rank
        // declares itself dead before the liveness exchange so the same
        // degraded-reduce machinery absorbs it.
        if (!i_died && cfg.watchdog_timeout_s > 0.0) {
            integrity::Watchdog wd(cfg.watchdog_timeout_s);
            try {
                // The probe is a flight span: healthy ranks' completed
                // probes are the "recent past" a post-mortem dump shows
                // when a wedged peer trips the deadline at startup.
                wd.supervise(names::kWatchHealthProbe, [rank] {
                    telemetry::ScopedTrace probe(names::kCatIntegrity,
                                                 names::kWatchHealthProbe, rank.value());
                    faults::stall_point(names::kSiteRankStall);
                });
            } catch (const faults::TransientError&) {
                i_died = true;
            }
        }
        if (i_died && !cfg.degraded_reduce)
            throw faults::InjectedFault("rank.dropout", rank, 0);

        std::vector<char> alive(static_cast<std::size_t>(nranks), 1);
        minimpi::Communicator gcomm;
        if (cfg.degraded_reduce) {
            // World-wide liveness exchange: one-hot death flags, summed so
            // every rank sees the same membership before splitting.
            std::vector<float> flag(static_cast<std::size_t>(nranks), 0.0f);
            flag[static_cast<std::size_t>(rank.value())] = i_died ? 1.0f : 0.0f;
            std::vector<float> deaths(static_cast<std::size_t>(nranks), 0.0f);
            world.allreduce_sum(flag, deaths);
            for (index_t r = 0; r < nranks; ++r)
                alive[static_cast<std::size_t>(r)] = deaths[static_cast<std::size_t>(r)] == 0.0f;
            for (index_t g = 0; g < cfg.layout.num_groups; ++g) {
                index_t survivors = 0;
                for (index_t r = g * cfg.layout.ranks_per_group;
                     r < (g + 1) * cfg.layout.ranks_per_group; ++r)
                    survivors += alive[static_cast<std::size_t>(r)] ? 1 : 0;
                require(survivors > 0,
                        "reconstruct_distributed: every rank of group " + std::to_string(g) +
                            " died; degraded reduce needs at least one survivor per group");
            }
            if (rank == RankId{0}) {
                for (index_t r = 0; r < nranks; ++r)
                    if (!alive[static_cast<std::size_t>(r)]) result.dead.push_back(RankId{r});
                if (!result.dead.empty())
                    telemetry::registry().counter(names::kMetricFaultsDegradedRanks).add(
                        result.dead.size());
            }
            // Dead ranks split into a "graveyard" colour so survivors'
            // group communicators exclude them, then leave.  Survivor key
            // order preserves rank_in_group, so a surviving original root
            // stays root.
            const index_t color = i_died ? cfg.layout.num_groups : group.value();
            gcomm = world.split(color, cfg.layout.rank_in_group(rank));
            if (i_died) {
                fleet_gather(RankStats{});  // zeros, so the world gather completes
                return;
            }
        } else {
            gcomm = world.split(group.value(), cfg.layout.rank_in_group(rank));
        }

        RankConfig rc;
        rc.geometry = cfg.geometry;
        rc.views = cfg.layout.views_of_rank(rank, cfg.geometry.num_proj);
        rc.slices = cfg.layout.slices_of_group(group, cfg.geometry.vol.z);
        rc.batches = cfg.batches;
        rc.window = cfg.window;
        rc.device_capacity = cfg.device_capacity;
        rc.h2d_gbps = cfg.h2d_gbps;
        rc.d2h_gbps = cfg.d2h_gbps;
        rc.threaded = cfg.threaded;
        rc.beer = cfg.beer;
        rc.retry = cfg.retry;
        rc.watchdog_timeout_s = cfg.watchdog_timeout_s;
        rc.band_codec = cfg.band_codec;
        rc.prefetch = cfg.prefetch;
        rc.queue_depth = cfg.queue_depth;

        // Checkpoint resume must re-enter the per-slab reduce at the same
        // slab on every rank of the group, so reconcile to the group-wide
        // minimum cursor.  Saved slabs live with the group root: if the
        // root died, the group recomputes from slab 0 (always correct —
        // replay is idempotent).
        const bool root_alive =
            alive[static_cast<std::size_t>(cfg.layout.group_root(group).value())];
        index_t first_live = 0;
        if (cfg.checkpoint_dir) {
            const auto my_dir = *cfg.checkpoint_dir / ("rank_" + std::to_string(rank.value()));
            // Validated, not raw: a damaged slab file lowers this rank's
            // cursor *before* the group reconciliation, so every rank of
            // the group re-enters the per-slab reduce at the same index.
            const index_t cursor = faults::CheckpointStore(my_dir).validated_cursor();
            const index_t group_min =
                root_alive ? -static_cast<index_t>(gcomm.allreduce_max(-static_cast<double>(cursor)))
                           : 0;
            rc.checkpoint = CheckpointConfig{my_dir, group_min};
            first_live = group_min;
        }

        // Round-robin takeover: the g-th dead rank of a group is replayed
        // by its g-th survivor (ordered by rank_in_group), so the load is
        // spread when several ranks died.
        std::vector<std::unique_ptr<Takeover>> takeovers;
        bool group_has_dead = false;
        if (cfg.degraded_reduce) {
            std::vector<RankId> group_dead, group_alive;
            for (index_t r = group.value() * cfg.layout.ranks_per_group;
                 r < (group.value() + 1) * cfg.layout.ranks_per_group; ++r)
                (alive[static_cast<std::size_t>(r)] ? group_alive : group_dead)
                    .push_back(RankId{r});
            group_has_dead = !group_dead.empty();
            if (group_has_dead) {
                require(cfg.ranks_per_node == 0,
                        "reconstruct_distributed: degraded reduce requires the flat reduce "
                        "(ranks_per_node == 0)");
                const index_t nb = (rc.slices.length() + cfg.batches - 1) / cfg.batches;
                const auto plans = plan_slabs(cfg.geometry, rc.slices, nb);
                for (std::size_t d = 0; d < group_dead.size(); ++d) {
                    if (group_alive[d % group_alive.size()] != rank) continue;
                    const RankId dead_rank = group_dead[d];
                    const Range dv = cfg.layout.views_of_rank(dead_rank, cfg.geometry.num_proj);
                    std::optional<filter::ParkerWeights> pw;
                    if (cfg.geometry.short_scan()) pw.emplace(cfg.geometry, dv);
                    auto src = make_source(dead_rank);
                    require(src != nullptr,
                            "reconstruct_distributed: source factory returned null");
                    SlabBackprojector::Config bc{cfg.geometry,  dv,
                                                 cfg.device_capacity, cfg.h2d_gbps,
                                                 cfg.d2h_gbps,  cfg.retry};
                    takeovers.push_back(std::make_unique<Takeover>(
                        cfg.layout.rank_in_group(dead_rank), dv, std::move(src), std::move(pw),
                        bc, plans));
                }
                if (!takeovers.empty())
                    telemetry::registry().counter(names::kMetricFaultsDegradedTakeovers).add(
                        takeovers.size());
            }
        }
        std::optional<filter::FilterEngine> tk_engine;
        if (!takeovers.empty()) tk_engine.emplace(cfg.geometry, cfg.window);

        const bool is_root = gcomm.rank() == 0;
        std::vector<float> recv;
        index_t next_slab = first_live;  // reduce is called once per live slab, in order

        auto reduce = [&](Volume& slab, const SlabPlan& plan) {
            // Segmented reduction: only this group's communicator takes
            // part (Fig. 8).  Roots receive the sum in place.
            const index_t idx = next_slab++;
            if (is_root) recv.resize(static_cast<std::size_t>(slab.count()));
            if (!group_has_dead) {
                if (cfg.ranks_per_node > 0)
                    gcomm.reduce_sum_hierarchical(slab.span(), recv, 0, cfg.ranks_per_node);
                else
                    gcomm.reduce_sum(slab.span(), recv, 0);
            } else {
                // Degraded path: recompute each dead rank's partial with
                // its exact arithmetic, then sum all parts in original
                // rank_in_group order — bitwise-identical to the unfaulted
                // flat reduce.
                std::vector<Volume> replayed;
                replayed.reserve(takeovers.size());
                for (auto& t : takeovers) {
                    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanTakeover, idx);
                    const Range band = t->primed ? plan.delta : plan.rows;
                    if (!band.empty()) {
                        auto attempt = [&] {
                            faults::check(names::kSiteSourceLoad);
                            ProjectionStack stack = t->source->load(t->views, band);
                            // Same digest-corrupt-verify discipline as the
                            // live pipeline's load stage: the takeover path
                            // must not become an unverified side door.
                            const integrity::digest_t d =
                                integrity::enabled()
                                    ? integrity::checksum_of<float>(stack.span())
                                    : 0;
                            faults::corrupt(names::kSiteSourceLoad,
                                            std::as_writable_bytes(stack.span()));
                            integrity::verify_of<float>(names::kSiteSourceLoad, stack.span(), d);
                            return stack;
                        };
                        ProjectionStack delta =
                            cfg.retry ? faults::with_retry(names::kSiteSourceLoad, *cfg.retry,
                                                           attempt)
                                      : attempt();
                        if (t->source->raw_counts()) {
                            require(cfg.beer.has_value(),
                                    "reconstruct_distributed: source emits raw counts but no "
                                    "Beer-law calibration configured");
                            beer_law(delta, *cfg.beer);
                        }
                        if (t->parker) t->parker->apply(delta);
                        tk_engine->apply(delta);
                        // The dead rank would have shipped this band in the
                        // configured wire format; replay its quantisation
                        // too, or the takeover partial diverges bitwise.
                        if (cfg.band_codec == io::BandCodec::Q8)
                            t->bp.upload_band(io::encode_band(delta));
                        else
                            t->bp.upload_band(delta);
                    }
                    t->primed = true;
                    replayed.push_back(t->bp.backproject(plan));
                    telemetry::registry().counter(names::kMetricFaultsDegradedSlabs).add(1);
                }
                std::vector<minimpi::ReducePart> parts;
                parts.reserve(1 + replayed.size());
                parts.push_back({cfg.layout.rank_in_group(rank), slab.span()});
                for (std::size_t i = 0; i < replayed.size(); ++i)
                    parts.push_back({takeovers[i]->key, replayed[i].span()});
                gcomm.reduce_sum_parts(parts, recv, 0);
            }
            if (is_root) std::copy(recv.begin(), recv.end(), slab.span().begin());
            return is_root;
        };

        auto store = [&](const Volume& slab, const SlabPlan& plan) {
            for (index_t k = 0; k < plan.slab.length(); ++k) {
                const auto src = slab.slice(k);
                const auto dst = result.volume.slice(plan.slab.lo + k);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            if (pfs != nullptr) {
                // Pfs is internally thread-safe; group roots store concurrently.
                pfs->store_volume("slab_" + std::to_string(plan.slab.lo) + "_" +
                                      std::to_string(plan.slab.hi) + ".xvol",
                                  slab);
            }
        };

        auto source = make_source(rank);
        require(source != nullptr, "reconstruct_distributed: source factory returned null");
        result.ranks[static_cast<std::size_t>(rank.value())] =
            run_rank(rc, *source, reduce, store);
        fleet_gather(result.ranks[static_cast<std::size_t>(rank.value())]);
    });
    result.wall_seconds = pipeline::now_seconds() - t0;
    return result;
}

}  // namespace xct::recon
