#include "recon/distributed.hpp"

#include <mutex>

#include "pipeline/timeline.hpp"

namespace xct::recon {

DistributedResult reconstruct_distributed(const DistributedConfig& cfg,
                                          const SourceFactory& make_source, io::Pfs* pfs)
{
    cfg.geometry.validate();
    require(cfg.layout.num_groups > 0 && cfg.layout.ranks_per_group > 0,
            "reconstruct_distributed: layout must be positive");
    require(cfg.layout.num_groups <= cfg.geometry.vol.z,
            "reconstruct_distributed: more groups than output slices");
    require(cfg.layout.ranks_per_group <= cfg.geometry.num_proj,
            "reconstruct_distributed: more ranks per group than views");

    const index_t nranks = cfg.layout.nranks();
    DistributedResult result{Volume(cfg.geometry.vol), std::vector<RankStats>(
                                                           static_cast<std::size_t>(nranks)),
                             0.0};
    std::mutex pfs_mutex;  // Pfs accounting is not thread-safe; serialise roots

    const double t0 = pipeline::now_seconds();
    minimpi::run(nranks, [&](minimpi::Communicator& world) {
        const index_t rank = world.rank();
        const index_t group = cfg.layout.group_of(rank);
        minimpi::Communicator gcomm = world.split(group, cfg.layout.rank_in_group(rank));

        RankConfig rc;
        rc.geometry = cfg.geometry;
        rc.views = cfg.layout.views_of_rank(rank, cfg.geometry.num_proj);
        rc.slices = cfg.layout.slices_of_group(group, cfg.geometry.vol.z);
        rc.batches = cfg.batches;
        rc.window = cfg.window;
        rc.device_capacity = cfg.device_capacity;
        rc.h2d_gbps = cfg.h2d_gbps;
        rc.d2h_gbps = cfg.d2h_gbps;
        rc.threaded = cfg.threaded;
        rc.beer = cfg.beer;

        const bool is_root = gcomm.rank() == 0;
        std::vector<float> recv;

        auto reduce = [&](Volume& slab, const SlabPlan&) {
            // Segmented reduction: only this group's communicator takes
            // part (Fig. 8).  Roots receive the sum in place.
            if (is_root) recv.resize(static_cast<std::size_t>(slab.count()));
            if (cfg.ranks_per_node > 0)
                gcomm.reduce_sum_hierarchical(slab.span(), recv, 0, cfg.ranks_per_node);
            else
                gcomm.reduce_sum(slab.span(), recv, 0);
            if (is_root) std::copy(recv.begin(), recv.end(), slab.span().begin());
            return is_root;
        };

        auto store = [&](const Volume& slab, const SlabPlan& plan) {
            for (index_t k = 0; k < plan.slab.length(); ++k) {
                const auto src = slab.slice(k);
                const auto dst = result.volume.slice(plan.slab.lo + k);
                std::copy(src.begin(), src.end(), dst.begin());
            }
            if (pfs != nullptr) {
                std::lock_guard lk(pfs_mutex);
                pfs->store_volume("slab_" + std::to_string(plan.slab.lo) + "_" +
                                      std::to_string(plan.slab.hi) + ".xvol",
                                  slab);
            }
        };

        auto source = make_source(rank);
        require(source != nullptr, "reconstruct_distributed: source factory returned null");
        result.ranks[static_cast<std::size_t>(rank)] = run_rank(rc, *source, reduce, store);
    });
    result.wall_seconds = pipeline::now_seconds() - t0;
    return result;
}

}  // namespace xct::recon
