#include "recon/fdk.hpp"

#include <cmath>

namespace xct::recon {

FdkResult reconstruct_fdk(RankConfig cfg, ProjectionSource& source)
{
    cfg.geometry.validate();
    cfg.views = Range{0, cfg.geometry.num_proj};
    cfg.slices = Range{0, cfg.geometry.vol.z};

    FdkResult result{Volume(cfg.geometry.vol), RankStats{}};
    auto store = [&](const Volume& slab, const SlabPlan& plan) {
        for (index_t k = 0; k < plan.slab.length(); ++k) {
            const auto src = slab.slice(k);
            const auto dst = result.volume.slice(plan.slab.lo + k);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    };
    result.stats = run_rank(cfg, source, identity_reducer, store);
    return result;
}

FdkResult reconstruct_fdk(const CbctGeometry& g, const std::vector<phantom::Ellipsoid>& phantom,
                          filter::Window window)
{
    RankConfig cfg;
    cfg.geometry = g;
    cfg.window = window;
    PhantomSource source(phantom, g);
    return reconstruct_fdk(cfg, source);
}

FdkResult reconstruct_fdk_slices(RankConfig cfg, ProjectionSource& source, Range slices)
{
    cfg.geometry.validate();
    require(!slices.empty() && slices.lo >= 0 && slices.hi <= cfg.geometry.vol.z,
            "reconstruct_fdk_slices: slices out of range");
    cfg.views = Range{0, cfg.geometry.num_proj};
    cfg.slices = slices;

    FdkResult result{Volume(Dim3{cfg.geometry.vol.x, cfg.geometry.vol.y, slices.length()}),
                     RankStats{}};
    auto store = [&](const Volume& slab, const SlabPlan& plan) {
        for (index_t k = 0; k < plan.slab.length(); ++k) {
            const auto src = slab.slice(k);
            const auto dst = result.volume.slice(plan.slab.lo - slices.lo + k);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    };
    result.stats = run_rank(cfg, source, identity_reducer, store);
    return result;
}

double rmse(const Volume& a, const Volume& b, index_t margin)
{
    require(a.size() == b.size(), "rmse: volume size mismatch");
    const Dim3 d = a.size();
    require(2 * margin < d.x && 2 * margin < d.y && 2 * margin < d.z,
            "rmse: margin leaves no interior");
    double acc = 0.0;
    index_t n = 0;
    for (index_t k = margin; k < d.z - margin; ++k)
        for (index_t j = margin; j < d.y - margin; ++j)
            for (index_t i = margin; i < d.x - margin; ++i) {
                const double e = static_cast<double>(a.at(i, j, k)) - static_cast<double>(b.at(i, j, k));
                acc += e * e;
                ++n;
            }
    return std::sqrt(acc / static_cast<double>(n));
}

double rmse_flat(const Volume& a, const Volume& reference, index_t margin, float flat_tol)
{
    require(a.size() == reference.size(), "rmse_flat: volume size mismatch");
    require(margin >= 1, "rmse_flat: margin must be >= 1 (neighbourhood access)");
    const Dim3 d = a.size();
    require(2 * margin < d.x && 2 * margin < d.y && 2 * margin < d.z,
            "rmse_flat: margin leaves no interior");
    double acc = 0.0;
    index_t n = 0;
    for (index_t k = margin; k < d.z - margin; ++k)
        for (index_t j = margin; j < d.y - margin; ++j)
            for (index_t i = margin; i < d.x - margin; ++i) {
                const float c = reference.at(i, j, k);
                const bool flat = std::abs(reference.at(i - 1, j, k) - c) < flat_tol &&
                                  std::abs(reference.at(i + 1, j, k) - c) < flat_tol &&
                                  std::abs(reference.at(i, j - 1, k) - c) < flat_tol &&
                                  std::abs(reference.at(i, j + 1, k) - c) < flat_tol &&
                                  std::abs(reference.at(i, j, k - 1) - c) < flat_tol &&
                                  std::abs(reference.at(i, j, k + 1) - c) < flat_tol;
                if (!flat) continue;
                const double e = static_cast<double>(a.at(i, j, k)) - static_cast<double>(c);
                acc += e * e;
                ++n;
            }
    require(n > 0, "rmse_flat: no flat voxels in the interior");
    return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace xct::recon
