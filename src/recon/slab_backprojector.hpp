#pragma once
// The back-projection engine of one rank's pipeline, extracted so it can
// be driven from two places with bit-identical arithmetic:
//
//   * rank_pipeline's bp stage (the normal Fig. 9 path);
//   * the degraded-mode reduce (recon::distributed): a survivor replays a
//     dead peer's view share through a second SlabBackprojector and
//     contributes the result under the dead rank's reduction key —
//     bitwise-identical to what the dead rank would have produced.
//
// Owns the simulated device, the circular texture of H detector rows and
// the Algorithm-3 upload bookkeeping (differential bands, wrap-splitting).

#include <optional>
#include <vector>

#include "backproj/kernel.hpp"
#include "core/decompose.hpp"
#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "faults/retry.hpp"
#include "recon/source.hpp"
#include "sim/device.hpp"

namespace xct::recon {

class SlabBackprojector {
public:
    struct Config {
        CbctGeometry geometry;                     ///< full problem geometry
        Range views{};                             ///< this engine's view share
        std::size_t device_capacity = 512u << 20;  ///< device budget [bytes]
        double h2d_gbps = 12.0;
        double d2h_gbps = 12.0;
        std::optional<faults::RetryPolicy> retry;  ///< transfer-fault retry
    };

    /// `h` is the texture depth (max rows length over the slab plans),
    /// `origin` the first plan's rows.lo (the circular addressing offset),
    /// `max_slab` the largest slab length (sizes the device sub-volume).
    SlabBackprojector(const Config& cfg, index_t h, index_t origin, index_t max_slab);

    /// Convenience: derive h/origin/max_slab from a full slab schedule.
    SlabBackprojector(const Config& cfg, const std::vector<SlabPlan>& plans);

    /// Algorithm 3: copy a (differential) row band into circular depth
    /// positions, splitting runs that would wrap (lines 10-15).
    void upload_band(const ProjectionStack& band);

    /// Back-project one slab from the resident texture rows and model the
    /// sub-volume device->host move (Table 5's T_D2H).
    Volume backproject(const SlabPlan& plan);

    sim::Device& device() { return device_; }
    const sim::Device& device() const { return device_; }

private:
    Config cfg_;
    index_t origin_;
    sim::Device device_;
    sim::Texture3 tex_;
    sim::DeviceBuffer slab_dev_;  ///< models the device-resident sub-volume
    /// Float-converted matrices of this engine's view share, built once at
    /// construction and reused by every backproject() call (previously the
    /// kernel re-converted the full matrix set per slab x batch).
    backproj::MatrixPack pack_;
};

}  // namespace xct::recon
