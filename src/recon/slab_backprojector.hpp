#pragma once
// The back-projection engine of one rank's pipeline, extracted so it can
// be driven from two places with bit-identical arithmetic:
//
//   * rank_pipeline's bp stage (the normal Fig. 9 path);
//   * the degraded-mode reduce (recon::distributed): a survivor replays a
//     dead peer's view share through a second SlabBackprojector and
//     contributes the result under the dead rank's reduction key —
//     bitwise-identical to what the dead rank would have produced.
//
// Owns the simulated device, the circular texture of H detector rows and
// the Algorithm-3 upload bookkeeping (differential bands, wrap-splitting).

#include <optional>
#include <vector>

#include "backproj/kernel.hpp"
#include "core/decompose.hpp"
#include "core/geometry.hpp"
#include "core/volume.hpp"
#include "faults/retry.hpp"
#include "io/band_codec.hpp"
#include "recon/source.hpp"
#include "sim/device.hpp"

namespace xct::recon {

class SlabBackprojector {
public:
    struct Config {
        CbctGeometry geometry;                     ///< full problem geometry
        Range views{};                             ///< this engine's view share
        std::size_t device_capacity = 512u << 20;  ///< device budget [bytes]
        double h2d_gbps = 12.0;
        double d2h_gbps = 12.0;
        std::optional<faults::RetryPolicy> retry;  ///< transfer-fault retry
    };

    /// `h` is the texture depth (max rows length over the slab plans),
    /// `origin` the first plan's rows.lo (the circular addressing offset),
    /// `max_slab` the largest slab length (sizes the device sub-volume).
    SlabBackprojector(const Config& cfg, index_t h, index_t origin, index_t max_slab);

    /// Convenience: derive h/origin/max_slab from a full slab schedule.
    SlabBackprojector(const Config& cfg, const std::vector<SlabPlan>& plans);

    /// A band gathered into upload-ready plane order: the host-side half
    /// of Algorithm 3, split from the device copy so the prefetch stage
    /// can run it for band i+1 while band i's slab back-projects.
    /// `planes` holds the wrap-split segments concatenated (each segment
    /// is nplanes contiguous height*width planes); the buffer is plain
    /// storage the pipeline recycles through its double-buffer ring.
    struct StagedBand {
        struct Segment {
            index_t depth = 0;    ///< circular texture depth of the first plane
            index_t nplanes = 0;  ///< consecutive planes in this run
        };
        std::vector<Segment> segments;
        std::vector<float> planes;
        /// Bytes this band moved over the wire before staging (q8 payload
        /// + header); 0 means raw fp32 — commit bills texel bytes.
        std::size_t wire_bytes = 0;
    };

    /// Gather `band` into upload order (Algorithm 3 lines 10-15: circular
    /// depth addressing, wrap-split runs).  Pure host-side work — no
    /// device traffic, no fault gates — so commit_band(stage_band(b)) is
    /// bitwise-identical to the historical one-shot upload_band(b).
    /// `storage` is recycled as the staging buffer (resized as needed).
    StagedBand stage_band(const ProjectionStack& band, std::vector<float> storage = {}) const;

    /// Decode a q8 band (site "band.decode", digest-verified, retried
    /// under the configured policy) and gather it.  wire_bytes is set so
    /// commit bills the compressed transport, not fp32 texels.
    StagedBand stage_band(const io::EncodedBand& e, std::vector<float> storage = {}) const;

    /// Device half: copy the staged segments into the circular texture
    /// (the simulated cudaMemcpy3D calls, fault-gated + digest-verified
    /// at "sim.h2d").
    void commit_band(const StagedBand& staged);

    /// Algorithm 3: copy a (differential) row band into circular depth
    /// positions, splitting runs that would wrap (lines 10-15).
    /// Equivalent to commit_band(stage_band(band)).
    void upload_band(const ProjectionStack& band);

    /// q8 transport path: decode + gather + upload.  Same texture state as
    /// upload_band(decode_band(e)) but billed at wire bytes.
    void upload_band(const io::EncodedBand& e);

    /// Back-project one slab from the resident texture rows and model the
    /// sub-volume device->host move (Table 5's T_D2H).
    Volume backproject(const SlabPlan& plan);

    sim::Device& device() { return device_; }
    const sim::Device& device() const { return device_; }

private:
    Config cfg_;
    index_t origin_;
    sim::Device device_;
    sim::Texture3 tex_;
    sim::DeviceBuffer slab_dev_;  ///< models the device-resident sub-volume
    /// Float-converted matrices of this engine's view share, built once at
    /// construction and reused by every backproject() call (previously the
    /// kernel re-converted the full matrix set per slab x batch).
    backproj::MatrixPack pack_;
};

}  // namespace xct::recon
