#pragma once
// The distributed FBP framework (Sec. 4.4): Ng groups of Nr ranks, the Np
// dimension split within each group, one segmented reduction per slab, and
// the end-to-end per-rank pipeline of Fig. 9 on every rank.
//
// Ranks run as minimpi threads; each owns a simulated device (one GPU per
// rank, Eq. 11) and its own projection source.  Group g reconstructs the
// slice range slices_of_group(g); within the group every rank
// back-projects its view share into the same slabs, which are then summed
// to the group root with a *segmented* reduce — per-group communicators
// from MPI_Comm_split, exactly the communication structure that replaces
// the two global collectives of prior work with one O(log Nr) reduction.

#include <optional>

#include "io/pfs.hpp"
#include "minimpi/comm.hpp"
#include "recon/rank_pipeline.hpp"

namespace xct::recon {

struct DistributedConfig {
    CbctGeometry geometry;
    GroupLayout layout;  ///< Ng groups x Nr ranks
    index_t batches = 8;
    filter::Window window = filter::Window::RamLak;
    std::size_t device_capacity = 512u << 20;
    double h2d_gbps = 12.0;
    double d2h_gbps = 12.0;
    bool threaded = true;
    std::optional<BeerLawScalar> beer;
    /// Hierarchical reduction: ranks per pseudo-node (0 = flat reduce).
    index_t ranks_per_node = 0;
};

struct DistributedResult {
    Volume volume;                 ///< assembled full reconstruction
    std::vector<RankStats> ranks;  ///< per-rank pipeline statistics
    double wall_seconds = 0.0;     ///< end-to-end wall time (max over ranks)
};

/// Run the distributed reconstruction.  `make_source` builds each rank's
/// projection source; when `pfs` is non-null every group root additionally
/// stores its reduced slabs there (bandwidth-accounted), one file per slab.
DistributedResult reconstruct_distributed(const DistributedConfig& cfg,
                                          const SourceFactory& make_source, io::Pfs* pfs = nullptr);

}  // namespace xct::recon
