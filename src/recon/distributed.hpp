#pragma once
// The distributed FBP framework (Sec. 4.4): Ng groups of Nr ranks, the Np
// dimension split within each group, one segmented reduction per slab, and
// the end-to-end per-rank pipeline of Fig. 9 on every rank.
//
// Ranks run as minimpi threads; each owns a simulated device (one GPU per
// rank, Eq. 11) and its own projection source.  Group g reconstructs the
// slice range slices_of_group(g); within the group every rank
// back-projects its view share into the same slabs, which are then summed
// to the group root with a *segmented* reduce — per-group communicators
// from MPI_Comm_split, exactly the communication structure that replaces
// the two global collectives of prior work with one O(log Nr) reduction.
//
// Resilience (see DESIGN.md "Resilience"):
//
//   * degraded_reduce — a rank that dies at startup (fault site
//     "rank.dropout") is detected by a world-wide liveness exchange; its
//     whole view share is taken over by one survivor of its group, which
//     replays it through a second SlabBackprojector and contributes the
//     partial under the dead rank's reduction key via reduce_sum_parts.
//     Because the takeover reproduces the dead rank's exact arithmetic
//     and the keyed reduce preserves the original summation order, the
//     degraded result is bitwise-identical to the unfaulted (flat-reduce)
//     run.  Without degraded_reduce a dropout aborts the whole team.
//   * retry — forwarded to every rank's pipeline (source loads, device
//     transfers).
//   * checkpoint_dir — per-rank slab checkpoints under rank_<r>/; a rerun
//     resumes at the group-reconciled cursor (minimum over survivors; 0
//     when the group root died, since saved slabs live with the root).

#include <filesystem>
#include <optional>

#include "io/pfs.hpp"
#include "minimpi/comm.hpp"
#include "recon/rank_pipeline.hpp"

namespace xct::recon {

struct DistributedConfig {
    CbctGeometry geometry;
    GroupLayout layout;  ///< Ng groups x Nr ranks
    index_t batches = 8;
    filter::Window window = filter::Window::RamLak;
    std::size_t device_capacity = 512u << 20;
    double h2d_gbps = 12.0;
    double d2h_gbps = 12.0;
    bool threaded = true;
    std::optional<BeerLawScalar> beer;
    /// Hierarchical reduction: ranks per pseudo-node (0 = flat reduce).
    index_t ranks_per_node = 0;
    /// Survive rank dropouts by re-assigning dead ranks' view shares to
    /// group survivors (accuracy-identical; see header comment).  Requires
    /// the flat reduce (ranks_per_node == 0) when a rank actually dies.
    bool degraded_reduce = false;
    /// Retry transient source/PFS/device faults on every rank.
    std::optional<faults::RetryPolicy> retry;
    /// Slab-granular checkpoint/restart root (per-rank subdirectories).
    std::optional<std::filesystem::path> checkpoint_dir;
    /// Watchdog deadline (seconds; <= 0 disables).  Forwarded to every
    /// rank's pipeline, and additionally arms a pre-flight health probe:
    /// a rank stalled past the deadline at startup (fault site
    /// "rank.stall") is declared dead and handled exactly like a dropout,
    /// so degraded_reduce takes over its view share.
    double watchdog_timeout_s = 0.0;
    /// Differential band wire format, forwarded to every rank (and to the
    /// degraded-mode takeover replay, which must reproduce the dead
    /// rank's arithmetic — including its quantisation — bitwise).
    io::BandCodec band_codec = io::BandCodec::Raw;
    /// Double-buffered band prefetch on every rank (RankConfig::prefetch).
    bool prefetch = false;
    /// Inter-stage FIFO depth on every rank (RankConfig::queue_depth).
    index_t queue_depth = 2;
};

struct DistributedResult {
    Volume volume;                 ///< assembled full reconstruction
    std::vector<RankStats> ranks;  ///< per-rank pipeline statistics
    double wall_seconds = 0.0;     ///< end-to-end wall time (max over ranks)
    std::vector<RankId> dead;      ///< world ranks lost to dropout (degraded mode)
};

/// Run the distributed reconstruction.  `make_source` builds each rank's
/// projection source; when `pfs` is non-null every group root additionally
/// stores its reduced slabs there (bandwidth-accounted), one file per slab.
DistributedResult reconstruct_distributed(const DistributedConfig& cfg,
                                          const SourceFactory& make_source, io::Pfs* pfs = nullptr);

}  // namespace xct::recon
