#pragma once
// Single-node FDK reconstruction — the out-of-core reconstructor of
// Table 5 (one rank, one simulated device, full view range), built on the
// same rank pipeline as the distributed framework.
//
// FDK normalisation (DESIGN.md §6): the filtered projections carry
// pi/Np * Dsd/Dso (folded into the ramp kernel), back-projection applies
// the per-voxel 1/z^2 distance weight, so the output approximates the
// attenuation field sampled on the reconstruction grid.

#include "recon/rank_pipeline.hpp"

namespace xct::recon {

/// Single-node FDK result.
struct FdkResult {
    Volume volume;
    RankStats stats;
};

/// Reconstruct the full volume of `cfg.geometry` from `source` on one
/// simulated device.  `cfg.views`/`cfg.slices` are ignored (set to the
/// full ranges).  Out-of-core behaviour falls out of cfg.batches and
/// cfg.device_capacity: the volume never has to fit the device.
FdkResult reconstruct_fdk(RankConfig cfg, ProjectionSource& source);

/// Convenience: reconstruct a phantom through `g` (in-memory, threaded).
FdkResult reconstruct_fdk(const CbctGeometry& g, const std::vector<phantom::Ellipsoid>& phantom,
                          filter::Window window = filter::Window::RamLak);

/// Region-of-interest reconstruction: only output slices `slices`
/// (half-open, global z coordinates) are computed; the returned volume has
/// slices.length() slices (slice k of the result is global slice
/// slices.lo + k).  Loads/filters only the detector bands those slices
/// need — the decomposition makes ROI work proportional to the ROI.
FdkResult reconstruct_fdk_slices(RankConfig cfg, ProjectionSource& source, Range slices);

/// Root-mean-square error between two equal-size volumes, optionally
/// restricted to the centred box that excludes `margin` voxels on every
/// face (FDK edge slices are intrinsically approximate).
double rmse(const Volume& a, const Volume& b, index_t margin = 0);

/// RMSE restricted to voxels whose 6-neighbourhood in `reference` is flat
/// (all neighbour differences below `flat_tol`).  Discontinuity voxels are
/// excluded because any band-limited reconstruction rings there; this is
/// the tight interior-accuracy metric used by the quality tests.
double rmse_flat(const Volume& a, const Volume& reference, index_t margin = 1,
                 float flat_tol = 1e-3f);

}  // namespace xct::recon
