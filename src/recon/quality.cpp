#include "recon/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xct::recon {

double psnr(const Volume& a, const Volume& b)
{
    require(a.size() == b.size(), "psnr: volume size mismatch");
    double mse = 0.0;
    float lo = b.span()[0], hi = b.span()[0];
    for (index_t i = 0; i < a.count(); ++i) {
        const std::size_t ii = static_cast<std::size_t>(i);
        const double d = static_cast<double>(a.span()[ii]) - static_cast<double>(b.span()[ii]);
        mse += d * d;
        lo = std::min(lo, b.span()[ii]);
        hi = std::max(hi, b.span()[ii]);
    }
    mse /= static_cast<double>(a.count());
    if (mse == 0.0) return std::numeric_limits<double>::infinity();
    const double peak = static_cast<double>(hi - lo);
    require(peak > 0.0, "psnr: reference volume is constant");
    return 10.0 * std::log10(peak * peak / mse);
}

RegionStats region_stats(const Volume& v, double ci, double cj, double ck, double radius_vox)
{
    require(radius_vox > 0.0, "region_stats: radius must be positive");
    const Dim3 d = v.size();
    RegionStats r;
    double sum = 0.0, sum2 = 0.0;
    const double r2 = radius_vox * radius_vox;
    for (index_t k = 0; k < d.z; ++k)
        for (index_t j = 0; j < d.y; ++j)
            for (index_t i = 0; i < d.x; ++i) {
                const double dx = static_cast<double>(i) - ci;
                const double dy = static_cast<double>(j) - cj;
                const double dz = static_cast<double>(k) - ck;
                if (dx * dx + dy * dy + dz * dz > r2) continue;
                const double val = v.at(i, j, k);
                sum += val;
                sum2 += val * val;
                ++r.count;
            }
    require(r.count > 0, "region_stats: region contains no voxels");
    r.mean = sum / static_cast<double>(r.count);
    const double var = std::max(0.0, sum2 / static_cast<double>(r.count) - r.mean * r.mean);
    r.stddev = std::sqrt(var);
    return r;
}

double cnr(const RegionStats& feature, const RegionStats& background)
{
    const double noise =
        std::sqrt((feature.stddev * feature.stddev + background.stddev * background.stddev) / 2.0);
    require(noise > 0.0, "cnr: zero noise in both regions");
    return std::abs(feature.mean - background.mean) / noise;
}

std::vector<float> profile_x(const Volume& v, index_t j, index_t k)
{
    require(j >= 0 && j < v.size().y && k >= 0 && k < v.size().z, "profile_x: (j, k) out of range");
    std::vector<float> out(static_cast<std::size_t>(v.size().x));
    for (index_t i = 0; i < v.size().x; ++i) out[static_cast<std::size_t>(i)] = v.at(i, j, k);
    return out;
}

}  // namespace xct::recon
