#include "recon/rank_pipeline.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/mutex.hpp"
#include "core/names.hpp"
#include "faults/checkpoint.hpp"
#include "faults/fault.hpp"
#include "filter/parker.hpp"
#include "integrity/integrity.hpp"
#include "integrity/watchdog.hpp"
#include "pipeline/queue.hpp"
#include "recon/slab_backprojector.hpp"
#include "telemetry/trace.hpp"

namespace xct::recon {
namespace {

struct LoadItem {
    index_t idx = 0;
    SlabPlan plan;
    std::optional<ProjectionStack> delta;  ///< absent when fully cached (Eq. 6 empty)
    /// q8 wire form of the filtered delta (band_codec == Q8; `delta` is
    /// released once encoded — downstream stages see only the wire form,
    /// which is what makes the transport compression honest).
    std::optional<io::EncodedBand> encoded;
};

struct VolItem {
    index_t idx = 0;
    SlabPlan plan;
    Volume slab;
};

/// Hand-off from the prefetch stage to bp: the band already gathered
/// (and, under q8, decoded) into upload order.
struct BpItem {
    index_t idx = 0;
    SlabPlan plan;
    std::optional<SlabBackprojector::StagedBand> staged;
};

void filter_item(const RankConfig& cfg, const filter::FilterEngine& engine,
                 const filter::ParkerWeights* parker, bool counts, LoadItem& item)
{
    if (!item.delta) return;
    if (counts) {
        require(cfg.beer.has_value(),
                "run_rank: source emits raw counts but no Beer-law calibration configured");
        beer_law(*item.delta, *cfg.beer);
    }
    if (parker != nullptr) parker->apply(*item.delta);
    engine.apply(*item.delta);
    if (cfg.band_codec == io::BandCodec::Q8) {
        item.encoded = io::encode_band(*item.delta);
        item.delta.reset();
    }
}

}  // namespace

RankStats run_rank(const RankConfig& cfg, ProjectionSource& source, const Reducer& reduce,
                   const Storer& store, const RankControl& ctl)
{
    cfg.geometry.validate();
    // Cooperative cancellation: one poll point per stage per slab.  The
    // throw rides the existing FirstError teardown (queues close, stage
    // threads join), so a cancel unwinds — releasing the device budget
    // held by the SlabBackprojector below — within one stage boundary.
    auto cancel_point = [&](const char* where) {
        if (ctl.cancel != nullptr) ctl.cancel->check(where);
    };
    auto slab_done = [&] {
        if (ctl.slabs_done != nullptr)
            ctl.slabs_done->fetch_add(1, std::memory_order_release);
    };
    cancel_point("setup");
    require(!cfg.views.empty() && cfg.views.lo >= 0 && cfg.views.hi <= cfg.geometry.num_proj,
            "run_rank: views out of range");
    require(!cfg.slices.empty() && cfg.slices.lo >= 0 && cfg.slices.hi <= cfg.geometry.vol.z,
            "run_rank: slices out of range");
    require(cfg.batches > 0, "run_rank: batches must be positive");
    require(cfg.queue_depth > 0, "run_rank: queue depth must be positive");

    // Eq. 12: Nb = ceil(Ns / Nc).
    const index_t nb = (cfg.slices.length() + cfg.batches - 1) / cfg.batches;
    const auto plans = plan_slabs(cfg.geometry, cfg.slices, nb);

    pipeline::Timeline tl;
    SlabBackprojector::Config bpc{cfg.geometry, cfg.views, cfg.device_capacity,
                                  cfg.h2d_gbps,  cfg.d2h_gbps, cfg.retry};
    SlabBackprojector bp(bpc, plans);
    const filter::FilterEngine engine(cfg.geometry, cfg.window);
    // Short scans need Parker redundancy weighting of this rank's views.
    std::optional<filter::ParkerWeights> parker;
    if (cfg.geometry.short_scan()) parker.emplace(cfg.geometry, cfg.views);
    const bool counts = source.raw_counts();

    RankStats stats;

    // Deadline supervision (--watchdog-timeout): the load and reduce
    // stages are the ones that block on external progress (storage, the
    // other ranks of the group) and therefore the ones a stall wedges.
    integrity::Watchdog wd(cfg.watchdog_timeout_s);

    // Slab-granular restart: replay checkpointed slabs (group roots saved
    // them; non-roots have none and only skip), then resume computation at
    // the first incomplete slab.  The resume point must be identical across
    // a reduction group — cfg.checkpoint->resume_limit carries the
    // group-reconciled minimum (already based on validated cursors, so a
    // damaged slab below the raw cursor is recomputed, not trusted).
    std::optional<faults::CheckpointStore> ckpt;
    index_t resume = 0;
    if (cfg.checkpoint) {
        ckpt.emplace(cfg.checkpoint->dir);
        resume = std::min(ckpt->validated_cursor(), static_cast<index_t>(plans.size()));
        if (cfg.checkpoint->resume_limit >= 0)
            resume = std::min(resume, cfg.checkpoint->resume_limit);
        for (index_t i = 0; i < resume; ++i) {
            if (!ckpt->has_slab(SlabId{i})) continue;
            pipeline::ScopedSpan span(tl, "restore", i);
            // load_slab runs the checkpoint.load corruption point and
            // digest verify; a transit flip is transient, so re-read.
            auto attempt = [&] { return ckpt->load_slab(SlabId{i}); };
            const Volume slab =
                cfg.retry ? faults::with_retry(names::kSiteCheckpointLoad, *cfg.retry, attempt)
                          : attempt();
            store(slab, plans[static_cast<std::size_t>(i)]);
            ++stats.slabs_restored;
            slab_done();
        }
    }

    auto load_one = [&](index_t idx) {
        cancel_point("load");
        pipeline::ScopedSpan span(tl, "load", idx);
        LoadItem item{idx, plans[static_cast<std::size_t>(idx)], std::nullopt, std::nullopt};
        const Range band = item.plan.delta;
        if (!band.empty()) {
            auto attempt = [&] {
                return wd.supervise(names::kWatchSourceLoad, [&] {
                    faults::check(names::kSiteSourceLoad);
                    faults::stall_point(names::kSiteSourceLoad);
                    ProjectionStack stack = source.load(cfg.views, band);
                    // Producer-boundary digest, then the transit corruption
                    // point, then verify — a flip between source and
                    // consumer is caught here and re-fetched by the retry.
                    const integrity::digest_t d =
                        integrity::enabled() ? integrity::checksum_of<float>(stack.span()) : 0;
                    faults::corrupt(names::kSiteSourceLoad,
                                    std::as_writable_bytes(stack.span()));
                    integrity::verify_of<float>(names::kSiteSourceLoad, stack.span(), d);
                    return stack;
                });
            };
            item.delta = cfg.retry ? faults::with_retry(names::kSiteSourceLoad, *cfg.retry, attempt)
                                   : attempt();
        }
        return item;
    };

    // A restarted run resumes with a cold texture, so the rows the completed
    // slabs had staged must be re-loaded, re-filtered and re-uploaded.  This
    // replays the *original* delta bands one by one rather than loading one
    // merged catch-up band: the fp32 filter packs two rows per complex
    // transform, so its rounding depends on how rows were paired within
    // each band, and only the original banding reproduces the original
    // run's texture — and therefore the restarted slabs — bitwise
    // (Resilience.CheckpointRestartMidRunIsBitwiseIdentical).
    auto upload_item = [&](const LoadItem& item) {
        if (item.encoded)
            bp.upload_band(*item.encoded);
        else if (item.delta)
            bp.upload_band(*item.delta);
    };
    if (resume > 0 && resume < static_cast<index_t>(plans.size())) {
        for (index_t i = 0; i < resume; ++i) {
            LoadItem item = load_one(i);
            if (!item.delta) continue;
            {
                pipeline::ScopedSpan span(tl, "filter", i);
                filter_item(cfg, engine, parker ? &*parker : nullptr, counts, item);
            }
            upload_item(item);
        }
    }
    auto bp_one = [&](const LoadItem& item) {
        cancel_point("bp");
        upload_item(item);
        pipeline::ScopedSpan span(tl, "bp", item.idx);
        return bp.backproject(item.plan);
    };
    auto reduce_one = [&](VolItem& v) {
        cancel_point("reduce");
        pipeline::ScopedSpan span(tl, "mpi", v.idx);
        // Supervised: a collective stuck past the deadline (stalled peer)
        // surfaces as DeadlineExceeded instead of wedging the run.  Note
        // this fail-louds the *team* — mid-collective state cannot be
        // retried by one rank alone (DESIGN.md §3f).
        const bool is_root = wd.supervise(names::kWatchReduce, [&] {
            return reduce(v.slab, v.plan);
        });
        // Non-roots are done with this slab once the reduce completes.
        if (!is_root) {
            if (ckpt) ckpt->advance(v.idx + 1);
            slab_done();
        }
        return is_root;
    };
    auto store_one = [&](const VolItem& v) {
        cancel_point("store");
        pipeline::ScopedSpan span(tl, "store", v.idx);
        store(v.slab, v.plan);
        // Roots record the reduced slab; the cursor only advances once the
        // slab is durably saved, so a crash between store and advance just
        // recomputes this slab.
        if (ckpt) {
            ckpt->save_slab(SlabId{v.idx}, v.slab);
            ckpt->advance(v.idx + 1);
        }
        slab_done();
    };

    if (!cfg.threaded) {
        for (index_t i = resume; i < static_cast<index_t>(plans.size()); ++i) {
            LoadItem item = load_one(i);
            {
                pipeline::ScopedSpan span(tl, "filter", i);
                filter_item(cfg, engine, parker ? &*parker : nullptr, counts, item);
            }
            VolItem v{i, item.plan, bp_one(item)};
            if (reduce_one(v)) store_one(v);
        }
    } else {
        const std::size_t qd = static_cast<std::size_t>(cfg.queue_depth);
        pipeline::BoundedQueue<LoadItem> q0(qd), q1(qd);
        pipeline::BoundedQueue<VolItem> q2(qd), q3(qd);
        // Prefetch double-buffer machinery (cfg.prefetch): qp hands staged
        // bands to bp; qbuf is the recycle ring returning the staging
        // buffers.  Seeding qd+1 buffers keeps both ends non-blocking
        // against each other (bp can always return a buffer; prefetch
        // only waits when qd+1 stagings are already outstanding), and
        // recycling them makes the steady state allocation-free once
        // every buffer has grown to the largest band.
        std::optional<pipeline::BoundedQueue<BpItem>> qp;
        std::optional<pipeline::BoundedQueue<std::vector<float>>> qbuf;
        if (cfg.prefetch) {
            qp.emplace(qd);
            qbuf.emplace(qd + 1);
            for (std::size_t i = 0; i < qd + 1; ++i) qbuf->push(std::vector<float>{});
        }

        // Stage threads inherit the rank tag of the calling (minimpi rank)
        // thread so telemetry attributes their spans to the right rank.
        const RankId telemetry_rank = telemetry::current_rank();

        FirstError error;
        auto guard = [&](auto&& body) {
            try {
                body();
            } catch (...) {
                error.capture();
                q0.close();
                q1.close();
                q2.close();
                q3.close();
                if (qp) qp->close();
                if (qbuf) qbuf->close();
            }
        };

        std::thread t_load([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                for (index_t i = resume; i < static_cast<index_t>(plans.size()); ++i)
                    q0.push(load_one(i));
                q0.close();
            });
        });
        std::thread t_filter([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                while (auto item = q0.pop()) {
                    cancel_point("filter");
                    {
                        pipeline::ScopedSpan span(tl, "filter", item->idx);
                        filter_item(cfg, engine, parker ? &*parker : nullptr, counts, *item);
                    }
                    q1.push(std::move(*item));
                }
                q1.close();
            });
        });
        // The prefetch stage overlaps band i+1's staging (row gather; q8
        // decode + digest verify) with slab i's back-projection — the
        // host half of Algorithm 3 moves off the bp thread's critical
        // path, the device copy stays on it.
        std::optional<std::thread> t_prefetch;
        if (cfg.prefetch)
            t_prefetch.emplace([&] {
                telemetry::set_current_rank(telemetry_rank);
                guard([&] {
                    while (auto item = q1.pop()) {
                        BpItem b{item->idx, item->plan, std::nullopt};
                        if (item->delta || item->encoded) {
                            auto storage = qbuf->pop();
                            if (!storage) break;  // pipeline tearing down
                            pipeline::ScopedSpan span(tl, "prefetch", item->idx);
                            b.staged = item->encoded
                                           ? bp.stage_band(*item->encoded, std::move(*storage))
                                           : bp.stage_band(*item->delta, std::move(*storage));
                        }
                        qp->push(std::move(b));
                    }
                    qp->close();
                });
            });
        std::thread t_bp([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                if (cfg.prefetch) {
                    while (auto b = qp->pop()) {
                        cancel_point("bp");
                        if (b->staged) {
                            bp.commit_band(*b->staged);
                            qbuf->push(std::move(b->staged->planes));
                        }
                        VolItem v{b->idx, b->plan, Volume{}};
                        {
                            pipeline::ScopedSpan span(tl, "bp", b->idx);
                            v.slab = bp.backproject(b->plan);
                        }
                        q2.push(std::move(v));
                    }
                } else {
                    while (auto item = q1.pop()) {
                        VolItem v{item->idx, item->plan, bp_one(*item)};
                        q2.push(std::move(v));
                    }
                }
                q2.close();
            });
        });
        // The reduce stage runs on the caller's thread — the "MPI thread"
        // of Fig. 9 is the main thread in the paper, and minimpi
        // collectives must be called from the rank's own thread.
        std::thread t_store([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                while (auto v = q3.pop()) store_one(*v);
            });
        });

        guard([&] {
            while (auto v = q2.pop()) {
                if (reduce_one(*v))
                    q3.push(std::move(*v));
            }
            q3.close();
        });

        t_load.join();
        t_filter.join();
        if (t_prefetch) t_prefetch->join();
        t_bp.join();
        t_store.join();
        error.rethrow_if_set();
    }

    stats.t_load = tl.stage_busy("load");
    stats.t_filter = tl.stage_busy("filter");
    stats.t_prefetch = tl.stage_busy("prefetch");
    stats.t_bp = tl.stage_busy("bp");
    stats.t_reduce = tl.stage_busy("mpi");
    stats.t_store = tl.stage_busy("store");
    stats.wall = tl.makespan();
    stats.h2d = bp.device().h2d_stats();
    stats.d2h = bp.device().d2h_stats();
    stats.spans = tl.spans();
    return stats;
}

}  // namespace xct::recon
