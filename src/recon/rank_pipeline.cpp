#include "recon/rank_pipeline.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "backproj/kernel.hpp"
#include "filter/parker.hpp"
#include "pipeline/queue.hpp"
#include "telemetry/trace.hpp"

namespace xct::recon {
namespace {

struct LoadItem {
    index_t idx = 0;
    SlabPlan plan;
    std::optional<ProjectionStack> delta;  ///< absent when fully cached (Eq. 6 empty)
};

struct VolItem {
    index_t idx = 0;
    SlabPlan plan;
    Volume slab;
};

/// The back-projection stage state: simulated device, circular texture and
/// the Algorithm-3 upload bookkeeping.
class BpStage {
public:
    BpStage(const RankConfig& cfg, index_t h, index_t origin, index_t max_slab)
        : cfg_(cfg), origin_(origin),
          device_(cfg.device_capacity, cfg.h2d_gbps, cfg.d2h_gbps),
          tex_(device_, cfg.geometry.nu, cfg.views.length(), h),
          slab_dev_(device_, cfg.geometry.vol.x * cfg.geometry.vol.y * max_slab),
          mats_all_(projection_matrices(cfg.geometry))
    {
    }

    /// Upload a differential row band and back-project one slab.
    Volume process(const LoadItem& item, pipeline::Timeline& tl)
    {
        if (item.delta) upload_delta(*item.delta);

        Volume slab(Dim3{cfg_.geometry.vol.x, cfg_.geometry.vol.y, item.plan.slab.length()});
        {
            pipeline::ScopedSpan span(tl, "bp", item.idx);
            const std::span<const Mat34> mats(mats_all_.data() + cfg_.views.lo,
                                              static_cast<std::size_t>(cfg_.views.length()));
            backproj::backproject_streaming(
                tex_, mats, slab, backproj::StreamOffsets{item.plan.slab.lo, origin_},
                cfg_.geometry.nu, cfg_.geometry.nv);
        }
        // Model the sub-volume device->host move (the kernel conceptually
        // filled slab_dev_; Table 5's T_D2H).
        device_.account_d2h(static_cast<std::size_t>(slab.count()) * sizeof(float));
        return slab;
    }

    const sim::Device& device() const { return device_; }

private:
    /// Algorithm 3: copy the band into circular depth positions, splitting
    /// runs that would wrap (lines 10-15).
    void upload_delta(const ProjectionStack& delta)
    {
        const index_t views = delta.views();
        const index_t nu = delta.cols();
        const index_t h = tex_.depth();
        index_t v = delta.row_begin();
        const index_t v_end = v + delta.rows();
        std::vector<float> buf;
        while (v < v_end) {
            index_t depth = (v - origin_) % h;
            if (depth < 0) depth += h;
            const index_t run = std::min(v_end - v, h - depth);
            buf.resize(static_cast<std::size_t>(run * views * nu));
            for (index_t r = 0; r < run; ++r)
                for (index_t s = 0; s < views; ++s) {
                    const auto row = delta.row(s, v + r);
                    std::copy(row.begin(), row.end(),
                              buf.begin() + static_cast<std::ptrdiff_t>((r * views + s) * nu));
                }
            tex_.copy_planes(std::span<const float>(buf.data(),
                                                    static_cast<std::size_t>(run * views * nu)),
                             depth, run);
            v += run;
        }
    }

    const RankConfig& cfg_;
    index_t origin_;
    sim::Device device_;
    sim::Texture3 tex_;
    sim::DeviceBuffer slab_dev_;  ///< models the device-resident sub-volume
    std::vector<Mat34> mats_all_;
};

void filter_item(const RankConfig& cfg, const filter::FilterEngine& engine,
                 const filter::ParkerWeights* parker, bool counts, LoadItem& item)
{
    if (!item.delta) return;
    if (counts) {
        require(cfg.beer.has_value(),
                "run_rank: source emits raw counts but no Beer-law calibration configured");
        beer_law(*item.delta, *cfg.beer);
    }
    if (parker != nullptr) parker->apply(*item.delta);
    engine.apply(*item.delta);
}

}  // namespace

RankStats run_rank(const RankConfig& cfg, ProjectionSource& source, const Reducer& reduce,
                   const Storer& store)
{
    cfg.geometry.validate();
    require(!cfg.views.empty() && cfg.views.lo >= 0 && cfg.views.hi <= cfg.geometry.num_proj,
            "run_rank: views out of range");
    require(!cfg.slices.empty() && cfg.slices.lo >= 0 && cfg.slices.hi <= cfg.geometry.vol.z,
            "run_rank: slices out of range");
    require(cfg.batches > 0, "run_rank: batches must be positive");

    // Eq. 12: Nb = ceil(Ns / Nc).
    const index_t nb = (cfg.slices.length() + cfg.batches - 1) / cfg.batches;
    const auto plans = plan_slabs(cfg.geometry, cfg.slices, nb);

    index_t h = 1;
    index_t max_slab = 1;
    for (const auto& p : plans) {
        h = std::max(h, p.rows.length());
        max_slab = std::max(max_slab, p.slab.length());
    }
    const index_t origin = plans.front().rows.lo;

    pipeline::Timeline tl;
    BpStage bp(cfg, h, origin, max_slab);
    const filter::FilterEngine engine(cfg.geometry, cfg.window);
    // Short scans need Parker redundancy weighting of this rank's views.
    std::optional<filter::ParkerWeights> parker;
    if (cfg.geometry.short_scan()) parker.emplace(cfg.geometry, cfg.views);
    const bool counts = source.raw_counts();

    RankStats stats;

    auto load_one = [&](index_t idx) {
        pipeline::ScopedSpan span(tl, "load", idx);
        LoadItem item{idx, plans[static_cast<std::size_t>(idx)], std::nullopt};
        if (!item.plan.delta.empty())
            item.delta = source.load(cfg.views, item.plan.delta);
        return item;
    };
    auto reduce_one = [&](VolItem& v) {
        pipeline::ScopedSpan span(tl, "mpi", v.idx);
        return reduce(v.slab, v.plan);
    };
    auto store_one = [&](const VolItem& v) {
        pipeline::ScopedSpan span(tl, "store", v.idx);
        store(v.slab, v.plan);
    };

    if (!cfg.threaded) {
        for (index_t i = 0; i < static_cast<index_t>(plans.size()); ++i) {
            LoadItem item = load_one(i);
            {
                pipeline::ScopedSpan span(tl, "filter", i);
                filter_item(cfg, engine, parker ? &*parker : nullptr, counts, item);
            }
            VolItem v{i, item.plan, bp.process(item, tl)};
            if (reduce_one(v)) store_one(v);
        }
    } else {
        pipeline::BoundedQueue<LoadItem> q0(2), q1(2);
        pipeline::BoundedQueue<VolItem> q2(2), q3(2);

        // Stage threads inherit the rank tag of the calling (minimpi rank)
        // thread so telemetry attributes their spans to the right rank.
        const index_t telemetry_rank = telemetry::current_rank();

        std::mutex em;
        std::exception_ptr first;
        auto guard = [&](auto&& body) {
            try {
                body();
            } catch (...) {
                std::lock_guard lk(em);
                if (!first) first = std::current_exception();
                q0.close();
                q1.close();
                q2.close();
                q3.close();
            }
        };

        std::thread t_load([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                for (index_t i = 0; i < static_cast<index_t>(plans.size()); ++i) q0.push(load_one(i));
                q0.close();
            });
        });
        std::thread t_filter([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                while (auto item = q0.pop()) {
                    {
                        pipeline::ScopedSpan span(tl, "filter", item->idx);
                        filter_item(cfg, engine, parker ? &*parker : nullptr, counts, *item);
                    }
                    q1.push(std::move(*item));
                }
                q1.close();
            });
        });
        std::thread t_bp([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                while (auto item = q1.pop()) {
                    VolItem v{item->idx, item->plan, bp.process(*item, tl)};
                    q2.push(std::move(v));
                }
                q2.close();
            });
        });
        // The reduce stage runs on the caller's thread — the "MPI thread"
        // of Fig. 9 is the main thread in the paper, and minimpi
        // collectives must be called from the rank's own thread.
        std::thread t_store([&] {
            telemetry::set_current_rank(telemetry_rank);
            guard([&] {
                while (auto v = q3.pop()) store_one(*v);
            });
        });

        guard([&] {
            while (auto v = q2.pop()) {
                if (reduce_one(*v))
                    q3.push(std::move(*v));
            }
            q3.close();
        });

        t_load.join();
        t_filter.join();
        t_bp.join();
        t_store.join();
        if (first) std::rethrow_exception(first);
    }

    stats.t_load = tl.stage_busy("load");
    stats.t_filter = tl.stage_busy("filter");
    stats.t_bp = tl.stage_busy("bp");
    stats.t_reduce = tl.stage_busy("mpi");
    stats.t_store = tl.stage_busy("store");
    stats.wall = tl.makespan();
    stats.h2d = bp.device().h2d_stats();
    stats.d2h = bp.device().d2h_stats();
    stats.spans = tl.spans();
    return stats;
}

}  // namespace xct::recon
