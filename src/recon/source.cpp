#include "recon/source.hpp"

#include <cmath>
#include <memory>
#include <random>

namespace xct::recon {

PhantomSource::PhantomSource(std::vector<phantom::Ellipsoid> ellipsoids, const CbctGeometry& g,
                             std::optional<BeerLawScalar> emit_counts,
                             std::optional<PoissonNoise> noise)
    : ellipsoids_(std::move(ellipsoids)), geometry_(g), emit_counts_(emit_counts), noise_(noise)
{
    geometry_.validate();
    require(!noise_ || emit_counts_,
            "PhantomSource: Poisson noise requires raw-count emission (it is photon noise)");
    if (noise_) require(noise_->photons_blank > 0.0, "PhantomSource: photons_blank must be positive");
}

ProjectionStack PhantomSource::load(Range views, Range band)
{
    ProjectionStack p = phantom::forward_project(ellipsoids_, geometry_, views, band);
    if (!emit_counts_) return p;

    if (!noise_) {
        inverse_beer_law(p.span(), *emit_counts_);
        return p;
    }

    // Noisy photon counts.  RNG seeded per (view, row) so the realisation
    // is independent of the requested band/view split.
    const float dark = emit_counts_->dark;
    const float span = emit_counts_->blank - dark;
    const double n0 = noise_->photons_blank;
    for (index_t s = 0; s < p.views(); ++s) {
        const index_t global_s = views.lo + s;
        for (index_t v = band.lo; v < band.hi; ++v) {
            std::mt19937_64 rng(noise_->seed ^ (static_cast<std::uint64_t>(global_s) << 32) ^
                                static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull);
            auto row = p.row(s, v);
            for (float& x : row) {
                const double lambda = n0 * std::exp(-static_cast<double>(x));
                std::poisson_distribution<long long> pois(lambda);
                const double photons = static_cast<double>(pois(rng));
                x = dark + static_cast<float>(span * photons / n0);
            }
        }
    }
    return p;
}

MemorySource::MemorySource(const ProjectionStack& full, bool counts) : full_(&full), counts_(counts)
{
}

ProjectionStack MemorySource::load(Range views, Range band)
{
    require(views.lo >= 0 && views.hi <= full_->views(), "MemorySource: views out of range");
    require(band.lo >= full_->row_begin() && band.hi <= full_->row_begin() + full_->rows(),
            "MemorySource: band outside resident rows");
    ProjectionStack out(views.length(), band, full_->cols());
    for (index_t s = views.lo; s < views.hi; ++s)
        for (index_t v = band.lo; v < band.hi; ++v) {
            const auto src = full_->row(s, v);
            const auto dst = out.row(s - views.lo, v);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    return out;
}

PfsSource::PfsSource(io::Pfs& pfs, std::string rel, bool counts)
    : pfs_(&pfs), rel_(std::move(rel)), counts_(counts)
{
    require(pfs.exists(rel_), "PfsSource: no such stack: " + rel_);
}

ProjectionStack PfsSource::load(Range views, Range band)
{
    return pfs_->load_stack_rows(rel_, views, band);
}

ViewDirSource::ViewDirSource(std::filesystem::path dir, bool counts)
    : dir_(std::move(dir)), counts_(counts)
{
    require(io::count_views(dir_) > 0, "ViewDirSource: no view files in " + dir_.string());
}

ProjectionStack ViewDirSource::load(Range views, Range band)
{
    return io::load_views(dir_, views, band);
}

SourceFactory make_shared_pfs_factory(io::Pfs& pfs, std::string rel, bool counts)
{
    // Pfs is internally thread-safe (atomic statistics; each load opens its
    // own stream), so the sources the factory hands out can share it with
    // no external locking.
    struct Shared {
        io::Pfs* pfs;
        std::string rel;
        bool counts;
    };
    auto shared = std::make_shared<Shared>();
    shared->pfs = &pfs;
    shared->rel = std::move(rel);
    shared->counts = counts;
    require(pfs.exists(shared->rel), "make_shared_pfs_factory: no such stack: " + shared->rel);

    class SharedPfsSource final : public ProjectionSource {
    public:
        explicit SharedPfsSource(std::shared_ptr<Shared> s) : s_(std::move(s)) {}
        ProjectionStack load(Range views, Range band) override
        {
            return s_->pfs->load_stack_rows(s_->rel, views, band);
        }
        bool raw_counts() const override { return s_->counts; }

    private:
        std::shared_ptr<Shared> s_;
    };

    return [shared](RankId) -> std::unique_ptr<ProjectionSource> {
        return std::make_unique<SharedPfsSource>(shared);
    };
}

}  // namespace xct::recon
