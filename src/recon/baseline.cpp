#include "recon/baseline.hpp"

#include <algorithm>

#include "backproj/kernel.hpp"
#include "core/decompose.hpp"

namespace xct::recon {
namespace {

/// Upload full detector frames of `views` into a texture shaped for the
/// streaming kernel (x = u, y = view, z = row).
sim::Texture3 upload_frames(sim::Device& dev, const ProjectionStack& p, Range views,
                            const CbctGeometry& g)
{
    sim::Texture3 tex(dev, g.nu, views.length(), g.nv);
    std::vector<float> plane(static_cast<std::size_t>(g.nu * views.length()));
    for (index_t v = 0; v < g.nv; ++v) {
        for (index_t s = views.lo; s < views.hi; ++s) {
            const auto row = p.row(s, v);
            std::copy(row.begin(), row.end(),
                      plane.begin() + static_cast<std::ptrdiff_t>((s - views.lo) * g.nu));
        }
        tex.copy_planes(plane, v, 1);
    }
    return tex;
}

}  // namespace

BaselineStats backproject_ifdk_style(const ProjectionStack& filtered, std::span<const Mat34> mats,
                                     const CbctGeometry& g, Volume& out, index_t nr,
                                     std::size_t device_capacity)
{
    require(static_cast<index_t>(mats.size()) == filtered.views(),
            "backproject_ifdk_style: one matrix per view required");
    require(filtered.rows() == g.nv && filtered.row_begin() == 0,
            "backproject_ifdk_style: full frames required (no Nv split in iFDK)");
    require(nr > 0 && nr <= g.num_proj, "backproject_ifdk_style: bad rank count");
    require(out.size() == g.vol, "backproject_ifdk_style: volume size mismatch");

    BaselineStats stats;
    out.fill(0.0f);
    for (index_t r = 0; r < nr; ++r) {
        sim::Device dev(device_capacity);
        const Range views = split_even(g.num_proj, nr, r);
        // Defining constraint: the FULL volume is resident on each device.
        sim::DeviceBuffer vol_dev(dev, out.count());
        const sim::Texture3 tex = upload_frames(dev, filtered, views, g);
        stats.device_peak = std::max(stats.device_peak, static_cast<std::uint64_t>(dev.used()));

        Volume partial(g.vol);
        backproj::backproject_streaming(
            tex, mats.subspan(static_cast<std::size_t>(views.lo),
                              static_cast<std::size_t>(views.length())),
            partial, backproj::StreamOffsets{0, 0}, g.nu, g.nv);
        dev.account_d2h(static_cast<std::size_t>(partial.count()) * sizeof(float));

        // Combining partial volumes: in iFDK this is an MPI gather/reduce
        // of FULL volumes — O(N) traffic.
        for (index_t i = 0; i < out.count(); ++i)
            out.span()[static_cast<std::size_t>(i)] += partial.span()[static_cast<std::size_t>(i)];
        stats.comm_bytes += static_cast<std::uint64_t>(partial.count()) * sizeof(float);
        stats.h2d_bytes += dev.h2d_stats().bytes;
    }
    stats.redundancy = 1;  // projections move once, but only because Nv is never split
    return stats;
}

BaselineStats backproject_lu_style(const ProjectionStack& filtered, std::span<const Mat34> mats,
                                   const CbctGeometry& g, Volume& out, index_t chunk_slices,
                                   std::size_t device_capacity, index_t batch_views)
{
    require(static_cast<index_t>(mats.size()) == filtered.views(),
            "backproject_lu_style: one matrix per view required");
    require(filtered.rows() == g.nv && filtered.row_begin() == 0,
            "backproject_lu_style: full frames required (no Nv split in Lu et al.)");
    require(chunk_slices > 0, "backproject_lu_style: chunk_slices must be positive");
    require(out.size() == g.vol, "backproject_lu_style: volume size mismatch");
    if (batch_views <= 0) batch_views = g.num_proj;

    BaselineStats stats;
    sim::Device dev(device_capacity);
    index_t chunks = 0;
    for (index_t k0 = 0; k0 < g.vol.z; k0 += chunk_slices) {
        const index_t len = std::min(chunk_slices, g.vol.z - k0);
        sim::DeviceBuffer chunk_dev(dev, g.vol.x * g.vol.y * len);
        Volume chunk(Dim3{g.vol.x, g.vol.y, len});
        // Every chunk re-uploads the complete projection set (in view
        // batches of full frames) — the redundancy the paper's streaming
        // scheme eliminates.
        for (index_t s0 = 0; s0 < g.num_proj; s0 += batch_views) {
            const Range views{s0, std::min(s0 + batch_views, g.num_proj)};
            const sim::Texture3 tex = upload_frames(dev, filtered, views, g);
            stats.device_peak = std::max(stats.device_peak, static_cast<std::uint64_t>(dev.used()));
            backproj::backproject_streaming(
                tex,
                mats.subspan(static_cast<std::size_t>(views.lo),
                             static_cast<std::size_t>(views.length())),
                chunk, backproj::StreamOffsets{k0, 0}, g.nu, g.nv);
        }
        dev.account_d2h(static_cast<std::size_t>(chunk.count()) * sizeof(float));
        for (index_t k = 0; k < len; ++k) {
            const auto src = chunk.slice(k);
            const auto dst = out.slice(k0 + k);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        ++chunks;
    }
    stats.h2d_bytes = dev.h2d_stats().bytes;
    stats.redundancy = chunks;
    return stats;
}

}  // namespace xct::recon
