#include "recon/session.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decompose.hpp"

namespace xct::recon {

const char* to_string(SessionState s)
{
    switch (s) {
        case SessionState::Ready: return "ready";
        case SessionState::Running: return "running";
        case SessionState::Done: return "done";
        case SessionState::Cancelled: return "cancelled";
        case SessionState::Failed: return "failed";
    }
    return "unknown";
}

ReconSession::ReconSession(RankConfig cfg, std::unique_ptr<ProjectionSource> source)
    : cfg_(std::move(cfg)), source_(std::move(source))
{
    require(source_ != nullptr, "ReconSession: null source");
    cfg_.geometry.validate();
    cfg_.views = Range{0, cfg_.geometry.num_proj};
    cfg_.slices = Range{0, cfg_.geometry.vol.z};
    // Mirror run_rank's slab schedule so progress() has the right
    // denominator before the pipeline starts.
    const index_t nb = (cfg_.slices.length() + cfg_.batches - 1) / cfg_.batches;
    total_slabs_ = static_cast<index_t>(plan_slabs(cfg_.geometry, cfg_.slices, nb).size());
}

FdkResult ReconSession::run()
{
    SessionState expected = SessionState::Ready;
    if (!state_.compare_exchange_strong(expected, SessionState::Running))
        throw std::logic_error("ReconSession::run: session is single-use (state " +
                               std::string(to_string(expected)) + ")");

    FdkResult result{Volume(cfg_.geometry.vol), RankStats{}};
    auto store = [&](const Volume& slab, const SlabPlan& plan) {
        for (index_t k = 0; k < plan.slab.length(); ++k) {
            const auto src = slab.slice(k);
            const auto dst = result.volume.slice(plan.slab.lo + k);
            std::copy(src.begin(), src.end(), dst.begin());
        }
    };
    RankControl ctl;
    ctl.cancel = &cancel_;
    ctl.slabs_done = &slabs_done_;
    try {
        result.stats = run_rank(cfg_, *source_, identity_reducer, store, ctl);
    } catch (const core::Cancelled&) {
        state_.store(SessionState::Cancelled, std::memory_order_release);
        throw;
    } catch (...) {
        state_.store(SessionState::Failed, std::memory_order_release);
        throw;
    }
    state_.store(SessionState::Done, std::memory_order_release);
    return result;
}

}  // namespace xct::recon
