#pragma once
// Image-quality metrics for reconstructed volumes — the quantities CT
// papers (including this one, Sec. 6.1) report when assessing
// reconstructions: PSNR against a reference, region statistics, and
// contrast-to-noise ratio between two regions.

#include "core/volume.hpp"

namespace xct::recon {

/// Peak signal-to-noise ratio [dB] of `a` against reference `b`, with the
/// peak taken as the reference's value range (max - min).  Identical
/// volumes return +infinity.
double psnr(const Volume& a, const Volume& b);

/// Mean and standard deviation of the voxels inside a sphere of
/// `radius_vox` voxels around centre (ci, cj, ck) (voxel coordinates).
struct RegionStats {
    double mean = 0.0;
    double stddev = 0.0;
    index_t count = 0;
};
RegionStats region_stats(const Volume& v, double ci, double cj, double ck, double radius_vox);

/// Contrast-to-noise ratio between a feature region and a background
/// region: |mean_f - mean_b| / sqrt((var_f + var_b)/2).
double cnr(const RegionStats& feature, const RegionStats& background);

/// The values along an axis-aligned X line at (j, k) — for edge/profile
/// plots.
std::vector<float> profile_x(const Volume& v, index_t j, index_t k);

}  // namespace xct::recon
