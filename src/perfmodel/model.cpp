#include "perfmodel/model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "backproj/kernel.hpp"
#include "filter/ramp.hpp"
#include "sim/device.hpp"

namespace xct::perfmodel {

namespace {
constexpr double kEta = sizeof(float);  // Sec. 5: eta = sizeof(float)
constexpr double kGB = 1e9;

double ceil_log2(index_t n)
{
    double l = 0.0;
    index_t p = 1;
    while (p < n) {
        p <<= 1;
        l += 1.0;
    }
    return l;
}
}  // namespace

MachineParams MachineParams::abci_v100()
{
    // Calibrated against Table 5 (V100 rows) and the Sec. 5 description:
    // NVMe-class local load, 28.5 GB/s aggregate PFS store, PCIe 3.0 x16.
    MachineParams m;
    m.bw_load_gbps = 2.0;
    m.bw_store_gbps = 28.5;
    m.th_flt_geps = 0.26;
    m.th_bp_gups = 120.0;
    m.th_reduce_gbps = 5.0;
    m.bw_h2d_gbps = 5.0;
    m.bw_d2h_gbps = 5.5;
    return m;
}

MachineParams MachineParams::abci_a100()
{
    MachineParams m = abci_v100();
    m.th_bp_gups = 155.0;  // Table 5 A100 rows
    m.bw_h2d_gbps = 8.0;   // PCIe 4 / SMX4 host link
    m.bw_d2h_gbps = 9.0;
    return m;
}

std::vector<BatchTimes> batch_times(const RunConfig& cfg, const MachineParams& m)
{
    cfg.geometry.validate();
    const CbctGeometry& g = cfg.geometry;
    const GroupLayout& L = cfg.layout;
    require(cfg.batches > 0, "batch_times: batches must be positive");
    require(L.num_groups > 0 && L.ranks_per_group > 0, "batch_times: layout must be positive");
    require(cfg.eta_h2d > 0.0, "batch_times: eta_h2d must be positive");

    // Representative rank: rank 0 (group 0 root — it also stores).
    const index_t views = L.views_of_rank(RankId{0}, g.num_proj).length();
    const Range slices = L.slices_of_group(GroupId{0}, g.vol.z);
    const index_t nb = (slices.length() + cfg.batches - 1) / cfg.batches;
    const auto plans = plan_slabs(g, slices, nb);

    // The aggregate PFS bandwidth is shared by the Ng storing roots.
    const double store_bw = m.bw_store_gbps * kGB / static_cast<double>(L.num_groups);
    const double reduce_hops = ceil_log2(L.ranks_per_group);  // O(log Nr) tree

    std::vector<BatchTimes> out;
    out.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
        const SlabPlan& p = plans[i];
        const double in_elems = static_cast<double>(g.nu) * static_cast<double>(views) *
                                static_cast<double>(i == 0 ? p.rows.length() : p.delta.length());
        const double vol_elems = static_cast<double>(g.vol.x) * static_cast<double>(g.vol.y) *
                                 static_cast<double>(p.slab.length());
        BatchTimes t;
        t.load = kEta * in_elems / (m.bw_load_gbps * kGB);             // Eq. 13
        t.filter = in_elems / (m.th_flt_geps * kGB);
        t.h2d = cfg.eta_h2d * in_elems / (m.bw_h2d_gbps * kGB);
        t.bp = vol_elems * static_cast<double>(views) / (m.th_bp_gups * kGB);  // Eq. 14
        t.d2h = kEta * vol_elems / (m.bw_d2h_gbps * kGB);              // Eq. 15 applied
        t.reduce = reduce_hops * kEta * vol_elems / (m.th_reduce_gbps * kGB);
        t.store = kEta * vol_elems / store_bw;
        out.push_back(t);
    }
    return out;
}

namespace {

Projection aggregate(const RunConfig& cfg, std::vector<BatchTimes> batches, double runtime)
{
    Projection p;
    p.batches = std::move(batches);
    p.runtime = runtime;
    for (const BatchTimes& t : p.batches) {
        p.t_load += t.load;
        p.t_filter += t.filter;
        p.t_h2d += t.h2d;
        p.t_bp += t.bp;
        p.t_d2h += t.d2h;
        p.t_reduce += t.reduce;
        p.t_store += t.store;
    }
    const CbctGeometry& g = cfg.geometry;
    p.gups = static_cast<double>(g.vol.count()) * static_cast<double>(g.num_proj) /
             (runtime * 1e9);
    return p;
}

}  // namespace

Projection project(const RunConfig& cfg, const MachineParams& m)
{
    auto bt = batch_times(cfg, m);
    // Eq. 17: batch 0 serialises; the rest overlap perfectly, so the tail
    // costs the max over the four pipelined streams' sums.
    const BatchTimes& b0 = bt.front();
    double runtime = b0.cpu() + b0.gpu() + b0.reduce + b0.store;
    double cpu = 0.0, gpu = 0.0, red = 0.0, sto = 0.0;
    for (std::size_t i = 1; i < bt.size(); ++i) {
        cpu += bt[i].cpu();
        gpu += bt[i].gpu();
        red += bt[i].reduce;
        sto += bt[i].store;
    }
    runtime += std::max(std::max(cpu, gpu), std::max(red, sto));
    return aggregate(cfg, std::move(bt), runtime);
}

namespace {

/// Per-(batch, stage) extra service time injected by simulate_faulted.
using StageDelays = std::vector<std::array<double, 5>>;

/// Pipeline recurrence with bounded queues.  Returns finish[stage][item].
std::vector<std::array<double, 5>> schedule(const std::vector<BatchTimes>& bt,
                                            index_t queue_capacity,
                                            const StageDelays* delays = nullptr)
{
    const std::size_t n = bt.size();
    const auto service = [&](std::size_t s, std::size_t i) -> double {
        const BatchTimes& t = bt[i];
        const double extra = delays != nullptr ? (*delays)[i][s] : 0.0;
        switch (s) {
            case 0: return t.load + extra;
            case 1: return t.filter + extra;
            case 2: return t.h2d + t.bp + t.d2h + extra;  // the BP thread owns transfers
            case 3: return t.reduce + extra;
            default: return t.store + extra;
        }
    };
    std::vector<std::array<double, 5>> start(n), finish(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t s = 0; s < 5; ++s) {
            double t0 = 0.0;
            if (i > 0) t0 = std::max(t0, finish[i - 1][s]);       // stage busy
            if (s > 0) t0 = std::max(t0, finish[i][s - 1]);       // upstream data
            if (s < 4 && static_cast<index_t>(i) >= queue_capacity)
                t0 = std::max(t0, start[i - static_cast<std::size_t>(queue_capacity)][s + 1]);
            start[i][s] = t0;
            finish[i][s] = t0 + service(s, i);
        }
    return finish;
}

}  // namespace

Projection simulate(const RunConfig& cfg, const MachineParams& m, index_t queue_capacity)
{
    require(queue_capacity > 0, "simulate: queue capacity must be positive");
    auto bt = batch_times(cfg, m);
    const auto finish = schedule(bt, queue_capacity);
    const double runtime = finish.back()[4];
    return aggregate(cfg, std::move(bt), runtime);
}

Projection simulate_faulted(const RunConfig& cfg, const MachineParams& m,
                            const std::vector<SimFault>& events, index_t queue_capacity)
{
    require(queue_capacity > 0, "simulate_faulted: queue capacity must be positive");
    auto bt = batch_times(cfg, m);
    StageDelays delays(bt.size(), std::array<double, 5>{});
    for (const SimFault& f : events) {
        require(f.stage >= 0 && f.stage < 5, "simulate_faulted: stage must be in [0, 5)");
        require(f.delay_s >= 0.0, "simulate_faulted: delay must be non-negative");
        const std::size_t b = static_cast<std::size_t>(
            std::clamp<index_t>(f.batch, 0, static_cast<index_t>(bt.size()) - 1));
        delays[b][static_cast<std::size_t>(f.stage)] += f.delay_s;
    }
    const auto finish = schedule(bt, queue_capacity, &delays);
    const double runtime = finish.back()[4];
    return aggregate(cfg, std::move(bt), runtime);
}

double tail_latency_bound(const RunConfig& cfg, const MachineParams& m, double fault_delay_s,
                          double slack, index_t queue_capacity)
{
    require(fault_delay_s >= 0.0, "tail_latency_bound: fault delay must be non-negative");
    require(slack >= 1.0, "tail_latency_bound: slack must be >= 1");
    return simulate(cfg, m, queue_capacity).runtime * slack + fault_delay_s;
}

std::vector<SimSpan> simulate_spans(const RunConfig& cfg, const MachineParams& m,
                                    index_t queue_capacity)
{
    require(queue_capacity > 0, "simulate_spans: queue capacity must be positive");
    const auto bt = batch_times(cfg, m);
    const auto finish = schedule(bt, queue_capacity);
    static const char* names[5] = {"load", "filter", "bp", "mpi", "store"};
    std::vector<SimSpan> spans;
    for (std::size_t i = 0; i < bt.size(); ++i)
        for (std::size_t s = 0; s < 5; ++s) {
            const double dur = [&] {
                switch (s) {
                    case 0: return bt[i].load;
                    case 1: return bt[i].filter;
                    case 2: return bt[i].h2d + bt[i].bp + bt[i].d2h;
                    case 3: return bt[i].reduce;
                    default: return bt[i].store;
                }
            }();
            spans.push_back(SimSpan{names[s], static_cast<index_t>(i), finish[i][s] - dur,
                                    finish[i][s]});
        }
    return spans;
}

MachineParams measure_local(const MachineParams& base)
{
    MachineParams m = base;
    using clock = std::chrono::steady_clock;

    // Back-projection throughput: time the streaming kernel on a small
    // problem (updates/s).
    {
        CbctGeometry g;
        g.dso = 100.0;
        g.dsd = 250.0;
        g.num_proj = 32;
        g.nu = 64;
        g.nv = 64;
        g.du = g.dv = 0.4;
        g.vol = {48, 48, 16};
        g.dx = g.dy = g.dz = CbctGeometry::natural_pitch(g.du, g.dsd, g.dso, g.nu, g.vol.x);
        const auto mats = projection_matrices(g);
        sim::Device dev(64u << 20);
        sim::Texture3 tex(dev, g.nu, g.num_proj, g.nv);
        std::vector<float> plane(static_cast<std::size_t>(g.nu * g.num_proj), 0.5f);
        for (index_t v = 0; v < g.nv; ++v) tex.copy_planes(plane, v, 1);
        Volume slab(g.vol);
        const auto t0 = clock::now();
        backproj::backproject_streaming(tex, mats, slab, backproj::StreamOffsets{0, 0}, g.nu,
                                        g.nv);
        const double dt = std::chrono::duration<double>(clock::now() - t0).count();
        const double updates = static_cast<double>(g.vol.count()) * static_cast<double>(g.num_proj);
        m.th_bp_gups = updates / dt / 1e9;
    }

    // Filtering throughput (elements/s).
    {
        CbctGeometry g;
        g.dso = 100.0;
        g.dsd = 250.0;
        g.num_proj = 64;
        g.nu = 512;
        g.nv = 64;
        g.du = g.dv = 0.2;
        g.vol = {64, 64, 64};
        g.dx = g.dy = g.dz = 0.1;
        const filter::FilterEngine eng(g);
        ProjectionStack stack(8, g.nv, g.nu, 1.0f);
        const auto t0 = clock::now();
        eng.apply(stack);
        const double dt = std::chrono::duration<double>(clock::now() - t0).count();
        m.th_flt_geps = static_cast<double>(stack.count()) / dt / 1e9;
    }
    return m;
}

}  // namespace xct::perfmodel
