#pragma once
// The performance model of Sec. 5 (Eqs. 13-17) plus a discrete-event
// pipeline simulator.
//
// The model projects the end-to-end runtime of the distributed framework
// from micro-benchmarked machine parameters.  Two flavours:
//
//   * project()  — the paper's Eq. 17: first batch serialises, the
//     remaining Nc-1 batches overlap perfectly and cost the max over the
//     CPU / GPU / reduce / store aggregates ("Projected" in Figs. 13-14);
//   * simulate() — a discrete-event simulation of the 5-stage pipeline
//     with the classical pipeline recurrence and bounded inter-stage
//     queues: start(s, i) >= finish(s, i-1), >= finish(s-1, i), and
//     back-pressure through the queue capacity.  This includes the
//     imperfect-overlap effects a real run shows ("Measured"-like).
//
// At-scale runs (1024 GPUs) are hardware-gated in this environment; these
// models — validated against real small-scale thread runs by the tests —
// regenerate the scaling figures (DESIGN.md §2).

#include <array>
#include <string>
#include <vector>

#include "core/decompose.hpp"
#include "core/geometry.hpp"

namespace xct::perfmodel {

/// Micro-benchmarked machine parameters (Sec. 5, "Micro-benchmark
/// measurements").  Bandwidths in GB/s, throughputs as noted.
struct MachineParams {
    double bw_load_gbps = 2.0;     ///< BW_load: node-local storage read
    double bw_store_gbps = 28.5;   ///< BW_store: *aggregate* PFS write
    double th_flt_geps = 0.26;     ///< TH_flt: filtering, giga-elements/s per rank
    double th_bp_gups = 115.0;     ///< TH_bp: back-projection updates, GUPS per GPU
    double th_reduce_gbps = 5.0;   ///< TH_reduce: MPI_Reduce payload throughput
    double bw_h2d_gbps = 5.0;      ///< PCIe host->device (measured, Sec. 5)
    double bw_d2h_gbps = 5.5;      ///< PCIe device->host

    /// Parameters reproducing the paper's ABCI V100 testbed (calibrated
    /// against Table 5 / Figs. 13-15).
    static MachineParams abci_v100();
    /// The A100 node of Table 5 (TH_bp ~ 155 GUPS).
    static MachineParams abci_a100();
};

/// One run configuration: problem + rank arrangement (Sec. 4.4.1).
struct RunConfig {
    CbctGeometry geometry;
    GroupLayout layout{1, 1};
    index_t batches = 8;  ///< Nc
    /// Wire bytes per transported band element on the host->device hop
    /// (Sec. 5's eta).  sizeof(float) models the raw fp32 transport; the
    /// q8 band codec ships 1 byte per texel, which is how the autotune
    /// planner scores --band-codec q8 candidates.  Load/store/reduce keep
    /// the fp32 eta — only the band transport is compressed.
    double eta_h2d = sizeof(float);
};

/// Per-batch stage times of one rank (Eqs. 13-16).
struct BatchTimes {
    double load = 0.0;
    double filter = 0.0;
    double h2d = 0.0;
    double bp = 0.0;
    double d2h = 0.0;
    double reduce = 0.0;
    double store = 0.0;

    double cpu() const { return load + filter; }          // T_CPU (Eq. 16)
    double gpu() const { return h2d + bp + d2h; }          // T_GPU (Eq. 16)
};

/// Model output.
struct Projection {
    std::vector<BatchTimes> batches;  ///< per-batch stage times (one rank)
    double runtime = 0.0;             ///< projected end-to-end seconds
    double gups = 0.0;                ///< Nx*Ny*Nz*Np / runtime / 1e9 (Fig. 15)

    // Aggregates over batches (the Table 5 columns).
    double t_load = 0.0, t_filter = 0.0, t_h2d = 0.0, t_bp = 0.0, t_d2h = 0.0, t_reduce = 0.0,
           t_store = 0.0;
};

/// Eqs. 13-16: stage times of every batch for one (representative) rank of
/// the given configuration.
std::vector<BatchTimes> batch_times(const RunConfig& cfg, const MachineParams& m);

/// Eq. 17: the perfect-overlap projection ("Projected" curves).
Projection project(const RunConfig& cfg, const MachineParams& m);

/// Discrete-event pipeline simulation with bounded queues ("Measured"-like
/// curves; `queue_capacity` matches the Fig. 9 FIFO depth).
Projection simulate(const RunConfig& cfg, const MachineParams& m, index_t queue_capacity = 2);

/// One injected perturbation for the event simulation: `delay_s` of extra
/// service time at pipeline stage `stage` (0 load, 1 filter, 2 bp — which
/// owns the h2d/d2h transfers, 3 reduce, 4 store) of batch `batch`.  This
/// is how the soak harness (src/soak) layers faults onto the event-sim: a
/// detected corruption costs one re-execution of the poisoned stage, an
/// injected stall costs its delay, a dropout costs the takeover replay.
struct SimFault {
    index_t stage = 0;
    index_t batch = 0;
    double delay_s = 0.0;
};

/// simulate() with fault perturbations folded into the stage service
/// times before the pipeline recurrence runs — recovery delays propagate
/// through queue back-pressure exactly like any other slow stage.
/// Batches out of range are clamped to the last batch.
Projection simulate_faulted(const RunConfig& cfg, const MachineParams& m,
                            const std::vector<SimFault>& events, index_t queue_capacity = 2);

/// Perfmodel-derived per-job tail-latency bound: `slack` times the clean
/// event-sim runtime plus the total injected recovery delay.  Any single
/// injected delay can extend the critical path by at most its own length,
/// so a run whose p99 latency exceeds this bound is slower than the model
/// plus its faults can explain — the soak harness gates on it.
double tail_latency_bound(const RunConfig& cfg, const MachineParams& m,
                          double fault_delay_s = 0.0, double slack = 1.25,
                          index_t queue_capacity = 2);

/// Simulated stage spans of one rank (regenerates Fig. 10 from the model):
/// returns, per batch, the [begin, end) of each of the five stages.
struct SimSpan {
    std::string stage;
    index_t batch = 0;
    double begin = 0.0;
    double end = 0.0;
};
std::vector<SimSpan> simulate_spans(const RunConfig& cfg, const MachineParams& m,
                                    index_t queue_capacity = 2);

/// Calibrate TH_bp and TH_flt on the present machine by timing the actual
/// kernels on a small problem (keeps local Table-5 predictions honest).
MachineParams measure_local(const MachineParams& base = MachineParams{});

}  // namespace xct::perfmodel
