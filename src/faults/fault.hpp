#pragma once
// Deterministic, seed-driven fault injection.
//
// Production runs at the ROADMAP's scale see transient I/O and
// communicator failures as the norm, not the exception; iFDK-style
// frameworks restart whole runs when anything fails.  This layer makes
// failures *reproducible* so the recovery machinery (faults/retry.hpp,
// faults/checkpoint.hpp, the degraded reduce in recon/distributed.cpp)
// can be tested bit-for-bit:
//
//   * a FaultPlan names *sites* ("pfs.load", "sim.h2d",
//     "minimpi.reduce_sum", "source.load", "rank.dropout", ...) and gives
//     each a trigger: fire on the Nth call, fire for a run of calls,
//     and/or fire with a seed-derived per-call probability;
//   * call counting is per (site, rank) — the rank being
//     telemetry::current_rank() — so trigger points do not depend on how
//     rank threads interleave;
//   * the probabilistic decision hashes (seed, site, rank, call), never a
//     global RNG, so a given plan fires at exactly the same calls every
//     run.
//
// Sites consult the plan through check() (throws InjectedFault, a
// TransientError the retry layer understands) or should_fail() (consumes
// the call and returns the decision — used where "failure" is not an
// exception, e.g. a rank dropout).  With no plan installed the fast path
// is one relaxed atomic load.
//
// Every fired fault increments telemetry counters `faults.injected` and
// `faults.injected.<site>` so recovery cost is visible in --metrics.

#include <cstddef>
#include <map>
#include <span>
#include <stdexcept>
#include <string>

#include "core/ids.hpp"
#include "core/types.hpp"

namespace xct::faults {

/// Base class of errors the retry layer treats as transient (retryable).
/// Real transports would map EINTR/EAGAIN-style failures onto this; the
/// injection layer throws its subclass below.
class TransientError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A fault fired by the installed FaultPlan at a named site.
class InjectedFault : public TransientError {
public:
    InjectedFault(std::string site, RankId rank, std::uint64_t call);
    const std::string& site() const { return site_; }

private:
    std::string site_;
};

/// What a fired fault *does*.  `Throw` is the fail-stop class of PR 2
/// (check() raises InjectedFault).  `Corrupt` and `Stall` are the silent
/// classes: a corrupt fault flips seed-derived bits in the consumer's
/// buffer (no exception — only an integrity check can notice), a stall
/// fault sleeps inside the call (no exception — only a watchdog deadline
/// can notice).
enum class FaultKind { Throw, Corrupt, Stall };

/// Trigger configuration of one site.  Counting is 0-based and per
/// (site, rank).  Both mechanisms may be combined; the site fires when
/// either says so.
struct FaultSpec {
    double probability = 0.0;  ///< per-call Bernoulli, seed-derived
    index_t after = -1;        ///< first failing call index; -1 = disabled
    index_t count = 1;         ///< how many consecutive calls fail from `after`
    RankId rank = kAnyRank;    ///< restrict to this telemetry rank; kAnyRank = any
    FaultKind kind = FaultKind::Throw;
    index_t flips = 1;     ///< Corrupt: bits flipped per fired call
    double stall_s = 0.0;  ///< Stall: injected delay per fired call
};

/// A named set of fault sites plus the seed the probabilistic triggers
/// derive from.  Plans are value types; install one with set_plan().
class FaultPlan {
public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    FaultPlan& add(std::string site, FaultSpec spec);
    bool empty() const { return specs_.empty(); }
    std::uint64_t seed() const { return seed_; }
    const std::map<std::string, FaultSpec>& specs() const { return specs_; }

    /// Parse a plan from a spec string:
    ///
    ///   "<site>[:key=value[,key=value...]][;<site>...]"
    ///
    /// with keys `p` (probability), `after`, `count` (-1 = unbounded),
    /// `rank`, `kind` (throw|corrupt|stall), `flips` (corrupt: bits per
    /// fired call) and `delay` (stall: seconds per fired call).  A bare
    /// "<site>" means after=0,count=1 (fail the first call).  Throws
    /// std::invalid_argument on malformed input.
    static FaultPlan parse(const std::string& spec, std::uint64_t seed = 1);

private:
    std::uint64_t seed_ = 1;
    std::map<std::string, FaultSpec> specs_;
};

/// Install `plan` process-wide, resetting all per-site call counters.
/// Swapping plans mid-run is possible but the counters restart from zero.
void set_plan(FaultPlan plan);

/// Scope the installed plan to one job of a multi-job run (the soak
/// harness drives thousands of jobs through one process): resets every
/// per-(site, rank) call counter and mixes `job` into the probabilistic
/// trigger hash, so a plan reused across a schedule fires at exactly the
/// same calls for a given (seed, job) no matter what earlier jobs
/// consumed.  Scope 0 is the default single-job scope and leaves the
/// PR 2 trigger arithmetic bit-for-bit unchanged.
void set_job_scope(std::uint64_t job);

/// The current job scope (0 outside a multi-job run).
std::uint64_t job_scope();

/// Remove the installed plan (sites stop firing, counters are dropped).
void clear_plan();

/// True when a non-empty plan is installed (one relaxed atomic load).
bool enabled();

/// Consume one call at `site` and return whether the plan fires it.
/// Always false when no plan is installed or the site is not configured.
/// Only kind=throw specs participate — corrupt/stall specs at the same
/// site are invisible here (their calls are consumed by corrupt() /
/// stall_point()).
bool should_fail(const char* site);

/// should_fail() + throw InjectedFault when it fires.
void check(const char* site);

/// Consume one call at `site` against a kind=corrupt spec and, when it
/// fires, flip `spec.flips` seed-derived bit positions inside `buf` —
/// silently: the caller's data is now wrong and nothing throws.  Returns
/// the number of bits flipped (0 = did not fire).  An empty buffer does
/// not consume a call, so `faults.injected.<site>` counts only flips that
/// actually landed in data an integrity check could catch.
index_t corrupt(const char* site, std::span<std::byte> buf);

/// Consume one call at `site` against a kind=stall spec and, when it
/// fires, sleep for spec.stall_s seconds — silently: the call just takes
/// that much longer, which only a watchdog deadline can notice.  Returns
/// the injected delay in seconds (0 = did not fire).
double stall_point(const char* site);

/// RAII plan installation for tests: installs on construction, clears on
/// destruction.
class ScopedPlan {
public:
    explicit ScopedPlan(FaultPlan plan) { set_plan(std::move(plan)); }
    ~ScopedPlan() { clear_plan(); }
    ScopedPlan(const ScopedPlan&) = delete;
    ScopedPlan& operator=(const ScopedPlan&) = delete;
};

/// RAII job scoping: enters `job`'s scope on construction, restores the
/// previous scope (resetting counters again) on destruction.
class ScopedJob {
public:
    explicit ScopedJob(std::uint64_t job) : prev_(job_scope()) { set_job_scope(job); }
    ~ScopedJob() { set_job_scope(prev_); }
    ScopedJob(const ScopedJob&) = delete;
    ScopedJob& operator=(const ScopedJob&) = delete;

private:
    std::uint64_t prev_;
};

}  // namespace xct::faults
