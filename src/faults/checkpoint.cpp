#include "faults/checkpoint.hpp"

#include <fstream>

#include "core/names.hpp"
#include "io/raw_io.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::faults {

CheckpointStore::CheckpointStore(std::filesystem::path dir) : dir_(std::move(dir))
{
    require(!dir_.empty(), "CheckpointStore: empty directory");
    std::filesystem::create_directories(dir_);
}

index_t CheckpointStore::cursor() const
{
    std::ifstream in(dir_ / "cursor");
    long long c = 0;
    if (!(in >> c) || c < 0) return 0;
    return static_cast<index_t>(c);
}

void CheckpointStore::advance(index_t next_incomplete)
{
    require(next_incomplete >= 0, "CheckpointStore::advance: negative cursor");
    const auto tmp = dir_ / "cursor.tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(out.good(), "CheckpointStore: cannot write " + tmp.string());
        out << next_incomplete << '\n';
    }
    std::filesystem::rename(tmp, dir_ / "cursor");
}

std::filesystem::path CheckpointStore::slab_path(index_t idx) const
{
    return dir_ / ("slab_" + std::to_string(idx) + ".xvol");
}

bool CheckpointStore::has_slab(index_t idx) const
{
    return std::filesystem::exists(slab_path(idx));
}

void CheckpointStore::save_slab(index_t idx, const Volume& v)
{
    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanCkptSave, idx,
                                 static_cast<std::uint64_t>(v.count()) * sizeof(float));
    const auto path = slab_path(idx);
    const auto tmp = path.string() + ".tmp";
    io::write_volume(tmp, v);
    std::filesystem::rename(tmp, path);
    telemetry::registry().counter(names::kMetricFaultsCkptSaved).add(1);
}

Volume CheckpointStore::load_slab(index_t idx) const
{
    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanCkptRestore, idx);
    Volume v = io::read_volume(slab_path(idx));
    telemetry::registry().counter(names::kMetricFaultsCkptRestored).add(1);
    return v;
}

}  // namespace xct::faults
