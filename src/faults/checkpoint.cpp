#include "faults/checkpoint.hpp"

#include <fstream>

#include "core/names.hpp"
#include "faults/fault.hpp"
#include "integrity/integrity.hpp"
#include "io/raw_io.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::faults {

CheckpointStore::CheckpointStore(std::filesystem::path dir) : dir_(std::move(dir))
{
    require(!dir_.empty(), "CheckpointStore: empty directory");
    std::filesystem::create_directories(dir_);
}

index_t CheckpointStore::cursor() const
{
    std::ifstream in(dir_ / "cursor");
    long long c = 0;
    if (!(in >> c) || c < 0) return 0;
    return static_cast<index_t>(c);
}

void CheckpointStore::advance(index_t next_incomplete)
{
    require(next_incomplete >= 0, "CheckpointStore::advance: negative cursor");
    const auto tmp = dir_ / "cursor.tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(out.good(), "CheckpointStore: cannot write " + tmp.string());
        out << next_incomplete << '\n';
    }
    std::filesystem::rename(tmp, dir_ / "cursor");
}

index_t CheckpointStore::validated_cursor() const
{
    const index_t c = cursor();
    for (index_t i = 0; i < c; ++i) {
        if (!has_slab(SlabId{i})) continue;
        try {
            const io::CheckpointSlab slab = io::read_checkpoint_slab(slab_path(SlabId{i}));
            if (integrity::digest_of<float>(slab.volume.span()) != slab.digest) return i;
        } catch (const std::exception&) {
            // Structurally invalid (truncated, wrong magic/version, size
            // mismatch): recompute from here.
            return i;
        }
    }
    return c;
}

std::filesystem::path CheckpointStore::slab_path(SlabId idx) const
{
    return dir_ / ("slab_" + std::to_string(idx.value()) + ".xckp");
}

bool CheckpointStore::has_slab(SlabId idx) const
{
    return std::filesystem::exists(slab_path(idx));
}

void CheckpointStore::save_slab(SlabId idx, const Volume& v)
{
    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanCkptSave, idx.value(),
                                 static_cast<std::uint64_t>(v.count()) * sizeof(float));
    const auto path = slab_path(idx);
    const auto tmp = path.string() + ".tmp";
    io::write_checkpoint_slab(tmp, v, integrity::checksum_of<float>(v.span()));
    std::filesystem::rename(tmp, path);
    telemetry::registry().counter(names::kMetricFaultsCkptSaved).add(1);
}

Volume CheckpointStore::load_slab(SlabId idx) const
{
    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanCkptRestore, idx.value());
    io::CheckpointSlab slab = io::read_checkpoint_slab(slab_path(idx));
    // Corruption point between the (structurally valid) read and the
    // consumer, then verify against the save-time digest — an injected or
    // real flip raises IntegrityError, and the restore loop's retry
    // re-reads the (intact) file.
    faults::corrupt(names::kSiteCheckpointLoad, std::as_writable_bytes(slab.volume.span()));
    integrity::verify_of<float>(names::kSiteCheckpointLoad, slab.volume.span(), slab.digest);
    telemetry::registry().counter(names::kMetricFaultsCkptRestored).add(1);
    return std::move(slab.volume);
}

}  // namespace xct::faults
