#pragma once
// Slab-granular checkpoint/restart state for one pipeline rank.
//
// The paper's decomposition makes the restart cursor trivial: slabs are
// processed in order, the differential-update state [a_i, b_i) is a pure
// function of the slab index, and each reduced slab is written exactly
// once.  So a checkpoint is just (a) the index of the first slab not yet
// completed (the *cursor*) and (b) the reduced slab payloads this rank
// ended up holding (group roots only).  On restart, run_rank replays
// stored slabs through its store stage and resumes the live pipeline at
// the cursor, re-loading the full [a_i, b_i) band of the first live slab
// to rebuild the circular texture (every later slab streams differentials
// again) — the result is bitwise identical to an unfaulted run because
// every arithmetic operation sees the same inputs in the same order.
//
// Files under the store's directory:
//   cursor          — ASCII decimal: first incomplete slab index;
//   slab_<i>.xckp   — the reduced slab in the versioned checkpoint
//                     container (magic "XCTCKP2" + extents + payload
//                     xxh64 digest, io::write_checkpoint_slab).
// Both are written to a temporary name and renamed, so a crash mid-write
// never corrupts the restart state (the slab is simply recomputed).
//
// A checkpoint is itself data at rest and gets the full integrity
// treatment (DESIGN.md §3f): load_slab structurally validates the file,
// runs the "checkpoint.load" corruption point and verifies the payload
// against the save-time digest; validated_cursor() additionally lowers
// the resume cursor past any present-but-invalid slab so a truncated or
// bit-flipped checkpoint is recomputed instead of trusted.
//
// Telemetry: `faults.checkpoint.saved` / `.restored` counters and
// "faults/ckpt.save" / "faults/ckpt.restore" trace spans.

#include <filesystem>

#include "core/ids.hpp"
#include "core/volume.hpp"

namespace xct::faults {

class CheckpointStore {
public:
    /// Opens (creating if missing) the checkpoint directory.
    explicit CheckpointStore(std::filesystem::path dir);

    const std::filesystem::path& dir() const { return dir_; }

    /// First slab index not yet completed (0 when no checkpoint exists).
    index_t cursor() const;

    /// cursor(), lowered past damage: every slab file below the cursor is
    /// structurally validated and digest-checked, and the first
    /// present-but-invalid one caps the result — that slab and everything
    /// after it will be recomputed.  Missing files are fine (non-roots
    /// own no slabs).  Use this, not cursor(), to pick a resume point;
    /// the distributed layer must call it *before* the group-wide cursor
    /// reconciliation so all ranks of a group agree on the lowered value.
    index_t validated_cursor() const;

    /// Record that every slab below `next_incomplete` is done.
    void advance(index_t next_incomplete);

    bool has_slab(SlabId idx) const;
    void save_slab(SlabId idx, const Volume& v);
    Volume load_slab(SlabId idx) const;

private:
    std::filesystem::path slab_path(SlabId idx) const;

    std::filesystem::path dir_;
};

}  // namespace xct::faults
