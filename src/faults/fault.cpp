#include "faults/fault.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/mutex.hpp"
#include "core/names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::faults {
namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for the per-call Bernoulli
/// decision (deterministic in (seed, site, rank, call)).
std::uint64_t splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t hash_str(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
    for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    return h;
}

struct Engine {
    Mutex m{"faults.engine"};
    FaultPlan plan XCT_GUARDED_BY(m);
    /// Per (site, rank) call counters — deterministic trigger points
    /// regardless of thread interleaving.
    std::map<std::pair<std::string, RankId>, std::uint64_t> calls XCT_GUARDED_BY(m);
    /// Multi-job scope (set_job_scope): 0 outside soak-style runs.
    std::uint64_t job XCT_GUARDED_BY(m) = 0;
};

Engine& engine()
{
    static Engine e;
    return e;
}

std::atomic<bool> g_enabled{false};

/// A fired fault plus the spec fields its effect needs.
struct Fired {
    std::uint64_t call = 0;
    std::uint64_t seed = 1;
    index_t flips = 1;
    double stall_s = 0.0;
};

/// Decide (and consume) one call at `site`; nullopt = no fault.  Only a
/// spec whose kind matches participates: a corrupt spec never makes
/// check() throw and a throw spec never makes corrupt() flip bits, and a
/// kind-mismatched lookup does not consume a call, so each entry point
/// sees a private deterministic call sequence for its site.
std::optional<Fired> fire(const char* site, FaultKind kind)
{
    Engine& e = engine();
    const RankId rank = telemetry::current_rank();
    Fired f;
    bool fires = false;
    {
        MutexLock lk(e.m);
        const auto it = e.plan.specs().find(site);
        if (it == e.plan.specs().end()) return std::nullopt;
        const FaultSpec& spec = it->second;
        if (spec.kind != kind) return std::nullopt;
        f.call = e.calls[{it->first, rank}]++;
        f.seed = e.plan.seed();
        f.flips = spec.flips;
        f.stall_s = spec.stall_s;
        if (spec.rank != kAnyRank && spec.rank != rank) return std::nullopt;
        if (spec.after >= 0) {
            const auto first = static_cast<std::uint64_t>(spec.after);
            fires = f.call >= first &&
                    (spec.count < 0 || f.call < first + static_cast<std::uint64_t>(spec.count));
        }
        if (!fires && spec.probability > 0.0) {
            // Scope 0 contributes nothing so single-job plans keep the
            // exact PR 2 firing pattern; any other scope re-keys every
            // probabilistic decision per job.
            const std::uint64_t scope = e.job == 0 ? 0 : splitmix64(e.job);
            const std::uint64_t h =
                splitmix64(e.plan.seed() ^ scope ^ hash_str(it->first) ^
                           splitmix64(static_cast<std::uint64_t>(rank.value() + 1)) ^
                           splitmix64(f.call * 0x9e3779b97f4a7c15ull));
            const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
            fires = u < spec.probability;
        }
    }
    if (!fires) return std::nullopt;
    auto& reg = telemetry::registry();
    reg.counter(names::kMetricFaultsInjected).add(1);
    reg.counter(std::string(names::kMetricFaultsInjectedPrefix) + site).add(1);
    return f;
}

}  // namespace

InjectedFault::InjectedFault(std::string site, RankId rank, std::uint64_t call)
    : TransientError("injected fault at " + site + " (rank " + std::to_string(rank.value()) +
                     ", call " + std::to_string(call) + ")"),
      site_(std::move(site))
{
}

FaultPlan& FaultPlan::add(std::string site, FaultSpec spec)
{
    require(!site.empty(), "FaultPlan: empty site name");
    require(spec.probability >= 0.0 && spec.probability <= 1.0,
            "FaultPlan: probability must be in [0, 1]");
    require(spec.probability > 0.0 || spec.after >= 0,
            "FaultPlan: site " + site + " has no trigger (set p or after)");
    require(spec.flips > 0, "FaultPlan: flips must be positive");
    require(spec.stall_s >= 0.0, "FaultPlan: delay must be non-negative");
    specs_[std::move(site)] = spec;
    return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed)
{
    FaultPlan plan(seed);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t end = std::min(spec.find(';', pos), spec.size());
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;

        const std::size_t colon = entry.find(':');
        const std::string site = entry.substr(0, colon);
        FaultSpec fs;
        bool has_trigger = false;
        if (colon != std::string::npos) {
            std::size_t kpos = colon + 1;
            while (kpos <= entry.size()) {
                const std::size_t kend = std::min(entry.find(',', kpos), entry.size());
                const std::string kv = entry.substr(kpos, kend - kpos);
                kpos = kend + 1;
                if (kv.empty()) continue;
                const std::size_t eq = kv.find('=');
                require(eq != std::string::npos,
                        "FaultPlan::parse: expected key=value, got '" + kv + "'");
                const std::string key = kv.substr(0, eq);
                const std::string val = kv.substr(eq + 1);
                if (key != "p" && key != "after" && key != "count" && key != "rank" &&
                    key != "kind" && key != "flips" && key != "delay")
                    throw std::invalid_argument("FaultPlan::parse: unknown key '" + key + "'");
                try {
                    if (key == "p") {
                        fs.probability = std::stod(val);
                        has_trigger = true;
                    } else if (key == "after") {
                        fs.after = std::stoll(val);
                        has_trigger = true;
                    } else if (key == "count") {
                        fs.count = std::stoll(val);
                    } else if (key == "kind") {
                        if (val == "throw")
                            fs.kind = FaultKind::Throw;
                        else if (val == "corrupt")
                            fs.kind = FaultKind::Corrupt;
                        else if (val == "stall")
                            fs.kind = FaultKind::Stall;
                        else
                            throw std::invalid_argument("expected throw|corrupt|stall");
                    } else if (key == "flips") {
                        fs.flips = std::stoll(val);
                    } else if (key == "delay") {
                        fs.stall_s = std::stod(val);
                    } else {
                        fs.rank = RankId{std::stoll(val)};
                    }
                } catch (const std::logic_error& e) {
                    throw std::invalid_argument("FaultPlan::parse: bad value in '" + kv +
                                                "': " + e.what());
                }
            }
        }
        if (!has_trigger) fs.after = 0;  // bare site: fail the first call
        plan.add(site, fs);
    }
    return plan;
}

void set_plan(FaultPlan plan)
{
    Engine& e = engine();
    MutexLock lk(e.m);
    g_enabled.store(!plan.empty(), std::memory_order_relaxed);
    e.plan = std::move(plan);
    e.calls.clear();
}

void clear_plan()
{
    set_plan(FaultPlan{});
}

void set_job_scope(std::uint64_t job)
{
    Engine& e = engine();
    MutexLock lk(e.m);
    e.job = job;
    e.calls.clear();
}

std::uint64_t job_scope()
{
    Engine& e = engine();
    MutexLock lk(e.m);
    return e.job;
}

bool enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

bool should_fail(const char* site)
{
    if (!enabled()) return false;
    return fire(site, FaultKind::Throw).has_value();
}

void check(const char* site)
{
    if (!enabled()) return;
    if (const auto f = fire(site, FaultKind::Throw))
        throw InjectedFault(site, telemetry::current_rank(), f->call);
}

index_t corrupt(const char* site, std::span<std::byte> buf)
{
    if (!enabled() || buf.empty()) return 0;
    const auto f = fire(site, FaultKind::Corrupt);
    if (!f) return 0;
    // Flip `flips` seed-derived bit positions.  Positions are hashed from
    // (seed, site, rank, call, i) so a given plan poisons exactly the same
    // bits every run — the detection tests can assert injected == detected
    // counter equality bit-for-bit reproducibly.
    const RankId rank = telemetry::current_rank();
    const std::uint64_t base = f->seed ^ hash_str(site) ^
                               splitmix64(static_cast<std::uint64_t>(rank.value() + 1)) ^
                               splitmix64(f->call + 1);
    // Distinct positions only: two flips landing on the same bit would
    // cancel out and leave an "injected" corruption nothing could detect.
    const std::uint64_t nbits = static_cast<std::uint64_t>(buf.size()) * 8u;
    std::vector<std::uint64_t> used;
    std::uint64_t ctr = 0;
    const index_t want = std::min(f->flips, static_cast<index_t>(std::min<std::uint64_t>(
                                                nbits, static_cast<std::uint64_t>(1) << 20)));
    while (static_cast<index_t>(used.size()) < want) {
        const std::uint64_t pos = splitmix64(base + ctr++ * 0x9e3779b97f4a7c15ull) % nbits;
        if (std::find(used.begin(), used.end(), pos) != used.end()) continue;
        used.push_back(pos);
        buf[static_cast<std::size_t>(pos / 8)] ^= static_cast<std::byte>(1u << (pos % 8));
    }
    return static_cast<index_t>(used.size());
}

double stall_point(const char* site)
{
    if (!enabled()) return 0.0;
    const auto f = fire(site, FaultKind::Stall);
    if (!f || f->stall_s <= 0.0) return 0.0;
    std::this_thread::sleep_for(std::chrono::duration<double>(f->stall_s));
    return f->stall_s;
}

}  // namespace xct::faults
