#include "faults/fault.hpp"

#include <atomic>
#include <optional>

#include "core/mutex.hpp"
#include "core/names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::faults {
namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for the per-call Bernoulli
/// decision (deterministic in (seed, site, rank, call)).
std::uint64_t splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t hash_str(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
    for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    return h;
}

struct Engine {
    Mutex m;
    FaultPlan plan XCT_GUARDED_BY(m);
    /// Per (site, rank) call counters — deterministic trigger points
    /// regardless of thread interleaving.
    std::map<std::pair<std::string, index_t>, std::uint64_t> calls XCT_GUARDED_BY(m);
};

Engine& engine()
{
    static Engine e;
    return e;
}

std::atomic<bool> g_enabled{false};

/// Decide (and consume) one call at `site`; nullopt = no fault.
std::optional<std::uint64_t> fire(const char* site)
{
    Engine& e = engine();
    const index_t rank = telemetry::current_rank();
    std::uint64_t call = 0;
    bool fires = false;
    {
        MutexLock lk(e.m);
        const auto it = e.plan.specs().find(site);
        if (it == e.plan.specs().end()) return std::nullopt;
        const FaultSpec& spec = it->second;
        call = e.calls[{it->first, rank}]++;
        if (spec.rank >= 0 && spec.rank != rank) return std::nullopt;
        if (spec.after >= 0) {
            const auto first = static_cast<std::uint64_t>(spec.after);
            fires = call >= first &&
                    (spec.count < 0 || call < first + static_cast<std::uint64_t>(spec.count));
        }
        if (!fires && spec.probability > 0.0) {
            const std::uint64_t h = splitmix64(e.plan.seed() ^ hash_str(it->first) ^
                                               splitmix64(static_cast<std::uint64_t>(rank + 1)) ^
                                               splitmix64(call * 0x9e3779b97f4a7c15ull));
            const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
            fires = u < spec.probability;
        }
    }
    if (!fires) return std::nullopt;
    auto& reg = telemetry::registry();
    reg.counter(names::kMetricFaultsInjected).add(1);
    reg.counter(std::string(names::kMetricFaultsInjectedPrefix) + site).add(1);
    return call;
}

}  // namespace

InjectedFault::InjectedFault(std::string site, index_t rank, std::uint64_t call)
    : TransientError("injected fault at " + site + " (rank " + std::to_string(rank) + ", call " +
                     std::to_string(call) + ")"),
      site_(std::move(site))
{
}

FaultPlan& FaultPlan::add(std::string site, FaultSpec spec)
{
    require(!site.empty(), "FaultPlan: empty site name");
    require(spec.probability >= 0.0 && spec.probability <= 1.0,
            "FaultPlan: probability must be in [0, 1]");
    require(spec.probability > 0.0 || spec.after >= 0,
            "FaultPlan: site " + site + " has no trigger (set p or after)");
    specs_[std::move(site)] = spec;
    return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed)
{
    FaultPlan plan(seed);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t end = std::min(spec.find(';', pos), spec.size());
        const std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;

        const std::size_t colon = entry.find(':');
        const std::string site = entry.substr(0, colon);
        FaultSpec fs;
        bool has_trigger = false;
        if (colon != std::string::npos) {
            std::size_t kpos = colon + 1;
            while (kpos <= entry.size()) {
                const std::size_t kend = std::min(entry.find(',', kpos), entry.size());
                const std::string kv = entry.substr(kpos, kend - kpos);
                kpos = kend + 1;
                if (kv.empty()) continue;
                const std::size_t eq = kv.find('=');
                require(eq != std::string::npos,
                        "FaultPlan::parse: expected key=value, got '" + kv + "'");
                const std::string key = kv.substr(0, eq);
                const std::string val = kv.substr(eq + 1);
                if (key != "p" && key != "after" && key != "count" && key != "rank")
                    throw std::invalid_argument("FaultPlan::parse: unknown key '" + key + "'");
                try {
                    if (key == "p") {
                        fs.probability = std::stod(val);
                        has_trigger = true;
                    } else if (key == "after") {
                        fs.after = std::stoll(val);
                        has_trigger = true;
                    } else if (key == "count") {
                        fs.count = std::stoll(val);
                    } else {
                        fs.rank = std::stoll(val);
                    }
                } catch (const std::logic_error& e) {
                    throw std::invalid_argument("FaultPlan::parse: bad value in '" + kv +
                                                "': " + e.what());
                }
            }
        }
        if (!has_trigger) fs.after = 0;  // bare site: fail the first call
        plan.add(site, fs);
    }
    return plan;
}

void set_plan(FaultPlan plan)
{
    Engine& e = engine();
    MutexLock lk(e.m);
    g_enabled.store(!plan.empty(), std::memory_order_relaxed);
    e.plan = std::move(plan);
    e.calls.clear();
}

void clear_plan()
{
    set_plan(FaultPlan{});
}

bool enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

bool should_fail(const char* site)
{
    if (!enabled()) return false;
    return fire(site).has_value();
}

void check(const char* site)
{
    if (!enabled()) return;
    if (const auto call = fire(site))
        throw InjectedFault(site, telemetry::current_rank(), *call);
}

}  // namespace xct::faults
