#pragma once
// Bounded retry with exponential backoff and deterministic jitter.
//
// Wraps the operations whose real-world counterparts fail transiently —
// PFS loads/stores and host<->device transfers — so an injected (or, in
// production, mapped-transient) fault is absorbed instead of killing the
// run.  Only faults::TransientError is retried; anything else propagates
// immediately (fail loudly stays the default for logic errors).
//
// The backoff is the classic bounded exponential,
//
//   delay(k) = min(base * multiplier^k, max) * (1 + jitter * u),
//
// with u in [-1, 1] derived by hashing (seed, site, attempt) — no global
// RNG, so a given policy produces the same delays every run, which keeps
// faulted test runs reproducible.  Delays are real sleeps (defaults are
// sub-millisecond) and are additionally accumulated into the telemetry
// gauge `faults.retry.delay_seconds`; each retry emits a "faults/retry"
// trace span plus `faults.retry.attempts[.<site>]` counters, and an
// exhausted budget bumps `faults.retry.exhausted` before rethrowing.

#include <utility>

#include "core/types.hpp"
#include "faults/fault.hpp"

namespace xct::faults {

/// Retry budget and backoff shape of one site (or one subsystem).
struct RetryPolicy {
    index_t max_attempts = 4;    ///< total tries including the first
    double base_delay_s = 1e-4;  ///< first backoff delay
    double multiplier = 2.0;     ///< exponential growth per retry
    double max_delay_s = 1e-2;   ///< backoff cap
    double jitter = 0.25;        ///< +/- fraction of the delay
    std::uint64_t seed = 1;      ///< jitter derivation seed
};

/// The (jittered, capped) delay before retry number `attempt` (0-based:
/// the delay between the first failure and the second try).  Pure
/// function of (policy, site, attempt).
double backoff_delay(const RetryPolicy& policy, const char* site, index_t attempt);

namespace detail {
/// Telemetry + sleep for one retry of `site` (attempt 0-based).
void on_retry(const char* site, const RetryPolicy& policy, index_t attempt);
void on_exhausted(const char* site);
}  // namespace detail

/// Run `fn`, retrying on TransientError within `policy`'s budget.  The
/// final failure rethrows the last TransientError.
template <typename F>
auto with_retry(const char* site, const RetryPolicy& policy, F&& fn) -> decltype(fn())
{
    require(policy.max_attempts > 0, "with_retry: max_attempts must be positive");
    for (index_t attempt = 0;; ++attempt) {
        try {
            return fn();
        } catch (const TransientError&) {
            if (attempt + 1 >= policy.max_attempts) {
                detail::on_exhausted(site);
                throw;
            }
            detail::on_retry(site, policy, attempt);
        }
    }
}

}  // namespace xct::faults
