#include "faults/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>

#include "core/names.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace xct::faults {
namespace {

std::uint64_t splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t hash_str(const char* s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ull;
    return h;
}

}  // namespace

double backoff_delay(const RetryPolicy& policy, const char* site, index_t attempt)
{
    require(attempt >= 0, "backoff_delay: attempt must be non-negative");
    double delay = policy.base_delay_s *
                   std::pow(policy.multiplier, static_cast<double>(attempt));
    delay = std::min(delay, policy.max_delay_s);
    if (policy.jitter > 0.0) {
        const std::uint64_t h = splitmix64(policy.seed ^ hash_str(site) ^
                                           splitmix64(static_cast<std::uint64_t>(attempt)));
        const double u = static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;  // [-1, 1)
        delay *= 1.0 + policy.jitter * u;
    }
    return std::max(delay, 0.0);
}

namespace detail {

void on_retry(const char* site, const RetryPolicy& policy, index_t attempt)
{
    const double delay = backoff_delay(policy, site, attempt);
    auto& reg = telemetry::registry();
    reg.counter(names::kMetricFaultsRetryAttempts).add(1);
    reg.counter(std::string(names::kMetricFaultsRetryPrefix) + site + ".attempts").add(1);
    reg.gauge(names::kMetricFaultsRetryDelaySeconds).add(delay);
    // Log-bucketed distribution of backoff delays (100 us .. ~1.6 ks):
    // the gauge above keeps the total, the histogram the tail shape.
    reg.histogram(names::kMetricFaultsRetryDelaySeconds,
                  telemetry::exp_bounds(1e-4, 4.0, 12))
        .observe(delay);
    telemetry::ScopedTrace trace(names::kCatFaults, names::kSpanRetry, attempt);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

void on_exhausted(const char* site)
{
    auto& reg = telemetry::registry();
    reg.counter(names::kMetricFaultsRetryExhausted).add(1);
    reg.counter(std::string(names::kMetricFaultsRetryPrefix) + site + ".exhausted").add(1);
}

}  // namespace detail
}  // namespace xct::faults
