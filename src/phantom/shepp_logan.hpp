#pragma once
// Synthetic data substrate: analytic ellipsoid phantoms and their *exact*
// cone-beam forward projection.
//
// The paper evaluates on six real scans (coffee bean, bumblebee, four
// tomobank sets).  Raw data and a beamline are not available here, so —
// per the substitution policy of DESIGN.md §2 — we generate projections
// through the *same geometries* from analytic phantoms:
//
//   * the classical 3D Shepp-Logan head (the paper itself uses it for its
//     numerical assessment, Sec. 6.1);
//   * a procedural porous "bean" (ellipsoid shell plus seeded ellipsoidal
//     voids) standing in for the micro-CT coffee-bean sample.
//
// Being ellipsoid compositions, both admit closed-form line integrals, so
// the forward projections carry no discretisation error — the oracle side
// of every end-to-end test.

#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "core/volume.hpp"

namespace xct::phantom {

/// One ellipsoid: semi-axes (a, b, c) [mm], centre [mm], rotation about the
/// Z axis [radians], additive density.
struct Ellipsoid {
    double density = 0.0;
    double a = 0.0, b = 0.0, c = 0.0;
    double cx = 0.0, cy = 0.0, cz = 0.0;
    double phi = 0.0;
};

/// The ten-ellipsoid 3D Shepp-Logan head, scaled so the outer skull
/// ellipsoid has semi-axis `radius_mm` along Y (the classical table is
/// defined on the unit cube).  Densities follow the "modified" contrast
/// variant common in the literature.
std::vector<Ellipsoid> shepp_logan_3d(double radius_mm);

/// Procedural porous bean: an ellipsoidal body of density `body_density`
/// with `num_voids` seeded ellipsoidal pores of negative density (air).
/// Deterministic for a given `seed`.
std::vector<Ellipsoid> porous_bean(double radius_mm, index_t num_voids, std::uint64_t seed);

/// Sum of densities of all ellipsoids containing the point (x, y, z) [mm].
double density_at(const std::vector<Ellipsoid>& e, double x, double y, double z);

/// Exact line integral of the phantom along the segment src -> dst [mm].
double line_integral(const std::vector<Ellipsoid>& e, const Vec3& src, const Vec3& dst);

/// Rasterise the phantom onto the reconstruction grid of `g` (voxel-centre
/// sampling) — the ground-truth volume for RMSE assessments.
Volume voxelize(const std::vector<Ellipsoid>& e, const CbctGeometry& g);

/// Analytically forward-project the phantom through geometry `g` for the
/// given view range and detector-row band (global coordinates), honouring
/// the sigma_u / sigma_v / sigma_cor calibration terms.  Returns a stack
/// whose view index 0 corresponds to global view `views.lo`.
ProjectionStack forward_project(const std::vector<Ellipsoid>& e, const CbctGeometry& g, Range views,
                                Range band);

/// Full-detector, all-views convenience overload.
ProjectionStack forward_project(const std::vector<Ellipsoid>& e, const CbctGeometry& g);

}  // namespace xct::phantom
