#include "phantom/shepp_logan.hpp"

#include <cmath>
#include <numbers>
#include <random>

namespace xct::phantom {

std::vector<Ellipsoid> shepp_logan_3d(double radius_mm)
{
    require(radius_mm > 0.0, "shepp_logan_3d: radius must be positive");
    // Classical table (unit-cube coordinates), modified contrast variant.
    // Columns: density, a, b, c, cx, cy, cz, phi [deg].
    constexpr double deg = std::numbers::pi / 180.0;
    const double r = radius_mm / 0.92;  // outer ellipsoid's largest semi-axis -> radius_mm
    return {
        {1.0, 0.69 * r, 0.92 * r, 0.81 * r, 0.0, 0.0, 0.0, 0.0},
        {-0.8, 0.6624 * r, 0.874 * r, 0.78 * r, 0.0, -0.0184 * r, 0.0, 0.0},
        {-0.2, 0.11 * r, 0.31 * r, 0.22 * r, 0.22 * r, 0.0, 0.0, -18.0 * deg},
        {-0.2, 0.16 * r, 0.41 * r, 0.28 * r, -0.22 * r, 0.0, 0.0, 18.0 * deg},
        {0.1, 0.21 * r, 0.25 * r, 0.41 * r, 0.0, 0.35 * r, -0.15 * r, 0.0},
        {0.1, 0.046 * r, 0.046 * r, 0.05 * r, 0.0, 0.1 * r, 0.25 * r, 0.0},
        {0.1, 0.046 * r, 0.046 * r, 0.05 * r, 0.0, -0.1 * r, 0.25 * r, 0.0},
        {0.1, 0.046 * r, 0.023 * r, 0.05 * r, -0.08 * r, -0.605 * r, 0.0, 0.0},
        {0.1, 0.023 * r, 0.023 * r, 0.02 * r, 0.0, -0.606 * r, 0.0, 0.0},
        {0.1, 0.023 * r, 0.046 * r, 0.02 * r, 0.06 * r, -0.605 * r, 0.0, 0.0},
    };
}

std::vector<Ellipsoid> porous_bean(double radius_mm, index_t num_voids, std::uint64_t seed)
{
    require(radius_mm > 0.0, "porous_bean: radius must be positive");
    require(num_voids >= 0, "porous_bean: num_voids must be non-negative");
    std::vector<Ellipsoid> e;
    // Bean body: an elongated ellipsoid, density ~ roasted coffee (arbitrary
    // attenuation units).
    e.push_back({0.8, 0.55 * radius_mm, 0.9 * radius_mm, 0.45 * radius_mm, 0.0, 0.0, 0.0, 0.0});
    // Centre crease: a flattened low-density slab-like ellipsoid.
    e.push_back({-0.5, 0.06 * radius_mm, 0.75 * radius_mm, 0.3 * radius_mm, 0.0, 0.0, 0.0, 0.0});

    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> upos(-0.6, 0.6);
    std::uniform_real_distribution<double> usize(0.02, 0.08);
    std::uniform_real_distribution<double> uang(0.0, std::numbers::pi);
    for (index_t i = 0; i < num_voids; ++i) {
        Ellipsoid v;
        v.density = -0.6;  // pores: partial density drop
        v.a = usize(rng) * radius_mm;
        v.b = usize(rng) * radius_mm;
        v.c = usize(rng) * radius_mm;
        v.cx = upos(rng) * 0.5 * radius_mm;
        v.cy = upos(rng) * 0.8 * radius_mm;
        v.cz = upos(rng) * 0.4 * radius_mm;
        v.phi = uang(rng);
        e.push_back(v);
    }
    return e;
}

namespace {

/// Transform a world point into the ellipsoid's unit-sphere frame.
inline Vec3 to_unit_frame(const Ellipsoid& e, const Vec3& p)
{
    const double c = std::cos(e.phi);
    const double s = std::sin(e.phi);
    const double dx = p.x - e.cx;
    const double dy = p.y - e.cy;
    const double dz = p.z - e.cz;
    // Inverse rotation (by -phi) then semi-axis normalisation.
    return {(c * dx + s * dy) / e.a, (-s * dx + c * dy) / e.b, dz / e.c};
}

}  // namespace

double density_at(const std::vector<Ellipsoid>& es, double x, double y, double z)
{
    double d = 0.0;
    const Vec3 p{x, y, z};
    for (const Ellipsoid& e : es) {
        const Vec3 q = to_unit_frame(e, p);
        if (q.dot(q) <= 1.0) d += e.density;
    }
    return d;
}

double line_integral(const std::vector<Ellipsoid>& es, const Vec3& src, const Vec3& dst)
{
    const Vec3 dir = dst - src;
    const double len = dir.norm();
    if (len == 0.0) return 0.0;

    double total = 0.0;
    for (const Ellipsoid& e : es) {
        // Ray in the unit-sphere frame: o + t * d, t in [0, 1].
        const Vec3 o = to_unit_frame(e, src);
        const Vec3 p1 = to_unit_frame(e, dst);
        const Vec3 d = p1 - o;
        const double a = d.dot(d);
        if (a == 0.0) continue;
        const double b = 2.0 * o.dot(d);
        const double c = o.dot(o) - 1.0;
        const double disc = b * b - 4.0 * a * c;
        if (disc <= 0.0) continue;
        const double sq = std::sqrt(disc);
        double t0 = (-b - sq) / (2.0 * a);
        double t1 = (-b + sq) / (2.0 * a);
        t0 = std::max(t0, 0.0);
        t1 = std::min(t1, 1.0);
        if (t1 > t0) total += e.density * (t1 - t0) * len;
    }
    return total;
}

Volume voxelize(const std::vector<Ellipsoid>& es, const CbctGeometry& g)
{
    g.validate();
    Volume v(g.vol);
    const double ox = (static_cast<double>(g.vol.x) - 1.0) / 2.0;
    const double oy = (static_cast<double>(g.vol.y) - 1.0) / 2.0;
    const double oz = (static_cast<double>(g.vol.z) - 1.0) / 2.0;
#pragma omp parallel for schedule(static)
    for (index_t k = 0; k < g.vol.z; ++k)
        for (index_t j = 0; j < g.vol.y; ++j)
            for (index_t i = 0; i < g.vol.x; ++i)
                v.at(i, j, k) = static_cast<float>(
                    density_at(es, (static_cast<double>(i) - ox) * g.dx,
                               (static_cast<double>(j) - oy) * g.dy,
                               (static_cast<double>(k) - oz) * g.dz));
    return v;
}

ProjectionStack forward_project(const std::vector<Ellipsoid>& es, const CbctGeometry& g,
                                Range views, Range band)
{
    g.validate();
    require(!views.empty() && views.lo >= 0 && views.hi <= g.num_proj,
            "forward_project: views out of range");
    require(!band.empty() && band.lo >= 0 && band.hi <= g.nv, "forward_project: band out of range");

    ProjectionStack stack(views.length(), band, g.nu);
    const double cu = (static_cast<double>(g.nu) - 1.0) / 2.0 + g.sigma_u;
    const double cv = (static_cast<double>(g.nv) - 1.0) / 2.0 + g.sigma_v;

    for (index_t s = views.lo; s < views.hi; ++s) {
        const double phi = g.angle_of(s);
        const double cph = std::cos(phi);
        const double sph = std::sin(phi);
        // Object frame (the object rotates by +phi, so source and detector
        // counter-rotate by -phi).  World positions at phi = 0:
        //   source          (-sigma_cor, -Dso, 0)
        //   pixel (u, v)    ((u - cu) du - sigma_cor, Dsd - Dso, (v - cv) dv)
        const auto rot = [&](double x, double y, double z) -> Vec3 {
            // Rz(-phi)
            return {cph * x + sph * y, -sph * x + cph * y, z};
        };
        const Vec3 src = rot(-g.sigma_cor, -g.dso, 0.0);
#pragma omp parallel for schedule(static)
        for (index_t v = band.lo; v < band.hi; ++v) {
            const double pz = (static_cast<double>(v) - cv) * g.dv;
            auto row = stack.row(s - views.lo, v);
            for (index_t u = 0; u < g.nu; ++u) {
                const double px = (static_cast<double>(u) - cu) * g.du - g.sigma_cor;
                const Vec3 dst = rot(px, g.dsd - g.dso, pz);
                row[static_cast<std::size_t>(u)] =
                    static_cast<float>(line_integral(es, src, dst));
            }
        }
    }
    return stack;
}

ProjectionStack forward_project(const std::vector<Ellipsoid>& es, const CbctGeometry& g)
{
    return forward_project(es, g, Range{0, g.num_proj}, Range{0, g.nv});
}

}  // namespace xct::phantom
