#pragma once
// Machine-parameter calibration: the measurement half of the autotuner
// (DESIGN.md §3j).
//
// The perfmodel's Eq. 13-17 predictions are only as good as the
// MachineParams behind them, and the seed constants are hand-entered
// ABCI numbers.  The Calibrator replaces them with measured rooflines:
// each observation is (work, seconds) at one of the seven machine rates,
// and fit() returns the aggregate-ratio estimate sum(work)/sum(seconds)
// per rate — the time-weighted throughput, which is exactly what the
// model multiplies by.  Sources of observations:
//
//   * observe_bench_file() — the micro_kernels BENCH_*.json document
//     (backproj updates/s, filter elements/s);
//   * observe_run() — a real run's per-rank RankStats-style timings, with
//     work terms derived from the run's geometry exactly as batch_times
//     derives them (this is how xct_soak's live tier feeds measured
//     latencies back into the tail bound);
//   * observe() — anything else (tests, future probes).
//
// Rates nobody measured keep the base MachineParams value, so a partial
// calibration is always safe.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "perfmodel/model.hpp"

namespace xct::autotune {

/// The seven machine rates of perfmodel::MachineParams.
enum class Param {
    BwLoad,    ///< storage read bandwidth [bytes/s]
    BwStore,   ///< aggregate PFS write bandwidth [bytes/s]
    ThFlt,     ///< filtering throughput [elements/s]
    ThBp,      ///< back-projection throughput [updates/s]
    ThReduce,  ///< reduce payload throughput [bytes/s]
    BwH2d,     ///< host->device bandwidth [bytes/s]
    BwD2h,     ///< device->host bandwidth [bytes/s]
};

/// Measured pipeline outcome of one rank of a real run, in the units
/// recon::RankStats reports (stage busy seconds, link byte/second
/// totals).  rank_index is the world rank within the run's layout.
struct MeasuredRank {
    index_t rank_index = 0;
    double load_s = 0.0;
    double filter_s = 0.0;
    double bp_s = 0.0;
    std::uint64_t h2d_bytes = 0;
    double h2d_s = 0.0;
    std::uint64_t d2h_bytes = 0;
    double d2h_s = 0.0;
};

class Calibrator {
public:
    /// One roofline observation: `work` units processed in `seconds`.
    /// Non-positive work or seconds is ignored (an idle stage says
    /// nothing about its rate).
    void observe(Param p, double work, double seconds);

    /// Seed kernel rates from a BENCH_*.json document: reads
    /// backproj.updates_per_s_{simd,scalar} and filter.elems_per_s_fp32
    /// when present.  Throws std::runtime_error when the file is
    /// unreadable; unknown keys are ignored.
    void observe_bench_file(const std::string& path);

    /// Fold one run's measured per-rank stats in.  Work terms (elements
    /// filtered, updates back-projected, bytes loaded) are derived from
    /// `cfg`'s geometry/layout exactly as perfmodel::batch_times derives
    /// them; link rates use the measured byte/second totals directly.
    void observe_run(const perfmodel::RunConfig& cfg, const std::vector<MeasuredRank>& ranks);

    /// Total observations folded in so far.
    std::size_t samples() const;

    /// Aggregate-ratio fit: rate = sum(work) / sum(seconds) per param,
    /// converted to the model's GB-scale units.  Params with no samples
    /// keep `base`'s value.
    perfmodel::MachineParams fit(const perfmodel::MachineParams& base) const;

private:
    struct Acc {
        double work = 0.0;
        double seconds = 0.0;
        std::size_t n = 0;
    };
    std::array<Acc, 7> acc_{};
};

/// JSON serialisation of machine params ("xct.machine.v1") — the shape
/// the CI bench-trend job uploads as its calibrated-machine artifact.
std::string machine_json(const perfmodel::MachineParams& m);
void write_machine_json(const std::string& path, const perfmodel::MachineParams& m);
/// Parse a machine_json document.  Throws std::runtime_error on missing
/// file or missing keys.
perfmodel::MachineParams read_machine_json(const std::string& path);

}  // namespace xct::autotune
