#include "autotune/calibrate.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/decompose.hpp"

namespace xct::autotune {

namespace {

std::size_t idx(Param p)
{
    return static_cast<std::size_t>(p);
}

/// Minimal reader for the flat one-or-two-level JSON this repo's bench
/// writer emits: quoted keys, numeric or string scalar values, no arrays
/// and no escape sequences.  Numeric leaves land in the map as
/// "section.key" (or bare "key" at the top level); everything else is
/// skipped.
std::map<std::string, double> parse_numeric_keys(const std::string& text)
{
    std::map<std::string, double> out;
    std::string section;
    index_t depth = 0;
    std::size_t i = 0;
    const std::size_t n = text.size();
    const auto skip_ws = [&] {
        while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    };
    while (i < n) {
        const char c = text[i];
        if (c == '{') {
            ++depth;
            ++i;
            continue;
        }
        if (c == '}') {
            --depth;
            if (depth <= 1) section.clear();
            ++i;
            continue;
        }
        if (c != '"') {
            ++i;
            continue;
        }
        const std::size_t e = text.find('"', i + 1);
        if (e == std::string::npos) break;
        const std::string key = text.substr(i + 1, e - i - 1);
        i = e + 1;
        skip_ws();
        if (i >= n || text[i] != ':') continue;
        ++i;
        skip_ws();
        if (i >= n) break;
        if (text[i] == '{') {
            section = key;  // the '{' is consumed by the next iteration
            continue;
        }
        if (text[i] == '"') {  // string value: skip
            const std::size_t e2 = text.find('"', i + 1);
            i = e2 == std::string::npos ? n : e2 + 1;
            continue;
        }
        char* end = nullptr;
        const double v = std::strtod(text.c_str() + i, &end);
        if (end != text.c_str() + i) {
            out[section.empty() ? key : section + "." + key] = v;
            i = static_cast<std::size_t>(end - text.c_str());
        } else {
            ++i;
        }
    }
    return out;
}

std::string read_text(const std::string& path)
{
    std::ifstream in(path);
    if (!in) throw std::runtime_error("autotune: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

void Calibrator::observe(Param p, double work, double seconds)
{
    if (work <= 0.0 || seconds <= 0.0) return;
    Acc& a = acc_[idx(p)];
    a.work += work;
    a.seconds += seconds;
    ++a.n;
}

void Calibrator::observe_bench_file(const std::string& path)
{
    const auto kv = parse_numeric_keys(read_text(path));
    const auto take = [&](const char* key, Param p) {
        const auto it = kv.find(key);
        if (it == kv.end()) return false;
        observe(p, it->second, 1.0);  // the bench reports a rate: work per 1 s
        return true;
    };
    if (!take("backproj.updates_per_s_simd", Param::ThBp))
        take("backproj.updates_per_s_scalar", Param::ThBp);
    take("filter.elems_per_s_fp32", Param::ThFlt);
}

void Calibrator::observe_run(const perfmodel::RunConfig& cfg,
                             const std::vector<MeasuredRank>& ranks)
{
    cfg.geometry.validate();
    const CbctGeometry& g = cfg.geometry;
    for (const MeasuredRank& r : ranks) {
        const RankId rank{r.rank_index};
        const index_t views = cfg.layout.views_of_rank(rank, g.num_proj).length();
        const Range slices = cfg.layout.slices_of_group(cfg.layout.group_of(rank), g.vol.z);
        if (views <= 0 || slices.empty()) continue;
        const index_t nb = (slices.length() + cfg.batches - 1) / cfg.batches;
        const auto plans = plan_slabs(g, slices, nb);
        // Work terms exactly as batch_times derives them: the first slab
        // stages its full row window, later slabs only their deltas.
        double staged_rows = 0.0;
        for (std::size_t i = 0; i < plans.size(); ++i)
            staged_rows += static_cast<double>(i == 0 ? plans[i].rows.length()
                                                      : plans[i].delta.length());
        const double in_elems = static_cast<double>(g.nu) * static_cast<double>(views) *
                                staged_rows;
        const double updates = static_cast<double>(g.vol.x) * static_cast<double>(g.vol.y) *
                               static_cast<double>(slices.length()) *
                               static_cast<double>(views);
        observe(Param::BwLoad, sizeof(float) * in_elems, r.load_s);
        observe(Param::ThFlt, in_elems, r.filter_s);
        observe(Param::ThBp, updates, r.bp_s);
        observe(Param::BwH2d, static_cast<double>(r.h2d_bytes), r.h2d_s);
        observe(Param::BwD2h, static_cast<double>(r.d2h_bytes), r.d2h_s);
    }
}

std::size_t Calibrator::samples() const
{
    std::size_t n = 0;
    for (const Acc& a : acc_) n += a.n;
    return n;
}

perfmodel::MachineParams Calibrator::fit(const perfmodel::MachineParams& base) const
{
    perfmodel::MachineParams m = base;
    const auto rate = [&](Param p, double& field) {
        const Acc& a = acc_[idx(p)];
        if (a.n == 0 || a.seconds <= 0.0) return;
        field = a.work / a.seconds / 1e9;  // all model rates are giga-units
    };
    rate(Param::BwLoad, m.bw_load_gbps);
    rate(Param::BwStore, m.bw_store_gbps);
    rate(Param::ThFlt, m.th_flt_geps);
    rate(Param::ThBp, m.th_bp_gups);
    rate(Param::ThReduce, m.th_reduce_gbps);
    rate(Param::BwH2d, m.bw_h2d_gbps);
    rate(Param::BwD2h, m.bw_d2h_gbps);
    return m;
}

std::string machine_json(const perfmodel::MachineParams& m)
{
    std::ostringstream ss;
    ss << std::setprecision(17);
    ss << "{\n";
    ss << "  \"schema\": \"xct.machine.v1\",\n";
    ss << "  \"bw_load_gbps\": " << m.bw_load_gbps << ",\n";
    ss << "  \"bw_store_gbps\": " << m.bw_store_gbps << ",\n";
    ss << "  \"th_flt_geps\": " << m.th_flt_geps << ",\n";
    ss << "  \"th_bp_gups\": " << m.th_bp_gups << ",\n";
    ss << "  \"th_reduce_gbps\": " << m.th_reduce_gbps << ",\n";
    ss << "  \"bw_h2d_gbps\": " << m.bw_h2d_gbps << ",\n";
    ss << "  \"bw_d2h_gbps\": " << m.bw_d2h_gbps << "\n";
    ss << "}\n";
    return ss.str();
}

void write_machine_json(const std::string& path, const perfmodel::MachineParams& m)
{
    std::ofstream out(path);
    if (!out) throw std::runtime_error("autotune: cannot write " + path);
    out << machine_json(m);
}

perfmodel::MachineParams read_machine_json(const std::string& path)
{
    const auto kv = parse_numeric_keys(read_text(path));
    perfmodel::MachineParams m;
    const auto need = [&](const char* key, double& field) {
        const auto it = kv.find(key);
        if (it == kv.end())
            throw std::runtime_error("autotune: " + path + " is missing key '" + key + "'");
        if (it->second <= 0.0)
            throw std::runtime_error("autotune: " + path + " key '" + key +
                                     "' must be positive");
        field = it->second;
    };
    need("bw_load_gbps", m.bw_load_gbps);
    need("bw_store_gbps", m.bw_store_gbps);
    need("th_flt_geps", m.th_flt_geps);
    need("th_bp_gups", m.th_bp_gups);
    need("th_reduce_gbps", m.th_reduce_gbps);
    need("bw_h2d_gbps", m.bw_h2d_gbps);
    need("bw_d2h_gbps", m.bw_d2h_gbps);
    return m;
}

}  // namespace xct::autotune
