#pragma once
// Decomposition planner: the decision half of the autotuner (DESIGN.md
// §3j).
//
// iFDK (arXiv:1909.02724) shows the N_g/N_r/N_c choice dominates
// end-to-end throughput at scale, and the paper's Table 2 enumerates the
// decompositions its evaluation hand-picked.  With calibrated
// MachineParams the Eq. 13-17 event simulation prices any candidate in
// microseconds, so the planner simply scores the whole feasible lattice
// — power-of-two group/rank splits within the rank budget, the standard
// batch counts, the practical queue depths — plus any caller-supplied
// candidates (e.g. the fixed CLI choice, which guarantees the plan is
// never worse than it) and returns the argmin as a typed Plan.
//
// Feasibility mirrors SlabBackprojector's device sizing: the circular
// texture (max row window x view share x Nu) plus the slab sub-volume
// must fit the per-rank device budget — infeasible candidates are the
// "✗" cells of Table 5 and are skipped, not scored.

#include <cstdint>
#include <string>
#include <vector>

#include "core/decompose.hpp"
#include "core/geometry.hpp"
#include "io/band_codec.hpp"
#include "perfmodel/model.hpp"

namespace xct::autotune {

/// One candidate decomposition the planner scores.
struct Candidate {
    GroupLayout layout{1, 1};
    index_t batches = 8;     ///< Nc
    index_t queue_depth = 2;  ///< inter-stage FIFO capacity
};

/// The job the planner decomposes.
struct JobShape {
    CbctGeometry geometry;
    index_t rank_budget = 1;                   ///< max Ng * Nr
    std::size_t device_capacity = 512u << 20;  ///< per-rank device budget [bytes]
    io::BandCodec codec = io::BandCodec::Raw;  ///< wire format to model
};

/// What xct_recon --autotune and the soak scheduler consume in place of
/// fixed CLI choices.
struct Plan {
    GroupLayout layout{1, 1};
    index_t batches = 8;
    index_t queue_depth = 2;
    io::BandCodec codec = io::BandCodec::Raw;
    double predicted_runtime_s = 0.0;  ///< event-sim runtime of the pick
    double predicted_gups = 0.0;       ///< whole-problem updates/s at that runtime
    /// Modelled fleet-total band bytes over the host->device hop at the
    /// plan's wire format (header bytes excluded — payload dominates).
    std::uint64_t predicted_h2d_bytes = 0;
    index_t candidates_scored = 0;
};

/// Device bytes one candidate actually allocates (circular texture + slab
/// sub-volume, sized like SlabBackprojector) — the price the serve
/// engine's admission control charges a job against the daemon's device
/// budget.  Returns 0 for a shape-invalid candidate.
std::uint64_t required_device_bytes(const JobShape& job, const Candidate& c);

/// Device-memory feasibility of one candidate (texture + slab sub-volume
/// vs the per-rank budget, sized like SlabBackprojector).
bool feasible(const JobShape& job, const Candidate& c);

/// Event-sim runtime of one concrete candidate — the planner's scoring
/// function, exposed so the bench/gate can price the fixed-CLI
/// configuration with identical arithmetic.
double predict_runtime(const JobShape& job, const Candidate& c,
                       const perfmodel::MachineParams& m);

/// Modelled fleet-total band wire bytes (pfs->host->device) of one
/// candidate at `codec`.
std::uint64_t h2d_wire_bytes(const CbctGeometry& g, const GroupLayout& layout, index_t batches,
                             io::BandCodec codec);

/// Search the feasible lattice (plus `must_score`, always scored when
/// feasible) and return the fastest candidate.  Deterministic: the
/// lattice order is fixed and ties keep the earlier candidate, which the
/// enumeration orders smallest-fleet-first.  Throws std::invalid_argument
/// when no candidate fits the device budget.
Plan plan_job(const JobShape& job, const perfmodel::MachineParams& m,
              const std::vector<Candidate>& must_score = {});

/// One-line human summary ("ng=4 nr=8 nc=8 qd=2 codec=q8 ...") for CLI
/// output and run reports.
std::string plan_summary(const Plan& plan);

}  // namespace xct::autotune
