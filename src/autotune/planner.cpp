#include "autotune/planner.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "core/names.hpp"
#include "telemetry/metrics.hpp"

namespace xct::autotune {

namespace {

/// Slab schedule of the candidate's representative (worst-case) rank:
/// group 0 holds the longest slice range and rank 0 the longest view
/// share (split_even gives the remainder to the first chunks).
std::vector<SlabPlan> representative_plans(const CbctGeometry& g, const Candidate& c)
{
    const Range slices = c.layout.slices_of_group(GroupId{0}, g.vol.z);
    const index_t nb = (slices.length() + c.batches - 1) / c.batches;
    return plan_slabs(g, slices, nb);
}

bool valid_shape(const CbctGeometry& g, const Candidate& c)
{
    return c.layout.num_groups > 0 && c.layout.ranks_per_group > 0 && c.batches > 0 &&
           c.queue_depth > 0 && c.layout.num_groups <= g.vol.z &&
           c.layout.ranks_per_group <= g.num_proj;
}

perfmodel::RunConfig run_config(const JobShape& job, const Candidate& c)
{
    perfmodel::RunConfig rc;
    rc.geometry = job.geometry;
    rc.layout = c.layout;
    rc.batches = c.batches;
    // q8 ships one byte per texel over the h2d hop (header amortised
    // away); raw ships fp32.
    rc.eta_h2d = job.codec == io::BandCodec::Q8 ? 1.0 : sizeof(float);
    return rc;
}

}  // namespace

std::uint64_t required_device_bytes(const JobShape& job, const Candidate& c)
{
    const CbctGeometry& g = job.geometry;
    if (!valid_shape(g, c)) return 0;
    const auto plans = representative_plans(g, c);
    const index_t views = c.layout.views_of_rank(RankId{0}, g.num_proj).length();
    index_t h = 1, max_slab = 1;
    for (const SlabPlan& p : plans) {
        h = std::max(h, p.rows.length());
        max_slab = std::max(max_slab, p.slab.length());
    }
    // SlabBackprojector's two device allocations: the circular texture of
    // the row window, and the slab sub-volume.
    const std::uint64_t tex_bytes = static_cast<std::uint64_t>(g.nu) *
                                    static_cast<std::uint64_t>(views) *
                                    static_cast<std::uint64_t>(h) * sizeof(float);
    const std::uint64_t slab_bytes = static_cast<std::uint64_t>(g.vol.x) *
                                     static_cast<std::uint64_t>(g.vol.y) *
                                     static_cast<std::uint64_t>(max_slab) * sizeof(float);
    return tex_bytes + slab_bytes;
}

bool feasible(const JobShape& job, const Candidate& c)
{
    if (!valid_shape(job.geometry, c)) return false;
    return required_device_bytes(job, c) <= job.device_capacity;
}

double predict_runtime(const JobShape& job, const Candidate& c,
                       const perfmodel::MachineParams& m)
{
    return perfmodel::simulate(run_config(job, c), m, c.queue_depth).runtime;
}

std::uint64_t h2d_wire_bytes(const CbctGeometry& g, const GroupLayout& layout, index_t batches,
                             io::BandCodec codec)
{
    // Per group, the staged row total is the first slab's window plus the
    // later slabs' deltas; every view of every row crosses the link once,
    // and the group's ranks' view shares sum to num_proj.
    std::uint64_t total_elems = 0;
    for (index_t gi = 0; gi < layout.num_groups; ++gi) {
        const Range slices = layout.slices_of_group(GroupId{gi}, g.vol.z);
        if (slices.empty()) continue;
        const index_t nb = (slices.length() + batches - 1) / batches;
        const auto plans = plan_slabs(g, slices, nb);
        std::uint64_t staged_rows = 0;
        for (std::size_t i = 0; i < plans.size(); ++i)
            staged_rows += static_cast<std::uint64_t>(
                i == 0 ? plans[i].rows.length() : plans[i].delta.length());
        total_elems += static_cast<std::uint64_t>(g.nu) * staged_rows *
                       static_cast<std::uint64_t>(g.num_proj);
    }
    return total_elems * (codec == io::BandCodec::Q8 ? 1 : sizeof(float));
}

Plan plan_job(const JobShape& job, const perfmodel::MachineParams& m,
              const std::vector<Candidate>& must_score)
{
    job.geometry.validate();
    require(job.rank_budget > 0, "plan_job: rank budget must be positive");
    const CbctGeometry& g = job.geometry;

    static constexpr index_t kBatchChoices[] = {2, 4, 8, 16, 32};
    static constexpr index_t kQueueChoices[] = {1, 2, 3, 4};

    std::vector<Candidate> lattice;
    for (index_t ng = 1; ng <= job.rank_budget && ng <= g.vol.z; ng *= 2)
        for (index_t nr = 1; ng * nr <= job.rank_budget && nr <= g.num_proj; nr *= 2)
            for (const index_t nc : kBatchChoices)
                for (const index_t qd : kQueueChoices)
                    lattice.push_back(Candidate{GroupLayout{ng, nr}, nc, qd});
    lattice.insert(lattice.end(), must_score.begin(), must_score.end());

    // Deterministic order, smallest fleet first, so ties (kept strictly:
    // only a strictly better score displaces the incumbent) resolve to
    // the cheapest decomposition.
    std::stable_sort(lattice.begin(), lattice.end(), [](const Candidate& a, const Candidate& b) {
        return std::make_tuple(a.layout.nranks(), a.layout.num_groups, a.batches,
                               a.queue_depth) <
               std::make_tuple(b.layout.nranks(), b.layout.num_groups, b.batches,
                               b.queue_depth);
    });

    Plan best;
    best.codec = job.codec;
    bool found = false;
    index_t scored = 0;
    for (const Candidate& c : lattice) {
        if (!feasible(job, c)) continue;
        const perfmodel::Projection proj =
            perfmodel::simulate(run_config(job, c), m, c.queue_depth);
        ++scored;
        if (!found || proj.runtime < best.predicted_runtime_s) {
            found = true;
            best.layout = c.layout;
            best.batches = c.batches;
            best.queue_depth = c.queue_depth;
            best.predicted_runtime_s = proj.runtime;
            best.predicted_gups = proj.gups;
        }
    }
    if (!found)
        throw std::invalid_argument(
            "plan_job: no candidate decomposition fits the device budget");
    best.candidates_scored = scored;
    best.predicted_h2d_bytes = h2d_wire_bytes(g, best.layout, best.batches, job.codec);
    auto& reg = telemetry::registry();
    reg.counter(names::kMetricAutotunePlans).add(1);
    reg.counter(names::kMetricAutotuneCandidates).add(static_cast<std::uint64_t>(scored));
    return best;
}

std::string plan_summary(const Plan& plan)
{
    std::ostringstream ss;
    ss << "ng=" << plan.layout.num_groups << " nr=" << plan.layout.ranks_per_group
       << " nc=" << plan.batches << " qd=" << plan.queue_depth
       << " codec=" << io::band_codec_name(plan.codec)
       << " predicted=" << plan.predicted_runtime_s << "s"
       << " gups=" << plan.predicted_gups
       << " h2d_bytes=" << plan.predicted_h2d_bytes
       << " (scored " << plan.candidates_scored << " candidates)";
    return ss.str();
}

}  // namespace xct::autotune
