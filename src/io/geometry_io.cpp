#include "io/geometry_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace xct::io {

void write_geometry(const std::filesystem::path& path, const GeometryFile& g)
{
    g.geometry.validate();
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
    std::ofstream f(path);
    require(f.good(), "write_geometry: cannot open " + path.string());
    const CbctGeometry& c = g.geometry;
    f << std::setprecision(17);
    f << "dso " << c.dso << "\n";
    f << "dsd " << c.dsd << "\n";
    f << "num_proj " << c.num_proj << "\n";
    f << "nu " << c.nu << "\n";
    f << "nv " << c.nv << "\n";
    f << "du " << c.du << "\n";
    f << "dv " << c.dv << "\n";
    f << "nx " << c.vol.x << "\n";
    f << "ny " << c.vol.y << "\n";
    f << "nz " << c.vol.z << "\n";
    f << "dx " << c.dx << "\n";
    f << "dy " << c.dy << "\n";
    f << "dz " << c.dz << "\n";
    f << "sigma_u " << c.sigma_u << "\n";
    f << "sigma_v " << c.sigma_v << "\n";
    f << "sigma_cor " << c.sigma_cor << "\n";
    f << "scan_range " << c.scan_range << "\n";
    f << "beer_dark " << g.beer.dark << "\n";
    f << "beer_blank " << g.beer.blank << "\n";
    f << "raw_counts " << (g.raw_counts ? 1 : 0) << "\n";
    require(f.good(), "write_geometry: write failed: " + path.string());
}

GeometryFile read_geometry(const std::filesystem::path& path)
{
    std::ifstream f(path);
    require(f.good(), "read_geometry: cannot open " + path.string());
    GeometryFile g;
    CbctGeometry& c = g.geometry;
    std::string key;
    while (f >> key) {
        double v = 0.0;
        require(static_cast<bool>(f >> v), "read_geometry: missing value for key " + key);
        if (key == "dso") c.dso = v;
        else if (key == "dsd") c.dsd = v;
        else if (key == "num_proj") c.num_proj = static_cast<index_t>(v);
        else if (key == "nu") c.nu = static_cast<index_t>(v);
        else if (key == "nv") c.nv = static_cast<index_t>(v);
        else if (key == "du") c.du = v;
        else if (key == "dv") c.dv = v;
        else if (key == "nx") c.vol.x = static_cast<index_t>(v);
        else if (key == "ny") c.vol.y = static_cast<index_t>(v);
        else if (key == "nz") c.vol.z = static_cast<index_t>(v);
        else if (key == "dx") c.dx = v;
        else if (key == "dy") c.dy = v;
        else if (key == "dz") c.dz = v;
        else if (key == "sigma_u") c.sigma_u = v;
        else if (key == "sigma_v") c.sigma_v = v;
        else if (key == "sigma_cor") c.sigma_cor = v;
        else if (key == "scan_range") c.scan_range = v;
        else if (key == "beer_dark") g.beer.dark = static_cast<float>(v);
        else if (key == "beer_blank") g.beer.blank = static_cast<float>(v);
        else if (key == "raw_counts") g.raw_counts = v != 0.0;
        else throw std::invalid_argument("read_geometry: unknown key '" + key + "' in " +
                                         path.string());
    }
    c.validate();
    return g;
}

}  // namespace xct::io
