#pragma once
// Bandwidth-accounted storage: stands in for the paper's node-local NVMe
// (projection loading) and Lustre PFS (volume storing).
//
// Real files are written under a root directory; alongside each transfer
// the modelled time at the configured bandwidth is accumulated, which is
// what the performance model (Sec. 5: BW_load, BW_store) and the
// weak-scaling store plateau (Fig. 14, ~9 s for a 4096^3 volume at
// 28.5 GB/s) consume.
//
// Thread-safety: statistics are plain atomics, so concurrent ranks may
// load/store through one Pfs without external locking (each operation
// opens its own stream; distinct paths never alias).  load_stats() /
// store_stats() return snapshots.
//
// Resilience: every load/store consults the fault-injection plan (sites
// "pfs.load" / "pfs.store") and, when a RetryPolicy is attached via
// set_retry(), transient failures are retried with bounded backoff — the
// recovery behaviour a real PFS client (striped Lustre, object store)
// needs at scale.

#include <atomic>
#include <filesystem>
#include <optional>

#include "core/volume.hpp"
#include "faults/retry.hpp"
#include "io/raw_io.hpp"

namespace xct::io {

/// Snapshot of accumulated I/O statistics of one direction.
struct IoStats {
    std::uint64_t bytes = 0;
    std::uint64_t operations = 0;
    double seconds = 0.0;  ///< modelled time at the configured bandwidth
};

class Pfs {
public:
    /// `root` is created if missing.  Bandwidths in GB/s (the paper's
    /// measured values: ~28.5 GB/s aggregate store, NVMe-class load).
    Pfs(std::filesystem::path root, double load_gbps, double store_gbps);

    const std::filesystem::path& root() const { return root_; }

    /// Retry transient load/store failures under `policy` (nullopt — the
    /// default — fails loudly on the first fault).
    void set_retry(std::optional<faults::RetryPolicy> policy) { retry_ = std::move(policy); }

    void store_volume(const std::string& rel, const Volume& v);
    Volume load_volume(const std::string& rel);
    void store_stack(const std::string& rel, const ProjectionStack& p);
    ProjectionStack load_stack(const std::string& rel);

    /// Partial load: only the requested views x detector-row band; only
    /// those bytes hit the (accounted) link — the O(Nu) granularity.
    ProjectionStack load_stack_rows(const std::string& rel, Range views, Range band);

    /// Stored stack metadata (no payload traffic).
    StackInfo stack_info(const std::string& rel) const;

    bool exists(const std::string& rel) const;

    IoStats load_stats() const { return load_.snapshot(); }
    IoStats store_stats() const { return store_.snapshot(); }
    void reset_stats();

private:
    /// Internally atomic accumulator behind the IoStats snapshots.
    struct AtomicIoStats {
        std::atomic<std::uint64_t> bytes{0};
        std::atomic<std::uint64_t> operations{0};
        std::atomic<double> seconds{0.0};

        void add(std::uint64_t b, double s)
        {
            bytes.fetch_add(b, std::memory_order_relaxed);
            operations.fetch_add(1, std::memory_order_relaxed);
            double cur = seconds.load(std::memory_order_relaxed);
            while (!seconds.compare_exchange_weak(cur, cur + s, std::memory_order_relaxed)) {
            }
        }
        IoStats snapshot() const
        {
            return IoStats{bytes.load(std::memory_order_relaxed),
                           operations.load(std::memory_order_relaxed),
                           seconds.load(std::memory_order_relaxed)};
        }
        void reset()
        {
            bytes.store(0, std::memory_order_relaxed);
            operations.store(0, std::memory_order_relaxed);
            seconds.store(0.0, std::memory_order_relaxed);
        }
    };

    std::filesystem::path resolve(const std::string& rel) const;
    void account_load(std::uint64_t bytes);
    void account_store(std::uint64_t bytes);
    template <typename F>
    auto guarded(const char* site, F&& op) -> decltype(op());

    std::filesystem::path root_;
    double load_gbps_;
    double store_gbps_;
    AtomicIoStats load_{};
    AtomicIoStats store_{};
    std::optional<faults::RetryPolicy> retry_;
};

}  // namespace xct::io
