#pragma once
// Bandwidth-accounted storage: stands in for the paper's node-local NVMe
// (projection loading) and Lustre PFS (volume storing).
//
// Real files are written under a root directory; alongside each transfer
// the modelled time at the configured bandwidth is accumulated, which is
// what the performance model (Sec. 5: BW_load, BW_store) and the
// weak-scaling store plateau (Fig. 14, ~9 s for a 4096^3 volume at
// 28.5 GB/s) consume.

#include <filesystem>

#include "core/volume.hpp"
#include "io/raw_io.hpp"

namespace xct::io {

/// Accumulated I/O statistics of one direction.
struct IoStats {
    std::uint64_t bytes = 0;
    std::uint64_t operations = 0;
    double seconds = 0.0;  ///< modelled time at the configured bandwidth
};

class Pfs {
public:
    /// `root` is created if missing.  Bandwidths in GB/s (the paper's
    /// measured values: ~28.5 GB/s aggregate store, NVMe-class load).
    Pfs(std::filesystem::path root, double load_gbps, double store_gbps);

    const std::filesystem::path& root() const { return root_; }

    void store_volume(const std::string& rel, const Volume& v);
    Volume load_volume(const std::string& rel);
    void store_stack(const std::string& rel, const ProjectionStack& p);
    ProjectionStack load_stack(const std::string& rel);

    /// Partial load: only the requested views x detector-row band; only
    /// those bytes hit the (accounted) link — the O(Nu) granularity.
    ProjectionStack load_stack_rows(const std::string& rel, Range views, Range band);

    /// Stored stack metadata (no payload traffic).
    StackInfo stack_info(const std::string& rel) const;

    bool exists(const std::string& rel) const;

    const IoStats& load_stats() const { return load_; }
    const IoStats& store_stats() const { return store_; }
    void reset_stats();

private:
    std::filesystem::path resolve(const std::string& rel) const;
    void account_load(std::uint64_t bytes);
    void account_store(std::uint64_t bytes);

    std::filesystem::path root_;
    double load_gbps_;
    double store_gbps_;
    IoStats load_{};
    IoStats store_{};
};

}  // namespace xct::io
