#pragma once
// Assemble the per-slab volume files that the distributed framework's
// group roots store (`slab_<lo>_<hi>.xvol`, see recon/distributed.cpp)
// into one full volume — the post-processing step a production deployment
// runs after an out-of-core/at-scale reconstruction.

#include <filesystem>

#include "core/volume.hpp"

namespace xct::io {

/// One discovered slab file.
struct SlabFile {
    std::filesystem::path path;
    Range slices{};  ///< global z range parsed from the file name
};

/// Find every `slab_<lo>_<hi>.xvol` under `dir` (non-recursive), sorted by
/// slice range.  Throws when two slabs overlap.
std::vector<SlabFile> discover_slabs(const std::filesystem::path& dir);

/// Load and stitch all slabs of `dir` into one volume.  The slabs must
/// tile [0, Nz) exactly (no gaps/overlaps) and agree on Nx x Ny.
Volume stitch_slabs(const std::filesystem::path& dir);

}  // namespace xct::io
