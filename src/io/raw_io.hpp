#pragma once
// Raw binary I/O for volumes and projection stacks, plus 8-bit PGM slice
// export for visual inspection (the role 3D Slicer plays in the paper's
// Fig. 11 assessment).
//
// File format: a 64-byte header (magic, dtype, extents, band origin) then
// little-endian float32 payload in the container's native layout.
//
// Readers validate the header extents and the exact on-disk size before
// touching the payload: a truncated or size-mismatched file fails with a
// file:line-bearing error instead of reading short (DESIGN.md §3f).

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/volume.hpp"

namespace xct::io {

/// Write a volume to `path`; creates parent directories.
void write_volume(const std::filesystem::path& path, const Volume& v);

/// Read a volume written by write_volume.
Volume read_volume(const std::filesystem::path& path);

/// Write a projection stack (including its band origin).
void write_stack(const std::filesystem::path& path, const ProjectionStack& p);

/// Read a stack written by write_stack.
ProjectionStack read_stack(const std::filesystem::path& path);

/// Metadata of a stack file without reading the payload.
struct StackInfo {
    index_t views = 0;
    Range band{};
    index_t cols = 0;
};
StackInfo stack_info(const std::filesystem::path& path);

/// Partial read: only detector rows `band` of views `views` (global
/// coordinates; both must lie inside the stored extents).  Seeks to each
/// view's band and reads exactly the requested bytes — the O(Nu)
/// input-granularity that Table 2 credits the decomposition with.
ProjectionStack read_stack_rows(const std::filesystem::path& path, Range views, Range band);

/// Export one z-slice of a volume as an 8-bit PGM image, windowed to
/// [lo, hi] (values clamped).  Pass lo == hi to auto-window to the slice's
/// min/max.
void write_pgm_slice(const std::filesystem::path& path, const Volume& v, index_t k, float lo = 0.0f,
                     float hi = 0.0f);

/// Export one projection (view) of a stack as PGM with the same windowing.
void write_pgm_view(const std::filesystem::path& path, const ProjectionStack& p, index_t s,
                    float lo = 0.0f, float hi = 0.0f);

/// Versioned checkpoint slab container (faults::CheckpointStore): 64-byte
/// header — magic "XCTCKP2", extents, payload xxh64 digest — then float
/// payload.  read_checkpoint_slab validates magic, extents and exact file
/// size (so a truncated or half-written slab throws instead of being
/// trusted) and returns the stored digest for the caller to verify
/// against the payload.
struct CheckpointSlab {
    Volume volume;
    std::uint64_t digest = 0;  ///< payload digest recorded at save time
};
void write_checkpoint_slab(const std::filesystem::path& path, const Volume& v,
                           std::uint64_t payload_digest);
CheckpointSlab read_checkpoint_slab(const std::filesystem::path& path);

}  // namespace xct::io
