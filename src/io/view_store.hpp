#pragma once
// Per-view projection storage — the layout real scanners produce (one
// image file per gantry angle; the paper's datasets arrive as thousands
// of TIFFs on node-local NVMe).  Each view is a single-view stack file
// `view_%06d.xstk`, so the load stage can read just the detector-row band
// it needs from just the views it owns.

#include <filesystem>

#include "core/ids.hpp"
#include "core/volume.hpp"

namespace xct::io {

/// Split `stack` (full detector, any number of views) into one file per
/// view under `dir`; view index offset by `first_view`.
void export_views(const std::filesystem::path& dir, const ProjectionStack& stack,
                  ViewId first_view = ViewId{0});

/// Number of `view_*.xstk` files present under `dir`.
index_t count_views(const std::filesystem::path& dir);

/// Load rows `band` of views `views` from a per-view directory (partial
/// reads; only the requested bytes are touched).
ProjectionStack load_views(const std::filesystem::path& dir, Range views, Range band);

}  // namespace xct::io
