#pragma once
// q8 differential band transport codec (DESIGN.md §3j).
//
// The decomposed-FDK memory analysis (arXiv:1708.07515) identifies the
// band byte volume on the pfs->host->device path as the second throughput
// lever after the decomposition choice, and the QuantizedTexture3 ablation
// established that 8-bit storage against a per-range scale preserves the
// reconstruction to its documented error bound.  This codec applies the
// same quantisation *on the wire* instead of in the texture: each
// differential band (Eq. 6) is quantised per-band against its own
// [lo, hi], shipped as one byte per texel plus a small header, and
// dequantised on upload — the device texture stays full fp32, so kernel
// arithmetic is untouched.
//
// Like every other bulk movement in the tree, the payload is XXH64
// digested at the producer and verified at the consumer (fault site
// "band.decode"); a bit flipped in transit raises integrity::IntegrityError,
// which is a faults::TransientError — the retry layer re-runs the decode
// from the still-intact EncodedBand.
//
// The raw path (BandCodec::Raw) never touches this module: --band-codec
// raw runs are bitwise-identical to the seed.

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "core/volume.hpp"
#include "integrity/integrity.hpp"

namespace xct::io {

/// Wire format of the differential band transport.
enum class BandCodec {
    Raw,  ///< fp32 texels, bitwise-identical to the seed pipeline
    Q8,   ///< per-band 8-bit quantisation with stored scale/offset
};

BandCodec band_codec_from_name(const std::string& name);
const char* band_codec_name(BandCodec codec);

/// One encoded differential band: the q8 wire representation of a
/// ProjectionStack restricted to detector rows `band`.
struct EncodedBand {
    index_t views = 0;
    index_t cols = 0;
    Range band{};  ///< global detector rows, as ProjectionStack::band()
    float lo = 0.0f;
    float hi = 0.0f;  ///< hi == lo encodes a constant band (payload all 0)
    integrity::digest_t digest = 0;        ///< XXH64 over `payload`
    std::vector<std::uint8_t> payload;     ///< views*rows*cols texels, 1 byte each

    /// Bytes this band occupies on the wire (payload + header fields).
    std::size_t wire_bytes() const;
    /// Bytes the same band occupies as raw fp32 texels.
    std::size_t raw_bytes() const { return payload.size() * sizeof(float); }
};

/// Quantise `band` to q8 against its own [min, max].  Round-to-nearest,
/// exactly the QuantizedTexture3 mapping: q = round((v-lo)*255/(hi-lo)).
EncodedBand encode_band(const ProjectionStack& band);

/// Dequantise back to a ProjectionStack.  The payload crosses the
/// "band.decode" fault gate (throw-class faults fire before the copy, a
/// corrupt-class fault flips bits in the transit copy) and is digest
/// verified before dequantisation; the source EncodedBand stays intact,
/// so a retried decode recovers bitwise.
ProjectionStack decode_band(const EncodedBand& e);

/// Maximum absolute round-trip error of encode+decode for this band:
/// half a quantisation step, (hi - lo) / (2 * 255).
float q8_error_bound(const EncodedBand& e);

}  // namespace xct::io
